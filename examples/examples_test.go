// Smoke test for the runnable examples: each must build, exit zero, and
// print the headline counters its doc comment promises (race counts, or
// capacity/cut counts for pipeline). The counts are pinned — the engine is
// deterministic at a fixed seed, so a drifting count here means an example
// (or the detector underneath it) changed behavior.
package examples_test

import (
	"os/exec"
	"regexp"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	cases := []struct {
		dir  string
		want []string // regexps the combined output must match
	}{
		{"bankledger", []string{
			`ledger races, ground truth \(TSan\): 2`,
			`ledger races, TxRace:\s+1`,
			`missed by TxRace`,
		}},
		{"futurehtm", []string{
			`commodity RTM \(paper\)\s+\d+\s+[\d.]+x\s+1\s+`,
			`future HTM \+ targeted slow\s+\d+\s+[\d.]+x\s+1\s+`,
			`same race found either way`,
		}},
		{"pipeline", []string{
			`TxRace-NoOpt\s+\d+\s+[\d.]+x\s+20\s+`,
			`TxRace-DynLoopcut\s+\d+\s+[\d.]+x\s+2\s+`,
			`TxRace-ProfLoopcut\s+\d+\s+[\d.]+x\s+5\s+`,
		}},
		{"quickstart", []string{
			`1 data race\(s\) detected:`,
			`race @0x[0-9a-f]+: site 1 .* site 2 `,
		}},
		{"webserver", []string{
			`TSan:\s+\d+ cycles \([\d.]+x\), 2 races`,
			`TxRace:\s+\d+ cycles \([\d.]+x\), 1 races`,
			`pinpointed the unlocked counter`,
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./"+tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./%s: %v\n%s", tc.dir, err, out)
			}
			for _, want := range tc.want {
				if !regexp.MustCompile(want).Match(out) {
					t.Errorf("output of %s lacks /%s/\n%s", tc.dir, want, out)
				}
			}
		})
	}
}
