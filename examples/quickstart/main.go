// Quickstart: build a small multithreaded program with an unprotected
// shared counter, run it under the TxRace runtime, and watch the two-phase
// detection pinpoint the racy pair of instructions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/memmodel"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	b := workload.NewB()

	// One shared counter updated with a lock... and one updated without.
	okCounter := b.Al.AllocLine()
	racyCounter := b.NewRacyVar()
	mu := b.Sync()

	worker := func(half workload.RacyVar, side int) []sim.Instr {
		scratch := b.Al.AllocWords(128)
		var racy sim.Instr
		if side == 0 {
			racy = half.WriteA()
		} else {
			racy = half.WriteB()
		}
		return workload.Seq(
			// The bug: a counter bumped with no lock at all, while the
			// region below keeps the transaction open long enough for the
			// two threads to collide.
			[]sim.Instr{racy},
			[]sim.Instr{b.LoopN(60,
				b.Read(sim.AddrExpr{Base: scratch, Mode: sim.AddrLoop, Stride: 1, Wrap: 128}),
				b.Write(sim.AddrExpr{Base: scratch, Mode: sim.AddrLoop, Stride: 1, Off: 1, Wrap: 128}),
				workload.Work(2),
			)},
			// The correct pattern: lock-protected shared update.
			workload.Locked(mu,
				workload.WriteAt(sim.Fixed(okCounter), b.Site()),
				workload.ReadAt(sim.Fixed(okCounter), b.Site()),
				workload.WriteAt(sim.Fixed(okCounter), b.Site()),
				workload.ReadAt(sim.Fixed(okCounter), b.Site()),
				workload.WriteAt(sim.Fixed(okCounter), b.Site()),
			),
		)
	}

	prog := &sim.Program{
		Name:    "quickstart",
		Workers: [][]sim.Instr{worker(racyCounter, 0), worker(racyCounter, 1)},
	}

	// Compile-time half: hook accesses and transactionalize
	// synchronization-free regions (§4.1 of the paper).
	instrumented := instrument.ForTxRace(prog, instrument.DefaultOptions())

	// Runtime half: the two-phase detector.
	rt := core.NewTxRace(core.Options{})
	cfg := sim.DefaultConfig()
	res, err := sim.NewEngine(cfg).Run(instrumented, rt)
	if err != nil {
		panic(err)
	}

	st := rt.Stats()
	fmt.Printf("executed %d instructions in %d virtual cycles\n", res.Instructions, res.Makespan)
	fmt.Printf("fast path: %d transactions committed, %d conflict aborts (%d artificial)\n",
		st.CommittedTxns, st.ConflictAborts, st.ArtificialAborts)
	fmt.Printf("slow path episodes: %v\n", st.SlowRegions)

	races := rt.Detector().Races()
	if len(races) == 0 {
		fmt.Println("no data races detected")
		return
	}
	fmt.Printf("\n%d data race(s) detected:\n", len(races))
	for _, r := range races {
		fmt.Printf("  %v\n", r)
		if a, bb := racyCounter.Key(); r.Key().A == a && r.Key().B == bb {
			fmt.Println("  → that is the unprotected counter at address",
				fmt.Sprintf("%#x", uint64(racyCounter.Addr)))
		}
	}
	lockedReported := false
	for _, r := range races {
		if memmodel.SameLine(r.Addr, okCounter) {
			lockedReported = true
		}
	}
	if lockedReported {
		fmt.Println("BUG: the lock-protected counter was reported — should be impossible")
	} else {
		fmt.Println("the lock-protected counter was (correctly) not reported")
	}
}
