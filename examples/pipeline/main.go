// Pipeline: a ferret-style staged pipeline whose middle stage rebuilds a
// large index in a hot loop — the capacity-abort pathology the loop-cut
// optimization (§4.3) exists for. The example runs the same program under
// TxRace-NoOpt, TxRace-DynLoopcut, and TxRace-ProfLoopcut (profiling first,
// as the paper does) and prints the Fig. 9-style comparison.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/sim"
	"repro/internal/workload"
)

func buildPipeline() *sim.Program {
	b := workload.NewB()
	const stages = 3
	sems := make([]sim.SyncID, stages)
	for i := range sems {
		sems[i] = b.Sync()
	}
	items := 20

	workers := make([][]sim.Instr, stages)
	for s := 0; s < stages; s++ {
		table := b.Al.AllocWords(1024)
		work := b.LoopN(10,
			b.Read(sim.Random(table, 1024)),
			b.Write(sim.Random(table, 1024)),
			workload.Work(3),
		)
		var item []sim.Instr
		if s > 0 {
			item = append(item, &sim.Wait{C: sems[s]})
		}
		item = append(item, work)
		if s == 1 {
			// The hot spot: a 700-line index rebuild per item — well past
			// the 512-line transactional write set.
			item = append(item, b.ChurnRandom(b.AllocLines(720), 700, 750, 0))
		}
		if s < stages-1 {
			item = append(item, &sim.Signal{C: sems[s+1]})
		} else {
			item = append(item, &sim.Syscall{Name: "emit", Cycles: 60})
		}
		workers[s] = []sim.Instr{b.LoopN(items, item...)}
	}
	return &sim.Program{Name: "pipeline", Workers: workers}
}

func main() {
	cfg := sim.DefaultConfig()

	base, err := sim.NewEngine(cfg).Run(buildPipeline(), &core.Baseline{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("baseline: %d cycles\n\n", base.Makespan)
	fmt.Printf("%-22s %10s %10s %10s %10s\n", "scheme", "cycles", "overhead", "capacity", "cuts")

	run := func(label string, opts core.Options) {
		rt := core.NewTxRace(opts)
		res, err := sim.NewEngine(cfg).Run(
			instrument.ForTxRace(buildPipeline(), instrument.DefaultOptions()), rt)
		if err != nil {
			panic(err)
		}
		st := rt.Stats()
		fmt.Printf("%-22s %10d %9.2fx %10d %10d\n",
			label, res.Makespan, float64(res.Makespan)/float64(base.Makespan),
			st.CapacityAborts, st.LoopCuts)
	}

	run("TxRace-NoOpt", core.Options{LoopCut: core.NoCut})
	run("TxRace-DynLoopcut", core.Options{LoopCut: core.DynCut})

	// ProfLoopcut needs the offline profiling run first (§4.3).
	prof, err := instrument.Profile(buildPipeline(), cfg, core.Options{})
	if err != nil {
		panic(err)
	}
	run("TxRace-ProfLoopcut", core.Options{LoopCut: core.ProfCut, Thresholds: prof})
}
