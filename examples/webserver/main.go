// Webserver: an Apache-style request-serving workload (the paper's second
// benchmark suite, §8.1) compared under three detectors. A listener thread
// feeds connections to server workers over a semaphore queue; request
// handling updates a lock-protected scoreboard — and, in the buggy build,
// a hit counter with the lock forgotten.
//
// The example prints the baseline/TSan/TxRace cost of both builds, showing
// the two-phase detector finding the same bug at a fraction of the cost.
//
//	go run ./examples/webserver
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/sim"
	"repro/internal/workload"
)

func buildServer(buggy bool) (*sim.Program, workload.RacyVar) {
	b := workload.NewB()
	const servers = 3
	connQ := b.Sync()
	statsMu := b.Sync()
	scoreboard := b.Al.AllocWords(64)
	hits := b.NewRacyVar() // the counter someone forgot to lock
	perServer := 40

	workers := make([][]sim.Instr, servers+1)
	// The accept loop is much faster than request handling, so the queue
	// stays full and the servers run truly concurrently.
	workers[0] = []sim.Instr{b.LoopN(perServer*servers,
		&sim.Syscall{Name: "accept", Cycles: 20},
		workload.Work(2),
		&sim.Signal{C: connQ},
	)}
	for s := 1; s <= servers; s++ {
		buf := b.Al.AllocWords(512)
		handle := []sim.Instr{
			&sim.Wait{C: connQ},
			&sim.Syscall{Name: "read", Cycles: 110},
		}
		if buggy {
			// Lock-free counter bump at the start of the parse region: the
			// conflict window spans the whole parse.
			var bump sim.Instr
			if s == 1 {
				bump = hits.WriteA()
			} else {
				bump = hits.WriteB()
			}
			handle = append(handle, bump)
		}
		handle = append(handle,
			b.LoopN(12,
				b.Read(sim.AddrExpr{Base: buf, Mode: sim.AddrLoop, Stride: 1, Wrap: 512}),
				b.Write(sim.AddrExpr{Base: buf, Mode: sim.AddrLoop, Stride: 1, Off: 1, Wrap: 512}),
				workload.Work(3),
			))
		handle = append(handle, workload.Locked(statsMu,
			b.Write(sim.AddrExpr{Base: scoreboard, Mode: sim.AddrLoop, Stride: 1, Wrap: 64}),
			b.Read(sim.AddrExpr{Base: scoreboard, Mode: sim.AddrLoop, Stride: 1, Off: 1, Wrap: 64}),
			b.Write(sim.AddrExpr{Base: scoreboard, Mode: sim.AddrLoop, Stride: 1, Off: 2, Wrap: 64}),
			b.Read(sim.AddrExpr{Base: scoreboard, Mode: sim.AddrLoop, Stride: 1, Off: 3, Wrap: 64}),
			b.Write(sim.AddrExpr{Base: scoreboard, Mode: sim.AddrLoop, Stride: 1, Off: 4, Wrap: 64}),
		)...)
		handle = append(handle, &sim.Syscall{Name: "write", Cycles: 130})
		workers[s] = []sim.Instr{b.LoopN(perServer, handle...)}
	}
	return &sim.Program{Name: "webserver", Workers: workers}, hits
}

func main() {
	for _, buggy := range []bool{false, true} {
		label := "correct build"
		if buggy {
			label = "buggy build (unlocked hit counter)"
		}
		fmt.Printf("== %s ==\n", label)
		prog, hits := buildServer(buggy)
		cfg := sim.DefaultConfig()

		base, err := sim.NewEngine(cfg).Run(prog, &core.Baseline{})
		if err != nil {
			panic(err)
		}

		prog2, _ := buildServer(buggy)
		ts := core.NewTSan()
		tsRes, err := sim.NewEngine(cfg).Run(instrument.ForTSan(prog2), ts)
		if err != nil {
			panic(err)
		}

		prog3, _ := buildServer(buggy)
		tx := core.NewTxRace(core.Options{})
		txRes, err := sim.NewEngine(cfg).Run(
			instrument.ForTxRace(prog3, instrument.DefaultOptions()), tx)
		if err != nil {
			panic(err)
		}

		fmt.Printf("baseline: %8d cycles\n", base.Makespan)
		fmt.Printf("TSan:     %8d cycles (%.2fx), %d races\n",
			tsRes.Makespan, float64(tsRes.Makespan)/float64(base.Makespan),
			ts.Detector().RaceCount())
		fmt.Printf("TxRace:   %8d cycles (%.2fx), %d races\n",
			txRes.Makespan, float64(txRes.Makespan)/float64(base.Makespan),
			tx.Detector().RaceCount())
		if buggy {
			if tx.Detector().RaceCount() > 0 {
				a, bb := hits.Key()
				fmt.Printf("TxRace pinpointed the unlocked counter (sites %d/%d) at a fraction of TSan's cost\n", a, bb)
			}
			if tx.Detector().RaceCount() < ts.Detector().RaceCount() {
				fmt.Println("note: overlap-based detection is schedule-sensitive — different -seed runs")
				fmt.Println("accumulate the remaining pairs, exactly the paper's Fig. 10 observation")
			}
		}
		fmt.Println()
	}
}
