// Futurehtm: the paper's closing thought (§9) made runnable. Commodity RTM
// reports only an abort *status* — never the conflicting address — so
// TxRace must re-execute whole regions under the software detector. The
// paper envisions that a future HTM exposing the conflict address (as
// TxIntro infers via side channels) would enable "a more efficient slow
// path". This example runs the same episode-heavy program on both machines:
// the targeted slow path monitors only the conflicting line and collapses
// the episode cost while pinpointing the same race.
//
//	go run ./examples/futurehtm
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/instrument"
	"repro/internal/sim"
	"repro/internal/workload"
)

func buildEpisodeHeavy() *sim.Program {
	b := workload.NewB()
	race := b.NewRacyVar()
	workers := make([][]sim.Instr, 2)
	for w := range workers {
		buf := b.Al.AllocWords(512)
		var racy sim.Instr
		if w == 0 {
			racy = race.WriteA()
		} else {
			racy = race.WriteB()
		}
		// Every region opens with the contended flag and then does a lot of
		// private work — the part a commodity-RTM slow path re-executes
		// under full detection and a future-HTM slow path skips.
		workers[w] = []sim.Instr{b.LoopN(40,
			racy,
			b.LoopN(50,
				b.Read(sim.AddrExpr{Base: buf, Mode: sim.AddrLoop, Stride: 1, Wrap: 512}),
				b.Write(sim.AddrExpr{Base: buf, Mode: sim.AddrLoop, Stride: 1, Off: 1, Wrap: 512}),
				workload.Work(1),
			),
			&sim.Syscall{Name: "tick", Cycles: 40},
		)}
	}
	return &sim.Program{Name: "futurehtm", Workers: workers}
}

func main() {
	cfg := sim.DefaultConfig()
	base, err := sim.NewEngine(cfg).Run(buildEpisodeHeavy(), &core.Baseline{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("baseline: %d cycles\n\n", base.Makespan)
	fmt.Printf("%-28s %10s %10s %8s %14s\n", "machine", "cycles", "overhead", "races", "shadow checks")

	run := func(label string, opts core.Options) {
		rt := core.NewTxRace(opts)
		res, err := sim.NewEngine(cfg).Run(
			instrument.ForTxRace(buildEpisodeHeavy(), instrument.DefaultOptions()), rt)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-28s %10d %9.2fx %8d %14d\n",
			label, res.Makespan, float64(res.Makespan)/float64(base.Makespan),
			rt.Detector().RaceCount(), rt.Detector().Checks)
	}

	run("commodity RTM (paper)", core.Options{})

	future := core.Options{TargetedSlowPath: true}
	future.HTM = htm.DefaultConfig()
	future.HTM.ExposeConflictAddress = true
	run("future HTM + targeted slow", future)

	fmt.Println("\nsame race found either way; the future machine's episodes only")
	fmt.Println("re-check the conflicting line instead of the whole region (§9).")
}
