// Bankledger: the initialize-then-publish idiom (§8.3) — the pattern behind
// TxRace's only false negatives in the paper's evaluation. A setup worker
// creates a ledger and publishes its "ready" flag without synchronization;
// an auditor reads the flag much later. The race is real (TSan reports it),
// but the two halves never overlap in time, so the overlap-based fast path
// has nothing to flag: TxRace misses it, exactly as the paper's bodytrack
// and facesim analysis predicts.
//
//	go run ./examples/bankledger
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/instrument"
	"repro/internal/sim"
	"repro/internal/workload"
)

func buildLedger() (*sim.Program, workload.RacyVar, workload.RacyVar) {
	b := workload.NewB()
	readyFlag := b.NewRacyVar() // deferred-publication race: missed
	balance := b.NewRacyVar()   // hot racy balance: caught
	accounts := b.Al.AllocWords(512)
	mu := b.Sync()

	// Worker 0: initializes the ledger and publishes its "ready" flag
	// without synchronization in a short startup region, then settles into
	// transfers — each of which bumps the running balance lock-free (the
	// hot bug) before taking the ledger lock.
	setupWorker := workload.Seq(
		[]sim.Instr{readyFlag.WriteA()},
		[]sim.Instr{b.Churn(b.Al.AllocWords(60*8), 60, 1, true)},
		[]sim.Instr{b.LoopN(40,
			workload.Seq(
				[]sim.Instr{balance.WriteA(), workload.Work(4)},
				workload.Locked(mu,
					b.Write(sim.Random(accounts, 512)),
					b.Write(sim.Random(accounts, 512)),
					b.Read(sim.Random(accounts, 512)),
					b.Write(sim.Random(accounts, 512)),
					b.Read(sim.Random(accounts, 512)),
				),
			)...,
		)},
	)

	// Worker 1: the auditor — a long report-generation phase first, so its
	// unsynchronized read of the ready flag lands far after the publication
	// (no overlap, no conflict: TxRace's structural false negative), then an
	// audit loop whose lock-free balance reads collide with the transfers.
	report := b.Al.AllocWords(500 * 8)
	auditor := workload.Seq(
		[]sim.Instr{b.Churn(report, 500, 5, true)},
		[]sim.Instr{readyFlag.ReadB(), &sim.Syscall{Name: "log", Cycles: 40}},
		[]sim.Instr{b.LoopN(20,
			workload.Seq(
				[]sim.Instr{balance.ReadB(), workload.Work(3)},
				workload.Locked(mu,
					b.Read(sim.Random(accounts, 512)),
					b.Read(sim.Random(accounts, 512)),
					b.Read(sim.Random(accounts, 512)),
					b.Read(sim.Random(accounts, 512)),
					b.Read(sim.Random(accounts, 512)),
				),
			)...,
		)},
	)

	p := &sim.Program{Name: "bankledger", Workers: [][]sim.Instr{setupWorker, auditor}}
	return p, readyFlag, balance
}

func main() {
	prog, readyFlag, balance := buildLedger()
	cfg := sim.DefaultConfig()

	ts := core.NewTSan()
	if _, err := sim.NewEngine(cfg).Run(instrument.ForTSan(prog), ts); err != nil {
		panic(err)
	}
	prog2, _, _ := buildLedger()
	tx := core.NewTxRace(core.Options{})
	if _, err := sim.NewEngine(cfg).Run(
		instrument.ForTxRace(prog2, instrument.DefaultOptions()), tx); err != nil {
		panic(err)
	}

	fmt.Println("ledger races, ground truth (TSan):", ts.Detector().RaceCount())
	fmt.Println("ledger races, TxRace:             ", tx.Detector().RaceCount())

	fTS := raceSet(ts.Detector())
	fTX := raceSet(tx.Detector())

	a, b := readyFlag.Key()
	fmt.Printf("\ndeferred 'ready' flag publication (sites %d/%d):\n", a, b)
	fmt.Printf("  TSan:   found=%v\n", fTS[detect.PairKey{A: a, B: b}])
	fmt.Printf("  TxRace: found=%v\n", fTX[detect.PairKey{A: a, B: b}])
	if fTX[detect.PairKey{A: a, B: b}] {
		fmt.Println("  unexpected: the non-overlapping race was detected")
	} else {
		fmt.Println("  → missed by TxRace: the accesses never overlap (the paper's §8.3 false negative)")
	}

	a, b = balance.Key()
	fmt.Printf("\nhot racy balance (sites %d/%d):\n", a, b)
	fmt.Printf("  TSan:   found=%v\n", fTS[detect.PairKey{A: a, B: b}])
	fmt.Printf("  TxRace: found=%v\n", fTX[detect.PairKey{A: a, B: b}])
}

func raceSet(d *detect.Detector) map[detect.PairKey]bool {
	out := make(map[detect.PairKey]bool)
	for _, k := range d.RaceKeys() {
		out[k] = true
	}
	return out
}
