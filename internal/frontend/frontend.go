// Package frontend compiles a small but useful subset of real Go source
// into the sim IR, so TxRace runs on actual Go programs rather than only on
// the calibrated synthetic PARSEC stand-ins. It is the reproduction's
// analogue of the paper's LLVM instrumentation front half: a go/ast +
// go/types pass that
//
//   - lowers each `go` statement into a sim worker thread (spawn loops with
//     constant bounds are unrolled, one worker per iteration);
//   - maps sync.Mutex / sync.RWMutex methods to Lock/Unlock and
//     RLock/RUnlock/WLock/WUnlock, channel send/recv to Signal/Wait
//     semaphore pairs, and sync.WaitGroup to a join semaphore (Done posts
//     once, Wait pends once per statically counted Done);
//   - lowers variable, struct-field, and array/slice-element accesses to
//     typed address descriptors — one address range per object, one word
//     per scalar or field, element-granular for arrays and slices
//     (loop-indexed elements become AddrLoop expressions), and a single
//     whole-object word for maps, matching the granularity the Go race
//     detector itself uses for map headers;
//   - splits main into the paper's phase structure: everything before the
//     first spawned goroutine is the single-threaded Setup, and main's own
//     continuation (spawn-loop bookkeeping, WaitGroup waits, the epilogue)
//     becomes one more worker thread, so unsynchronized reads in main stay
//     concurrent with the goroutines they race with.
//
// Source positions survive lowering: every emitted access carries a SiteID
// keyed by (file position, read/write), so a race report maps back to the
// exact source line, and re-emissions of the same statement (unrolled spawn
// iterations, inlined helper calls) share one site — static identity, as in
// the paper's PC-keyed race deduplication.
//
// DESIGN.md §13 documents the supported subset and every lowering rule,
// including the two deliberate approximations (both arms of an `if` are
// emitted, and statements between two spawns in main are concurrent with
// every goroutine rather than only the later ones).
package frontend

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/memmodel"
	"repro/internal/sim"
)

// Site maps one emitted access site back to source.
type Site struct {
	ID     sim.SiteID
	File   string
	Line   int
	Col    int
	Write  bool
	Object string // display path of the accessed object, e.g. "counter", "buf[.]", "cfg.value"
}

// Object is one lowered data object with its address range.
type Object struct {
	Name   string
	Base   memmodel.Addr
	Words  int
	Shared bool // referenced by more than one thread context
}

// Program is a compiled Go source file: the lowered sim program plus the
// side tables that map sites and objects back to source.
type Program struct {
	Name    string
	Prog    *sim.Program
	Sites   []Site   // sorted by ID
	Objects []Object // in allocation order

	byID map[sim.SiteID]Site
}

// Site returns the source record for an emitted site id.
func (p *Program) Site(id sim.SiteID) (Site, bool) {
	s, ok := p.byID[id]
	return s, ok
}

// SiteOn returns the single site on the given source line with the given
// write-ness. It errors if the line has no such site or more than one —
// ground-truth race specs must be unambiguous.
func (p *Program) SiteOn(line int, write bool) (sim.SiteID, error) {
	var found []Site
	for _, s := range p.Sites {
		if s.Line == line && s.Write == write {
			found = append(found, s)
		}
	}
	kind := "read"
	if write {
		kind = "write"
	}
	switch len(found) {
	case 0:
		return 0, fmt.Errorf("frontend: no %s site on line %d of %s", kind, line, p.Name)
	case 1:
		return found[0].ID, nil
	default:
		return 0, fmt.Errorf("frontend: %d %s sites on line %d of %s (spec is ambiguous)", len(found), kind, line, p.Name)
	}
}

// Compile parses, type-checks, and lowers one Go source file. The file must
// be package main with a func main; the only permitted import is "sync".
func Compile(name string, src []byte) (*Program, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, name+".go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("frontend: parse %s: %w", name, err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: syntheticImporter{}}
	if _, err := conf.Check(name, fset, []*ast.File{file}, info); err != nil {
		return nil, fmt.Errorf("frontend: typecheck %s: %w", name, err)
	}

	lo := newLowerer(name, fset, file, info)
	if err := lo.collectDecls(); err != nil {
		return nil, err
	}
	// Pass 1: same traversal as lowering with every object assumed shared,
	// recording which thread contexts touch each object and how many
	// semaphore posts each WaitGroup accumulates.
	lo.analyze = true
	if err := lo.run(); err != nil {
		return nil, err
	}
	shared := lo.computeShared()
	waits := lo.sigCount
	// Pass 2: the real lowering, with Local marked on single-context
	// objects and wg.Wait expanded to the pass-1 post count.
	lo.reset()
	lo.analyze = false
	lo.shared = shared
	lo.waitN = waits
	if err := lo.run(); err != nil {
		return nil, err
	}
	return lo.finish()
}

// finish assembles the public Program from the lowerer's state.
func (lo *lowerer) finish() (*Program, error) {
	workers := lo.workers
	if lo.spawned {
		// Main's own continuation — spawn-loop bookkeeping, waits, the
		// epilogue — is one more concurrent thread.
		workers = append(workers, lo.cont)
	}
	p := &Program{
		Name: lo.name,
		Prog: &sim.Program{
			Name:    "go:" + lo.name,
			Setup:   lo.setup,
			Workers: workers,
		},
		byID: map[sim.SiteID]Site{},
	}
	for _, s := range lo.siteList {
		p.Sites = append(p.Sites, s)
		p.byID[s.ID] = s
	}
	sort.Slice(p.Sites, func(i, j int) bool { return p.Sites[i].ID < p.Sites[j].ID })
	for _, o := range lo.objList {
		p.Objects = append(p.Objects, Object{
			Name:   o.name,
			Base:   o.base,
			Words:  o.words,
			Shared: lo.shared[o.key],
		})
	}
	if err := p.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("frontend: lowered program invalid: %w", err)
	}
	return p, nil
}
