package frontend

import (
	"fmt"
	"go/token"
	"go/types"
)

// syntheticImporter resolves the single import the subset permits: a
// hand-built "sync" package containing just Mutex, RWMutex, and WaitGroup
// with their method sets. Building it from the go/types API keeps the
// frontend hermetic — no GOROOT source walk, no export data, and the type
// identities are stable for the lowerer's package-path checks.
type syntheticImporter struct{}

func (syntheticImporter) Import(path string) (*types.Package, error) {
	if path == "sync" {
		return syncPkg, nil
	}
	return nil, fmt.Errorf("import %q not supported (the Go subset permits only \"sync\")", path)
}

var syncPkg = buildSyncPackage()

func buildSyncPackage() *types.Package {
	pkg := types.NewPackage("sync", "sync")
	newType := func(name string) *types.Named {
		tn := types.NewTypeName(token.NoPos, pkg, name, nil)
		n := types.NewNamed(tn, types.NewStruct(nil, nil), nil)
		pkg.Scope().Insert(tn)
		return n
	}
	method := func(n *types.Named, name string, params ...*types.Var) {
		recv := types.NewVar(token.NoPos, pkg, "", types.NewPointer(n))
		sig := types.NewSignatureType(recv, nil, nil, types.NewTuple(params...), nil, false)
		n.AddMethod(types.NewFunc(token.NoPos, pkg, name, sig))
	}

	mutex := newType("Mutex")
	method(mutex, "Lock")
	method(mutex, "Unlock")

	rw := newType("RWMutex")
	method(rw, "Lock")
	method(rw, "Unlock")
	method(rw, "RLock")
	method(rw, "RUnlock")

	wg := newType("WaitGroup")
	method(wg, "Add", types.NewVar(token.NoPos, pkg, "delta", types.Typ[types.Int]))
	method(wg, "Done")
	method(wg, "Wait")

	pkg.MarkComplete()
	return pkg
}

// syncTypeName returns the sync package type name ("Mutex", "RWMutex",
// "WaitGroup") behind t, unwrapping one level of pointer, or "" if t is not
// one of the synthetic sync types.
func syncTypeName(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return ""
	}
	return n.Obj().Name()
}

// isChan reports whether t is a channel type.
func isChan(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
