// Race-free twin of stripes: the two sweeps cover disjoint halves of the
// buffer. The split lands mid cache line, so the HTM fast path conflicts on
// the boundary line (false sharing) and the slow path must exonerate it.
package main

var (
	buf  [4090]int
	done chan bool
)

func main() {
	done = make(chan bool)
	go func() {
		for i := 0; i < 2045; i++ {
			buf[i] = i
		}
		done <- true
	}()
	go func() {
		for i := 0; i < 2045; i++ {
			buf[i+2045] = i
		}
		done <- true
	}()
	<-done
	<-done
}
