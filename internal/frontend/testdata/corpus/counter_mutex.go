// Race-free twin of counter: the same four-way increment storm with every
// read-modify-write guarded by a mutex.
package main

import "sync"

var (
	mu      sync.Mutex
	counter int
	wg      sync.WaitGroup
)

func main() {
	wg.Add(4)
	for i := 0; i < 4; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				mu.Lock()
				counter++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	_ = counter
}
