// Two workers sweep overlapping ranges of a shared buffer: words 1024
// through 3071 are written by both, a write-write race on the overlap.
package main

var (
	buf  [4096]int
	done chan bool
)

func main() {
	done = make(chan bool)
	go func() {
		for i := 0; i < 3072; i++ {
			buf[i] = i
		}
		done <- true
	}()
	go func() {
		for i := 0; i < 3072; i++ {
			buf[i+1024] = i
		}
		done <- true
	}()
	<-done
	<-done
}
