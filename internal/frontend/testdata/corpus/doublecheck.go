// Classic broken double-checked lazy initialization: the unsynchronized
// fast-path read of instance races with the store published under the lock.
package main

import "sync"

type config struct {
	value int
}

var (
	mu       sync.Mutex
	instance *config
	done     chan bool
)

func getInstance() *config {
	if instance == nil {
		mu.Lock()
		if instance == nil {
			instance = &config{value: 42}
		}
		mu.Unlock()
	}
	return instance
}

func main() {
	done = make(chan bool)
	for i := 0; i < 3; i++ {
		go func() {
			_ = getInstance()
			done <- true
		}()
	}
	for i := 0; i < 3; i++ {
		<-done
	}
}
