// Race-free partitioned fill: each worker owns a disjoint four-element
// stripe of the slice, selected by its id parameter, and main only reads the
// results after every worker has signalled completion. Adjacent stripes share
// cache lines, so the HTM fast path sees false-sharing conflicts that the
// happens-before slow path must exonerate.
package main

var (
	results []int
	done    chan bool
)

func fill(id int) {
	for j := 0; j < 4; j++ {
		results[id*4+j] = id + j
	}
	done <- true
}

func main() {
	results = make([]int, 16)
	done = make(chan bool)
	for i := 0; i < 4; i++ {
		go fill(i)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	total := 0
	for k := 0; k < 16; k++ {
		total += results[k]
	}
	_ = total
}
