// Race-free twin of mapwrite: a writer updates the map under the write lock
// while a reader polls its size under the read lock.
package main

import "sync"

var (
	mu    sync.RWMutex
	stats map[string]int
	done  chan bool
)

func main() {
	stats = make(map[string]int)
	done = make(chan bool)
	go func() {
		for i := 0; i < 50; i++ {
			mu.Lock()
			stats["a"] = i
			mu.Unlock()
		}
		done <- true
	}()
	go func() {
		for i := 0; i < 50; i++ {
			mu.RLock()
			n := len(stats)
			_ = n
			mu.RUnlock()
		}
		done <- true
	}()
	<-done
	<-done
}
