// Two goroutines write the same map with no synchronization — the classic
// "concurrent map writes" crash, seen here as a write-write race on the map
// object.
package main

var (
	stats map[string]int
	done  chan bool
)

func main() {
	stats = make(map[string]int)
	done = make(chan bool)
	go func() {
		for i := 0; i < 5000; i++ {
			stats["a"] = i
		}
		done <- true
	}()
	go func() {
		for i := 0; i < 5000; i++ {
			stats["b"] = i
		}
		done <- true
	}()
	<-done
	<-done
}
