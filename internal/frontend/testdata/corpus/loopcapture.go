// The pre-Go-1.22 loop-variable capture bug: all three goroutines read the
// single shared loop variable while main keeps incrementing it, and their
// unsynchronized updates of sum race with each other too.
package main

import "sync"

var (
	wg  sync.WaitGroup
	sum int
)

func main() {
	wg.Add(3)
	for i := 0; i < 3; i++ {
		go func() {
			defer wg.Done()
			sum += i
		}()
	}
	wg.Wait()
	_ = sum
}
