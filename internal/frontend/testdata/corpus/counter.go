// Four goroutines hammer a shared counter with unprotected read-modify-write
// increments: the load races with the store, and the stores race with each
// other.
package main

import "sync"

var (
	counter int
	wg      sync.WaitGroup
)

func main() {
	wg.Add(4)
	for i := 0; i < 4; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				counter++
			}
		}()
	}
	wg.Wait()
	_ = counter
}
