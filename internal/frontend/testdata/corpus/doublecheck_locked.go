// Race-free twin of doublecheck: every access to instance, including the
// fast-path check and the returned copy, happens under the mutex.
package main

import "sync"

type config struct {
	value int
}

var (
	mu       sync.Mutex
	instance *config
	done     chan bool
)

func getInstance() *config {
	mu.Lock()
	if instance == nil {
		instance = &config{value: 42}
	}
	out := instance
	mu.Unlock()
	return out
}

func main() {
	done = make(chan bool)
	for i := 0; i < 3; i++ {
		go func() {
			_ = getInstance()
			done <- true
		}()
	}
	for i := 0; i < 3; i++ {
		<-done
	}
}
