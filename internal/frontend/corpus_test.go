package frontend

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/instrument"
	"repro/internal/sim"
)

// TestCorpusRegistryComplete pins that the registry and the embedded files
// agree: every snippet has a source file, every file has a registry entry.
func TestCorpusRegistryComplete(t *testing.T) {
	entries, err := corpusFS.ReadDir("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		onDisk[strings.TrimSuffix(e.Name(), ".go")] = true
	}
	for _, name := range CorpusNames() {
		if !onDisk[name] {
			t.Errorf("snippet %q has no embedded source file", name)
		}
		delete(onDisk, name)
	}
	for name := range onDisk {
		t.Errorf("embedded file %q.go has no registry entry", name)
	}
}

// TestCorpusCompiles pins that every snippet compiles and its pinned race
// specs resolve unambiguously, and that racy snippets come with race-free
// twins that pin zero races.
func TestCorpusCompiles(t *testing.T) {
	racy, twins := 0, 0
	for _, name := range CorpusNames() {
		p, err := CompileCorpus(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		snip, _ := CorpusSnippet(name)
		truth, err := snip.GroundTruth(p)
		if err != nil {
			t.Fatalf("%s: ground truth: %v", name, err)
		}
		if len(truth) != len(snip.Races) {
			t.Fatalf("%s: resolved %d of %d pinned races", name, len(truth), len(snip.Races))
		}
		for _, r := range truth {
			if r.B < r.A {
				t.Fatalf("%s: unnormalized pair (%d, %d)", name, r.A, r.B)
			}
		}
		if len(truth) > 0 {
			racy++
		} else {
			twins++
		}
	}
	if racy < 5 || twins < 5 {
		t.Fatalf("corpus shape: %d racy + %d race-free snippets, want >=5 of each", racy, twins)
	}
}

// TestCorpusGroundTruthTSan is the oracle check behind the pinned specs:
// a full happens-before detector over each snippet must report exactly the
// pinned race set (deferred races included — deferral is a statement about
// the HTM fast path, not about happens-before).
func TestCorpusGroundTruthTSan(t *testing.T) {
	for _, name := range CorpusNames() {
		t.Run(name, func(t *testing.T) {
			p, err := CompileCorpus(name)
			if err != nil {
				t.Fatal(err)
			}
			snip, _ := CorpusSnippet(name)
			truth, err := snip.GroundTruth(p)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]detect.PairKey, len(truth))
			for i, r := range truth {
				want[i] = detect.PairKey{A: r.A, B: r.B}
			}

			rt := core.NewTSan()
			sim.NewEngine(sim.DefaultConfig()).Run(instrument.ForTSan(p.Prog), rt)
			got := rt.Detector().RaceKeys()
			if len(got) != len(want) {
				t.Fatalf("TSan found %d races, pinned %d:\n got %v\nwant %v", len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("race %d: got %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCorpusSiteTablesResolve pins that every reported race maps back to
// source: each site id the detector can emit has a line/col record.
func TestCorpusSiteTablesResolve(t *testing.T) {
	for _, name := range CorpusNames() {
		p, err := CompileCorpus(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range p.Sites {
			got, ok := p.Site(s.ID)
			if !ok || got != s {
				t.Fatalf("%s: site %d does not round-trip: %+v vs %+v", name, s.ID, s, got)
			}
			if s.Line <= 0 || s.Col <= 0 || s.Object == "" {
				t.Fatalf("%s: site %d missing source info: %+v", name, s.ID, s)
			}
		}
	}
}
