package frontend

import (
	"embed"
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

//go:embed testdata/corpus/*.go
var corpusFS embed.FS

// SiteSpec names one access site by source position. Col disambiguates when
// a line holds more than one same-writeness site (e.g. `sum += i` reads both
// sum and i); 0 means the line+writeness pair is already unique.
type SiteSpec struct {
	Line  int
	Col   int
	Write bool
}

// RaceSpec pins one ground-truth race as an unordered pair of source sites.
// Deferred marks races the paper's fast path structurally misses (§8.3): the
// racing halves never overlap inside live transactions — here, a slow-path
// read landing before the transactional write enters any write set — so only
// full happens-before detection flags them, like bodytrack/facesim's
// initialize-then-publish races.
type RaceSpec struct {
	A, B     SiteSpec
	Deferred bool
}

// Snippet is one corpus program: a real racy Go idiom (or its race-free
// twin) with the ground-truth race set pinned by source position.
type Snippet struct {
	Name  string
	Doc   string
	Races []RaceSpec // empty = race-free twin
}

// corpusSnippets lists the embedded corpus in presentation order: each racy
// classic followed by its race-free twin where one exists.
var corpusSnippets = []Snippet{
	{
		Name: "doublecheck",
		Doc:  "broken double-checked lazy init: unlocked fast-path read vs locked store",
		Races: []RaceSpec{
			{A: SiteSpec{Line: 18}, B: SiteSpec{Line: 21, Write: true}},
			{A: SiteSpec{Line: 25}, B: SiteSpec{Line: 21, Write: true}},
		},
	},
	{
		Name: "doublecheck_locked",
		Doc:  "race-free twin: every instance access under the mutex",
	},
	{
		Name: "counter",
		Doc:  "four-way unprotected counter++ storm",
		Races: []RaceSpec{
			{A: SiteSpec{Line: 19}, B: SiteSpec{Line: 19, Write: true}},
			{A: SiteSpec{Line: 19, Write: true}, B: SiteSpec{Line: 19, Write: true}},
		},
	},
	{
		Name: "counter_mutex",
		Doc:  "race-free twin: the same storm under a mutex",
	},
	{
		Name: "mapwrite",
		Doc:  "two goroutines write one map unsynchronized (concurrent map writes)",
		Races: []RaceSpec{
			{A: SiteSpec{Line: 16, Write: true}, B: SiteSpec{Line: 22, Write: true}},
		},
	},
	{
		Name: "mapwrite_locked",
		Doc:  "race-free twin: RWMutex-guarded writer vs len() reader",
	},
	{
		Name: "loopcapture",
		Doc:  "pre-Go-1.22 loop-variable capture plus an unprotected sum",
		Races: []RaceSpec{
			// The capture race itself: the goroutines' reads of i mostly land
			// before main's post-increment transaction writes i, which strong
			// isolation cannot see — TSan-only, like the paper's deferred races.
			{A: SiteSpec{Line: 18, Col: 11}, B: SiteSpec{Line: 15, Col: 21, Write: true}, Deferred: true},
			{A: SiteSpec{Line: 18, Col: 4}, B: SiteSpec{Line: 18, Col: 4, Write: true}},
			{A: SiteSpec{Line: 18, Col: 4, Write: true}, B: SiteSpec{Line: 18, Col: 4, Write: true}},
		},
	},
	{
		Name: "slicepart",
		Doc:  "race-free partitioned slice fill (adjacent stripes false-share lines)",
	},
	{
		Name: "stripes",
		Doc:  "two sweeps over overlapping array halves: write-write on the overlap",
		Races: []RaceSpec{
			{A: SiteSpec{Line: 14, Write: true}, B: SiteSpec{Line: 20, Write: true}},
		},
	},
	{
		Name: "stripes_split",
		Doc:  "race-free twin: disjoint halves that still share the boundary cache line",
	},
}

// CorpusNames returns the snippet names in presentation order.
func CorpusNames() []string {
	out := make([]string, len(corpusSnippets))
	for i, s := range corpusSnippets {
		out[i] = s.Name
	}
	return out
}

// CorpusSnippet returns the named snippet's registry entry.
func CorpusSnippet(name string) (Snippet, bool) {
	for _, s := range corpusSnippets {
		if s.Name == name {
			return s, true
		}
	}
	return Snippet{}, false
}

var (
	corpusMu    sync.Mutex
	corpusCache = map[string]*Program{}
)

// CompileCorpus compiles one embedded corpus snippet, caching the result:
// the compiled program is immutable (the instrumenter clones before it
// rewrites), so all callers share one lowering.
func CompileCorpus(name string) (*Program, error) {
	if _, ok := CorpusSnippet(name); !ok {
		return nil, fmt.Errorf("frontend: unknown corpus snippet %q (have: %v)", name, CorpusNames())
	}
	corpusMu.Lock()
	defer corpusMu.Unlock()
	if p, ok := corpusCache[name]; ok {
		return p, nil
	}
	src, err := corpusFS.ReadFile("testdata/corpus/" + name + ".go")
	if err != nil {
		return nil, fmt.Errorf("frontend: corpus %s: %w", name, err)
	}
	p, err := Compile(name, src)
	if err != nil {
		return nil, err
	}
	corpusCache[name] = p
	return p, nil
}

// resolveSite resolves one position spec against the compiled program's site
// table; the spec must match exactly one site.
func (p *Program) resolveSite(spec SiteSpec) (sim.SiteID, error) {
	var found []Site
	for _, s := range p.Sites {
		if s.Line == spec.Line && s.Write == spec.Write && (spec.Col == 0 || s.Col == spec.Col) {
			found = append(found, s)
		}
	}
	kind := "read"
	if spec.Write {
		kind = "write"
	}
	switch len(found) {
	case 0:
		return 0, fmt.Errorf("frontend: no %s site at %s:%d:%d", kind, p.Name, spec.Line, spec.Col)
	case 1:
		return found[0].ID, nil
	default:
		return 0, fmt.Errorf("frontend: %d %s sites match %s:%d (add a column to the spec)", len(found), kind, p.Name, spec.Line)
	}
}

// ResolvedRace is one ground-truth race with its site specs resolved to the
// compiled program's site ids, normalized A <= B.
type ResolvedRace struct {
	A, B     sim.SiteID
	Deferred bool
}

// GroundTruth resolves the snippet's pinned race specs against its compiled
// program, returning sorted normalized site pairs.
func (s Snippet) GroundTruth(p *Program) ([]ResolvedRace, error) {
	out := make([]ResolvedRace, 0, len(s.Races))
	for _, r := range s.Races {
		a, err := p.resolveSite(r.A)
		if err != nil {
			return nil, err
		}
		b, err := p.resolveSite(r.B)
		if err != nil {
			return nil, err
		}
		if b < a {
			a, b = b, a
		}
		out = append(out, ResolvedRace{A: a, B: b, Deferred: r.Deferred})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, nil
}
