package frontend

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/sim"
)

// lowerCallStmt lowers a call in statement position: sync-object methods,
// supported builtins, and inlined helper calls.
func (lo *lowerer) lowerCallStmt(call *ast.CallExpr, env *env) error {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return lo.lowerSyncCall(call, fun, env)
	case *ast.Ident:
		if b, ok := lo.useOf(fun).(*types.Builtin); ok {
			return lo.lowerBuiltinStmt(call, b.Name(), env)
		}
		if _, ok := lo.funcs[fun.Name]; ok {
			return lo.inlineCall(call, env)
		}
		return lo.errAt(call.Pos(), "unknown function %s", fun.Name)
	default:
		return lo.errAt(call.Pos(), "unsupported call target %T", fun)
	}
}

func (lo *lowerer) lowerBuiltinStmt(call *ast.CallExpr, name string, env *env) error {
	switch name {
	case "delete":
		if err := lo.evalReads(call.Args[1], env); err != nil {
			return err
		}
		return lo.emitAccessExpr(call.Args[0], true, env) // map word write
	case "println", "print":
		for _, a := range call.Args {
			if err := lo.evalReads(a, env); err != nil {
				return err
			}
		}
		// A known (non-hidden) syscall: the instrumenter cuts the
		// transaction around it, as the paper's pass does for libc I/O.
		lo.emit(env, &sim.Syscall{Name: name, Cycles: 400})
		return nil
	default:
		return lo.errAt(call.Pos(), "builtin %s is unsupported as a statement", name)
	}
}

// lowerSyncCall lowers mu.Lock()-style method calls on the synthetic sync
// package's types.
func (lo *lowerer) lowerSyncCall(call *ast.CallExpr, sel *ast.SelectorExpr, env *env) error {
	selection, ok := lo.info.Selections[sel]
	if !ok {
		return lo.errAt(call.Pos(), "unsupported selector call")
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lo.errAt(call.Pos(), "method calls outside package sync are unsupported")
	}
	s, err := lo.resolveSyncExpr(unparen(sel.X), env)
	if err != nil {
		return lo.errAt(call.Pos(), "%s", err)
	}
	method := fn.Name()
	switch s.kind {
	case "mutex":
		switch method {
		case "Lock":
			lo.emit(env, &sim.Lock{M: s.id})
		case "Unlock":
			lo.emit(env, &sim.Unlock{M: s.id})
		default:
			return lo.errAt(call.Pos(), "sync.Mutex has no supported method %s", method)
		}
	case "rwmutex":
		switch method {
		case "Lock":
			lo.emit(env, &sim.WLock{M: s.id})
		case "Unlock":
			lo.emit(env, &sim.WUnlock{M: s.id})
		case "RLock":
			lo.emit(env, &sim.RLock{M: s.id})
		case "RUnlock":
			lo.emit(env, &sim.RUnlock{M: s.id})
		default:
			return lo.errAt(call.Pos(), "sync.RWMutex has no supported method %s", method)
		}
	case "wg":
		switch method {
		case "Add":
			if _, ok := lo.constOrKnown(call.Args[0], env); !ok {
				return lo.errAt(call.Pos(), "wg.Add needs a constant delta")
			}
			// Add itself emits nothing: the Wait count comes from the
			// statically counted Done posts.
		case "Done":
			lo.sigCount[s.key] += env.mult
			lo.emit(env, &sim.Signal{C: s.id})
		case "Wait":
			if lo.analyze {
				return nil // pass 1 is still counting the Done posts
			}
			n := lo.waitN[s.key]
			if n <= 0 {
				return lo.errAt(call.Pos(), "wg.Wait() but no wg.Done() anywhere in the program")
			}
			if lo.waitEmitted[s.key] {
				return lo.errAt(call.Pos(), "a WaitGroup may be Waited on from only one place")
			}
			lo.waitEmitted[s.key] = true
			for i := 0; i < n; i++ {
				lo.emit(env, &sim.Wait{C: s.id})
			}
		default:
			return lo.errAt(call.Pos(), "sync.WaitGroup has no supported method %s", method)
		}
	default:
		return lo.errAt(call.Pos(), "cannot call %s on a channel", method)
	}
	return nil
}

// inlineCall expands a call to a top-level helper function at the call
// site, in the caller's thread context. The callee's locals are fresh
// per (function, context) — two sequential calls from one thread share
// them, which is harmless since same-thread accesses never race.
func (lo *lowerer) inlineCall(call *ast.CallExpr, caller *env) error {
	name := unparen(call.Fun).(*ast.Ident).Name
	decl := lo.funcs[name]
	for _, f := range caller.inline {
		if f == decl {
			return lo.errAt(call.Pos(), "recursive call to %s is unsupported", name)
		}
	}
	ienv := &env{
		ctx: caller.ctx, parent: caller,
		locals:     map[types.Object]*object{},
		syncLocals: map[types.Object]*syncObj{},
		consts:     map[types.Object]int64{},
		inline:     append(caller.inline[:len(caller.inline):len(caller.inline)], decl),
		mult:       caller.mult,
		out:        caller.out,
	}
	if err := lo.bindParams(decl.Type.Params, call.Args, caller, ienv); err != nil {
		return err
	}
	return lo.lowerFuncBody(decl.Body.List, ienv, true)
}

// bindParams evaluates call arguments in the caller's environment and binds
// the parameters in the callee's: sync objects and channels alias, whole
// aggregates alias their object, constant scalars become unroll-time known
// values, and anything else becomes a fresh callee-local word.
func (lo *lowerer) bindParams(params *ast.FieldList, args []ast.Expr, cenv, fenv *env) error {
	objs := paramObjects(lo.info, params)
	if len(objs) != len(args) {
		return fmt.Errorf("frontend: call has %d args for %d params", len(args), len(objs))
	}
	for i, p := range objs {
		arg := args[i]
		t := p.Type()
		if isChan(t) || syncTypeName(t) != "" {
			s, err := lo.resolveSyncExpr(unparen(arg), cenv)
			if err != nil {
				return lo.errAt(arg.Pos(), "%s", err)
			}
			fenv.syncLocals[p] = s
			continue
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map, *types.Array, *types.Struct:
			id, ok := unparen(arg).(*ast.Ident)
			if !ok {
				return lo.errAt(arg.Pos(), "aggregate arguments must be plain variables")
			}
			o, err := lo.resolveVar(lo.useOf(id), cenv)
			if err != nil {
				return lo.errAt(arg.Pos(), "%s", err)
			}
			fenv.locals[p] = o // the param aliases the caller's object
			continue
		}
		// Scalars: the caller reads the argument now; a constant-known
		// value flows into the callee for element addressing.
		if err := lo.evalReads(arg, cenv); err != nil {
			return err
		}
		if v, ok := lo.constOrKnown(arg, cenv); ok {
			fenv.consts[p] = v
		}
		if err := lo.wrapAt(arg.Pos(), lo.defineLocal(fenv, p, 0)); err != nil {
			return err
		}
		// The parameter's initial store is invisible thread-local setup.
	}
	return nil
}

func paramObjects(info *types.Info, params *ast.FieldList) []types.Object {
	var out []types.Object
	if params == nil {
		return out
	}
	for _, f := range params.List {
		for _, n := range f.Names {
			out = append(out, info.Defs[n])
		}
	}
	return out
}

// lowerGo lowers one go statement into a new worker thread. The body is
// lowered fresh per spawn (so constant-bound addressing like buf[id] with a
// per-instance id parameter resolves per worker), while position-keyed
// sites keep static identity shared across the instances.
func (lo *lowerer) lowerGo(g *ast.GoStmt, menv *env) error {
	if !menv.inMain {
		return lo.errAt(g.Pos(), "go statements are supported only in main (no nested spawns)")
	}
	call := g.Call
	var body []sim.Instr
	wenv := &env{
		ctx: lo.nextCtx, parent: menv,
		locals:     map[types.Object]*object{},
		syncLocals: map[types.Object]*syncObj{},
		consts:     map[types.Object]int64{},
		mult:       1,
		out:        &body,
	}
	lo.nextCtx++

	switch fun := unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if err := lo.bindParams(fun.Type.Params, call.Args, menv, wenv); err != nil {
			return err
		}
		if err := lo.lowerFuncBody(fun.Body.List, wenv, true); err != nil {
			return err
		}
	case *ast.Ident:
		decl, ok := lo.funcs[fun.Name]
		if !ok {
			return lo.errAt(g.Pos(), "go target %s is not a top-level function", fun.Name)
		}
		wenv.parent = nil // named functions capture nothing
		wenv.inline = []*ast.FuncDecl{decl}
		if err := lo.bindParams(decl.Type.Params, call.Args, menv, wenv); err != nil {
			return err
		}
		if err := lo.lowerFuncBody(decl.Body.List, wenv, true); err != nil {
			return err
		}
	default:
		return lo.errAt(g.Pos(), "unsupported go target %T", fun)
	}

	lo.workers = append(lo.workers, body)
	if !lo.spawned {
		// Everything lowered so far ran before the first spawn: it is the
		// single-threaded Setup, ordered before every worker by the fork
		// edge. Main's remaining statements become the continuation worker.
		lo.spawned = true
		lo.cur = &lo.cont
	}
	return nil
}
