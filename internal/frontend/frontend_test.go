package frontend

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func compile(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile("test", []byte(src))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

// TestCompileErrors pins the frontend's refusal messages: unsupported Go must
// fail loudly at compile time, never lower to a silently wrong program.
func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no-main", `package main
var x int`, "no func main"},
		{"method", `package main
type T struct{}
func (T) M() {}
func main() {}`, "methods are unsupported"},
		{"pointer-deref", `package main
var p *int
func main() { _ = *p }`, "pointer dereference is unsupported"},
		{"unknown-func", `package main
var f func()
func main() { f() }`, "unknown function"},
		{"recursion", `package main
func loop() { loop() }
func main() { loop() }`, "recursive call"},
		{"non-const-bound", `package main
var n int
func main() {
	for i := 0; i < n; i++ {
	}
}`, "loop bound must be a constant"},
		{"wait-without-done", `package main
import "sync"
var wg sync.WaitGroup
func main() { wg.Wait() }`, "no wg.Done() anywhere"},
		{"assign-to-iv", `package main
func main() {
	for i := 0; i < 4; i++ {
		i = 2
	}
}`, "cannot assign to loop induction variable"},
		{"slice-without-make", `package main
var s []int
func main() { s[0] = 1 }`, "before make"},
		{"nested-spawn", `package main
func spawn() { go work() }
func work()  {}
func main()  { spawn() }`, "go statements are supported only in main"},
		{"non-sync-import", `package main
import "fmt"
func main() { fmt.Println("hi") }`, `import "fmt" not supported`},
		{"two-ivs", `package main
var a [16]int
func main() {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a[i+j] = 1
		}
	}
}`, "two induction variables"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile("test", []byte(tc.src))
			if err == nil {
				t.Fatalf("compiled, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

// TestSetupContinuationSplit pins the phase structure: statements before the
// first spawn are single-threaded Setup, main's remainder is one more worker.
func TestSetupContinuationSplit(t *testing.T) {
	p := compile(t, `package main
var a, b int
var done chan bool
func main() {
	done = make(chan bool)
	a = 1
	go func() {
		b = a
		done <- true
	}()
	b = 2
	<-done
}`)
	// Setup: chan make is sync-only, then the write of a.
	if len(p.Prog.Workers) != 2 {
		t.Fatalf("workers = %d, want 2 (goroutine + continuation)", len(p.Prog.Workers))
	}
	setupWrites := countAccesses(p.Prog.Setup)
	if setupWrites != 1 {
		t.Fatalf("setup has %d accesses, want 1 (a = 1)", setupWrites)
	}
	// The continuation holds b = 2 and the recv.
	cont := p.Prog.Workers[1]
	if countAccesses(cont) != 1 {
		t.Fatalf("continuation has %d accesses, want 1 (b = 2)", countAccesses(cont))
	}
	hasWait := false
	for _, in := range cont {
		if _, ok := in.(*sim.Wait); ok {
			hasWait = true
		}
	}
	if !hasWait {
		t.Fatal("continuation lost the <-done wait")
	}
}

func countAccesses(body []sim.Instr) int {
	n := 0
	for _, in := range body {
		switch in := in.(type) {
		case *sim.MemAccess:
			n++
		case *sim.Loop:
			n += countAccesses(in.Body)
		}
	}
	return n
}

func collectAccesses(body []sim.Instr) []*sim.MemAccess {
	var out []*sim.MemAccess
	for _, in := range body {
		switch in := in.(type) {
		case *sim.MemAccess:
			out = append(out, in)
		case *sim.Loop:
			out = append(out, collectAccesses(in.Body)...)
		}
	}
	return out
}

// TestSiteIdentityAcrossInstances pins static site identity: a spawn loop
// unrolls one body into N workers, but every re-emission of a statement
// shares the site keyed by its source position.
func TestSiteIdentityAcrossInstances(t *testing.T) {
	p := compile(t, `package main
var x int
var done chan bool
func main() {
	done = make(chan bool)
	for i := 0; i < 3; i++ {
		go func() {
			x = 1
			done <- true
		}()
	}
	<-done
	<-done
	<-done
}`)
	if len(p.Prog.Workers) != 4 {
		t.Fatalf("workers = %d, want 4", len(p.Prog.Workers))
	}
	var writeSites []sim.SiteID
	for _, w := range p.Prog.Workers[:3] {
		for _, m := range collectAccesses(w) {
			if m.Write {
				writeSites = append(writeSites, m.Site)
			}
		}
	}
	if len(writeSites) != 3 {
		t.Fatalf("x = 1 emitted %d writes across instances, want 3", len(writeSites))
	}
	if writeSites[0] != writeSites[1] || writeSites[1] != writeSites[2] {
		t.Fatalf("unrolled instances got distinct sites %v, want one shared site", writeSites)
	}
	s, ok := p.Site(writeSites[0])
	if !ok || s.Line != 8 || !s.Write {
		t.Fatalf("site maps to %+v, want write on line 8", s)
	}
}

// TestPerInstanceLocals pins object identity: a local declared inside a
// goroutine body is a fresh object per unrolled instance (never falsely
// shared), while a captured outer variable is one shared object.
func TestPerInstanceLocals(t *testing.T) {
	p := compile(t, `package main
var shared int
var done chan bool
func main() {
	done = make(chan bool)
	for i := 0; i < 3; i++ {
		go func() {
			mine := shared
			_ = mine
			done <- true
		}()
	}
	<-done
	<-done
	<-done
}`)
	var mine []Object
	for _, o := range p.Objects {
		if o.Name == "mine" {
			mine = append(mine, o)
		}
	}
	if len(mine) != 3 {
		t.Fatalf("got %d 'mine' objects, want 3 (one per goroutine instance)", len(mine))
	}
	bases := map[any]bool{}
	for _, o := range mine {
		if o.Shared {
			t.Fatalf("instance-local %+v marked shared", o)
		}
		bases[o.Base] = true
	}
	if len(bases) != 3 {
		t.Fatalf("instance locals share addresses: %+v", mine)
	}
	for _, o := range p.Objects {
		if o.Name == "shared" && !o.Shared {
			t.Fatalf("captured global %+v not marked shared", o)
		}
	}
}

// TestAddrLoopFolding pins element addressing: buf[coeff*i + c] inside a
// counted loop lowers to an AddrLoop expression with the loop's start and
// step folded into stride and offset.
func TestAddrLoopFolding(t *testing.T) {
	p := compile(t, `package main
var buf [64]int
var done chan bool
func main() {
	done = make(chan bool)
	go func() {
		for i := 2; i < 10; i += 2 {
			buf[3*i+1] = 0
		}
		done <- true
	}()
	<-done
}`)
	acc := collectAccesses(p.Prog.Workers[0])
	if len(acc) != 1 {
		t.Fatalf("worker has %d accesses, want 1", len(acc))
	}
	a := acc[0].Addr
	if a.Mode != sim.AddrLoop {
		t.Fatalf("mode = %v, want AddrLoop", a.Mode)
	}
	// Source index 3*i+1 with i = 2 + 2*iter: word = 6*iter + 7.
	if a.Stride != 6 || a.Off != 7 || a.Depth != 0 {
		t.Fatalf("addr = stride %d off %d depth %d, want stride 6 off 7 depth 0", a.Stride, a.Off, a.Depth)
	}
}

// TestStructFieldOffsets pins field-granular addressing: distinct fields of
// one struct get distinct word offsets, and a mutex field occupies no words.
func TestStructFieldOffsets(t *testing.T) {
	p := compile(t, `package main
import "sync"
type rec struct {
	mu sync.Mutex
	a  int
	b  int
}
var r rec
var done chan bool
func main() {
	done = make(chan bool)
	go func() {
		r.mu.Lock()
		r.a = 1
		r.mu.Unlock()
		done <- true
	}()
	r.mu.Lock()
	r.b = 2
	r.mu.Unlock()
	<-done
}`)
	var rObj Object
	for _, o := range p.Objects {
		if o.Name == "r" {
			rObj = o
		}
	}
	if rObj.Words != 2 {
		t.Fatalf("r spans %d words, want 2 (mutex field is word-free)", rObj.Words)
	}
	addrs := map[any]bool{}
	for _, w := range p.Prog.Workers {
		for _, m := range collectAccesses(w) {
			addrs[m.Addr.Base] = true
		}
	}
	if len(addrs) != 2 {
		t.Fatalf("field accesses hit %d distinct words, want 2", len(addrs))
	}
}

// TestCompileDeterministic pins that compiling the same source twice yields
// identical site tables and IR — the corpus cache hands one Program to every
// caller, so lowering must be a pure function of the source.
func TestCompileDeterministic(t *testing.T) {
	src, err := corpusFS.ReadFile("testdata/corpus/doublecheck.go")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Compile("doublecheck", src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile("doublecheck", src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Sites, p2.Sites) {
		t.Fatal("site tables differ between identical compiles")
	}
	if !reflect.DeepEqual(p1.Prog, p2.Prog) {
		t.Fatal("lowered IR differs between identical compiles")
	}
}

// TestSiteOnAmbiguity pins the ground-truth resolver's refusal to guess.
func TestSiteOnAmbiguity(t *testing.T) {
	p := compile(t, `package main
var a, b int
var done chan bool
func main() {
	done = make(chan bool)
	go func() {
		a = 1
		done <- true
	}()
	b = a
	<-done
}`)
	// Line 10 reads a; exactly one read site.
	if _, err := p.SiteOn(10, false); err != nil {
		t.Fatalf("unique site rejected: %v", err)
	}
	if _, err := p.SiteOn(99, true); err == nil {
		t.Fatal("missing site resolved")
	}
}
