package frontend

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/memmodel"
	"repro/internal/sim"
)

// object is one lowered data object: a package-level or function-local
// variable with a contiguous word range in the simulated address space.
// Objects are line-aligned so a cross-object race is never a false-sharing
// artifact; words *within* an array or struct share lines naturally, which
// is exactly the false-sharing behaviour the HTM fast path must tolerate.
type object struct {
	root  types.Object
	key   objKey
	name  string
	base  memmodel.Addr
	words int
	isMap bool
}

// typeWords returns the word footprint of a lowered type: one word per
// scalar, pointer, or map (whole-object granularity), element-granular for
// arrays, recursive for structs. Slices report an error here — their extent
// comes from the make() that creates them.
func (lo *lowerer) typeWords(t types.Type) (int, error) {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.String || u.Info()&(types.IsNumeric|types.IsBoolean) != 0 {
			return 1, nil
		}
		return 0, fmt.Errorf("unsupported basic type %s", u)
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return 1, nil
	case *types.Array:
		ew, err := lo.typeWords(u.Elem())
		if err != nil {
			return 0, err
		}
		return int(u.Len()) * ew, nil
	case *types.Struct:
		if syncTypeName(t) != "" {
			return 0, nil // sync objects carry no data words
		}
		total := 0
		for i := 0; i < u.NumFields(); i++ {
			fw, err := lo.typeWords(u.Field(i).Type())
			if err != nil {
				return 0, err
			}
			total += fw
		}
		return total, nil
	default:
		return 0, fmt.Errorf("unsupported type %s", t)
	}
}

// fieldOffset returns the word offset and footprint of field index i inside
// struct type st.
func (lo *lowerer) fieldOffset(st *types.Struct, i int) (off, words int, err error) {
	for f := 0; f < i; f++ {
		fw, err := lo.typeWords(st.Field(f).Type())
		if err != nil {
			return 0, 0, err
		}
		off += fw
	}
	words, err = lo.typeWords(st.Field(i).Type())
	return off, words, err
}

// ref is a resolved lvalue: an object plus the address expression selecting
// the accessed word(s) within it.
type ref struct {
	obj   *object
	addr  sim.AddrExpr
	words int    // >1 means an aggregate copy: one access per word
	label string // display path for the site table
	pos   token.Pos
}

// affine is an index expression reduced to coeff*iv + c, where iv is a
// sim-loop induction variable (nil when the index is fully constant).
type affine struct {
	iv    types.Object
	coeff int64
	c     int64
}

// evalAffine reduces an index expression to affine form over at most one
// enclosing sim-loop induction variable. Constants fold; anything else is
// an unsupported-index error.
func (lo *lowerer) evalAffine(e ast.Expr, env *env) (affine, error) {
	if c, ok := lo.constValue(e); ok {
		return affine{c: c}, nil
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return lo.evalAffine(e.X, env)
	case *ast.Ident:
		obj := lo.useOf(e)
		if v, ok := env.lookupConst(obj); ok {
			return affine{c: v}, nil
		}
		if env.loopDepthOf(obj) >= 0 {
			return affine{iv: obj, coeff: 1}, nil
		}
		return affine{}, fmt.Errorf("index %s is neither constant nor a loop induction variable", e.Name)
	case *ast.BinaryExpr:
		x, err := lo.evalAffine(e.X, env)
		if err != nil {
			return affine{}, err
		}
		y, err := lo.evalAffine(e.Y, env)
		if err != nil {
			return affine{}, err
		}
		switch e.Op {
		case token.ADD:
			if x.iv != nil && y.iv != nil {
				return affine{}, fmt.Errorf("index uses two induction variables")
			}
			if y.iv != nil {
				x, y = y, x
			}
			return affine{iv: x.iv, coeff: x.coeff, c: x.c + y.c}, nil
		case token.SUB:
			if y.iv != nil {
				return affine{}, fmt.Errorf("cannot subtract an induction variable")
			}
			return affine{iv: x.iv, coeff: x.coeff, c: x.c - y.c}, nil
		case token.MUL:
			if x.iv != nil && y.iv != nil {
				return affine{}, fmt.Errorf("index multiplies two induction variables")
			}
			if y.iv != nil {
				x, y = y, x
			}
			if x.iv != nil {
				return affine{iv: x.iv, coeff: x.coeff * y.c, c: x.c * y.c}, nil
			}
			return affine{c: x.c * y.c}, nil
		default:
			return affine{}, fmt.Errorf("unsupported index operator %s", e.Op)
		}
	default:
		return affine{}, fmt.Errorf("unsupported index expression")
	}
}

// constValue returns the type-checked constant value of e if it has one.
func (lo *lowerer) constValue(e ast.Expr) (int64, bool) {
	if tv, ok := lo.info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		return constant.Int64Val(tv.Value)
	}
	return 0, false
}

// loopFrameOf finds the enclosing sim-loop frame for an induction variable,
// returning its AddrLoop depth (0 = innermost).
func (e *env) loopFrameOf(obj types.Object) (loopFrame, int) {
	for n := e; n != nil; n = n.parent {
		for i, f := range n.loops {
			if f.iv == obj {
				return f, len(n.loops) - 1 - i
			}
		}
		if len(n.loops) > 0 {
			break
		}
	}
	return loopFrame{}, -1
}

// resolveRef resolves an addressable expression (identifier, field
// selector, or index expression) to a ref. Reads needed to compute the
// element address are emitted by the caller via evalReads beforehand.
func (lo *lowerer) resolveRef(e ast.Expr, env *env) (*ref, error) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return lo.resolveRef(e.X, env)

	case *ast.Ident:
		obj := lo.useOf(e)
		if obj == nil {
			return nil, fmt.Errorf("cannot resolve %s", e.Name)
		}
		o, err := lo.resolveVar(obj, env)
		if err != nil {
			return nil, err
		}
		words := o.words
		if o.isMap {
			words = 1
		}
		return &ref{obj: o, addr: sim.Fixed(o.base), words: words, label: o.name, pos: e.Pos()}, nil

	case *ast.SelectorExpr:
		base, err := lo.resolveRef(unparen(e.X), env)
		if err != nil {
			return nil, err
		}
		st, ok := lo.info.Types[e.X].Type.Underlying().(*types.Struct)
		if !ok {
			return nil, fmt.Errorf("field selector on non-struct %s", lo.info.Types[e.X].Type)
		}
		sel, ok := lo.info.Selections[e]
		if !ok || len(sel.Index()) != 1 {
			return nil, fmt.Errorf("unsupported selector %s", e.Sel.Name)
		}
		off, words, err := lo.fieldOffset(st, sel.Index()[0])
		if err != nil {
			return nil, err
		}
		r := *base
		r.addr = addWordOffset(r.addr, int64(off))
		r.words = words
		r.label += "." + e.Sel.Name
		r.pos = e.Pos()
		return &r, nil

	case *ast.IndexExpr:
		base, err := lo.resolveRef(unparen(e.X), env)
		if err != nil {
			return nil, err
		}
		bt := lo.info.Types[e.X].Type.Underlying()
		if _, isMap := bt.(*types.Map); isMap {
			// Whole-object granularity: any keyed access touches the one
			// map word, as the Go race detector's map-header check does.
			r := *base
			r.words = 1
			r.label += "[...]"
			r.pos = e.Pos()
			return &r, nil
		}
		var elem types.Type
		switch bt := bt.(type) {
		case *types.Array:
			elem = bt.Elem()
		case *types.Slice:
			elem = bt.Elem()
		default:
			return nil, fmt.Errorf("index of non-indexable type %s", bt)
		}
		ew, err := lo.typeWords(elem)
		if err != nil {
			return nil, err
		}
		af, err := lo.evalAffine(e.Index, env)
		if err != nil {
			return nil, err
		}
		r := *base
		r.words = ew
		r.pos = e.Pos()
		if af.iv == nil {
			r.addr = addWordOffset(r.addr, af.c*int64(ew))
			r.label += "[.]"
			return &r, nil
		}
		if r.addr.Mode != sim.AddrFixed {
			return nil, fmt.Errorf("nested loop-indexed aggregates are unsupported")
		}
		frame, depth := env.loopFrameOf(af.iv)
		if depth < 0 {
			return nil, fmt.Errorf("index variable escapes its loop")
		}
		// The engine's iteration counter runs 0..Count-1; the source
		// variable is start + iter*step, so fold start and step in.
		coeff := af.coeff * frame.step
		off := (af.coeff*frame.start + af.c) * int64(ew)
		if coeff <= 0 {
			return nil, fmt.Errorf("non-positive loop stride %d", coeff)
		}
		if off < 0 {
			return nil, fmt.Errorf("negative element offset %d", off)
		}
		r.addr = sim.AddrExpr{
			Base:   r.addr.Base,
			Mode:   sim.AddrLoop,
			Stride: uint64(coeff) * uint64(ew),
			Off:    uint64(off),
			Depth:  depth,
		}
		r.label += "[i]"
		return &r, nil

	case *ast.StarExpr:
		return nil, fmt.Errorf("pointer dereference is unsupported (pointers are opaque word values)")

	default:
		return nil, fmt.Errorf("unsupported lvalue %T", e)
	}
}

// addWordOffset shifts a fixed address expression by a word count.
func addWordOffset(a sim.AddrExpr, words int64) sim.AddrExpr {
	a.Base += memmodel.Addr(words * memmodel.WordSize)
	return a
}
