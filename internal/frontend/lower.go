package frontend

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/memmodel"
	"repro/internal/sim"
)

// ctxID numbers thread contexts: 0 is main (Setup plus main's continuation,
// which are ordered by the fork edge), and each spawned goroutine instance
// gets a fresh id. An object touched by two or more contexts is shared.
type ctxID int

// objKey is the pass-stable identity of a data object: the type-checker
// object plus the context whose function body defined it, so locals of two
// unrolled goroutine instances stay distinct objects.
type objKey struct {
	root types.Object
	inst ctxID
}

// skey is the pass-stable identity of a synchronization object.
type skey struct {
	root types.Object
	path string
	inst ctxID
}

// syncObj is one lowered synchronization object.
type syncObj struct {
	id   sim.SyncID
	kind string // "mutex" | "rwmutex" | "wg" | "chan"
	key  skey
}

type siteKey struct {
	pos   token.Pos
	write bool
}

type lowerer struct {
	name   string
	fset   *token.FileSet
	file   *ast.File
	info   *types.Info
	funcs  map[string]*ast.FuncDecl
	mainFn *ast.FuncDecl
	pkgVar []*ast.ValueSpec // package-level var specs in source order

	// analyze is true on pass 1, which runs the same traversal but only
	// records context sets and semaphore post counts.
	analyze bool

	al       *memmodel.Allocator
	objs     map[objKey]*object
	objList  []*object
	syncs    map[skey]*syncObj
	sites    map[siteKey]sim.SiteID
	siteList []Site
	nextSite sim.SiteID
	nextSync sim.SyncID
	nextLoop sim.LoopID

	ctxs        map[objKey]map[ctxID]bool
	sigCount    map[skey]int // pass-1 static Signal count per semaphore
	waitN       map[skey]int // pass-2 input: Waits to emit per wg.Wait
	waitEmitted map[skey]bool
	shared      map[objKey]bool

	setup   []sim.Instr
	cont    []sim.Instr
	workers [][]sim.Instr
	cur     *[]sim.Instr
	nextCtx ctxID
	spawned bool
}

// env is the per-scope lowering environment. Lookup maps are keyed by
// type-checker object identity, so sharing maps across nested scopes is
// safe; parent chains let closures resolve captured locals.
type env struct {
	ctx    ctxID
	inMain bool // go statements are permitted (main's top level)
	parent *env

	locals     map[types.Object]*object
	syncLocals map[types.Object]*syncObj
	consts     map[types.Object]int64 // unroll-time known values

	loops  []loopFrame
	inline []*ast.FuncDecl
	mult   int // static execution multiplier from enclosing counted loops
	defers *[]*ast.CallExpr

	out *[]sim.Instr // nil: emit to the lowerer's setup/continuation cursor
}

type loopFrame struct {
	iv          types.Object
	start, step int64
}

func (e *env) loopDepthOf(obj types.Object) int {
	if obj == nil {
		return -1
	}
	for n := e; n != nil; n = n.parent {
		for i, f := range n.loops {
			if f.iv == obj {
				return len(n.loops) - 1 - i
			}
		}
		if len(n.loops) > 0 {
			// sim loops do not cross function boundaries; stop at the
			// first env that owns loop frames.
			break
		}
	}
	return -1
}

func (e *env) lookupLocal(obj types.Object) (*object, bool) {
	for n := e; n != nil; n = n.parent {
		if o, ok := n.locals[obj]; ok {
			return o, true
		}
	}
	return nil, false
}

func (e *env) lookupSync(obj types.Object) (*syncObj, bool) {
	for n := e; n != nil; n = n.parent {
		if s, ok := n.syncLocals[obj]; ok {
			return s, true
		}
	}
	return nil, false
}

func (e *env) lookupConst(obj types.Object) (int64, bool) {
	for n := e; n != nil; n = n.parent {
		if v, ok := n.consts[obj]; ok {
			return v, true
		}
	}
	return 0, false
}

func newLowerer(name string, fset *token.FileSet, file *ast.File, info *types.Info) *lowerer {
	lo := &lowerer{name: name, fset: fset, file: file, info: info}
	lo.reset()
	return lo
}

// reset clears all per-pass state; declarations and pass-1 outputs consumed
// by pass 2 (shared, waitN) are assigned by Compile between passes.
func (lo *lowerer) reset() {
	lo.al = memmodel.NewAllocator(1 << 20)
	lo.objs = map[objKey]*object{}
	lo.objList = nil
	lo.syncs = map[skey]*syncObj{}
	lo.sites = map[siteKey]sim.SiteID{}
	lo.siteList = nil
	lo.nextSite = 1
	lo.nextSync = 1
	lo.nextLoop = 1
	lo.ctxs = map[objKey]map[ctxID]bool{}
	lo.sigCount = map[skey]int{}
	lo.waitEmitted = map[skey]bool{}
	lo.setup, lo.cont, lo.workers = nil, nil, nil
	lo.cur = nil
	lo.nextCtx = 1
	lo.spawned = false
	if lo.shared == nil {
		lo.shared = map[objKey]bool{}
	}
}

func (lo *lowerer) computeShared() map[objKey]bool {
	shared := map[objKey]bool{}
	for k, set := range lo.ctxs {
		if len(set) >= 2 {
			shared[k] = true
		}
	}
	return shared
}

// errAt wraps an error with a source position.
func (lo *lowerer) errAt(pos token.Pos, format string, args ...any) error {
	return fmt.Errorf("frontend: %s: %s", lo.fset.Position(pos), fmt.Sprintf(format, args...))
}

func (lo *lowerer) collectDecls() error {
	lo.funcs = map[string]*ast.FuncDecl{}
	for _, d := range lo.file.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Recv != nil {
				return lo.errAt(d.Pos(), "methods are unsupported")
			}
			lo.funcs[d.Name.Name] = d
			if d.Name.Name == "main" {
				lo.mainFn = d
			}
		case *ast.GenDecl:
			if d.Tok != token.VAR {
				continue // imports, consts, and type decls need no lowering
			}
			for _, spec := range d.Specs {
				lo.pkgVar = append(lo.pkgVar, spec.(*ast.ValueSpec))
			}
		}
	}
	if lo.mainFn == nil || lo.mainFn.Body == nil {
		return fmt.Errorf("frontend: %s: no func main", lo.name)
	}
	return nil
}

// run performs one lowering pass over the file.
func (lo *lowerer) run() error {
	lo.cur = &lo.setup
	root := &env{
		ctx: 0, inMain: true,
		locals:     map[types.Object]*object{},
		syncLocals: map[types.Object]*syncObj{},
		consts:     map[types.Object]int64{},
		mult:       1,
	}
	// Package-level initializers run before main: lower them into Setup.
	for _, spec := range lo.pkgVar {
		for i, name := range spec.Names {
			if i >= len(spec.Values) {
				break
			}
			if err := lo.lowerInit(name, spec.Values[i], root); err != nil {
				return err
			}
		}
	}
	return lo.lowerFuncBody(lo.mainFn.Body.List, root, false)
}

func (lo *lowerer) emit(env *env, ins ...sim.Instr) {
	if env.out != nil {
		*env.out = append(*env.out, ins...)
		return
	}
	*lo.cur = append(*lo.cur, ins...)
}

func (lo *lowerer) useOf(id *ast.Ident) types.Object {
	if o := lo.info.Uses[id]; o != nil {
		return o
	}
	return lo.info.Defs[id]
}

// ---------------------------------------------------------------------------
// Objects and sync objects

// resolveVar returns the data object behind a variable identifier,
// allocating package-level objects on first touch.
func (lo *lowerer) resolveVar(obj types.Object, env *env) (*object, error) {
	if o, ok := env.lookupLocal(obj); ok {
		return o, nil
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return lo.globalObject(obj, 0)
	}
	return nil, fmt.Errorf("local %s used before its declaration was lowered", obj.Name())
}

func (lo *lowerer) globalObject(root types.Object, extentWords int) (*object, error) {
	return lo.makeObject(objKey{root: root}, root.Name(), root.Type(), extentWords)
}

func (lo *lowerer) makeObject(key objKey, name string, t types.Type, extentWords int) (*object, error) {
	if o, ok := lo.objs[key]; ok {
		return o, nil
	}
	_, isMap := t.Underlying().(*types.Map)
	words := extentWords
	if words == 0 {
		if _, ok := t.Underlying().(*types.Slice); ok {
			return nil, fmt.Errorf("slice %s used before make([]T, n) fixes its extent", name)
		}
		var err error
		words, err = lo.typeWords(t)
		if err != nil {
			return nil, fmt.Errorf("variable %s: %w", name, err)
		}
	}
	if words <= 0 {
		words = 1
	}
	o := &object{
		root:  key.root,
		key:   key,
		name:  name,
		base:  lo.al.Alloc(uint64(words)*memmodel.WordSize, memmodel.LineSize),
		words: words,
		isMap: isMap,
	}
	lo.objs[key] = o
	lo.objList = append(lo.objList, o)
	return o, nil
}

// defineLocal registers a newly declared local in env. Sync-typed and
// channel-typed locals become synchronization objects; everything else
// becomes a data object (slices wait for their make()).
func (lo *lowerer) defineLocal(env *env, obj types.Object, extentWords int) error {
	if obj == nil {
		return nil
	}
	t := obj.Type()
	switch syncTypeName(t) {
	case "Mutex":
		env.syncLocals[obj] = lo.newSync(skey{root: obj, inst: env.ctx}, "mutex")
		return nil
	case "RWMutex":
		env.syncLocals[obj] = lo.newSync(skey{root: obj, inst: env.ctx}, "rwmutex")
		return nil
	case "WaitGroup":
		env.syncLocals[obj] = lo.newSync(skey{root: obj, inst: env.ctx}, "wg")
		return nil
	}
	if isChan(t) {
		env.syncLocals[obj] = lo.newSync(skey{root: obj, inst: env.ctx}, "chan")
		return nil
	}
	if _, ok := t.Underlying().(*types.Slice); ok && extentWords == 0 {
		return nil // allocated when make() fixes the extent
	}
	o, err := lo.makeObject(objKey{root: obj, inst: env.ctx}, obj.Name(), t, extentWords)
	if err != nil {
		return err
	}
	env.locals[obj] = o
	return nil
}

func (lo *lowerer) newSync(key skey, kind string) *syncObj {
	if s, ok := lo.syncs[key]; ok {
		return s
	}
	s := &syncObj{id: lo.nextSync, kind: kind, key: key}
	lo.nextSync++
	lo.syncs[key] = s
	return s
}

// resolveSyncExpr resolves a channel or sync-object expression (an
// identifier or a field selector chain) to its synchronization object.
func (lo *lowerer) resolveSyncExpr(e ast.Expr, env *env) (*syncObj, error) {
	path := ""
	for {
		if sel, ok := e.(*ast.SelectorExpr); ok {
			path = sel.Sel.Name + "." + path
			e = sel.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, fmt.Errorf("unsupported synchronization expression %T", e)
	}
	obj := lo.useOf(id)
	if obj == nil {
		return nil, fmt.Errorf("cannot resolve %s", id.Name)
	}
	if path == "" {
		if s, ok := env.lookupSync(obj); ok {
			return s, nil
		}
	}
	if obj.Parent() != obj.Pkg().Scope() && path == "" {
		return nil, fmt.Errorf("sync object %s used before its declaration was lowered", id.Name)
	}
	kind := ""
	t := obj.Type()
	if path == "" {
		switch syncTypeName(t) {
		case "Mutex":
			kind = "mutex"
		case "RWMutex":
			kind = "rwmutex"
		case "WaitGroup":
			kind = "wg"
		default:
			if isChan(t) {
				kind = "chan"
			}
		}
	} else {
		// Field-path sync objects (a mutex inside a struct).
		kind = "mutex"
	}
	if kind == "" {
		return nil, fmt.Errorf("%s is not a synchronization object", id.Name)
	}
	return lo.newSync(skey{root: obj, path: path}, kind), nil
}

// ---------------------------------------------------------------------------
// Access emission

const maxAggregateWords = 16

// emitAccessExpr lowers one addressable expression into memory-access
// instructions (one per word for small aggregate copies).
func (lo *lowerer) emitAccessExpr(e ast.Expr, write bool, env *env) error {
	if id, ok := unparen(e).(*ast.Ident); ok {
		obj := lo.useOf(id)
		if env.loopDepthOf(obj) >= 0 {
			if write {
				return lo.errAt(e.Pos(), "cannot assign to loop induction variable %s", id.Name)
			}
			return nil // loop counters live in the engine, not memory
		}
	}
	if idx, ok := unparen(e).(*ast.IndexExpr); ok {
		if err := lo.evalReads(idx.Index, env); err != nil {
			return err
		}
	}
	r, err := lo.resolveRef(unparen(e), env)
	if err != nil {
		return lo.errAt(e.Pos(), "%s", err)
	}
	return lo.emitRef(r, write, env)
}

func (lo *lowerer) emitRef(r *ref, write bool, env *env) error {
	words := r.words
	if words < 1 {
		words = 1
	}
	if words > maxAggregateWords {
		return lo.errAt(r.pos, "aggregate copy of %s spans %d words (max %d)", r.label, words, maxAggregateWords)
	}
	lo.recordCtx(r.obj, env)
	site := lo.siteFor(r.pos, write, r.label)
	local := !lo.analyze && !lo.shared[r.obj.key]
	for w := 0; w < words; w++ {
		lo.emit(env, &sim.MemAccess{
			Write: write,
			Addr:  addWordOffset(r.addr, int64(w)),
			Site:  site,
			Local: local,
		})
	}
	return nil
}

func (lo *lowerer) recordCtx(o *object, env *env) {
	set, ok := lo.ctxs[o.key]
	if !ok {
		set = map[ctxID]bool{}
		lo.ctxs[o.key] = set
	}
	set[env.ctx] = true
}

func (lo *lowerer) siteFor(pos token.Pos, write bool, label string) sim.SiteID {
	k := siteKey{pos: pos, write: write}
	if id, ok := lo.sites[k]; ok {
		return id
	}
	id := lo.nextSite
	lo.nextSite++
	lo.sites[k] = id
	p := lo.fset.Position(pos)
	lo.siteList = append(lo.siteList, Site{
		ID: id, File: p.Filename, Line: p.Line, Col: p.Column,
		Write: write, Object: label,
	})
	return id
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// evalReads emits the memory reads performed by evaluating e.
func (lo *lowerer) evalReads(e ast.Expr, env *env) error {
	switch e := e.(type) {
	case nil, *ast.BasicLit:
		return nil
	case *ast.Ident:
		obj := lo.useOf(e)
		if v, ok := obj.(*types.Var); ok && v.Name() != "_" {
			if env.loopDepthOf(obj) >= 0 {
				return nil
			}
			return lo.emitAccessExpr(e, false, env)
		}
		return nil // constants, types, true/false/nil/iota
	case *ast.ParenExpr:
		return lo.evalReads(e.X, env)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			if cl, ok := unparen(e.X).(*ast.CompositeLit); ok {
				return lo.evalReads(cl, env)
			}
			return nil // taking an address reads nothing
		case token.ARROW:
			return lo.lowerRecv(e, env)
		default:
			return lo.evalReads(e.X, env)
		}
	case *ast.BinaryExpr:
		if err := lo.evalReads(e.X, env); err != nil {
			return err
		}
		return lo.evalReads(e.Y, env)
	case *ast.SelectorExpr:
		return lo.emitAccessExpr(e, false, env)
	case *ast.IndexExpr:
		return lo.emitAccessExpr(e, false, env)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if _, isMapLit := lo.info.Types[e].Type.Underlying().(*types.Map); isMapLit {
					if err := lo.evalReads(kv.Key, env); err != nil {
						return err
					}
				}
				if err := lo.evalReads(kv.Value, env); err != nil {
					return err
				}
				continue
			}
			if err := lo.evalReads(elt, env); err != nil {
				return err
			}
		}
		return nil
	case *ast.CallExpr:
		return lo.evalCallReads(e, env)
	case *ast.StarExpr:
		return lo.errAt(e.Pos(), "pointer dereference is unsupported (pointers are opaque word values)")
	case *ast.FuncLit:
		return lo.errAt(e.Pos(), "function literals are supported only as go-statement targets")
	default:
		return lo.errAt(e.Pos(), "unsupported expression %T", e)
	}
}

// evalCallReads handles calls in expression position: len/cap, conversions,
// and nothing else (helper calls must be statements or a sole RHS).
func (lo *lowerer) evalCallReads(call *ast.CallExpr, env *env) error {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := lo.useOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				arg := call.Args[0]
				if _, isMap := lo.info.Types[arg].Type.Underlying().(*types.Map); isMap {
					return lo.emitAccessExpr(arg, false, env)
				}
				return nil // array/slice lengths are header-only in this model
			default:
				return lo.errAt(call.Pos(), "builtin %s is unsupported in expressions", b.Name())
			}
		}
		if _, isType := lo.useOf(id).(*types.TypeName); isType {
			return lo.evalReads(call.Args[0], env) // conversion T(x)
		}
		if _, isFunc := lo.funcs[id.Name]; isFunc {
			return lo.errAt(call.Pos(), "helper call %s(...) must be a statement or the sole right-hand side of an assignment", id.Name)
		}
	}
	return lo.errAt(call.Pos(), "unsupported call in expression")
}

// ---------------------------------------------------------------------------
// Statements

func (lo *lowerer) lowerFuncBody(list []ast.Stmt, env *env, allowReturn bool) error {
	var defers []*ast.CallExpr
	env.defers = &defers
	for i, s := range list {
		if ret, ok := s.(*ast.ReturnStmt); ok {
			if i != len(list)-1 {
				return lo.errAt(ret.Pos(), "return is supported only as the last statement of a function")
			}
			for _, r := range ret.Results {
				if err := lo.evalReads(r, env); err != nil {
					return err
				}
			}
			break
		}
		if err := lo.lowerStmt(s, env); err != nil {
			return err
		}
	}
	for i := len(defers) - 1; i >= 0; i-- {
		if err := lo.lowerCallStmt(defers[i], env); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) lowerBody(list []ast.Stmt, env *env) error {
	for _, s := range list {
		if err := lo.lowerStmt(s, env); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) lowerStmt(s ast.Stmt, env *env) error {
	switch s := s.(type) {
	case *ast.EmptyStmt:
		return nil
	case *ast.BlockStmt:
		return lo.lowerBody(s.List, env)
	case *ast.DeclStmt:
		return lo.lowerDeclStmt(s, env)
	case *ast.AssignStmt:
		return lo.lowerAssign(s, env)
	case *ast.IncDecStmt:
		if err := lo.emitAccessExpr(s.X, false, env); err != nil {
			return err
		}
		return lo.emitAccessExpr(s.X, true, env)
	case *ast.ExprStmt:
		call, ok := unparen(s.X).(*ast.CallExpr)
		if !ok {
			if u, isRecv := unparen(s.X).(*ast.UnaryExpr); isRecv && u.Op == token.ARROW {
				return lo.lowerRecv(u, env)
			}
			return lo.errAt(s.Pos(), "unsupported expression statement")
		}
		return lo.lowerCallStmt(call, env)
	case *ast.SendStmt:
		if err := lo.evalReads(s.Value, env); err != nil {
			return err
		}
		ch, err := lo.resolveSyncExpr(unparen(s.Chan), env)
		if err != nil {
			return lo.errAt(s.Pos(), "%s", err)
		}
		lo.sigCount[ch.key] += env.mult
		lo.emit(env, &sim.Signal{C: ch.id})
		return nil
	case *ast.GoStmt:
		return lo.lowerGo(s, env)
	case *ast.DeferStmt:
		*env.defers = append(*env.defers, s.Call)
		return nil
	case *ast.IfStmt:
		return lo.lowerIf(s, env)
	case *ast.ForStmt:
		return lo.lowerFor(s, env)
	case *ast.RangeStmt:
		return lo.lowerRange(s, env)
	case *ast.ReturnStmt:
		return lo.errAt(s.Pos(), "return is supported only as the last statement of a function")
	default:
		return lo.errAt(s.Pos(), "unsupported statement %T", s)
	}
}

func (lo *lowerer) lowerDeclStmt(d *ast.DeclStmt, env *env) error {
	gd, ok := d.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return lo.errAt(d.Pos(), "unsupported declaration")
	}
	for _, spec := range gd.Specs {
		vs := spec.(*ast.ValueSpec)
		for i, name := range vs.Names {
			var value ast.Expr
			if i < len(vs.Values) {
				value = vs.Values[i]
			}
			if err := lo.lowerInit(name, value, env); err != nil {
				return err
			}
		}
	}
	return nil
}

// lowerInit lowers one declared name with an optional initializer — used
// for both local var declarations and package-level var specs.
func (lo *lowerer) lowerInit(name *ast.Ident, value ast.Expr, env *env) error {
	obj := lo.info.Defs[name]
	if value == nil {
		if obj == nil || name.Name == "_" {
			return nil
		}
		return lo.wrapAt(name.Pos(), lo.defineLocal(env, obj, 0))
	}
	if done, err := lo.lowerMake(name, value, env); done || err != nil {
		return err
	}
	if err := lo.evalReads(value, env); err != nil {
		return err
	}
	if obj == nil || name.Name == "_" {
		return nil
	}
	if err := lo.wrapAt(name.Pos(), lo.defineLocal(env, obj, 0)); err != nil {
		return err
	}
	if _, isSync := env.syncLocals[obj]; isSync {
		return nil
	}
	return lo.emitAccessExpr(name, true, env)
}

func (lo *lowerer) wrapAt(pos token.Pos, err error) error {
	if err != nil {
		return lo.errAt(pos, "%s", err)
	}
	return nil
}

// lowerMake recognizes `name = make(...)` initializers: channels become
// semaphores, maps become their one-word object, and make([]T, n) fixes a
// slice's extent. Returns done=true when it consumed the initializer.
func (lo *lowerer) lowerMake(name *ast.Ident, value ast.Expr, env *env) (bool, error) {
	call, ok := unparen(value).(*ast.CallExpr)
	if !ok {
		return false, nil
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false, nil
	}
	if b, isB := lo.useOf(id).(*types.Builtin); !isB || b.Name() != "make" {
		return false, nil
	}
	obj := lo.info.Defs[name]
	if obj == nil {
		obj = lo.info.Uses[name]
	}
	if obj == nil {
		return true, lo.errAt(name.Pos(), "cannot resolve %s", name.Name)
	}
	t := lo.info.Types[call].Type
	if isChan(t) {
		// Buffered or not, a channel lowers to a semaphore: send posts,
		// recv pends, carrying the send-happens-before-recv edge.
		if obj.Parent() == obj.Pkg().Scope() {
			lo.newSync(skey{root: obj}, "chan")
		} else if _, ok := env.lookupSync(obj); !ok {
			env.syncLocals[obj] = lo.newSync(skey{root: obj, inst: env.ctx}, "chan")
		}
		return true, nil
	}
	extent := 0
	if _, isSlice := t.Underlying().(*types.Slice); isSlice {
		if len(call.Args) < 2 {
			return true, lo.errAt(call.Pos(), "make([]T) needs a constant length")
		}
		n, ok := lo.constOrKnown(call.Args[1], env)
		if !ok || n <= 0 {
			return true, lo.errAt(call.Pos(), "make([]T, n) needs a positive constant length")
		}
		ew, err := lo.typeWords(t.Underlying().(*types.Slice).Elem())
		if err != nil {
			return true, lo.errAt(call.Pos(), "%s", err)
		}
		extent = int(n) * ew
	}
	var o *object
	var err error
	if obj.Parent() == obj.Pkg().Scope() {
		o, err = lo.globalObject(obj, extent)
	} else {
		if existing, ok := env.lookupLocal(obj); ok {
			o = existing
		} else {
			o, err = lo.makeObject(objKey{root: obj, inst: env.ctx}, obj.Name(), obj.Type(), extent)
			if err == nil {
				env.locals[obj] = o
			}
		}
	}
	if err != nil {
		return true, lo.errAt(name.Pos(), "%s", err)
	}
	// make() publishes a fresh header: one write of the object word.
	return true, lo.emitRef(&ref{obj: o, addr: sim.Fixed(o.base), words: 1, label: o.name, pos: name.Pos()}, true, env)
}

func (lo *lowerer) constOrKnown(e ast.Expr, env *env) (int64, bool) {
	if v, ok := lo.constValue(e); ok {
		return v, true
	}
	if id, ok := unparen(e).(*ast.Ident); ok {
		if v, ok := env.lookupConst(lo.useOf(id)); ok {
			return v, true
		}
	}
	return 0, false
}

func (lo *lowerer) lowerAssign(as *ast.AssignStmt, env *env) error {
	switch as.Tok {
	case token.DEFINE, token.ASSIGN:
		// make() initializers first (they register objects, not reads).
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if id, ok := unparen(as.Lhs[0]).(*ast.Ident); ok {
				if done, err := lo.lowerMake(id, as.Rhs[0], env); done || err != nil {
					return err
				}
				// Sole-RHS helper call: inline, then store the result.
				if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok {
					if fn, ok := unparen(call.Fun).(*ast.Ident); ok {
						if _, isHelper := lo.funcs[fn.Name]; isHelper {
							if err := lo.inlineCall(call, env); err != nil {
								return err
							}
							return lo.assignTo(as, id, env)
						}
					}
				}
			}
		}
		for _, r := range as.Rhs {
			if err := lo.evalReads(r, env); err != nil {
				return err
			}
		}
		for _, l := range as.Lhs {
			if id, ok := unparen(l).(*ast.Ident); ok {
				if err := lo.assignTo(as, id, env); err != nil {
					return err
				}
				continue
			}
			if err := lo.emitAccessExpr(l, true, env); err != nil {
				return err
			}
		}
		return nil
	default:
		// Op-assign (+=, -=, …) reads then writes its single operand.
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return lo.errAt(as.Pos(), "malformed op-assign")
		}
		if err := lo.emitAccessExpr(as.Lhs[0], false, env); err != nil {
			return err
		}
		if err := lo.evalReads(as.Rhs[0], env); err != nil {
			return err
		}
		return lo.emitAccessExpr(as.Lhs[0], true, env)
	}
}

// assignTo emits the write half of an assignment to an identifier,
// registering := definitions first.
func (lo *lowerer) assignTo(as *ast.AssignStmt, id *ast.Ident, env *env) error {
	if id.Name == "_" {
		return nil
	}
	if def := lo.info.Defs[id]; def != nil {
		if err := lo.wrapAt(id.Pos(), lo.defineLocal(env, def, 0)); err != nil {
			return err
		}
		if _, isSync := env.syncLocals[def]; isSync {
			return nil
		}
	}
	return lo.emitAccessExpr(id, true, env)
}

func (lo *lowerer) lowerRecv(u *ast.UnaryExpr, env *env) error {
	ch, err := lo.resolveSyncExpr(unparen(u.X), env)
	if err != nil {
		return lo.errAt(u.Pos(), "%s", err)
	}
	lo.emit(env, &sim.Wait{C: ch.id})
	return nil
}

func (lo *lowerer) lowerIf(s *ast.IfStmt, env *env) error {
	if s.Init != nil {
		if err := lo.lowerStmt(s.Init, env); err != nil {
			return err
		}
	}
	if err := lo.evalReads(s.Cond, env); err != nil {
		return err
	}
	// Memory carries no values, so for happens-before purposes both arms
	// are emitted straight-line (DESIGN §13's documented approximation).
	if err := lo.lowerBody(s.Body.List, env); err != nil {
		return err
	}
	if s.Else != nil {
		return lo.lowerStmt(s.Else, env)
	}
	return nil
}
