package frontend

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/sim"
)

// bounds describes a constant-trip-count loop: iv runs start, start+step, …
// for trips iterations.
type bounds struct {
	iv     types.Object
	ivName *ast.Ident
	start  int64
	step   int64
	trips  int64
	// source positions for the unrolled induction-variable accesses
	initPos, condPos, postPos token.Pos
}

// parseBounds extracts constant bounds from a three-clause for statement.
func (lo *lowerer) parseBounds(s *ast.ForStmt, env *env) (*bounds, error) {
	if s.Init == nil || s.Cond == nil || s.Post == nil {
		return nil, fmt.Errorf("only counted for loops (init; cond; post) are supported")
	}
	init, ok := s.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return nil, fmt.Errorf("loop init must be i := <const>")
	}
	ivIdent, ok := unparen(init.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil, fmt.Errorf("loop init must define a plain variable")
	}
	start, ok := lo.constOrKnown(init.Rhs[0], env)
	if !ok {
		return nil, fmt.Errorf("loop start must be a constant")
	}
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return nil, fmt.Errorf("loop condition must be i < N or i <= N")
	}
	condIv, ok := unparen(cond.X).(*ast.Ident)
	if !ok || lo.useOf(condIv) != lo.info.Defs[ivIdent] {
		return nil, fmt.Errorf("loop condition must test the induction variable")
	}
	limit, ok := lo.constOrKnown(cond.Y, env)
	if !ok {
		return nil, fmt.Errorf("loop bound must be a constant")
	}
	if cond.Op == token.LEQ {
		limit++
	}
	step := int64(0)
	switch post := s.Post.(type) {
	case *ast.IncDecStmt:
		if id, ok := unparen(post.X).(*ast.Ident); !ok || lo.useOf(id) != lo.info.Defs[ivIdent] {
			return nil, fmt.Errorf("loop post must step the induction variable")
		}
		if post.Tok != token.INC {
			return nil, fmt.Errorf("only incrementing loops are supported")
		}
		step = 1
	case *ast.AssignStmt:
		if post.Tok != token.ADD_ASSIGN || len(post.Lhs) != 1 {
			return nil, fmt.Errorf("loop post must be i++ or i += <const>")
		}
		if id, ok := unparen(post.Lhs[0]).(*ast.Ident); !ok || lo.useOf(id) != lo.info.Defs[ivIdent] {
			return nil, fmt.Errorf("loop post must step the induction variable")
		}
		step, ok = lo.constOrKnown(post.Rhs[0], env)
		if !ok || step <= 0 {
			return nil, fmt.Errorf("loop step must be a positive constant")
		}
	default:
		return nil, fmt.Errorf("unsupported loop post statement")
	}
	trips := int64(0)
	if limit > start {
		trips = (limit - start + step - 1) / step
	}
	const maxTrips = 1 << 20
	if trips > maxTrips {
		return nil, fmt.Errorf("loop runs %d iterations (max %d)", trips, maxTrips)
	}
	return &bounds{
		iv: lo.info.Defs[ivIdent], ivName: ivIdent,
		start: start, step: step, trips: trips,
		initPos: init.Pos(), condPos: cond.Pos(), postPos: s.Post.Pos(),
	}, nil
}

// containsGo reports whether any statement in the subtree spawns a
// goroutine (function literals included — their go target is the subtree).
func containsGo(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

func (lo *lowerer) lowerFor(s *ast.ForStmt, env *env) error {
	b, err := lo.parseBounds(s, env)
	if err != nil {
		return lo.errAt(s.Pos(), "%s", err)
	}
	if containsGo(s.Body) {
		if !env.inMain {
			return lo.errAt(s.Pos(), "go statements are supported only in main (no nested spawns)")
		}
		return lo.unrollSpawnLoop(s.Body.List, b, env)
	}
	return lo.lowerCountedLoop(s.Body.List, b, env)
}

func (lo *lowerer) lowerRange(s *ast.RangeStmt, env *env) error {
	if s.Tok == token.ASSIGN {
		return lo.errAt(s.Pos(), "range with = assignment is unsupported")
	}
	rt := lo.info.Types[s.X].Type
	var b *bounds
	var elemRead bool
	switch u := rt.Underlying().(type) {
	case *types.Basic: // for i := range N (range over int)
		n, ok := lo.constOrKnown(s.X, env)
		if !ok || n < 0 {
			return lo.errAt(s.Pos(), "range over int needs a constant bound")
		}
		b = &bounds{start: 0, step: 1, trips: n, initPos: s.Pos(), condPos: s.Pos(), postPos: s.Pos()}
	case *types.Array:
		b = &bounds{start: 0, step: 1, trips: u.Len(), initPos: s.Pos(), condPos: s.Pos(), postPos: s.Pos()}
		elemRead = s.Value != nil
	case *types.Slice:
		id, ok := unparen(s.X).(*ast.Ident)
		if !ok {
			return lo.errAt(s.Pos(), "range over a slice expression is unsupported")
		}
		o, err := lo.resolveVar(lo.useOf(id), env)
		if err != nil {
			return lo.errAt(s.Pos(), "%s", err)
		}
		ew, err := lo.typeWords(u.Elem())
		if err != nil {
			return lo.errAt(s.Pos(), "%s", err)
		}
		b = &bounds{start: 0, step: 1, trips: int64(o.words / ew), initPos: s.Pos(), condPos: s.Pos(), postPos: s.Pos()}
		elemRead = s.Value != nil
	default:
		return lo.errAt(s.Pos(), "range over %s is unsupported", rt)
	}
	if key, ok := unparen(orNil(s.Key)).(*ast.Ident); ok && key.Name != "_" {
		b.iv = lo.info.Defs[key]
		b.ivName = key
	}
	if containsGo(s.Body) {
		if !env.inMain {
			return lo.errAt(s.Pos(), "go statements are supported only in main (no nested spawns)")
		}
		return lo.unrollSpawnLoop(s.Body.List, b, env)
	}
	// The value variable becomes a per-iteration element read plus a
	// local write inside the loop body.
	var prologue []ast.Stmt
	if elemRead {
		val, ok := unparen(s.Value).(*ast.Ident)
		if !ok {
			return lo.errAt(s.Pos(), "unsupported range value target")
		}
		if val.Name != "_" {
			if b.iv == nil {
				return lo.errAt(s.Pos(), "range value without an index variable is unsupported")
			}
			prologue = append(prologue, &ast.AssignStmt{
				Lhs: []ast.Expr{val},
				Tok: token.DEFINE,
				Rhs: []ast.Expr{&ast.IndexExpr{X: s.X, Index: b.ivName}},
			})
		}
	}
	return lo.lowerCountedLoop(append(prologue, s.Body.List...), b, env)
}

func orNil(e ast.Expr) ast.Expr {
	if e == nil {
		return &ast.Ident{Name: "_"}
	}
	return e
}

// lowerCountedLoop lowers a constant-trip loop to a sim.Loop. The induction
// variable lives in the engine's loop counter — never in memory — so it
// must not be shared (a shared counter would need unrolling; rejected).
func (lo *lowerer) lowerCountedLoop(body []ast.Stmt, b *bounds, env *env) error {
	if b.trips == 0 {
		return nil
	}
	var instrs []sim.Instr
	benv := *env
	benv.out = &instrs
	benv.mult = env.mult * int(b.trips)
	if b.iv != nil {
		benv.loops = append(append([]loopFrame{}, env.loops...), loopFrame{iv: b.iv, start: b.start, step: b.step})
	}
	if err := lo.lowerBody(body, &benv); err != nil {
		return err
	}
	id := lo.nextLoop
	lo.nextLoop++
	lo.emit(env, &sim.Loop{ID: id, Count: int(b.trips), Body: instrs})
	return nil
}

// unrollSpawnLoop expands a goroutine-spawning loop in main: each iteration
// re-lowers the body with the induction variable's value known, so go
// statements inside spawn one worker per iteration. The induction
// variable's own reads and writes are emitted — when a closure captures it,
// those are the classic loop-variable-capture race (pre-Go-1.22 shared
// loop variable semantics, the bug this corpus exists to catch).
func (lo *lowerer) unrollSpawnLoop(body []ast.Stmt, b *bounds, env *env) error {
	const maxUnroll = 256
	if b.trips > maxUnroll {
		return lo.errAt(b.initPos, "spawn loop runs %d iterations (max %d workers)", b.trips, maxUnroll)
	}
	touchIv := func(pos token.Pos, write bool) error {
		if b.iv == nil {
			return nil
		}
		return lo.emitAccessObj(pos, b.iv, write, env)
	}
	if b.iv != nil {
		if err := lo.wrapAt(b.initPos, lo.defineLocal(env, b.iv, 0)); err != nil {
			return err
		}
		if err := touchIv(b.initPos, true); err != nil { // i := start
			return err
		}
	}
	val := b.start
	for k := int64(0); k < b.trips; k++ {
		if b.iv != nil {
			env.consts[b.iv] = val
			if err := touchIv(b.condPos, false); err != nil { // i < N
				return err
			}
		}
		if err := lo.lowerBody(body, env); err != nil {
			return err
		}
		if b.iv != nil {
			if err := touchIv(b.postPos, false); err != nil { // i++ reads…
				return err
			}
			if err := touchIv(b.postPos, true); err != nil { // …then writes
				return err
			}
		}
		val += b.step
	}
	if b.iv != nil {
		env.consts[b.iv] = val
		if err := touchIv(b.condPos, false); err != nil { // final failing test
			return err
		}
		delete(env.consts, b.iv)
	}
	return nil
}

// emitAccessObj emits one access to a plain variable object at an explicit
// position — used for the unrolled induction-variable bookkeeping.
func (lo *lowerer) emitAccessObj(pos token.Pos, obj types.Object, write bool, env *env) error {
	o, err := lo.resolveVar(obj, env)
	if err != nil {
		return lo.errAt(pos, "%s", err)
	}
	return lo.emitRef(&ref{obj: o, addr: sim.Fixed(o.base), words: 1, label: o.name, pos: pos}, write, env)
}
