// Package report renders experiment results as the text analogues of the
// paper's tables and figures: aligned columns for tables, labelled series
// (and simple ASCII bars) for figures, each alongside the published values
// so shape agreement is visible at a glance.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: two decimals, trimming trailing
// zeros for whole numbers.
func FormatFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" || s == "-0" {
		s = "0" // values that round to zero print as 0, never -0
	}
	return s
}

// FormatFixed renders a float with exactly prec decimals, mapping negative
// zero to positive zero. Fixed width (no trimming) keeps machine-read output
// such as the benchmark JSON byte-stable and diffable across runs that differ
// only in float noise below the chosen precision.
func FormatFixed(v float64, prec int) string {
	s := fmt.Sprintf("%.*f", prec, v)
	if neg := strings.TrimPrefix(s, "-"); neg != s && strings.Trim(neg, "0.") == "" {
		s = neg // -0.00 prints as 0.00
	}
	return s
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar renders value as a proportional ASCII bar against max, width chars.
func Bar(value, max float64, width int) string {
	if max <= 0 || value <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// StackedBar renders proportional segments as one bar, each segment drawn
// with its own glyph — the text analogue of Fig. 7's stacked columns. The
// bar is scaled so that `max` fills `width` characters; a non-empty segment
// always gets at least one glyph.
func StackedBar(segments []float64, glyphs string, max float64, width int) string {
	if max <= 0 || width <= 0 {
		return ""
	}
	var sb strings.Builder
	for i, v := range segments {
		if v <= 0 {
			continue
		}
		n := int(v / max * float64(width))
		if n == 0 {
			n = 1
		}
		g := byte('#')
		if i < len(glyphs) {
			g = glyphs[i]
		}
		sb.Write(bytesRepeat(g, n))
	}
	out := sb.String()
	if len(out) > width {
		out = out[:width]
	}
	return out
}

func bytesRepeat(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// Section prints a titled separator.
func Section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n\n", title)
}
