package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.Add("short", 1)
	tb.Add("a-much-longer-name", 123456)
	var sb strings.Builder
	tb.Write(&sb)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header+sep+2 rows", len(lines))
	}
	// The value column must start at the same offset in every row.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[3][idx:], "123456") {
		t.Fatalf("misaligned columns:\n%s", sb.String())
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("missing separator: %q", lines[1])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:       "1",
		1.5:     "1.5",
		1.25:    "1.25",
		1.256:   "1.26",
		0:       "0",
		-2.5:    "-2.5",
		100.004: "100",
		-0.001:  "0", // rounds to zero; must not print as "-0"
		-0.004:  "0",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestBar(t *testing.T) {
	if b := Bar(5, 10, 10); b != "#####" {
		t.Fatalf("Bar(5,10,10) = %q", b)
	}
	if b := Bar(20, 10, 10); b != "##########" {
		t.Fatalf("overflow bar = %q", b)
	}
	if Bar(0, 10, 10) != "" || Bar(5, 0, 10) != "" {
		t.Fatal("degenerate bars must be empty")
	}
}

func TestSection(t *testing.T) {
	var sb strings.Builder
	Section(&sb, "Table 1")
	if !strings.Contains(sb.String(), "== Table 1 ==") {
		t.Fatalf("section = %q", sb.String())
	}
}

func TestTableFloatsFormatted(t *testing.T) {
	tb := &Table{Header: []string{"v"}}
	tb.Add(3.14159)
	var sb strings.Builder
	tb.Write(&sb)
	if !strings.Contains(sb.String(), "3.14") || strings.Contains(sb.String(), "3.14159") {
		t.Fatalf("float formatting: %q", sb.String())
	}
}

func TestStackedBar(t *testing.T) {
	b := StackedBar([]float64{1, 1, 2}, ".#c", 4, 8)
	if b != "..##cccc" {
		t.Fatalf("bar = %q", b)
	}
	// A tiny non-zero segment still shows up.
	b = StackedBar([]float64{3.9, 0.01}, ".#", 4, 8)
	if !strings.Contains(b, "#") {
		t.Fatalf("tiny segment dropped: %q", b)
	}
	// Clipped to width.
	if got := StackedBar([]float64{100}, "#", 4, 8); len(got) != 8 {
		t.Fatalf("bar not clipped: %q", got)
	}
	if StackedBar(nil, "", 0, 8) != "" {
		t.Fatal("degenerate bar")
	}
}

func TestFormatFixed(t *testing.T) {
	cases := []struct {
		v    float64
		prec int
		want string
	}{
		{1.005, 2, "1.00"}, // float64 1.005 is just below 1.005, rounds down
		{1.5, 0, "2"},
		{3.14159, 3, "3.142"},
		{0, 2, "0.00"},
		{-0.001, 2, "0.00"}, // negative zero maps to positive
		{-1.25, 2, "-1.25"},
		{12, 4, "12.0000"},
	}
	for _, c := range cases {
		if got := FormatFixed(c.v, c.prec); got != c.want {
			t.Errorf("FormatFixed(%v, %d) = %q, want %q", c.v, c.prec, got, c.want)
		}
	}
}
