package runner

// SeedStream derives per-trial scheduler seeds from one base seed. It
// replaces the ad-hoc `base + trial*K` derivations the experiment drivers
// used to hand-roll (each with a different K): every driver now draws trial
// seeds from the same stream, so "trial 3 of table1" and "run 3 of fig10"
// agree on what the third schedule is.
//
// Trial 0 is the base seed itself — a single-trial experiment measures
// exactly the schedule the user asked for with -seed — and later trials are
// splitmix64 steps from it, well-spread regardless of the base value.
type SeedStream uint64

// Seeds returns the stream rooted at base.
func Seeds(base uint64) SeedStream { return SeedStream(base) }

// Trial returns the seed for trial i (i ≥ 0). Trial(0) == base.
func (s SeedStream) Trial(i int) uint64 {
	if i == 0 {
		return uint64(s)
	}
	// splitmix64 finalizer over the i-th increment of the golden-gamma
	// sequence (Steele et al., "Fast Splittable Pseudorandom Number
	// Generators").
	z := uint64(s) + uint64(i)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // keep the engine's "seed 0 = default" convention unreachable
	}
	return z
}
