// Package runner is the execution layer under internal/experiment: drivers
// describe the runs an experiment needs as a declarative Plan of Jobs, and a
// bounded worker pool executes them concurrently. Every job is an independent
// (workload, runtime, seed) measurement — its own engine, detector, and
// observer — so results are identical at any worker count; the pool merges
// results and observer metrics back in plan order, which makes a plan's
// output byte-identical to the sequential run.
//
// Failures do not abort the plan: every job runs, and Run returns the
// aggregate of all per-job errors, each carrying its (workload, runtime,
// trial, seed) context.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Job is one unit of work in a Plan: a single simulated execution (or any
// other independent computation). The Workload/Runtime/Trial/Seed fields are
// descriptive — they label results and errors; Do carries the actual work.
type Job struct {
	// Workload and Runtime identify what the job measures ("vips",
	// "txrace"); they appear verbatim in error messages.
	Workload string
	Runtime  string
	// Trial is the job's trial (or run/seed) index within the experiment.
	Trial int
	// Seed is the scheduler seed the job runs under, normally drawn from a
	// SeedStream.
	Seed uint64
	// Observe requests a per-job fork of the plan's parent observer. The
	// pool sets Obs before Do runs and merges the fork's metrics back into
	// the parent in plan order after all jobs finish, so aggregate metrics
	// are deterministic at any worker count. When the plan has no parent
	// observer (or Observe is false) Obs stays nil.
	Observe bool
	Obs     *obs.Observer
	// Do performs the job. Its result is retrieved through the Handle that
	// Add returned. Do must not touch state shared with other jobs.
	Do func(j *Job) (any, error)
}

// Handle refers to one added job's slot in the plan.
type Handle struct {
	p   *Plan
	idx int
}

// Value returns the job's result. It may only be called after Plan.Run; the
// value is whatever the job's Do returned (nil if the job failed).
func (h *Handle) Value() any {
	if !h.p.ran {
		panic("runner: Handle.Value before Plan.Run")
	}
	return h.p.results[h.idx]
}

// Err returns the job's own error, if any (Run already aggregates these).
func (h *Handle) Err() error {
	if !h.p.ran {
		panic("runner: Handle.Err before Plan.Run")
	}
	return h.p.errs[h.idx]
}

// Plan is an ordered list of independent jobs plus the execution policy.
// Build it declaratively, call Run once, then read results back through the
// handles. The zero Plan is usable; NewPlan just bundles the two knobs.
type Plan struct {
	// Workers bounds the pool; 0 means GOMAXPROCS.
	Workers int
	// Obs, when non-nil, is the parent observer that observing jobs fork
	// from and merge back into.
	Obs *obs.Observer

	jobs    []*Job
	results []any
	errs    []error
	ran     bool
}

// NewPlan returns an empty plan executing on `workers` goroutines (0 =
// GOMAXPROCS) with obs as the parent observer (may be nil).
func NewPlan(workers int, parent *obs.Observer) *Plan {
	return &Plan{Workers: workers, Obs: parent}
}

// Add appends a job and returns its handle.
func (p *Plan) Add(j Job) *Handle {
	if p.ran {
		panic("runner: Plan.Add after Plan.Run")
	}
	if j.Do == nil {
		panic("runner: job without Do")
	}
	jc := j
	p.jobs = append(p.jobs, &jc)
	return &Handle{p: p, idx: len(p.jobs) - 1}
}

// Len returns the number of jobs added so far.
func (p *Plan) Len() int { return len(p.jobs) }

// Run executes every job on the worker pool and merges results in plan
// order. It returns nil when all jobs succeeded, otherwise the aggregate of
// every failed job's JobError (errors.Join); successful jobs' results remain
// available through their handles either way.
func (p *Plan) Run() error {
	if p.ran {
		panic("runner: Plan.Run called twice")
	}
	p.ran = true
	p.results = make([]any, len(p.jobs))
	p.errs = make([]error, len(p.jobs))
	if len(p.jobs) == 0 {
		return nil
	}

	// Fork observers up front, in plan order, so instrument registration
	// order inside the parent registry never depends on scheduling.
	if p.Obs != nil {
		for _, j := range p.jobs {
			if j.Observe {
				j.Obs = p.Obs.Fork()
			}
		}
	}

	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.jobs) {
		workers = len(p.jobs)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := p.jobs[i]
				v, err := j.Do(j)
				p.results[i] = v
				if err != nil {
					p.errs[i] = &JobError{
						Workload: j.Workload, Runtime: j.Runtime,
						Trial: j.Trial, Seed: j.Seed, Err: err,
					}
				}
			}
		}()
	}
	for i := range p.jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Merge per-job metrics back, again in plan order.
	if p.Obs != nil {
		for _, j := range p.jobs {
			p.Obs.Join(j.Obs)
		}
	}
	return errors.Join(p.errs...)
}

// JobError is one failed job, with enough context to re-run it alone.
type JobError struct {
	Workload string
	Runtime  string
	Trial    int
	Seed     uint64
	Err      error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("%s/%s trial %d (seed %#x): %v", e.Workload, e.Runtime, e.Trial, e.Seed, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }
