package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestPlanResultsInPlanOrder: results come back through handles in plan
// order regardless of worker count or completion order.
func TestPlanResultsInPlanOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		p := NewPlan(workers, nil)
		const n = 50
		hs := make([]*Handle, n)
		for i := 0; i < n; i++ {
			i := i
			hs[i] = p.Add(Job{Workload: "w", Runtime: "r", Trial: i,
				Do: func(j *Job) (any, error) { return i * i, nil }})
		}
		if err := p.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := 0; i < n; i++ {
			if got := hs[i].Value().(int); got != i*i {
				t.Fatalf("workers=%d: job %d = %d, want %d", workers, i, got, i*i)
			}
		}
	}
}

// TestPlanRunsEveryJobDespiteFailures: a failing job neither stops the plan
// nor hides other failures; the aggregate error names each failed job with
// its (workload, runtime, trial, seed) context.
func TestPlanRunsEveryJobDespiteFailures(t *testing.T) {
	p := NewPlan(4, nil)
	var ran atomic.Int64
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		i := i
		p.Add(Job{Workload: fmt.Sprintf("app%d", i), Runtime: "txrace", Trial: i, Seed: uint64(i),
			Do: func(j *Job) (any, error) {
				ran.Add(1)
				if i%3 == 0 {
					return nil, boom
				}
				return i, nil
			}})
	}
	err := p.Run()
	if err == nil {
		t.Fatal("want aggregated error")
	}
	if ran.Load() != 10 {
		t.Fatalf("ran %d jobs, want all 10", ran.Load())
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("aggregate not unwrappable to *JobError: %v", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("aggregate loses the cause: %v", err)
	}
	msg := err.Error()
	for _, want := range []string{"app0/txrace trial 0 (seed 0x0)", "app3/txrace trial 3", "app9/txrace trial 9"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregate error missing %q:\n%s", want, msg)
		}
	}
	if strings.Contains(msg, "app1/") {
		t.Errorf("successful job reported as failed:\n%s", msg)
	}
}

// TestPlanObserverMerge: per-job observer forks merge back into the parent
// registry with totals independent of the worker count.
func TestPlanObserverMerge(t *testing.T) {
	snapshots := make([]obs.Snapshot, 0, 2)
	for _, workers := range []int{1, 8} {
		m := obs.NewMetrics()
		parent := obs.New(nil, m)
		p := NewPlan(workers, parent)
		for i := 0; i < 20; i++ {
			i := i
			p.Add(Job{Workload: "w", Runtime: "r", Trial: i, Observe: true,
				Do: func(j *Job) (any, error) {
					if j.Obs == nil {
						return nil, errors.New("observing job got nil fork")
					}
					j.Obs.TxBegin(0, int64(i))
					j.Obs.TxCommit(0, int64(i)+100, 100+int64(i))
					return nil, nil
				}})
		}
		if err := p.Run(); err != nil {
			t.Fatal(err)
		}
		snap := m.Snapshot()
		if got := snap.Counters["txn.begin"]; got != 20 {
			t.Fatalf("workers=%d: txn.begin = %d, want 20", workers, got)
		}
		snapshots = append(snapshots, snap)
	}
	a, b := fmt.Sprintf("%+v", snapshots[0]), fmt.Sprintf("%+v", snapshots[1])
	if a != b {
		t.Fatalf("merged metrics differ between 1 and 8 workers:\n%s\n%s", a, b)
	}
}

// TestPlanWithoutObserver: Observe jobs on an unobserved plan get nil Obs
// (and obs nil-safety makes that free for callers that guard).
func TestPlanWithoutObserver(t *testing.T) {
	p := NewPlan(2, nil)
	h := p.Add(Job{Observe: true, Do: func(j *Job) (any, error) { return j.Obs == nil, nil }})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if !h.Value().(bool) {
		t.Fatal("job on unobserved plan got a non-nil observer")
	}
}

// TestSeedStream: trial 0 is the base seed (a single-trial experiment runs
// exactly the schedule -seed asked for); later trials are distinct,
// deterministic, and never the engine's reserved 0.
func TestSeedStream(t *testing.T) {
	s := Seeds(1)
	if s.Trial(0) != 1 {
		t.Fatalf("Trial(0) = %d, want base seed 1", s.Trial(0))
	}
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		v := s.Trial(i)
		if v == 0 {
			t.Fatalf("Trial(%d) = 0", i)
		}
		if prev, dup := seen[v]; dup {
			t.Fatalf("Trial(%d) collides with Trial(%d): %#x", i, prev, v)
		}
		seen[v] = i
	}
	if s.Trial(7) != Seeds(1).Trial(7) {
		t.Fatal("SeedStream not deterministic")
	}
	if Seeds(1).Trial(3) == Seeds(2).Trial(3) {
		t.Fatal("different bases share trial seeds")
	}
}

// TestPlanEmptyAndGuards: an empty plan runs; misuse panics loudly.
func TestPlanEmptyAndGuards(t *testing.T) {
	p := NewPlan(0, nil)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "Add after Run", func() { p.Add(Job{Do: func(*Job) (any, error) { return nil, nil }}) })
	mustPanic(t, "Run twice", func() { p.Run() })

	q := NewPlan(0, nil)
	h := q.Add(Job{Do: func(*Job) (any, error) { return nil, nil }})
	mustPanic(t, "Value before Run", func() { h.Value() })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}
