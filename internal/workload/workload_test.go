package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/sim"
)

func engCfg(w *Workload, seed uint64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	if w.InterruptEvery != 0 {
		cfg.InterruptEvery = w.InterruptEvery
	}
	cfg.MaxSteps = 1 << 28
	return cfg
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"blackscholes", "fluidanimate", "swaptions", "freqmine", "vips",
		"raytrace", "ferret", "x264", "bodytrack", "facesim",
		"streamcluster", "dedup", "canneal", "apache",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d apps, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s (Table 1 order)", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("vips"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestAllWorkloadsBuildAndValidate builds every application at the thread
// counts the scalability experiment uses and runs the structural validator.
func TestAllWorkloadsBuildAndValidate(t *testing.T) {
	for _, w := range All() {
		for _, threads := range []int{2, 4, 8} {
			built := w.Build(threads, 1)
			if err := built.Prog.Validate(); err != nil {
				t.Errorf("%s/%d: %v", w.Name, threads, err)
			}
			if got := built.Prog.Threads(); got < 3 {
				t.Errorf("%s/%d: only %d threads", w.Name, threads, got)
			}
		}
	}
}

// TestAllWorkloadsTerminate runs every application uninstrumented: no
// deadlocks, nonzero work.
func TestAllWorkloadsTerminate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			built := w.Build(4, 1)
			res, err := sim.NewEngine(engCfg(w, 3)).Run(built.Prog, &core.Baseline{})
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			if res.Accesses == 0 || res.Makespan == 0 {
				t.Fatalf("degenerate run: %+v", res)
			}
		})
	}
}

// TestGroundTruthExactlyInjectedRaces is the workload soundness invariant:
// under full happens-before detection the races found must be exactly the
// ones deliberately injected — nothing missing (the generator delivers its
// races) and nothing extra (no accidental races polluting the experiment).
func TestGroundTruthExactlyInjectedRaces(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			built := w.Build(4, 1)
			rt := core.NewTSan()
			if _, err := sim.NewEngine(engCfg(w, 5)).Run(instrument.ForTSan(built.Prog), rt); err != nil {
				t.Fatal(err)
			}
			got := rt.Detector().RaceKeys()
			want := built.AllRaceKeys()
			if len(got) != len(want) {
				t.Fatalf("TSan found %d races, injected %d:\n got %v\nwant %v",
					len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("race %d: got %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestScaleGrowsWork ensures the scale knob actually scales.
func TestScaleGrowsWork(t *testing.T) {
	w, _ := ByName("swaptions")
	small, err := sim.NewEngine(engCfg(w, 1)).Run(w.Build(4, 1).Prog, &core.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := sim.NewEngine(engCfg(w, 1)).Run(w.Build(4, 3).Prog, &core.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if big.Accesses < 2*small.Accesses {
		t.Fatalf("scale 3 produced %d accesses vs %d at scale 1", big.Accesses, small.Accesses)
	}
}

// TestPaperNumbersPresent: every workload carries its published Table 1/2
// values for the comparison reports.
func TestPaperNumbersPresent(t *testing.T) {
	for _, w := range All() {
		if w.Paper.TSanOverhead <= 1 || w.Paper.TxRaceOverhead <= 1 {
			t.Errorf("%s: missing published overheads", w.Name)
		}
		if w.Paper.TxRaceOverhead > w.Paper.TSanOverhead {
			t.Errorf("%s: paper has TxRace slower than TSan?", w.Name)
		}
		if w.Paper.Recall <= 0 || w.Paper.Recall > 1 {
			t.Errorf("%s: bad recall %v", w.Name, w.Paper.Recall)
		}
		if w.SlowScale <= 0 {
			t.Errorf("%s: SlowScale unset", w.Name)
		}
	}
}

// TestDeferredRacesOnlyWhereExpected: only bodytrack and facesim model the
// initialize-then-publish idiom (§8.3).
func TestDeferredRacesOnlyWhereExpected(t *testing.T) {
	for _, w := range All() {
		built := w.Build(4, 1)
		wantDeferred := 0
		switch w.Name {
		case "bodytrack":
			wantDeferred = 2
		case "facesim":
			wantDeferred = 1
		}
		if len(built.Deferred) != wantDeferred {
			t.Errorf("%s: %d deferred races, want %d", w.Name, len(built.Deferred), wantDeferred)
		}
		if len(built.Races)+len(built.Deferred) != w.Paper.TSanRaces {
			t.Errorf("%s: injected %d+%d races, paper reports %d",
				w.Name, len(built.Races), len(built.Deferred), w.Paper.TSanRaces)
		}
	}
}

func TestRacySitesTargetTheirVariable(t *testing.T) {
	// A racy site id must only ever address its race's variable — a site
	// reused for unrelated data would corrupt race identities. (Multiple
	// dynamic occurrences of the same racy access are fine.)
	for _, w := range All() {
		built := w.Build(4, 1)
		raceOf := map[sim.SiteID]RacyVar{}
		for _, r := range append(append([]RacyVar{}, built.Races...), built.Deferred...) {
			raceOf[r.SiteA] = r
			raceOf[r.SiteB] = r
		}
		check := func(body []sim.Instr) {
			sim.ForEachInstr(body, func(in sim.Instr) {
				m, ok := in.(*sim.MemAccess)
				if !ok {
					return
				}
				r, racy := raceOf[m.Site]
				if !racy {
					return
				}
				if m.Addr.Mode != sim.AddrFixed || m.Addr.Base != r.Addr {
					t.Errorf("%s: site %d addresses %#x, expected race var %#x",
						w.Name, m.Site, m.Addr.Base, r.Addr)
				}
			})
		}
		check(built.Prog.Setup)
		for _, wk := range built.Prog.Workers {
			check(wk)
		}
		check(built.Prog.Teardown)
	}
}
