package workload

import (
	"repro/internal/sim"
)

// newBlackscholes models PARSEC's option-pricing kernel: embarrassingly
// parallel, no real sharing, no races. Most of its work sits in regions
// with very few memory operations between library calls, so TxRace routes
// them to the slow path via the K threshold and its overhead lands right on
// TSan's — exactly the published pair (1.85x vs 1.82x). A minority of
// larger pricing regions become committed transactions.
func newBlackscholes() *Workload {
	return &Workload{
		Name:           "blackscholes",
		InterruptEvery: 500000,
		SlowScale:      1.5,
		Paper: Paper{
			Committed: 131105, Conflict: 2, Capacity: 0, Unknown: 7,
			TSanRaces: 0, TxRaceRaces: 0,
			OriginalMs: 253, TSanMs: 467, TxRaceMs: 460,
			TSanOverhead: 1.85, TxRaceOverhead: 1.82,
			Recall: 1, CostEffectiveness: 1.02,
		},
		Build: func(threads, scale int) *Built {
			b := NewB()
			options := b.Al.AllocWords(4096) // shared read-only inputs
			stats := b.SharedLineWords(8)    // per-thread result words: false sharing
			workers := make([][]sim.Instr, threads)
			for w := 0; w < threads; w++ {
				out := b.Al.AllocWords(512)
				small := b.LoopN(20,
					// A tiny pricing step fenced by a library call: fewer
					// than K=5 hooked accesses → slow-path region.
					b.Read(sim.AddrExpr{Base: options, Mode: sim.AddrLoop, Stride: 3, Depth: 0, Wrap: 4096}),
					b.Read(sim.AddrExpr{Base: options, Mode: sim.AddrLoop, Stride: 3, Off: 1, Depth: 0, Wrap: 4096}),
					Work(12),
					b.Write(sim.AddrExpr{Base: out, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 512}),
					&sim.Syscall{Name: "rng", Cycles: 60},
				)
				big := b.LoopN(3,
					b.Read(sim.AddrExpr{Base: options, Mode: sim.AddrLoop, Stride: 5, Depth: 0, Wrap: 4096}),
					b.Read(sim.AddrExpr{Base: options, Mode: sim.AddrLoop, Stride: 5, Off: 2, Depth: 0, Wrap: 4096}),
					b.Read(sim.AddrExpr{Base: options, Mode: sim.AddrLoop, Stride: 5, Off: 4, Depth: 0, Wrap: 4096}),
					Work(10),
					b.Write(sim.AddrExpr{Base: out, Mode: sim.AddrLoop, Stride: 1, Off: 7, Depth: 0, Wrap: 512}),
				)
				workers[w] = []sim.Instr{
					b.LoopN(25*scale,
						small,
						big,
						// One false-shared result update per chunk; rarely
						// overlaps, giving the paper's single-digit conflict
						// count.
						WriteAt(sim.Fixed(stats[w%len(stats)]), b.Site()),
						&sim.Syscall{Name: "progress", Cycles: 80},
					),
				}
			}
			return &Built{Prog: &sim.Program{Name: "blackscholes", Workers: workers}}
		},
	}
}

// newSwaptions models PARSEC's Monte-Carlo swaption pricer: per-simulation
// working buffers re-initialized in tight loops that contain library calls,
// producing an enormous number of very short transactions whose begin/end
// management cost dominates TxRace's overhead (§8.2), plus an
// initialization sweep big enough to overflow the transactional write set
// (the paper's 557k capacity aborts — the loop-cut optimization's main
// customer, Fig. 9).
func newSwaptions() *Workload {
	return &Workload{
		Name:           "swaptions",
		InterruptEvery: 250000,
		SlowScale:      1.7,
		Paper: Paper{
			Committed: 160640076, Conflict: 2599, Capacity: 557497, Unknown: 54317,
			TSanRaces: 0, TxRaceRaces: 0,
			OriginalMs: 868, TSanMs: 5875, TxRaceMs: 3446,
			TSanOverhead: 6.77, TxRaceOverhead: 3.97,
			Recall: 1, CostEffectiveness: 1.7,
		},
		Build: func(threads, scale int) *Built {
			b := NewB()
			workers := make([][]sim.Instr, threads)
			for w := 0; w < threads; w++ {
				// Path buffer: the per-simulation initialization writes a
				// stochastic set of lines straddling the HTM write-set
				// capacity, so whether a given sweep overflows varies
				// between swaptions — capacity aborts that even a profiled
				// loop-cut threshold cannot fully avoid.
				path := b.Al.AllocWords(1024 * 8)
				scratch := b.Al.AllocWords(256)
				initSweep := b.ChurnRandom(path, 1000, 780, 0)
				mc := b.LoopN(40,
					b.Read(sim.AddrExpr{Base: scratch, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 256}),
					b.Write(sim.AddrExpr{Base: scratch, Mode: sim.AddrLoop, Stride: 1, Off: 3, Depth: 0, Wrap: 256}),
					b.Read(sim.Random(path, 1024*8)),
					b.Write(sim.AddrExpr{Base: scratch, Mode: sim.AddrLoop, Stride: 2, Off: 9, Depth: 0, Wrap: 256}),
					b.Read(sim.AddrExpr{Base: scratch, Mode: sim.AddrLoop, Stride: 2, Off: 17, Depth: 0, Wrap: 256}),
					b.Write(sim.AddrExpr{Base: scratch, Mode: sim.AddrLoop, Stride: 1, Off: 33, Depth: 0, Wrap: 256}),
					Work(4),
					// The RNG library call inside the hot loop: every
					// iteration becomes its own tiny transaction.
					&sim.Syscall{Name: "rng", Cycles: 25},
				)
				workers[w] = []sim.Instr{
					b.LoopN(12*scale,
						initSweep,
						mc,
						&sim.Syscall{Name: "writeback", Cycles: 60},
					),
				}
			}
			return &Built{Prog: &sim.Program{Name: "swaptions", Workers: workers}}
		},
	}
}

// newFreqmine models PARSEC's FP-growth miner, whose execution is dominated
// by a long single-threaded tree-construction phase. TSan pays its full
// per-access cost there; TxRace's single-threaded-mode optimization
// (function cloning, §4.3) skips monitoring entirely, which is how the
// paper gets 14x vs 1.15x — the starkest ratio in Table 1.
func newFreqmine() *Workload {
	return &Workload{
		Name:           "freqmine",
		InterruptEvery: 15000,
		SlowScale:      2.6,
		Paper: Paper{
			Committed: 84, Conflict: 0, Capacity: 3, Unknown: 26,
			TSanRaces: 0, TxRaceRaces: 0,
			OriginalMs: 3973, TSanMs: 55611, TxRaceMs: 4569,
			TSanOverhead: 14, TxRaceOverhead: 1.15,
			Recall: 1, CostEffectiveness: 12.17,
		},
		Build: func(threads, scale int) *Built {
			b := NewB()
			tree := b.Al.AllocWords(16384) // read-only during mining
			counts := b.Al.AllocWords(256) // lock-protected result table
			mu := b.Sync()
			// Single-threaded FP-tree build: extremely access-dense.
			setup := []sim.Instr{
				b.LoopN(900*scale,
					b.Read(sim.Random(tree, 16384)),
					b.Write(sim.Random(tree, 16384)),
					b.Read(sim.Random(tree, 16384)),
					b.Write(sim.Random(tree, 16384)),
					Work(1),
				),
			}
			workers := make([][]sim.Instr, threads)
			for w := 0; w < threads; w++ {
				local := b.Al.AllocWords(512)
				workers[w] = []sim.Instr{
					b.LoopN(6*scale,
						b.LoopN(20,
							b.Read(sim.Random(tree, 16384)),
							b.Write(sim.AddrExpr{Base: local, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 512}),
							Work(3),
						),
						&sim.Lock{M: mu},
						b.Write(sim.Random(counts, 256)),
						b.Write(sim.Random(counts, 256)),
						b.Read(sim.Random(counts, 256)),
						b.Write(sim.Random(counts, 256)),
						b.Read(sim.Random(counts, 256)),
						&sim.Unlock{M: mu},
					),
				}
			}
			teardown := []sim.Instr{
				b.LoopN(120*scale,
					b.Read(sim.Random(tree, 16384)),
					b.Write(sim.Random(tree, 16384)),
					Work(2),
				),
			}
			return &Built{Prog: &sim.Program{
				Name: "freqmine", Setup: setup, Workers: workers, Teardown: teardown,
			}}
		},
	}
}

// newRaytrace models PARSEC's real-time raytracer: long render regions of
// random read-only scene traversal with private framebuffer writes,
// synchronized only at frame boundaries. Two counters are updated without
// synchronization during rendering — the published pair of races, both
// overlapping and caught by both detectors.
func newRaytrace() *Workload {
	wl := &Workload{
		Name:           "raytrace",
		InterruptEvery: 50000,
		SlowScale:      1.75,
		Paper: Paper{
			Committed: 143, Conflict: 12, Capacity: 0, Unknown: 14,
			TSanRaces: 2, TxRaceRaces: 2,
			OriginalMs: 4546, TSanMs: 23130, TxRaceMs: 12203,
			TSanOverhead: 5.09, TxRaceOverhead: 2.68,
			Recall: 1, CostEffectiveness: 1.9,
		},
	}
	wl.Build = func(threads, scale int) *Built {
		b := NewB()
		scene := b.Al.AllocWords(2048) // read-only BVH, fits the read set
		frameMu := b.Sync()
		frameBar := b.Sync()
		r1, r2 := b.NewRacyVar(), b.NewRacyVar()
		workers := make([][]sim.Instr, threads)
		for w := 0; w < threads; w++ {
			fb := b.Al.AllocWords(2048)
			trace := func(iters int) *sim.Loop {
				return b.LoopN(iters,
					b.Read(sim.Random(scene, 2048)),
					b.Read(sim.Random(scene, 2048)),
					b.Read(sim.Random(scene, 2048)),
					Work(7),
					b.Write(sim.AddrExpr{Base: fb, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 2048}),
				)
			}
			// The racy counters open a short warm-up region (cheap to
			// re-execute on a conflict); the bulk of the render follows in
			// its own region after a texture upload call.
			render := []sim.Instr{
				trace(30),
				&sim.Syscall{Name: "texload", Cycles: 25},
				trace(90),
			}
			// Frames are barrier-synchronized; the racy counters are bumped
			// at the start of the first render region, so the conflict
			// window spans the warm-up trace.
			frame := []sim.Instr{&sim.Barrier{B: frameBar, N: threads}, Jitter(400)}
			switch w {
			case 0:
				frame = append(frame, r1.WriteA())
			case 1:
				frame = append(frame, r1.WriteB(), r2.WriteA())
			case 2:
				frame = append(frame, r2.WriteB())
			}
			frame = append(frame, render...)
			frame = append(frame, Locked(frameMu,
				b.Write(sim.Fixed(b.Al.AllocLine())),
				b.Read(sim.Fixed(scene)),
				b.Write(sim.Fixed(b.Al.AllocLine())),
				b.Read(sim.Fixed(scene)),
				b.Write(sim.Fixed(b.Al.AllocLine())),
			)...)
			workers[w] = []sim.Instr{b.LoopN(6*scale, frame...)}
		}
		return &Built{
			Prog:  &sim.Program{Name: "raytrace", Workers: workers},
			Races: []RacyVar{r1, r2},
		}
	}
	return wl
}
