package workload

import (
	"strings"
	"testing"
)

// TestGoWorkloadRegistration pins the go: namespace: every corpus snippet
// resolves through ByName, and an unknown snippet errors with the available
// names rather than falling through to the synthetic-app error.
func TestGoWorkloadRegistration(t *testing.T) {
	names := GoNames()
	if len(names) < 10 {
		t.Fatalf("GoNames = %v, want >= 10 snippets", names)
	}
	for _, name := range names {
		if !strings.HasPrefix(name, GoCorpusPrefix) {
			t.Fatalf("corpus workload %q missing %q prefix", name, GoCorpusPrefix)
		}
		w, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if w.Name != name {
			t.Fatalf("ByName(%q) returned %q", name, w.Name)
		}
		if w.SlowScale != 1 {
			t.Fatalf("%s: SlowScale = %v, want 1 (0 would zero the hook cost)", name, w.SlowScale)
		}
	}
	_, err := ByName("go:nosuchsnippet")
	if err == nil {
		t.Fatal("unknown go: name resolved")
	}
	if !strings.Contains(err.Error(), "go:doublecheck") {
		t.Fatalf("unknown go: error should list the corpus, got: %v", err)
	}
}

// TestBuildGoSplitsDeferred pins the Races/Deferred routing: loopcapture's
// capture race is structurally invisible to the HTM fast path and must land
// in Deferred, while its sum races stay in Races; AllRaceKeys sees both.
func TestBuildGoSplitsDeferred(t *testing.T) {
	b, err := BuildGo("loopcapture")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Races) != 2 || len(b.Deferred) != 1 {
		t.Fatalf("loopcapture split = %d races + %d deferred, want 2 + 1", len(b.Races), len(b.Deferred))
	}
	if n := len(b.AllRaceKeys()); n != 3 {
		t.Fatalf("AllRaceKeys = %d, want 3", n)
	}
	if b.Prog == nil {
		t.Fatal("BuildGo returned no program")
	}

	// The common case: everything detectable on the fast path.
	b, err = BuildGo("doublecheck")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Races) != 2 || len(b.Deferred) != 0 {
		t.Fatalf("doublecheck split = %d races + %d deferred, want 2 + 0", len(b.Races), len(b.Deferred))
	}

	if _, err := BuildGo("nosuchsnippet"); err == nil {
		t.Fatal("BuildGo accepted an unknown snippet")
	}
}
