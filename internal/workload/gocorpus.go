package workload

import (
	"fmt"

	"repro/internal/frontend"
)

// GoCorpusPrefix names the real-Go corpus workloads: `go:<snippet>` compiles
// an embedded Go source file through internal/frontend instead of running a
// calibrated synthetic generator.
const GoCorpusPrefix = "go:"

var goRegistry []*Workload

func init() {
	for _, name := range frontend.CorpusNames() {
		goRegistry = append(goRegistry, newGoWorkload(name))
	}
}

// newGoWorkload wraps one corpus snippet. The program is a direct lowering
// of the Go source: -threads and -scale do not apply (thread count is the
// source's goroutine structure, there is nothing to scale), so Build ignores
// both and MaxThreads stays 0.
func newGoWorkload(name string) *Workload {
	return &Workload{
		Name: GoCorpusPrefix + name,
		// Hook costs are the detector's own: no per-application
		// slow-path pathology is being modeled. (0 would zero the hook
		// cost entirely — see core.TSan.SlowScale.)
		SlowScale: 1,
		Build: func(threads, scale int) *Built {
			b, err := BuildGo(name)
			if err != nil {
				// Corpus snippets are compile-tested; failing here means
				// the embedded source or the frontend regressed.
				panic(fmt.Sprintf("workload %s%s: %v", GoCorpusPrefix, name, err))
			}
			return b
		},
	}
}

// BuildGo compiles the named corpus snippet (cached in internal/frontend)
// and resolves its pinned ground-truth race specs into the Built race list.
func BuildGo(name string) (*Built, error) {
	snip, ok := frontend.CorpusSnippet(name)
	if !ok {
		return nil, fmt.Errorf("workload: unknown corpus snippet %q (have: %v)", name, frontend.CorpusNames())
	}
	p, err := frontend.CompileCorpus(name)
	if err != nil {
		return nil, err
	}
	truth, err := snip.GroundTruth(p)
	if err != nil {
		return nil, err
	}
	b := &Built{Prog: p.Prog}
	for _, r := range truth {
		rv := RacyVar{SiteA: r.A, SiteB: r.B}
		if r.Deferred {
			b.Deferred = append(b.Deferred, rv)
		} else {
			b.Races = append(b.Races, rv)
		}
	}
	return b, nil
}

// GoNames returns the corpus workload names (with prefix) in corpus order.
func GoNames() []string {
	out := make([]string, len(goRegistry))
	for i, w := range goRegistry {
		out[i] = w.Name
	}
	return out
}
