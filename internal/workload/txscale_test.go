package workload

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/sim"
)

// TestTxScaleBuildsAtServiceScale validates the scaling generator at the
// thread counts the scaling-curve experiment drives.
func TestTxScaleBuildsAtServiceScale(t *testing.T) {
	w, err := ByName("txscale")
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxThreads != 0 {
		t.Fatalf("txscale must be unbounded, got MaxThreads=%d", w.MaxThreads)
	}
	for _, threads := range []int{2, 8, 64, 256, 1024} {
		built := w.Build(threads, 1)
		if err := built.Prog.Validate(); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if len(built.Races) != 2 {
			t.Fatalf("threads=%d: %d injected races, want 2", threads, len(built.Races))
		}
	}
}

// TestTxScaleGroundTruth runs txscale under full happens-before detection
// at a many-thread count: the races found must be exactly the two injected
// ones, at every seed — the round-0 structure keeps them schedule-robust.
func TestTxScaleGroundTruth(t *testing.T) {
	w, err := ByName("txscale")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7, 42} {
		built := w.Build(64, 1)
		rt := core.NewTSan()
		if _, err := sim.NewEngine(engCfg(w, seed)).Run(instrument.ForTSan(built.Prog), rt); err != nil {
			t.Fatal(err)
		}
		got := rt.Detector().RaceKeys()
		want := built.AllRaceKeys()
		if len(got) != len(want) {
			t.Fatalf("seed %d: found %d races, injected %d: got %v want %v",
				seed, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: race %d: got %v, want %v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestTxScaleIdleSkewCollapses checks the workload produces the shape it
// exists for: enough sync activity at a many-thread count that the sparse
// detector runs epoch-collapse rounds, with promotions staying rare
// relative to thread count (the idle tail must not densify every clock).
func TestTxScaleIdleSkewCollapses(t *testing.T) {
	w, err := ByName("txscale")
	if err != nil {
		t.Fatal(err)
	}
	built := w.Build(256, 1)
	rt := core.NewTSan()
	if _, err := sim.NewEngine(engCfg(w, 11)).Run(instrument.ForTSan(built.Prog), rt); err != nil {
		t.Fatal(err)
	}
	cs := rt.Detector().ClockStats()
	if cs.Collapses == 0 {
		t.Fatal("no epoch-collapse rounds at 256 threads; workload or collapse trigger broken")
	}
}

// TestCheckThreadsNamesScalableApps pins the one-line error for thread
// counts past a Table 1 generator's calibrated range.
func TestCheckThreadsNamesScalableApps(t *testing.T) {
	dedup, err := ByName("dedup")
	if err != nil {
		t.Fatal(err)
	}
	if err := dedup.CheckThreads(64); err != nil {
		t.Fatalf("64 threads must pass: %v", err)
	}
	err = dedup.CheckThreads(256)
	if err == nil {
		t.Fatal("256 threads on dedup must be rejected")
	}
	for _, want := range []string{"dedup", "txscale", "256", "64"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q must mention %q", err, want)
		}
	}
	sc, err := ByName("txscale")
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.CheckThreads(4096); err != nil {
		t.Fatalf("scaling workload must accept any count: %v", err)
	}
}
