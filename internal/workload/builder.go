// Package workload provides synthetic stand-ins for the paper's evaluation
// programs: the 13 PARSEC benchmarks and the Apache web server (§8.1). Each
// generator builds a sim.Program whose event mix — region lengths, syscall
// density, working-set size, sharing intensity, lock/condvar/barrier
// structure, and injected static race sites — is shaped after the
// corresponding application's published profile in Table 1, so the TxRace
// runtime confronts qualitatively the same fast-path/slow-path decisions.
// DESIGN.md's substitution table records the rationale.
package workload

import (
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// B is a program builder: an address-space allocator plus id counters for
// sites, loops, and sync objects.
type B struct {
	Al   *memmodel.Allocator
	site sim.SiteID
	loop sim.LoopID
	sync sim.SyncID
}

// NewB returns a builder with a fresh address space.
func NewB() *B {
	return &B{Al: memmodel.NewAllocator(1 << 20), site: 1, loop: 1, sync: 1}
}

// Site returns a fresh static-site id.
func (b *B) Site() sim.SiteID {
	s := b.site
	b.site++
	return s
}

// LoopID returns a fresh loop id.
func (b *B) LoopID() sim.LoopID {
	l := b.loop
	b.loop++
	return l
}

// Sync returns a fresh synchronization-object id.
func (b *B) Sync() sim.SyncID {
	s := b.sync
	b.sync++
	return s
}

// Read builds a load instruction at a fresh site.
func (b *B) Read(a sim.AddrExpr) *sim.MemAccess {
	return &sim.MemAccess{Write: false, Addr: a, Site: b.Site()}
}

// Write builds a store instruction at a fresh site.
func (b *B) Write(a sim.AddrExpr) *sim.MemAccess {
	return &sim.MemAccess{Write: true, Addr: a, Site: b.Site()}
}

// ReadAt and WriteAt build accesses with caller-chosen sites, for racy pairs
// whose identity the experiments assert on.
func ReadAt(a sim.AddrExpr, site sim.SiteID) *sim.MemAccess {
	return &sim.MemAccess{Write: false, Addr: a, Site: site}
}

// WriteAt builds a store at a fixed site.
func WriteAt(a sim.AddrExpr, site sim.SiteID) *sim.MemAccess {
	return &sim.MemAccess{Write: true, Addr: a, Site: site}
}

// LocalRead and LocalWrite build accesses the static analysis would prove
// race-free (never hooked, hence never monitored).
func (b *B) LocalRead(a sim.AddrExpr) *sim.MemAccess {
	return &sim.MemAccess{Write: false, Addr: a, Site: b.Site(), Local: true}
}

// LocalWrite builds a provably race-free store.
func (b *B) LocalWrite(a sim.AddrExpr) *sim.MemAccess {
	return &sim.MemAccess{Write: true, Addr: a, Site: b.Site(), Local: true}
}

// Work is private computation.
func Work(cycles int64) sim.Instr { return &sim.Compute{Cycles: cycles} }

// Jitter is scheduling-dependent computation in [0, max) cycles.
func Jitter(max int64) sim.Instr { return &sim.Delay{Max: max} }

// LoopN builds a counted loop with a fresh id.
func (b *B) LoopN(count int, body ...sim.Instr) *sim.Loop {
	return &sim.Loop{ID: b.LoopID(), Count: count, Body: body}
}

// Churn builds a loop sweeping iters words of arr with a write (and a read
// when alsoRead), plus work cycles of compute per iteration. Sweeping more
// lines than the HTM write-set tracks is the canonical capacity-abort
// driver.
func (b *B) Churn(arr memmodel.Addr, iters int, work int64, alsoRead bool) *sim.Loop {
	body := []sim.Instr{b.Write(sim.Indexed(arr, memmodel.LineSize/memmodel.WordSize))}
	if alsoRead {
		body = append(body, b.Read(sim.Indexed(arr, memmodel.LineSize/memmodel.WordSize)))
	}
	if work > 0 {
		body = append(body, Work(work))
	}
	return b.LoopN(iters, body...)
}

// ChurnRandom builds a loop writing random lines over a range of rangeLines
// cache lines. Unlike Churn's sequential sweep, the distinct-line footprint
// is stochastic, so whether a given execution overflows the HTM write set
// varies run to run — the data-dependent behaviour that keeps capacity
// aborts trickling in even under a profiled loop-cut threshold.
func (b *B) ChurnRandom(arr memmodel.Addr, rangeLines, iters int, work int64) *sim.Loop {
	words := uint64(rangeLines) * (memmodel.LineSize / memmodel.WordSize)
	body := []sim.Instr{b.Write(sim.Random(arr, words))}
	if work > 0 {
		body = append(body, Work(work))
	}
	return b.LoopN(iters, body...)
}

// AllocLines allocates n whole cache lines and returns the base address.
func (b *B) AllocLines(n int) memmodel.Addr {
	return b.Al.Alloc(uint64(n)*memmodel.LineSize, memmodel.LineSize)
}

// RandomReads builds a loop of random loads over a shared array of the given
// word extent, plus per-iteration compute.
func (b *B) RandomReads(arr memmodel.Addr, words uint64, iters int, work int64) *sim.Loop {
	return b.LoopN(iters,
		b.Read(sim.Random(arr, words)),
		Work(work),
	)
}

// Locked wraps body in lock/unlock of mu.
func Locked(mu sim.SyncID, body ...sim.Instr) []sim.Instr {
	out := make([]sim.Instr, 0, len(body)+2)
	out = append(out, &sim.Lock{M: mu})
	out = append(out, body...)
	out = append(out, &sim.Unlock{M: mu})
	return out
}

// Seq concatenates instruction groups.
func Seq(groups ...[]sim.Instr) []sim.Instr {
	var out []sim.Instr
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// RacyVar is one injected static race: a dedicated word with two fixed
// sites. Races are counted by the experiments as the pair {SiteA, SiteB}.
type RacyVar struct {
	Addr  memmodel.Addr
	SiteA sim.SiteID
	SiteB sim.SiteID
}

// NewRacyVar allocates a line-aligned word (so the race is never a
// false-sharing artifact) and two sites for it.
func (b *B) NewRacyVar() RacyVar {
	return RacyVar{Addr: b.Al.AllocLine(), SiteA: b.Site(), SiteB: b.Site()}
}

// WriteA and WriteB build the two halves of a write-write race.
func (r RacyVar) WriteA() *sim.MemAccess { return WriteAt(sim.Fixed(r.Addr), r.SiteA) }

// WriteB builds the second racy store.
func (r RacyVar) WriteB() *sim.MemAccess { return WriteAt(sim.Fixed(r.Addr), r.SiteB) }

// ReadB builds a racy load (for write-read races).
func (r RacyVar) ReadB() *sim.MemAccess { return ReadAt(sim.Fixed(r.Addr), r.SiteB) }

// Key returns the normalized race identity used by the detectors.
func (r RacyVar) Key() (a, bSite sim.SiteID) {
	if r.SiteA < r.SiteB {
		return r.SiteA, r.SiteB
	}
	return r.SiteB, r.SiteA
}

// FalseSharePair allocates two *different* words on the *same* cache line.
// Concurrent writes to them conflict in the HTM (line granularity) but are
// not a data race — the false-positive source the slow path must filter
// (§2.2 challenge 2).
func (b *B) FalseSharePair() (w0, w1 memmodel.Addr) {
	base := b.Al.AllocLine()
	return base, base + memmodel.WordSize
}

// SharedLineWords allocates one cache line and returns the addresses of its
// first n words (n ≤ 8), for n-way false sharing.
func (b *B) SharedLineWords(n int) []memmodel.Addr {
	if n > memmodel.LineSize/memmodel.WordSize {
		panic("workload: more words than fit a line")
	}
	base := b.Al.AllocLine()
	out := make([]memmodel.Addr, n)
	for i := range out {
		out[i] = base + memmodel.Addr(i*memmodel.WordSize)
	}
	return out
}
