package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/sim"
)

// runTx executes a workload under the TxRace runtime with DynLoopcut (so no
// profiling pass is needed) and returns the stats.
func runTx(t *testing.T, name string, seed uint64) core.Stats {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	built := w.Build(4, 1)
	rt := core.NewTxRace(core.Options{LoopCut: core.DynCut, SlowScale: w.SlowScale})
	if _, err := sim.NewEngine(engCfg(w, seed)).Run(
		instrument.ForTxRace(built.Prog, instrument.DefaultOptions()), rt); err != nil {
		t.Fatal(err)
	}
	return rt.Stats()
}

// The shape tests below are calibration regression guards: each application
// must keep the qualitative abort mix its Table 1 row is known for. They
// assert orderings and presence, never absolute counts.

func TestShapeSwaptionsCommittedAndCapacityHeavy(t *testing.T) {
	st := runTx(t, "swaptions", 1)
	if st.CommittedTxns < 1000 {
		t.Errorf("swaptions must commit transactions in bulk: %d", st.CommittedTxns)
	}
	if st.CapacityAborts == 0 && st.LoopCuts == 0 {
		t.Errorf("swaptions must exercise the capacity path: %+v", st)
	}
	if st.ConflictAborts > st.CommittedTxns/50 {
		t.Errorf("swaptions is not conflict-heavy in the paper: %+v", st)
	}
}

func TestShapeBodytrackUnknownDominated(t *testing.T) {
	st := runTx(t, "bodytrack", 1)
	if st.UnknownAborts == 0 {
		t.Fatalf("bodytrack's hidden library calls produced no unknown aborts: %+v", st)
	}
	if st.UnknownAborts <= st.CapacityAborts || st.UnknownAborts <= st.ConflictAborts/2 {
		t.Errorf("bodytrack must be unknown-abort-dominated (Table 1): %+v", st)
	}
}

func TestShapeFalseSharingApps(t *testing.T) {
	// dedup and streamcluster owe their conflicts to false sharing: plenty
	// of conflict aborts, no (or almost no) real races.
	for _, name := range []string{"dedup", "streamcluster", "fluidanimate"} {
		st := runTx(t, name, 1)
		if st.ConflictAborts == 0 {
			t.Errorf("%s must show conflict aborts: %+v", name, st)
		}
	}
}

func TestShapeFreqmineBarelyTransacts(t *testing.T) {
	// freqmine is dominated by its single-threaded phase: tiny transaction
	// counts relative to, say, swaptions.
	fm := runTx(t, "freqmine", 1)
	sw := runTx(t, "swaptions", 1)
	if fm.CommittedTxns*10 > sw.CommittedTxns {
		t.Errorf("freqmine (%d txns) should transact far less than swaptions (%d)",
			fm.CommittedTxns, sw.CommittedTxns)
	}
}

func TestShapeVipsConflictHeavyWithManyRaces(t *testing.T) {
	w, _ := ByName("vips")
	built := w.Build(4, 1)
	rt := core.NewTxRace(core.Options{LoopCut: core.DynCut, SlowScale: w.SlowScale})
	if _, err := sim.NewEngine(engCfg(w, 1)).Run(
		instrument.ForTxRace(built.Prog, instrument.DefaultOptions()), rt); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.ConflictAborts < 100 {
		t.Errorf("vips must be conflict-heavy: %+v", st)
	}
	races := rt.Detector().RaceCount()
	if races < 55 || races > 110 {
		t.Errorf("vips per-run races = %d, want the paper's partial band (~79 of 112)", races)
	}
}

func TestShapeArtificialAbortsPresent(t *testing.T) {
	// Wherever conflicts fire with 4 workers, the TxFail protocol must be
	// dooming innocent bystanders too.
	st := runTx(t, "facesim", 1)
	if st.ConflictAborts == 0 || st.ArtificialAborts == 0 {
		t.Errorf("facesim episodes must include artificial aborts: %+v", st)
	}
	if st.ArtificialAborts >= st.ConflictAborts {
		t.Errorf("artificial aborts are a subset of conflicts: %+v", st)
	}
}

func TestShapeApacheQuiet(t *testing.T) {
	// apache: no races, low-drama abort profile (paper row: 227 conflicts
	// out of 310k transactions).
	w, _ := ByName("apache")
	built := w.Build(4, 1)
	rt := core.NewTxRace(core.Options{LoopCut: core.DynCut, SlowScale: w.SlowScale})
	if _, err := sim.NewEngine(engCfg(w, 1)).Run(
		instrument.ForTxRace(built.Prog, instrument.DefaultOptions()), rt); err != nil {
		t.Fatal(err)
	}
	if rt.Detector().RaceCount() != 0 {
		t.Errorf("apache has no races: %v", rt.Detector().Races())
	}
	st := rt.Stats()
	if st.ConflictAborts > st.CommittedTxns/10 {
		t.Errorf("apache should be conflict-quiet: %+v", st)
	}
}

func TestShapeDeterministicPerSeed(t *testing.T) {
	key := func(s core.Stats) [6]uint64 {
		return [6]uint64{s.CommittedTxns, s.ConflictAborts, s.ArtificialAborts,
			s.CapacityAborts, s.UnknownAborts, s.LoopCuts}
	}
	a := key(runTx(t, "streamcluster", 9))
	b := key(runTx(t, "streamcluster", 9))
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
