package workload

import (
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// newFluidanimate models PARSEC's particle-fluid solver: a grid partitioned
// into per-thread slabs with fine-grained locks at slab borders. The
// published profile is dominated by an enormous number of tiny critical
// sections (17.8M transactions) and heavy cross-border cache-line sharing
// (697k conflict aborts), with a single real race on a border cell.
func newFluidanimate() *Workload {
	wl := &Workload{
		Name:           "fluidanimate",
		InterruptEvery: 60000,
		SlowScale:      4.6,
		Paper: Paper{
			Committed: 17778944, Conflict: 696789, Capacity: 10321, Unknown: 36614,
			TSanRaces: 1, TxRaceRaces: 1,
			OriginalMs: 539, TSanMs: 8217, TxRaceMs: 3724,
			TSanOverhead: 15.23, TxRaceOverhead: 6.9,
			Recall: 1, CostEffectiveness: 2.21,
		},
	}
	wl.Build = func(threads, scale int) *Built {
		b := NewB()
		race := b.NewRacyVar()
		// Border lines shared between neighbouring slabs: each thread
		// writes its own word, the neighbour writes the adjacent word —
		// pure false sharing, conflicting every time the regions overlap.
		borders := make([][]memmodel.Addr, threads)
		for i := range borders {
			borders[i] = b.SharedLineWords(2)
		}
		borderMu := make([]sim.SyncID, threads)
		for i := range borderMu {
			borderMu[i] = b.Sync()
		}
		frameBar := b.Sync()
		workers := make([][]sim.Instr, threads)
		for w := 0; w < threads; w++ {
			slab := b.Al.AllocWords(1024)
			right := (w + 1) % threads
			cell := func(off uint64) []sim.Instr {
				return []sim.Instr{
					b.Read(sim.AddrExpr{Base: slab, Mode: sim.AddrLoop, Stride: 1, Off: off, Depth: 0, Wrap: 1024}),
					b.Read(sim.AddrExpr{Base: slab, Mode: sim.AddrLoop, Stride: 1, Off: off + 1, Depth: 0, Wrap: 1024}),
					b.Write(sim.AddrExpr{Base: slab, Mode: sim.AddrLoop, Stride: 1, Off: off, Depth: 0, Wrap: 1024}),
					Work(1),
				}
			}
			// One block: cell updates followed by a fine-grained border
			// critical section. The border variant opens its region with a
			// border exchange — my word and the neighbour's adjacent word
			// share a line: pure false sharing, conflicting whenever the
			// regions overlap.
			block := func(border bool) []sim.Instr {
				var head []sim.Instr
				if border {
					head = []sim.Instr{
						WriteAt(sim.Fixed(borders[w][0]), b.Site()),
						ReadAt(sim.Fixed(borders[right][1]), b.Site()),
					}
				}
				cells := 7
				if border {
					cells = 12 // longer region: wider conflict window
				}
				return Seq(
					head,
					[]sim.Instr{b.LoopN(cells, cell(0)...)},
					Locked(borderMu[w],
						b.Write(sim.AddrExpr{Base: slab, Mode: sim.AddrLoop, Stride: 1, Off: 2, Depth: 0, Wrap: 1024}),
						b.Read(sim.AddrExpr{Base: slab, Mode: sim.AddrLoop, Stride: 1, Off: 3, Depth: 0, Wrap: 1024}),
						b.Write(sim.AddrExpr{Base: slab, Mode: sim.AddrLoop, Stride: 1, Off: 4, Depth: 0, Wrap: 1024}),
						b.Read(sim.AddrExpr{Base: slab, Mode: sim.AddrLoop, Stride: 1, Off: 5, Depth: 0, Wrap: 1024}),
						b.Write(sim.AddrExpr{Base: slab, Mode: sim.AddrLoop, Stride: 1, Off: 6, Depth: 0, Wrap: 1024}),
					),
				)
			}
			// The real race: an unsynchronized border-cell flag updated by
			// two neighbours at the start of overlapping frames. Frames are
			// barrier-synchronized, as in the real solver's phase structure.
			frame := []sim.Instr{&sim.Barrier{B: frameBar, N: threads}, Jitter(300)}
			switch w {
			case 0:
				frame = append(frame, race.WriteA())
			case 1:
				frame = append(frame, race.WriteB())
			}
			// Five border exchanges per frame, interleaved with plain
			// blocks, plus one unprofiled library call (the solver's I/O
			// helper) buried in a cell-update region.
			for rep := 0; rep < 4; rep++ {
				frame = append(frame, block(true)...)
				frame = append(frame, b.LoopN(2, block(false)...))
			}
			frame = append(frame, block(true)...)
			frame = append(frame, &sim.Syscall{Name: "libio", Cycles: 25, Hidden: true})
			frame = append(frame, block(false)...)
			workers[w] = []sim.Instr{b.LoopN(8*scale, frame...)}
		}
		return &Built{
			Prog:  &sim.Program{Name: "fluidanimate", Workers: workers},
			Races: []RacyVar{race},
		}
	}
	return wl
}

// newVips models PARSEC's image-processing pipeline, the paper's most
// extreme application: 112 static races on shared image descriptors whose
// manifestation depends on how worker tiles interleave (Fig. 10), and a
// software detector that collapses under the report volume and shadow
// contention (1195x for TSan, 63x for TxRace).
func newVips() *Workload {
	wl := &Workload{
		Name:           "vips",
		InterruptEvery: 600000,
		SlowScale:      270,
		Paper: Paper{
			Committed: 707547, Conflict: 16793, Capacity: 23403, Unknown: 14985,
			TSanRaces: 112, TxRaceRaces: 79,
			OriginalMs: 953, TSanMs: 1139087, TxRaceMs: 60320,
			TSanOverhead: 1195, TxRaceOverhead: 63.28,
			Recall: 0.71, CostEffectiveness: 13.32,
		},
	}
	const nraces = 112
	wl.Build = func(threads, scale int) *Built {
		b := NewB()
		races := make([]RacyVar, nraces)
		for i := range races {
			races[i] = b.NewRacyVar()
		}
		// Spread racy accesses over tiles: race i fires at the *start* of
		// tile i%tiles in two neighbouring workers, so the conflict window
		// is the whole tile region. Jitter accumulates drift between
		// workers; a pipeline barrier every few tiles bounds it, leaving
		// the per-race overlap probability around the level that yields the
		// paper's ~79-of-112 per run.
		tiles := 1400 * scale
		raceIn := make(map[int]map[int][]*sim.MemAccess) // worker → tile → accesses
		for w := 0; w < threads; w++ {
			raceIn[w] = make(map[int][]*sim.MemAccess)
		}
		for i, r := range races {
			a, bw := i%threads, (i+1)%threads
			tile := (i * 13) % tiles
			raceIn[a][tile] = append(raceIn[a][tile], r.WriteA())
			raceIn[bw][tile] = append(raceIn[bw][tile], r.WriteB())
		}
		bar := b.Sync()
		// Adjacent tile borders: per-worker words on shared lines, written
		// every few tiles — the false-sharing conflict source.
		borders := b.SharedLineWords(8)
		workers := make([][]sim.Instr, threads)
		for w := 0; w < threads; w++ {
			img := b.Al.AllocWords(4096)
			buf := b.AllocLines(1100)
			// One static decode loop reused by every decode tile, as in the
			// real library — so the loop-cut machinery sees repeated
			// executions of the same static loop and can learn a threshold.
			decode := b.ChurnRandom(buf, 1050, 360, 0)
			var body []sim.Instr
			for tile := 0; tile < tiles; tile++ {
				if tile%8 == 0 {
					body = append(body, &sim.Barrier{B: bar, N: threads})
				}
				body = append(body, Jitter(260))
				// Every tile is a short kernel region; racy descriptor
				// writes open their tile's region, so the conflict window is
				// the tile and the slow-path episode a detected race
				// triggers re-executes only that tile.
				kernelIters := 80
				for _, acc := range raceIn[w][tile] {
					body = append(body, acc)
				}
				if tile%64 == 3 {
					body = append(body, WriteAt(sim.Fixed(borders[w%len(borders)]), b.Site()))
				}
				kernel := b.LoopN(kernelIters,
					b.Read(sim.AddrExpr{Base: img, Mode: sim.AddrLoop, Stride: 2, Depth: 0, Wrap: 4096}),
					b.Write(sim.AddrExpr{Base: img, Mode: sim.AddrLoop, Stride: 2, Off: 1, Depth: 0, Wrap: 4096}),
					b.Read(sim.AddrExpr{Base: img, Mode: sim.AddrLoop, Stride: 3, Off: 5, Depth: 0, Wrap: 4096}),
				)
				body = append(body, kernel)
				if tile%24 == 2 && len(raceIn[w][tile]) == 0 {
					// Tile decode: a stochastic footprint around the HTM
					// write-set capacity.
					body = append(body, decode)
				}
				body = append(body, &sim.Syscall{Name: "tileio", Cycles: 60})
				if tile%48 == 9 {
					// A tiny descriptor-refresh region containing an
					// unprofiled library call: the unknown abort re-runs
					// only these few accesses on the slow path.
					body = append(body,
						b.LoopN(6, b.Read(sim.AddrExpr{Base: img, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 4096})),
						&sim.Syscall{Name: "libjpeg", Cycles: 40, Hidden: true},
						&sim.Syscall{Name: "stat", Cycles: 20})
				}
			}
			workers[w] = body
		}
		return &Built{
			Prog:  &sim.Program{Name: "vips", Workers: workers},
			Races: races,
		}
	}
	return wl
}

// newCanneal models PARSEC's simulated-annealing placer: random reads over a
// large shared netlist, lock-protected element swaps, and one real race on
// the global temperature, which worker 0 updates without synchronization
// while everyone reads it — a frequently manifesting race (the paper notes
// such races are caught even at low sampling rates, Fig. 11).
func newCanneal() *Workload {
	wl := &Workload{
		Name:           "canneal",
		InterruptEvery: 30000,
		SlowScale:      0.85,
		Paper: Paper{
			Committed: 3200570, Conflict: 25187, Capacity: 2896, Unknown: 106419,
			TSanRaces: 1, TxRaceRaces: 1,
			OriginalMs: 3499, TSanMs: 15367, TxRaceMs: 10375,
			TSanOverhead: 4.39, TxRaceOverhead: 2.97,
			Recall: 1, CostEffectiveness: 1.48,
		},
	}
	wl.Build = func(threads, scale int) *Built {
		b := NewB()
		// Read-only element data and lock-protected location table are
		// disjoint: the unlocked random reads never race with the locked
		// writes.
		elements := b.Al.AllocWords(16384)
		locations := b.Al.AllocWords(16384)
		stats := b.SharedLineWords(8) // per-thread counters: false sharing
		temp := b.NewRacyVar()
		mu := b.Sync()
		workers := make([][]sim.Instr, threads)
		for w := 0; w < threads; w++ {
			var tempAccess sim.Instr
			if w == 0 {
				tempAccess = temp.WriteA() // unsynchronized cooling update
			} else {
				tempAccess = temp.ReadB() // unsynchronized read
			}
			eval := []sim.Instr{
				b.Read(sim.Random(elements, 16384)),
				b.Read(sim.Random(elements, 16384)),
				b.Read(sim.Random(elements, 16384)),
				b.Read(sim.Random(elements, 16384)),
				Work(6),
				WriteAt(sim.Fixed(stats[w%len(stats)]), b.Site()),
			}
			// Three cost evaluations per accepted swap keep the global
			// location lock off the critical path.
			swapLoop := b.LoopN(10, Seq(
				eval, eval, eval, eval,
				Locked(mu,
					b.Write(sim.Random(locations, 16384)),
					b.Write(sim.Random(locations, 16384)),
					b.Read(sim.Random(locations, 16384)),
					b.Write(sim.Random(locations, 16384)),
					b.Write(sim.Random(locations, 16384)),
				),
			)...)
			// Periodic reheat sweep: a large private footprint that
			// occasionally overflows the write set.
			scratch := b.Al.AllocWords(880 * 8)
			workers[w] = []sim.Instr{
				b.LoopN(5*scale,
					Jitter(200),
					tempAccess,
					swapLoop,
					b.ChurnRandom(scratch, 860, 900, 0),
					&sim.Syscall{Name: "checkpoint", Cycles: 70},
				),
			}
		}
		return &Built{
			Prog:  &sim.Program{Name: "canneal", Workers: workers},
			Races: []RacyVar{temp},
		}
	}
	return wl
}
