package workload_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Run one of the evaluation applications under the TxRace runtime and
// report what the two-phase detection found. raytrace injects the paper's
// two overlapping races; both are pinpointed via conflict episodes.
func Example() {
	w, err := workload.ByName("raytrace")
	if err != nil {
		panic(err)
	}
	built := w.Build(4, 1)

	cfg := sim.DefaultConfig()
	cfg.InterruptEvery = w.InterruptEvery

	rt := core.NewTxRace(core.Options{LoopCut: core.DynCut, SlowScale: w.SlowScale})
	if _, err := sim.NewEngine(cfg).Run(
		instrument.ForTxRace(built.Prog, instrument.DefaultOptions()), rt); err != nil {
		panic(err)
	}

	fmt.Println("injected races:", len(built.Races))
	fmt.Println("detected races:", rt.Detector().RaceCount())
	// Output:
	// injected races: 2
	// detected races: 2
}
