package workload

import (
	"repro/internal/sim"
)

// newBodytrack models PARSEC's particle-filter body tracker: barrier-phased
// frames whose inner loops call into an image library the instrumenter
// cannot see (§7's misprofiling case). Those hidden system calls are what
// give bodytrack its outlier unknown-abort count (2M in Table 1) and make
// the unknown-abort segment dominate its Fig. 7 bar. Its race population is
// the paper's showcase for initialize-then-publish misses: 8 races, of
// which TxRace finds 6 — the two deferred-publication pairs never overlap.
func newBodytrack() *Workload {
	wl := &Workload{
		Name:           "bodytrack",
		InterruptEvery: 300000,
		SlowScale:      3.2,
		Paper: Paper{
			Committed: 9950991, Conflict: 36004, Capacity: 47050, Unknown: 2004723,
			TSanRaces: 8, TxRaceRaces: 6,
			OriginalMs: 503, TSanMs: 6429, TxRaceMs: 4479,
			TSanOverhead: 12.78, TxRaceOverhead: 8.9,
			Recall: 0.75, CostEffectiveness: 1.08,
		},
	}
	wl.Build = func(threads, scale int) *Built {
		b := NewB()
		bar := b.Sync()
		redMu := b.Sync()
		redBuf := b.Al.AllocWords(64)
		nbar := threads

		overlapping := make([]RacyVar, 6)
		for i := range overlapping {
			overlapping[i] = b.NewRacyVar()
		}
		deferred := []RacyVar{b.NewRacyVar(), b.NewRacyVar()}

		workers := make([][]sim.Instr, threads)
		for w := 0; w < threads; w++ {
			particles := b.Al.AllocWords(1024)
			imgChunk := func(hidden bool) sim.Instr {
				iters := 12
				if hidden {
					iters = 56
				}
				body := []sim.Instr{
					b.LoopN(iters,
						b.Read(sim.AddrExpr{Base: particles, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 1024}),
						b.Write(sim.AddrExpr{Base: particles, Mode: sim.AddrLoop, Stride: 1, Off: 2, Depth: 0, Wrap: 1024}),
						b.Read(sim.AddrExpr{Base: particles, Mode: sim.AddrLoop, Stride: 3, Off: 7, Depth: 0, Wrap: 1024}),
						Work(2),
					),
				}
				if hidden {
					// Library call the profiler missed: no transaction cut,
					// so on the fast path this aborts with unknown status.
					body = append(body, &sim.Syscall{Name: "libtiff", Cycles: 30, Hidden: true})
				}
				body = append(body, &sim.Syscall{Name: "readpix", Cycles: 40})
				return b.LoopN(1, body...)
			}

			// Thread-startup initialization: worker 0 publishes two flags
			// without synchronization in a short startup region; workers 1
			// and 2 read them only after a long model-load phase. Real
			// races whose halves never overlap in time — TxRace's expected
			// false negatives (§8.3).
			var init []sim.Instr
			if w == 0 {
				init = append(init,
					deferred[0].WriteA(), deferred[1].WriteA(),
					b.Churn(b.Al.AllocWords(60*8), 60, 1, true))
			} else {
				init = append(init, b.Churn(b.Al.AllocWords(400*8), 400, 5, true))
				switch w {
				case 1:
					init = append(init, deferred[0].ReadB())
				case 2:
					init = append(init, deferred[1].ReadB())
				}
			}

			resample := b.ChurnRandom(b.AllocLines(960), 950, 790, 0)
			reduction := Locked(redMu,
				b.Write(sim.AddrExpr{Base: redBuf, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 64}),
				b.Read(sim.AddrExpr{Base: redBuf, Mode: sim.AddrLoop, Stride: 1, Off: 1, Depth: 0, Wrap: 64}),
				b.Write(sim.AddrExpr{Base: redBuf, Mode: sim.AddrLoop, Stride: 1, Off: 2, Depth: 0, Wrap: 64}),
				b.Read(sim.AddrExpr{Base: redBuf, Mode: sim.AddrLoop, Stride: 1, Off: 3, Depth: 0, Wrap: 64}),
				b.Write(sim.AddrExpr{Base: redBuf, Mode: sim.AddrLoop, Stride: 1, Off: 4, Depth: 0, Wrap: 64}),
			)
			weights := b.Al.AllocWords(256)
			weightsLoop := b.LoopN(100,
				b.Read(sim.AddrExpr{Base: weights, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 256}),
				b.Write(sim.AddrExpr{Base: weights, Mode: sim.AddrLoop, Stride: 1, Off: 1, Depth: 0, Wrap: 256}),
				Work(1),
			)
			frames := 6 * scale
			var body []sim.Instr
			for f := 0; f < frames; f++ {
				body = append(body, &sim.Barrier{B: bar, N: nbar}, Jitter(250))
				// The overlapping races — particle-weight flags shared
				// between neighbour workers — fire in their own frame only,
				// opening the weight-normalization region right after the
				// barrier: the conflict window is the whole loop and no
				// loop-cut ever commits the racy write away.
				for i, r := range overlapping {
					if i%frames != f {
						continue
					}
					if i%threads == w {
						body = append(body, r.WriteA())
					}
					if (i+1)%threads == w {
						body = append(body, r.WriteB())
					}
				}
				body = append(body, weightsLoop)
				// One clean image chunk and three that call into the
				// unprofiled image library: most of the per-frame image
				// work ends up re-executed on the slow path after unknown
				// aborts, bodytrack's signature behaviour.
				body = append(body,
					imgChunk(false), imgChunk(true), imgChunk(true), imgChunk(true),
				)
				body = append(body, resample)
				body = append(body, &sim.Barrier{B: bar, N: nbar})
				body = append(body, reduction...)
			}
			workers[w] = append(init, body...)
		}
		if threads < 3 {
			deferred = deferred[:1]
		}
		return &Built{
			Prog:     &sim.Program{Name: "bodytrack", Workers: workers},
			Races:    overlapping,
			Deferred: deferred,
		}
	}
	return wl
}

// newFacesim models PARSEC's face simulator: the most access-dense PARSEC
// member (TSan's 36.6x), barrier-phased with long mesh-update regions.
// Nine races: eight overlapping on shared force accumulators, one
// initialize-then-publish pair from the thread-pool startup idiom the paper
// describes (§8.3), which TxRace misses.
func newFacesim() *Workload {
	wl := &Workload{
		Name:           "facesim",
		InterruptEvery: 80000,
		SlowScale:      11,
		Paper: Paper{
			Committed: 12827334, Conflict: 1611, Capacity: 3372, Unknown: 38563,
			TSanRaces: 9, TxRaceRaces: 8,
			OriginalMs: 2439, TSanMs: 89242, TxRaceMs: 28027,
			TSanOverhead: 36.59, TxRaceOverhead: 11.49,
			Recall: 0.89, CostEffectiveness: 2.83,
		},
	}
	wl.Build = func(threads, scale int) *Built {
		b := NewB()
		bar := b.Sync()
		nbar := threads

		overlapping := make([]RacyVar, 8)
		for i := range overlapping {
			overlapping[i] = b.NewRacyVar()
		}
		deferred := []RacyVar{b.NewRacyVar()}

		workers := make([][]sim.Instr, threads)
		for w := 0; w < threads; w++ {
			mesh := b.Al.AllocWords(2048)
			// Initialize-then-publish: worker 0 publishes a thread-pool
			// struct in a short startup region and is long gone by the time
			// worker 1 — deep in its model load — reads it. Real race, no
			// overlap: the paper's facesim false negative.
			var init []sim.Instr
			if w == 0 {
				init = append(init, deferred[0].WriteA())
				init = append(init, b.Churn(b.Al.AllocWords(60*8), 60, 1, true))
			} else {
				init = append(init, b.Churn(b.Al.AllocWords(400*8), 400, 6, true))
				if w == 1 {
					init = append(init, deferred[0].ReadB())
				}
			}

			update := func(iters int) *sim.Loop {
				return b.LoopN(iters,
					b.Read(sim.AddrExpr{Base: mesh, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 2048}),
					b.Read(sim.AddrExpr{Base: mesh, Mode: sim.AddrLoop, Stride: 1, Off: 1, Depth: 0, Wrap: 2048}),
					b.Write(sim.AddrExpr{Base: mesh, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 2048}),
					b.Write(sim.AddrExpr{Base: mesh, Mode: sim.AddrLoop, Stride: 1, Off: 3, Depth: 0, Wrap: 2048}),
					Work(1),
				)
			}
			// Racy force-accumulator flags go at the start of the phase
			// region — the conflict window is the whole mesh update — and
			// each race fires in one frame only, so a detected race costs
			// one slow episode rather than one per frame.
			frames := 16 * scale
			var body []sim.Instr
			for f := 0; f < frames; f++ {
				body = append(body, &sim.Barrier{B: bar, N: nbar}, Jitter(300))
				for i, r := range overlapping {
					if (i*2)%frames != f {
						continue
					}
					if i%threads == w {
						body = append(body, r.WriteA())
					}
					if (i+1)%threads == w {
						body = append(body, r.WriteB())
					}
				}
				// Frames that carry a race use a shorter update phase
				// (boundary-force frames), so a detected race's slow episode
				// re-executes less work.
				iters := 85
				if f < 16 && f%2 == 0 {
					iters = 45
				}
				body = append(body, update(iters), &sim.Syscall{Name: "framelog", Cycles: 60})
				// Accumulator flush: every frame re-touches this worker's
				// racy flags in a tiny (<K) region, so the races manifest
				// dynamically often — which is what lets even low-rate
				// sampling catch them (the paper's Fig. 11 observation for
				// frequently-manifesting races).
				for i, r := range overlapping {
					if i%threads == w {
						body = append(body, r.WriteA())
					} else if (i+1)%threads == w {
						body = append(body, r.WriteB())
					}
				}
				body = append(body, &sim.Syscall{Name: "flush", Cycles: 20})
			}
			workers[w] = append(init, body...)
		}
		return &Built{
			Prog:     &sim.Program{Name: "facesim", Workers: workers},
			Races:    overlapping,
			Deferred: deferred,
		}
	}
	return wl
}

// newStreamcluster models PARSEC's online clustering kernel: barrier-phased
// tight loops with library calls in the body (the paper's second
// short-transaction pathology) and per-thread cost counters packed on a
// single cache line, which makes nearly a quarter of its transactions abort
// on (false-sharing) conflicts. TxRace still crushes TSan here (2.97x vs
// 25.9x) because the conflicting regions are tiny and cheap to re-execute.
func newStreamcluster() *Workload {
	wl := &Workload{
		Name:           "streamcluster",
		InterruptEvery: 300000,
		SlowScale:      9.5,
		Paper: Paper{
			Committed: 756908, Conflict: 170805, Capacity: 230, Unknown: 832,
			TSanRaces: 4, TxRaceRaces: 4,
			OriginalMs: 1430, TSanMs: 39042, TxRaceMs: 4253,
			TSanOverhead: 25.9, TxRaceOverhead: 2.97,
			Recall: 1, CostEffectiveness: 8.71,
		},
	}
	wl.Build = func(threads, scale int) *Built {
		b := NewB()
		bar := b.Sync()
		nbar := threads
		costs := b.SharedLineWords(8) // per-thread cost word: false sharing
		races := make([]RacyVar, 4)
		for i := range races {
			races[i] = b.NewRacyVar()
		}
		workers := make([][]sim.Instr, threads)
		for w := 0; w < threads; w++ {
			points := b.Al.AllocWords(1024)
			dist := func(off uint64) []sim.Instr {
				var out []sim.Instr
				for k := uint64(0); k < 5; k++ {
					out = append(out,
						b.Read(sim.AddrExpr{Base: points, Mode: sim.AddrLoop, Stride: 2, Off: off + k, Depth: 0, Wrap: 1024}))
				}
				out = append(out,
					b.Write(sim.AddrExpr{Base: points, Mode: sim.AddrLoop, Stride: 2, Off: off + 7, Depth: 0, Wrap: 1024}))
				return out
			}
			// One gain evaluation: two distance batches, then the library
			// call that ends the region — a dozen accesses per tiny
			// transaction. Every fourth evaluation also bumps this thread's
			// word of the packed cost line at the start of its region,
			// which is the false-sharing conflict source.
			gain := func(cost bool) []sim.Instr {
				var out []sim.Instr
				if cost {
					out = append(out, WriteAt(sim.Fixed(costs[w%len(costs)]), b.Site()))
				}
				out = append(out, dist(0)...)
				out = append(out, dist(31)...)
				out = append(out, Work(1), &sim.Syscall{Name: "shuffle", Cycles: 20})
				return out
			}
			tight := b.LoopN(6, Seq(gain(true), gain(false), gain(false), gain(false))...)
			phase := []sim.Instr{
				&sim.Barrier{B: bar, N: nbar},
				Jitter(150),
			}
			// The genuine races: open/feasible flags poked lock-free right
			// after the barrier, tightly overlapping.
			for i, r := range races {
				if i%threads == w {
					phase = append(phase, r.WriteA())
				}
				if (i+1)%threads == w {
					phase = append(phase, r.WriteB())
				}
			}
			phase = append(phase, tight)
			workers[w] = []sim.Instr{b.LoopN(10*scale, phase...)}
		}
		return &Built{
			Prog:  &sim.Program{Name: "streamcluster", Workers: workers},
			Races: races,
		}
	}
	return wl
}
