package workload

import (
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// ptRegion is one lock-partitioned shared region of the scaling workload.
type ptRegion struct {
	base memmodel.Addr
	mu   sim.SyncID
}

// Scaling workloads are synthetic many-thread applications built for the
// threads-scaling experiments: unlike the Table 1 stand-ins, whose event
// mixes are calibrated to the paper's small-machine profiles, these are
// parametric in the thread count and remain meaningful at 64/256/1024
// simulated threads. Their defining property is idle-thread skew — at any
// moment only a small rotating subset of threads does shared work while the
// long tail computes privately between barriers — which is exactly the shape
// that separates sparse/delta clocks (cost tracks the live subset) from the
// dense representation (cost tracks peak TIDs).

// scalingRegistry holds the scaling workloads; they are kept out of the
// Table 1 registry so All()/Names() still enumerate exactly the paper's
// applications, but ByName resolves both sets.
var scalingRegistry = []*Workload{
	newTxScale(),
}

// Scaling returns the threads-scaling workloads.
func Scaling() []*Workload {
	out := make([]*Workload, len(scalingRegistry))
	copy(out, scalingRegistry)
	return out
}

// ScalingNames returns the scaling workload names in registration order.
func ScalingNames() []string {
	out := make([]string, len(scalingRegistry))
	for i, w := range scalingRegistry {
		out[i] = w.Name
	}
	return out
}

// liveSpan returns the size of the live subset for a thread count: most of
// the fleet idles, but never fewer than eight threads work so small runs
// still exercise real sharing.
func liveSpan(threads int) int {
	live := threads / 32
	if live < 8 {
		live = 8
	}
	if live > threads {
		live = threads
	}
	return live
}

// newTxScale builds the service-scale stand-in: threads workers advance
// through barrier-separated rounds; each round a rotating live window of
// liveSpan(threads) workers updates lock-protected shared state and churns a
// private buffer while everyone else runs idle compute. Two static races are
// injected between live-window workers of round 0 — both halves run before
// the first barrier with no synchronization between the two threads, so any
// schedule exposes the overlap and the detection result is seed-robust.
func newTxScale() *Workload {
	return &Workload{
		Name:           "txscale",
		InterruptEvery: 500000,
		SlowScale:      1,
		Build: func(threads, scale int) *Built {
			if threads < 2 {
				threads = 2
			}
			b := NewB()
			const rounds = 3
			live := liveSpan(threads)
			// Four lock-partitioned shared regions: a worker only touches
			// the region its mutex guards, so the locked work is race-free.
			const parts = 4
			shared := make([]ptRegion, parts)
			for i := range shared {
				shared[i] = ptRegion{base: b.AllocLines(16), mu: b.Sync()}
			}
			bar := b.Sync()
			rv0, rv1 := b.NewRacyVar(), b.NewRacyVar()

			// liveIn reports whether worker w is in round r's live window
			// [r*live, r*live+live) mod threads.
			liveIn := func(w, r int) bool {
				d := (w - r*live) % threads
				if d < 0 {
					d += threads
				}
				return d < live
			}

			workers := make([][]sim.Instr, threads)
			for w := 0; w < threads; w++ {
				local := b.Al.AllocWords(128)
				var body []sim.Instr
				for r := 0; r < rounds; r++ {
					if liveIn(w, r) {
						p := shared[w%parts]
						hot := Locked(p.mu,
							b.Read(sim.AddrExpr{Base: p.base, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 128}),
							b.Write(sim.AddrExpr{Base: p.base, Mode: sim.AddrLoop, Stride: 1, Off: 3, Depth: 0, Wrap: 128}),
						)
						body = append(body,
							b.LoopN(6*scale, Seq(
								hot,
								[]sim.Instr{
									b.Write(sim.AddrExpr{Base: local, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 128}),
									b.Read(sim.AddrExpr{Base: local, Mode: sim.AddrLoop, Stride: 1, Off: 1, Depth: 0, Wrap: 128}),
									Work(30),
								})...),
						)
						if r == 0 {
							// The injected races: two live workers of the
							// first window touch dedicated words with no
							// common lock before the first barrier.
							switch w {
							case 0:
								body = append(body, rv0.WriteA(), rv1.WriteA())
							case 1:
								body = append(body, rv0.WriteB())
								if threads < 3 {
									body = append(body, rv1.ReadB())
								}
							case 2:
								body = append(body, rv1.ReadB())
							}
						}
					} else {
						// Idle tail: private compute only. These threads'
						// clocks stay one entry from the collapse base
						// between barriers.
						body = append(body, Work(200), Jitter(40))
					}
					body = append(body, &sim.Barrier{B: bar, N: threads})
				}
				workers[w] = body
			}
			return &Built{
				Prog:  &sim.Program{Name: "txscale", Workers: workers},
				Races: []RacyVar{rv0, rv1},
			}
		},
	}
}
