package workload

import (
	"repro/internal/sim"
)

// newApache models the Apache httpd experiment (§8.1: 300,000 requests from
// 20 concurrent clients): a listener thread accepts connections and hands
// them to server workers over a semaphore queue. Request handling is
// syscall-bracketed parsing over reused buffers plus a lock-protected
// scoreboard update; the only sharing outside locks is an occasional
// lock-free counter bump on a packed line (false sharing → the paper's 227
// conflicts) and an unprofiled logging-library call (hidden syscalls → its
// 9.8k unknown aborts). No races.
func newApache() *Workload {
	wl := &Workload{
		Name:           "apache",
		InterruptEvery: 150000,
		SlowScale:      2.1,
		Paper: Paper{
			Committed: 310781, Conflict: 227, Capacity: 446, Unknown: 9793,
			TSanRaces: 0, TxRaceRaces: 0,
			OriginalMs: 6916, TSanMs: 21089, TxRaceMs: 13600,
			TSanOverhead: 3.05, TxRaceOverhead: 1.97,
			Recall: 1, CostEffectiveness: 1.55,
		},
	}
	wl.Build = func(threads, scale int) *Built {
		b := NewB()
		if threads < 2 {
			threads = 2
		}
		servers := threads - 1
		connQ := b.Sync()
		statsMu := b.Sync()
		scoreboard := b.Al.AllocWords(64)
		counters := b.SharedLineWords(8) // lock-free per-worker counters
		perServer := 30 * scale

		workers := make([][]sim.Instr, threads)
		// Worker 0: the listener/acceptor.
		workers[0] = []sim.Instr{
			b.LoopN(perServer*servers,
				&sim.Syscall{Name: "accept", Cycles: 90},
				Work(12),
				&sim.Signal{C: connQ},
			),
		}
		for s := 1; s <= servers; s++ {
			buf := b.Al.AllocWords(512)
			handle := func(withExtras bool) []sim.Instr {
				req := []sim.Instr{
					&sim.Wait{C: connQ},
					&sim.Syscall{Name: "read", Cycles: 110},
					b.LoopN(10,
						b.Read(sim.AddrExpr{Base: buf, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 512}),
						b.Write(sim.AddrExpr{Base: buf, Mode: sim.AddrLoop, Stride: 1, Off: 1, Depth: 0, Wrap: 512}),
						Work(3),
					),
				}
				if withExtras {
					// Lock-free counter on a shared line (rare overlap) and
					// an unprofiled logging call inside the handler region.
					req = append(req,
						WriteAt(sim.Fixed(counters[s%len(counters)]), b.Site()),
						&sim.Syscall{Name: "liblog", Cycles: 35, Hidden: true},
					)
				}
				req = append(req, Locked(statsMu,
					b.Write(sim.AddrExpr{Base: scoreboard, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 64}),
					b.Read(sim.AddrExpr{Base: scoreboard, Mode: sim.AddrLoop, Stride: 1, Off: 1, Depth: 0, Wrap: 64}),
					b.Write(sim.AddrExpr{Base: scoreboard, Mode: sim.AddrLoop, Stride: 1, Off: 2, Depth: 0, Wrap: 64}),
					b.Read(sim.AddrExpr{Base: scoreboard, Mode: sim.AddrLoop, Stride: 1, Off: 3, Depth: 0, Wrap: 64}),
					b.Write(sim.AddrExpr{Base: scoreboard, Mode: sim.AddrLoop, Stride: 1, Off: 4, Depth: 0, Wrap: 64}),
				)...)
				req = append(req, &sim.Syscall{Name: "write", Cycles: 130})
				return req
			}
			workers[s] = []sim.Instr{
				b.LoopN(perServer/10,
					Seq(
						flatten(9, func() []sim.Instr { return handle(false) }),
						handle(true),
					)...,
				),
			}
		}
		return &Built{Prog: &sim.Program{Name: "apache", Workers: workers}}
	}
	return wl
}

// flatten repeats a generated instruction group n times.
func flatten(n int, gen func() []sim.Instr) []sim.Instr {
	var out []sim.Instr
	for i := 0; i < n; i++ {
		out = append(out, gen()...)
	}
	return out
}
