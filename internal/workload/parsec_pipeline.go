package workload

import (
	"repro/internal/sim"
)

// pipelineStage builds the common queue plumbing used by ferret and dedup:
// stage s waits on its input semaphore, dequeues under the input queue lock,
// does stage work, enqueues under the output queue lock, and signals the
// next stage. Queue buffers are only touched under their queue's mutex, so
// the plumbing itself is race-free.
type pipeline struct {
	b      *B
	sems   []sim.SyncID
	mus    []sim.SyncID
	bufs   []sim.AddrExpr
	stages int
}

func newPipeline(b *B, stages int) *pipeline {
	p := &pipeline{b: b, stages: stages}
	for i := 0; i < stages; i++ {
		p.sems = append(p.sems, b.Sync())
		p.mus = append(p.mus, b.Sync())
		buf := b.Al.AllocWords(256)
		p.bufs = append(p.bufs, sim.AddrExpr{Base: buf, Mode: sim.AddrLoop, Stride: 1, Depth: 0, Wrap: 256})
	}
	return p
}

// deq returns the instructions for taking one item from stage s's queue.
func (p *pipeline) deq(s int) []sim.Instr {
	return Seq(
		[]sim.Instr{&sim.Wait{C: p.sems[s]}},
		Locked(p.mus[s],
			p.b.Read(p.bufs[s]),
			p.b.Read(p.bufs[s]),
			p.b.Write(p.bufs[s]),
			p.b.Read(p.bufs[s]),
			p.b.Write(p.bufs[s]),
		),
	)
}

// enq returns the instructions for handing one item to stage s's queue.
func (p *pipeline) enq(s int) []sim.Instr {
	return Seq(
		Locked(p.mus[s],
			p.b.Write(p.bufs[s]),
			p.b.Write(p.bufs[s]),
			p.b.Read(p.bufs[s]),
			p.b.Write(p.bufs[s]),
			p.b.Write(p.bufs[s]),
		),
		[]sim.Instr{&sim.Signal{C: p.sems[s]}},
	)
}

// newFerret models PARSEC's similarity-search pipeline: one thread per
// stage connected by bounded queues, with one real race on a statistics
// word two middle stages update without the lock.
func newFerret() *Workload {
	wl := &Workload{
		Name:           "ferret",
		InterruptEvery: 25000,
		SlowScale:      3.3,
		Paper: Paper{
			Committed: 208052, Conflict: 379, Capacity: 2413, Unknown: 4263,
			TSanRaces: 1, TxRaceRaces: 1,
			OriginalMs: 1060, TSanMs: 11390, TxRaceMs: 5852,
			TSanOverhead: 10.74, TxRaceOverhead: 5.52,
			Recall: 1, CostEffectiveness: 1.95,
		},
	}
	wl.Build = func(threads, scale int) *Built {
		b := NewB()
		p := newPipeline(b, threads)
		race := b.NewRacyVar()
		items := 25 * scale
		workers := make([][]sim.Instr, threads)
		for s := 0; s < threads; s++ {
			table := b.Al.AllocWords(2048) // per-stage model data
			stageWork := b.LoopN(12,
				b.Read(sim.Random(table, 2048)),
				b.Read(sim.Random(table, 2048)),
				b.Write(sim.Random(table, 2048)),
				Work(3),
			)
			var item []sim.Instr
			switch {
			case s == 0:
				// Load stage: generate an item, push downstream.
				item = Seq([]sim.Instr{Jitter(150), stageWork}, p.enq(1))
			case s == threads-1:
				// Output stage: drain only.
				item = Seq(p.deq(s), []sim.Instr{stageWork, &sim.Syscall{Name: "out", Cycles: 90}})
			default:
				item = Seq(p.deq(s), []sim.Instr{stageWork}, p.enq(s+1))
			}
			// The race: rank/vec stages bump a shared counter lock-free.
			if s == 1 {
				item = append(item, race.WriteA())
			}
			if s == 2 && threads > 3 {
				item = append(item, race.WriteB())
			} else if s == threads-1 && threads <= 3 {
				item = append(item, race.WriteB())
			}
			workers[s] = []sim.Instr{b.LoopN(items, item...)}
		}
		// Each stage periodically rebuilds an index chunk: a stochastic
		// footprint around the write-set capacity.
		for s := 0; s < threads; s++ {
			big := b.AllocLines(880)
			workers[s] = append(workers[s], b.LoopN(2, b.ChurnRandom(big, 870, 850, 0)))
		}
		return &Built{
			Prog:  &sim.Program{Name: "ferret", Workers: workers},
			Races: []RacyVar{race},
		}
	}
	return wl
}

// newDedup models PARSEC's deduplication pipeline: the same queue skeleton
// as ferret plus a shared hash-bucket table whose per-thread hint words sit
// packed on common cache lines. Those writes conflict constantly in the HTM
// but never overlap on a word, so dedup shows six-figure conflict aborts and
// zero actual races — the false-sharing stress case for the slow path.
func newDedup() *Workload {
	wl := &Workload{
		Name:           "dedup",
		InterruptEvery: 40000,
		SlowScale:      1.45,
		Paper: Paper{
			Committed: 2185219, Conflict: 106618, Capacity: 13889, Unknown: 40177,
			TSanRaces: 0, TxRaceRaces: 0,
			OriginalMs: 2748, TSanMs: 13292, TxRaceMs: 11513,
			TSanOverhead: 4.84, TxRaceOverhead: 4.19,
			Recall: 1, CostEffectiveness: 1.15,
		},
	}
	wl.Build = func(threads, scale int) *Built {
		b := NewB()
		p := newPipeline(b, threads)
		hints := b.SharedLineWords(8) // per-stage hint counters: false sharing
		items := 25 * scale
		workers := make([][]sim.Instr, threads)
		for s := 0; s < threads; s++ {
			chunkBuf := b.Al.AllocWords(600 * 8)
			compress := b.LoopN(15,
				b.Read(sim.AddrExpr{Base: chunkBuf, Mode: sim.AddrLoop, Stride: 8, Depth: 0, Wrap: 600 * 8}),
				b.Write(sim.AddrExpr{Base: chunkBuf, Mode: sim.AddrLoop, Stride: 8, Off: 3, Depth: 0, Wrap: 600 * 8}),
				Work(4),
			)
			// One lock-free hash-bucket hint bump per chunk, at the start
			// of the compress region: false sharing with the other stages.
			hint := WriteAt(sim.Fixed(hints[s%len(hints)]), b.Site())
			var item []sim.Instr
			switch {
			case s == 0:
				item = Seq([]sim.Instr{Jitter(120), hint, compress}, p.enq(1))
			case s == threads-1:
				item = Seq(p.deq(s), []sim.Instr{hint, compress, &sim.Syscall{Name: "write", Cycles: 110}})
			default:
				item = Seq(p.deq(s), []sim.Instr{hint, compress}, p.enq(s+1))
			}
			workers[s] = []sim.Instr{b.LoopN(items, item...)}
		}
		// Anchoring stage occasionally rescans a whole chunk: capacity.
		big := b.Al.AllocWords(800 * 8)
		workers[0] = append(workers[0], b.Churn(big, 800, 1, false))
		return &Built{Prog: &sim.Program{Name: "dedup", Workers: workers}}
	}
	return wl
}

// newX264 models PARSEC's H.264 encoder: a wavefront of frame workers where
// each frame's rows wait on the reference frame's corresponding rows via
// semaphores. The encoder's well-known data races — speculative reads of
// neighbour progress flags without waiting — are injected as 64 static racy
// pairs, all tightly overlapping in the wavefront, which is why TxRace finds
// every one of them (Table 1).
func newX264() *Workload {
	const nraces = 64
	wl := &Workload{
		Name:           "x264",
		InterruptEvery: 300000,
		SlowScale:      3,
		Paper: Paper{
			Committed: 36808, Conflict: 245, Capacity: 423, Unknown: 5358,
			TSanRaces: 64, TxRaceRaces: 64,
			OriginalMs: 595, TSanMs: 3837, TxRaceMs: 3332,
			TSanOverhead: 6.45, TxRaceOverhead: 5.6,
			Recall: 1, CostEffectiveness: 1.15,
		},
	}
	wl.Build = func(threads, scale int) *Built {
		b := NewB()
		rows := 24
		frames := 3 * scale
		races := make([]RacyVar, nraces)
		for i := range races {
			races[i] = b.NewRacyVar()
		}
		// rowSem[w] is posted by worker w-1 as it completes rows; progress
		// is a broadcast semaphore nobody waits on (the encoder's
		// cond_broadcast of row progress).
		rowSem := make([]sim.SyncID, threads)
		for i := range rowSem {
			rowSem[i] = b.Sync()
		}
		progress := b.Sync()
		// Assign each race to an adjacent worker pair and a row (at most
		// one per slot, so every speculative peek sits in a small,
		// always-monitored region): the upstream worker writes the flag
		// after signalling (unordered), the downstream worker reads it
		// speculatively before waiting.
		type slot struct{ write, read []*sim.MemAccess }
		plan := make([][]slot, threads)
		for w := range plan {
			plan[w] = make([]slot, rows)
		}
		pairs := threads - 1
		for i, r := range races {
			up := i % pairs // writer: worker up
			row := (i / pairs) % rows
			plan[up][row].write = append(plan[up][row].write, r.WriteA())
			plan[up+1][row].read = append(plan[up+1][row].read, r.ReadB())
		}
		workers := make([][]sim.Instr, threads)
		for w := 0; w < threads; w++ {
			fb := b.Al.AllocWords(2048)
			var frame []sim.Instr
			for row := 0; row < rows; row++ {
				// Speculative neighbour peeks (the races) happen before the
				// proper wait.
				for _, acc := range plan[w][row].read {
					frame = append(frame, acc)
				}
				if w > 0 {
					frame = append(frame, &sim.Wait{C: rowSem[w]})
				}
				// Row encode: sync-dense wavefront code whose regions carry
				// only a handful of hooked accesses — the K filter routes
				// them to the slow path, which is why x264's TxRace overhead
				// sits so close to TSan's in Table 1 (5.6x vs 6.45x).
				frame = append(frame, Jitter(80), b.LoopN(2,
					b.Read(sim.AddrExpr{Base: fb, Mode: sim.AddrLoop, Stride: 2, Depth: 0, Wrap: 2048}),
					b.Write(sim.AddrExpr{Base: fb, Mode: sim.AddrLoop, Stride: 2, Off: 1, Depth: 0, Wrap: 2048}),
					Work(22),
				))
				if w < threads-1 {
					frame = append(frame, &sim.Signal{C: rowSem[w+1]})
				} else {
					// The last worker still broadcasts row progress, so its
					// speculative peeks sit in small regions too.
					frame = append(frame, &sim.Signal{C: progress})
				}
				// Post-signal progress-flag writes: unordered w.r.t. the
				// downstream reads above. The progress broadcast right
				// after keeps each write in its own tiny always-monitored
				// region, which is why TxRace catches all 64 (Table 1).
				if len(plan[w][row].write) > 0 {
					for _, acc := range plan[w][row].write {
						frame = append(frame, acc)
					}
					frame = append(frame, &sim.Signal{C: progress})
				}
			}
			// Per-frame lookahead buffer fill: stochastic capacity, with an
			// unprofiled library call buried in the middle of the region —
			// the resulting unknown abort forces the second half of the
			// lookahead sweep through the slow path every frame.
			look := b.AllocLines(940)
			frame = append(frame,
				b.ChurnRandom(look, 930, 380, 0),
				&sim.Syscall{Name: "libavutil", Cycles: 30, Hidden: true},
				b.ChurnRandom(look, 930, 380, 0),
				&sim.Syscall{Name: "frameout", Cycles: 150})
			workers[w] = []sim.Instr{b.LoopN(frames, frame...)}
		}
		return &Built{
			Prog:  &sim.Program{Name: "x264", Workers: workers},
			Races: races,
		}
	}
	return wl
}
