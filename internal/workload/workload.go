package workload

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/detect"
	"repro/internal/sim"
)

// Paper holds the published Table 1 / Table 2 numbers for one application,
// used by EXPERIMENTS.md-style reports to put measured values side by side
// with the paper's.
type Paper struct {
	Committed uint64
	Conflict  uint64
	Capacity  uint64
	Unknown   uint64

	TSanRaces   int
	TxRaceRaces int

	OriginalMs float64
	TSanMs     float64
	TxRaceMs   float64

	TSanOverhead   float64 // e.g. 11.68 means 11.68x
	TxRaceOverhead float64

	Recall            float64 // Table 2
	CostEffectiveness float64 // Table 2
}

// Built is the output of a workload generator: the program plus the ground
// truth of the races deliberately injected into it.
type Built struct {
	Prog *sim.Program
	// Races are the injected overlapping race sites (TxRace should find
	// them given enough overlap).
	Races []RacyVar
	// Deferred are initialize-then-publish races (§8.3): real races whose
	// two halves never overlap in time, so the fast path cannot flag them —
	// the paper's bodytrack/facesim false negatives.
	Deferred []RacyVar
}

// AllRaceKeys returns the normalized identities of every injected race.
func (bl *Built) AllRaceKeys() []detect.PairKey {
	out := make([]detect.PairKey, 0, len(bl.Races)+len(bl.Deferred))
	for _, r := range append(append([]RacyVar{}, bl.Races...), bl.Deferred...) {
		a, b := r.Key()
		out = append(out, detect.PairKey{A: a, B: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Workload is one evaluation application.
type Workload struct {
	Name string
	// SlowScale models per-application software-detector pathologies
	// (contended shadow words, race-report storms); it multiplies the
	// per-access slow-path hook cost for both TSan and TxRace's slow path.
	SlowScale float64
	// InterruptEvery overrides the engine's interrupt period for this
	// application (0 keeps the engine default). Interrupt-heavy
	// applications show more unknown aborts.
	InterruptEvery int64
	// Build generates the program for a worker-thread count and a scale
	// factor (scale 1 is test-sized; benchmarks use larger scales).
	Build func(threads, scale int) *Built
	// MaxThreads bounds the thread counts the generator is calibrated for
	// (0 = scalable to arbitrary counts). The Table 1 stand-ins are shaped
	// after small-machine profiles and cap out; the scaling workloads
	// (Scaling()) are parametric and unbounded.
	MaxThreads int
	// Paper carries the published numbers for comparison reports.
	Paper Paper
}

// CheckThreads rejects thread counts beyond the generator's calibrated
// range with a one-line error that names the scalable alternatives.
func (w *Workload) CheckThreads(threads int) error {
	if w.MaxThreads > 0 && threads > w.MaxThreads {
		return fmt.Errorf("workload %q is calibrated up to %d threads (got %d); apps that scale to arbitrary -threads: %s",
			w.Name, w.MaxThreads, threads, strings.Join(ScalingNames(), ", "))
	}
	return nil
}

var registry []*Workload

func init() {
	// Registration follows the paper's Table 1 order.
	registry = []*Workload{
		newBlackscholes(),
		newFluidanimate(),
		newSwaptions(),
		newFreqmine(),
		newVips(),
		newRaytrace(),
		newFerret(),
		newX264(),
		newBodytrack(),
		newFacesim(),
		newStreamcluster(),
		newDedup(),
		newCanneal(),
		newApache(),
	}
	// The Table 1 stand-ins mirror profiles measured on small machines;
	// past this bound their region mixes stop meaning anything, so the
	// commands refuse rather than report junk (see CheckThreads).
	for _, w := range registry {
		w.MaxThreads = 64
	}
}

// All returns every workload in the paper's Table 1 order.
func All() []*Workload {
	out := make([]*Workload, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the named workload, resolving the Table 1 set, the
// threads-scaling set, and the real-Go corpus (`go:<snippet>`).
func ByName(name string) (*Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	for _, w := range scalingRegistry {
		if w.Name == name {
			return w, nil
		}
	}
	for _, w := range goRegistry {
		if w.Name == name {
			return w, nil
		}
	}
	if strings.HasPrefix(name, GoCorpusPrefix) {
		return nil, fmt.Errorf("workload: unknown corpus snippet %q (have: %s)", name, strings.Join(GoNames(), ", "))
	}
	return nil, fmt.Errorf("workload: unknown application %q", name)
}

// Names returns all workload names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, w := range registry {
		out[i] = w.Name
	}
	return out
}
