package cache

import (
	"testing"

	"repro/internal/memmodel"
)

// FuzzCacheOps drives the set-associative cache with an arbitrary operation
// stream and checks the structural invariants the HTM depends on: a touched
// line is resident, occupancy never exceeds capacity, evictions only report
// previously resident lines.
func FuzzCacheOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 250, 0, 0, 9})
	f.Fuzz(func(t *testing.T, ops []byte) {
		c := New(8, 2)
		resident := map[memmodel.Line]bool{}
		for _, b := range ops {
			l := memmodel.Line(b)
			if b%7 == 0 {
				c.Reset()
				resident = map[memmodel.Line]bool{}
				continue
			}
			ev, ok := c.Touch(l)
			if ok {
				if !resident[ev] {
					t.Fatalf("evicted non-resident line %d", ev)
				}
				delete(resident, ev)
			}
			resident[l] = true
			if !c.Contains(l) {
				t.Fatalf("touched line %d not resident", l)
			}
			if c.Len() > c.Capacity() || c.Len() != len(resident) {
				t.Fatalf("occupancy invariant broken: %d vs %d", c.Len(), len(resident))
			}
		}
	})
}
