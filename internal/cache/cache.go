// Package cache implements a set-associative cache model with LRU
// replacement. The HTM simulator uses one instance per transaction side
// (write set tracked in an L1-sized cache, read set in a larger structure)
// so that capacity aborts arise from the same mechanism as on real TSX
// hardware: a transactionally accessed line being evicted because its set
// fills up. Whether a given working set overflows therefore depends on the
// access pattern, not only on its total size — exactly the behaviour the
// paper's loop-cut optimization (§4.3) is designed around.
package cache

import (
	"fmt"

	"repro/internal/memmodel"
)

// Cache is a set-associative cache of cache-line tags with per-set LRU
// replacement. It tracks presence only; there are no data payloads.
type Cache struct {
	sets    int
	ways    int
	lines   [][]memmodel.Line // lines[set] ordered MRU-first, len <= ways
	count   int
	onEvict func(memmodel.Line)
}

// New returns a cache with the given geometry. sets must be a power of two.
func New(sets, ways int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: sets %d must be a positive power of two", sets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("cache: ways %d must be positive", ways))
	}
	c := &Cache{sets: sets, ways: ways, lines: make([][]memmodel.Line, sets)}
	for i := range c.lines {
		c.lines[i] = make([]memmodel.Line, 0, ways)
	}
	return c
}

// SetOnEvict registers fn to be called once for every line leaving the
// cache: the LRU victim of a Touch insertion into a full set, and each
// resident line dropped by Reset. The HTM's line-ownership directory hangs
// off this hook so a transaction's per-line claims are withdrawn exactly
// when the tracking structure stops holding the line — without walking any
// global state. A nil fn (the default) disables the callback.
func (c *Cache) SetOnEvict(fn func(memmodel.Line)) { c.onEvict = fn }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Capacity returns the total number of lines the cache can hold.
func (c *Cache) Capacity() int { return c.sets * c.ways }

// Len returns the number of lines currently resident.
func (c *Cache) Len() int { return c.count }

func (c *Cache) setOf(l memmodel.Line) int { return int(uint64(l) & uint64(c.sets-1)) }

// Contains reports whether line l is resident. It does not update LRU order.
func (c *Cache) Contains(l memmodel.Line) bool {
	for _, x := range c.lines[c.setOf(l)] {
		if x == l {
			return true
		}
	}
	return false
}

// Touch inserts line l (or refreshes it to MRU if already resident). If the
// insertion evicts a line, Touch returns that line and true. For the HTM
// this is the capacity-abort trigger: a transactional line falling out of
// the tracking structure means the transaction can no longer be validated.
func (c *Cache) Touch(l memmodel.Line) (evicted memmodel.Line, ok bool) {
	s := c.setOf(l)
	set := c.lines[s]
	if len(set) > 0 && set[0] == l {
		// Already MRU — the common case for looping access patterns.
		return 0, false
	}
	// Sets hold at most a handful of ways, so MRU moves shift entries with a
	// plain backward loop: for these sizes the loop beats the memmove call a
	// copy would compile to.
	for i, x := range set {
		if x == l {
			for ; i > 0; i-- {
				set[i] = set[i-1]
			}
			set[0] = l
			return 0, false
		}
	}
	if len(set) < c.ways {
		set = append(set, 0)
		for i := len(set) - 1; i > 0; i-- {
			set[i] = set[i-1]
		}
		set[0] = l
		c.lines[s] = set
		c.count++
		return 0, false
	}
	evicted = set[len(set)-1]
	for i := len(set) - 1; i > 0; i-- {
		set[i] = set[i-1]
	}
	set[0] = l
	if c.onEvict != nil {
		c.onEvict(evicted)
	}
	return evicted, true
}

// Reset empties the cache. The HTM resets its tracking structures at every
// transaction begin, commit and abort. The eviction callback (if any) fires
// for each line that was resident, MRU-first within each set, so hooked
// bookkeeping sees every departure.
func (c *Cache) Reset() {
	for i := range c.lines {
		if c.onEvict != nil {
			for _, l := range c.lines[i] {
				c.onEvict(l)
			}
		}
		c.lines[i] = c.lines[i][:0]
	}
	c.count = 0
}

// Resident returns all resident lines in unspecified order. Used by the HTM
// to enumerate a transaction's read/write set when checking strong-isolation
// conflicts from non-transactional code.
func (c *Cache) Resident() []memmodel.Line {
	out := make([]memmodel.Line, 0, c.count)
	for _, set := range c.lines {
		out = append(out, set...)
	}
	return out
}
