package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memmodel"
)

func TestTouchFillsWithoutEviction(t *testing.T) {
	c := New(4, 2)
	for l := memmodel.Line(0); l < 8; l++ {
		if _, ev := c.Touch(l); ev {
			t.Fatalf("eviction while filling at line %d", l)
		}
	}
	if c.Len() != 8 {
		t.Fatalf("Len = %d, want 8", c.Len())
	}
	for l := memmodel.Line(0); l < 8; l++ {
		if !c.Contains(l) {
			t.Fatalf("line %d missing after fill", l)
		}
	}
}

func TestEvictionIsLRUWithinSet(t *testing.T) {
	c := New(1, 2) // single set, two ways
	c.Touch(10)
	c.Touch(20)
	c.Touch(10) // refresh 10 → 20 becomes LRU
	ev, ok := c.Touch(30)
	if !ok || ev != 20 {
		t.Fatalf("evicted %d,%v, want 20,true", ev, ok)
	}
	if !c.Contains(10) || !c.Contains(30) || c.Contains(20) {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestSetIndexing(t *testing.T) {
	c := New(4, 1)
	// Lines 0 and 4 map to set 0; line 1 to set 1. Touching 1 must not
	// evict anything from set 0.
	c.Touch(0)
	if _, ev := c.Touch(1); ev {
		t.Fatal("cross-set touch evicted")
	}
	ev, ok := c.Touch(4)
	if !ok || ev != 0 {
		t.Fatalf("same-set conflict: evicted %d,%v, want 0,true", ev, ok)
	}
}

func TestReset(t *testing.T) {
	c := New(4, 2)
	c.Touch(1)
	c.Touch(2)
	c.Reset()
	if c.Len() != 0 || c.Contains(1) || c.Contains(2) {
		t.Fatal("Reset did not empty the cache")
	}
	// Reusable after reset.
	if _, ev := c.Touch(3); ev {
		t.Fatal("eviction right after reset")
	}
}

func TestResident(t *testing.T) {
	c := New(2, 2)
	lines := []memmodel.Line{3, 8, 5}
	for _, l := range lines {
		c.Touch(l)
	}
	got := c.Resident()
	if len(got) != 3 {
		t.Fatalf("Resident len = %d, want 3", len(got))
	}
	set := map[memmodel.Line]bool{}
	for _, l := range got {
		set[l] = true
	}
	for _, l := range lines {
		if !set[l] {
			t.Fatalf("line %d missing from Resident", l)
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, g := range []struct{ sets, ways int }{{0, 1}, {3, 1}, {4, 0}, {-4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) must panic", g.sets, g.ways)
				}
			}()
			New(g.sets, g.ways)
		}()
	}
}

// TestPropertyResidencyBound checks that under random access streams the
// cache never exceeds capacity, every reported eviction was resident, and a
// just-touched line is always resident.
func TestPropertyResidencyBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(8, 4)
		resident := map[memmodel.Line]bool{}
		for i := 0; i < 2000; i++ {
			l := memmodel.Line(rng.Intn(200))
			ev, ok := c.Touch(l)
			if ok {
				if !resident[ev] {
					return false // evicted something not resident
				}
				delete(resident, ev)
			}
			resident[l] = true
			if !c.Contains(l) {
				return false
			}
			if c.Len() > c.Capacity() {
				return false
			}
			if c.Len() != len(resident) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestOnEvictFiresOnTouch pins both that the callback fires exactly when
// Touch reports an eviction and that the victim is the LRU line of the set.
func TestOnEvictFiresOnTouch(t *testing.T) {
	c := New(1, 2)
	var fired []memmodel.Line
	c.SetOnEvict(func(l memmodel.Line) { fired = append(fired, l) })
	c.Touch(10)
	c.Touch(20)
	c.Touch(10) // refresh: 20 becomes LRU
	if len(fired) != 0 {
		t.Fatalf("callback fired without eviction: %v", fired)
	}
	ev, ok := c.Touch(30)
	if !ok || ev != 20 {
		t.Fatalf("evicted %d,%v, want 20,true", ev, ok)
	}
	if len(fired) != 1 || fired[0] != 20 {
		t.Fatalf("callback saw %v, want [20]", fired)
	}
	// Next victim must be 10 (LRU after the refresh ordering 30, 10).
	if ev, ok := c.Touch(40); !ok || ev != 10 {
		t.Fatalf("second eviction %d,%v, want 10,true", ev, ok)
	}
	if len(fired) != 2 || fired[1] != 10 {
		t.Fatalf("callback saw %v, want [20 10]", fired)
	}
}

// TestOnEvictFiresOnReset pins that Reset reports every resident line to the
// callback, MRU-first within each set, and that a reset cache fires nothing
// further until repopulated.
func TestOnEvictFiresOnReset(t *testing.T) {
	c := New(2, 2)
	var fired []memmodel.Line
	c.SetOnEvict(func(l memmodel.Line) { fired = append(fired, l) })
	for _, l := range []memmodel.Line{2, 4, 3} { // set0: 4,2 (MRU-first); set1: 3
		c.Touch(l)
	}
	c.Reset()
	want := []memmodel.Line{4, 2, 3}
	if len(fired) != len(want) {
		t.Fatalf("Reset fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("Reset fired %v, want %v (MRU-first per set)", fired, want)
		}
	}
	fired = fired[:0]
	c.Reset()
	if len(fired) != 0 {
		t.Fatalf("empty Reset fired %v", fired)
	}
}

// TestOnEvictConservation checks under random streams that lines reported
// evicted plus lines still resident always account for every inserted line.
func TestOnEvictConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(4, 2)
		live := map[memmodel.Line]bool{}
		c.SetOnEvict(func(l memmodel.Line) {
			if !live[l] {
				t.Errorf("evicted non-resident line %d", l)
			}
			delete(live, l)
		})
		for i := 0; i < 1000; i++ {
			l := memmodel.Line(rng.Intn(64))
			c.Touch(l)
			live[l] = true
			if len(live) != c.Len() {
				return false
			}
		}
		c.Reset()
		return len(live) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryAccessors(t *testing.T) {
	c := New(16, 8)
	if c.Sets() != 16 || c.Ways() != 8 || c.Capacity() != 128 {
		t.Fatalf("geometry accessors wrong: %d %d %d", c.Sets(), c.Ways(), c.Capacity())
	}
}
