package cache

import (
	"testing"

	"repro/internal/memmodel"
)

func BenchmarkTouchHit(b *testing.B) {
	c := New(64, 8)
	for l := memmodel.Line(0); l < 512; l++ {
		c.Touch(l)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Touch(memmodel.Line(i & 511))
	}
}

func BenchmarkTouchEvicting(b *testing.B) {
	c := New(64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Touch(memmodel.Line(i))
	}
}
