package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/instrument"
	"repro/internal/obs"
	"repro/internal/sim"
)

// runLedgered executes the racy smoke program under TxRace with an
// attribution ledger attached and returns the run result plus the ledger
// snapshot. Engine.Run itself enforces conservation (ledger total == thread
// clock per thread) and would fail the run on any leak.
func runLedgered(t *testing.T, opts core.Options, cfg sim.Config) (*sim.Result, obs.LedgerSnapshot) {
	t.Helper()
	led := obs.NewLedger()
	o := obs.New(nil, nil)
	o.AttachLedger(led)
	opts.Obs = o
	cfg.Obs = o
	rt := core.NewTxRace(opts)
	res, err := sim.NewEngine(cfg).Run(instrument.ForTxRace(buildRacyProgram(), instrument.DefaultOptions()), rt)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, led.Snapshot()
}

// TestAttribConservation pins the ledger's core invariant independently of
// the engine's internal check: per-thread ledger totals equal the engine's
// reported thread clocks exactly, and the run-wide total is their sum.
func TestAttribConservation(t *testing.T) {
	res, s := runLedgered(t, core.Options{}, quietConfig())
	if len(s.Threads) == 0 {
		t.Fatal("empty ledger")
	}
	var sum int64
	for _, th := range s.Threads {
		if th.TID >= len(res.ThreadClocks) {
			t.Fatalf("ledger thread %d beyond %d engine threads", th.TID, len(res.ThreadClocks))
		}
		if th.Total != res.ThreadClocks[th.TID] {
			t.Fatalf("t%d: ledger total %d != thread clock %d",
				th.TID, th.Total, res.ThreadClocks[th.TID])
		}
		sum += th.Total
	}
	if s.Total.Total != sum {
		t.Fatalf("run total %d != per-thread sum %d", s.Total.Total, sum)
	}
	// The racy program commits transactions and takes slow paths: both the
	// fast and slow phases must have been charged.
	if s.Total.Phases["fast"] <= 0 {
		t.Fatalf("no fast-path cycles attributed: %v", s.Total.Phases)
	}
	if s.Total.Phases["app"] <= 0 {
		t.Fatalf("no app cycles attributed: %v", s.Total.Phases)
	}
}

// TestAttribInterruptAborts: with timer interrupts enabled the racy program
// takes unknown aborts; their wasted cycles must land in the abort phase and
// the unknown (not syscall, not fault) cause bucket.
func TestAttribInterruptAborts(t *testing.T) {
	cfg := quietConfig()
	cfg.InterruptEvery = 400
	res, s := runLedgered(t, core.Options{}, cfg)
	_ = res
	var aborts uint64
	for _, n := range s.Total.AbortCounts {
		aborts += n
	}
	if aborts == 0 {
		t.Skip("schedule produced no aborts; nothing to attribute")
	}
	if s.Total.AbortCounts["fault"] != 0 {
		t.Fatalf("fault-injected aborts without an injector: %v", s.Total.AbortCounts)
	}
	if s.Total.Phases["abort"] <= 0 {
		t.Fatalf("aborts recorded but no abort-phase cycles: %v", s.Total.Phases)
	}
}

// TestAttribFaultInjected: with a hostile fault plan, delivered aborts are
// labelled fault-injected — the injector's mark reaches the ledger — while
// the abort policy itself remains blind to the mark.
func TestAttribFaultInjected(t *testing.T) {
	plan := fault.Plan{Seed: 3, Rules: []fault.Rule{
		{Kind: fault.Unknown, Prob: 0.5},
		{Kind: fault.CommitAbort, Prob: 0.5},
	}}
	_, s := runLedgered(t, core.Options{Fault: fault.New(plan)}, quietConfig())
	if s.Total.AbortCounts["fault"] == 0 {
		t.Fatalf("hostile plan produced no fault-attributed aborts: %v", s.Total.AbortCounts)
	}
}

// TestAttribUnledgeredUnchanged: attaching a ledger must not perturb the
// simulation — same program, same seed, identical makespan and race set
// size with and without attribution.
func TestAttribUnledgeredUnchanged(t *testing.T) {
	run := func(ledger bool) *sim.Result {
		var o *obs.Observer
		if ledger {
			o = obs.New(nil, nil)
			o.AttachLedger(obs.NewLedger())
		}
		cfg := quietConfig()
		cfg.Obs = o
		rt := core.NewTxRace(core.Options{Obs: o})
		res, err := sim.NewEngine(cfg).Run(instrument.ForTxRace(buildRacyProgram(), instrument.DefaultOptions()), rt)
		if err != nil {
			t.Fatalf("run(ledger=%v): %v", ledger, err)
		}
		return res
	}
	with, without := run(true), run(false)
	if with.Makespan != without.Makespan {
		t.Fatalf("ledger changed the makespan: %d vs %d", with.Makespan, without.Makespan)
	}
	if with.Instructions != without.Instructions {
		t.Fatalf("ledger changed the instruction count: %d vs %d", with.Instructions, without.Instructions)
	}
}
