package core

import (
	"repro/internal/clock"
	"repro/internal/detect"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TSanBounded is stock ThreadSanitizer's memory-bounded configuration: N
// shadow cells per 8 application bytes with random replacement (§5). The
// paper explicitly configured TSan with "enough shadow cells to be sound";
// this runtime exists to measure what that choice buys — see the shadow
// experiment and TestShadowEvictionUnsoundness.
type TSanBounded struct {
	sim.NopRuntime
	det *detect.CellDetector
	eng *sim.Engine

	// SlowScale as in TSan.
	SlowScale float64
}

// NewTSanBounded returns a bounded-shadow runtime with n cells per granule.
func NewTSanBounded(n int, seed int64) *TSanBounded {
	return &TSanBounded{det: detect.NewCellDetector(n, seed), SlowScale: 1}
}

// Detector exposes the underlying bounded detector.
func (r *TSanBounded) Detector() *detect.CellDetector { return r.det }

// Init implements sim.Runtime.
func (r *TSanBounded) Init(e *sim.Engine) { r.eng = e }

// Fork implements sim.Runtime.
func (r *TSanBounded) Fork(p, c *sim.Thread) { r.det.Fork(clock.TID(p.ID), clock.TID(c.ID)) }

// Joined implements sim.Runtime.
func (r *TSanBounded) Joined(p, c *sim.Thread) { r.det.Join(clock.TID(p.ID), clock.TID(c.ID)) }

// SyncAcquire implements sim.Runtime.
func (r *TSanBounded) SyncAcquire(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	r.eng.ChargeAs(t, r.eng.Config().Cost.SlowSyncHook, obs.PhaseSlow)
	switch kind {
	case sim.SyncWrite:
		r.det.Acquire(clock.TID(t.ID), detect.SyncID(s))
		r.det.Acquire(clock.TID(t.ID), detect.SyncID(s)|1<<31)
	default:
		r.det.Acquire(clock.TID(t.ID), detect.SyncID(s))
	}
}

// SyncRelease implements sim.Runtime.
func (r *TSanBounded) SyncRelease(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	r.eng.ChargeAs(t, r.eng.Config().Cost.SlowSyncHook, obs.PhaseSlow)
	switch kind {
	case sim.SyncRead:
		r.det.Release(clock.TID(t.ID), detect.SyncID(s)|1<<31)
	default:
		r.det.Release(clock.TID(t.ID), detect.SyncID(s))
	}
}

// Access implements sim.Runtime.
func (r *TSanBounded) Access(t *sim.Thread, m *sim.MemAccess, addr memmodel.Addr) {
	if !m.Hooked {
		return
	}
	r.eng.ChargeAs(t, int64(float64(r.eng.Config().Cost.SlowAccessHook)*r.SlowScale), obs.PhaseSlow)
	r.det.Access(clock.TID(t.ID), addr, m.Write, m.Site)
}

// Finish folds the detector's shadow and cell-store allocation counters into
// the metrics.
func (r *TSanBounded) Finish(e *sim.Engine) {
	s := r.det.ShadowStats()
	e.Config().Obs.ShadowMemStats(s.Pages, s.PoolHits, s.PoolMisses)
	e.Config().Obs.ShadowCellStats(r.det.CellStats().Pages)
}
