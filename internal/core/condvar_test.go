package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// buildHandoff is the classic producer/consumer handoff through a condition
// variable: the producer fills a buffer unlocked, then signals under the
// mutex; the consumer waits and reads the buffer. Correctly synchronized —
// and exactly the pattern Eraser-style lockset analysis flags while
// happens-before analysis accepts.
func buildHandoff() *sim.Program {
	al := memmodel.NewAllocator(1 << 20)
	buf := al.AllocWords(32)
	mu, cv := sim.SyncID(1), sim.SyncID(2)

	producer := []sim.Instr{
		// Fill the buffer before publication (no lock held: the handoff
		// orders it).
		&sim.MemAccess{Write: true, Addr: sim.Fixed(buf), Site: 100},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(buf + 8), Site: 101},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(buf + 16), Site: 102},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(buf + 24), Site: 103},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(buf + 32), Site: 104},
		&sim.Lock{M: mu},
		&sim.CondSignal{C: cv},
		&sim.Unlock{M: mu},
		&sim.Compute{Cycles: 10},
	}
	consumer := []sim.Instr{
		&sim.Lock{M: mu},
		&sim.CondWait{C: cv, M: mu},
		&sim.Unlock{M: mu},
		&sim.MemAccess{Write: false, Addr: sim.Fixed(buf), Site: 200},
		&sim.MemAccess{Write: false, Addr: sim.Fixed(buf + 8), Site: 201},
		&sim.MemAccess{Write: false, Addr: sim.Fixed(buf + 16), Site: 202},
		&sim.MemAccess{Write: false, Addr: sim.Fixed(buf + 24), Site: 203},
		&sim.MemAccess{Write: false, Addr: sim.Fixed(buf + 32), Site: 204},
	}
	// The consumer must be waiting before the producer signals (condvars do
	// not buffer): stagger the producer behind a startup compute.
	producer = append([]sim.Instr{&sim.Compute{Cycles: 2_000}}, producer...)
	return &sim.Program{Name: "handoff", Workers: [][]sim.Instr{producer, consumer}}
}

// TestCondvarHandoffNoFalsePositives: both TSan and TxRace must accept the
// condvar-ordered buffer handoff (the Fig. 6 class of situation, with real
// pthread_cond semantics).
func TestCondvarHandoffNoFalsePositives(t *testing.T) {
	ts := core.NewTSan()
	if _, err := sim.NewEngine(quietConfig()).Run(instrument.ForTSan(buildHandoff()), ts); err != nil {
		t.Fatal(err)
	}
	if ts.Detector().RaceCount() != 0 {
		t.Fatalf("TSan flagged the handoff: %v", ts.Detector().Races())
	}

	tx := core.NewTxRace(core.Options{})
	if _, err := sim.NewEngine(quietConfig()).Run(
		instrument.ForTxRace(buildHandoff(), instrument.DefaultOptions()), tx); err != nil {
		t.Fatal(err)
	}
	if tx.Detector().RaceCount() != 0 {
		t.Fatalf("TxRace flagged the handoff: %v", tx.Detector().Races())
	}
}

// TestCondvarHandoffTripsLockset: the same program under the Eraser baseline
// produces the classic false positive (the buffer is never accessed under a
// common lock), which is the §9 argument for happens-before slow paths.
func TestCondvarHandoffTripsLockset(t *testing.T) {
	ls := core.NewLockset()
	if _, err := sim.NewEngine(quietConfig()).Run(instrument.ForTSan(buildHandoff()), ls); err != nil {
		t.Fatal(err)
	}
	if ls.Detector().ViolationCount() == 0 {
		t.Fatal("lockset did not flag the lock-free handoff — the baseline is broken")
	}
}
