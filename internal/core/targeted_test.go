package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// futureHTMOptions enables the §9 extension: conflict-address exposure plus
// the targeted slow path built on it.
func futureHTMOptions() core.Options {
	opts := core.Options{TargetedSlowPath: true}
	opts.HTM = htm.DefaultConfig()
	opts.HTM.ExposeConflictAddress = true
	return opts
}

func buildTargetedProg() (*sim.Program, sim.SiteID, sim.SiteID) {
	al := memmodel.NewAllocator(1 << 20)
	x := al.AllocLine()
	const siteA, siteB = 1000, 1001
	mk := func(site sim.SiteID, pad sim.SiteID) []sim.Instr {
		body := []sim.Instr{&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: site}}
		return append(body, padWork(al, 200, pad)...)
	}
	return &sim.Program{Name: "targeted", Workers: [][]sim.Instr{mk(siteA, 2000), mk(siteB, 5000)}}, siteA, siteB
}

// TestTargetedSlowPathStillFindsTheRace: with the future HTM the conflicting
// line is known, the episode only monitors that line, and the race is still
// pinpointed.
func TestTargetedSlowPathStillFindsTheRace(t *testing.T) {
	p, a, b := buildTargetedProg()
	rt, _ := runTxRace(t, p, futureHTMOptions(), quietConfig())
	if !hasRace(rt, a, b) {
		t.Fatalf("targeted slow path lost the conflict-line race: %v", rt.Detector().Races())
	}
}

// TestTargetedSlowPathIsCheaper: the targeted episode re-executes the same
// region but pays hooks only on the conflicting line, so the detector's
// check count collapses while plain TxRace checks the whole region.
func TestTargetedSlowPathIsCheaper(t *testing.T) {
	p, _, _ := buildTargetedProg()
	full, _ := runTxRace(t, p, core.Options{}, quietConfig())

	p, _, _ = buildTargetedProg()
	targeted, _ := runTxRace(t, p, futureHTMOptions(), quietConfig())

	if full.Detector().Checks == 0 {
		t.Fatal("baseline episode performed no checks?")
	}
	if targeted.Detector().Checks*4 > full.Detector().Checks {
		t.Fatalf("targeted checks %d not well below full %d",
			targeted.Detector().Checks, full.Detector().Checks)
	}
}

// TestTargetedSlowPathMissesOffLineRaces documents the trade-off: a second
// race on a different line inside the same conflicting regions is invisible
// to the targeted episode, while full TxRace finds it.
func TestTargetedSlowPathMissesOffLineRaces(t *testing.T) {
	build := func() (*sim.Program, [2]sim.SiteID, [2]sim.SiteID) {
		al := memmodel.NewAllocator(1 << 20)
		x := al.AllocLine()
		y := al.AllocLine() // second racy variable, different line
		mk := func(sx, sy sim.SiteID, pad sim.SiteID) []sim.Instr {
			body := []sim.Instr{
				&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: sx},
			}
			body = append(body, padWork(al, 100, pad)...)
			// y is written mid-region: when the episode fires on x's
			// conflict, the replay still *executes* y's write but the
			// targeted detector never checks it.
			body = append(body, &sim.MemAccess{Write: true, Addr: sim.Fixed(y), Site: sy})
			body = append(body, padWork(al, 100, pad+500)...)
			return body
		}
		p := &sim.Program{Name: "offline", Workers: [][]sim.Instr{
			mk(1000, 1100, 2000), mk(1001, 1101, 5000),
		}}
		return p, [2]sim.SiteID{1000, 1001}, [2]sim.SiteID{1100, 1101}
	}

	p, onLine, offLine := build()
	full, _ := runTxRace(t, p, core.Options{}, quietConfig())
	if !hasRace(full, onLine[0], onLine[1]) || !hasRace(full, offLine[0], offLine[1]) {
		t.Fatalf("full TxRace should find both races: %v", full.Detector().Races())
	}

	p, onLine, offLine = build()
	targeted, _ := runTxRace(t, p, futureHTMOptions(), quietConfig())
	if !hasRace(targeted, onLine[0], onLine[1]) {
		t.Fatal("targeted slow path must keep the conflict-line race")
	}
	if hasRace(targeted, offLine[0], offLine[1]) {
		t.Fatal("off-line race found — targeting is not filtering")
	}
}

// TestConflictLineHiddenOnCommodityHTM: without ExposeConflictAddress the
// hardware never reports an address (§2.2 challenge 1), so TargetedSlowPath
// silently degrades to the full slow path.
func TestConflictLineHiddenOnCommodityHTM(t *testing.T) {
	h := htm.New(htm.DefaultConfig())
	h.Begin(0)
	h.Access(0, 64, true)
	h.Access(1, 64, true) // dooms txn 0
	if _, ok := h.ConflictLine(0); ok {
		t.Fatal("commodity RTM exposed a conflict address")
	}

	cfg := htm.DefaultConfig()
	cfg.ExposeConflictAddress = true
	h = htm.New(cfg)
	h.Begin(0)
	h.Access(0, 64, true)
	h.Access(1, 64+8, true)
	line, ok := h.ConflictLine(0)
	if !ok || line != memmodel.LineOf(64) {
		t.Fatalf("future HTM conflict line = %v,%v", line, ok)
	}
}
