package core

import (
	"repro/internal/clock"
	"repro/internal/detect"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Lockset is the Eraser-baseline runtime: always-on lock-discipline checking
// (§9 related work). It exists for the precision comparison experiment —
// unlike the happens-before runtimes it reports false positives on
// fork/join, condition-variable, and barrier synchronization.
type Lockset struct {
	sim.NopRuntime
	det *detect.LocksetDetector
	eng *sim.Engine

	// SlowScale as in TSan, so cost comparisons are like for like.
	SlowScale float64
}

// NewLockset returns a lockset runtime.
func NewLockset() *Lockset { return &Lockset{det: detect.NewLockset(), SlowScale: 1} }

// Detector exposes the underlying lockset detector.
func (r *Lockset) Detector() *detect.LocksetDetector { return r.det }

// Init implements sim.Runtime.
func (r *Lockset) Init(e *sim.Engine) { r.eng = e }

// SyncAcquire implements sim.Runtime.
func (r *Lockset) SyncAcquire(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	r.eng.ChargeAs(t, r.eng.Config().Cost.SlowSyncHook/2, obs.PhaseSlow) // lockset updates are cheaper than VC joins
	r.det.Acquire(clock.TID(t.ID), detect.SyncID(s), kind)
}

// SyncRelease implements sim.Runtime.
func (r *Lockset) SyncRelease(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	r.eng.ChargeAs(t, r.eng.Config().Cost.SlowSyncHook/2, obs.PhaseSlow)
	r.det.Release(clock.TID(t.ID), detect.SyncID(s), kind)
}

// Access implements sim.Runtime.
func (r *Lockset) Access(t *sim.Thread, m *sim.MemAccess, addr memmodel.Addr) {
	if !m.Hooked {
		return
	}
	r.eng.ChargeAs(t, int64(float64(r.eng.Config().Cost.SlowAccessHook)*r.SlowScale), obs.PhaseSlow)
	r.det.Access(clock.TID(t.ID), addr, m.Write, m.Site)
}
