package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/instrument"
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// genRaceFree builds a random multithreaded program whose only sharing is
// (a) read-only data, (b) data protected by a single global lock, and
// (c) barrier-phase-partitioned data — by construction race-free.
func genRaceFree(rng *rand.Rand, threads int) *sim.Program {
	al := memmodel.NewAllocator(1 << 20)
	roShared := al.AllocWords(512)
	locked := al.AllocWords(64)
	mu := sim.SyncID(1)
	bar := sim.SyncID(2)
	site := sim.SiteID(100)
	nextSite := func() sim.SiteID { site++; return site }

	workers := make([][]sim.Instr, threads)
	nphases := 2 + rng.Intn(3) // uniform: every worker hits every barrier
	for w := 0; w < threads; w++ {
		private := al.AllocWords(256)
		var body []sim.Instr
		for ph := 0; ph < nphases; ph++ {
			body = append(body, &sim.Barrier{B: bar, N: threads})
			nops := 3 + rng.Intn(6)
			for i := 0; i < nops; i++ {
				switch rng.Intn(5) {
				case 0: // private churn
					body = append(body, &sim.Loop{ID: sim.LoopID(1 + rng.Intn(1000) + w*1000),
						Count: 3 + rng.Intn(10),
						Body: []sim.Instr{
							&sim.MemAccess{Write: true, Addr: sim.Random(private, 256), Site: nextSite()},
						}})
				case 1: // read-only shared
					body = append(body, &sim.MemAccess{Addr: sim.Random(roShared, 512), Site: nextSite()})
				case 2: // locked shared update
					body = append(body, sim.Instr(&sim.Lock{M: mu}),
						&sim.MemAccess{Write: true, Addr: sim.Random(locked, 64), Site: nextSite()},
						&sim.MemAccess{Addr: sim.Random(locked, 64), Site: nextSite()},
						&sim.Unlock{M: mu})
				case 3: // compute / jitter
					body = append(body, &sim.Delay{Max: int64(1 + rng.Intn(200))})
				case 4: // syscall boundary
					body = append(body, &sim.Syscall{Name: "s", Cycles: int64(20 + rng.Intn(60))})
				}
			}
		}
		workers[w] = body
	}
	return &sim.Program{Name: "randfree", Workers: workers}
}

// TestPropertyNoFalsePositives: TxRace is complete — on randomly generated
// race-free programs it must never report a race, under interrupts,
// capacity pressure, and conflict episodes alike.
func TestPropertyNoFalsePositives(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := genRaceFree(rng, 2+rng.Intn(3))
		cfg := quietConfig()
		cfg.Seed = uint64(seed) + 1
		cfg.InterruptEvery = 5_000 // exercise unknown aborts too
		rt := core.NewTxRace(core.Options{})
		ip := instrument.ForTxRace(p, instrument.DefaultOptions())
		if _, err := sim.NewEngine(cfg).Run(ip, rt); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := rt.Detector().RaceCount(); n != 0 {
			t.Fatalf("seed %d: TxRace reported %d false positives: %v",
				seed, n, rt.Detector().Races())
		}
	}
}

// TestPropertyTSanNoFalsePositives: the ground-truth detector is complete
// on the same random programs.
func TestPropertyTSanNoFalsePositives(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := genRaceFree(rng, 2+rng.Intn(3))
		cfg := quietConfig()
		cfg.Seed = uint64(seed)
		rt := core.NewTSan()
		if _, err := sim.NewEngine(cfg).Run(instrument.ForTSan(p), rt); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := rt.Detector().RaceCount(); n != 0 {
			t.Fatalf("seed %d: TSan reported %d false positives: %v",
				seed, n, rt.Detector().Races())
		}
	}
}

// TestPropertyTxRaceSubsetOfTSan: on programs with injected races, every
// race TxRace reports must also be reported by TSan on the same schedule
// seed — TxRace trades recall, never precision (§6).
func TestPropertyTxRaceSubsetOfTSan(t *testing.T) {
	for seed := int64(200); seed < 215; seed++ {
		rng := rand.New(rand.NewSource(seed))
		threads := 2 + rng.Intn(3)
		p := genRaceFree(rng, threads)
		// Inject 1-3 racy pairs at random positions of two workers.
		al := memmodel.NewAllocator(1 << 30)
		var truth []detect.PairKey
		nraces := 1 + rng.Intn(3)
		for i := 0; i < nraces; i++ {
			x := al.AllocLine()
			sa := sim.SiteID(5000 + i*2)
			sb := sa + 1
			wa, wb := rng.Intn(threads), rng.Intn(threads)
			for wb == wa {
				wb = rng.Intn(threads)
			}
			// Append in the final phase of both workers: no barrier between
			// the two accesses, so the pair is genuinely racy.
			p.Workers[wa] = append(p.Workers[wa], &sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: sa})
			p.Workers[wb] = append(p.Workers[wb], &sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: sb})
			truth = append(truth, detect.PairKey{A: sa, B: sb})
		}

		cfg := quietConfig()
		cfg.Seed = uint64(seed)
		ts := core.NewTSan()
		if _, err := sim.NewEngine(cfg).Run(instrument.ForTSan(p), ts); err != nil {
			t.Fatal(err)
		}
		tsSet := map[detect.PairKey]bool{}
		for _, k := range ts.Detector().RaceKeys() {
			tsSet[k] = true
		}
		// TSan must find exactly the injected set.
		if len(tsSet) != len(truth) {
			t.Fatalf("seed %d: TSan found %d races, injected %d", seed, len(tsSet), len(truth))
		}
		for _, k := range truth {
			if !tsSet[k] {
				t.Fatalf("seed %d: TSan missed injected race %v", seed, k)
			}
		}

		tx := core.NewTxRace(core.Options{})
		if _, err := sim.NewEngine(cfg).Run(instrument.ForTxRace(p, instrument.DefaultOptions()), tx); err != nil {
			t.Fatal(err)
		}
		for _, k := range tx.Detector().RaceKeys() {
			if !tsSet[k] {
				t.Fatalf("seed %d: TxRace invented race %v", seed, k)
			}
		}
	}
}
