package core

import (
	"math/bits"

	"repro/internal/sim"
)

// GovernorConfig tunes the adaptive fallback governor: an abort-rate
// tripwire that degrades a pathological thread (then the whole run) to the
// software slow path, with recovery probing to re-enter HTM mode once the
// fast path stops thrashing. The zero value disables the governor entirely,
// preserving the ungoverned runtime's behaviour bit for bit.
//
// The governor watches a sliding window of each thread's fast-path region
// outcomes. When the abort fraction in a full window reaches TripFraction
// the thread is degraded: its next ForcedRegions regions run on the slow
// path without attempting a transaction (cause "governor"). It then probes —
// one region on the fast path — and either recovers (probe commits) or
// backs off, multiplying the forced interval by ProbeBackoff up to
// MaxForcedRegions. If every live worker is degraded at once the run-wide
// tripwire fires and the next GlobalRegions region begins anywhere in the
// run are forced slow before per-thread probing resumes.
type GovernorConfig struct {
	// Enabled turns the governor on. All other fields are ignored (and no
	// behaviour changes) while it is false.
	Enabled bool
	// Window is the number of recent fast-path region outcomes tracked per
	// thread (≤ 64); the tripwire only fires on a full window.
	Window int
	// TripFraction is the abort fraction within a full window that degrades
	// the thread.
	TripFraction float64
	// ForcedRegions is the initial number of regions a degraded thread runs
	// on the slow path before its first recovery probe.
	ForcedRegions int
	// ProbeBackoff multiplies the forced interval after a failed probe.
	ProbeBackoff int
	// MaxForcedRegions caps the forced interval growth.
	MaxForcedRegions int
	// GlobalRegions is the run-wide forced-slow window engaged when every
	// live worker is degraded simultaneously.
	GlobalRegions int
	// UnknownRetryBudget allows the governor to retry unknown-status aborts
	// on the fast path (with backoff) before falling back, softening
	// interrupt storms. Zero means unknown aborts fall back immediately,
	// exactly as the ungoverned §4.2 policy does.
	UnknownRetryBudget int
	// BackoffBase is the stall in cycles charged before fast-path retry
	// attempt n: BackoffBase << (n-1), capped at BackoffCap. Applies to both
	// pure-retry and unknown-budget retries while the governor is enabled.
	BackoffBase int64
	// BackoffCap bounds the exponential backoff stall.
	BackoffCap int64
}

func (g GovernorConfig) withDefaults() GovernorConfig {
	if !g.Enabled {
		return g
	}
	if g.Window <= 0 {
		g.Window = 16
	}
	if g.Window > 64 {
		g.Window = 64
	}
	if g.TripFraction <= 0 {
		g.TripFraction = 0.5
	}
	if g.ForcedRegions <= 0 {
		g.ForcedRegions = 8
	}
	if g.ProbeBackoff <= 1 {
		g.ProbeBackoff = 2
	}
	if g.MaxForcedRegions <= 0 {
		g.MaxForcedRegions = 128
	}
	if g.GlobalRegions <= 0 {
		g.GlobalRegions = 32
	}
	if g.BackoffBase <= 0 {
		g.BackoffBase = 32
	}
	if g.BackoffCap <= 0 {
		g.BackoffCap = 1024
	}
	return g
}

// backoffCost is the stall charged before retry attempt n (1-based).
func (g GovernorConfig) backoffCost(attempt int) int64 {
	if attempt < 1 {
		attempt = 1
	}
	c := g.BackoffBase
	for i := 1; i < attempt; i++ {
		c <<= 1
		if c >= g.BackoffCap {
			return g.BackoffCap
		}
	}
	if c > g.BackoffCap {
		c = g.BackoffCap
	}
	return c
}

// governorForces decides, at region begin, whether the governor forces this
// region onto the slow path. It also consumes the run-wide degradation
// window and flags recovery probes.
func (r *TxRace) governorForces(t *sim.Thread, c *threadCtx) bool {
	g := &r.opts.Governor
	if !g.Enabled {
		return false
	}
	if r.govGlobalLeft > 0 {
		r.govGlobalLeft--
		if r.govGlobalLeft == 0 {
			if o := r.obs; o != nil {
				o.GovernorGlobalEnd(t.ID, t.Clock)
			}
		}
		return true
	}
	if !c.govDegraded {
		return false
	}
	if c.govForcedLeft > 0 {
		c.govForcedLeft--
		return true
	}
	// Forced interval exhausted: this region is a recovery probe on the
	// fast path. Its commit recovers the thread; its abort backs off.
	c.govProbing = true
	r.stats.GovernorProbes++
	if o := r.obs; o != nil {
		o.GovernorProbe(t.ID, t.Clock, c.govProbeInterval)
	}
	return false
}

// governorCommit records a committed fast-path region (including loop-cut
// commits) — a successful probe recovers the thread into HTM mode.
func (r *TxRace) governorCommit(t *sim.Thread, c *threadCtx) {
	g := &r.opts.Governor
	if !g.Enabled {
		return
	}
	if c.govProbing {
		c.govProbing = false
		c.govDegraded = false
		c.govForcedLeft = 0
		c.govProbeInterval = 0
		c.govWindow, c.govCount = 0, 0
		r.govDegraded--
		r.stats.GovernorRecoveries++
		if o := r.obs; o != nil {
			o.GovernorRecover(t.ID, t.Clock)
		}
		return
	}
	r.governorRecord(t, c, false)
}

// governorAbort records a fast-path region that fell back to the slow path —
// a failed probe multiplies the forced interval instead.
func (r *TxRace) governorAbort(t *sim.Thread, c *threadCtx) {
	g := &r.opts.Governor
	if !g.Enabled {
		return
	}
	if c.govProbing {
		c.govProbing = false
		c.govProbeInterval *= g.ProbeBackoff
		if c.govProbeInterval > g.MaxForcedRegions {
			c.govProbeInterval = g.MaxForcedRegions
		}
		c.govForcedLeft = c.govProbeInterval
		return
	}
	r.governorRecord(t, c, true)
}

// governorRecord shifts one outcome into the thread's sliding window and
// trips the degradation when a full window's abort fraction crosses the
// threshold.
func (r *TxRace) governorRecord(t *sim.Thread, c *threadCtx, abort bool) {
	g := &r.opts.Governor
	if c.govDegraded {
		return
	}
	var bit uint64
	if abort {
		bit = 1
	}
	mask := uint64(1)<<uint(g.Window) - 1
	c.govWindow = (c.govWindow<<1 | bit) & mask
	if c.govCount < g.Window {
		c.govCount++
		return
	}
	if float64(bits.OnesCount64(c.govWindow)) < g.TripFraction*float64(g.Window) {
		return
	}
	c.govDegraded = true
	c.govProbeInterval = g.ForcedRegions
	c.govForcedLeft = g.ForcedRegions
	c.govWindow, c.govCount = 0, 0
	r.govDegraded++
	r.stats.GovernorTrips++
	if o := r.obs; o != nil {
		o.GovernorDegrade(t.ID, t.Clock)
	}
	// Run-wide tripwire: every live worker degraded at once means the fast
	// path is pathological machine-wide, not just for one thread.
	if live := r.eng.LiveWorkers(); live >= 2 && r.govDegraded >= live {
		r.govGlobalLeft = g.GlobalRegions
		r.stats.GovernorGlobal++
		if o := r.obs; o != nil {
			o.GovernorGlobal(t.ID, t.Clock, g.GlobalRegions)
		}
	}
}
