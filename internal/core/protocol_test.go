package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/htm"
	"repro/internal/instrument"
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// runTxRace instruments and executes p under a fresh TxRace runtime.
func runTxRace(t *testing.T, p *sim.Program, opts core.Options, cfg sim.Config) (*core.TxRace, *sim.Result) {
	t.Helper()
	rt := core.NewTxRace(opts)
	ip := instrument.ForTxRace(p, instrument.DefaultOptions())
	res, err := sim.NewEngine(cfg).Run(ip, rt)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rt, res
}

func hasRace(rt *core.TxRace, a, b sim.SiteID) bool {
	if a > b {
		a, b = b, a
	}
	for _, k := range rt.Detector().RaceKeys() {
		if k == (detect.PairKey{A: a, B: b}) {
			return true
		}
	}
	return false
}

// padWork returns n hooked accesses over a private array so the enclosing
// region clears the K threshold and takes measurable time.
func padWork(al *memmodel.Allocator, n int, baseSite sim.SiteID) []sim.Instr {
	arr := al.AllocWords(n)
	out := make([]sim.Instr, n)
	for i := 0; i < n; i++ {
		out[i] = &sim.MemAccess{
			Write: i%2 == 0,
			Addr:  sim.Fixed(arr + memmodel.Addr(i*memmodel.WordSize)),
			Site:  baseSite + sim.SiteID(i),
		}
	}
	return out
}

// TestFig3ConflictProtocol reproduces Figure 3: three threads, a genuine
// conflict between two of them, and the TxFail write artificially aborting
// the third (in-flight, non-conflicting) transaction, after which the slow
// path pinpoints the racy pair.
func TestFig3ConflictProtocol(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	x := al.AllocLine()
	const siteA, siteB = 1000, 1001

	worker := func(accessX sim.Instr, padSite sim.SiteID) []sim.Instr {
		body := []sim.Instr{accessX}
		body = append(body, padWork(al, 30, padSite)...)
		return body
	}
	p := &sim.Program{
		Name: "fig3",
		Workers: [][]sim.Instr{
			// T1: no conflicting access, just a long transaction.
			padWork(al, 40, 4000),
			// T2 and T3: the racy pair, at region start so they overlap.
			worker(&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: siteA}, 2000),
			worker(&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: siteB}, 3000),
		},
	}
	rt, _ := runTxRace(t, p, core.Options{}, quietConfig())
	st := rt.Stats()
	if st.ConflictAborts < 2 {
		t.Fatalf("want the loser plus TxFail-induced aborts, got %+v", st)
	}
	if st.ArtificialAborts < 1 {
		t.Fatalf("TxFail must artificially abort in-flight transactions: %+v", st)
	}
	if !hasRace(rt, siteA, siteB) {
		t.Fatalf("slow path failed to pinpoint the racy pair: %v", rt.Detector().Races())
	}
}

// TestFig4OverlapSensitivity reproduces Figure 4: the same race is caught
// when both accesses sit in long, overlapping transactions, and missed when
// the two accesses run far apart in time.
func TestFig4OverlapSensitivity(t *testing.T) {
	build := func(separated bool) (*sim.Program, sim.SiteID, sim.SiteID) {
		al := memmodel.NewAllocator(1 << 20)
		x := al.AllocLine()
		const siteA, siteB = 1000, 1001
		w1 := []sim.Instr{&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: siteA}}
		w1 = append(w1, padWork(al, 30, 2000)...)
		var w2 []sim.Instr
		if separated {
			// A long region, a syscall boundary, then the racy write in a
			// later region: no temporal overlap with w1's write.
			w2 = append(w2, padWork(al, 30, 5000)...)
			w2 = append(w2, &sim.Compute{Cycles: 5000}, &sim.Syscall{Name: "gap", Cycles: 50})
		}
		w2 = append(w2, &sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: siteB})
		w2 = append(w2, padWork(al, 30, 3000)...)
		return &sim.Program{Name: "fig4", Workers: [][]sim.Instr{w1, w2}}, siteA, siteB
	}

	p, a, b := build(false)
	rt, _ := runTxRace(t, p, core.Options{}, quietConfig())
	if !hasRace(rt, a, b) {
		t.Fatal("overlapping transactions must catch the race (Fig. 4a)")
	}

	p, a, b = build(true)
	rt, _ = runTxRace(t, p, core.Options{}, quietConfig())
	if hasRace(rt, a, b) {
		t.Fatal("non-overlapping transactions catching the race means the overlap model is broken (Fig. 4b)")
	}
	if rt.Stats().SlowRegions[core.CauseConflict] != 0 {
		t.Fatalf("no conflict episodes expected: %+v", rt.Stats())
	}
}

// TestFig5MixedPathDetection reproduces Figure 5: a thread pushed to the
// slow path by a capacity abort makes a conflicting access to a variable a
// fast-path transaction has already accessed; strong isolation aborts the
// fast transaction and the race is identified.
func TestFig5MixedPathDetection(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	x := al.AllocLine()
	big := al.AllocWords(1024 * 8)
	const siteFast, siteSlow = 1000, 1001

	fast := []sim.Instr{
		&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: siteFast},
		// Long compute keeps the transaction in flight while the slow
		// thread (re-)executes its overflowing region under the detector.
		&sim.Compute{Cycles: 30_000},
	}
	fast = append(fast, padWork(al, 100, 2000)...)

	// The slow worker overflows the write set first (capacity abort →
	// slow path), then touches x while the fast transaction is open.
	b := &sim.Program{Name: "fig5"}
	slow := []sim.Instr{
		&sim.Loop{ID: 1, Count: 600, Body: []sim.Instr{
			&sim.MemAccess{Write: true, Addr: sim.AddrExpr{Base: big, Mode: sim.AddrLoop, Stride: 8}, Site: 1},
		}},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: siteSlow},
	}
	b.Workers = [][]sim.Instr{fast, slow}

	opts := core.Options{}
	opts.HTM = htm.DefaultConfig()
	opts.HTM.WriteSets, opts.HTM.WriteWays = 16, 8 // 128-line write set: overflow at 600 lines
	rt, _ := runTxRace(t, b, opts, quietConfig())
	st := rt.Stats()
	if st.CapacityAborts == 0 {
		t.Fatalf("expected a capacity abort to create the slow thread: %+v", st)
	}
	if !hasRace(rt, siteFast, siteSlow) {
		t.Fatalf("fast/slow mixed detection failed: %+v races %v", st, rt.Detector().Races())
	}
}

// TestFig5OneDirectionMiss: the converse order — the slow thread writes x
// *before* the fast transaction reads it — is invisible to strong isolation
// (§6 reason 3), so the race is missed.
func TestFig5OneDirectionMiss(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	x := al.AllocLine()
	big := al.AllocWords(1024 * 8)
	const siteFast, siteSlow = 1000, 1001

	// The slow worker's racy write happens early in its slow region; the
	// fast worker reads x much later, in a transaction the slow thread
	// never touches again.
	slow := []sim.Instr{
		&sim.Loop{ID: 1, Count: 600, Body: []sim.Instr{
			&sim.MemAccess{Write: true, Addr: sim.AddrExpr{Base: big, Mode: sim.AddrLoop, Stride: 8}, Site: 1},
		}},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: siteSlow},
		&sim.Compute{Cycles: 5},
	}
	fast := []sim.Instr{
		&sim.Compute{Cycles: 30_000}, // start well after the slow write
		&sim.Syscall{Name: "cut", Cycles: 30},
		&sim.MemAccess{Write: false, Addr: sim.Fixed(x), Site: siteFast},
	}
	fast = append(fast, padWork(al, 30, 2000)...)

	p := &sim.Program{Name: "fig5b", Workers: [][]sim.Instr{fast, slow}}
	opts := core.Options{}
	opts.HTM = htm.DefaultConfig()
	opts.HTM.WriteSets, opts.HTM.WriteWays = 16, 8
	rt, _ := runTxRace(t, p, opts, quietConfig())
	if hasRace(rt, siteFast, siteSlow) {
		t.Fatal("slow-before-fast order must be missed (one-direction limitation)")
	}
}

// TestFig6NoStaleFalsePositive reproduces Figure 6: a happens-before edge
// established during a fast-path interval must order accesses analyzed in
// later slow-path intervals, or the slow path would report a false race.
func TestFig6NoStaleFalsePositive(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	x := al.AllocLine()
	big := al.AllocWords(1024 * 8)
	const siteW, siteR = 1000, 1001
	sem := sim.SyncID(40)

	overflow := func(id sim.LoopID) sim.Instr {
		return &sim.Loop{ID: id, Count: 600, Body: []sim.Instr{
			&sim.MemAccess{Write: true, Addr: sim.AddrExpr{Base: big, Mode: sim.AddrLoop, Stride: 8}, Site: 9},
		}}
	}
	// T1: slow episode (capacity) containing the write; then signal.
	w1 := []sim.Instr{
		overflow(1),
		&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: siteW},
		&sim.Signal{C: sem},
	}
	// T2: waits (HB edge crosses the fast path), then a slow episode
	// (its own capacity abort) containing the read.
	big2 := al.AllocWords(1024 * 8)
	w2 := []sim.Instr{
		&sim.Wait{C: sem},
		&sim.Loop{ID: 2, Count: 600, Body: []sim.Instr{
			&sim.MemAccess{Write: true, Addr: sim.AddrExpr{Base: big2, Mode: sim.AddrLoop, Stride: 8}, Site: 10},
		}},
		&sim.MemAccess{Write: false, Addr: sim.Fixed(x), Site: siteR},
	}
	p := &sim.Program{Name: "fig6", Workers: [][]sim.Instr{w1, w2}}
	opts := core.Options{}
	opts.HTM = htm.DefaultConfig()
	opts.HTM.WriteSets, opts.HTM.WriteWays = 16, 8
	rt, _ := runTxRace(t, p, opts, quietConfig())
	if rt.Stats().CapacityAborts == 0 {
		t.Fatalf("test needs slow episodes on both sides: %+v", rt.Stats())
	}
	if hasRace(rt, siteW, siteR) {
		t.Fatal("false positive: signal→wait edge from the fast path was lost (Fig. 6)")
	}
}

// TestFalseSharingFiltered: two threads write different words of one cache
// line. The HTM flags a conflict; the word-granular slow path must reject it.
func TestFalseSharingFiltered(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	line := al.AllocLine()
	const siteA, siteB = 1000, 1001
	mk := func(off memmodel.Addr, site sim.SiteID, pad sim.SiteID) []sim.Instr {
		body := []sim.Instr{&sim.MemAccess{Write: true, Addr: sim.Fixed(line + off), Site: site}}
		return append(body, padWork(al, 30, pad)...)
	}
	p := &sim.Program{Name: "falseshare", Workers: [][]sim.Instr{
		mk(0, siteA, 2000), mk(8, siteB, 3000),
	}}
	rt, _ := runTxRace(t, p, core.Options{}, quietConfig())
	st := rt.Stats()
	if st.ConflictAborts == 0 {
		t.Fatalf("false sharing must conflict in the HTM: %+v", st)
	}
	if rt.Detector().RaceCount() != 0 {
		t.Fatalf("false sharing reported as a race: %v", rt.Detector().Races())
	}
}

// TestWordGranularityAblation: with the idealized word-granular HTM the same
// program produces no conflicts at all.
func TestWordGranularityAblation(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	line := al.AllocLine()
	mk := func(off memmodel.Addr, site sim.SiteID, pad sim.SiteID) []sim.Instr {
		body := []sim.Instr{&sim.MemAccess{Write: true, Addr: sim.Fixed(line + off), Site: site}}
		return append(body, padWork(al, 30, pad)...)
	}
	p := &sim.Program{Name: "wordgran", Workers: [][]sim.Instr{
		mk(0, 1000, 2000), mk(8, 1001, 3000),
	}}
	opts := core.Options{}
	opts.HTM = htm.DefaultConfig()
	opts.HTM.GranularityShift = 3 // word granularity
	rt, _ := runTxRace(t, p, opts, quietConfig())
	if rt.Stats().ConflictAborts != 0 {
		t.Fatalf("word-granular HTM still conflicts on false sharing: %+v", rt.Stats())
	}
}

// TestTxFailAblation: with the global-abort protocol disabled, the
// conflicting partner commits untouched and the race is missed.
func TestTxFailAblation(t *testing.T) {
	build := func() *sim.Program {
		al := memmodel.NewAllocator(1 << 20)
		x := al.AllocLine()
		mk := func(site sim.SiteID, pad sim.SiteID) []sim.Instr {
			body := []sim.Instr{&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: site}}
			return append(body, padWork(al, 30, pad)...)
		}
		return &sim.Program{Name: "ablation", Workers: [][]sim.Instr{
			mk(1000, 2000), mk(1001, 3000),
		}}
	}
	rt, _ := runTxRace(t, build(), core.Options{DisableTxFail: true}, quietConfig())
	if hasRace(rt, 1000, 1001) {
		t.Fatal("without TxFail the partner's accesses are never re-examined")
	}
	rt, _ = runTxRace(t, build(), core.Options{}, quietConfig())
	if !hasRace(rt, 1000, 1001) {
		t.Fatal("with TxFail the race must be found")
	}
}

// TestSingleThreadedElision: a single worker is never monitored.
func TestSingleThreadedElision(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	p := &sim.Program{Name: "single", Workers: [][]sim.Instr{padWork(al, 50, 1000)}}
	rt, _ := runTxRace(t, p, core.Options{}, quietConfig())
	st := rt.Stats()
	if st.CommittedTxns != 0 || len(st.SlowRegions) != 0 {
		t.Fatalf("single-threaded program was monitored: %+v", st)
	}
}

// TestSmallRegionsGoSlow: sub-K regions run under the software detector and
// can catch races with zero HTM involvement.
func TestSmallRegionsGoSlow(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	x := al.AllocLine()
	mk := func(site sim.SiteID) []sim.Instr {
		return []sim.Instr{
			&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: site},
			&sim.Compute{Cycles: 5},
			&sim.Syscall{Name: "s", Cycles: 30},
			&sim.Compute{Cycles: 50},
		}
	}
	p := &sim.Program{Name: "small", Workers: [][]sim.Instr{mk(1000), mk(1001)}}
	rt, _ := runTxRace(t, p, core.Options{}, quietConfig())
	st := rt.Stats()
	if st.SlowRegions[core.CauseSmall] == 0 {
		t.Fatalf("small regions not routed to slow path: %+v", st)
	}
	if st.CommittedTxns != 0 {
		t.Fatalf("small regions opened transactions: %+v", st)
	}
	if !hasRace(rt, 1000, 1001) {
		t.Fatal("small-region race missed by always-on software detection")
	}
}

// TestCapacityFallbackIsLocal: a capacity abort must not abort other
// threads' transactions (no TxFail write, §4.2).
func TestCapacityFallbackIsLocal(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	big := al.AllocWords(1024 * 8)
	overflow := []sim.Instr{
		&sim.Loop{ID: 1, Count: 600, Body: []sim.Instr{
			&sim.MemAccess{Write: true, Addr: sim.AddrExpr{Base: big, Mode: sim.AddrLoop, Stride: 8}, Site: 1},
		}},
	}
	peer := padWork(al, 100, 2000)
	p := &sim.Program{Name: "capacity", Workers: [][]sim.Instr{overflow, peer}}
	opts := core.Options{}
	opts.HTM = htm.DefaultConfig()
	opts.HTM.WriteSets, opts.HTM.WriteWays = 16, 8
	rt, _ := runTxRace(t, p, opts, quietConfig())
	st := rt.Stats()
	if st.CapacityAborts == 0 {
		t.Fatalf("no capacity abort: %+v", st)
	}
	if st.ConflictAborts != 0 || st.ArtificialAborts != 0 {
		t.Fatalf("capacity abort leaked into other transactions: %+v", st)
	}
	if st.CommittedTxns == 0 {
		t.Fatalf("peer transaction should commit: %+v", st)
	}
}

// TestHiddenSyscallUnknownAbort: an unprofiled syscall inside a transaction
// aborts with unknown status and the region re-runs on the slow path (§7).
func TestHiddenSyscallUnknownAbort(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	body := padWork(al, 10, 1000)
	body = append(body, &sim.Syscall{Name: "lib", Cycles: 20, Hidden: true})
	body = append(body, padWork(al, 10, 1100)...)
	p := &sim.Program{Name: "hidden", Workers: [][]sim.Instr{body, padWork(al, 30, 2000)}}
	rt, _ := runTxRace(t, p, core.Options{}, quietConfig())
	st := rt.Stats()
	if st.UnknownAborts != 1 {
		t.Fatalf("unknown aborts = %d, want 1 (%+v)", st.UnknownAborts, st)
	}
	if st.SlowRegions[core.CauseUnknown] != 1 {
		t.Fatalf("unknown abort did not fall back to slow path: %+v", st)
	}
}

// TestRetryOnlyAbortsRetryOnFastPath: pure-retry aborts are retried within
// budget rather than falling back (§4.2 "Retry").
func TestRetryOnlyAbortsRetryOnFastPath(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	mk := func(pad sim.SiteID) []sim.Instr {
		var out []sim.Instr
		for i := 0; i < 8; i++ {
			out = append(out, padWork(al, 10, pad+sim.SiteID(i*100))...)
			out = append(out, &sim.Syscall{Name: "cut", Cycles: 30})
		}
		return out
	}
	p := &sim.Program{Name: "retry", Workers: [][]sim.Instr{mk(1000), mk(5000)}}
	cfg := quietConfig()
	cfg.InterruptEvery = 300 // hammer the transactions with interrupts
	rt, _ := runTxRace(t, p, core.Options{RetryOnlyFraction: 1.0}, cfg)
	st := rt.Stats()
	if st.Retries == 0 {
		t.Fatalf("no fast-path retries recorded: %+v", st)
	}
}

// TestDeferredPublicationMissed: initialize-then-publish races never overlap
// and must be missed by TxRace while TSan (full monitoring) finds them —
// the paper's §8.3 false-negative analysis.
func TestDeferredPublicationMissed(t *testing.T) {
	build := func() *sim.Program {
		al := memmodel.NewAllocator(1 << 20)
		x := al.AllocLine()
		pub := []sim.Instr{&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: 1000}}
		pub = append(pub, padWork(al, 20, 2000)...)
		reader := padWork(al, 20, 3000)
		reader = append(reader, &sim.Compute{Cycles: 50_000})
		reader = append(reader, &sim.Syscall{Name: "cut", Cycles: 30})
		reader = append(reader, &sim.MemAccess{Write: false, Addr: sim.Fixed(x), Site: 1001})
		reader = append(reader, padWork(al, 20, 4000)...)
		return &sim.Program{Name: "deferred", Workers: [][]sim.Instr{pub, reader}}
	}
	rt, _ := runTxRace(t, build(), core.Options{}, quietConfig())
	if hasRace(rt, 1000, 1001) {
		t.Fatal("deferred-publication race should be missed by overlap-based detection")
	}

	ts := core.NewTSan()
	if _, err := sim.NewEngine(quietConfig()).Run(instrument.ForTSan(build()), ts); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range ts.Detector().RaceKeys() {
		if k == (detect.PairKey{A: 1000, B: 1001}) {
			found = true
		}
	}
	if !found {
		t.Fatal("TSan must find the deferred-publication race")
	}
}

// TestLoopCutReducesCapacityAborts: DynLoopcut must cut the overflowing loop
// and commit more transactions with fewer capacity aborts than NoCut.
func TestLoopCutReducesCapacityAborts(t *testing.T) {
	build := func() *sim.Program {
		al := memmodel.NewAllocator(1 << 20)
		big1 := al.AllocWords(1024 * 8)
		big2 := al.AllocWords(1024 * 8)
		mk := func(arr memmodel.Addr, id sim.LoopID) []sim.Instr {
			return []sim.Instr{
				&sim.Loop{ID: id, Count: 5, Body: []sim.Instr{
					&sim.Loop{ID: id + 1, Count: 800, Body: []sim.Instr{
						&sim.MemAccess{Write: true, Addr: sim.AddrExpr{Base: arr, Mode: sim.AddrLoop, Stride: 8}, Site: 1},
					}},
					&sim.Syscall{Name: "s", Cycles: 30},
				}},
			}
		}
		return &sim.Program{Name: "loopcut", Workers: [][]sim.Instr{mk(big1, 1), mk(big2, 10)}}
	}
	noOpt := core.Options{LoopCut: core.NoCut}
	noOpt.HTM = htm.DefaultConfig()
	noOpt.HTM.WriteSets, noOpt.HTM.WriteWays = 32, 8 // 256-line write set
	rtNo, _ := runTxRace(t, build(), noOpt, quietConfig())

	dyn := noOpt
	dyn.LoopCut = core.DynCut
	rtDyn, _ := runTxRace(t, build(), dyn, quietConfig())

	if rtNo.Stats().CapacityAborts == 0 {
		t.Fatalf("NoCut must suffer capacity aborts: %+v", rtNo.Stats())
	}
	if rtDyn.Stats().CapacityAborts >= rtNo.Stats().CapacityAborts {
		t.Fatalf("DynCut did not reduce capacity aborts: %d vs %d",
			rtDyn.Stats().CapacityAborts, rtNo.Stats().CapacityAborts)
	}
	if rtDyn.Stats().LoopCuts == 0 {
		t.Fatalf("DynCut performed no cuts: %+v", rtDyn.Stats())
	}
}

// TestProfLoopcutAvoidsFirstAbort: with accurate profiled thresholds the
// very first execution avoids capacity aborts entirely (§4.3).
func TestProfLoopcutAvoidsFirstAbort(t *testing.T) {
	build := func() *sim.Program {
		al := memmodel.NewAllocator(1 << 20)
		big := al.AllocWords(1024 * 8)
		return &sim.Program{Name: "prof", Workers: [][]sim.Instr{
			{
				&sim.Loop{ID: 1, Count: 3, Body: []sim.Instr{
					&sim.Loop{ID: 2, Count: 800, Body: []sim.Instr{
						&sim.MemAccess{Write: true, Addr: sim.AddrExpr{Base: big, Mode: sim.AddrLoop, Stride: 8}, Site: 1},
					}},
					&sim.Syscall{Name: "s", Cycles: 30},
				}},
			},
			padWork(memmodel.NewAllocator(1<<24), 50, 2000),
		}}
	}
	htmCfg := htm.DefaultConfig()
	htmCfg.WriteSets, htmCfg.WriteWays = 32, 8

	prof, err := instrument.Profile(build(), quietConfig(), core.Options{HTM: htmCfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) == 0 {
		t.Fatal("profile learned nothing")
	}
	opts := core.Options{LoopCut: core.ProfCut, Thresholds: prof, HTM: htmCfg}
	rt, _ := runTxRace(t, build(), opts, quietConfig())
	if got := rt.Stats().CapacityAborts; got != 0 {
		t.Fatalf("ProfLoopcut with exact profile still aborted %d times", got)
	}
	if rt.Stats().LoopCuts == 0 {
		t.Fatal("ProfLoopcut never cut")
	}
}

// TestLockedRegionsNeverConflict: critical sections under one lock cannot
// overlap, so the HTM never sees their accesses collide (Fig. 1's regions
// ① vs ④).
func TestLockedRegionsNeverConflict(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	shared := al.AllocWords(8)
	mk := func(base sim.SiteID) []sim.Instr {
		var out []sim.Instr
		for i := 0; i < 5; i++ {
			out = append(out, &sim.Lock{M: 1})
			for j := 0; j < 6; j++ {
				out = append(out, &sim.MemAccess{Write: true,
					Addr: sim.Fixed(shared + memmodel.Addr(j*8)), Site: base + sim.SiteID(j)})
			}
			out = append(out, &sim.Unlock{M: 1})
			out = append(out, &sim.Compute{Cycles: 10})
		}
		return out
	}
	p := &sim.Program{Name: "locked", Workers: [][]sim.Instr{mk(1000), mk(2000)}}
	rt, _ := runTxRace(t, p, core.Options{}, quietConfig())
	st := rt.Stats()
	if st.ConflictAborts != 0 {
		t.Fatalf("lock-serialized critical sections conflicted: %+v", st)
	}
	if rt.Detector().RaceCount() != 0 {
		t.Fatalf("lock-protected accesses reported racy: %v", rt.Detector().Races())
	}
}

// TestStatsCycleAttributionConsistent: the Fig. 7 cycle buckets are only
// populated for causes that occurred.
func TestStatsCycleAttributionConsistent(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	x := al.AllocLine()
	mk := func(site sim.SiteID, pad sim.SiteID) []sim.Instr {
		body := []sim.Instr{&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: site}}
		return append(body, padWork(al, 30, pad)...)
	}
	p := &sim.Program{Name: "attr", Workers: [][]sim.Instr{mk(1000, 2000), mk(1001, 3000)}}
	rt, _ := runTxRace(t, p, core.Options{}, quietConfig())
	st := rt.Stats()
	if st.CyclesConflict <= 0 {
		t.Fatalf("conflict episode left no attributed cycles: %+v", st)
	}
	if st.CyclesCapacity != 0 || st.CyclesUnknown != 0 {
		t.Fatalf("cycles attributed to absent causes: %+v", st)
	}
	if st.CyclesFastPath <= 0 {
		t.Fatalf("no fast-path cycles recorded: %+v", st)
	}
}
