package core

import (
	"repro/internal/clock"
	"repro/internal/detect"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Baseline is the uninstrumented runtime: no hooks, no detector, no HTM.
// Running the original program under it yields the "original time" column of
// Table 1 that all overheads are normalized against.
type Baseline struct{ sim.NopRuntime }

// TSan is the always-on happens-before runtime, standing in for Google's
// ThreadSanitizer: every hooked access pays the shadow-check cost and goes
// to the detector; every sync operation pays the vector-clock cost. Run it
// on a program instrumented by instrument.ForTSan.
type TSan struct {
	sim.NopRuntime
	det *detect.Detector
	eng *sim.Engine

	// SlowScale multiplies the per-access hook cost; see Options.SlowScale.
	SlowScale float64
}

// NewTSan returns a TSan runtime in the default sparse-clock configuration.
func NewTSan() *TSan { return NewTSanWith(detect.Config{}) }

// NewTSanWith returns a TSan runtime over a specific detector clock
// configuration (detect.Config.RefDense selects the retained dense
// reference path for differential runs).
func NewTSanWith(cfg detect.Config) *TSan {
	return &TSan{det: detect.NewWith(cfg), SlowScale: 1}
}

// Detector exposes the underlying detector.
func (r *TSan) Detector() *detect.Detector { return r.det }

// Init implements sim.Runtime.
func (r *TSan) Init(e *sim.Engine) { r.eng = e }

// Fork implements sim.Runtime.
func (r *TSan) Fork(p, c *sim.Thread) { r.det.Fork(clock.TID(p.ID), clock.TID(c.ID)) }

// Joined implements sim.Runtime.
func (r *TSan) Joined(p, c *sim.Thread) { r.det.Join(clock.TID(p.ID), clock.TID(c.ID)) }

// JoinedAll implements sim.BatchJoiner: the engine's join-all point becomes
// one tree-structured N-way clock merge instead of N sequential joins.
func (r *TSan) JoinedAll(p *sim.Thread, cs []*sim.Thread) {
	r.det.JoinAllChildren(clock.TID(p.ID), childTIDs(cs))
}

// childTIDs converts a thread batch to detector TIDs.
func childTIDs(cs []*sim.Thread) []clock.TID {
	tids := make([]clock.TID, len(cs))
	for i, c := range cs {
		tids[i] = clock.TID(c.ID)
	}
	return tids
}

// SyncAcquire implements sim.Runtime.
func (r *TSan) SyncAcquire(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	r.eng.ChargeAs(t, r.eng.Config().Cost.SlowSyncHook, obs.PhaseSlow)
	detect.AcquireKind(r.det, clock.TID(t.ID), detect.SyncID(s), kind)
}

// SyncRelease implements sim.Runtime.
func (r *TSan) SyncRelease(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	r.eng.ChargeAs(t, r.eng.Config().Cost.SlowSyncHook, obs.PhaseSlow)
	detect.ReleaseKind(r.det, clock.TID(t.ID), detect.SyncID(s), kind)
}

// Atomic implements sim.Runtime.
func (r *TSan) Atomic(t *sim.Thread, m *sim.AtomicRMW, addr memmodel.Addr) {
	r.eng.ChargeAs(t, r.eng.Config().Cost.SlowSyncHook, obs.PhaseSlow)
	detect.AtomicOp(r.det, clock.TID(t.ID), addr, m.Site)
}

// Access implements sim.Runtime.
func (r *TSan) Access(t *sim.Thread, m *sim.MemAccess, addr memmodel.Addr) {
	if !m.Hooked {
		return
	}
	r.eng.ChargeAs(t, int64(float64(r.eng.Config().Cost.SlowAccessHook)*r.SlowScale), obs.PhaseSlow)
	r.det.Access(clock.TID(t.ID), addr, m.Write, m.Site)
}

// Sampling is TSan with per-access sampling at a fixed rate — the
// cost-effectiveness baseline of Figures 11–13.
type Sampling struct {
	sim.NopRuntime
	s   *detect.Sampler
	eng *sim.Engine

	// SlowScale as in TSan.
	SlowScale float64
}

// NewSampling returns a sampling runtime at the given rate.
func NewSampling(rate float64, seed int64) *Sampling {
	return NewSamplingWith(rate, seed, detect.Config{})
}

// NewSamplingWith is NewSampling over a specific detector clock
// configuration.
func NewSamplingWith(rate float64, seed int64, cfg detect.Config) *Sampling {
	return &Sampling{s: detect.NewSamplerWith(rate, seed, cfg), SlowScale: 1}
}

// Sampler exposes the underlying sampler.
func (r *Sampling) Sampler() *detect.Sampler { return r.s }

// Detector exposes the underlying detector.
func (r *Sampling) Detector() *detect.Detector { return r.s.D }

// Init implements sim.Runtime.
func (r *Sampling) Init(e *sim.Engine) { r.eng = e }

// Fork implements sim.Runtime.
func (r *Sampling) Fork(p, c *sim.Thread) { r.s.Fork(clock.TID(p.ID), clock.TID(c.ID)) }

// Joined implements sim.Runtime.
func (r *Sampling) Joined(p, c *sim.Thread) { r.s.Join(clock.TID(p.ID), clock.TID(c.ID)) }

// JoinedAll implements sim.BatchJoiner.
func (r *Sampling) JoinedAll(p *sim.Thread, cs []*sim.Thread) {
	r.s.D.JoinAllChildren(clock.TID(p.ID), childTIDs(cs))
}

// SyncAcquire implements sim.Runtime.
func (r *Sampling) SyncAcquire(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	r.eng.ChargeAs(t, r.eng.Config().Cost.SlowSyncHook, obs.PhaseSlow)
	detect.AcquireKind(r.s.D, clock.TID(t.ID), detect.SyncID(s), kind)
}

// SyncRelease implements sim.Runtime.
func (r *Sampling) SyncRelease(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	r.eng.ChargeAs(t, r.eng.Config().Cost.SlowSyncHook, obs.PhaseSlow)
	detect.ReleaseKind(r.s.D, clock.TID(t.ID), detect.SyncID(s), kind)
}

// Atomic implements sim.Runtime. Atomics are synchronization, so they are
// never sampled away.
func (r *Sampling) Atomic(t *sim.Thread, m *sim.AtomicRMW, addr memmodel.Addr) {
	r.eng.ChargeAs(t, r.eng.Config().Cost.SlowSyncHook, obs.PhaseSlow)
	detect.AtomicOp(r.s.D, clock.TID(t.ID), addr, m.Site)
}

// Access implements sim.Runtime.
func (r *Sampling) Access(t *sim.Thread, m *sim.MemAccess, addr memmodel.Addr) {
	if !m.Hooked {
		return
	}
	cost := r.eng.Config().Cost
	if r.s.Access(clock.TID(t.ID), addr, m.Write, m.Site) {
		r.eng.ChargeAs(t, int64(float64(cost.SlowAccessHook)*r.SlowScale), obs.PhaseSlow)
	} else {
		r.eng.ChargeAs(t, cost.SampleGate, obs.PhaseSample)
	}
}

// Finish folds the detector's shadow allocation and clock-representation
// counters into the metrics.
func (r *TSan) Finish(e *sim.Engine) {
	s := r.det.ShadowStats()
	e.Config().Obs.ShadowMemStats(s.Pages, s.PoolHits, s.PoolMisses)
	cs := r.det.ClockStats()
	e.Config().Obs.ClockSparseStats(cs.Promotions, cs.Collapses, cs.Fallbacks)
}

// Finish folds the detector's shadow allocation and clock-representation
// counters into the metrics.
func (r *Sampling) Finish(e *sim.Engine) {
	s := r.s.D.ShadowStats()
	e.Config().Obs.ShadowMemStats(s.Pages, s.PoolHits, s.PoolMisses)
	cs := r.s.D.ClockStats()
	e.Config().Obs.ClockSparseStats(cs.Promotions, cs.Collapses, cs.Fallbacks)
}
