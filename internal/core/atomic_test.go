package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// TestAtomicCounterNoFalsePositive: a lock-free counter implemented with
// atomic RMWs is race-free end to end under both detectors; the same
// counter bumped with plain stores is a race.
func TestAtomicCounterNoFalsePositive(t *testing.T) {
	build := func(atomic bool) *sim.Program {
		al := memmodel.NewAllocator(1 << 20)
		ctr := al.AllocLine()
		mk := func(site sim.SiteID, pad sim.SiteID) []sim.Instr {
			var bump sim.Instr
			if atomic {
				bump = &sim.AtomicRMW{Addr: sim.Fixed(ctr), Site: site}
			} else {
				bump = &sim.MemAccess{Write: true, Addr: sim.Fixed(ctr), Site: site}
			}
			body := []sim.Instr{bump}
			return append(body, padWork(al, 30, pad)...)
		}
		return &sim.Program{Name: "counter", Workers: [][]sim.Instr{mk(1000, 2000), mk(1001, 5000)}}
	}

	tx := core.NewTxRace(core.Options{})
	if _, err := sim.NewEngine(quietConfig()).Run(
		instrument.ForTxRace(build(true), instrument.DefaultOptions()), tx); err != nil {
		t.Fatal(err)
	}
	if tx.Detector().RaceCount() != 0 {
		t.Fatalf("atomic counter flagged: %v", tx.Detector().Races())
	}

	tx = core.NewTxRace(core.Options{})
	if _, err := sim.NewEngine(quietConfig()).Run(
		instrument.ForTxRace(build(false), instrument.DefaultOptions()), tx); err != nil {
		t.Fatal(err)
	}
	if !hasRace(tx, 1000, 1001) {
		t.Fatal("plain-store counter race missed")
	}
}

// TestAtomicIsRegionBoundary: instrumentation must cut transactions around
// atomics like around any synchronization operation.
func TestAtomicIsRegionBoundary(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	ctr := al.AllocLine()
	body := padWork(al, 10, 100)
	body = append(body, &sim.AtomicRMW{Addr: sim.Fixed(ctr), Site: 50})
	body = append(body, padWork(al, 10, 200)...)
	p := &sim.Program{Name: "cutcheck", Workers: [][]sim.Instr{body, padWork(al, 5, 300)}}
	ip := instrument.ForTxRace(p, instrument.DefaultOptions())
	begins := 0
	sim.ForEachInstr(ip.Workers[0], func(in sim.Instr) {
		if _, ok := in.(*sim.TxBegin); ok {
			begins++
		}
	})
	if begins != 2 {
		t.Fatalf("atomic did not split the region: %d begins", begins)
	}
}
