package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/instrument"
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// TestNoHardwareContextFallback reproduces §6 reason 4: more threads than
// hardware transaction contexts means the surplus regions run under the
// software detector (CauseNoHW) — races there are still caught.
func TestNoHardwareContextFallback(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	x := al.AllocLine()
	workers := make([][]sim.Instr, 6)
	for w := range workers {
		site := sim.SiteID(1000 + w)
		body := []sim.Instr{&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: site}}
		workers[w] = append(body, padWork(al, 40, sim.SiteID(2000+w*100))...)
	}
	p := &sim.Program{Name: "nohw", Workers: workers}
	opts := core.Options{}
	opts.HTM = htm.DefaultConfig()
	opts.HTM.MaxConcurrent = 2 // only two hardware contexts
	rt, _ := runTxRace(t, p, opts, quietConfig())
	st := rt.Stats()
	if st.SlowRegions[core.CauseNoHW] == 0 {
		t.Fatalf("no CauseNoHW fallbacks with 6 threads on 2 contexts: %+v", st)
	}
	if rt.Detector().RaceCount() == 0 {
		t.Fatal("the shared-write race must still be caught (software-covered regions)")
	}
}

func TestEnumStrings(t *testing.T) {
	for _, c := range []struct {
		got, want string
	}{
		{core.ModeNone.String(), "none"},
		{core.ModeIdle.String(), "idle"},
		{core.ModeFast.String(), "fast"},
		{core.ModeSlow.String(), "slow"},
		{core.CauseConflict.String(), "conflict"},
		{core.CauseCapacity.String(), "capacity"},
		{core.CauseUnknown.String(), "unknown"},
		{core.CauseSmall.String(), "small"},
		{core.CauseNoHW.String(), "nohw"},
		{core.NoCut.String(), "TxRace-NoOpt"},
		{core.DynCut.String(), "TxRace-DynLoopcut"},
		{core.ProfCut.String(), "TxRace-ProfLoopcut"},
	} {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
	if !strings.Contains(core.Mode(99).String(), "?") {
		t.Error("unknown mode should render as ?")
	}
}

// TestThresholdsSurviveCloning: profiles are reusable across runs.
func TestThresholdsSurviveCloning(t *testing.T) {
	lt := core.LoopThresholds{1: 100, 2: 200}
	cl := lt.Clone()
	cl[1] = 5
	if lt[1] != 100 {
		t.Fatal("Clone aliases the original map")
	}
}

// TestTxRaceReusableAcrossPrograms: one runtime instance is NOT meant to be
// reused, but two runs with fresh runtimes over the same program must agree.
func TestFreshRuntimesAgree(t *testing.T) {
	build := func() *sim.Program {
		al := memmodel.NewAllocator(1 << 20)
		x := al.AllocLine()
		mk := func(site sim.SiteID, pad sim.SiteID) []sim.Instr {
			body := []sim.Instr{&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: site}}
			return append(body, padWork(al, 30, pad)...)
		}
		return &sim.Program{Name: "agree", Workers: [][]sim.Instr{mk(1, 100), mk(2, 500)}}
	}
	rt1, res1 := runTxRace(t, build(), core.Options{}, quietConfig())
	rt2, res2 := runTxRace(t, build(), core.Options{}, quietConfig())
	if res1.Makespan != res2.Makespan {
		t.Fatalf("makespans diverged: %d vs %d", res1.Makespan, res2.Makespan)
	}
	if rt1.Detector().RaceCount() != rt2.Detector().RaceCount() {
		t.Fatal("race counts diverged across identical runs")
	}
}

// TestInstrumentedProgramRunsUnderBaseline: the instrumented build is inert
// without the TxRace runtime (marks are no-ops), so misconfigured pipelines
// fail soft rather than corrupting results.
func TestInstrumentedProgramRunsUnderBaseline(t *testing.T) {
	al := memmodel.NewAllocator(1 << 20)
	p := &sim.Program{Name: "inert", Workers: [][]sim.Instr{
		padWork(al, 20, 100), padWork(al, 20, 500),
	}}
	ip := instrument.ForTxRace(p, instrument.DefaultOptions())
	if _, err := sim.NewEngine(quietConfig()).Run(ip, &core.Baseline{}); err != nil {
		t.Fatalf("instrumented program failed under baseline: %v", err)
	}
}
