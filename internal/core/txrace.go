package core

import (
	"repro/internal/clock"
	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/htm"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/sim"
)

// RetryBudgetNone requests zero fast-path retries: every pure-retry abort
// falls back to the slow path immediately. The Options zero value keeps the
// default budget, so "no retries" needs this explicit sentinel.
const RetryBudgetNone = -1

// Options configures the TxRace runtime.
type Options struct {
	// HTM is the transactional hardware model; zero value means
	// htm.DefaultConfig.
	HTM htm.Config
	// LoopCut selects the capacity-abort optimization (Fig. 9).
	LoopCut CutMode
	// Thresholds preloads loop-cut thresholds for ProfCut.
	Thresholds LoopThresholds
	// RetryBudget bounds fast-path retries of pure-retry aborts before
	// falling back to the slow path, guaranteeing forward progress. Zero
	// keeps the default (3); RetryBudgetNone requests no retries at all.
	RetryBudget int
	// RetryOnlyFraction is the fraction of interrupt aborts that report
	// only the retry bit rather than an unknown status, exercising the
	// retry policy of §4.2.
	RetryOnlyFraction float64
	// SlowScale multiplies the per-access slow-path hook cost, modelling
	// per-application detector pathologies (contended shadow words, report
	// storms) that make real TSan arbitrarily slower on some programs.
	SlowScale float64
	// DisableTxFail turns off the global-abort protocol (§3): on a
	// conflict abort only the aborted thread re-executes on the slow path;
	// concurrent transactions run to completion. This is the ablation for
	// the paper's design choice of artificially aborting all in-flight
	// transactions — without it the conflicting partner's accesses are
	// usually never re-examined and the race is missed.
	DisableTxFail bool
	// TargetedSlowPath is the §9 "future HTM" extension the paper closes
	// on: with an HTM that exposes the conflicting address
	// (HTM.ExposeConflictAddress), a conflict episode's slow-path
	// re-execution only pays detector hooks for accesses on the conflicting
	// line instead of the whole region. Races on other lines of the same
	// region can then slip through, but episodes get drastically cheaper.
	// Capacity and unknown aborts still re-execute fully monitored.
	TargetedSlowPath bool
	// Fault, when non-nil, is a compiled fault plan (internal/fault): the
	// runtime attaches it to the HTM model's injection hooks and consults
	// its syscall hook for machine-wide abort clustering. nil injects
	// nothing.
	Fault *fault.Injector
	// Governor configures the adaptive fallback governor (governor.go); the
	// zero value disables it.
	Governor GovernorConfig
	// Detect selects the slow-path detector's vector-clock representation;
	// the zero value is the default sparse/delta configuration, RefDense
	// the retained dense reference for differential runs.
	Detect detect.Config
	// Obs, when non-nil, receives structured lifecycle events and metrics
	// updates (internal/obs): transaction begin/commit/abort with the RTM
	// status word, TxFail episodes, slow-path regions, loop-cut decisions.
	// The runtime also attaches it to the HTM model. The disabled path is
	// one nil-check per hook.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.HTM.MaxConcurrent == 0 {
		// Preserve backend selection and its knobs when substituting the
		// default machine geometry for an otherwise-zero HTM config.
		be, ebits := o.HTM.Backend, o.HTM.TagEpochBits
		rcap, wcap := o.HTM.BoundedReadCap, o.HTM.BoundedWriteCap
		o.HTM = htm.DefaultConfig()
		o.HTM.Backend, o.HTM.TagEpochBits = be, ebits
		o.HTM.BoundedReadCap, o.HTM.BoundedWriteCap = rcap, wcap
	}
	switch {
	case o.RetryBudget == 0:
		o.RetryBudget = 3
	case o.RetryBudget < 0:
		// RetryBudgetNone (and any negative) means an explicit zero budget.
		o.RetryBudget = 0
	}
	o.Governor = o.Governor.withDefaults()
	if o.SlowScale == 0 {
		o.SlowScale = 1
	}
	if o.Thresholds == nil {
		o.Thresholds = LoopThresholds{}
	} else {
		o.Thresholds = o.Thresholds.Clone()
	}
	return o
}

// threadCtx is the runtime's per-thread state.
type threadCtx struct {
	mode         Mode
	snap         sim.Snapshot
	genAtBegin   uint64
	clockAtBegin int64
	retries      int
	slowCause    Cause
	slowStart    int64
	// Targeted slow path (future-HTM extension): when set, only accesses on
	// targetLine reach the detector during this slow region.
	targetLine memmodel.Line
	hasTarget  bool
	// Loop-cut bookkeeping: LoopCheck hits per loop within the current
	// transaction, and the most recent LoopCheck (the LBR stand-in used to
	// attribute capacity aborts, §4.3).
	iterInTx    map[sim.LoopID]int
	lastLoop    sim.LoopID
	hasLastLoop bool
	// Fallback-governor state (governor.go): the sliding outcome window,
	// degradation bookkeeping, and the governor-budgeted unknown retries.
	govWindow        uint64
	govCount         int
	govDegraded      bool
	govForcedLeft    int
	govProbeInterval int
	govProbing       bool
	unknownRetries   int
	// Attribution-only markers (dead when no ledger is attached): the
	// runtime set attribSyscall when it injected the interrupt for a hidden
	// syscall inside this thread's own transaction, attribFault when a
	// fault-plan syscall cluster doomed it; attribCause remembers the
	// classified cause of the abort that opened the current slow region so
	// TxEndMark can fold the re-execution into the same bucket.
	attribSyscall bool
	attribFault   bool
	attribCause   obs.AbortCause
}

// TxRace is the two-phase runtime. Create with NewTxRace and pass to
// sim.Engine.Run with a program instrumented by instrument.ForTxRace.
type TxRace struct {
	sim.NopRuntime

	opts Options
	eng  *sim.Engine
	hw   *htm.HTM
	det  *detect.Detector

	txFail    memmodel.Addr
	txFailGen uint64
	// episodeLine publishes the genuine conflict line of the current TxFail
	// episode so artificially aborted threads can target it too (they only
	// ever see TxFail itself as their hardware conflict address).
	episodeLine    memmodel.Line
	hasEpisodeLine bool

	ctx []*threadCtx

	// Governor run-wide state: the count of currently degraded threads and
	// the remaining region begins of an engaged global degradation window.
	govDegraded   int
	govGlobalLeft int

	thresholds LoopThresholds
	cutActive  map[sim.LoopID]bool

	// obs is the optional observability layer; episode* track the open
	// TxFail global-abort episode so its end can be traced when the
	// initiating thread finishes its slow-path re-execution.
	obs          *obs.Observer
	episodeTid   int
	episodeStart int64
	episodeOpen  bool

	// led is the cycle-attribution ledger (nil unless the observer carries
	// one). The runtime moves each thread's sim.Thread.Phase at mode
	// transitions and records per-cause abort costs here; the engine bills
	// every charge to the current phase.
	led *obs.Ledger

	stats Stats
}

// NewTxRace returns a runtime with the given options.
func NewTxRace(opts Options) *TxRace {
	opts = opts.withDefaults()
	r := &TxRace{
		opts:       opts,
		hw:         htm.New(opts.HTM),
		det:        detect.NewWith(opts.Detect),
		txFail:     txFailBase,
		thresholds: opts.Thresholds,
		cutActive:  make(map[sim.LoopID]bool),
		obs:        opts.Obs,
		led:        opts.Obs.Ledger(),
	}
	r.stats.SlowRegions = make(map[Cause]uint64)
	if opts.LoopCut == ProfCut {
		for id := range r.thresholds {
			r.cutActive[id] = true
		}
	}
	return r
}

// Detector exposes the slow-path detector (race reports, recall inputs).
func (r *TxRace) Detector() *detect.Detector { return r.det }

// Stats returns the runtime statistics collected so far.
func (r *TxRace) Stats() Stats { return r.stats }

// HWStats returns the underlying machine's transactional event counts, for
// cross-checking runtime-level accounting against machine-level accounting.
func (r *TxRace) HWStats() htm.Stats { return r.hw.Stats() }

// Thresholds returns the live loop-cut thresholds (after adaptation), which
// a profiling run harvests to build a ProfCut profile.
func (r *TxRace) Thresholds() LoopThresholds { return r.thresholds }

// Init implements sim.Runtime.
func (r *TxRace) Init(e *sim.Engine) {
	r.eng = e
	r.hw.SetClock(e.ThreadClock)
	if r.obs != nil {
		r.hw.SetObserver(r.obs, e.ThreadClock)
	}
	if r.opts.Fault != nil {
		r.hw.SetInjector(r.opts.Fault)
	}
}

func (r *TxRace) tctx(t *sim.Thread) *threadCtx {
	for t.ID >= len(r.ctx) {
		r.ctx = append(r.ctx, nil)
	}
	if r.ctx[t.ID] == nil {
		r.ctx[t.ID] = &threadCtx{iterInTx: make(map[sim.LoopID]int)}
	}
	return r.ctx[t.ID]
}

// multithreaded reports whether HTM monitoring is worthwhile: at least two
// worker threads are live (§4.3, optimization 1).
func (r *TxRace) multithreaded() bool { return r.eng.LiveWorkers() >= 2 }

func (r *TxRace) slowHookCost() int64 {
	return int64(float64(r.eng.Config().Cost.SlowAccessHook) * r.opts.SlowScale)
}

// chargeFast charges c cycles to t and attributes them to pure fast-path
// overhead (the black "xbegin/xend" bar of Fig. 7).
func (r *TxRace) chargeFast(t *sim.Thread, c int64) {
	r.eng.ChargeAs(t, c, obs.PhaseFast)
	r.stats.CyclesFastPath += c
}

// Fork, Joined: thread-lifetime happens-before edges are always tracked.
func (r *TxRace) Fork(parent, child *sim.Thread) {
	r.det.Fork(clock.TID(parent.ID), clock.TID(child.ID))
}

// Joined implements sim.Runtime.
func (r *TxRace) Joined(parent, child *sim.Thread) {
	r.det.Join(clock.TID(parent.ID), clock.TID(child.ID))
}

// JoinedAll implements sim.BatchJoiner: one tree-structured N-way clock
// merge at the engine's join-all point.
func (r *TxRace) JoinedAll(parent *sim.Thread, children []*sim.Thread) {
	r.det.JoinAllChildren(clock.TID(parent.ID), childTIDs(children))
}

// SyncAcquire tracks the happens-before edge on both paths (§5, Fig. 6).
func (r *TxRace) SyncAcquire(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	c := r.tctx(t)
	if c.mode == ModeNone && !r.multithreaded() {
		return
	}
	r.chargeFast(t, r.eng.Config().Cost.FastSyncHook)
	detect.AcquireKind(r.det, clock.TID(t.ID), detect.SyncID(s), kind)
}

// SyncRelease tracks the happens-before edge on both paths (§5, Fig. 6).
func (r *TxRace) SyncRelease(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	c := r.tctx(t)
	if c.mode == ModeNone && !r.multithreaded() {
		return
	}
	r.chargeFast(t, r.eng.Config().Cost.FastSyncHook)
	detect.ReleaseKind(r.det, clock.TID(t.ID), detect.SyncID(s), kind)
}

// TxBeginMark opens a region: a hardware transaction on the fast path, a
// software-monitored region for small regions, a no-op in single-threaded
// mode, and — when the thread was just rolled back here — the entry point of
// a slow-path re-execution.
func (r *TxRace) TxBeginMark(t *sim.Thread, m *sim.TxBegin) {
	c := r.tctx(t)
	if c.mode == ModeSlow {
		// Re-executing the region on the slow path after a rollback.
		return
	}
	if !r.multithreaded() {
		c.mode = ModeNone
		t.Phase = obs.PhaseApp
		return
	}
	if m.Small {
		// §4.3: regions with fewer than K memory operations skip the HTM;
		// the software detector covers them.
		c.mode = ModeSlow
		c.slowCause = CauseSmall
		c.slowStart = t.Clock
		t.Phase = obs.PhaseSlow
		r.stats.SlowRegions[CauseSmall]++
		if o := r.obs; o != nil {
			o.SlowEnter(t.ID, t.Clock, CauseSmall.String())
		}
		return
	}
	if r.governorForces(t, c) {
		// Degraded thread (or run-wide degradation window): no transaction
		// is attempted; the software detector covers the whole region.
		c.mode = ModeSlow
		c.slowCause = CauseGovernor
		c.slowStart = t.Clock
		t.Phase = obs.PhaseGovernor
		r.stats.SlowRegions[CauseGovernor]++
		r.stats.ForcedSlow++
		if o := r.obs; o != nil {
			o.GovernorForced(t.ID, t.Clock)
			o.SlowEnter(t.ID, t.Clock, CauseGovernor.String())
		}
		return
	}
	st, err := r.hw.Begin(t.ID)
	if st != 0 {
		// A nested begin means runtime mode tracking went wrong; fail loudly
		// rather than silently running unmonitored.
		panic("txrace: nested transaction begin")
	}
	if err != nil {
		// No free hardware context (§6 reason 4): software detection.
		c.mode = ModeSlow
		c.slowCause = CauseNoHW
		c.slowStart = t.Clock
		t.Phase = obs.PhaseSlow
		r.stats.SlowRegions[CauseNoHW]++
		if o := r.obs; o != nil {
			o.SlowEnter(t.ID, t.Clock, CauseNoHW.String())
		}
		return
	}
	t.Phase = obs.PhaseFast
	cost := r.eng.Config().Cost
	r.chargeFast(t, cost.XBegin)
	if o := r.obs; o != nil {
		o.TxBegin(t.ID, t.Clock)
	}
	c.mode = ModeFast
	c.snap = r.eng.Checkpoint(t)
	c.genAtBegin = r.txFailGen
	c.clockAtBegin = t.Clock
	c.hasLastLoop = false
	c.attribSyscall = false
	c.attribFault = false
	clearLoopIters(c.iterInTx)
	// Instrumented prologue: read the TxFail flag transactionally so a
	// later non-transactional write to it aborts this transaction (§4.1).
	r.hw.Access(t.ID, r.txFail, false)
}

func clearLoopIters(m map[sim.LoopID]int) {
	for k := range m {
		delete(m, k)
	}
}

// Atomic handles an atomic read-modify-write: a synchronization operation,
// tracked on both paths like every other sync (§5). Instrumentation has
// already cut the region around it, so no transaction is open here.
func (r *TxRace) Atomic(t *sim.Thread, m *sim.AtomicRMW, addr memmodel.Addr) {
	c := r.tctx(t)
	if c.mode == ModeNone && !r.multithreaded() {
		return
	}
	r.chargeFast(t, r.eng.Config().Cost.FastSyncHook)
	// The atomic still participates in HTM conflict detection (coherence
	// traffic) like any access.
	r.hw.Access(t.ID, addr, true)
	detect.AtomicOp(r.det, clock.TID(t.ID), addr, m.Site)
}

// Access handles one memory access according to the thread's mode. All
// accesses participate in HTM conflict detection (hardware tracks every
// byte a transaction touches, hooked or not, and strong isolation makes
// non-transactional accesses conflict too); only hooked accesses reach the
// software detector on the slow path.
func (r *TxRace) Access(t *sim.Thread, m *sim.MemAccess, addr memmodel.Addr) {
	c := r.tctx(t)
	switch c.mode {
	case ModeNone:
		return
	case ModeFast, ModeIdle:
		r.hw.Access(t.ID, addr, m.Write)
	case ModeSlow:
		// Strong isolation: this non-transactional access aborts any
		// conflicting in-flight transaction (Fig. 5's fast/slow mixed
		// detection — in the one direction the hardware supports).
		r.hw.Access(t.ID, addr, m.Write)
		if c.hasTarget && memmodel.LineOf(addr) != c.targetLine {
			// Targeted slow path: off-line accesses skip the detector.
			return
		}
		if m.Hooked {
			hc := r.slowHookCost()
			r.eng.Charge(t, hc)
			r.attributeSlow(c, hc)
			r.det.Access(clock.TID(t.ID), addr, m.Write, m.Site)
		}
	}
}

// attributeSlow adds hook cycles to the Fig. 7 bucket for the current
// slow-region cause. (For abort-caused regions the whole re-execution time
// is attributed at TxEndMark; hook cycles are folded in there, so this
// only needs to handle causes that do not re-execute.)
func (r *TxRace) attributeSlow(c *threadCtx, cycles int64) {
	switch c.slowCause {
	case CauseSmall, CauseNoHW:
		r.stats.CyclesSmall += cycles
	case CauseGovernor:
		r.stats.CyclesGovernor += cycles
	}
}

// SyscallEvent fires for every system call. Instrumentation cuts
// transactions around every syscall it knows about, so reaching here in
// ModeFast means a *hidden* syscall (the paper's misprofiled third-party
// library case, §7): the privilege-level change aborts the transaction with
// an unknown status.
func (r *TxRace) SyscallEvent(t *sim.Thread, sc *sim.Syscall) {
	c := r.tctx(t)
	if c.mode == ModeFast {
		c.attribSyscall = true // the runtime itself dooms the transaction here
		r.hw.InjectInterrupt(t.ID)
	}
	if f := r.opts.Fault; f != nil && f.AtSyscall(t.ID, t.Clock) {
		// Injected abort clustering (fault.SyscallCluster): the privilege-
		// level change dooms every open transaction machine-wide, modelling
		// an interrupt storm around the syscall, not just the caller's own
		// transaction.
		for tid, oc := range r.ctx {
			if oc != nil && oc.mode == ModeFast {
				oc.attribFault = true
				r.hw.InjectInterrupt(tid)
			}
		}
	}
}

// Interrupt delivers a timer interrupt / context switch: an open transaction
// aborts, usually with an unknown status, occasionally retry-only.
func (r *TxRace) Interrupt(t *sim.Thread) {
	c := r.tctx(t)
	if c.mode != ModeFast {
		return
	}
	if r.opts.RetryOnlyFraction > 0 && t.RNG.Bool(r.opts.RetryOnlyFraction) {
		r.hw.InjectAbort(t.ID, htm.StatusRetry)
		return
	}
	r.hw.InjectInterrupt(t.ID)
}

// PreStep is the abort-delivery point: a transaction doomed by a remote
// access or interrupt takes effect before the thread's next instruction.
func (r *TxRace) PreStep(t *sim.Thread) {
	c := r.tctx(t)
	if c.mode != ModeFast {
		return
	}
	if _, ok := r.hw.Pending(t.ID); !ok {
		return
	}
	st := r.hw.Resolve(t.ID)
	r.handleAbort(t, c, st)
}

// classifyAbort maps one delivered abort to its attribution-ledger cause,
// one level finer than the §4.2 policy's view: fault-injected dooms and
// hidden-syscall interrupts are split out of the status word's buckets. It
// consumes the per-thread markers, so call it exactly once per abort (and
// only when a ledger is attached — it is observability, not policy).
func (r *TxRace) classifyAbort(t *sim.Thread, c *threadCtx, st htm.Status) obs.AbortCause {
	injected := r.opts.Fault.ConsumeMark(t.ID)
	clusterHit := c.attribFault
	ownSyscall := c.attribSyscall
	c.attribFault, c.attribSyscall = false, false
	switch {
	case injected:
		return obs.AbortFault
	case ownSyscall && st == 0:
		return obs.AbortSyscall
	case clusterHit:
		return obs.AbortFault
	case st.Is(htm.StatusConflict):
		return obs.AbortConflict
	case st.Is(htm.StatusCapacity):
		return obs.AbortCapacity
	default:
		return obs.AbortUnknown
	}
}

// handleAbort implements the §4.2 policy table.
func (r *TxRace) handleAbort(t *sim.Thread, c *threadCtx, st htm.Status) {
	cost := r.eng.Config().Cost
	attempt := t.Clock - c.clockAtBegin
	r.eng.ChargeAs(t, cost.AbortPenalty, obs.PhaseAbort)
	wasted := t.Clock - c.clockAtBegin

	var ac obs.AbortCause
	if r.led != nil {
		// The attempt's cycles were billed live as fast-path execution; the
		// abort reveals them as discarded work.
		r.led.Move(t.ID, obs.PhaseFast, obs.PhaseAbort, attempt)
		ac = r.classifyAbort(t, c, st)
		r.led.Abort(t.ID, ac, wasted)
	}

	var cause Cause
	artificial := false
	switch {
	case st.Is(htm.StatusConflict):
		// Conflict (or conflict+retry, treated as conflict per §4.2).
		r.stats.ConflictAborts++
		cause = CauseConflict
		if r.opts.TargetedSlowPath {
			if line, ok := r.hw.ConflictLine(t.ID); ok {
				if memmodel.LineBase(line) == r.txFail || memmodel.LineOf(r.txFail) == line {
					// Artificial abort: the hardware address is TxFail
					// itself; the initiator published the real line.
					c.targetLine, c.hasTarget = r.episodeLine, r.hasEpisodeLine
				} else {
					c.targetLine, c.hasTarget = line, true
				}
			}
		}
		if r.opts.DisableTxFail {
			// Ablation: no artificial aborts; partners keep running.
		} else if c.genAtBegin == r.txFailGen {
			// First abort of this episode: write TxFail. Strong isolation
			// plus every transaction's prologue read of TxFail aborts all
			// concurrent in-flight transactions (§3 steps 3–4).
			r.txFailGen++
			r.episodeLine, r.hasEpisodeLine = c.targetLine, c.hasTarget
			r.eng.ChargeAs(t, cost.TxFailWrite, obs.PhaseAbort)
			r.hw.Access(t.ID, r.txFail, true)
			if o := r.obs; o != nil {
				if r.episodeOpen {
					// The previous initiator is still re-executing; close its
					// episode at the hand-off to the new one.
					o.TxFailEnd(r.episodeTid, t.Clock, t.Clock-r.episodeStart)
				}
				r.episodeTid, r.episodeStart, r.episodeOpen = t.ID, t.Clock, true
				o.TxFailBegin(t.ID, t.Clock, r.txFailGen)
			}
		} else {
			// Artificially aborted by another thread's TxFail write.
			r.stats.ArtificialAborts++
			artificial = true
		}
	case st.Is(htm.StatusCapacity):
		r.stats.CapacityAborts++
		cause = CauseCapacity
		r.noteCapacityAbort(c)
	case st == 0:
		// Unknown status: §4.2 falls back immediately; the governor may
		// spend its separate unknown-retry budget first, softening the
		// interrupt storms fault plans cluster at syscalls.
		if g := &r.opts.Governor; g.Enabled && c.unknownRetries < g.UnknownRetryBudget {
			c.unknownRetries++
			r.stats.UnknownRetries++
			r.retryFast(t, c, c.unknownRetries, wasted)
			return
		}
		r.stats.UnknownAborts++
		cause = CauseUnknown
	case st.Is(htm.StatusRetry):
		// Pure retry status: retry the transaction on the fast path within
		// budget (§4.2 "Retry").
		if c.retries < r.opts.RetryBudget {
			c.retries++
			r.stats.Retries++
			r.retryFast(t, c, c.retries, wasted)
			return
		}
		r.stats.UnknownAborts++
		cause = CauseUnknown
	default:
		// Debug/nested cannot arise from our instrumentation (§4.2); treat
		// defensively as unknown so progress is guaranteed.
		r.stats.UnknownAborts++
		cause = CauseUnknown
	}

	c.retries = 0
	c.unknownRetries = 0
	c.mode = ModeSlow
	c.slowCause = cause
	c.attribCause = ac
	t.Phase = obs.PhaseSlow
	r.stats.SlowRegions[cause]++
	r.eng.Restore(t, c.snap)
	c.slowStart = t.Clock
	// The wasted attempt is part of this cause's overhead.
	r.addCauseCycles(cause, wasted+cost.AbortPenalty)
	r.governorAbort(t, c)
	if o := r.obs; o != nil {
		o.TxAbort(t.ID, t.Clock, uint32(st), cause.String(), wasted, artificial)
		o.SlowEnter(t.ID, c.slowStart, cause.String())
	}
}

// retryFast re-executes the region on the fast path after a retryable
// abort; attempt is 1-based within its budget. Under the governor each
// attempt first stalls for an exponentially growing backoff, so a retry
// storm cannot spin through its budget at full speed.
func (r *TxRace) retryFast(t *sim.Thread, c *threadCtx, attempt int, wasted int64) {
	r.stats.CyclesFastPath += wasted
	// Until the re-executed TxBegin reopens a transaction, the thread is in
	// abort handling (the backoff below, plus any interrupt delivered before
	// the begin re-executes).
	t.Phase = obs.PhaseAbort
	if g := &r.opts.Governor; g.Enabled {
		r.eng.ChargeAs(t, g.backoffCost(attempt), obs.PhaseAbort)
	}
	if o := r.obs; o != nil {
		o.TxRetry(t.ID, t.Clock, attempt)
	}
	c.mode = ModeIdle
	r.eng.Restore(t, c.snap) // re-executes TxBegin → new transaction
}

func (r *TxRace) addCauseCycles(cause Cause, cycles int64) {
	switch cause {
	case CauseConflict:
		r.stats.CyclesConflict += cycles
	case CauseCapacity:
		r.stats.CyclesCapacity += cycles
	case CauseUnknown:
		r.stats.CyclesUnknown += cycles
	}
}

// noteCapacityAbort attributes a capacity abort to the innermost loop whose
// LoopCheck executed most recently inside the transaction — the simulator's
// stand-in for Last Branch Record profiling (§4.3) — and adjusts the
// loop-cut threshold downward (commit raises it, abort lowers it).
func (r *TxRace) noteCapacityAbort(c *threadCtx) {
	if r.opts.LoopCut == NoCut || !c.hasLastLoop {
		return
	}
	id := c.lastLoop
	if !r.cutActive[id] {
		r.cutActive[id] = true
		if _, ok := r.thresholds[id]; !ok {
			r.thresholds[id] = 2 // DynLoopcut's small initial estimate
		}
		return
	}
	// Threshold adaptation, scaled: the paper adjusts by ±1 per event; at
	// this simulator's run lengths (hundreds of loop executions rather than
	// millions) proportional steps reproduce the same walk-to-the-boundary
	// dynamics — climb slowly on commits, back off harder on aborts.
	if th := r.thresholds[id]; th > 1 {
		r.thresholds[id] = max(1, th-max(1, th/4))
	}
}

// LoopCheckMark fires at the end of each cut-candidate loop body iteration.
// On the fast path it both records abort-attribution state and, when the
// loop's threshold is reached, splits the transaction (commit + begin) to
// preempt a capacity abort.
func (r *TxRace) LoopCheckMark(t *sim.Thread, m *sim.LoopCheck) {
	c := r.tctx(t)
	if c.mode != ModeFast {
		return
	}
	c.lastLoop, c.hasLastLoop = m.ID, true
	c.iterInTx[m.ID]++
	if r.opts.LoopCut == NoCut || !r.cutActive[m.ID] {
		return
	}
	th := r.thresholds[m.ID]
	if th <= 0 || c.iterInTx[m.ID] < th {
		return
	}
	// Cut: end the transaction here and start a new one, moving the
	// rollback point to this loop iteration.
	cost := r.eng.Config().Cost
	st, ok := r.hw.Commit(t.ID)
	r.chargeFast(t, cost.XEnd)
	if !ok {
		r.handleAbort(t, c, st)
		return
	}
	r.stats.CommittedTxns++
	r.stats.LoopCuts++
	r.governorCommit(t, c)
	if o := r.obs; o != nil {
		o.TxCommit(t.ID, t.Clock, t.Clock-c.clockAtBegin)
		o.LoopCut(t.ID, t.Clock, uint32(m.ID), th)
	}
	// A successful cut commit raises the estimate (§4.3) — proportional
	// step, matching the scaled adaptation in noteCapacityAbort.
	if th := r.thresholds[m.ID]; th < 1<<20 {
		r.thresholds[m.ID] = th + max(1, th/32)
	}
	if _, err := r.hw.Begin(t.ID); err != nil {
		c.mode = ModeSlow
		c.slowCause = CauseNoHW
		c.slowStart = t.Clock
		t.Phase = obs.PhaseSlow
		r.stats.SlowRegions[CauseNoHW]++
		if o := r.obs; o != nil {
			o.SlowEnter(t.ID, t.Clock, CauseNoHW.String())
		}
		return
	}
	r.chargeFast(t, cost.XBegin)
	if o := r.obs; o != nil {
		o.TxBegin(t.ID, t.Clock)
	}
	c.snap = r.eng.Checkpoint(t)
	c.genAtBegin = r.txFailGen
	c.clockAtBegin = t.Clock
	clearLoopIters(c.iterInTx)
	c.hasLastLoop = false
	c.attribSyscall = false
	c.attribFault = false
	r.hw.Access(t.ID, r.txFail, false)
}

// TxEndMark closes the current region: commit on the fast path, switch back
// to the fast path after a slow region (§3: "TxRace switches back to the
// fast path ... for the next program regions").
func (r *TxRace) TxEndMark(t *sim.Thread, m *sim.TxEnd) {
	c := r.tctx(t)
	switch c.mode {
	case ModeNone:
		c.mode = ModeIdle
		if !r.multithreaded() {
			c.mode = ModeNone
		}
		t.Phase = obs.PhaseApp
		return
	case ModeIdle:
		return
	case ModeSlow:
		if c.slowCause == CauseConflict || c.slowCause == CauseCapacity || c.slowCause == CauseUnknown {
			// The whole re-execution is overhead attributable to the abort.
			r.addCauseCycles(c.slowCause, t.Clock-c.slowStart)
			// Same in the attribution ledger, under the finer-grained cause
			// classified at the abort (no new abort is counted).
			r.led.AddAbortCycles(t.ID, c.attribCause, t.Clock-c.slowStart)
		}
		if o := r.obs; o != nil {
			o.SlowExit(t.ID, t.Clock, c.slowCause.String(), t.Clock-c.slowStart)
			if r.episodeOpen && r.episodeTid == t.ID && c.slowCause == CauseConflict {
				// The TxFail episode ends when its initiator finishes the
				// slow-path re-execution.
				o.TxFailEnd(t.ID, t.Clock, t.Clock-r.episodeStart)
				r.episodeOpen = false
			}
		}
		c.slowCause = CauseNone
		c.hasTarget = false
		c.mode = ModeIdle
		t.Phase = obs.PhaseApp
		return
	case ModeFast:
		cost := r.eng.Config().Cost
		st, ok := r.hw.Commit(t.ID)
		r.chargeFast(t, cost.XEnd)
		if !ok {
			r.handleAbort(t, c, st)
			return
		}
		r.stats.CommittedTxns++
		r.governorCommit(t, c)
		if o := r.obs; o != nil {
			o.TxCommit(t.ID, t.Clock, t.Clock-c.clockAtBegin)
		}
		c.retries = 0
		c.unknownRetries = 0
		c.mode = ModeIdle
		t.Phase = obs.PhaseApp
	}
}

// ThreadExit releases any open state (a transaction cannot be open here —
// instrumentation places a TxEnd at thread exit — but be defensive).
func (r *TxRace) ThreadExit(t *sim.Thread) {
	c := r.tctx(t)
	if c.mode == ModeFast && r.hw.InTxn(t.ID) {
		r.hw.AbortExplicit(t.ID, 0xff)
		if _, ok := r.hw.Pending(t.ID); ok {
			r.hw.Resolve(t.ID)
		}
		// Discard any injector mark left by a doom that never reached
		// handleAbort, so it cannot misattribute a later thread's abort.
		r.opts.Fault.ConsumeMark(t.ID)
	}
	c.mode = ModeNone
	t.Phase = obs.PhaseApp
}

// FaultStats returns the attached injector's per-kind injected counts
// (zero when no fault plan is attached).
func (r *TxRace) FaultStats() fault.Stats { return r.opts.Fault.Stats() }

// Finish folds the slow-path detector's shadow allocation counters, the
// HTM conflict directory's counters, and the fault injector's per-kind
// counts into the metrics registry.
func (r *TxRace) Finish(e *sim.Engine) {
	s := r.det.ShadowStats()
	e.Config().Obs.ShadowMemStats(s.Pages, s.PoolHits, s.PoolMisses)
	cs := r.det.ClockStats()
	e.Config().Obs.ClockSparseStats(cs.Promotions, cs.Collapses, cs.Fallbacks)
	d := r.hw.BackendStats()
	e.Config().Obs.HTMDirStats(d.Lines, d.Checks, d.Fastpath)
	e.Config().Obs.HTMBackendStats(r.hw.Backend(), d.TagRecycled, d.TagFalse, d.Overflows)
	if f := r.opts.Fault; f != nil {
		fs := f.Stats()
		e.Config().Obs.FaultStats(
			fs.Of(fault.Unknown), fs.Of(fault.RetryStorm), fs.Of(fault.CapacityBurst),
			fs.Of(fault.DoomedLine), fs.Of(fault.CommitAbort), fs.Of(fault.SyscallCluster))
	}
}
