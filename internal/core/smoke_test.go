package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// buildRacyProgram returns a two-worker program with one unprotected shared
// store each (a write-write race on X) plus enough surrounding work that the
// regions overlap, and a properly locked counter that must never be
// reported.
func buildRacyProgram() *sim.Program {
	al := memmodel.NewAllocator(1 << 20)
	x := al.AllocLine()       // racy shared variable
	counter := al.AllocLine() // lock-protected variable
	priv0 := al.AllocWords(64)
	priv1 := al.AllocWords(64)

	const (
		mu      sim.SyncID = 1
		siteX0  sim.SiteID = 100
		siteX1  sim.SiteID = 101
		siteCnt sim.SiteID = 102
	)

	worker := func(priv memmodel.Addr, site sim.SiteID) []sim.Instr {
		return []sim.Instr{
			&sim.Loop{ID: 1, Count: 20, Body: []sim.Instr{
				&sim.MemAccess{Write: true, Addr: sim.Indexed(priv, 1), Site: 1},
				&sim.Compute{Cycles: 5},
			}},
			&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: site}, // racy
			&sim.Loop{ID: 2, Count: 20, Body: []sim.Instr{
				&sim.MemAccess{Write: false, Addr: sim.Indexed(priv, 1), Site: 2},
				&sim.Compute{Cycles: 5},
			}},
			&sim.Lock{M: mu},
			&sim.MemAccess{Write: true, Addr: sim.Fixed(counter), Site: siteCnt},
			&sim.MemAccess{Write: false, Addr: sim.Fixed(counter), Site: siteCnt + 1},
			&sim.MemAccess{Write: true, Addr: sim.Fixed(counter), Site: siteCnt + 2},
			&sim.MemAccess{Write: false, Addr: sim.Fixed(counter), Site: siteCnt + 3},
			&sim.MemAccess{Write: true, Addr: sim.Fixed(counter), Site: siteCnt + 4},
			&sim.Unlock{M: mu},
		}
	}

	return &sim.Program{
		Name:    "smoke",
		Workers: [][]sim.Instr{worker(priv0, siteX0), worker(priv1, siteX1)},
	}
}

func quietConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.InterruptEvery = 0
	cfg.SpawnJitter = 0
	cfg.MaxSteps = 1 << 22
	return cfg
}

func TestSmokeTSanFindsRace(t *testing.T) {
	p := buildRacyProgram()
	rt := core.NewTSan()
	res, err := sim.NewEngine(quietConfig()).Run(instrument.ForTSan(p), rt)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %d, want positive", res.Makespan)
	}
	if got := rt.Detector().RaceCount(); got != 1 {
		t.Fatalf("TSan races = %d, want 1 (%v)", got, rt.Detector().Races())
	}
	r := rt.Detector().Races()[0]
	if k := r.Key(); k.A != 100 || k.B != 101 {
		t.Fatalf("race pair = %+v, want {100 101}", k)
	}
}

func TestSmokeTxRaceFindsOverlappingRace(t *testing.T) {
	p := buildRacyProgram()
	rt := core.NewTxRace(core.Options{})
	ip := instrument.ForTxRace(p, instrument.DefaultOptions())
	if _, err := sim.NewEngine(quietConfig()).Run(ip, rt); err != nil {
		t.Fatalf("run: %v", err)
	}
	st := rt.Stats()
	if st.ConflictAborts == 0 {
		t.Fatalf("expected at least one conflict abort, stats %+v", st)
	}
	if got := rt.Detector().RaceCount(); got != 1 {
		t.Fatalf("TxRace races = %d, want 1 (%v); stats %+v", got, rt.Detector().Races(), st)
	}
	if st.CommittedTxns == 0 {
		t.Fatalf("expected committed transactions, stats %+v", st)
	}
}

func TestSmokeBaselineIsCheapest(t *testing.T) {
	p := buildRacyProgram()
	base, err := sim.NewEngine(quietConfig()).Run(p, &core.Baseline{})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	tsan, err := sim.NewEngine(quietConfig()).Run(instrument.ForTSan(p), core.NewTSan())
	if err != nil {
		t.Fatalf("tsan: %v", err)
	}
	txr, err := sim.NewEngine(quietConfig()).Run(
		instrument.ForTxRace(p, instrument.DefaultOptions()), core.NewTxRace(core.Options{}))
	if err != nil {
		t.Fatalf("txrace: %v", err)
	}
	if !(base.Makespan < txr.Makespan) || !(base.Makespan < tsan.Makespan) {
		t.Fatalf("baseline %d should be under txrace %d and tsan %d",
			base.Makespan, txr.Makespan, tsan.Makespan)
	}
}
