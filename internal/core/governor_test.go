package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/instrument"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/sim"
)

// companion is a compute-only worker that keeps the machine multithreaded
// (HTM monitoring only engages with ≥2 live workers, §4.3 optimization 1)
// without contributing any transactional region of its own.
func companion() []sim.Instr {
	return []sim.Instr{&sim.Compute{Cycles: 200_000}}
}

// subjectTid is the simulated thread id of the first worker — fault rules
// in these tests target it so the companion stays untouched.
const subjectTid = 1

// oneRegionProgram builds one worker with exactly one non-small
// transactional region (six private writes, no syncs, no syscalls) plus
// the companion.
func oneRegionProgram() *sim.Program {
	al := memmodel.NewAllocator(1 << 20)
	var body []sim.Instr
	for i := 0; i < 6; i++ {
		body = append(body, &sim.MemAccess{Write: true, Addr: sim.Fixed(al.AllocLine()), Site: sim.SiteID(10 + i)})
	}
	body = append(body, &sim.Compute{Cycles: 20})
	return &sim.Program{Name: "one-region", Workers: [][]sim.Instr{body, companion()}}
}

// regionsProgram builds workers×nRegions non-small regions (five private
// writes each, cut apart by syscalls). Workers touch disjoint lines, so
// every abort in these tests is injected, never organic.
func regionsProgram(workers, nRegions int) *sim.Program {
	al := memmodel.NewAllocator(1 << 20)
	prog := &sim.Program{Name: "regions"}
	site := sim.SiteID(100)
	for w := 0; w < workers; w++ {
		lines := make([]memmodel.Addr, 5)
		for i := range lines {
			lines[i] = al.AllocLine()
		}
		var ins []sim.Instr
		for n := 0; n < nRegions; n++ {
			for _, ln := range lines {
				ins = append(ins, &sim.MemAccess{Write: true, Addr: sim.Fixed(ln), Site: site})
				site++
			}
			ins = append(ins, &sim.Compute{Cycles: 10})
			ins = append(ins, &sim.Syscall{Name: "cut", Cycles: 15})
		}
		prog.Workers = append(prog.Workers, ins)
	}
	if workers == 1 {
		prog.Workers = append(prog.Workers, companion())
	}
	return prog
}

func runWithFault(t *testing.T, p *sim.Program, opts core.Options) (*core.TxRace, *obs.Metrics) {
	t.Helper()
	m := obs.NewMetrics()
	o := obs.New(nil, m)
	opts.Obs = o
	rt := core.NewTxRace(opts)
	cfg := quietConfig()
	cfg.Obs = o
	if _, err := sim.NewEngine(cfg).Run(instrument.ForTxRace(p, instrument.DefaultOptions()), rt); err != nil {
		t.Fatalf("run: %v", err)
	}
	return rt, m
}

// retryStormPlan fires a pure-retry abort at every transactional access of
// the subject thread: every fast-path attempt of every region dies with
// StatusRetry.
func retryStormPlan() fault.Plan {
	return fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Kind: fault.RetryStorm, Prob: 1, Threads: []int{subjectTid}},
	}}
}

// TestRetryStormConsumesExactBudget pins the §4.2 retry policy against an
// unrelenting retry storm: exactly RetryBudget fast-path retries, then one
// fall-back to the slow path for the region — with the obs counters
// agreeing with the runtime's own stats.
func TestRetryStormConsumesExactBudget(t *testing.T) {
	rt, m := runWithFault(t, oneRegionProgram(), core.Options{Fault: fault.New(retryStormPlan())})
	st := rt.Stats()
	if st.Retries != 3 {
		t.Errorf("Retries = %d, want exactly the default budget 3", st.Retries)
	}
	if st.UnknownAborts != 1 {
		t.Errorf("UnknownAborts = %d, want 1 (the single post-budget fallback)", st.UnknownAborts)
	}
	if got := st.SlowRegions[core.CauseUnknown]; got != 1 {
		t.Errorf("SlowRegions[unknown] = %d, want 1", got)
	}
	// 1 injection per fast-path attempt: 3 retried + 1 that exhausted it.
	if got := rt.FaultStats().Of(fault.RetryStorm); got != 4 {
		t.Errorf("injected retry faults = %d, want 4", got)
	}
	snap := m.Snapshot()
	for name, want := range map[string]uint64{
		"txn.retry":            3,
		"slow.region.unknown":  1,
		"fault.injected.retry": 4,
		"core.fallback.forced": 0, // governor off: nothing forced
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
}

// TestRetryBudgetOptions pins the Options contract the bug was about: an
// untouched zero means the default budget of 3, an explicit budget is
// honoured exactly, and RetryBudgetNone means zero retries — previously
// unexpressible because 0 was silently coerced to 3.
func TestRetryBudgetOptions(t *testing.T) {
	for _, tc := range []struct {
		name    string
		budget  int
		retries uint64
	}{
		{"zero-means-default-3", 0, 3},
		{"explicit-1", 1, 1},
		{"none-means-0", core.RetryBudgetNone, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt, _ := runWithFault(t, oneRegionProgram(),
				core.Options{RetryBudget: tc.budget, Fault: fault.New(retryStormPlan())})
			st := rt.Stats()
			if st.Retries != tc.retries {
				t.Errorf("Retries = %d, want %d", st.Retries, tc.retries)
			}
			if st.UnknownAborts != 1 || st.SlowRegions[core.CauseUnknown] != 1 {
				t.Errorf("fallbacks: unknown=%d slow=%d, want exactly one fallback",
					st.UnknownAborts, st.SlowRegions[core.CauseUnknown])
			}
		})
	}
}

// TestGovernorDegradeProbeRecover drives the whole governor lifecycle on
// one thread: a commit-abort storm in the run's opening phase trips the
// abort-rate window, the thread degrades to governor-forced slow regions,
// probing re-tries the fast path, and once the storm window has passed a
// probe succeeds and the thread recovers to HTM mode.
func TestGovernorDegradeProbeRecover(t *testing.T) {
	plan := fault.Plan{Seed: 2, Rules: []fault.Rule{
		{Kind: fault.CommitAbort, Prob: 1, Threads: []int{subjectTid}, Window: fault.Window{To: 2000}},
	}}
	rt, m := runWithFault(t, regionsProgram(1, 100), core.Options{
		Fault:    fault.New(plan),
		Governor: core.GovernorConfig{Enabled: true, Window: 4},
	})
	st := rt.Stats()
	if st.GovernorTrips == 0 {
		t.Fatalf("governor never tripped: %+v", st)
	}
	if st.ForcedSlow == 0 || st.SlowRegions[core.CauseGovernor] == 0 {
		t.Errorf("no governor-forced regions: ForcedSlow=%d SlowRegions[governor]=%d",
			st.ForcedSlow, st.SlowRegions[core.CauseGovernor])
	}
	if st.GovernorProbes == 0 {
		t.Errorf("governor never probed: %+v", st)
	}
	if st.GovernorRecoveries == 0 {
		t.Errorf("governor never recovered after the fault window closed: %+v", st)
	}
	if st.CyclesGovernor == 0 {
		t.Error("no cycles attributed to governor-forced regions")
	}
	snap := m.Snapshot()
	if got := snap.Counters["core.fallback.forced"]; got != st.ForcedSlow {
		t.Errorf("core.fallback.forced = %d, stats say %d", got, st.ForcedSlow)
	}
	if got := snap.Counters["core.governor.trips"]; got != st.GovernorTrips {
		t.Errorf("core.governor.trips = %d, stats say %d", got, st.GovernorTrips)
	}
	// Recovered: the state gauge must be back at zero degraded threads.
	if got := snap.Gauges["core.governor.state"]; got != 0 {
		t.Errorf("core.governor.state gauge = %d after recovery, want 0", got)
	}
}

// TestGovernorGlobalTrip: when every live worker has degraded, the governor
// degrades the whole run for a window of regions.
func TestGovernorGlobalTrip(t *testing.T) {
	plan := fault.Plan{Seed: 3, Rules: []fault.Rule{{Kind: fault.CommitAbort, Prob: 1}}}
	rt, m := runWithFault(t, regionsProgram(2, 40), core.Options{
		Fault:    fault.New(plan),
		Governor: core.GovernorConfig{Enabled: true, Window: 4},
	})
	st := rt.Stats()
	if st.GovernorGlobal == 0 {
		t.Fatalf("global degradation never engaged: %+v", st)
	}
	if got := m.Snapshot().Counters["core.governor.global"]; got != st.GovernorGlobal {
		t.Errorf("core.governor.global = %d, stats say %d", got, st.GovernorGlobal)
	}
}

// TestGovernorOffByDefault: a zero Options under heavy faults never forces
// a region or trips anything — the governor is strictly opt-in, so existing
// configurations behave exactly as before this layer existed.
func TestGovernorOffByDefault(t *testing.T) {
	plan := fault.Plan{Seed: 4, Rules: []fault.Rule{{Kind: fault.CommitAbort, Prob: 1}}}
	rt, _ := runWithFault(t, regionsProgram(2, 20), core.Options{Fault: fault.New(plan)})
	st := rt.Stats()
	if st.ForcedSlow != 0 || st.GovernorTrips != 0 || st.GovernorProbes != 0 ||
		st.GovernorRecoveries != 0 || st.GovernorGlobal != 0 || st.UnknownRetries != 0 {
		t.Errorf("governor activity with zero Options: %+v", st)
	}
}

// TestGovernorUnknownRetryBudget: the governor's separate unknown-abort
// retry budget is spent before falling back — and zero means zero, the
// exact expressibility the RetryBudget fix was about.
func TestGovernorUnknownRetryBudget(t *testing.T) {
	plan := fault.Plan{Seed: 5, Rules: []fault.Rule{
		{Kind: fault.Unknown, Prob: 1, Threads: []int{subjectTid}},
	}}
	// Every fast-path attempt dies with an unknown abort, so the injection
	// count exposes the budget arithmetic: budget 1 buys one extra attempt
	// (two injections) before the single fallback.
	rt, _ := runWithFault(t, oneRegionProgram(), core.Options{
		Fault:    fault.New(plan),
		Governor: core.GovernorConfig{Enabled: true, UnknownRetryBudget: 1},
	})
	st := rt.Stats()
	if st.UnknownRetries != 1 {
		t.Errorf("UnknownRetries = %d, want 1", st.UnknownRetries)
	}
	if st.SlowRegions[core.CauseUnknown] != 1 {
		t.Errorf("SlowRegions[unknown] = %d, want 1", st.SlowRegions[core.CauseUnknown])
	}
	if got := rt.FaultStats().Of(fault.Unknown); got != 2 {
		t.Errorf("injected unknown faults = %d, want 2 (first attempt + budgeted retry)", got)
	}

	// A zero UnknownRetryBudget means zero — it is never coerced to a
	// default, the exact expressibility the RetryBudget fix was about.
	rt, _ = runWithFault(t, oneRegionProgram(), core.Options{
		Fault:    fault.New(plan),
		Governor: core.GovernorConfig{Enabled: true},
	})
	st = rt.Stats()
	if st.UnknownRetries != 0 {
		t.Errorf("UnknownRetries = %d with a zero budget, want 0", st.UnknownRetries)
	}
	if st.SlowRegions[core.CauseUnknown] != 1 {
		t.Errorf("unknown abort did not fall back immediately: %+v", st)
	}
	if got := rt.FaultStats().Of(fault.Unknown); got != 1 {
		t.Errorf("injected unknown faults = %d, want 1", got)
	}
}
