// Package core implements the TxRace runtime — the paper's primary
// contribution — together with the comparison runtimes the evaluation needs:
// an uninstrumented baseline, a full happens-before detector (the TSan
// stand-in), and a sampling detector (the LiteRace-style baseline of
// Figures 11–13).
//
// The TxRace runtime (§3–§5 of the paper) drives two-phase detection:
//
//	fast path:  synchronization-free regions run as hardware transactions;
//	            the HTM's cache-line conflict detection flags potential
//	            races at near-zero cost.
//	slow path:  on a conflict the runtime writes the TxFail flag, which —
//	            through the HTM's strong isolation — aborts every in-flight
//	            transaction; all of them roll back and re-execute with the
//	            software happens-before detector attached, pinpointing racy
//	            instructions and discarding false sharing.
//
// Capacity and unknown aborts send only the aborting thread to the slow
// path; happens-before of synchronization operations is tracked on both
// paths so slow-path episodes never report stale false positives (§5,
// Fig. 6).
package core

import (
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// Mode is a thread's current monitoring mode.
type Mode uint8

const (
	// ModeNone: unmonitored (single-threaded phase, §4.3 optimization 1).
	ModeNone Mode = iota
	// ModeIdle: between regions (around a synchronization operation).
	ModeIdle
	// ModeFast: inside a hardware transaction.
	ModeFast
	// ModeSlow: executing a region under the software detector.
	ModeSlow
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeIdle:
		return "idle"
	case ModeFast:
		return "fast"
	case ModeSlow:
		return "slow"
	default:
		return "?"
	}
}

// Cause records why a region ended up on the slow path.
type Cause uint8

const (
	// CauseNone: not on the slow path.
	CauseNone Cause = iota
	// CauseConflict: an HTM data-conflict abort (genuine or TxFail-induced).
	CauseConflict
	// CauseCapacity: transactional footprint overflow.
	CauseCapacity
	// CauseUnknown: an unexplained abort (interrupt, hidden syscall, ...).
	CauseUnknown
	// CauseSmall: region statically below the K-access threshold (§4.3).
	CauseSmall
	// CauseNoHW: no free hardware transaction context (§6 reason 4).
	CauseNoHW
	// CauseGovernor: the fallback governor forced the region onto the slow
	// path (degraded thread or run-wide degradation window).
	CauseGovernor
)

func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseConflict:
		return "conflict"
	case CauseCapacity:
		return "capacity"
	case CauseUnknown:
		return "unknown"
	case CauseSmall:
		return "small"
	case CauseNoHW:
		return "nohw"
	case CauseGovernor:
		return "governor"
	default:
		return "?"
	}
}

// CutMode selects the loop-cut optimization scheme (§4.3, Fig. 9).
type CutMode uint8

const (
	// NoCut: every capacity abort falls back to the slow path.
	NoCut CutMode = iota
	// DynCut: thresholds start at 2 after a loop's first capacity abort and
	// adapt at runtime (TxRace-DynLoopcut).
	DynCut
	// ProfCut: thresholds are preloaded from a profiling run
	// (TxRace-ProfLoopcut) and adapted the same way.
	ProfCut
)

func (m CutMode) String() string {
	switch m {
	case NoCut:
		return "TxRace-NoOpt"
	case DynCut:
		return "TxRace-DynLoopcut"
	case ProfCut:
		return "TxRace-ProfLoopcut"
	default:
		return "?"
	}
}

// LoopThresholds maps loops to initial loop-cut thresholds, as produced by a
// profiling run (instrument.Profile) for TxRace-ProfLoopcut.
type LoopThresholds map[sim.LoopID]int

// Clone returns a copy, so a profile can be reused across runs.
func (lt LoopThresholds) Clone() LoopThresholds {
	c := make(LoopThresholds, len(lt))
	for k, v := range lt {
		c[k] = v
	}
	return c
}

// txFailBase is where the runtime's own globals live: far above any workload
// allocation, on a dedicated cache line.
const txFailBase memmodel.Addr = 1 << 40

// Stats aggregates runtime events for Table 1 and Figure 7.
type Stats struct {
	CommittedTxns    uint64 // fast-path transactions committed (incl. loop cuts)
	ConflictAborts   uint64 // data-conflict aborts, incl. TxFail-induced
	ArtificialAborts uint64 // subset of ConflictAborts caused by TxFail
	CapacityAborts   uint64
	UnknownAborts    uint64
	Retries          uint64 // pure-retry aborts retried on the fast path
	UnknownRetries   uint64 // unknown aborts retried under the governor's budget
	LoopCuts         uint64 // transactions split by the loop-cut optimization

	SlowRegions map[Cause]uint64 // slow-path region executions by cause

	// Fallback-governor activity (zero when the governor is disabled).
	ForcedSlow         uint64 // regions forced onto the slow path (== SlowRegions[CauseGovernor])
	GovernorTrips      uint64 // per-thread abort-rate tripwire degradations
	GovernorProbes     uint64 // fast-path recovery probes attempted
	GovernorRecoveries uint64 // probes that committed and re-entered HTM mode
	GovernorGlobal     uint64 // run-wide degradation windows engaged

	// Overhead attribution in cycles, for the Fig. 7 breakdown.
	CyclesFastPath int64 // xbegin/xend, TxFail reads, fast-path sync tracking
	CyclesConflict int64 // aborted work + re-execution for conflict aborts
	CyclesCapacity int64 // same for capacity aborts
	CyclesUnknown  int64 // same for unknown aborts
	CyclesSmall    int64 // slow-path hook cost in small regions
	CyclesGovernor int64 // slow-path hook cost in governor-forced regions
}
