package clock

import (
	"testing"
	"testing/quick"
)

func TestEpochPacking(t *testing.T) {
	e := MakeEpoch(7, 123)
	if e.TID() != 7 || e.Time() != 123 {
		t.Fatalf("epoch round trip failed: %v", e)
	}
	if NoEpoch.String() != "⊥" {
		t.Fatalf("NoEpoch string = %q", NoEpoch.String())
	}
	if e.String() != "123@7" {
		t.Fatalf("epoch string = %q", e.String())
	}
}

func TestTickAndGet(t *testing.T) {
	v := New(0)
	if v.Get(3) != 0 {
		t.Fatal("unset component must read 0")
	}
	if v.Tick(3) != 1 || v.Tick(3) != 2 {
		t.Fatal("Tick must increment")
	}
	if v.Get(3) != 2 || v.Get(0) != 0 {
		t.Fatal("components independent")
	}
}

func TestJoinIsComponentwiseMax(t *testing.T) {
	a, b := New(3), New(3)
	a.Set(0, 5)
	a.Set(2, 1)
	b.Set(0, 3)
	b.Set(1, 7)
	a.Join(b)
	if a.Get(0) != 5 || a.Get(1) != 7 || a.Get(2) != 1 {
		t.Fatalf("join wrong: %v", a)
	}
}

func TestLeqEpoch(t *testing.T) {
	v := New(2)
	v.Set(1, 10)
	if !v.LeqEpoch(MakeEpoch(1, 10)) || !v.LeqEpoch(MakeEpoch(1, 3)) {
		t.Fatal("ordered epochs must be ⊑")
	}
	if v.LeqEpoch(MakeEpoch(1, 11)) || v.LeqEpoch(MakeEpoch(0, 1)) {
		t.Fatal("unordered epochs must not be ⊑")
	}
	if !v.LeqEpoch(NoEpoch) {
		t.Fatal("⊥ is below everything")
	}
}

func TestConcurrent(t *testing.T) {
	a, b := New(2), New(2)
	a.Set(0, 1)
	b.Set(1, 1)
	if !a.Concurrent(b) {
		t.Fatal("disjoint clocks are concurrent")
	}
	c := a.Clone()
	c.Join(b)
	if a.Concurrent(c) || !a.Leq(c) {
		t.Fatal("a ⊑ a⊔b")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(1)
	a.Set(0, 4)
	c := a.Clone()
	c.Tick(0)
	if a.Get(0) != 4 || c.Get(0) != 5 {
		t.Fatal("clone aliases original")
	}
}

func TestAssign(t *testing.T) {
	a, b := New(1), New(3)
	b.Set(2, 9)
	a.Assign(b)
	if a.Get(2) != 9 || a.Len() != 3 {
		t.Fatalf("assign failed: %v", a)
	}
}

func fromPairs(pairs []uint16) *VC {
	v := New(0)
	for i := 0; i+1 < len(pairs); i += 2 {
		v.Set(TID(pairs[i]%8), Time(pairs[i+1]%100))
	}
	return v
}

// Join laws: idempotent, commutative, associative, monotone.
func TestPropertyJoinLaws(t *testing.T) {
	f := func(ps, qs, rs []uint16) bool {
		p, q, r := fromPairs(ps), fromPairs(qs), fromPairs(rs)

		// Idempotence.
		a := p.Clone()
		a.Join(p)
		if !a.Leq(p) || !p.Leq(a) {
			return false
		}
		// Commutativity.
		pq := p.Clone()
		pq.Join(q)
		qp := q.Clone()
		qp.Join(p)
		if !pq.Leq(qp) || !qp.Leq(pq) {
			return false
		}
		// Associativity.
		pqr := pq.Clone()
		pqr.Join(r)
		qr := q.Clone()
		qr.Join(r)
		pqr2 := p.Clone()
		pqr2.Join(qr)
		if !pqr.Leq(pqr2) || !pqr2.Leq(pqr) {
			return false
		}
		// Upper bound.
		return p.Leq(pq) && q.Leq(pq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Epoch test agrees with full vector comparison.
func TestPropertyEpochAgreesWithVector(t *testing.T) {
	f := func(ps []uint16, tid uint8, tm uint8) bool {
		v := fromPairs(ps)
		e := MakeEpoch(TID(tid%8), Time(tm%100)+1)
		single := New(0)
		single.Set(e.TID(), e.Time())
		return v.LeqEpoch(e) == single.Leq(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClearReusesBacking(t *testing.T) {
	v := New(4)
	v.Set(3, 9)
	v.Clear(2)
	if v.Len() != 2 {
		t.Fatalf("Len after Clear(2) = %d, want 2", v.Len())
	}
	for tid := TID(0); tid < 4; tid++ {
		if v.Get(tid) != 0 {
			t.Fatalf("component %d = %d after Clear, want 0", tid, v.Get(tid))
		}
	}
	// Re-extending into retained capacity must not resurrect stale values.
	v.Set(1, 5)
	if v.Get(3) != 0 {
		t.Fatalf("stale component resurrected: Get(3) = %d", v.Get(3))
	}
	// Clear to a larger size than capacity allocates fresh.
	v.Clear(16)
	if v.Len() != 16 || v.Get(15) != 0 {
		t.Fatalf("Clear(16): Len=%d Get(15)=%d", v.Len(), v.Get(15))
	}
}

func TestGrowPastClearIsZeroed(t *testing.T) {
	v := New(8)
	for i := TID(0); i < 8; i++ {
		v.Set(i, Time(i)+1)
	}
	v.Clear(1)
	v.Set(6, 2) // grows back through the stale region
	for i := TID(1); i < 6; i++ {
		if v.Get(i) != 0 {
			t.Fatalf("component %d = %d after re-growth, want 0", i, v.Get(i))
		}
	}
	if v.Get(6) != 2 {
		t.Fatalf("Get(6) = %d, want 2", v.Get(6))
	}
}
