// Sparse/delta vector clocks for many-thread scaling (DESIGN.md §11).
//
// At service-scale thread counts the dense VC pays O(T) per join and per
// read-vector inflation even though most threads are idle between any two
// synchronization events. The sparse form stores only the components that
// differ from a shared immutable dense Base — a compression dictionary the
// detector refreshes at epoch-collapse rounds — so the common joins cost
// O(live entries) instead of O(peak TID).
//
// Invariants:
//
//  1. Entries override the base: the semantic value at tid is the entry's
//     value when an entry exists, else base[tid] (0 for the nil base).
//     Entries may sit below the base ("loose" entries, produced by Rebase
//     fill-ins); every operation stays correct with any base.
//  2. Entry lists are sorted by tid and never alias scratch.
//  3. Bases within one lineage are pointwise monotone in generation:
//     NextBase clamps each new base to its predecessor, so baseLeq can
//     order two bases from (lineage, gen) alone — the doom-order-style
//     bookkeeping invariant every sparse↔sparse merge relies on.
//  4. The nil base is the universal bottom, compatible with every lineage;
//     fresh clocks start there and adopt a lineage at their first join.
package clock

// entry is one explicit component of a sparse clock.
type entry struct {
	tid TID
	t   Time
}

// Stats counts sparse-representation transitions. One Stats value is shared
// by pointer among all clocks of a detector so the counters can be folded
// into observability at Finish.
type Stats struct {
	Promotions uint64 // sparse clocks promoted to the dense representation
	Collapses  uint64 // epoch-collapse rounds (NextBase + Rebase sweep)
	Fallbacks  uint64 // joins that had to leave the sparse fast path
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Promotions += o.Promotions
	s.Collapses += o.Collapses
	s.Fallbacks += o.Fallbacks
}

// lineageTag gives each collapse protocol instance a unique identity; bases
// from different lineages are never ordered by bookkeeping alone.
type lineageTag struct{ _ byte }

// Base is an immutable dense reference vector shared by many sparse clocks.
// It is produced only by NextBase and never mutated afterwards.
type Base struct {
	t      []Time
	gen    uint64      // collapse generation within the lineage, from 1
	lin    *lineageTag // identity of the collapse protocol that grew it
	prev   *Base       // base this one was collapsed from (nil for the first)
	raised []TID       // tids where this base exceeds prev, ascending
}

// Get returns the base component for tid (zero for the nil bottom base and
// beyond the materialized length).
func (b *Base) Get(tid TID) Time {
	if b == nil || int(tid) >= len(b.t) {
		return 0
	}
	return b.t[tid]
}

// Len returns the number of materialized base components.
func (b *Base) Len() int {
	if b == nil {
		return 0
	}
	return len(b.t)
}

// Gen returns the collapse generation (0 for the nil bottom base).
func (b *Base) Gen() uint64 {
	if b == nil {
		return 0
	}
	return b.gen
}

// baseLeq reports a ⊑ b knowable from lineage bookkeeping alone: within one
// lineage bases are pointwise monotone in generation (invariant 3), and the
// nil bottom base is below everything.
func baseLeq(a, b *Base) bool {
	if a == nil {
		return true
	}
	if b == nil {
		return false
	}
	return a.lin == b.lin && a.gen <= b.gen
}

// NewSparse returns an empty sparse clock (the all-zeros value) recording
// representation transitions in st. A non-nil st also marks the clock
// sparse-capable: Clear returns it to the sparse form even after promotion,
// which the shadow read-vector pool relies on.
func NewSparse(st *Stats) *VC { return &VC{sparse: true, st: st} }

// Sparse reports whether v currently uses the sparse representation.
func (v *VC) Sparse() bool { return v.sparse }

// BaseGen returns the collapse generation of the base v is currently
// expressed against (0 for dense clocks and fresh sparse clocks).
func (v *VC) BaseGen() uint64 { return v.base.Gen() }

// Promotion policy: a sparse clock that has accumulated more than promoteMin
// entries AND whose entries cover more than 1/promoteFrac of its span is
// cheaper dense. The demotion threshold at Rebase is stricter (demoteFrac)
// so clocks do not flap between representations across a collapse.
const (
	promoteMin  = 4
	promoteFrac = 4
	demoteFrac  = 8
)

// find returns the index of tid in the sorted entry list and whether it is
// present; absent, the index is the insertion point.
func (v *VC) find(tid TID) (int, bool) {
	s := v.s
	if len(s) <= 8 {
		for i := range s {
			if s[i].tid >= tid {
				return i, s[i].tid == tid
			}
		}
		return len(s), false
	}
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].tid < tid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s) && s[lo].tid == tid
}

func (v *VC) sGet(tid TID) Time {
	if i, ok := v.find(tid); ok {
		return v.s[i].t
	}
	return v.base.Get(tid)
}

func (v *VC) sSet(tid TID, t Time) {
	if n := int(tid) + 1; n > v.span {
		v.span = n
	}
	i, ok := v.find(tid)
	if t == v.base.Get(tid) {
		// The base already says so; an entry would be redundant.
		if ok {
			v.s = append(v.s[:i], v.s[i+1:]...)
		}
		return
	}
	if ok {
		v.s[i].t = t
		return
	}
	v.s = append(v.s, entry{})
	copy(v.s[i+1:], v.s[i:])
	v.s[i] = entry{tid, t}
	v.maybePromote()
}

func (v *VC) maybePromote() {
	if len(v.s) > promoteMin && len(v.s)*promoteFrac > v.span {
		v.promote()
	}
}

// promote materializes v densely and leaves it dense (until Clear or a
// demoting Rebase); past the density threshold the flat array is both
// smaller and faster than the entry list.
func (v *VC) promote() {
	if !v.sparse {
		return
	}
	n := v.span
	if bl := v.base.Len(); bl > n {
		n = bl
	}
	if k := len(v.s); k > 0 && int(v.s[k-1].tid)+1 > n {
		n = int(v.s[k-1].tid) + 1
	}
	t := v.t
	if cap(t) < n {
		t = make([]Time, n)
	} else {
		t = t[:n]
		for i := range t {
			t[i] = 0
		}
	}
	if v.base != nil {
		copy(t, v.base.t)
	}
	for _, e := range v.s {
		t[e.tid] = e.t
	}
	v.t = t
	v.scratch = v.s[:0]
	v.s = nil
	v.base = nil
	v.sparse = false
	if v.st != nil {
		v.st.Promotions++
	}
}

// joinSparse merges o into v when both are sparse and their bases are
// ordered by baseLeq: one walk over the union of the two entry lists,
// re-expressed against the newer base, O(|v.s| + |o.s|).
func (v *VC) joinSparse(o *VC) {
	target := v.base
	if baseLeq(v.base, o.base) {
		target = o.base
	}
	out := v.scratch[:0]
	i, j := 0, 0
	for i < len(v.s) || j < len(o.s) {
		var tid TID
		var val Time
		switch {
		case j >= len(o.s) || (i < len(v.s) && v.s[i].tid < o.s[j].tid):
			tid, val = v.s[i].tid, v.s[i].t
			if ot := o.base.Get(tid); ot > val {
				val = ot // o's value here is its base component
			}
			i++
		case i >= len(v.s) || o.s[j].tid < v.s[i].tid:
			tid, val = o.s[j].tid, o.s[j].t
			if vt := v.base.Get(tid); vt > val {
				val = vt
			}
			j++
		default:
			tid, val = v.s[i].tid, v.s[i].t
			if o.s[j].t > val {
				val = o.s[j].t
			}
			i++
			j++
		}
		if val != target.Get(tid) {
			out = append(out, entry{tid, val})
		}
	}
	// Components with no entry on either side agree with target by
	// invariant 3 (both bases ⊑ target pointwise), so dropping them is exact.
	v.scratch = v.s[:0]
	v.s = out
	v.base = target
	if n := target.Len(); n > v.span {
		v.span = n
	}
	if o.span > v.span {
		v.span = o.span
	}
	v.maybePromote()
}

// ForEach calls f for every semantically nonzero component of v in ascending
// tid order. Detector scans use it instead of Len()-bounded index loops so
// sparse and dense clocks visit identical components in identical order.
func (v *VC) ForEach(f func(TID, Time)) {
	if !v.sparse {
		for i, t := range v.t {
			if t != 0 {
				f(TID(i), t)
			}
		}
		return
	}
	i := 0
	for tid := 0; tid < v.base.Len(); tid++ {
		if i < len(v.s) && int(v.s[i].tid) == tid {
			if v.s[i].t != 0 {
				f(TID(tid), v.s[i].t)
			}
			i++
			continue
		}
		if t := v.base.t[tid]; t != 0 {
			f(TID(tid), t)
		}
	}
	for ; i < len(v.s); i++ {
		if v.s[i].t != 0 {
			f(v.s[i].tid, v.s[i].t)
		}
	}
}

// NextBase computes the next shared base for an epoch-collapse round: the
// component-wise minimum over the given clocks, clamped to never fall below
// prev (keeping the lineage pointwise monotone, invariant 3). The sweep is
// incremental for sparse clocks still on prev — O(total entries) — and pays
// O(span) only for clocks on other bases (threads forked since the last
// round, or clocks that promoted to dense).
func NextBase(prev *Base, vcs []*VC) *Base {
	span := prev.Len()
	for _, v := range vcs {
		if v.sparse {
			if n := v.base.Len(); n > span {
				span = n
			}
			if v.span > span {
				span = v.span
			}
		} else if n := len(v.t); n > span {
			span = n
		}
	}
	const inf = ^Time(0)
	nt := make([]Time, span)
	cnt := make([]int32, span)
	minE := make([]Time, span)
	for i := range minE {
		minE[i] = inf
	}
	var rest []*VC
	ks := int32(0) // sparse clocks expressed against prev
	for _, v := range vcs {
		if v.sparse && v.base == prev {
			ks++
			for _, e := range v.s {
				cnt[e.tid]++
				if e.t < minE[e.tid] {
					minE[e.tid] = e.t
				}
			}
			continue
		}
		rest = append(rest, v)
	}
	for tid := range nt {
		if ks == 0 {
			nt[tid] = inf
			continue
		}
		m := prev.Get(TID(tid)) // any prev-based clock without an entry
		if cnt[tid] == ks {
			m = minE[tid] // every prev-based clock overrides here
		} else if minE[tid] < m {
			m = minE[tid] // a loose entry sits below the base
		}
		nt[tid] = m
	}
	for _, v := range rest {
		for tid := range nt {
			if val := v.Get(TID(tid)); val < nt[tid] {
				nt[tid] = val
			}
		}
	}
	var raised []TID
	for tid := range nt {
		p := prev.Get(TID(tid))
		if nt[tid] == inf || nt[tid] < p {
			nt[tid] = p
		} else if nt[tid] > p {
			raised = append(raised, TID(tid))
		}
	}
	lin := &lineageTag{}
	if prev != nil {
		lin = prev.lin
		// Sever the grandparent link: NextBase's incremental path and
		// Rebase's fast path only ever look one generation back, so
		// without this every collapse round would chain-retain all
		// historical bases (span-sized arrays each).
		prev.prev = nil
	}
	return &Base{t: nt, gen: prev.Gen() + 1, lin: lin, prev: prev, raised: raised}
}

// Rebase re-expresses v against nb without changing its semantic value.
// The detector rebases thread clocks at each collapse round; sync clocks are
// never eagerly rebased — they adopt newer bases lazily when next joined.
// Dense clocks demote back to sparse when their diff against nb is small,
// which is how a thread that went dense at a full barrier returns to a
// one-entry clock once the barrier values enter the base.
func (v *VC) Rebase(nb *Base) {
	if nb == nil {
		return
	}
	if !v.sparse {
		v.demote(nb)
		return
	}
	if v.base == nb {
		return
	}
	if v.base == nb.prev {
		// Fast path: entries re-filtered against nb, plus fill-ins at the
		// components nb raised past its predecessor — O(|s| + |raised|).
		out := v.scratch[:0]
		i := 0
		for _, r := range nb.raised {
			for i < len(v.s) && v.s[i].tid < r {
				if v.s[i].t != nb.Get(v.s[i].tid) {
					out = append(out, v.s[i])
				}
				i++
			}
			if i < len(v.s) && v.s[i].tid == r {
				if v.s[i].t != nb.Get(r) {
					out = append(out, v.s[i])
				}
				i++
			} else {
				// v sat at the old base value here and nb moved past it; the
				// old value becomes an explicit (loose) entry.
				out = append(out, entry{r, v.base.Get(r)})
			}
		}
		for ; i < len(v.s); i++ {
			if v.s[i].t != nb.Get(v.s[i].tid) {
				out = append(out, v.s[i])
			}
		}
		v.scratch, v.s = v.s[:0], out
	} else {
		// General path: materialize semantic components against nb.
		span := v.span
		if n := nb.Len(); n > span {
			span = n
		}
		if n := v.base.Len(); n > span {
			span = n
		}
		out := v.scratch[:0]
		for tid := TID(0); int(tid) < span; tid++ {
			if val := v.sGet(tid); val != nb.Get(tid) {
				out = append(out, entry{tid, val})
			}
		}
		v.scratch, v.s = v.s[:0], out
	}
	v.base = nb
	if n := nb.Len(); n > v.span {
		v.span = n
	}
	v.maybePromote()
}

// demote re-expresses a dense clock sparsely against nb when the diff is at
// most span/demoteFrac components; larger diffs stay dense.
func (v *VC) demote(nb *Base) {
	span := len(v.t)
	if n := nb.Len(); n > span {
		span = n
	}
	if span == 0 {
		return
	}
	diffs := 0
	for tid := 0; tid < span; tid++ {
		var val Time
		if tid < len(v.t) {
			val = v.t[tid]
		}
		if val != nb.Get(TID(tid)) {
			diffs++
		}
	}
	if diffs*demoteFrac > span {
		return
	}
	out := v.scratch[:0]
	for tid := 0; tid < span; tid++ {
		var val Time
		if tid < len(v.t) {
			val = v.t[tid]
		}
		if val != nb.Get(TID(tid)) {
			out = append(out, entry{TID(tid), val})
		}
	}
	v.s, v.scratch = out, nil
	v.t = v.t[:0]
	v.base = nb
	v.span = span
	v.sparse = true
}

// adoptJoin sets a dense sparse-capable v to max(v, o) where o is sparse
// with a base, re-expressing the result against o's base. One O(span) pass;
// afterwards v is sparse again (unless the result itself crosses the density
// threshold), so a sync clock that promoted to dense early does not pin
// every later join to an O(span) fold.
func (v *VC) adoptJoin(o *VC) {
	if v.st != nil {
		v.st.Fallbacks++
	}
	nb := o.base
	span := len(v.t)
	if n := nb.Len(); n > span {
		span = n
	}
	if o.span > span {
		span = o.span
	}
	if k := len(o.s); k > 0 && int(o.s[k-1].tid)+1 > span {
		span = int(o.s[k-1].tid) + 1
	}
	out := v.scratch[:0]
	j := 0
	for tid := 0; tid < span; tid++ {
		bt := nb.Get(TID(tid))
		ov := bt // o's value: base unless an entry overrides
		if j < len(o.s) && int(o.s[j].tid) == tid {
			ov = o.s[j].t
			j++
		}
		val := ov
		if tid < len(v.t) && v.t[tid] > val {
			val = v.t[tid]
		}
		if val != bt {
			out = append(out, entry{TID(tid), val})
		}
	}
	v.scratch = v.s[:0]
	v.s = out
	v.t = v.t[:0]
	v.base = nb
	v.span = span
	v.sparse = true
	v.maybePromote()
}

// mEntry carries a merge candidate through the JoinAll tournament: the
// running max at tid plus how many target-based participants had an
// explicit entry there.
type mEntry struct {
	tid TID
	t   Time
	cnt int32
}

// JoinAll folds every src into dst. When dst and all srcs are sparse and
// each base is either nil or one common target base, it runs one tournament
// k-way merge over the sorted entry lists — O(E log k) for E total entries —
// instead of k sequential passes. Barrier departures and fork-all/join-all
// sync points hit exactly this case (children adopt the parent's base at
// fork and all thread clocks rebase together at collapse). Anything else
// falls back to sequential joins.
func JoinAll(dst *VC, srcs []*VC) {
	if len(srcs) == 0 {
		return
	}
	target := dst.base
	ok := dst.sparse
	if ok {
		for _, s := range srcs {
			if !s.sparse {
				ok = false
				break
			}
			if s.base == nil || s.base == target {
				continue
			}
			if target == nil {
				target = s.base
				continue
			}
			ok = false
			break
		}
	}
	if !ok {
		if dst.st != nil {
			dst.st.Fallbacks++
		}
		for _, s := range srcs {
			dst.Join(s)
		}
		return
	}
	// Seed the bracket. cnt marks entries of target-based participants: a
	// component where some target-based clock has NO entry contributes
	// target[tid] to the max; nil-based clocks contribute only zeros there.
	kB := int32(0)
	lists := make([][]mEntry, 0, len(srcs)+1)
	span := dst.span
	seed := func(v *VC) {
		var c int32
		if v.base == target && target != nil {
			kB++
			c = 1
		}
		if v.span > span {
			span = v.span
		}
		if len(v.s) == 0 {
			return
		}
		l := make([]mEntry, len(v.s))
		for i, e := range v.s {
			l[i] = mEntry{e.tid, e.t, c}
		}
		lists = append(lists, l)
	}
	seed(dst)
	for _, s := range srcs {
		seed(s)
	}
	// Tournament: pairwise merge rounds, max on duplicate tids.
	for len(lists) > 1 {
		next := lists[:0]
		for i := 0; i < len(lists); i += 2 {
			if i+1 == len(lists) {
				next = append(next, lists[i])
				break
			}
			next = append(next, mergeMax(lists[i], lists[i+1]))
		}
		lists = next
	}
	out := dst.scratch[:0]
	if len(lists) == 1 {
		for _, e := range lists[0] {
			val := e.t
			if e.cnt < kB {
				// Some target-based participant had no entry here, so the
				// target value itself joins the max.
				if bt := target.Get(e.tid); bt > val {
					val = bt
				}
			}
			if val != target.Get(e.tid) {
				out = append(out, entry{e.tid, val})
			}
		}
	}
	dst.scratch = dst.s[:0]
	dst.s = out
	dst.base = target
	if n := target.Len(); n > span {
		span = n
	}
	dst.span = span
	dst.maybePromote()
}

func mergeMax(a, b []mEntry) []mEntry {
	out := make([]mEntry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].tid < b[j].tid:
			out = append(out, a[i])
			i++
		case b[j].tid < a[i].tid:
			out = append(out, b[j])
			j++
		default:
			e := a[i]
			if b[j].t > e.t {
				e.t = b[j].t
			}
			e.cnt += b[j].cnt
			out = append(out, e)
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
