package clock

import (
	"fmt"
	"testing"
)

// model is the obviously-correct reference: a map from tid to Time.
type model map[TID]Time

func (m model) set(tid TID, t Time) {
	if t == 0 {
		delete(m, tid)
		return
	}
	m[tid] = t
}

func (m model) join(o model) {
	for tid, t := range o {
		if t > m[tid] {
			m[tid] = t
		}
	}
}

func checkAgainstModel(t *testing.T, label string, v *VC, m model, span TID) {
	t.Helper()
	for tid := TID(0); tid <= span; tid++ {
		if got, want := v.Get(tid), m[tid]; got != want {
			t.Fatalf("%s: Get(%d) = %d, want %d (clock %v)", label, tid, got, want, v)
		}
	}
	seen := model{}
	last := TID(-1)
	v.ForEach(func(tid TID, tm Time) {
		if tid <= last {
			t.Fatalf("%s: ForEach out of order: %d after %d", label, tid, last)
		}
		last = tid
		seen[tid] = tm
	})
	for tid, tm := range m {
		if tm != 0 && seen[tid] != tm {
			t.Fatalf("%s: ForEach missed tid %d (= %d, saw %d)", label, tid, tm, seen[tid])
		}
	}
	for tid, tm := range seen {
		if m[tid] != tm {
			t.Fatalf("%s: ForEach invented tid %d = %d (model %d)", label, tid, tm, m[tid])
		}
	}
}

func TestSparseBasicOps(t *testing.T) {
	var st Stats
	v := NewSparse(&st)
	m := model{}
	if !v.Sparse() {
		t.Fatal("NewSparse must start sparse")
	}
	if v.Get(900) != 0 {
		t.Fatal("fresh sparse clock must read 0 everywhere")
	}
	v.Set(900, 7)
	m.set(900, 7)
	v.Tick(3)
	m.set(3, 1)
	v.Tick(3)
	m.set(3, 2)
	checkAgainstModel(t, "basic", v, m, 1024)
	if v.Len() != 2 {
		t.Fatalf("sparse Len = %d, want 2 live entries", v.Len())
	}
	v.Set(900, 0)
	m.set(900, 0)
	if v.Len() != 1 {
		t.Fatalf("clearing a component must drop its entry, Len = %d", v.Len())
	}
}

func TestSparsePromotionThreshold(t *testing.T) {
	var st Stats
	v := NewSparse(&st)
	// Dense span 1024: entries stay sparse until they cover more than 1/4.
	v.Set(1023, 1)
	for i := TID(0); i < 200; i++ {
		v.Set(i, Time(i)+1)
	}
	if !v.Sparse() {
		t.Fatalf("201 entries over span 1024 must stay sparse")
	}
	for i := TID(200); i < 300; i++ {
		v.Set(i, Time(i)+1)
	}
	if v.Sparse() {
		t.Fatalf("301 entries over span 1024 must promote")
	}
	if st.Promotions != 1 {
		t.Fatalf("Promotions = %d, want 1", st.Promotions)
	}
	// Value preserved across promotion.
	if v.Get(1023) != 1 || v.Get(250) != 251 {
		t.Fatalf("promotion lost values: %v", v)
	}
	// Small clocks promote fast: span 8 with 5 entries goes dense.
	w := NewSparse(&st)
	for i := TID(0); i < 5; i++ {
		w.Set(i, 1)
	}
	if w.Sparse() {
		t.Fatal("5 entries over span 5 must promote")
	}
}

func TestSparseJoinMatrix(t *testing.T) {
	var st Stats
	mk := map[string]func() *VC{
		"dense":  func() *VC { return New(0) },
		"sparse": func() *VC { return NewSparse(&st) },
	}
	for vn, mkv := range mk {
		for on, mko := range mk {
			v, o := mkv(), mko()
			mv, mo := model{}, model{}
			v.Set(2, 9)
			mv.set(2, 9)
			v.Set(700, 3)
			mv.set(700, 3)
			o.Set(2, 4)
			mo.set(2, 4)
			o.Set(5, 11)
			mo.set(5, 11)
			o.Set(900, 2)
			mo.set(900, 2)
			v.Join(o)
			mv.join(mo)
			checkAgainstModel(t, vn+"←"+on, v, mv, 1024)
			checkAgainstModel(t, vn+"←"+on+" (src untouched)", o, mo, 1024)
		}
	}
}

// collapse runs one NextBase+Rebase round over the given clocks, mimicking
// the detector's collapse sweep, and returns the new base.
func collapse(prev *Base, vcs []*VC) *Base {
	nb := NextBase(prev, vcs)
	for _, v := range vcs {
		v.Rebase(nb)
	}
	return nb
}

func TestCollapseShrinksIdleEntries(t *testing.T) {
	var st Stats
	const n = 64
	vcs := make([]*VC, n)
	ms := make([]model, n)
	for i := range vcs {
		vcs[i] = NewSparse(&st)
		ms[i] = model{}
	}
	// Simulate a barrier: everyone's clock gets everyone's component.
	all := model{}
	for i := range vcs {
		all.set(TID(i), Time(i)+1)
	}
	for i := range vcs {
		for tid, tm := range all {
			vcs[i].Set(tid, tm)
		}
		ms[i].join(all)
	}
	// Post-barrier clocks are dense-ish; a collapse moves the common floor
	// into the base and strips the entries back down.
	base := collapse(nil, vcs)
	for i := range vcs {
		checkAgainstModel(t, fmt.Sprintf("post-collapse clock %d", i), vcs[i], ms[i], n+4)
		if vcs[i].Len() > 4 {
			t.Fatalf("clock %d still carries %d entries after collapse", i, vcs[i].Len())
		}
	}
	// A couple of live threads advance; another collapse only re-raises
	// their components.
	vcs[3].Tick(3)
	ms[3].set(3, ms[3][3]+1)
	vcs[7].Tick(7)
	ms[7].set(7, ms[7][7]+1)
	base = collapse(base, vcs)
	for i := range vcs {
		checkAgainstModel(t, fmt.Sprintf("round-2 clock %d", i), vcs[i], ms[i], n+4)
	}
	if st.Collapses != 0 {
		t.Fatalf("clock package must not count Collapses itself (detector does): %d", st.Collapses)
	}
}

func TestRebaseFastPathMatchesGeneral(t *testing.T) {
	var st Stats
	const n = 32
	mkWorld := func() ([]*VC, []model) {
		vcs := make([]*VC, n)
		ms := make([]model, n)
		for i := range vcs {
			vcs[i] = NewSparse(&st)
			ms[i] = model{}
			vcs[i].Tick(TID(i))
			ms[i].set(TID(i), 1)
		}
		return vcs, ms
	}
	vcs, ms := mkWorld()
	base := collapse(nil, vcs)
	// Everyone advances; thread 5 additionally learns of thread 9.
	for i := range vcs {
		vcs[i].Tick(TID(i))
		ms[i].set(TID(i), ms[i][TID(i)]+1)
	}
	vcs[5].Set(9, 2)
	ms[5].set(9, 2)
	base = collapse(base, vcs)
	if base.Gen() != 2 {
		t.Fatalf("generation = %d, want 2", base.Gen())
	}
	for i := range vcs {
		checkAgainstModel(t, fmt.Sprintf("clock %d", i), vcs[i], ms[i], n+4)
	}
	// A clock left on an older base (lazy sync clock) joins one on the new
	// base: the general rebase path inside Join must agree too.
	lazy := NewSparse(&st)
	lm := model{}
	lazy.Join(vcs[5])
	lm.join(ms[5])
	checkAgainstModel(t, "lazy adopter", lazy, lm, n+4)
}

func TestRebaseDemotesDenseClock(t *testing.T) {
	var st Stats
	const n = 64
	vcs := make([]*VC, n)
	for i := range vcs {
		vcs[i] = NewSparse(&st)
		vcs[i].Tick(TID(i))
	}
	// A full barrier: every clock joins every component, so all promote to
	// dense (n entries over span n).
	for i := range vcs {
		for j := 0; j < n; j++ {
			vcs[i].Set(TID(j), 1)
		}
		if vcs[i].Sparse() {
			t.Fatalf("setup: clock %d should have promoted", i)
		}
	}
	// Clock 0 then advances a little past the barrier.
	vcs[0].Tick(0)
	collapse(nil, vcs)
	if !vcs[0].Sparse() {
		t.Fatal("collapse must demote a dense clock that sits near the base")
	}
	if vcs[0].Len() != 1 {
		t.Fatalf("demoted clock should carry 1 entry, has %d", vcs[0].Len())
	}
	m := model{}
	for i := 0; i < n; i++ {
		m.set(TID(i), 1)
	}
	m.set(0, 2)
	checkAgainstModel(t, "demoted", vcs[0], m, n+4)
}

func TestJoinAllMatchesSequential(t *testing.T) {
	var st Stats
	const n = 40
	mk := func() ([]*VC, *VC) {
		srcs := make([]*VC, n)
		for i := range srcs {
			srcs[i] = NewSparse(&st)
			srcs[i].Tick(TID(i + 1))
			srcs[i].Tick(TID(i + 1))
			if i%3 == 0 {
				srcs[i].Set(TID((i+7)%n), 5)
			}
		}
		dst := NewSparse(&st)
		dst.Tick(0)
		return srcs, dst
	}
	srcs, dst := mk()
	srcs2 := make([]*VC, n)
	for i := range srcs {
		srcs2[i] = srcs[i].Clone()
	}
	seq := dst.Clone()
	for _, s := range srcs2 {
		seq.Join(s)
	}
	JoinAll(dst, srcs)
	for tid := TID(0); tid < n+8; tid++ {
		if dst.Get(tid) != seq.Get(tid) {
			t.Fatalf("JoinAll diverges at tid %d: %d vs %d", tid, dst.Get(tid), seq.Get(tid))
		}
	}
	// With a shared base in play (post-collapse), still identical.
	base := collapse(nil, srcs)
	_ = base
	dst2 := NewSparse(&st)
	dst2.Tick(0)
	seq2 := dst2.Clone()
	for _, s := range srcs {
		seq2.Join(s)
	}
	JoinAll(dst2, srcs)
	for tid := TID(0); tid < n+8; tid++ {
		if dst2.Get(tid) != seq2.Get(tid) {
			t.Fatalf("post-collapse JoinAll diverges at tid %d: %d vs %d", tid, dst2.Get(tid), seq2.Get(tid))
		}
	}
}

func TestCrossLineageJoinFallsBack(t *testing.T) {
	var st Stats
	a := []*VC{NewSparse(&st)}
	b := []*VC{NewSparse(&st)}
	a[0].Tick(0)
	b[0].Tick(1)
	collapse(nil, a)
	collapse(nil, b)
	before := st.Fallbacks
	a[0].Join(b[0])
	if st.Fallbacks != before+1 {
		t.Fatalf("cross-lineage join must count a fallback (got %d→%d)", before, st.Fallbacks)
	}
	if a[0].Get(0) != 1 || a[0].Get(1) != 1 {
		t.Fatalf("cross-lineage join wrong: %v", a[0])
	}
}

// TestClearNeverLeaksStaleEntries pins the pool-recycling contract: a clock
// that carried high-tid entries — and may have promoted to dense — reads
// all-zeros after Clear, in every representation, including after the
// re-grow that used to resurrect stale components.
func TestClearNeverLeaksStaleEntries(t *testing.T) {
	var st Stats
	v := NewSparse(&st)
	for i := TID(0); i < 1024; i += 64 {
		v.Set(i, Time(i)+9)
	}
	v.Set(1023, 77)
	v.Clear(8)
	if v.Len() != 0 {
		t.Fatalf("Clear left %d live entries", v.Len())
	}
	for i := TID(0); i < 1100; i++ {
		if v.Get(i) != 0 {
			t.Fatalf("stale entry leaked at tid %d after Clear", i)
		}
	}
	v.ForEach(func(tid TID, tm Time) { t.Fatalf("ForEach visited %d=%d after Clear", tid, tm) })

	// Promote, then Clear: a sparse-capable clock must return to sparse and
	// still read zero everywhere.
	for i := TID(0); i < 64; i++ {
		v.Set(i, 3)
	}
	if v.Sparse() {
		t.Fatal("setup: expected promotion")
	}
	v.Clear(1024)
	if !v.Sparse() {
		t.Fatal("Clear must return a sparse-capable clock to sparse form")
	}
	for i := TID(0); i < 1100; i++ {
		if v.Get(i) != 0 {
			t.Fatalf("stale dense component leaked at tid %d after Clear", i)
		}
	}

	// The dense-only regression from PR 3 still holds.
	d := New(0)
	d.Set(100, 5)
	d.Clear(4)
	d.Set(2, 1)
	for i := TID(0); i < 128; i++ {
		want := Time(0)
		if i == 2 {
			want = 1
		}
		if d.Get(i) != want {
			t.Fatalf("dense Clear leaked at tid %d", i)
		}
	}
}

func TestAssignAndCloneAcrossRepresentations(t *testing.T) {
	var st Stats
	s := NewSparse(&st)
	s.Set(9, 4)
	s.Set(500, 2)
	d := New(3)
	d.Set(1, 8)

	c := s.Clone()
	s.Set(9, 99)
	if c.Get(9) != 4 || c.Get(500) != 2 {
		t.Fatal("sparse Clone must be independent")
	}
	x := New(0)
	x.Assign(s)
	if x.Get(9) != 99 || x.Get(500) != 2 {
		t.Fatalf("Assign dense←sparse wrong: %v", x)
	}
	y := NewSparse(&st)
	y.Set(7, 7)
	y.Assign(d)
	if y.Get(1) != 8 || y.Get(7) != 0 {
		t.Fatalf("Assign sparse←dense wrong: %v", y)
	}
}

// FuzzVCJoinEquivalence drives three representations — dense, pure sparse
// (never collapsed), and delta (sparse with periodic collapse rounds) —
// through one randomized op sequence and asserts they agree on
// Get/Join/Tick/Compare at every step.
func FuzzVCJoinEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{2, 200, 40, 2, 201, 41, 3, 3, 3, 5, 0, 1})
	f.Add([]byte{1, 1, 1, 1, 1, 2, 2, 2, 3, 4, 4, 5, 0, 0, 0, 6, 6, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nclocks = 4
		const span = 48
		var stS, stD Stats
		dense := make([]*VC, nclocks)
		pure := make([]*VC, nclocks)
		delta := make([]*VC, nclocks)
		ms := make([]model, nclocks)
		for i := range dense {
			dense[i] = New(0)
			pure[i] = NewSparse(&stS)
			delta[i] = NewSparse(&stD)
			ms[i] = model{}
		}
		var base *Base
		next := func(k int) int {
			if len(data) == 0 {
				return 0
			}
			b := int(data[0])
			data = data[1:]
			return b % k
		}
		steps := 0
		for len(data) > 0 && steps < 300 {
			steps++
			op := next(6)
			c := next(nclocks)
			switch op {
			case 0, 1: // tick
				tid := TID(next(span))
				dense[c].Tick(tid)
				pure[c].Tick(tid)
				delta[c].Tick(tid)
				ms[c].set(tid, ms[c][tid]+1)
			case 2: // set
				tid := TID(next(span))
				val := Time(next(16))
				dense[c].Set(tid, val)
				pure[c].Set(tid, val)
				delta[c].Set(tid, val)
				ms[c].set(tid, val)
			case 3: // join
				o := next(nclocks)
				if o == c {
					o = (o + 1) % nclocks
				}
				dense[c].Join(dense[o])
				pure[c].Join(pure[o])
				delta[c].Join(delta[o])
				ms[c].join(ms[o])
			case 4: // collapse round over the delta world only
				base = collapse(base, delta)
			case 5: // join-all into c from everyone else
				var ds, ps, dl []*VC
				for i := range dense {
					if i == c {
						continue
					}
					ds = append(ds, dense[i])
					ps = append(ps, pure[i])
					dl = append(dl, delta[i])
					ms[c].join(ms[i])
				}
				JoinAll(dense[c], ds)
				JoinAll(pure[c], ps)
				JoinAll(delta[c], dl)
			}
			checkAgainstModel(t, fmt.Sprintf("dense clock %d (step %d)", c, steps), dense[c], ms[c], span+4)
			checkAgainstModel(t, fmt.Sprintf("pure-sparse clock %d (step %d)", c, steps), pure[c], ms[c], span+4)
			checkAgainstModel(t, fmt.Sprintf("delta clock %d (step %d)", c, steps), delta[c], ms[c], span+4)
		}
		// Pairwise ordering must agree across representations at the end.
		for i := 0; i < nclocks; i++ {
			for j := 0; j < nclocks; j++ {
				dl := dense[i].Leq(dense[j])
				pl := pure[i].Leq(pure[j])
				ll := delta[i].Leq(delta[j])
				if dl != pl || dl != ll {
					t.Fatalf("Leq(%d,%d) disagrees: dense=%v pure=%v delta=%v", i, j, dl, pl, ll)
				}
			}
		}
	})
}
