// Package clock provides the vector clocks and FastTrack epochs used by the
// slow-path happens-before race detector (§5 of the paper; algorithm after
// Flanagan & Freund's FastTrack and Google's ThreadSanitizer).
//
// A vector clock VC maps each thread to the count of that thread's completed
// synchronization intervals. An Epoch c@t is the lightweight scalar FastTrack
// uses for the overwhelmingly common same-thread and totally-ordered cases.
package clock

import "fmt"

// TID identifies a simulated thread. Thread ids are small dense integers
// assigned in spawn order, so vector clocks are slices indexed by TID.
type TID int32

// Time is one component of a vector clock.
type Time uint32

// Epoch packs a (thread, time) pair: the scalar clock FastTrack stores for
// a variable's last write and, in the common case, its last read.
type Epoch uint64

// NoEpoch is the zero epoch, meaning "never accessed".
const NoEpoch Epoch = 0

// MakeEpoch builds the epoch t@tid. Time zero is reserved so that NoEpoch is
// distinguishable; thread clocks start at 1.
func MakeEpoch(tid TID, t Time) Epoch {
	return Epoch(uint64(tid)<<32 | uint64(t))
}

// TID returns the thread component of e.
func (e Epoch) TID() TID { return TID(e >> 32) }

// Time returns the clock component of e.
func (e Epoch) Time() Time { return Time(e & 0xffffffff) }

// String renders e in FastTrack's c@t notation.
func (e Epoch) String() string {
	if e == NoEpoch {
		return "⊥"
	}
	return fmt.Sprintf("%d@%d", e.Time(), e.TID())
}

// VC is a grow-on-demand vector clock. The zero value is the all-zeros clock
// in the dense representation. NewSparse builds the sparse/delta form
// (sparse.go): sorted tid→Time entries overriding a shared dense Base, with
// automatic promotion back to the dense form past a density threshold. Both
// forms answer the same API with identical semantics.
type VC struct {
	t []Time // dense components (dense mode)

	sparse  bool    // representation flag; see sparse.go
	s       []entry // sorted explicit components, overriding base
	scratch []entry // spare entry array recycled by merges (never aliases s)
	base    *Base   // shared dense reference vector (nil = all-zeros bottom)
	span    int     // upper bound on live component count, for promotion ratio
	st      *Stats  // shared transition counters; marks sparse-capable clocks
}

// New returns a vector clock with capacity for n threads.
func New(n int) *VC { return &VC{t: make([]Time, n)} }

// Get returns the component for tid (zero if beyond current length).
func (v *VC) Get(tid TID) Time {
	if v.sparse {
		return v.sGet(tid)
	}
	if int(tid) >= len(v.t) {
		return 0
	}
	return v.t[tid]
}

// Set assigns component tid, growing the clock as needed.
func (v *VC) Set(tid TID, t Time) {
	if v.sparse {
		v.sSet(tid, t)
		return
	}
	v.grow(int(tid) + 1)
	v.t[tid] = t
}

// Tick increments component tid and returns the new value. A thread ticks
// its own component at every lock release / signal / fork, opening a new
// synchronization interval.
func (v *VC) Tick(tid TID) Time {
	if v.sparse {
		nt := v.sGet(tid) + 1
		v.sSet(tid, nt)
		return nt
	}
	v.grow(int(tid) + 1)
	v.t[tid]++
	return v.t[tid]
}

func (v *VC) grow(n int) {
	if len(v.t) >= n {
		return
	}
	if cap(v.t) >= n {
		// Re-extending into capacity must zero explicitly: Clear may have
		// truncated over stale components.
		old := len(v.t)
		v.t = v.t[:n]
		for i := old; i < n; i++ {
			v.t[i] = 0
		}
		return
	}
	nt := make([]Time, n)
	copy(nt, v.t)
	v.t = nt
}

// Clear resets v to the all-zeros clock of n components, reusing backing
// arrays when large enough. The shadow-memory read-vector pool uses it to
// recycle clocks without reallocating. Sparse-capable clocks (created by
// NewSparse with a Stats) reset to the empty sparse form even if they had
// promoted to dense, so a recycled clock can never leak stale high-tid
// entries and stays cheap to re-inflate at large thread counts.
func (v *VC) Clear(n int) {
	if v.sparse || v.st != nil {
		v.sparse = true
		v.s = v.s[:0]
		v.base = nil
		v.span = n
		v.t = v.t[:0]
		return
	}
	if cap(v.t) < n {
		v.t = make([]Time, n)
		return
	}
	v.t = v.t[:n]
	for i := range v.t {
		v.t[i] = 0
	}
}

// Len returns the number of components currently materialized: the dense
// length, or the number of explicit entries of a sparse clock — which after
// an epoch-collapse tracks live threads, not peak TIDs.
func (v *VC) Len() int {
	if v.sparse {
		return len(v.s)
	}
	return len(v.t)
}

// Join sets v to the component-wise maximum of v and o: the happens-before
// transfer performed at lock acquire / wait / join.
func (v *VC) Join(o *VC) {
	if !v.sparse && !o.sparse {
		v.grow(len(o.t))
		for i, t := range o.t {
			if t > v.t[i] {
				v.t[i] = t
			}
		}
		return
	}
	if !v.sparse {
		if o.base != nil && v.st != nil {
			// dense ← based-sparse: folding o costs O(base span) via
			// ForEach on every join, forever — a clock that promoted
			// before the first collapse would otherwise never heal. Pay
			// one O(span) pass to express the join result against o's
			// base and return to sparse form.
			v.adoptJoin(o)
			return
		}
		// dense ← baseless sparse: fold o's entries in.
		o.ForEach(func(tid TID, t Time) {
			if t > v.Get(tid) {
				v.Set(tid, t)
			}
		})
		return
	}
	if !o.sparse {
		// sparse ← dense: the dense side carries no base to merge against;
		// fold its nonzero components in one at a time. Folding (rather
		// than promoting v) keeps density from spreading virally through
		// join chains — v promotes only if its own density threshold says
		// so, via the sSet inside.
		if v.st != nil {
			v.st.Fallbacks++
		}
		if n := len(o.t); n > v.span {
			v.span = n
		}
		// Get/Set dispatch on representation: sSet may promote v mid-fold
		// once the added entries cross its density threshold.
		o.ForEach(func(tid TID, t Time) {
			if t > v.Get(tid) {
				v.Set(tid, t)
			}
		})
		return
	}
	if baseLeq(v.base, o.base) || baseLeq(o.base, v.base) {
		v.joinSparse(o)
		return
	}
	// Unrelated lineages: no order known between the bases; fold o's
	// components in one at a time.
	if v.st != nil {
		v.st.Fallbacks++
	}
	o.ForEach(func(tid TID, t Time) {
		if t > v.Get(tid) {
			v.Set(tid, t)
		}
	})
}

// Assign copies o's value (and representation) into v.
func (v *VC) Assign(o *VC) {
	if o.sparse {
		v.sparse = true
		v.t = v.t[:0]
		v.s = append(v.s[:0], o.s...)
		v.base = o.base
		v.span = o.span
		return
	}
	v.sparse = false
	v.s = v.s[:0]
	v.base = nil
	v.t = append(v.t[:0], o.t...)
}

// Clone returns an independent copy of v.
func (v *VC) Clone() *VC {
	c := &VC{sparse: v.sparse, base: v.base, span: v.span, st: v.st}
	if v.sparse {
		c.s = append([]entry(nil), v.s...)
	} else {
		c.t = append([]Time(nil), v.t...)
	}
	return c
}

// Epoch returns tid's current epoch in v.
func (v *VC) Epoch(tid TID) Epoch { return MakeEpoch(tid, v.Get(tid)) }

// LeqEpoch reports e ⊑ v: whether the event stamped e happens before (or is)
// the point whose clock is v. This is FastTrack's O(1) ordering test.
func (v *VC) LeqEpoch(e Epoch) bool {
	if e == NoEpoch {
		return true
	}
	return e.Time() <= v.Get(e.TID())
}

// Leq reports whether v ⊑ o component-wise.
func (v *VC) Leq(o *VC) bool {
	if !v.sparse && !o.sparse {
		for i, t := range v.t {
			if t > o.Get(TID(i)) {
				return false
			}
		}
		return true
	}
	ok := true
	v.ForEach(func(tid TID, t Time) {
		if t > o.Get(tid) {
			ok = false
		}
	})
	return ok
}

// Concurrent reports whether neither clock is ordered before the other.
func (v *VC) Concurrent(o *VC) bool { return !v.Leq(o) && !o.Leq(v) }

// String renders the clock as [t0 t1 ...], materializing sparse clocks.
func (v *VC) String() string {
	if !v.sparse {
		return fmt.Sprint(v.t)
	}
	n := v.span
	if b := v.base.Len(); b > n {
		n = b
	}
	if k := len(v.s); k > 0 && int(v.s[k-1].tid)+1 > n {
		n = int(v.s[k-1].tid) + 1
	}
	out := make([]Time, n)
	if v.base != nil {
		copy(out, v.base.t)
	}
	for _, e := range v.s {
		out[e.tid] = e.t
	}
	return fmt.Sprint(out)
}
