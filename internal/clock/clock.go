// Package clock provides the vector clocks and FastTrack epochs used by the
// slow-path happens-before race detector (§5 of the paper; algorithm after
// Flanagan & Freund's FastTrack and Google's ThreadSanitizer).
//
// A vector clock VC maps each thread to the count of that thread's completed
// synchronization intervals. An Epoch c@t is the lightweight scalar FastTrack
// uses for the overwhelmingly common same-thread and totally-ordered cases.
package clock

import "fmt"

// TID identifies a simulated thread. Thread ids are small dense integers
// assigned in spawn order, so vector clocks are slices indexed by TID.
type TID int32

// Time is one component of a vector clock.
type Time uint32

// Epoch packs a (thread, time) pair: the scalar clock FastTrack stores for
// a variable's last write and, in the common case, its last read.
type Epoch uint64

// NoEpoch is the zero epoch, meaning "never accessed".
const NoEpoch Epoch = 0

// MakeEpoch builds the epoch t@tid. Time zero is reserved so that NoEpoch is
// distinguishable; thread clocks start at 1.
func MakeEpoch(tid TID, t Time) Epoch {
	return Epoch(uint64(tid)<<32 | uint64(t))
}

// TID returns the thread component of e.
func (e Epoch) TID() TID { return TID(e >> 32) }

// Time returns the clock component of e.
func (e Epoch) Time() Time { return Time(e & 0xffffffff) }

// String renders e in FastTrack's c@t notation.
func (e Epoch) String() string {
	if e == NoEpoch {
		return "⊥"
	}
	return fmt.Sprintf("%d@%d", e.Time(), e.TID())
}

// VC is a grow-on-demand vector clock. The zero value is the all-zeros clock.
type VC struct {
	t []Time
}

// New returns a vector clock with capacity for n threads.
func New(n int) *VC { return &VC{t: make([]Time, n)} }

// Get returns the component for tid (zero if beyond current length).
func (v *VC) Get(tid TID) Time {
	if int(tid) >= len(v.t) {
		return 0
	}
	return v.t[tid]
}

// Set assigns component tid, growing the clock as needed.
func (v *VC) Set(tid TID, t Time) {
	v.grow(int(tid) + 1)
	v.t[tid] = t
}

// Tick increments component tid and returns the new value. A thread ticks
// its own component at every lock release / signal / fork, opening a new
// synchronization interval.
func (v *VC) Tick(tid TID) Time {
	v.grow(int(tid) + 1)
	v.t[tid]++
	return v.t[tid]
}

func (v *VC) grow(n int) {
	if len(v.t) >= n {
		return
	}
	if cap(v.t) >= n {
		// Re-extending into capacity must zero explicitly: Clear may have
		// truncated over stale components.
		old := len(v.t)
		v.t = v.t[:n]
		for i := old; i < n; i++ {
			v.t[i] = 0
		}
		return
	}
	nt := make([]Time, n)
	copy(nt, v.t)
	v.t = nt
}

// Clear resets v to the all-zeros clock of n components, reusing the backing
// array when it is large enough. The shadow-memory read-vector pool uses it
// to recycle clocks without reallocating.
func (v *VC) Clear(n int) {
	if cap(v.t) < n {
		v.t = make([]Time, n)
		return
	}
	v.t = v.t[:n]
	for i := range v.t {
		v.t[i] = 0
	}
}

// Len returns the number of components currently materialized.
func (v *VC) Len() int { return len(v.t) }

// Join sets v to the component-wise maximum of v and o: the happens-before
// transfer performed at lock acquire / wait / join.
func (v *VC) Join(o *VC) {
	v.grow(len(o.t))
	for i, t := range o.t {
		if t > v.t[i] {
			v.t[i] = t
		}
	}
}

// Assign copies o into v.
func (v *VC) Assign(o *VC) {
	v.t = v.t[:0]
	v.t = append(v.t, o.t...)
}

// Clone returns an independent copy of v.
func (v *VC) Clone() *VC {
	c := &VC{t: make([]Time, len(v.t))}
	copy(c.t, v.t)
	return c
}

// Epoch returns tid's current epoch in v.
func (v *VC) Epoch(tid TID) Epoch { return MakeEpoch(tid, v.Get(tid)) }

// LeqEpoch reports e ⊑ v: whether the event stamped e happens before (or is)
// the point whose clock is v. This is FastTrack's O(1) ordering test.
func (v *VC) LeqEpoch(e Epoch) bool {
	if e == NoEpoch {
		return true
	}
	return e.Time() <= v.Get(e.TID())
}

// Leq reports whether v ⊑ o component-wise.
func (v *VC) Leq(o *VC) bool {
	for i, t := range v.t {
		if t > o.Get(TID(i)) {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither clock is ordered before the other.
func (v *VC) Concurrent(o *VC) bool { return !v.Leq(o) && !o.Leq(v) }

// String renders the clock as [t0 t1 ...].
func (v *VC) String() string { return fmt.Sprint(v.t) }
