// Package cost defines the cycle-accounting model that stands in for
// wall-clock time on the paper's Haswell testbed. Every simulated
// instruction and every detector action charges cycles to the executing
// thread's virtual clock; reported "runtime overhead" is the ratio of final
// virtual makespans, matching the paper's relative measurements (Table 1,
// Figures 7–9, 12).
//
// Absolute values are arbitrary; only ratios matter. The defaults are chosen
// so that an access-dense workload under full happens-before detection slows
// down by roughly an order of magnitude (the paper's TSan geomean is 11.68x)
// while transactional execution costs a small fraction of that.
package cost

// Model is the table of per-event cycle charges.
type Model struct {
	// Application-level base costs (uninstrumented execution).
	Access      int64 // one load or store
	LoopBranch  int64 // loop back-edge
	LockOp      int64 // lock or unlock
	SignalOp    int64 // signal (semaphore post)
	WaitOp      int64 // wait (semaphore pend), excluding blocked time
	BarrierOp   int64 // barrier arrival/departure bookkeeping
	SyscallMin  int64 // floor for any system call
	WakeLatency int64 // scheduler latency added when a blocked thread wakes

	// Slow-path (ThreadSanitizer-equivalent) instrumentation costs.
	SlowAccessHook int64 // shadow lookup + happens-before comparison
	SlowSyncHook   int64 // vector-clock work at a sync operation

	// Fast-path (HTM) costs.
	XBegin         int64 // xbegin + reading the TxFail flag
	XEnd           int64 // xend
	FastAccessHook int64 // the instrumented hook that "does nothing" on fast path
	FastSyncHook   int64 // happens-before tracking kept on during fast path (§5)
	AbortPenalty   int64 // pipeline flush + register restore on any abort
	TxFailWrite    int64 // the non-transactional store that kills in-flight txns

	// Sampling baseline.
	SampleGate int64 // cost of the sampling decision for a skipped access
}

// Default returns the calibrated model used by all experiments.
func Default() Model {
	return Model{
		Access:      1,
		LoopBranch:  1,
		LockOp:      15,
		SignalOp:    20,
		WaitOp:      20,
		BarrierOp:   40,
		SyscallMin:  20,
		WakeLatency: 25,

		SlowAccessHook: 11,
		SlowSyncHook:   60,

		XBegin:         55,
		XEnd:           45,
		FastAccessHook: 0, // folded into xbegin/xend; hooks are branches the predictor eats
		FastSyncHook:   25,
		AbortPenalty:   160,
		TxFailWrite:    25,

		SampleGate: 1,
	}
}
