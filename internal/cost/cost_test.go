package cost

import "testing"

// The cost model only needs to satisfy relative-order invariants: the
// absolute numbers are arbitrary, but the relations below are what the
// evaluation's shape rests on.
func TestDefaultModelInvariants(t *testing.T) {
	m := Default()

	if m.Access <= 0 || m.LoopBranch <= 0 {
		t.Fatal("base costs must be positive")
	}
	if m.SlowAccessHook < 5*m.Access {
		t.Error("shadow checks must dwarf a plain access, or TSan overheads collapse")
	}
	if m.XBegin+m.XEnd <= m.SlowAccessHook {
		t.Error("transaction management must cost more than one shadow check (the short-transaction pathology needs it)")
	}
	if m.FastSyncHook >= m.SlowSyncHook {
		t.Error("fast-path HB tracking must be cheaper than full slow-path sync instrumentation (§8.2)")
	}
	if m.AbortPenalty <= m.XBegin {
		t.Error("an abort (pipeline flush + restore) must cost more than a begin")
	}
	if m.SyscallMin <= m.Access {
		t.Error("a kernel crossing must dwarf a user-space access")
	}
	if m.SampleGate >= m.SlowAccessHook {
		t.Error("the sampling gate must be near-free or sampling cannot save anything")
	}
	if m.LockOp <= 0 || m.SignalOp <= 0 || m.WaitOp <= 0 || m.BarrierOp <= 0 {
		t.Fatal("sync base costs must be positive")
	}
	if m.WakeLatency <= 0 || m.TxFailWrite <= 0 {
		t.Fatal("latencies must be positive")
	}
}
