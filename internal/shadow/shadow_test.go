package shadow

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/memmodel"
)

func TestMemoryGranularity(t *testing.T) {
	m := NewMemory()
	w1 := m.Word(0)
	w2 := m.Word(7) // same 8-byte granule
	w3 := m.Word(8) // next granule
	if w1 != w2 {
		t.Fatal("addresses within one granule must share state")
	}
	if w1 == w3 {
		t.Fatal("different granules must not share state")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestPeek(t *testing.T) {
	m := NewMemory()
	if m.Peek(64) != nil {
		t.Fatal("Peek must not allocate")
	}
	m.Word(64)
	if m.Peek(64) == nil {
		t.Fatal("Peek must find allocated state")
	}
}

func TestInflate(t *testing.T) {
	w := &Word{R: clock.MakeEpoch(2, 5), RSite: 42}
	w.Inflate(4)
	if !w.ReadShared() {
		t.Fatal("not read-shared after inflate")
	}
	if w.RVC.Get(2) != 5 {
		t.Fatalf("seed read epoch lost: %v", w.RVC)
	}
	if w.RSiteOf(2) != 42 {
		t.Fatalf("seed read site lost: %d", w.RSiteOf(2))
	}
	// Idempotent.
	w.Inflate(4)
	if w.RVC.Get(2) != 5 {
		t.Fatal("second inflate clobbered state")
	}
}

func TestRecordSharedRead(t *testing.T) {
	w := &Word{}
	w.Inflate(2)
	w.RecordSharedRead(5, 9, 77) // beyond initial size: must grow
	if w.RVC.Get(5) != 9 || w.RSiteOf(5) != 77 {
		t.Fatal("shared read not recorded")
	}
	if w.RSiteOf(9) != 0 {
		t.Fatal("unknown tid must read zero site")
	}
}

func TestCellStoreRefreshSameThreadKind(t *testing.T) {
	s := NewCellStore(4, 1)
	a := memmodel.Addr(128)
	s.Add(a, Cell{E: clock.MakeEpoch(1, 1), Site: 10, Write: true})
	s.Add(a, Cell{E: clock.MakeEpoch(1, 2), Site: 11, Write: true})
	cells := s.Cells(a)
	if len(cells) != 1 {
		t.Fatalf("same thread+kind must refresh, got %d cells", len(cells))
	}
	if cells[0].E.Time() != 2 || cells[0].Site != 11 {
		t.Fatalf("refresh kept stale record: %+v", cells[0])
	}
}

func TestCellStoreKeepsDistinctKinds(t *testing.T) {
	s := NewCellStore(4, 1)
	a := memmodel.Addr(128)
	s.Add(a, Cell{E: clock.MakeEpoch(1, 1), Write: true})
	s.Add(a, Cell{E: clock.MakeEpoch(1, 1), Write: false})
	s.Add(a, Cell{E: clock.MakeEpoch(2, 1), Write: true})
	if len(s.Cells(a)) != 3 {
		t.Fatalf("distinct (thread,kind) records must coexist, got %d", len(s.Cells(a)))
	}
}

func TestCellStoreEvictsWhenFull(t *testing.T) {
	s := NewCellStore(2, 1)
	a := memmodel.Addr(0)
	if s.Add(a, Cell{E: clock.MakeEpoch(0, 1), Write: true}) {
		t.Fatal("no eviction while filling")
	}
	if s.Add(a, Cell{E: clock.MakeEpoch(1, 1), Write: true}) {
		t.Fatal("no eviction while filling")
	}
	if !s.Add(a, Cell{E: clock.MakeEpoch(2, 1), Write: true}) {
		t.Fatal("third distinct record must evict")
	}
	if len(s.Cells(a)) != 2 {
		t.Fatalf("bounded at N=2, got %d", len(s.Cells(a)))
	}
}

func TestCellStoreReset(t *testing.T) {
	s := NewCellStore(2, 1)
	s.Add(0, Cell{E: clock.MakeEpoch(0, 1)})
	s.Reset()
	if len(s.Cells(0)) != 0 {
		t.Fatal("Reset did not clear records")
	}
}

func TestCellStoreBadNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N<=0 must panic")
		}
	}()
	NewCellStore(0, 1)
}

func TestMemoryReset(t *testing.T) {
	m := NewMemory()
	m.Word(0)
	m.Reset()
	if m.Len() != 0 {
		t.Fatal("Reset did not clear words")
	}
}

// TestPoolRecyclingNeverLeaksSparseEntries pins the pool/Clear contract for
// sparse read vectors: a recycled clock that carried high-tid entries — and
// may have promoted to dense during a wide read-shared episode — must read
// all-zeros when Inflate hands it to the next word, even when an
// epoch-collapse has since shrunk the live thread count.
func TestPoolRecyclingNeverLeaksSparseEntries(t *testing.T) {
	var st clock.Stats
	m := NewMemory()
	m.UseSparseClocks(&st)

	// Word A goes read-shared with a long, dense tail of readers.
	a := m.Word(0x100)
	m.Inflate(a, 1024)
	for tid := clock.TID(0); tid < 1024; tid += 3 {
		a.RecordSharedRead(tid, clock.Time(tid)+1, SiteID(tid%50+1))
	}
	if a.RVC.Sparse() {
		t.Fatal("setup: a wide read vector should have promoted to dense")
	}
	// Write-clears-reads returns the vector to the pool.
	m.ClearReads(a)

	// Word B inflates from the pool at a much smaller live-thread count.
	b := m.Word(0x200)
	b.R = clock.MakeEpoch(2, 7)
	m.Inflate(b, 8)
	if got := m.Stats().PoolHits; got != 1 {
		t.Fatalf("expected a pool hit, stats %+v", m.Stats())
	}
	if !b.RVC.Sparse() {
		t.Fatal("recycled clock must come back in sparse form")
	}
	for tid := clock.TID(0); tid < 1100; tid++ {
		want := clock.Time(0)
		if tid == 2 {
			want = 7 // the seeded exclusive-read epoch
		}
		if got := b.RVC.Get(tid); got != want {
			t.Fatalf("stale entry leaked: recycled RVC.Get(%d) = %d, want %d", tid, got, want)
		}
		if tid != 2 && b.RSiteOf(tid) != 0 {
			t.Fatalf("stale site leaked at tid %d", tid)
		}
	}
}
