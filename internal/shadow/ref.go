package shadow

import (
	"repro/internal/clock"
	"repro/internal/memmodel"
	"repro/internal/prng"
)

// This file preserves the original hash-map shadow layouts. They are not used
// by the runtimes; they exist as the behavioural reference the paged
// implementations are differentially tested against (identical races, Len
// and Peek results — see diff tests in this package and internal/detect) and
// as the "before" side of the internal/bench before/after measurements.

// MapMemory is the original map-of-pointers shadow memory: one heap-allocated
// Word per touched granule, found by hashing. Reference implementation only.
type MapMemory struct {
	words map[uint64]*Word
}

// NewMapMemory returns an empty map-backed shadow memory.
func NewMapMemory() *MapMemory { return &MapMemory{words: make(map[uint64]*Word)} }

// Word returns the state for the granule containing a, allocating if needed.
func (m *MapMemory) Word(a memmodel.Addr) *Word {
	g := memmodel.WordOf(a)
	w := m.words[g]
	if w == nil {
		w = &Word{}
		m.words[g] = w
	}
	return w
}

// Peek returns the state for a's granule or nil if never accessed.
func (m *MapMemory) Peek(a memmodel.Addr) *Word { return m.words[memmodel.WordOf(a)] }

// Len returns the number of granules with state.
func (m *MapMemory) Len() int { return len(m.words) }

// Reset discards all state.
func (m *MapMemory) Reset() { m.words = make(map[uint64]*Word) }

// Inflate mirrors Memory.Inflate without pooling.
func (m *MapMemory) Inflate(w *Word, threads int) { w.Inflate(threads) }

// ClearReads mirrors Memory.ClearReads without pooling.
func (m *MapMemory) ClearReads(w *Word) {
	w.R, w.RVC, w.RSites = clock.NoEpoch, nil, nil
}

// MapCellStore is the original map-of-slices bounded store. It draws
// replacement victims from the same splitmix64 stream as CellStore, so the
// two make identical eviction choices for identical call sequences.
// Reference implementation only.
type MapCellStore struct {
	n     int
	cells map[uint64][]Cell
	rng   prng.PRNG
}

// NewMapCellStore returns a map-backed store with n cells per granule.
func NewMapCellStore(n int, seed int64) *MapCellStore {
	if n <= 0 {
		panic("shadow: cell count must be positive")
	}
	return &MapCellStore{n: n, cells: make(map[uint64][]Cell), rng: prng.New(uint64(seed))}
}

// Cells returns the current records for a's granule.
func (s *MapCellStore) Cells(a memmodel.Addr) []Cell {
	return s.cells[memmodel.WordOf(a)]
}

// Add records c for a's granule, evicting a random cell if full.
func (s *MapCellStore) Add(a memmodel.Addr, c Cell) (evicted bool) {
	g := memmodel.WordOf(a)
	cs := s.cells[g]
	for i := range cs {
		if cs[i].E.TID() == c.E.TID() && cs[i].Write == c.Write {
			cs[i] = c
			return false
		}
	}
	if len(cs) < s.n {
		s.cells[g] = append(cs, c)
		return false
	}
	cs[s.rng.Intn(int64(len(cs)))] = c
	return true
}

// Reset discards all records.
func (s *MapCellStore) Reset() { s.cells = make(map[uint64][]Cell) }
