package shadow

// The slow-path detectors key all per-variable state by 8-byte granule index
// (memmodel.WordOf). Granule indexes are produced by a bump allocator, so
// they are clustered and near-dense: a hash map pays a hash + bucket probe +
// pointer chase on every single access, while a two-level page table pays two
// array indexes. PageTable is that table, generic over the per-granule state
// so the FastTrack Word store, the Djit⁺ per-variable vectors, and the
// Eraser lockset states all share one layout.

const (
	// PageShift fixes the page span: 1<<PageShift granules (512, covering
	// 4 KiB of application address space — one application page) of inline
	// T values per page, allocated on first touch. Larger spans amortize
	// better on dense sweeps but waste zeroing work on sparse address
	// patterns; 4 KiB is the measured sweet spot on the Table 1 workloads.
	PageShift = 9
	// PageSize is the number of granules per page.
	PageSize = 1 << PageShift

	pageMask = PageSize - 1

	// maxDir bounds the directory the fast path indexes directly: 1<<23
	// pages cover 32 GiB of application address space. Granules beyond it
	// (nothing the bump allocator produces, but the structure must not
	// explode on a hostile address) fall back to a sparse map of pages.
	maxDir = 1 << 23
)

// PageTable is a two-level paged store of T keyed by granule index. The zero
// value is an empty table. Pages are inline arrays of T allocated on first
// touch; pointers returned by Get and Peek stay valid until Reset (pages are
// never moved or freed while reachable).
type PageTable[T any] struct {
	dir    []*[PageSize]T
	far    map[uint64]*[PageSize]T // pages beyond maxDir, if any
	allocs uint64
}

// Get returns the entry for granule g, allocating its page if needed.
func (pt *PageTable[T]) Get(g uint64) *T {
	d := g >> PageShift
	if d < uint64(len(pt.dir)) {
		if pg := pt.dir[d]; pg != nil {
			return &pg[g&pageMask]
		}
	}
	return pt.getSlow(g, d)
}

func (pt *PageTable[T]) getSlow(g, d uint64) *T {
	if d >= maxDir {
		if pt.far == nil {
			pt.far = make(map[uint64]*[PageSize]T)
		}
		pg := pt.far[d]
		if pg == nil {
			pg = new([PageSize]T)
			pt.far[d] = pg
			pt.allocs++
		}
		return &pg[g&pageMask]
	}
	if d >= uint64(len(pt.dir)) {
		nd := make([]*[PageSize]T, d+1)
		copy(nd, pt.dir)
		pt.dir = nd
	}
	pg := new([PageSize]T)
	pt.dir[d] = pg
	pt.allocs++
	return &pg[g&pageMask]
}

// Peek returns the entry for granule g, or nil when its page was never
// allocated. It never allocates.
func (pt *PageTable[T]) Peek(g uint64) *T {
	d := g >> PageShift
	if d < uint64(len(pt.dir)) {
		if pg := pt.dir[d]; pg != nil {
			return &pg[g&pageMask]
		}
		return nil
	}
	if pg := pt.far[d]; pg != nil {
		return &pg[g&pageMask]
	}
	return nil
}

// Reset drops every page in O(pages) work; the next touch reallocates.
func (pt *PageTable[T]) Reset() {
	for i := range pt.dir {
		pt.dir[i] = nil
	}
	pt.far = nil
}

// Allocs returns the cumulative number of pages allocated (Reset does not
// rewind it); the observability layer exports it as a counter.
func (pt *PageTable[T]) Allocs() uint64 { return pt.allocs }
