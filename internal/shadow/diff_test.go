package shadow

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/memmodel"
	"repro/internal/prng"
)

// The paged stores must be observationally identical to the original
// map-backed layouts (kept as MapMemory / MapCellStore). These tests drive
// both sides with the same randomized operation sequences and compare every
// observable: Len, Peek, full word state, cell contents, eviction decisions.

// wordsEqual compares the observable FastTrack state of two words.
func wordsEqual(a, b *Word) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.W != b.W || a.R != b.R || a.WSite != b.WSite || a.RSite != b.RSite {
		return false
	}
	if a.ReadShared() != b.ReadShared() {
		return false
	}
	if a.ReadShared() {
		n := a.RVC.Len()
		if m := b.RVC.Len(); m > n {
			n = m
		}
		for t := clock.TID(0); int(t) < n; t++ {
			if a.RVC.Get(t) != b.RVC.Get(t) || a.RSiteOf(t) != b.RSiteOf(t) {
				return false
			}
		}
	}
	return true
}

// diffAddrs mixes granules within one page, across neighbouring pages, and
// beyond the directory bound (the far-map fallback path).
func diffAddrs() []memmodel.Addr {
	var out []memmodel.Addr
	for i := 0; i < 24; i++ {
		out = append(out, memmodel.Addr(0x1000+uint64(i)*memmodel.WordSize))
	}
	for i := 0; i < 8; i++ {
		out = append(out, memmodel.Addr(uint64(i+1)<<(PageShift+3)))
	}
	// Granule index ≥ maxDir*PageSize: address beyond the flat directory.
	far := memmodel.Addr(uint64(maxDir) << (PageShift + 3))
	for i := 0; i < 8; i++ {
		out = append(out, far+memmodel.Addr(uint64(i)*memmodel.WordSize*512))
	}
	return out
}

func TestPagedMemoryMatchesMapMemory(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := prng.New(seed)
		paged, ref := NewMemory(), NewMapMemory()
		addrs := diffAddrs()
		for op := 0; op < 4000; op++ {
			a := addrs[rng.Intn(int64(len(addrs)))]
			tid := clock.TID(rng.Intn(4))
			site := SiteID(rng.Intn(32))
			e := clock.MakeEpoch(tid, clock.Time(1+rng.Intn(100)))
			pw, rw := paged.Word(a), ref.Word(a)
			switch rng.Intn(5) {
			case 0: // write + write-clears-reads
				pw.W, pw.WSite = e, site
				rw.W, rw.WSite = e, site
				paged.ClearReads(pw)
				ref.ClearReads(rw)
			case 1: // exclusive read
				pw.R, pw.RSite = e, site
				rw.R, rw.RSite = e, site
			case 2: // inflate to read-shared
				paged.Inflate(pw, 4)
				ref.Inflate(rw, 4)
			case 3: // shared-mode read record
				if pw.ReadShared() != rw.ReadShared() {
					t.Fatalf("seed %d op %d: shared-mode mismatch at %#x", seed, op, uint64(a))
				}
				if pw.ReadShared() {
					pw.RecordSharedRead(tid, e.Time(), site)
					rw.RecordSharedRead(tid, e.Time(), site)
				}
			case 4: // pure lookup, occasionally a reset
				if rng.Intn(500) == 0 {
					paged.Reset()
					ref.Reset()
				}
			}
		}
		if paged.Len() != ref.Len() {
			t.Fatalf("seed %d: Len %d != %d", seed, paged.Len(), ref.Len())
		}
		for _, a := range addrs {
			if !wordsEqual(paged.Peek(a), ref.Peek(a)) {
				t.Fatalf("seed %d: Peek mismatch at %#x", seed, uint64(a))
			}
		}
	}
}

func TestPagedCellStoreMatchesMapCellStore(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := prng.New(uint64(seed) * 977)
		paged, ref := NewCellStore(4, seed), NewMapCellStore(4, seed)
		addrs := diffAddrs()
		for op := 0; op < 6000; op++ {
			a := addrs[rng.Intn(int64(len(addrs)))]
			tid := clock.TID(rng.Intn(8))
			c := Cell{
				E:     clock.MakeEpoch(tid, clock.Time(1+op)),
				Site:  SiteID(rng.Intn(64)),
				Write: rng.Bool(0.5),
			}
			pe := paged.Add(a, c)
			re := ref.Add(a, c)
			if pe != re {
				t.Fatalf("seed %d op %d: eviction %v != %v at %#x", seed, op, pe, re, uint64(a))
			}
			pc, rc := paged.Cells(a), ref.Cells(a)
			if len(pc) != len(rc) {
				t.Fatalf("seed %d op %d: cell count %d != %d", seed, op, len(pc), len(rc))
			}
			for i := range pc {
				if pc[i] != rc[i] {
					t.Fatalf("seed %d op %d: cell %d differs: %+v vs %+v", seed, op, i, pc[i], rc[i])
				}
			}
		}
	}
}

// TestCellStoreEvictionSequence pins replacement to the repository's seeded
// splitmix64 source: victims must be exactly the Intn draws of a
// prng.PRNG seeded with the store's seed, in call order. Reverting the store
// to any other randomness source breaks this test.
func TestCellStoreEvictionSequence(t *testing.T) {
	const seed = 12345
	s := NewCellStore(2, seed)
	want := prng.New(seed)
	a := memmodel.Addr(0x2000)
	// Fill both cells with distinct (tid, kind) records, then force
	// evictions with fresh shapes and track which slot each one lands in.
	s.Add(a, Cell{E: clock.MakeEpoch(0, 1), Site: 1, Write: true})
	s.Add(a, Cell{E: clock.MakeEpoch(1, 1), Site: 2, Write: true})
	for i := 0; i < 32; i++ {
		c := Cell{E: clock.MakeEpoch(clock.TID(2+i%6), clock.Time(1+i/6)), Site: SiteID(10 + i), Write: i%2 == 0}
		cs := s.Cells(a)
		prev := [2]Cell{cs[0], cs[1]}
		refreshed := false
		for _, old := range prev {
			if old.E.TID() == c.E.TID() && old.Write == c.Write {
				refreshed = true
			}
		}
		evicted := s.Add(a, c)
		if refreshed {
			if evicted {
				t.Fatalf("step %d: refresh reported as eviction", i)
			}
			continue
		}
		if !evicted {
			t.Fatalf("step %d: full store did not evict", i)
		}
		victim := want.Intn(2)
		cs = s.Cells(a)
		if cs[victim] != c {
			t.Fatalf("step %d: expected victim slot %d to hold %+v, got %+v (other %+v)",
				i, victim, c, cs[victim], cs[1-victim])
		}
		if other := cs[1-victim]; other != prev[1-victim] {
			t.Fatalf("step %d: non-victim slot changed: %+v -> %+v", i, prev[1-victim], other)
		}
	}
}

func TestPageTableBasics(t *testing.T) {
	var pt PageTable[int]
	if pt.Peek(5) != nil {
		t.Fatal("Peek on empty table should be nil")
	}
	*pt.Get(5) = 42
	if v := pt.Peek(5); v == nil || *v != 42 {
		t.Fatalf("Peek(5) = %v, want 42", v)
	}
	if pt.Allocs() != 1 {
		t.Fatalf("Allocs = %d, want 1 (same page)", pt.Allocs())
	}
	*pt.Get(5 + PageSize) = 7 // second page
	farGranule := uint64(maxDir)*PageSize + 3
	*pt.Get(farGranule) = 9 // beyond the directory: far map
	if pt.Allocs() != 3 {
		t.Fatalf("Allocs = %d, want 3", pt.Allocs())
	}
	if v := pt.Peek(farGranule); v == nil || *v != 9 {
		t.Fatalf("far Peek = %v, want 9", v)
	}
	if v := pt.Peek(farGranule + 1); v == nil || *v != 0 {
		t.Fatal("Peek within an allocated page should return the zero value, not nil")
	}
	pt.Reset()
	if pt.Peek(5) != nil || pt.Peek(farGranule) != nil {
		t.Fatal("Reset did not drop pages")
	}
	if *pt.Get(5) != 0 {
		t.Fatal("slot not zeroed after Reset")
	}
}

func TestMemoryPoolRecycles(t *testing.T) {
	m := NewMemory()
	a := memmodel.Addr(0x100)
	w := m.Word(a)
	w.R, w.RSite = clock.MakeEpoch(1, 3), 9
	m.Inflate(w, 4)
	if st := m.Stats(); st.PoolMisses != 1 || st.PoolHits != 0 {
		t.Fatalf("first inflate should miss the pool: %+v", st)
	}
	w.RecordSharedRead(2, 5, 11)
	m.ClearReads(w)
	if w.RVC != nil || w.RSites != nil || w.R != clock.NoEpoch {
		t.Fatal("ClearReads left read state behind")
	}
	// Second inflation must come from the pool and start clean.
	w.R, w.RSite = clock.MakeEpoch(0, 2), 4
	m.Inflate(w, 4)
	if st := m.Stats(); st.PoolHits != 1 {
		t.Fatalf("second inflate should hit the pool: %+v", st)
	}
	if got := w.RVC.Get(2); got != 0 {
		t.Fatalf("pooled vector not cleared: component 2 = %d", got)
	}
	if got := w.RSiteOf(2); got != 0 {
		t.Fatalf("pooled site slice not cleared: site 2 = %d", got)
	}
	if w.RVC.Get(0) != 2 || w.RSiteOf(0) != 4 {
		t.Fatal("pooled inflation did not seed the exclusive read epoch")
	}
}
