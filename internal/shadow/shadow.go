// Package shadow provides the per-word detector state ("shadow memory") used
// by the slow-path happens-before race detector.
//
// Two representations are provided, mirroring the two configurations the
// paper discusses in §5:
//
//   - Word: full FastTrack state (last-write epoch plus adaptive last-read
//     epoch/vector). With this representation the detector is sound and
//     complete for the monitored trace. This is the "enough shadow cells"
//     configuration the paper says it ran TSan in.
//
//   - CellStore: a bounded store of the last N access records per 8-byte
//     granule with random replacement, reproducing stock TSan's
//     memory-bounding design (N = 4 by default) and its resulting
//     unsoundness: evicting a cell can hide one half of a race.
package shadow

import (
	"math/rand"

	"repro/internal/clock"
	"repro/internal/memmodel"
)

// SiteID identifies a static program location (one instruction in the
// workload IR). Races are reported and de-duplicated as pairs of SiteIDs,
// matching the paper's counting of static race instances (§8.3).
type SiteID uint32

// Word is the FastTrack state for one 8-byte granule.
type Word struct {
	// W is the epoch of the last write; WSite its static site.
	W     clock.Epoch
	WSite SiteID
	// Reads are adaptive: while all reads are totally ordered, only the
	// epoch R/RSite is kept. Once two unordered reads are seen, the state
	// inflates to the vector RVC with per-thread sites in RSites.
	R      clock.Epoch
	RSite  SiteID
	RVC    *clock.VC
	RSites []SiteID
}

// ReadShared reports whether the word is in vector (read-shared) mode.
func (w *Word) ReadShared() bool { return w.RVC != nil }

// Inflate switches the word to read-shared mode, seeding the vector with the
// existing read epoch.
func (w *Word) Inflate(threads int) {
	if w.RVC != nil {
		return
	}
	w.RVC = clock.New(threads)
	w.RSites = make([]SiteID, threads)
	if w.R != clock.NoEpoch {
		w.RVC.Set(w.R.TID(), w.R.Time())
		w.setRSite(w.R.TID(), w.RSite)
	}
}

// RecordSharedRead stores a read at tid/site in read-shared mode.
func (w *Word) RecordSharedRead(tid clock.TID, t clock.Time, site SiteID) {
	w.RVC.Set(tid, t)
	w.setRSite(tid, site)
}

func (w *Word) setRSite(tid clock.TID, site SiteID) {
	for int(tid) >= len(w.RSites) {
		w.RSites = append(w.RSites, 0)
	}
	w.RSites[tid] = site
}

// RSiteOf returns the site of tid's last read in read-shared mode.
func (w *Word) RSiteOf(tid clock.TID) SiteID {
	if int(tid) >= len(w.RSites) {
		return 0
	}
	return w.RSites[tid]
}

// Memory maps 8-byte granules to FastTrack state, created on first touch.
type Memory struct {
	words map[uint64]*Word
}

// NewMemory returns an empty shadow memory.
func NewMemory() *Memory { return &Memory{words: make(map[uint64]*Word)} }

// Word returns the state for the granule containing a, allocating if needed.
func (m *Memory) Word(a memmodel.Addr) *Word {
	g := memmodel.WordOf(a)
	w := m.words[g]
	if w == nil {
		w = &Word{}
		m.words[g] = w
	}
	return w
}

// Peek returns the state for a's granule or nil if never accessed.
func (m *Memory) Peek(a memmodel.Addr) *Word { return m.words[memmodel.WordOf(a)] }

// Len returns the number of granules with state.
func (m *Memory) Len() int { return len(m.words) }

// Reset discards all state.
func (m *Memory) Reset() { m.words = make(map[uint64]*Word) }

// Cell is one bounded-mode access record.
type Cell struct {
	E     clock.Epoch
	Site  SiteID
	Write bool
}

// CellStore keeps at most N cells per granule with random replacement,
// modelling stock TSan's bounded shadow (§5: "TSan maintains N (default 4)
// shadow cells per 8 application bytes, and replaces one random shadow cell
// when all shadow cells are filled").
type CellStore struct {
	n     int
	cells map[uint64][]Cell
	rng   *rand.Rand
}

// NewCellStore returns a store with n cells per granule and the given
// replacement seed.
func NewCellStore(n int, seed int64) *CellStore {
	if n <= 0 {
		panic("shadow: cell count must be positive")
	}
	return &CellStore{n: n, cells: make(map[uint64][]Cell), rng: rand.New(rand.NewSource(seed))}
}

// Cells returns the current records for a's granule.
func (s *CellStore) Cells(a memmodel.Addr) []Cell {
	return s.cells[memmodel.WordOf(a)]
}

// Add records c for a's granule, evicting a random cell if full. It returns
// true when an eviction happened (a potential lost race).
func (s *CellStore) Add(a memmodel.Addr, c Cell) (evicted bool) {
	g := memmodel.WordOf(a)
	cs := s.cells[g]
	// Refresh an existing record from the same thread and access kind
	// rather than burning a cell, as TSan does.
	for i := range cs {
		if cs[i].E.TID() == c.E.TID() && cs[i].Write == c.Write {
			cs[i] = c
			return false
		}
	}
	if len(cs) < s.n {
		s.cells[g] = append(cs, c)
		return false
	}
	cs[s.rng.Intn(len(cs))] = c
	return true
}

// Reset discards all records.
func (s *CellStore) Reset() { s.cells = make(map[uint64][]Cell) }
