// Package shadow provides the per-word detector state ("shadow memory") used
// by the slow-path happens-before race detector.
//
// Two representations are provided, mirroring the two configurations the
// paper discusses in §5:
//
//   - Word: full FastTrack state (last-write epoch plus adaptive last-read
//     epoch/vector). With this representation the detector is sound and
//     complete for the monitored trace. This is the "enough shadow cells"
//     configuration the paper says it ran TSan in.
//
//   - CellStore: a bounded store of the last N access records per 8-byte
//     granule with random replacement, reproducing stock TSan's
//     memory-bounding design (N = 4 by default) and its resulting
//     unsoundness: evicting a cell can hide one half of a race.
//
// Both stores are paged (see PageTable): the per-access lookup is two array
// indexes into inline state, with no per-word allocation and no map hashing.
// MapMemory and MapCellStore keep the original hash-map layouts as reference
// implementations for differential tests and before/after benchmarks.
package shadow

import (
	"repro/internal/clock"
	"repro/internal/memmodel"
	"repro/internal/prng"
)

// SiteID identifies a static program location (one instruction in the
// workload IR). Races are reported and de-duplicated as pairs of SiteIDs,
// matching the paper's counting of static race instances (§8.3).
type SiteID uint32

// Word is the FastTrack state for one 8-byte granule. Fields are ordered to
// pack the struct into 64 bytes, so a 512-granule page is 32 KiB of inline
// state.
type Word struct {
	// W is the epoch of the last write.
	W clock.Epoch
	// Reads are adaptive: while all reads are totally ordered, only the
	// epoch R/RSite is kept. Once two unordered reads are seen, the state
	// inflates to the vector RVC with per-thread sites in RSites.
	R      clock.Epoch
	RVC    *clock.VC
	RSites []SiteID
	// WSite and RSite are the static sites of the last write and last
	// (exclusive-mode) read.
	WSite SiteID
	RSite SiteID
	// used marks granules that have been handed out by Memory.Word; inline
	// page storage needs it to preserve the map semantics of Len and Peek.
	used bool
}

// ReadShared reports whether the word is in vector (read-shared) mode.
func (w *Word) ReadShared() bool { return w.RVC != nil }

// Inflate switches the word to read-shared mode, seeding the vector with the
// existing read epoch. Memory.Inflate is the pooled variant the detector hot
// path uses; this allocation form remains for reference implementations and
// direct Word use.
func (w *Word) Inflate(threads int) {
	if w.RVC != nil {
		return
	}
	w.RVC = clock.New(threads)
	w.RSites = make([]SiteID, threads)
	w.seedReadVector()
}

// seedReadVector carries the exclusive-mode read epoch into the vector.
func (w *Word) seedReadVector() {
	if w.R != clock.NoEpoch {
		w.RVC.Set(w.R.TID(), w.R.Time())
		w.setRSite(w.R.TID(), w.RSite)
	}
}

// RecordSharedRead stores a read at tid/site in read-shared mode.
func (w *Word) RecordSharedRead(tid clock.TID, t clock.Time, site SiteID) {
	w.RVC.Set(tid, t)
	w.setRSite(tid, site)
}

func (w *Word) setRSite(tid clock.TID, site SiteID) {
	if int(tid) >= len(w.RSites) {
		w.RSites = growSites(w.RSites, int(tid)+1)
	}
	w.RSites[tid] = site
}

// growSites extends s to length n in one step, reusing capacity when a
// pooled slice provides it (re-extended entries must be re-zeroed).
func growSites(s []SiteID, n int) []SiteID {
	if cap(s) >= n {
		old := len(s)
		s = s[:n]
		for i := old; i < n; i++ {
			s[i] = 0
		}
		return s
	}
	ns := make([]SiteID, n)
	copy(ns, s)
	return ns
}

// RSiteOf returns the site of tid's last read in read-shared mode.
func (w *Word) RSiteOf(tid clock.TID) SiteID {
	if int(tid) >= len(w.RSites) {
		return 0
	}
	return w.RSites[tid]
}

// Memory maps 8-byte granules to FastTrack state, created on first touch.
// State lives inline in pages: the common access is two array indexes and
// allocates nothing. Read vectors released by write-clears-reads are pooled
// and reused by later inflations.
type Memory struct {
	pt    PageTable[Word]
	count int

	freeVCs   []*clock.VC
	freeSites [][]SiteID
	poolHits  uint64
	poolMiss  uint64

	vcStats *clock.Stats // non-nil: Inflate hands out sparse read vectors
}

// NewMemory returns an empty shadow memory.
func NewMemory() *Memory { return &Memory{} }

// UseSparseClocks switches Inflate to sparse read vectors, recording
// representation transitions in st (must be non-nil). Pooled clocks return
// to the empty sparse form on Clear even if a read-shared episode promoted
// them to dense, so recycling never leaks stale high-tid entries and a
// fresh inflation costs O(1) instead of O(threads). Site slices stay dense:
// they are plain arrays with no join structure to exploit.
func (m *Memory) UseSparseClocks(st *clock.Stats) {
	if st == nil {
		st = new(clock.Stats)
	}
	m.vcStats = st
}

// Word returns the state for the granule containing a, allocating if needed.
func (m *Memory) Word(a memmodel.Addr) *Word {
	w := m.pt.Get(memmodel.WordOf(a))
	if !w.used {
		w.used = true
		m.count++
	}
	return w
}

// Peek returns the state for a's granule or nil if never accessed.
func (m *Memory) Peek(a memmodel.Addr) *Word {
	w := m.pt.Peek(memmodel.WordOf(a))
	if w == nil || !w.used {
		return nil
	}
	return w
}

// Len returns the number of granules with state.
func (m *Memory) Len() int { return m.count }

// Reset discards all state in O(pages).
func (m *Memory) Reset() {
	m.pt.Reset()
	m.count = 0
	m.freeVCs = nil
	m.freeSites = nil
}

// Inflate switches w to read-shared mode, drawing the vector and site slice
// from the free list when one is available.
func (m *Memory) Inflate(w *Word, threads int) {
	if w.RVC != nil {
		return
	}
	if n := len(m.freeVCs); n > 0 {
		m.poolHits++
		w.RVC = m.freeVCs[n-1]
		m.freeVCs = m.freeVCs[:n-1]
		w.RVC.Clear(threads)
		w.RSites = growSites(m.freeSites[n-1][:0], threads)
		m.freeSites = m.freeSites[:n-1]
	} else {
		m.poolMiss++
		if m.vcStats != nil {
			w.RVC = clock.NewSparse(m.vcStats)
			w.RVC.Clear(threads) // records the span for the promotion ratio
		} else {
			w.RVC = clock.New(threads)
		}
		w.RSites = make([]SiteID, threads)
	}
	w.seedReadVector()
}

// ClearReads applies FastTrack's write-clears-reads transition, returning an
// inflated word's vector and site slice to the free list for reuse.
func (m *Memory) ClearReads(w *Word) {
	w.R = clock.NoEpoch
	if w.RVC != nil {
		m.freeVCs = append(m.freeVCs, w.RVC)
		m.freeSites = append(m.freeSites, w.RSites)
		w.RVC = nil
		w.RSites = nil
	}
}

// MemStats summarizes the allocation behaviour of a Memory; the runtimes
// export it through the observability layer.
type MemStats struct {
	// Pages is the cumulative number of shadow pages allocated.
	Pages uint64
	// PoolHits and PoolMisses count read-vector inflations served from the
	// free list vs freshly allocated.
	PoolHits, PoolMisses uint64
}

// Stats returns the memory's allocation counters.
func (m *Memory) Stats() MemStats {
	return MemStats{Pages: m.pt.Allocs(), PoolHits: m.poolHits, PoolMisses: m.poolMiss}
}

// Cell is one bounded-mode access record.
type Cell struct {
	E     clock.Epoch
	Site  SiteID
	Write bool
}

// Cells-per-granule state is paged like Word state (512-granule pages); each
// granule carries N inline cells within its page.
const (
	cellPageShift = 9
	cellPageSize  = 1 << cellPageShift
	cellPageMask  = cellPageSize - 1
)

// cellPage holds the records of cellPageSize granules: granule i's cells are
// the first n[i] entries of cells[i*N : (i+1)*N].
type cellPage struct {
	n     [cellPageSize]uint8
	cells []Cell
}

// CellStore keeps at most N cells per granule with random replacement,
// modelling stock TSan's memory-bounding design (§5: "TSan maintains N
// (default 4) shadow cells per 8 application bytes, and replaces one random
// shadow cell when all shadow cells are filled"). Replacement victims are
// drawn from the repository's seeded splitmix64 source (internal/prng);
// TestCellStoreEvictionSequence pins the exact sequence.
type CellStore struct {
	n      int
	rng    prng.PRNG
	dir    []*cellPage
	far    map[uint64]*cellPage
	allocs uint64
}

// NewCellStore returns a store with n cells per granule and the given
// replacement seed.
func NewCellStore(n int, seed int64) *CellStore {
	if n <= 0 {
		panic("shadow: cell count must be positive")
	}
	if n > 255 {
		panic("shadow: cell count exceeds 255")
	}
	return &CellStore{n: n, rng: prng.New(uint64(seed))}
}

func (s *CellStore) page(d uint64, alloc bool) *cellPage {
	if d < uint64(len(s.dir)) {
		if pg := s.dir[d]; pg != nil {
			return pg
		}
	} else if d >= maxDir {
		if pg := s.far[d]; pg != nil || !alloc {
			return pg
		}
		if s.far == nil {
			s.far = make(map[uint64]*cellPage)
		}
		pg := &cellPage{cells: make([]Cell, cellPageSize*s.n)}
		s.far[d] = pg
		s.allocs++
		return pg
	}
	if !alloc {
		return nil
	}
	if d >= uint64(len(s.dir)) {
		nd := make([]*cellPage, d+1)
		copy(nd, s.dir)
		s.dir = nd
	}
	pg := &cellPage{cells: make([]Cell, cellPageSize*s.n)}
	s.dir[d] = pg
	s.allocs++
	return pg
}

// Cells returns the current records for a's granule. The slice aliases the
// store's inline state; callers read it and must not retain it across Add.
func (s *CellStore) Cells(a memmodel.Addr) []Cell {
	g := memmodel.WordOf(a)
	pg := s.page(g>>cellPageShift, false)
	if pg == nil {
		return nil
	}
	i := g & cellPageMask
	base := int(i) * s.n
	return pg.cells[base : base+int(pg.n[i]) : base+s.n]
}

// Add records c for a's granule, evicting a random cell if full. It returns
// true when an eviction happened (a potential lost race).
func (s *CellStore) Add(a memmodel.Addr, c Cell) (evicted bool) {
	g := memmodel.WordOf(a)
	pg := s.page(g>>cellPageShift, true)
	i := g & cellPageMask
	base := int(i) * s.n
	cs := pg.cells[base : base+int(pg.n[i])]
	// Refresh an existing record from the same thread and access kind
	// rather than burning a cell, as TSan does.
	for k := range cs {
		if cs[k].E.TID() == c.E.TID() && cs[k].Write == c.Write {
			cs[k] = c
			return false
		}
	}
	if int(pg.n[i]) < s.n {
		pg.cells[base+int(pg.n[i])] = c
		pg.n[i]++
		return false
	}
	cs[s.rng.Intn(int64(len(cs)))] = c
	return true
}

// Reset discards all records in O(pages).
func (s *CellStore) Reset() {
	for i := range s.dir {
		s.dir[i] = nil
	}
	s.far = nil
}

// CellStats summarizes the allocation behaviour of a CellStore.
type CellStats struct {
	// Pages is the cumulative number of cell pages allocated.
	Pages uint64
}

// Stats returns the store's allocation counters.
func (s *CellStore) Stats() CellStats { return CellStats{Pages: s.allocs} }
