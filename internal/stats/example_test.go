package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// The paper's Table 2 geomean row, recomputed: recall 0.95 at a normalized
// overhead of 0.38 gives TxRace its 2.5x cost-effectiveness edge over TSan
// (the paper reports 2.38 from per-app geomeans).
func ExampleCostEffectiveness() {
	ce := stats.CostEffectiveness(0.95, 0.38)
	fmt.Printf("%.1f\n", ce)
	// Output:
	// 2.5
}

func ExampleGeomean() {
	// Overheads of 2x and 8x average to 4x geometrically.
	fmt.Println(stats.Geomean([]float64{2, 8}))
	// Output:
	// 4
}
