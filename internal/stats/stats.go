// Package stats provides the small statistical helpers the evaluation
// harness needs: geometric means (the paper's summary statistic for
// overheads), recall, and the cost-effectiveness ratio of §8.4.
package stats

import (
	"math"

	"repro/internal/detect"
)

// Geomean returns the geometric mean of xs, ignoring non-positive values
// (which would be measurement errors for overhead ratios). It returns 0 for
// an empty input.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean, or 0 for an empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Recall computes |reported ∩ truth| / |truth| over static race identities,
// following §8.4: truth is the race set the sound detector (TSan) reports.
// With an empty truth set recall is defined as 1 (nothing to find).
func Recall(reported, truth []detect.PairKey) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[detect.PairKey]struct{}, len(reported))
	for _, k := range reported {
		set[k] = struct{}{}
	}
	hit := 0
	for _, k := range truth {
		if _, ok := set[k]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// Intersect returns |a ∩ b|.
func Intersect(a, b []detect.PairKey) int {
	set := make(map[detect.PairKey]struct{}, len(a))
	for _, k := range a {
		set[k] = struct{}{}
	}
	n := 0
	for _, k := range b {
		if _, ok := set[k]; ok {
			n++
		}
	}
	return n
}

// Union merges race-identity sets, preserving set semantics.
func Union(sets ...[]detect.PairKey) []detect.PairKey {
	seen := make(map[detect.PairKey]struct{})
	var out []detect.PairKey
	for _, s := range sets {
		for _, k := range s {
			if _, ok := seen[k]; !ok {
				seen[k] = struct{}{}
				out = append(out, k)
			}
		}
	}
	return out
}

// CostEffectiveness computes §8.4's ratio: recall divided by runtime
// overhead normalized to the reference detector (TSan ≡ 1). A detector with
// the same recall at half the cost scores 2.
func CostEffectiveness(recall, normalizedOverhead float64) float64 {
	if normalizedOverhead <= 0 {
		return 0
	}
	return recall / normalizedOverhead
}
