package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/detect"
	"repro/internal/shadow"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeomean(t *testing.T) {
	if !almost(Geomean([]float64{2, 8}), 4) {
		t.Fatalf("geomean(2,8) = %v", Geomean([]float64{2, 8}))
	}
	if !almost(Geomean([]float64{5}), 5) {
		t.Fatal("singleton geomean")
	}
	if Geomean(nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
	// Non-positive values ignored.
	if !almost(Geomean([]float64{4, 0, -2}), 4) {
		t.Fatal("non-positive values must be skipped")
	}
	// All-non-positive input leaves nothing to average: 0, not NaN or panic.
	if g := Geomean([]float64{0, -1, -3.5}); g != 0 {
		t.Fatalf("all-non-positive geomean = %v, want 0", g)
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(xs []float64) bool {
		var pos []float64
		for _, x := range xs {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 && x > 1e-100 {
				pos = append(pos, x)
			}
		}
		if len(pos) == 0 {
			return true
		}
		g := Geomean(pos)
		mn, mx := pos[0], pos[0]
		for _, x := range pos {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		return g >= mn*(1-1e-9) && g <= mx*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) || Mean(nil) != 0 {
		t.Fatal("mean wrong")
	}
}

func keys(pairs ...[2]uint32) []detect.PairKey {
	out := make([]detect.PairKey, len(pairs))
	for i, p := range pairs {
		out[i] = detect.PairKey{A: shadow.SiteID(p[0]), B: shadow.SiteID(p[1])}
	}
	return out
}

func TestRecall(t *testing.T) {
	truth := keys([2]uint32{1, 2}, [2]uint32{3, 4}, [2]uint32{5, 6}, [2]uint32{7, 8})
	if !almost(Recall(truth, truth), 1) {
		t.Fatal("full recall")
	}
	if !almost(Recall(truth[:3], truth), 0.75) {
		t.Fatal("3/4 recall")
	}
	if !almost(Recall(nil, truth), 0) {
		t.Fatal("empty reported")
	}
	if !almost(Recall(nil, nil), 1) {
		t.Fatal("empty truth defines recall 1")
	}
	// Extra reported races (there are none in TxRace, it is complete, but
	// the metric must still be well defined) do not boost recall.
	extra := append(keys([2]uint32{9, 10}), truth[:2]...)
	if !almost(Recall(extra, truth), 0.5) {
		t.Fatal("extras counted")
	}
}

func TestIntersect(t *testing.T) {
	a := keys([2]uint32{1, 2}, [2]uint32{3, 4})
	b := keys([2]uint32{3, 4}, [2]uint32{5, 6})
	if Intersect(a, b) != 1 {
		t.Fatalf("intersect = %d", Intersect(a, b))
	}
}

func TestUnion(t *testing.T) {
	a := keys([2]uint32{1, 2}, [2]uint32{3, 4})
	b := keys([2]uint32{3, 4}, [2]uint32{5, 6})
	u := Union(a, b)
	if len(u) != 3 {
		t.Fatalf("union = %v", u)
	}
	// Idempotent.
	if len(Union(u, u)) != 3 {
		t.Fatal("union not idempotent")
	}
}

func TestCostEffectiveness(t *testing.T) {
	// §8.4: TSan itself has CE 1 (recall 1 at normalized overhead 1).
	if !almost(CostEffectiveness(1, 1), 1) {
		t.Fatal("TSan reference CE")
	}
	// The paper's geomean row: recall 0.95 at 0.38 overhead → 2.38... with
	// rounding, ≈ 2.5 exactly from these inputs.
	if !almost(CostEffectiveness(0.95, 0.38), 0.95/0.38) {
		t.Fatal("CE formula")
	}
	if CostEffectiveness(1, 0) != 0 {
		t.Fatal("zero overhead must not divide")
	}
	if CostEffectiveness(1, -0.5) != 0 {
		t.Fatal("negative overhead is a measurement error, CE must be 0")
	}
}
