package server

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/detect"
	"repro/internal/instrument"
	"repro/internal/memmodel"
	"repro/internal/shadow"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// recordTrace records a workload execution, like cmd/txtrace does.
func recordTrace(t testing.TB, name string, seed uint64) *trace.Trace {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	built := w.Build(4, 1)
	rec := trace.NewRecorder(name)
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	if w.InterruptEvery != 0 {
		cfg.InterruptEvery = w.InterruptEvery
	}
	if _, err := sim.NewEngine(cfg).Run(instrument.ForTSan(built.Prog), rec); err != nil {
		t.Fatal(err)
	}
	return rec.T
}

// requireIdentical asserts a sharded report reproduces the reference
// detector's race list byte-for-byte, in order.
func requireIdentical(t *testing.T, label string, ref *detect.Detector, got *Report) {
	t.Helper()
	want := ref.Races()
	have := got.Races()
	if len(have) != len(want) {
		t.Fatalf("%s: %d races, reference %d", label, len(have), len(want))
	}
	for i := range want {
		if have[i] != want[i] {
			t.Fatalf("%s: race %d differs:\n  got  %+v\n  want %+v", label, i, have[i], want[i])
		}
	}
	if got.Checks != ref.Checks {
		t.Fatalf("%s: analyzed %d accesses, reference %d", label, got.Checks, ref.Checks)
	}
}

// TestShardedMatchesReference: on real recorded workloads, the sharded
// detector must produce the byte-identical race list (same races, same
// first-detection order) as the sequential detector, at every shard count
// and every worker count.
func TestShardedMatchesReference(t *testing.T) {
	for _, name := range []string{"raytrace", "streamcluster", "freqmine", "x264"} {
		tr := recordTrace(t, name, 7)
		ref := trace.Replay(tr)
		for _, shards := range []int{1, 4, 8} {
			for _, jobs := range []int{1, 4} {
				rep, err := ReplaySharded(tr, shards, jobs)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, fmt.Sprintf("%s shards=%d jobs=%d", name, shards, jobs), ref, rep)
			}
		}
	}
}

// synthTrace generates a randomized but deterministic trace: t threads
// hammering a small address range with a mix of plain, mutex-guarded and
// rwlock-guarded accesses plus fork/join edges, dense enough in races and
// shared-read inflations to exercise every branch of the per-shard
// FastTrack port.
func synthTrace(seed uint64, threads, events int) *trace.Trace {
	tr := &trace.Trace{Name: fmt.Sprintf("synth-%d", seed)}
	rng := seed
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for c := 1; c < threads; c++ {
		tr.Append(trace.Event{Kind: trace.KFork, TID: 0, Other: int32(c)})
	}
	live := make([]bool, threads)
	for i := range live {
		live[i] = true
	}
	for i := 0; i < events; i++ {
		tid := int32(next(threads))
		if !live[tid] {
			continue
		}
		switch next(10) {
		case 0:
			tr.Append(trace.Event{Kind: trace.KAcquire, TID: tid, Sync: detect.SyncID(next(3))})
		case 1:
			tr.Append(trace.Event{Kind: trace.KRelease, TID: tid, Sync: detect.SyncID(next(3))})
		case 2:
			k := sim.SyncRead
			if next(2) == 0 {
				k = sim.SyncWrite
			}
			tr.Append(trace.Event{Kind: trace.KAcquire, TID: tid, Sync: 7, SyncKind: k})
			tr.Append(trace.Event{Kind: trace.KRelease, TID: tid, Sync: 7, SyncKind: k})
		case 3:
			if tid != 0 && next(40) == 0 {
				live[tid] = false
				tr.Append(trace.Event{Kind: trace.KJoin, TID: 0, Other: tid})
			}
		default:
			// Addresses span several shadow pages so every shard count
			// splits them differently.
			addr := memmodel.Addr(next(64) * 8 * (1 + next(40)*512))
			tr.Append(trace.Event{
				Kind: trace.KAccess, TID: tid, Write: next(3) == 0,
				Addr: addr, Site: shadow.SiteID(1 + next(32)),
			})
		}
	}
	return tr
}

// TestShardedMatchesReferenceRandomized is the randomized differential
// suite: synthetic race-dense traces, several seeds, shards=1/4/8 ×
// jobs=1/4, all compared byte-for-byte against the sequential reference.
func TestShardedMatchesReferenceRandomized(t *testing.T) {
	totalRaces := 0
	for seed := uint64(1); seed <= 6; seed++ {
		tr := synthTrace(seed, 8, 4000)
		ref := trace.Replay(tr)
		totalRaces += ref.RaceCount()
		for _, shards := range []int{1, 4, 8} {
			for _, jobs := range []int{1, 4} {
				rep, err := ReplaySharded(tr, shards, jobs)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, fmt.Sprintf("seed=%d shards=%d jobs=%d", seed, shards, jobs), ref, rep)
			}
		}
	}
	if totalRaces < 10 {
		t.Fatalf("synthetic traces found only %d races; suite is near-vacuous", totalRaces)
	}
}

// TestSnapshotIsolation pins the copy-on-write contract: a snapshot handed
// out before a sync operation must not observe the mutation.
func TestSnapshotIsolation(t *testing.T) {
	r := newClockRouter()
	r.fork(0, 1)
	snap := r.snapshot(1)
	before := snap.Get(1)
	r.applySync(trace.Event{Kind: trace.KRelease, TID: 1, Sync: 3})
	if got := snap.Get(1); got != before {
		t.Fatalf("snapshot mutated by later release: %d -> %d", before, got)
	}
	if now := r.snapshot(1).Get(1); now != before+1 {
		t.Fatalf("router clock not advanced: %d, want %d", now, before+1)
	}
}

// TestShardOfStaysOnPage: all addresses on one shadow page map to one shard.
func TestShardOfStaysOnPage(t *testing.T) {
	base := memmodel.Addr(3 * 512 * 8) // granule 1536, page 3
	want := shardOf(base, 4)
	for off := memmodel.Addr(0); off < 512*8; off += 8 {
		if got := shardOf(base+off, 4); got != want {
			t.Fatalf("page split across shards at offset %d: %d vs %d", off, got, want)
		}
	}
}

var _ = clock.TID(0)
