// Package server turns the offline FastTrack detector into a parallel,
// streaming detection service: the address space is partitioned by shadow
// page (the same geometry shadow.PageTable uses), every shard runs its own
// FastTrack shadow state, and a sequential clock router replays only the
// synchronization events, handing each access an immutable copy-on-write
// snapshot of its thread's vector clock. Because all accesses to one address
// land in one shard in trace order, and a thread's clock only changes at
// sync operations, per-shard analysis sees exactly the clocks the sequential
// detector would — race sets merge back byte-identical (DESIGN.md §12).
package server

import (
	"sort"

	"repro/internal/clock"
	"repro/internal/detect"
	"repro/internal/memmodel"
	"repro/internal/runner"
	"repro/internal/shadow"
	"repro/internal/sim"
	"repro/internal/trace"
)

// rwReaderBit mirrors detect's rwlock namespacing: one sync clock for the
// write side of a reader-writer lock, one (with this bit set) for the read
// side. The value is pinned by the wire format, like trace.ReplayVC's use.
const rwReaderBit detect.SyncID = 1 << 31

// shardOf maps an address to its shard: accesses on the same 512-granule
// shadow page (shadow.PageShift) always share a shard, so shard state keeps
// the page-level locality the single-detector page table has.
func shardOf(addr memmodel.Addr, shards int) int {
	return int((memmodel.WordOf(addr) >> shadow.PageShift) % uint64(shards))
}

// clockRouter is the sequential half of the sharded detector: it applies
// every synchronization event (fork/join/acquire/release) to per-thread and
// per-sync vector clocks exactly as detect.Detector does, and hands out
// immutable snapshots of thread clocks for shards to check accesses against.
//
// Snapshots are copy-on-write: handing one out marks the clock shared, and
// the next sync operation that would mutate it clones it first (clock.Clone
// shares the immutable sparse base, so a clone is O(live entries)). Between
// two sync operations of a thread, all its accesses share one snapshot —
// the "epoch batching" that keeps snapshot traffic proportional to sync
// density, not access density. Epoch-collapsing is disabled here (Rebase
// would mutate clocks shards still hold); race results are representation-
// independent, so the answer is unchanged.
type clockRouter struct {
	threads []*clock.VC
	shared  []bool // threads[i] has outstanding snapshots
	syncs   map[detect.SyncID]*clock.VC
	stats   *clock.Stats
}

func newClockRouter() *clockRouter {
	return &clockRouter{
		syncs: make(map[detect.SyncID]*clock.VC),
		stats: new(clock.Stats),
	}
}

// numThreads returns the thread-slice length, the capacity hint shards pass
// to shadow.Memory.Inflate (capacity only — never affects results).
func (r *clockRouter) numThreads() int { return len(r.threads) }

func (r *clockRouter) thread(tid clock.TID) *clock.VC {
	if int(tid) >= len(r.threads) {
		nt := make([]*clock.VC, int(tid)+1)
		copy(nt, r.threads)
		r.threads = nt
		ns := make([]bool, int(tid)+1)
		copy(ns, r.shared)
		r.shared = ns
	}
	if r.threads[tid] == nil {
		v := clock.NewSparse(r.stats)
		v.Tick(tid) // a thread's own component starts at 1
		r.threads[tid] = v
	}
	return r.threads[tid]
}

// mutable returns tid's clock for in-place mutation, cloning first if a
// shard still holds a snapshot of it.
func (r *clockRouter) mutable(tid clock.TID) *clock.VC {
	v := r.thread(tid)
	if r.shared[tid] {
		v = v.Clone()
		r.threads[tid] = v
		r.shared[tid] = false
	}
	return v
}

// snapshot returns tid's current clock as an immutable snapshot: the caller
// may read it concurrently; the router will never mutate it again.
func (r *clockRouter) snapshot(tid clock.TID) *clock.VC {
	v := r.thread(tid)
	r.shared[tid] = true
	return v
}

func (r *clockRouter) sync(s detect.SyncID) *clock.VC {
	v := r.syncs[s]
	if v == nil {
		v = clock.NewSparse(r.stats)
		r.syncs[s] = v
	}
	return v
}

func (r *clockRouter) fork(parent, child clock.TID) {
	r.thread(parent)
	r.thread(child)
	p, c := r.mutable(parent), r.mutable(child)
	c.Join(p)
	c.Tick(child)
	p.Tick(parent)
}

func (r *clockRouter) join(parent, child clock.TID) {
	r.thread(parent)
	r.thread(child)
	p, c := r.mutable(parent), r.mutable(child)
	p.Join(c)
	c.Tick(child)
}

func (r *clockRouter) acquire(tid clock.TID, s detect.SyncID) {
	r.mutable(tid).Join(r.sync(s))
}

func (r *clockRouter) release(tid clock.TID, s detect.SyncID) {
	t := r.mutable(tid)
	r.sync(s).Join(t)
	t.Tick(tid)
}

// applySync applies one non-access event with the same kind semantics as
// detect.AcquireKind/ReleaseKind (rwlock read holds join only the writer
// side; read unlocks publish into the reader side).
func (r *clockRouter) applySync(e trace.Event) {
	tid := clock.TID(e.TID)
	switch e.Kind {
	case trace.KAcquire:
		switch e.SyncKind {
		case sim.SyncWrite:
			r.acquire(tid, e.Sync)
			r.acquire(tid, e.Sync|rwReaderBit)
		default:
			r.acquire(tid, e.Sync)
		}
	case trace.KRelease:
		switch e.SyncKind {
		case sim.SyncRead:
			r.release(tid, e.Sync|rwReaderBit)
		default:
			r.release(tid, e.Sync)
		}
	case trace.KFork:
		r.fork(tid, clock.TID(e.Other))
	case trace.KJoin:
		r.join(tid, clock.TID(e.Other))
	}
}

// shardEvt is one access routed to a shard: the event's payload plus the
// thread-clock snapshot current at routing time and the global event index
// (the merge key that restores sequential first-detection order).
type shardEvt struct {
	vc    *clock.VC
	addr  memmodel.Addr
	idx   uint64
	site  shadow.SiteID
	tid   clock.TID
	write bool
}

// indexedRace is a race found in one shard, tagged with the global index of
// the access that completed it.
type indexedRace struct {
	r   detect.Race
	idx uint64
}

// shardState is one shard's detection state: a private shadow memory plus
// the races found so far, deduplicated locally by static pair in
// first-occurrence order (the global merge re-deduplicates across shards).
type shardState struct {
	mem    *shadow.Memory
	stats  *clock.Stats
	races  []indexedRace
	seen   map[detect.PairKey]struct{}
	checks uint64
}

func newShardState() *shardState {
	st := new(clock.Stats)
	m := shadow.NewMemory()
	m.UseSparseClocks(st)
	return &shardState{mem: m, stats: st, seen: make(map[detect.PairKey]struct{})}
}

func (s *shardState) report(r detect.Race, idx uint64) {
	k := r.Key()
	if _, dup := s.seen[k]; dup {
		return
	}
	s.seen[k] = struct{}{}
	s.races = append(s.races, indexedRace{r: r, idx: idx})
}

// access replays detect.Detector.Read/Write against a snapshot clock. The
// logic is a line-for-line port: any drift here breaks the byte-identical
// guarantee TestShardedMatchesReference pins.
func (s *shardState) access(ev shardEvt, threads int) {
	s.checks++
	c := ev.vc
	w := s.mem.Word(ev.addr)
	e := c.Epoch(ev.tid)

	if ev.write {
		if w.W == e {
			w.WSite = ev.site
			return // same-epoch write
		}
		if !c.LeqEpoch(w.W) {
			s.report(detect.Race{Addr: ev.addr, PrevSite: w.WSite, CurSite: ev.site,
				PrevWrite: true, CurWrite: true, PrevTID: w.W.TID(), CurTID: ev.tid}, ev.idx)
		}
		if w.ReadShared() {
			w.RVC.ForEach(func(t clock.TID, rt clock.Time) {
				if rt > c.Get(t) {
					s.report(detect.Race{Addr: ev.addr, PrevSite: w.RSiteOf(t), CurSite: ev.site,
						PrevWrite: false, CurWrite: true, PrevTID: t, CurTID: ev.tid}, ev.idx)
				}
			})
		} else if w.R != clock.NoEpoch && !c.LeqEpoch(w.R) {
			s.report(detect.Race{Addr: ev.addr, PrevSite: w.RSite, CurSite: ev.site,
				PrevWrite: false, CurWrite: true, PrevTID: w.R.TID(), CurTID: ev.tid}, ev.idx)
		}
		w.W, w.WSite = e, ev.site
		s.mem.ClearReads(w)
		return
	}

	if w.ReadShared() {
		if w.RVC.Get(ev.tid) == e.Time() {
			return // same-epoch read
		}
	} else if w.R == e {
		return
	}
	if !c.LeqEpoch(w.W) {
		s.report(detect.Race{Addr: ev.addr, PrevSite: w.WSite, CurSite: ev.site,
			PrevWrite: true, CurWrite: false, PrevTID: w.W.TID(), CurTID: ev.tid}, ev.idx)
	}
	if w.ReadShared() {
		w.RecordSharedRead(ev.tid, e.Time(), ev.site)
		return
	}
	if w.R == clock.NoEpoch || c.LeqEpoch(w.R) {
		w.R, w.RSite = e, ev.site
		return
	}
	s.mem.Inflate(w, threads)
	w.RecordSharedRead(ev.tid, e.Time(), ev.site)
}

// mergeShards restores the sequential detector's race list from per-shard
// findings: a k-way merge by ascending global event index (each index lives
// in exactly one shard, so the order is total), deduplicated by static pair
// — exactly the reduction runner uses for jobs-invariance.
func mergeShards(states []*shardState) (races []detect.Race, checks uint64) {
	pos := make([]int, len(states))
	seen := make(map[detect.PairKey]struct{})
	for {
		best := -1
		for i, st := range states {
			if pos[i] >= len(st.races) {
				continue
			}
			if best < 0 || st.races[pos[i]].idx < states[best].races[pos[best]].idx {
				best = i
			}
		}
		if best < 0 {
			break
		}
		ir := states[best].races[pos[best]]
		pos[best]++
		if _, dup := seen[ir.r.Key()]; dup {
			continue
		}
		seen[ir.r.Key()] = struct{}{}
		races = append(races, ir.r)
	}
	for _, st := range states {
		checks += st.checks
	}
	return races, checks
}

// Report is the outcome of a sharded detection run, online or offline. Its
// accessors mirror detect.Detector's so callers can diff the two directly.
type Report struct {
	Name   string
	Shards int
	// Events is every event ingested; Checks the accesses analyzed; Shed
	// the accesses dropped by the overload governor (offline runs never
	// shed, so Checks+Shed equals the trace's access count either way).
	Events        uint64
	Checks        uint64
	Shed          uint64
	GovernorTrips uint64
	races         []detect.Race
}

// Sampled reports whether the governor shed any accesses: the run degraded
// to sampling-mode detection and the race set is a subset of the full one.
func (r *Report) Sampled() bool { return r.Shed > 0 }

// Coverage is the fraction of accesses analyzed (1 when nothing was shed);
// the sampling-mode recall bound reported to clients.
func (r *Report) Coverage() float64 {
	total := r.Checks + r.Shed
	if total == 0 {
		return 1
	}
	return float64(r.Checks) / float64(total)
}

// RaceCount returns the number of distinct static races found.
func (r *Report) RaceCount() int { return len(r.races) }

// Races returns the distinct races in first-detection order.
func (r *Report) Races() []detect.Race { return r.races }

// RaceKeys returns the normalized static pairs, sorted, like
// detect.Detector.RaceKeys.
func (r *Report) RaceKeys() []detect.PairKey {
	out := make([]detect.PairKey, 0, len(r.races))
	for _, rc := range r.races {
		out = append(out, rc.Key())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// ReplaySharded analyzes a recorded trace with `shards` parallel detection
// shards on a pool of `jobs` workers (0 = GOMAXPROCS): a sequential pre-pass
// routes every access to its address shard with a clock snapshot, one
// runner job per shard detects independently, and the plan-order reduction
// merges findings back into the sequential first-detection order. The race
// list is byte-identical to trace.Replay(t).Races() at every shard and
// worker count.
func ReplaySharded(t *trace.Trace, shards, jobs int) (*Report, error) {
	if shards < 1 {
		shards = 1
	}
	router := newClockRouter()
	parts := make([][]shardEvt, shards)
	var idx uint64
	t.ForEach(func(e trace.Event) {
		if e.Kind == trace.KAccess {
			sh := shardOf(e.Addr, shards)
			parts[sh] = append(parts[sh], shardEvt{
				vc:   router.snapshot(clock.TID(e.TID)),
				addr: e.Addr, idx: idx, site: e.Site,
				tid: clock.TID(e.TID), write: e.Write,
			})
		} else {
			router.applySync(e)
		}
		idx++
	})
	threads := router.numThreads()

	plan := runner.NewPlan(jobs, nil)
	handles := make([]*runner.Handle, shards)
	for i := range parts {
		part := parts[i]
		handles[i] = plan.Add(runner.Job{
			Workload: t.Name, Runtime: "shard", Trial: i,
			Do: func(*runner.Job) (any, error) {
				st := newShardState()
				for _, ev := range part {
					st.access(ev, threads)
				}
				return st, nil
			},
		})
	}
	if err := plan.Run(); err != nil {
		return nil, err
	}
	states := make([]*shardState, shards)
	for i, h := range handles {
		states[i] = h.Value().(*shardState)
	}
	races, checks := mergeShards(states)
	return &Report{
		Name: t.Name, Shards: shards, Events: idx, Checks: checks, races: races,
	}, nil
}
