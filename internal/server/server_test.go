package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TestSessionLosslessMatchesReference: a streaming session with shedding
// disabled is the online twin of ReplaySharded — its report must be
// byte-identical to the sequential detector.
func TestSessionLosslessMatchesReference(t *testing.T) {
	tr := recordTrace(t, "raytrace", 7)
	ref := trace.Replay(tr)
	for _, shards := range []int{1, 4, 8} {
		sess := NewSession(SessionConfig{Shards: shards, Workers: 2, BatchSize: 64})
		tr.ForEach(sess.Feed)
		rep := sess.Finish(tr.Name)
		requireIdentical(t, fmt.Sprintf("session shards=%d", shards), ref, rep)
		if rep.Sampled() || rep.Coverage() != 1 {
			t.Fatalf("lossless session reported sampling: shed=%d coverage=%v",
				rep.Shed, rep.Coverage())
		}
	}
}

// streamTrace connects to addr, streams tr, and decodes the response.
func streamTrace(t *testing.T, addr string, tr *trace.Trace) *Response {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(c).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return &resp
}

// TestServerManyClients: a real listener serving many concurrent clients;
// every client's reported race text lines must equal offline txtrace-style
// detection of its own trace.
func TestServerManyClients(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Shards: 4, Workers: 2, NoShed: true, Metrics: obs.NewMetrics()})
	go srv.Serve(ln)
	defer srv.Close()

	names := []string{"raytrace", "streamcluster", "freqmine", "x264"}
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := names[i%len(names)]
			tr := recordTrace(t, name, uint64(3+i))
			want := trace.Replay(tr).Races()
			resp := streamTrace(t, ln.Addr().String(), tr)
			if resp.Error != "" {
				errs <- fmt.Errorf("client %d: server error: %s", i, resp.Error)
				return
			}
			if resp.Name != name || resp.Events != uint64(tr.Len()) {
				errs <- fmt.Errorf("client %d: header echo %q/%d, want %q/%d",
					i, resp.Name, resp.Events, name, tr.Len())
				return
			}
			if len(resp.Races) != len(want) {
				errs <- fmt.Errorf("client %d (%s): %d races, offline %d",
					i, name, len(resp.Races), len(want))
				return
			}
			for j, rc := range want {
				if resp.Races[j].Text != rc.String() {
					errs <- fmt.Errorf("client %d (%s): race %d %q, offline %q",
						i, name, j, resp.Races[j].Text, rc.String())
					return
				}
			}
			if resp.Sampled || resp.Coverage != "1.0000" {
				errs <- fmt.Errorf("client %d: lossless server sampled (coverage %s)", i, resp.Coverage)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSessionFinishIdempotent pins the Finish bugfix: a second Finish —
// what a retrying or misbehaving client amounts to — returns the first
// call's cached report instead of panicking on the already-closed worker
// queues, and the report keeps the name it was finished under. The
// end-to-end half runs the retry over a real listener: the same trace
// streamed twice must produce two identical reports from a live server.
func TestSessionFinishIdempotent(t *testing.T) {
	tr := recordTrace(t, "raytrace", 7)
	sess := NewSession(SessionConfig{Shards: 4, Workers: 2, BatchSize: 64})
	tr.ForEach(sess.Feed)
	r1 := sess.Finish(tr.Name)
	r2 := sess.Finish("retry-after-finish")
	if r2 != r1 {
		t.Fatalf("second Finish returned a new report: %p vs %p", r2, r1)
	}
	if r2.Name != tr.Name {
		t.Fatalf("cached report renamed to %q, want %q", r2.Name, tr.Name)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Shards: 4, Workers: 2, NoShed: true})
	go srv.Serve(ln)
	defer srv.Close()

	first := streamTrace(t, ln.Addr().String(), tr)
	retry := streamTrace(t, ln.Addr().String(), tr)
	if first.Error != "" || retry.Error != "" {
		t.Fatalf("server errors: %q / %q", first.Error, retry.Error)
	}
	if !reflect.DeepEqual(first, retry) {
		t.Fatalf("retried stream got a different report:\n first %+v\n retry %+v", first, retry)
	}
}

// TestServerRejectsGarbage: malformed streams get a JSON error, not a hang
// or a crash.
func TestServerRejectsGarbage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{})
	go srv.Serve(ln)
	defer srv.Close()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("definitely not a trace stream"))
	var resp Response
	if err := json.NewDecoder(c).Decode(&resp); err != nil {
		t.Fatalf("no JSON error response: %v", err)
	}
	if resp.Error == "" {
		t.Fatal("garbage stream accepted without error")
	}

	// A truncated stream — valid header, events cut mid-record — must come
	// back as a structured error naming the wire version and byte offset.
	tr := recordTrace(t, "raytrace", 7)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.Write(buf.Bytes()[:buf.Len()/2])
	if tc, ok := c2.(*net.TCPConn); ok {
		tc.CloseWrite() // end of stream mid-record, like a dying client
	}
	var trunc Response
	if err := json.NewDecoder(c2).Decode(&trunc); err != nil {
		t.Fatalf("no JSON error response for truncated stream: %v", err)
	}
	for _, want := range []string{"wire v2", "offset", "unexpected EOF"} {
		if !strings.Contains(trunc.Error, want) {
			t.Fatalf("truncation error %q lacks %q", trunc.Error, want)
		}
	}
}

// TestGovernorShedsUnderOverload forces overload deterministically: workers
// are gated shut while ingestion floods the queues, so the governor must
// trip into sampling mode, never block Feed, and report honest coverage —
// with the surviving races a subset of the full set.
func TestGovernorShedsUnderOverload(t *testing.T) {
	tr := recordTrace(t, "streamcluster", 7)
	full := trace.Replay(tr)
	fullKeys := make(map[detect.PairKey]bool)
	for _, k := range full.RaceKeys() {
		fullKeys[k] = true
	}

	gate := make(chan struct{})
	var once sync.Once
	sess := NewSession(SessionConfig{
		Shards: 4, Workers: 1, BatchSize: 8, QueueBatches: 2, Shed: true,
		workerGate: func(int) { <-gate },
	})
	done := make(chan *Report, 1)
	go func() {
		tr.ForEach(func(e trace.Event) {
			sess.Feed(e)
			if sess.trips > 0 {
				once.Do(func() { close(gate) }) // release workers after first trip
			}
		})
		once.Do(func() { close(gate) })
		done <- sess.Finish(tr.Name)
	}()
	rep := <-done

	if rep.Shed == 0 || rep.GovernorTrips == 0 {
		t.Fatalf("overload never tripped the governor: shed=%d trips=%d", rep.Shed, rep.GovernorTrips)
	}
	if !rep.Sampled() {
		t.Fatal("Sampled() false after shedding")
	}
	if cov := rep.Coverage(); cov >= 1 || cov <= 0 {
		t.Fatalf("coverage %v out of (0,1) after shedding", cov)
	}
	if rep.Checks+rep.Shed != full.Checks {
		t.Fatalf("analyzed %d + shed %d != total accesses %d", rep.Checks, rep.Shed, full.Checks)
	}
	for _, k := range rep.RaceKeys() {
		if !fullKeys[k] {
			t.Fatalf("sampling-mode run invented race %v not in the full set", k)
		}
	}
}

// TestServerMetrics: the obs counters must reflect a served session.
func TestServerMetrics(t *testing.T) {
	m := obs.NewMetrics()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Shards: 2, NoShed: true, Metrics: m})
	go srv.Serve(ln)

	tr := recordTrace(t, "raytrace", 7)
	resp := streamTrace(t, ln.Addr().String(), tr)
	srv.Close()

	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if got := m.Counter("server.events").Value(); got != uint64(tr.Len()) {
		t.Fatalf("server.events = %d, want %d", got, tr.Len())
	}
	if m.Counter("server.conns").Value() != 1 {
		t.Fatalf("server.conns = %d, want 1", m.Counter("server.conns").Value())
	}
	if got := m.Counter("server.analyzed").Value(); got != resp.Analyzed {
		t.Fatalf("server.analyzed = %d, response said %d", got, resp.Analyzed)
	}
	if m.Gauge("server.sessions.active").Value() != 0 {
		t.Fatal("sessions gauge not back to 0 after session end")
	}
}
