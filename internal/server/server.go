package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/trace"
)

// Config tunes the streaming server. The zero value is usable.
type Config struct {
	// Shards/Workers/BatchSize/QueueBatches configure each connection's
	// detection session (see SessionConfig).
	Shards       int
	Workers      int
	BatchSize    int
	QueueBatches int
	// NoShed disables the overload governor (sessions then block instead
	// of sampling; useful for lossless offline-over-socket runs).
	NoShed bool
	// Metrics, when non-nil, receives the server.* counters and gauges;
	// wire it to the obs telemetry endpoint for live observability.
	Metrics *obs.Metrics

	// workerGate is plumbed to each session; tests use it to force
	// overload deterministically.
	workerGate func(int)
}

// Server accepts trace-wire connections and answers each with a JSON
// detection report. One connection is one session: the client streams a
// serialized trace (v1 or v2), half-closes or just stops writing, and reads
// the report back.
type Server struct {
	cfg Config
	m   *serverMetrics

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	stopC  chan struct{}
}

// New returns a server ready to Serve.
func New(cfg Config) *Server {
	return &Server{
		cfg:   cfg,
		m:     newServerMetrics(cfg.Metrics),
		conns: make(map[net.Conn]struct{}),
		stopC: make(chan struct{}),
	}
}

// Serve accepts connections on ln until Close. It always returns a non-nil
// error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	if s.m != nil {
		s.wg.Add(1)
		go s.rateLoop()
	}
	defer ln.Close()
	go func() {
		<-s.stopC
		ln.Close()
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return net.ErrClosed
			}
			return err
		}
		s.track(c, true)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.track(c, false)
			defer c.Close()
			s.handle(c)
		}()
	}
}

func (s *Server) track(c net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
}

// Close stops accepting, closes live connections, and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stopC)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// rateLoop maintains the server.events_per_sec gauge from the events
// counter over a 1-second window.
func (s *Server) rateLoop() {
	defer s.wg.Done()
	t := time.NewTicker(time.Second)
	defer t.Stop()
	last := s.m.events.Value()
	for {
		select {
		case <-s.stopC:
			return
		case <-t.C:
			now := s.m.events.Value()
			s.m.rate.Set(int64(now - last))
			last = now
		}
	}
}

// RaceJSON is one race in the wire response; Text is the exact
// detect.Race.String() rendering, so clients can diff against txtrace
// output line-for-line.
type RaceJSON struct {
	Addr      uint64 `json:"addr"`
	PrevSite  uint32 `json:"prev_site"`
	CurSite   uint32 `json:"cur_site"`
	PrevWrite bool   `json:"prev_write"`
	CurWrite  bool   `json:"cur_write"`
	PrevTID   int32  `json:"prev_tid"`
	CurTID    int32  `json:"cur_tid"`
	Text      string `json:"text"`
}

// Response is the JSON document a session answers with.
type Response struct {
	Name          string     `json:"name"`
	Events        uint64     `json:"events"`
	Analyzed      uint64     `json:"analyzed"`
	Shed          uint64     `json:"shed"`
	Sampled       bool       `json:"sampled"`
	GovernorTrips uint64     `json:"governor_trips"`
	Coverage      string     `json:"coverage"`
	RaceCount     int        `json:"race_count"`
	Races         []RaceJSON `json:"races"`
	Error         string     `json:"error,omitempty"`
}

// MakeResponse renders a report as the wire response document.
func MakeResponse(r *Report) *Response {
	resp := &Response{
		Name:          r.Name,
		Events:        r.Events,
		Analyzed:      r.Checks,
		Shed:          r.Shed,
		Sampled:       r.Sampled(),
		GovernorTrips: r.GovernorTrips,
		Coverage:      report.FormatFixed(r.Coverage(), 4),
		RaceCount:     r.RaceCount(),
		Races:         make([]RaceJSON, 0, r.RaceCount()),
	}
	for _, rc := range r.Races() {
		resp.Races = append(resp.Races, RaceJSON{
			Addr:     uint64(rc.Addr),
			PrevSite: uint32(rc.PrevSite), CurSite: uint32(rc.CurSite),
			PrevWrite: rc.PrevWrite, CurWrite: rc.CurWrite,
			PrevTID: int32(rc.PrevTID), CurTID: int32(rc.CurTID),
			Text: rc.String(),
		})
	}
	return resp
}

// handle runs one connection: decode the trace stream incrementally, feed
// the session, answer with the JSON report (or a JSON error for malformed
// streams).
func (s *Server) handle(c net.Conn) {
	if s.m != nil {
		s.m.conns.Inc()
	}
	enc := json.NewEncoder(c)
	sr, err := trace.NewStreamReader(c)
	if err != nil {
		enc.Encode(&Response{Error: fmt.Sprintf("bad trace header: %v", err)})
		return
	}
	sess := NewSession(SessionConfig{
		Shards: s.cfg.Shards, Workers: s.cfg.Workers,
		BatchSize: s.cfg.BatchSize, QueueBatches: s.cfg.QueueBatches,
		Shed:    !s.cfg.NoShed,
		metrics: s.m, workerGate: s.cfg.workerGate,
	})
	for {
		e, err := sr.Next()
		if err != nil {
			rep := sess.Finish(sr.Name())
			resp := MakeResponse(rep)
			if !errors.Is(err, io.EOF) {
				resp.Error = fmt.Sprintf("stream error after %d events: %v", rep.Events, err)
			}
			enc.Encode(resp)
			return
		}
		sess.Feed(e)
	}
}
