package server

import (
	"sync"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/trace"
)

// SessionConfig tunes one streaming detection session.
type SessionConfig struct {
	// Shards is the address-shard count (>= 1).
	Shards int
	// Workers bounds the detection goroutines (<= Shards is useful; more
	// than Shards idles). 0 means Shards.
	Workers int
	// BatchSize is the number of accesses routed to a shard before its
	// batch is flushed to the worker queue. 0 means DefaultBatchSize.
	BatchSize int
	// QueueBatches is the per-worker queue capacity in batches. 0 means
	// DefaultQueueBatches.
	QueueBatches int
	// Shed enables the overload governor: when a worker queue is full,
	// access batches are dropped (degrading to sampling-mode detection
	// with reported coverage) instead of blocking ingestion. Off, Feed
	// blocks until the worker catches up — lossless, used offline.
	Shed bool

	metrics *serverMetrics
	// workerGate, when set, runs before a worker processes each batch;
	// tests use it to hold workers and force overload deterministically.
	workerGate func(worker int)
}

// Defaults for SessionConfig zero fields.
const (
	DefaultBatchSize    = 256
	DefaultQueueBatches = 16
)

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Workers < 1 || c.Workers > c.Shards {
		c.Workers = c.Shards
	}
	if c.BatchSize < 1 {
		c.BatchSize = DefaultBatchSize
	}
	if c.QueueBatches < 1 {
		c.QueueBatches = DefaultQueueBatches
	}
	return c
}

// workItem is one batch of routed accesses bound for a shard.
type workItem struct {
	shard   int
	threads int
	batch   []shardEvt
}

// Session is one client's streaming detection run: events arrive in trace
// order through Feed (single-goroutine ingestion, like one connection), the
// sync events drive the sequential clock router, and access batches fan out
// to shard workers. Finish flushes, joins the workers, and merges per-shard
// findings into a Report.
//
// With Shed disabled the result is byte-identical to the sequential
// detector; with Shed enabled it degrades to sampling under overload and
// the Report carries the shed count and coverage.
type Session struct {
	cfg      SessionConfig
	router   *clockRouter
	states   []*shardState
	queues   []chan workItem
	batches  [][]shardEvt
	wg       sync.WaitGroup
	events   uint64
	shed     uint64
	trips    uint64
	shedding bool
	finished bool
	report   *Report
}

// NewSession starts a session's workers and returns it ready for Feed.
func NewSession(cfg SessionConfig) *Session {
	cfg = cfg.withDefaults()
	s := &Session{
		cfg:     cfg,
		router:  newClockRouter(),
		states:  make([]*shardState, cfg.Shards),
		queues:  make([]chan workItem, cfg.Workers),
		batches: make([][]shardEvt, cfg.Shards),
	}
	for i := range s.states {
		s.states[i] = newShardState()
	}
	for w := range s.queues {
		s.queues[w] = make(chan workItem, cfg.QueueBatches)
		s.wg.Add(1)
		go s.worker(w)
	}
	if m := cfg.metrics; m != nil {
		m.sessions.Add(1)
	}
	return s
}

func (s *Session) worker(w int) {
	defer s.wg.Done()
	m := s.cfg.metrics
	for item := range s.queues[w] {
		if s.cfg.workerGate != nil {
			s.cfg.workerGate(w)
		}
		st := s.states[item.shard]
		for _, ev := range item.batch {
			st.access(ev, item.threads)
		}
		if m != nil {
			m.queueDepth.Add(-1)
			m.analyzed.Add(uint64(len(item.batch)))
		}
	}
}

// Feed ingests one event. It must be called from a single goroutine per
// session (the connection's ingestion goroutine), in trace order.
func (s *Session) Feed(e trace.Event) {
	s.events++
	if m := s.cfg.metrics; m != nil {
		m.events.Inc()
	}
	if e.Kind != trace.KAccess {
		// Sync events are never shed: dropping one would corrupt the
		// happens-before frontier for every later access.
		s.router.applySync(e)
		return
	}
	sh := shardOf(e.Addr, s.cfg.Shards)
	if s.shedding {
		if s.queuesDrained() {
			s.shedding = false
		} else {
			s.dropAccess(1)
			return
		}
	}
	s.batches[sh] = append(s.batches[sh], shardEvt{
		vc:   s.router.snapshot(clock.TID(e.TID)),
		addr: e.Addr, idx: s.events - 1, site: e.Site,
		tid: clock.TID(e.TID), write: e.Write,
	})
	if len(s.batches[sh]) >= s.cfg.BatchSize {
		s.flush(sh, false)
	}
}

// queuesDrained reports whether every worker queue is back under half
// capacity — the governor's recovery condition.
func (s *Session) queuesDrained() bool {
	for _, q := range s.queues {
		if len(q) > cap(q)/2 {
			return false
		}
	}
	return true
}

func (s *Session) dropAccess(n int) {
	s.shed += uint64(n)
	if m := s.cfg.metrics; m != nil {
		m.shed.Add(uint64(n))
	}
}

// flush hands shard sh's pending batch to its worker. When shedding is
// enabled and the worker queue is full, the batch is dropped and the
// governor trips into sampling mode; blocking flushes (shed disabled, or
// the final drain) wait instead.
func (s *Session) flush(sh int, block bool) {
	b := s.batches[sh]
	if len(b) == 0 {
		return
	}
	item := workItem{shard: sh, threads: s.router.numThreads(), batch: b}
	q := s.queues[sh%s.cfg.Workers]
	m := s.cfg.metrics
	if s.cfg.Shed && !block {
		select {
		case q <- item:
			if m != nil {
				m.queueDepth.Add(1)
			}
		default:
			s.dropAccess(len(b))
			s.shedding = true
			s.trips++
			if m != nil {
				m.trips.Inc()
			}
			s.batches[sh] = b[:0]
			return
		}
	} else {
		q <- item
		if m != nil {
			m.queueDepth.Add(1)
		}
	}
	s.batches[sh] = make([]shardEvt, 0, s.cfg.BatchSize)
}

// Finish flushes every pending batch (blocking — ingestion is over, so
// waiting no longer stalls a client), joins the workers, and merges the
// per-shard findings into the final report.
//
// Finish is idempotent: a second call returns the first call's report (with
// the name it was finished under) instead of tearing down twice. Retrying or
// misbehaving clients can send a duplicate end-of-stream, and a panic here
// would take down the whole server.
func (s *Session) Finish(name string) *Report {
	if s.finished {
		return s.report
	}
	s.finished = true
	for sh := range s.batches {
		s.flush(sh, true)
	}
	for _, q := range s.queues {
		close(q)
	}
	s.wg.Wait()
	races, checks := mergeShards(s.states)
	if m := s.cfg.metrics; m != nil {
		m.sessions.Add(-1)
		m.races.Add(uint64(len(races)))
	}
	s.report = &Report{
		Name:   name,
		Shards: s.cfg.Shards,
		Events: s.events,
		Checks: checks,
		Shed:   s.shed, GovernorTrips: s.trips,
		races: races,
	}
	return s.report
}

// serverMetrics bundles the obs instruments the server updates; nil-safe
// wrapper construction keeps the hot path branch-cheap.
type serverMetrics struct {
	events   *obs.Counter // server.events: every event ingested
	analyzed *obs.Counter // server.analyzed: accesses actually detected on
	shed     *obs.Counter // server.shed: accesses dropped by the governor
	trips    *obs.Counter // server.governor.trips: overload transitions
	races    *obs.Counter // server.races: distinct races reported
	conns    *obs.Counter // server.conns: connections accepted
	sessions *obs.Gauge   // server.sessions.active

	queueDepth *obs.Gauge // server.queue.depth: batches in flight
	rate       *obs.Gauge // server.events_per_sec: ingest rate, 1s window
}

func newServerMetrics(m *obs.Metrics) *serverMetrics {
	if m == nil {
		return nil
	}
	return &serverMetrics{
		events:     m.Counter("server.events"),
		analyzed:   m.Counter("server.analyzed"),
		shed:       m.Counter("server.shed"),
		trips:      m.Counter("server.governor.trips"),
		races:      m.Counter("server.races"),
		conns:      m.Counter("server.conns"),
		sessions:   m.Gauge("server.sessions.active"),
		queueDepth: m.Gauge("server.queue.depth"),
		rate:       m.Gauge("server.events_per_sec"),
	}
}
