package experiment

import (
	"repro/internal/detect"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table1Row is one application's line of Table 1 plus the Table 2 columns
// that derive from the same runs.
type Table1Row struct {
	App *workload.Workload

	Committed uint64
	Conflict  uint64
	Capacity  uint64
	Unknown   uint64

	TSanRaces   int
	TxRaceRaces int

	BaseCycles   int64
	TSanCycles   int64
	TxRaceCycles int64

	TSanOverhead   float64
	TxRaceOverhead float64

	// Table 2 columns.
	NormOverhead float64 // TxRace overhead / TSan overhead
	Recall       float64
	CostEff      float64
}

// Table1 reproduces the paper's Table 1 (and the per-app inputs of Table 2):
// for every application, transaction statistics, race counts, execution
// times and overheads for TSan and TxRace, averaged over cfg.Trials seeds.
type Table1 struct {
	Rows []Table1Row

	GeoTSanOverhead   float64
	GeoTxRaceOverhead float64
	GeoNormOverhead   float64
	GeoRecall         float64
	GeoCostEff        float64
}

// table1Cell holds the three runs of one (application, trial).
type table1Cell struct {
	base, tsan, tx *runner.Handle
}

// RunTable1 executes the Table 1 experiment over all (or the given)
// workloads: a plan of apps × trials × {baseline, TSan, TxRace} jobs on the
// worker pool, reduced per application in plan order — results are identical
// to the serial run at any cfg.Jobs.
func RunTable1(cfg Config, apps []*workload.Workload) (*Table1, error) {
	cfg = cfg.withDefaults()
	if apps == nil {
		apps = workload.All()
	}
	plan := cfg.newPlan()
	seeds := runner.Seeds(cfg.Seed)
	cells := make([][]table1Cell, len(apps))
	for i, w := range apps {
		cells[i] = make([]table1Cell, cfg.Trials)
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := seeds.Trial(trial)
			cells[i][trial] = table1Cell{
				base: baselineJob(plan, w, cfg, trial, seed),
				tsan: tsanJob(plan, w, cfg, trial, seed),
				tx:   txraceJob(plan, w, cfg, trial, seed),
			}
		}
	}
	if err := plan.Run(); err != nil {
		return nil, err
	}

	t := &Table1{}
	var tsanOv, txOv, normOv, recalls, ces []float64
	for i, w := range apps {
		row := reduceTable1Row(w, cfg, cells[i])
		t.Rows = append(t.Rows, *row)
		tsanOv = append(tsanOv, row.TSanOverhead)
		txOv = append(txOv, row.TxRaceOverhead)
		normOv = append(normOv, row.NormOverhead)
		recalls = append(recalls, row.Recall)
		ces = append(ces, row.CostEff)
	}
	t.GeoTSanOverhead = stats.Geomean(tsanOv)
	t.GeoTxRaceOverhead = stats.Geomean(txOv)
	t.GeoNormOverhead = stats.Geomean(normOv)
	t.GeoRecall = stats.Geomean(recalls)
	t.GeoCostEff = stats.Geomean(ces)
	return t, nil
}

// reduceTable1Row averages one application's trials into its table line.
func reduceTable1Row(w *workload.Workload, cfg Config, trials []table1Cell) *Table1Row {
	row := &Table1Row{App: w}
	var base, tsan, tx float64
	tsanRaces := map[detect.PairKey]struct{}{}
	txRaces := map[detect.PairKey]struct{}{}
	var tsanKeys, txKeys []detect.PairKey

	for _, cell := range trials {
		b, ts, txr := baselineOf(cell.base), tsanOf(cell.tsan), txraceOf(cell.tx)

		base += float64(b.Makespan)
		tsan += float64(ts.Makespan)
		tx += float64(txr.Makespan)
		for _, k := range ts.Races {
			if _, ok := tsanRaces[k]; !ok {
				tsanRaces[k] = struct{}{}
				tsanKeys = append(tsanKeys, k)
			}
		}
		for _, k := range txr.Races {
			if _, ok := txRaces[k]; !ok {
				txRaces[k] = struct{}{}
				txKeys = append(txKeys, k)
			}
		}
		st := txr.Stats
		row.Committed += st.CommittedTxns
		row.Conflict += st.ConflictAborts
		row.Capacity += st.CapacityAborts
		row.Unknown += st.UnknownAborts
	}

	n := uint64(cfg.Trials)
	row.Committed /= n
	row.Conflict /= n
	row.Capacity /= n
	row.Unknown /= n
	row.BaseCycles = int64(base) / int64(n)
	row.TSanCycles = int64(tsan) / int64(n)
	row.TxRaceCycles = int64(tx) / int64(n)
	row.TSanRaces = len(tsanKeys)
	row.TxRaceRaces = len(txKeys)
	row.TSanOverhead = tsan / base
	row.TxRaceOverhead = tx / base
	row.NormOverhead = tx / tsan
	row.Recall = stats.Recall(txKeys, tsanKeys)
	row.CostEff = stats.CostEffectiveness(row.Recall, row.NormOverhead)
	return row
}
