package experiment

import (
	"io"

	"repro/internal/clock"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/workload"
)

// The threads-scaling driver measures the detector along the axis the
// sparse/delta clock representation exists for: thread count. Each point of
// the curve runs the txscale workload three ways — uninstrumented baseline,
// full detection on the sparse path, and full detection on the retained
// dense reference (Config.RefDense) — and the reduction cross-checks that
// sparse and dense agree exactly on races and checks at every count. The
// representation's wall-clock advantage is measured by the detect/join
// bench rows; this driver records the deterministic behaviour of the curve
// (races, checks, overhead, promotion/collapse/fallback counts).

// DefaultThreadCounts is the scaling curve BENCH_6.json records.
func DefaultThreadCounts() []int { return []int{64, 256, 1024} }

// ThreadsRow is one thread count on the scaling curve.
type ThreadsRow struct {
	Threads  int
	Baseline int64
	Makespan int64
	// Overhead is detection makespan over the uninstrumented baseline.
	Overhead float64
	Races    int
	Checks   uint64
	// Clock carries the sparse run's representation counters.
	Clock clock.Stats
	// DenseMatch reports whether the sparse run and the dense reference
	// agreed exactly (race set, order, and check count).
	DenseMatch bool
}

// Threads holds the scaling curve.
type Threads struct {
	App  *workload.Workload
	Rows []ThreadsRow
}

// RunThreads executes the scaling curve over the given thread counts (nil
// means DefaultThreadCounts). Per count it plans a baseline job, a sparse
// TSan job, and a RefDense TSan job; the plan executes on the worker pool
// and the reduction is in plan order, so output is byte-identical at any
// cfg.Jobs.
func RunThreads(cfg Config, counts []int) (*Threads, error) {
	cfg = cfg.withDefaults()
	if len(counts) == 0 {
		counts = DefaultThreadCounts()
	}
	w, err := workload.ByName("txscale")
	if err != nil {
		return nil, err
	}
	plan := cfg.newPlan()
	type cell struct {
		base, sparse, dense *runner.Handle
	}
	cells := make([]cell, len(counts))
	for i, n := range counts {
		ncfg := cfg
		ncfg.Threads = n
		ncfg.RefDense = false
		dcfg := ncfg
		dcfg.RefDense = true
		cells[i] = cell{
			base:   baselineJob(plan, w, ncfg, i, cfg.Seed),
			sparse: tsanJob(plan, w, ncfg, i, cfg.Seed),
			dense:  tsanJob(plan, w, dcfg, i, cfg.Seed),
		}
	}
	if err := plan.Run(); err != nil {
		return nil, err
	}

	out := &Threads{App: w}
	for i, n := range counts {
		b := baselineOf(cells[i].base)
		s, d := tsanOf(cells[i].sparse), tsanOf(cells[i].dense)
		match := s.Checks == d.Checks && len(s.Races) == len(d.Races)
		if match {
			for j := range s.Races {
				if s.Races[j] != d.Races[j] {
					match = false
					break
				}
			}
		}
		out.Rows = append(out.Rows, ThreadsRow{
			Threads:    n,
			Baseline:   b.Makespan,
			Makespan:   s.Makespan,
			Overhead:   float64(s.Makespan) / float64(b.Makespan),
			Races:      len(s.Races),
			Checks:     s.Checks,
			Clock:      s.Clock,
			DenseMatch: match,
		})
	}
	return out, nil
}

// WriteThreads renders the scaling curve.
func (t *Threads) WriteThreads(w io.Writer) {
	report.Section(w, "Threads Scaling: sparse/delta clocks vs dense reference ("+t.App.Name+")")
	tb := &report.Table{Header: []string{
		"threads", "races", "checks", "overhead",
		"promotions", "collapses", "fallbacks", "dense-match",
	}}
	for _, r := range t.Rows {
		tb.Add(r.Threads, r.Races, r.Checks, r.Overhead,
			r.Clock.Promotions, r.Clock.Collapses, r.Clock.Fallbacks,
			denseMatchLabel(r.DenseMatch))
	}
	tb.Write(w)
}

func denseMatchLabel(ok bool) string {
	if ok {
		return "yes"
	}
	return "DIVERGED"
}

// JSON returns the scaling curve as plain data.
func (t *Threads) JSON() any {
	type row struct {
		Threads    int     `json:"threads"`
		Races      int     `json:"races"`
		Checks     uint64  `json:"checks"`
		Overhead   float64 `json:"overhead"`
		Promotions uint64  `json:"clock_promotions"`
		Collapses  uint64  `json:"clock_collapses"`
		Fallbacks  uint64  `json:"clock_fallbacks"`
		DenseMatch bool    `json:"dense_match"`
	}
	var rows []row
	for _, r := range t.Rows {
		rows = append(rows, row{r.Threads, r.Races, r.Checks, r.Overhead,
			r.Clock.Promotions, r.Clock.Collapses, r.Clock.Fallbacks, r.DenseMatch})
	}
	return struct {
		App  string `json:"app"`
		Rows []row  `json:"rows"`
	}{t.App.Name, rows}
}
