package experiment

import (
	"fmt"
	"io"

	"repro/internal/report"
)

// WriteTable1 renders Table 1 with the paper's published values interleaved
// for comparison ("paper" columns).
func (t *Table1) WriteTable1(w io.Writer) {
	report.Section(w, "Table 1: TxRace Execution Statistics and Performance")
	tb := &report.Table{Header: []string{
		"application", "committed", "conflict", "capacity", "unknown",
		"TSan races", "TxRace races",
		"TSan ovh", "(paper)", "TxRace ovh", "(paper)",
	}}
	for _, r := range t.Rows {
		mark := ""
		if r.TxRaceRaces < r.TSanRaces {
			mark = "(*)"
		}
		tb.Add(r.App.Name,
			r.Committed, r.Conflict, r.Capacity, r.Unknown,
			r.TSanRaces, fmt.Sprintf("%d%s", r.TxRaceRaces, mark),
			fmt.Sprintf("%.2fx", r.TSanOverhead), fmt.Sprintf("%.2fx", r.App.Paper.TSanOverhead),
			fmt.Sprintf("%.2fx", r.TxRaceOverhead), fmt.Sprintf("%.2fx", r.App.Paper.TxRaceOverhead),
		)
	}
	tb.Add("geo.mean", "", "", "", "", "", "",
		fmt.Sprintf("%.2fx", t.GeoTSanOverhead), "11.68x",
		fmt.Sprintf("%.2fx", t.GeoTxRaceOverhead), "4.65x")
	tb.Write(w)
}

// WriteTable2 renders Table 2 (cost-effectiveness of TxRace vs TSan).
func (t *Table1) WriteTable2(w io.Writer) {
	report.Section(w, "Table 2: Cost-Effectiveness of TxRace vs TSan")
	tb := &report.Table{Header: []string{
		"application", "overhead", "(paper)", "recall", "(paper)", "cost-eff", "(paper)",
	}}
	for _, r := range t.Rows {
		tb.Add(r.App.Name,
			r.NormOverhead, r.App.Paper.TxRaceOverhead/r.App.Paper.TSanOverhead,
			r.Recall, r.App.Paper.Recall,
			r.CostEff, r.App.Paper.CostEffectiveness,
		)
	}
	tb.Add("geo.mean",
		t.GeoNormOverhead, 0.38,
		t.GeoRecall, 0.95,
		t.GeoCostEff, 2.38,
	)
	tb.Write(w)
}
