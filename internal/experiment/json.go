package experiment

// JSON views: every experiment exposes a JSON() method returning plain data
// (workload pointers flattened to names) so cmd/txbench -format json can
// emit machine-readable results for external plotting.

// JSON returns Table 1 (and the Table 2 columns) as plain data.
func (t *Table1) JSON() any {
	type row struct {
		App            string  `json:"app"`
		Committed      uint64  `json:"committed"`
		Conflict       uint64  `json:"conflict_aborts"`
		Capacity       uint64  `json:"capacity_aborts"`
		Unknown        uint64  `json:"unknown_aborts"`
		TSanRaces      int     `json:"tsan_races"`
		TxRaceRaces    int     `json:"txrace_races"`
		TSanOverhead   float64 `json:"tsan_overhead"`
		TxRaceOverhead float64 `json:"txrace_overhead"`
		NormOverhead   float64 `json:"normalized_overhead"`
		Recall         float64 `json:"recall"`
		CostEff        float64 `json:"cost_effectiveness"`
	}
	out := struct {
		Rows              []row   `json:"rows"`
		GeoTSanOverhead   float64 `json:"geomean_tsan_overhead"`
		GeoTxRaceOverhead float64 `json:"geomean_txrace_overhead"`
		GeoNormOverhead   float64 `json:"geomean_normalized_overhead"`
		GeoRecall         float64 `json:"geomean_recall"`
		GeoCostEff        float64 `json:"geomean_cost_effectiveness"`
	}{
		GeoTSanOverhead:   t.GeoTSanOverhead,
		GeoTxRaceOverhead: t.GeoTxRaceOverhead,
		GeoNormOverhead:   t.GeoNormOverhead,
		GeoRecall:         t.GeoRecall,
		GeoCostEff:        t.GeoCostEff,
	}
	for _, r := range t.Rows {
		out.Rows = append(out.Rows, row{
			App: r.App.Name, Committed: r.Committed, Conflict: r.Conflict,
			Capacity: r.Capacity, Unknown: r.Unknown,
			TSanRaces: r.TSanRaces, TxRaceRaces: r.TxRaceRaces,
			TSanOverhead: r.TSanOverhead, TxRaceOverhead: r.TxRaceOverhead,
			NormOverhead: r.NormOverhead, Recall: r.Recall, CostEff: r.CostEff,
		})
	}
	return out
}

// JSON returns the Fig. 7 breakdown as plain data.
func (f *Fig7) JSON() any {
	type row struct {
		App        string  `json:"app"`
		Overhead   float64 `json:"overhead"`
		XbeginXend float64 `json:"xbegin_xend"`
		Conflict   float64 `json:"conflict"`
		Capacity   float64 `json:"capacity"`
		Unknown    float64 `json:"unknown"`
	}
	var rows []row
	for _, r := range f.Rows {
		rows = append(rows, row{r.App.Name, r.Overhead, r.XbeginXend, r.Conflict, r.Capacity, r.Unknown})
	}
	return rows
}

// JSON returns the Fig. 8 scalability sweep as plain data.
func (f *Fig8) JSON() any {
	type row struct {
		App       string          `json:"app"`
		Overheads map[int]float64 `json:"overheads"`
		Unknowns  map[int]uint64  `json:"unknown_aborts"`
	}
	var rows []row
	for _, r := range f.Rows {
		rows = append(rows, row{r.App.Name, r.Overheads, r.Unknowns})
	}
	return struct {
		Threads []int `json:"threads"`
		Rows    []row `json:"rows"`
	}{f.Threads, rows}
}

// JSON returns the Fig. 9 loop-cut comparison as plain data.
func (f *Fig9) JSON() any {
	type row struct {
		App   string  `json:"app"`
		TSan  float64 `json:"tsan"`
		NoOpt float64 `json:"noopt"`
		Dyn   float64 `json:"dynloopcut"`
		Prof  float64 `json:"profloopcut"`
		CapNo uint64  `json:"capacity_noopt"`
		CapDy uint64  `json:"capacity_dyn"`
		CapPr uint64  `json:"capacity_prof"`
	}
	var rows []row
	for _, r := range f.Rows {
		rows = append(rows, row{r.App.Name, r.TSan, r.NoOpt, r.Dyn, r.Prof, r.CapNo, r.CapDyn, r.CapPro})
	}
	return rows
}

// JSON returns the Fig. 10 cumulative-race series as plain data.
func (f *Fig10) JSON() any {
	return struct {
		TSanRaces  int   `json:"tsan_races"`
		PerRun     []int `json:"per_run"`
		Cumulative []int `json:"cumulative"`
	}{f.TSanRaces, f.PerRun, f.Cumulative}
}

// JSON returns the Fig. 11 cost-effectiveness rows as plain data.
func (f *Fig11) JSON() any {
	type row struct {
		App        string  `json:"app"`
		Sampling10 float64 `json:"sampling_10"`
		Sampling50 float64 `json:"sampling_50"`
		Sampling   float64 `json:"sampling_100"`
		TxRace     float64 `json:"txrace"`
	}
	var rows []row
	for _, r := range f.Rows {
		rows = append(rows, row{r.App.Name, r.Sampling10, r.Sampling50, r.Sampling, r.TxRace})
	}
	return rows
}

// JSON returns the Figs. 12–13 sweep as plain data.
func (f *Fig1213) JSON() any {
	return struct {
		Rates          []int     `json:"rates_percent"`
		Overheads      []float64 `json:"overheads"`
		Recalls        []float64 `json:"recalls"`
		TxRaceOverhead float64   `json:"txrace_overhead"`
		TxRaceRecall   float64   `json:"txrace_recall"`
		Trials         int       `json:"trials"`
		TrialsRaised   bool      `json:"trials_raised"`
	}{f.Rates, f.Overheads, f.Recalls, f.TxRaceOverhead, f.TxRaceRecall, f.Trials, f.TrialsRaised}
}

// JSON returns the precision comparison as plain data.
func (p *Precision) JSON() any {
	type row struct {
		App             string  `json:"app"`
		TrueRaces       int     `json:"true_races"`
		Violations      int     `json:"lockset_reports"`
		TruePositives   int     `json:"true_positives"`
		FalseAlarms     int     `json:"false_alarms"`
		LocksetOverhead float64 `json:"lockset_overhead"`
		TSanOverhead    float64 `json:"tsan_overhead"`
	}
	var rows []row
	for _, r := range p.Rows {
		rows = append(rows, row{r.App.Name, r.TrueRaces, r.Violations, r.TruePositives,
			r.FalseAlarms, r.LocksetOverhead, r.TSanOverhead})
	}
	return rows
}

// JSON returns the shadow-cell comparison as plain data.
func (sh *Shadow) JSON() any {
	type row struct {
		App       string          `json:"app"`
		Sound     int             `json:"sound_races"`
		Bounded   map[int]int     `json:"bounded_races"`
		Recall    map[int]float64 `json:"bounded_recall"`
		Evictions map[int]uint64  `json:"evictions"`
	}
	var rows []row
	for _, r := range sh.Rows {
		rows = append(rows, row{r.App.Name, r.Sound, r.Bounded, r.Recall, r.Evictions})
	}
	return struct {
		Cells []int `json:"cells"`
		Rows  []row `json:"rows"`
	}{sh.Ns, rows}
}
