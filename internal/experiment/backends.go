package experiment

import (
	"io"

	"repro/internal/detect"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The backend matrix compares the HTM conflict backends — the line-ownership
// directory ("dir"), HMTRace-style owner tags ("tag"), and FORTH-style
// entry-capped sets ("bounded") — across the workload suite on the axes the
// backends actually trade against each other: detection recall against the
// planted ground truth, end-to-end overhead over the uninstrumented
// baseline, how much work falls to the software slow path, and the
// abort-cause mix that explains why.

// MatrixBackends is the backend set the matrix sweeps, in report order.
func MatrixBackends() []string { return []string{"dir", "tag", "bounded"} }

// BackendsRow is one (backend, application) cell of the matrix.
type BackendsRow struct {
	Backend string
	App     *workload.Workload

	// Recall is detected races / planted ground-truth races, with races
	// unioned across trials (the paper's race-set granularity).
	Recall float64
	// Overhead is TxRace makespan over the uninstrumented baseline.
	Overhead float64
	// SlowRate is the fraction of regions that executed on the software
	// slow path: slow regions / (committed transactions + slow regions).
	SlowRate float64

	// Abort-cause mix, averaged per trial.
	Committed  uint64
	Conflict   uint64
	Capacity   uint64
	Unknown    uint64
	Artificial uint64 // subset of Conflict caused by TxFail global aborts
}

// BackendsSummary is one backend's aggregate line.
type BackendsSummary struct {
	Backend     string
	GeoOverhead float64
	MeanRecall  float64
	MeanSlow    float64
}

// Backends holds the full matrix, rows grouped backend-major in
// MatrixBackends order with apps in suite order inside each group.
type Backends struct {
	Rows      []BackendsRow
	Summaries []BackendsSummary
}

// RunBackends executes the backend × workload matrix: for every backend,
// every application runs cfg.Trials TxRace trials (plus the shared memoized
// baselines), and the reduction compares race sets against the workload's
// planted ground truth. The plan executes on the worker pool; results are
// byte-identical at any cfg.Jobs.
func RunBackends(cfg Config, apps []*workload.Workload) (*Backends, error) {
	cfg = cfg.withDefaults()
	if apps == nil {
		apps = workload.All()
	}
	backends := MatrixBackends()
	plan := cfg.newPlan()
	seeds := runner.Seeds(cfg.Seed)

	type cell struct {
		base, tx *runner.Handle
	}
	cells := make(map[string][][]cell, len(backends))
	for _, backend := range backends {
		bcfg := cfg
		bcfg.Backend = backend
		perApp := make([][]cell, len(apps))
		for i, w := range apps {
			perApp[i] = make([]cell, cfg.Trials)
			for trial := 0; trial < cfg.Trials; trial++ {
				seed := seeds.Trial(trial)
				perApp[i][trial] = cell{
					base: baselineJob(plan, w, cfg, trial, seed),
					tx:   txraceJob(plan, w, bcfg, trial, seed),
				}
			}
		}
		cells[backend] = perApp
	}
	if err := plan.Run(); err != nil {
		return nil, err
	}

	out := &Backends{}
	for _, backend := range backends {
		var ovs, recalls, slows []float64
		for i, w := range apps {
			row := BackendsRow{Backend: backend, App: w}
			truth := w.Build(cfg.Threads, cfg.Scale).AllRaceKeys()
			var base, tx float64
			var slow, regions uint64
			seen := map[detect.PairKey]struct{}{}
			var keys []detect.PairKey
			for _, c := range cells[backend][i] {
				b, txr := baselineOf(c.base), txraceOf(c.tx)
				base += float64(b.Makespan)
				tx += float64(txr.Makespan)
				for _, k := range txr.Races {
					if _, ok := seen[k]; !ok {
						seen[k] = struct{}{}
						keys = append(keys, k)
					}
				}
				st := txr.Stats
				row.Committed += st.CommittedTxns
				row.Conflict += st.ConflictAborts
				row.Capacity += st.CapacityAborts
				row.Unknown += st.UnknownAborts
				row.Artificial += st.ArtificialAborts
				for _, n := range st.SlowRegions {
					slow += n
				}
				regions += st.CommittedTxns
			}
			n := uint64(cfg.Trials)
			row.Committed /= n
			row.Conflict /= n
			row.Capacity /= n
			row.Unknown /= n
			row.Artificial /= n
			row.Overhead = tx / base
			row.Recall = stats.Recall(keys, truth)
			if regions+slow > 0 {
				row.SlowRate = float64(slow) / float64(regions+slow)
			}
			out.Rows = append(out.Rows, row)
			ovs = append(ovs, row.Overhead)
			recalls = append(recalls, row.Recall)
			slows = append(slows, row.SlowRate)
		}
		out.Summaries = append(out.Summaries, BackendsSummary{
			Backend:     backend,
			GeoOverhead: stats.Geomean(ovs),
			MeanRecall:  stats.Mean(recalls),
			MeanSlow:    stats.Mean(slows),
		})
	}
	return out, nil
}

// WriteBackends renders the matrix and the per-backend summary.
func (b *Backends) WriteBackends(w io.Writer) {
	report.Section(w, "Backend Matrix: HTM conflict backends x workloads")
	tb := &report.Table{Header: []string{
		"backend", "application", "recall", "overhead", "slow-rate",
		"committed", "conflict", "capacity", "unknown", "artificial",
	}}
	for _, r := range b.Rows {
		tb.Add(r.Backend, r.App.Name,
			r.Recall, r.Overhead, r.SlowRate,
			r.Committed, r.Conflict, r.Capacity, r.Unknown, r.Artificial)
	}
	tb.Write(w)

	report.Section(w, "Backend Summary")
	sb := &report.Table{Header: []string{
		"backend", "geo overhead", "mean recall", "mean slow-rate",
	}}
	for _, s := range b.Summaries {
		sb.Add(s.Backend, s.GeoOverhead, s.MeanRecall, s.MeanSlow)
	}
	sb.Write(w)
}

// JSON returns the backend matrix as plain data.
func (b *Backends) JSON() any {
	type row struct {
		Backend    string  `json:"backend"`
		App        string  `json:"app"`
		Recall     float64 `json:"recall"`
		Overhead   float64 `json:"overhead"`
		SlowRate   float64 `json:"slow_rate"`
		Committed  uint64  `json:"committed"`
		Conflict   uint64  `json:"conflict_aborts"`
		Capacity   uint64  `json:"capacity_aborts"`
		Unknown    uint64  `json:"unknown_aborts"`
		Artificial uint64  `json:"artificial_aborts"`
	}
	type summary struct {
		Backend     string  `json:"backend"`
		GeoOverhead float64 `json:"geomean_overhead"`
		MeanRecall  float64 `json:"mean_recall"`
		MeanSlow    float64 `json:"mean_slow_rate"`
	}
	out := struct {
		Rows      []row     `json:"rows"`
		Summaries []summary `json:"summaries"`
	}{}
	for _, r := range b.Rows {
		out.Rows = append(out.Rows, row{
			Backend: r.Backend, App: r.App.Name,
			Recall: r.Recall, Overhead: r.Overhead, SlowRate: r.SlowRate,
			Committed: r.Committed, Conflict: r.Conflict,
			Capacity: r.Capacity, Unknown: r.Unknown, Artificial: r.Artificial,
		})
	}
	for _, s := range b.Summaries {
		out.Summaries = append(out.Summaries, summary{
			Backend: s.Backend, GeoOverhead: s.GeoOverhead,
			MeanRecall: s.MeanRecall, MeanSlow: s.MeanSlow,
		})
	}
	return out
}
