package experiment

import "sync"

// Cache memoizes the deterministic prerequisites that many jobs (and many
// experiment ids within one txbench invocation) share: the uninstrumented
// baseline run and the ProfCut profiling pass, keyed by (workload, threads,
// scale, seed). Both are pure functions of their key — baselines run
// unobserved by policy and profiling runs by construction — so one cached
// execution serves every trial, figure, and table that needs it, and
// memoization cannot change any result.
//
// A Cache is safe for concurrent use; duplicate concurrent requests for one
// key compute it once (the losers block until the winner finishes). Configs
// without an explicit Cache get a private one per driver call, which still
// dedups within that driver; cmd/txbench attaches one Cache to every
// experiment id so e.g. -exp all never re-runs a baseline it already has.
type Cache struct {
	mu sync.Mutex
	m  map[memoKey]*memoEntry
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[memoKey]*memoEntry)}
}

type memoKey struct {
	kind     string // "baseline" | "profile"
	workload string
	threads  int
	scale    int
	seed     uint64
	// backend separates profile entries per HTM conflict backend (the
	// profiling pass observes backend-specific abort behavior); baselines
	// never touch the HTM and always use "".
	backend string
}

type memoEntry struct {
	once sync.Once
	val  any
	err  error
}

// do returns the memoized value for key, computing it with f exactly once.
func (c *Cache) do(key memoKey, f func() (any, error)) (any, error) {
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = &memoEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = f() })
	return e.val, e.err
}

// Len reports how many entries the cache holds (for tests and logs).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
