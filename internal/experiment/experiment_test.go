package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.Trials = 1
	return cfg
}

func apps(t *testing.T, names ...string) []*workload.Workload {
	t.Helper()
	out := make([]*workload.Workload, len(names))
	for i, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = w
	}
	return out
}

// TestTable1ShapeInvariants runs a representative subset and checks the
// paper's headline claims: TxRace beats TSan on every application, recall
// is high, and recall losses are confined to the deferred-publication apps.
func TestTable1ShapeInvariants(t *testing.T) {
	subset := apps(t, "fluidanimate", "swaptions", "raytrace", "bodytrack", "streamcluster")
	tab, err := RunTable1(testCfg(), subset)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row.TxRaceOverhead >= row.TSanOverhead {
			t.Errorf("%s: TxRace %.2fx not faster than TSan %.2fx",
				row.App.Name, row.TxRaceOverhead, row.TSanOverhead)
		}
		if row.TSanOverhead <= 1 {
			t.Errorf("%s: TSan overhead %.2fx <= 1", row.App.Name, row.TSanOverhead)
		}
		switch row.App.Name {
		case "bodytrack":
			if row.Recall > 0.99 {
				t.Errorf("bodytrack: deferred races not missed (recall %.2f)", row.Recall)
			}
			if row.Recall < 0.5 {
				t.Errorf("bodytrack: recall %.2f too low", row.Recall)
			}
		default:
			if row.Recall != 1 {
				t.Errorf("%s: recall %.2f, want 1", row.App.Name, row.Recall)
			}
		}
		if row.CostEff <= 1 {
			t.Errorf("%s: TxRace not more cost-effective than TSan: %.2f",
				row.App.Name, row.CostEff)
		}
	}
	if tab.GeoNormOverhead >= 1 {
		t.Errorf("geomean normalized overhead %.2f >= 1", tab.GeoNormOverhead)
	}
}

func TestTable1Rendering(t *testing.T) {
	tab, err := RunTable1(testCfg(), apps(t, "raytrace"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tab.WriteTable1(&sb)
	tab.WriteTable2(&sb)
	out := sb.String()
	for _, want := range []string{"raytrace", "geo.mean", "Table 1", "Table 2", "recall"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}

// TestFig7BreakdownSumsToOverhead: the stacked components must add up to
// the measured extra time.
func TestFig7BreakdownSumsToOverhead(t *testing.T) {
	f, err := RunFig7(testCfg(), apps(t, "swaptions", "bodytrack"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Rows {
		sum := 1 + r.XbeginXend + r.Conflict + r.Capacity + r.Unknown
		if diff := sum - r.Overhead; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s: components sum to %.3f, overhead %.3f", r.App.Name, sum, r.Overhead)
		}
	}
	var sb strings.Builder
	f.Write(&sb)
	if !strings.Contains(sb.String(), "xbegin/xend") {
		t.Error("fig7 rendering incomplete")
	}
}

// TestFig8UnknownAbortsRiseAtEightThreads reproduces the paper's 8-thread
// observation on an interrupt-sensitive application.
func TestFig8UnknownAbortsRiseAtEightThreads(t *testing.T) {
	f, err := RunFig8(testCfg(), apps(t, "canneal"))
	if err != nil {
		t.Fatal(err)
	}
	r := f.Rows[0]
	if r.Unknowns[8] <= r.Unknowns[4] {
		t.Errorf("unknown aborts at 8 threads (%d) not above 4 threads (%d)",
			r.Unknowns[8], r.Unknowns[4])
	}
	for _, n := range f.Threads {
		if r.Overheads[n] <= 1 {
			t.Errorf("overhead at %d threads = %.2f", n, r.Overheads[n])
		}
	}
	var sb strings.Builder
	f.Write(&sb)
	if !strings.Contains(sb.String(), "8 threads") {
		t.Error("fig8 rendering incomplete")
	}
}

// TestFig9LoopCutOrdering: for the capacity-dominated application the
// optimization order must hold: NoOpt slowest, both loop-cut schemes below,
// and all below TSan... with Prof ≤ NoOpt and Dyn ≤ NoOpt.
func TestFig9LoopCutOrdering(t *testing.T) {
	f, err := RunFig9(testCfg(), apps(t, "swaptions"))
	if err != nil {
		t.Fatal(err)
	}
	r := f.Rows[0]
	if r.CapNo == 0 {
		t.Fatalf("NoOpt shows no capacity aborts: %+v", r)
	}
	if r.Dyn >= r.NoOpt || r.Prof >= r.NoOpt {
		t.Errorf("loop-cut not beneficial: TSan %.2f NoOpt %.2f Dyn %.2f Prof %.2f",
			r.TSan, r.NoOpt, r.Dyn, r.Prof)
	}
	if r.CapDyn >= r.CapNo {
		t.Errorf("DynLoopcut capacity aborts %d not below NoOpt %d", r.CapDyn, r.CapNo)
	}
	var sb strings.Builder
	f.Write(&sb)
	if !strings.Contains(sb.String(), "DynLoopcut") {
		t.Error("fig9 rendering incomplete")
	}
}

// TestFig10CumulativeMonotone: per-run counts below the TSan total,
// cumulative non-decreasing and converging towards it.
func TestFig10CumulativeMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("vips × 7 runs is the slowest experiment")
	}
	f, err := RunFig10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if f.TSanRaces != 112 {
		t.Fatalf("vips ground truth = %d, want 112", f.TSanRaces)
	}
	prev := 0
	for i, c := range f.Cumulative {
		if c < prev {
			t.Fatalf("cumulative decreased at %d", i)
		}
		if f.PerRun[i] > c {
			t.Fatalf("per-run exceeds cumulative at %d", i)
		}
		prev = c
	}
	if first := f.PerRun[0]; first < 55 || first > 105 {
		t.Errorf("first-run races = %d, want roughly the paper's ~79", first)
	}
	if last := f.Cumulative[len(f.Cumulative)-1]; last < 105 {
		t.Errorf("cumulative after 7 runs = %d, want near 112", last)
	}
}

// TestFig1213OperatingPoint: overhead grows monotonically with the sampling
// rate; recall grows overall; TxRace's point beats its overhead-equivalent
// sampling rate on recall (the cost-effectiveness argument of §8.4).
func TestFig1213OperatingPoint(t *testing.T) {
	f, err := RunFig1213(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(f.Overheads); i++ {
		if f.Overheads[i] < f.Overheads[i-1]-0.02 {
			t.Fatalf("overhead not monotone at %d%%: %v", f.Rates[i], f.Overheads)
		}
	}
	if f.Recalls[10] != 1 {
		t.Fatalf("recall at 100%% sampling = %v, want 1", f.Recalls[10])
	}
	if f.TxRaceRecall < 0.5 || f.TxRaceRecall > 0.99 {
		t.Errorf("TxRace recall = %.2f, want the paper's partial-recall band", f.TxRaceRecall)
	}
	// Interpolate sampling recall at TxRace's overhead: TxRace must win.
	var sampleRecallAtSameCost float64
	for i := 1; i < len(f.Overheads); i++ {
		if f.Overheads[i] >= f.TxRaceOverhead {
			sampleRecallAtSameCost = f.Recalls[i]
			break
		}
	}
	if f.TxRaceRecall <= sampleRecallAtSameCost {
		t.Errorf("TxRace (recall %.2f at %.2f overhead) not better than sampling (%.2f)",
			f.TxRaceRecall, f.TxRaceOverhead, sampleRecallAtSameCost)
	}
	var sb strings.Builder
	f.Write(&sb)
	if !strings.Contains(sb.String(), "operating point") {
		t.Error("fig12/13 rendering incomplete")
	}
}

// TestTrialsAveraging: multiple trials must still produce a sane table.
func TestTrialsAveraging(t *testing.T) {
	cfg := testCfg()
	cfg.Trials = 3
	tab, err := RunTable1(cfg, apps(t, "raytrace"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0].TSanRaces != 2 {
		t.Errorf("raytrace TSan races over trials = %d, want 2", tab.Rows[0].TSanRaces)
	}
}

// TestLoopCutConfigRespected: NoCut config must reach the runner.
func TestLoopCutConfigRespected(t *testing.T) {
	w := apps(t, "swaptions")[0]
	cfg := testCfg()
	cfg.LoopCut = core.NoCut
	tx, err := RunTxRace(w, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Stats.LoopCuts != 0 {
		t.Fatalf("NoCut performed %d cuts", tx.Stats.LoopCuts)
	}
}
