package experiment

import (
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/workload"
)

// AttribRow is one application's cycle-attribution profile under the
// two-phase runtime: where every virtual cycle of the TxRace run went
// (phase ledger) and which causes its aborts charged to (abort ledger).
type AttribRow struct {
	App      *workload.Workload
	Makespan int64
	Races    int
	Attrib   obs.LedgerSnapshot
}

// Attrib is the cycle-attribution experiment: the profiler's answer to the
// paper's Figures 6 and 9 — instead of inferring the overhead breakdown from
// abort counts and cost-model arithmetic, every cycle is charged to a phase
// as it is spent, and the engine verifies the ledger against the thread
// clocks exactly.
type Attrib struct {
	Rows []AttribRow
}

// RunAttrib profiles every given application (all of them when apps is nil)
// under TxRace with an attribution ledger attached: one observed job per
// app on the worker pool. Each job forks the parent observer, so per-app
// snapshots are private to the job and deterministic at any cfg.Jobs; the
// forks also merge back into cfg.Obs, so a caller-attached registry or
// ledger sees the experiment-wide totals.
func RunAttrib(cfg Config, apps []*workload.Workload) (*Attrib, error) {
	cfg = cfg.withDefaults()
	if apps == nil {
		apps = workload.All()
	}
	// Attribution needs an observer with a ledger: forks inherit "has a
	// ledger" from the parent (obs.Observer.Fork), so attach one here when
	// the caller didn't.
	if cfg.Obs == nil {
		cfg.Obs = obs.New(nil, nil)
	}
	if cfg.Obs.Ledger() == nil {
		cfg.Obs.AttachLedger(obs.NewLedger())
	}

	plan := cfg.newPlan()
	handles := make([]*runner.Handle, len(apps))
	for i, w := range apps {
		w := w
		handles[i] = plan.Add(runner.Job{Workload: w.Name, Runtime: "txrace", Seed: cfg.Seed, Observe: true,
			Do: func(j *runner.Job) (any, error) {
				c := cfg
				c.Obs = j.Obs
				r, err := RunTxRace(w, c, j.Seed)
				if err != nil {
					return nil, err
				}
				return &AttribRow{App: w, Makespan: r.Makespan, Races: len(r.Races),
					Attrib: j.Obs.Ledger().Snapshot()}, nil
			},
		})
	}
	if err := plan.Run(); err != nil {
		return nil, err
	}

	a := &Attrib{}
	for _, h := range handles {
		a.Rows = append(a.Rows, *h.Value().(*AttribRow))
	}
	return a, nil
}

// Write renders the attribution profile: one summary table of per-app phase
// shares (the Figure 6/9 shape), then each application's full per-thread
// breakdown and abort-cause mix.
func (a *Attrib) Write(w io.Writer) {
	report.Section(w, "Cycle attribution: where TxRace's cycles go, per application")
	tb := &report.Table{Header: []string{"application", "cycles",
		"app%", "fast%", "slow%", "abort%", "governor%", "sample%", "sched%"}}
	for _, r := range a.Rows {
		tot := r.Attrib.Total
		tb.Add(r.App.Name, tot.Total,
			phasePct(tot, obs.PhaseApp), phasePct(tot, obs.PhaseFast),
			phasePct(tot, obs.PhaseSlow), phasePct(tot, obs.PhaseAbort),
			phasePct(tot, obs.PhaseGovernor), phasePct(tot, obs.PhaseSample),
			phasePct(tot, obs.PhaseSched))
	}
	tb.Write(w)
	for _, r := range a.Rows {
		fmt.Fprintf(w, "\n%s: makespan %d cycles, %d races\n", r.App.Name, r.Makespan, r.Races)
		obs.WriteAttrib(w, r.Attrib)
	}
}

func phasePct(a obs.ThreadAttrib, p obs.Phase) string {
	if a.Total == 0 {
		return report.FormatFixed(0, 1)
	}
	return report.FormatFixed(100*float64(a.Phases[p.String()])/float64(a.Total), 1)
}

// JSON returns the attribution profile as plain data.
func (a *Attrib) JSON() any {
	type row struct {
		App      string             `json:"app"`
		Makespan int64              `json:"makespan"`
		Races    int                `json:"races"`
		Attrib   obs.LedgerSnapshot `json:"attrib"`
	}
	var rows []row
	for _, r := range a.Rows {
		rows = append(rows, row{r.App.Name, r.Makespan, r.Races, r.Attrib})
	}
	return rows
}
