package experiment

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestPrecisionLocksetFindsTrueRacesAndFlagsFreqmine(t *testing.T) {
	p, err := RunPrecision(testCfg(), apps(t, "raytrace", "freqmine", "streamcluster"))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PrecisionRow{}
	for _, r := range p.Rows {
		byName[r.App.Name] = r
	}
	if r := byName["raytrace"]; r.TruePositives != r.TrueRaces || r.FalseAlarms != 0 {
		t.Errorf("raytrace: lockset should match exactly: %+v", r)
	}
	if r := byName["freqmine"]; r.FalseAlarms == 0 {
		t.Errorf("freqmine's init-then-share idiom must trip the lockset detector: %+v", r)
	}
	if r := byName["freqmine"]; r.TrueRaces != 0 {
		t.Errorf("freqmine has no true races: %+v", r)
	}
	var sb strings.Builder
	p.Write(&sb)
	if !strings.Contains(sb.String(), "false alarms") {
		t.Error("precision rendering incomplete")
	}
}

func TestShadowBoundedUnsoundOnStress(t *testing.T) {
	sh, err := RunShadow(testCfg(), apps(t, "raytrace"))
	if err != nil {
		t.Fatal(err)
	}
	// Last row is the synthetic eviction-pressure program.
	last := sh.Rows[len(sh.Rows)-1]
	if last.App.Name != "shadowstress" {
		t.Fatalf("stress row missing: %+v", last)
	}
	if last.Recall[1] >= 1 {
		t.Errorf("N=1 bounded shadow should lose races under eviction pressure: %+v", last)
	}
	if last.Bounded[4] < last.Bounded[1] {
		t.Errorf("more cells should not find fewer races: %+v", last)
	}
	// raytrace's races are found at first contact: bounded is sound there.
	if sh.Rows[0].Recall[4] != 1 {
		t.Errorf("raytrace should be unaffected by bounded shadow: %+v", sh.Rows[0])
	}
	var sb strings.Builder
	sh.Write(&sb)
	if !strings.Contains(sb.String(), "shadowstress") {
		t.Error("shadow rendering incomplete")
	}
}

func TestDetectabilityTaxonomy(t *testing.T) {
	d, err := RunDetectability(testCfg(), apps(t, "bodytrack", "raytrace"), 3)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DetectabilityRow{}
	for _, r := range d.Rows {
		byName[r.App.Name] = r
	}
	bt := byName["bodytrack"]
	if bt.Never != 2 || !bt.NeverAreDeferred {
		t.Errorf("bodytrack's two deferred races must be never-found: %+v", bt)
	}
	rt := byName["raytrace"]
	if rt.Never != 0 || rt.UnionAllRuns != 2 {
		t.Errorf("raytrace's races are reliably found: %+v", rt)
	}
	var sb strings.Builder
	d.Write(&sb)
	if !strings.Contains(sb.String(), "never=deferred?") {
		t.Error("detectability rendering incomplete")
	}
}

func TestJSONViewsAreEncodable(t *testing.T) {
	tab, err := RunTable1(testCfg(), apps(t, "raytrace"))
	if err != nil {
		t.Fatal(err)
	}
	mustEncode(t, tab.JSON())
	f7, err := RunFig7(testCfg(), apps(t, "raytrace"))
	if err != nil {
		t.Fatal(err)
	}
	mustEncode(t, f7.JSON())
	p, err := RunPrecision(testCfg(), apps(t, "raytrace"))
	if err != nil {
		t.Fatal(err)
	}
	mustEncode(t, p.JSON())
}

func mustEncode(t *testing.T, v any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	if len(b) < 10 {
		t.Fatalf("suspiciously empty json: %s", b)
	}
}
