package experiment

import (
	"fmt"
	"io"

	"repro/internal/detect"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/workload"
)

// DetectabilityRow classifies one application's races by how reliably
// TxRace's overlap-based detection finds them across schedules.
type DetectabilityRow struct {
	App *workload.Workload

	TrueRaces int
	Always    int // found in every run
	Sometimes int // found in ≥1 but not all runs
	Never     int // found in no run
	// NeverAreDeferred reports whether every never-found race is one of the
	// injected initialize-then-publish pairs — the structural misses §8.3
	// predicts, as opposed to accidental calibration artifacts.
	NeverAreDeferred bool
	MeanPerRun       float64
	UnionAllRuns     int
}

// Detectability generalizes Figure 10 to the whole suite: per race, the
// probability (over scheduler seeds) that a TxRace run detects it. The
// paper's taxonomy falls out: always-found races (frequently manifesting,
// e.g. canneal's temperature), sometimes-found races (vips' 112,
// schedule-sensitive), never-found races (deferred publication).
type Detectability struct {
	Seeds int
	Rows  []DetectabilityRow
}

// RunDetectability executes `seeds` TxRace runs per race-bearing
// application — all runs of all applications in one plan.
func RunDetectability(cfg Config, apps []*workload.Workload, seeds int) (*Detectability, error) {
	cfg = cfg.withDefaults()
	if apps == nil {
		apps = workload.All()
	}
	if seeds <= 0 {
		seeds = 5
	}
	d := &Detectability{Seeds: seeds}

	type cell struct {
		app      *workload.Workload
		truth    []detect.PairKey
		deferred map[detect.PairKey]bool
		runs     []*runner.Handle
	}
	plan := cfg.newPlan()
	stream := runner.Seeds(cfg.Seed)
	var cells []cell
	for _, w := range apps {
		built := w.Build(cfg.Threads, cfg.Scale)
		truth := built.AllRaceKeys()
		if len(truth) == 0 {
			continue
		}
		deferredSet := map[detect.PairKey]bool{}
		for _, r := range built.Deferred {
			a, b := r.Key()
			deferredSet[detect.PairKey{A: a, B: b}] = true
		}
		c := cell{app: w, truth: truth, deferred: deferredSet}
		for s := 0; s < seeds; s++ {
			c.runs = append(c.runs, txraceJob(plan, w, cfg, s, stream.Trial(s)))
		}
		cells = append(cells, c)
	}
	if err := plan.Run(); err != nil {
		return nil, err
	}

	for _, c := range cells {
		found := map[detect.PairKey]int{}
		total := 0
		for _, h := range c.runs {
			tx := txraceOf(h)
			total += len(tx.Races)
			for _, k := range tx.Races {
				found[k]++
			}
		}
		row := DetectabilityRow{App: c.app, TrueRaces: len(c.truth),
			MeanPerRun: float64(total) / float64(seeds), NeverAreDeferred: true}
		for _, k := range c.truth {
			switch n := found[k]; {
			case n == seeds:
				row.Always++
			case n > 0:
				row.Sometimes++
			default:
				row.Never++
				if !c.deferred[k] {
					row.NeverAreDeferred = false
				}
			}
		}
		row.UnionAllRuns = len(found)
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// Write renders the detectability taxonomy.
func (d *Detectability) Write(w io.Writer) {
	report.Section(w, fmt.Sprintf("Race detectability across %d schedules (generalized Fig. 10)", d.Seeds))
	tb := &report.Table{Header: []string{
		"application", "races", "always", "sometimes", "never", "never=deferred?",
		"mean/run", "union",
	}}
	for _, r := range d.Rows {
		tb.Add(r.App.Name, r.TrueRaces, r.Always, r.Sometimes, r.Never,
			r.NeverAreDeferred, r.MeanPerRun, r.UnionAllRuns)
	}
	tb.Write(w)
}

// JSON returns the detectability taxonomy as plain data.
func (d *Detectability) JSON() any {
	type row struct {
		App              string  `json:"app"`
		TrueRaces        int     `json:"true_races"`
		Always           int     `json:"always"`
		Sometimes        int     `json:"sometimes"`
		Never            int     `json:"never"`
		NeverAreDeferred bool    `json:"never_are_deferred"`
		MeanPerRun       float64 `json:"mean_per_run"`
		UnionAllRuns     int     `json:"union_all_runs"`
	}
	var rows []row
	for _, r := range d.Rows {
		rows = append(rows, row{r.App.Name, r.TrueRaces, r.Always, r.Sometimes,
			r.Never, r.NeverAreDeferred, r.MeanPerRun, r.UnionAllRuns})
	}
	return struct {
		Seeds int   `json:"seeds"`
		Rows  []row `json:"rows"`
	}{d.Seeds, rows}
}
