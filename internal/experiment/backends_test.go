package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/workload"
)

// The backend differential suite: the dir backend must be bit-for-bit the
// pre-seam machine (pinned against the retained RefScan resolver at every
// -jobs value), and the cheaper backends may trade throughput but never the
// race set — on the schedule-robust suite they must catch every
// ground-truth race the directory catches.

// renderTable1 runs Table 1 over the chaos suite under one (backend, jobs)
// setting and returns its text and JSON renderings.
func renderTable1(t *testing.T, backend string, jobs int) (string, string) {
	t.Helper()
	cfg := testCfg()
	cfg.Backend = backend
	cfg.Jobs = jobs
	tab, err := RunTable1(cfg, ChaosSuite())
	if err != nil {
		t.Fatalf("backend=%q jobs=%d: %v", backend, jobs, err)
	}
	var text bytes.Buffer
	tab.WriteTable1(&text)
	tab.WriteTable2(&text)
	js, err := json.Marshal(tab.JSON())
	if err != nil {
		t.Fatalf("backend=%q jobs=%d: %v", backend, jobs, err)
	}
	return text.String(), string(js)
}

// TestBackendDirMatchesRefScanAtAnyJobs pins the tentpole's extraction
// contract: the directory backend behind the ConflictBackend seam renders
// Table 1/2 byte-identically to the pre-directory reference resolver, on
// one worker and on eight.
func TestBackendDirMatchesRefScanAtAnyJobs(t *testing.T) {
	refText, refJSON := renderTable1(t, "refscan", 1)
	for _, backend := range []string{"", "dir", "refscan"} {
		for _, jobs := range []int{1, 8} {
			text, js := renderTable1(t, backend, jobs)
			if text != refText {
				t.Errorf("backend=%q jobs=%d: text output diverged from refscan/jobs=1", backend, jobs)
			}
			if js != refJSON {
				t.Errorf("backend=%q jobs=%d: JSON output diverged from refscan/jobs=1", backend, jobs)
			}
		}
	}
}

func raceSet(keys []detect.PairKey) map[detect.PairKey]struct{} {
	s := make(map[detect.PairKey]struct{}, len(keys))
	for _, k := range keys {
		s[k] = struct{}{}
	}
	return s
}

// TestBackendsNeverMissDirRaces is the suite's soundness bar: on the
// schedule-robust workloads, any ground-truth race the directory backend
// detects must also be detected by the tag and bounded backends. They may
// only add conflict aborts and slow-path falls, never lose a race.
func TestBackendsNeverMissDirRaces(t *testing.T) {
	suite := ChaosSuite()
	for _, name := range []string{"fluidanimate", "raytrace", "dedup"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		suite = append(suite, w)
	}
	for _, w := range suite {
		cfg := testCfg()
		truth := raceSet(w.Build(cfg.Threads, cfg.Scale).AllRaceKeys())
		runs := map[string]map[detect.PairKey]struct{}{}
		for _, backend := range MatrixBackends() {
			bcfg := cfg
			bcfg.Backend = backend
			r, err := RunTxRace(w, bcfg, bcfg.Seed)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, backend, err)
			}
			runs[backend] = raceSet(r.Races)
		}
		for k := range runs["dir"] {
			if _, ok := truth[k]; !ok {
				continue // only ground-truth races bind the cheaper backends
			}
			for _, backend := range []string{"tag", "bounded"} {
				if _, ok := runs[backend][k]; !ok {
					t.Errorf("%s: backend %q missed ground-truth race %v that dir detects",
						w.Name, backend, k)
				}
			}
		}
	}
}

// TestChaosDiffBackendMatrix runs the fault-injection differential suite
// under every backend: whatever the conflict-detection scheme, injected
// faults must not change the race set, and the reference run must still
// match ground truth.
func TestChaosDiffBackendMatrix(t *testing.T) {
	for _, backend := range MatrixBackends() {
		cfg := testCfg()
		cfg.Backend = backend
		d, err := RunChaosDiff(cfg)
		if err != nil {
			t.Fatalf("backend=%q: %v", backend, err)
		}
		for _, r := range d.Rows {
			name := fmt.Sprintf("%s/%s/%s", backend, r.App.Name, r.Plan)
			if !r.Sound {
				t.Errorf("%s: race set diverged from the fault-free reference (%d vs %d)",
					name, r.Races, r.RefRaces)
			}
			if !r.Truth {
				t.Errorf("%s: reference race set does not match ground truth", name)
			}
			if r.Injected == 0 {
				t.Errorf("%s: no faults injected — the differential is vacuous", name)
			}
		}
	}
}

// snapshotFor runs one workload under a backend (with an optional fault
// plan) and returns the folded metrics snapshot.
func snapshotFor(t *testing.T, name, backend string, plan fault.Plan) obs.Snapshot {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	cfg.Backend = backend
	metrics := obs.NewMetrics()
	cfg.Obs = obs.New(nil, metrics)
	gov := core.GovernorConfig{}
	if len(plan.Rules) > 0 {
		gov = ChaosGovernor()
	}
	if _, err := RunTxRaceFault(w, cfg, cfg.Seed, plan, gov); err != nil {
		t.Fatalf("%s/%s: %v", name, backend, err)
	}
	return metrics.Snapshot()
}

// TestBoundedOverflowDistinctFromInjectedCapacity pins that a bounded
// backend's real set-cap overflows and the chaos engine's injected capacity
// bursts land on different obs counters, so a dashboard can tell a machine
// limitation from an injected fault.
func TestBoundedOverflowDistinctFromInjectedCapacity(t *testing.T) {
	// Real overflows, no injection: canneal's footprint blows the tiny caps.
	snap := snapshotFor(t, "canneal", "bounded", fault.Plan{})
	if snap.Counters["htm.bounded.overflow"] == 0 {
		t.Error("bounded canneal: htm.bounded.overflow stayed 0, want real overflows")
	}
	if got := snap.Counters["fault.injected.capacity"]; got != 0 {
		t.Errorf("fault-free run: fault.injected.capacity = %d, want 0", got)
	}
	if snap.Counters["htm.backend.bounded"] != 1 {
		t.Errorf("htm.backend.bounded = %d, want 1", snap.Counters["htm.backend.bounded"])
	}

	// Injected capacity bursts under the dir backend: no bounded sets exist,
	// so the injected counter moves and the overflow counter cannot.
	burst := fault.Plan{Seed: 7, Rules: []fault.Rule{{Kind: fault.CapacityBurst, Prob: 0.05, Burst: 2}}}
	snap = snapshotFor(t, "canneal", "dir", burst)
	if snap.Counters["fault.injected.capacity"] == 0 {
		t.Error("capacity-burst run: fault.injected.capacity stayed 0")
	}
	if got := snap.Counters["htm.bounded.overflow"]; got != 0 {
		t.Errorf("dir backend: htm.bounded.overflow = %d, want 0", got)
	}
	if snap.Counters["htm.backend.dir"] != 1 {
		t.Errorf("htm.backend.dir = %d, want 1", snap.Counters["htm.backend.dir"])
	}

	// Both at once under the bounded backend: the two counters move
	// independently — injection never masquerades as a machine limit.
	snap = snapshotFor(t, "canneal", "bounded", burst)
	if snap.Counters["htm.bounded.overflow"] == 0 || snap.Counters["fault.injected.capacity"] == 0 {
		t.Errorf("bounded+burst: overflow=%d injected=%d, want both nonzero",
			snap.Counters["htm.bounded.overflow"], snap.Counters["fault.injected.capacity"])
	}
}

// TestBackendsMatrixDeterminism extends the -jobs contract to the matrix
// driver: text and JSON render byte-identically on one worker and eight.
func TestBackendsMatrixDeterminism(t *testing.T) {
	render := func(jobs int) (string, string) {
		cfg := testCfg()
		cfg.Jobs = jobs
		b, err := RunBackends(cfg, ChaosSuite())
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var text bytes.Buffer
		b.WriteBackends(&text)
		js, err := json.Marshal(b.JSON())
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return text.String(), string(js)
	}
	t1, j1 := render(1)
	t8, j8 := render(8)
	if t1 != t8 || j1 != j8 {
		t.Error("backend matrix output differs between -jobs 1 and -jobs 8")
	}
}

// TestBackendsMatrixShape pins the matrix driver's row layout and that the
// backends behave characteristically on the suite: the tag backend never
// capacity-aborts, and recall stays perfect for every backend on the
// schedule-robust workloads.
func TestBackendsMatrixShape(t *testing.T) {
	b, err := RunBackends(testCfg(), ChaosSuite())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(MatrixBackends()) * len(ChaosSuite())
	if len(b.Rows) != wantRows {
		t.Fatalf("matrix has %d rows, want %d", len(b.Rows), wantRows)
	}
	if len(b.Summaries) != len(MatrixBackends()) {
		t.Fatalf("matrix has %d summaries, want %d", len(b.Summaries), len(MatrixBackends()))
	}
	for _, r := range b.Rows {
		if r.Backend == "tag" && r.Capacity != 0 {
			t.Errorf("%s/tag: %d capacity aborts, want 0 (no sets to overflow)", r.App.Name, r.Capacity)
		}
		if r.Recall != 1 {
			t.Errorf("%s/%s: recall %.2f on a schedule-robust workload, want 1", r.App.Name, r.Backend, r.Recall)
		}
	}
}
