package experiment

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestChaosDifferentialSuite is the fault layer's soundness proof: for
// every (workload, fault plan) pair of the differential suite, the faulted
// run's race set must equal the fault-free reference's — and the run must
// actually have degraded (faults injected, governor tripped, regions forced
// onto the slow path), or the equality would be vacuous.
func TestChaosDifferentialSuite(t *testing.T) {
	d, err := RunChaosDiff(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != len(ChaosSuite())*len(ChaosPlans()) {
		t.Fatalf("suite ran %d rows, want %d", len(d.Rows), len(ChaosSuite())*len(ChaosPlans()))
	}
	for _, r := range d.Rows {
		name := r.App.Name + "/" + r.Plan
		if !r.Sound {
			t.Errorf("%s: race set diverged from the fault-free reference (%d vs %d races)",
				name, r.Races, r.RefRaces)
		}
		if !r.Truth {
			t.Errorf("%s: reference race set does not match the workload's ground truth", name)
		}
		if r.Injected == 0 {
			t.Errorf("%s: no faults injected — the differential is vacuous", name)
		}
		if r.Forced == 0 {
			t.Errorf("%s: core.fallback.forced stayed 0 — the governor never engaged", name)
		}
		if r.Trips == 0 {
			t.Errorf("%s: governor never tripped", name)
		}
	}
	if !d.Sound() {
		t.Error("ChaosDiff.Sound() = false")
	}
}

// TestChaosSuiteReferencesDetectAll pins why the suite workloads are the
// soundness yardstick: fault-free, every built-in race pair is detected —
// their detection is schedule-robust, unlike the evaluation applications'.
func TestChaosSuiteReferencesDetectAll(t *testing.T) {
	cfg := testCfg()
	for _, w := range ChaosSuite() {
		r, err := RunTxRace(w, cfg, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		want := w.Build(cfg.Threads, cfg.Scale).AllRaceKeys()
		if !sameRaceSet(r.Races, want) {
			t.Errorf("%s: fault-free TxRace found %d races, ground truth has %d",
				w.Name, len(r.Races), len(want))
		}
	}
}

// TestChaosDeterminism extends the -jobs contract to the chaos drivers:
// the sweep (faults enabled — injection is seeded per job) and the
// differential suite render byte-identically on one worker and eight.
func TestChaosDeterminism(t *testing.T) {
	renderSweep := func(jobs int) (string, string) {
		cfg := testCfg()
		cfg.Jobs = jobs
		ch, err := RunChaos(cfg, nil, nil)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var text bytes.Buffer
		ch.Write(&text)
		js, err := json.Marshal(ch.JSON())
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return text.String(), string(js)
	}
	text1, json1 := renderSweep(1)
	text8, json8 := renderSweep(8)
	if text1 != text8 {
		t.Errorf("sweep text differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", text1, text8)
	}
	if json1 != json8 {
		t.Errorf("sweep JSON differs between -jobs 1 and -jobs 8:\n%s\n%s", json1, json8)
	}

	renderDiff := func(jobs int) string {
		cfg := testCfg()
		cfg.Jobs = jobs
		d, err := RunChaosDiff(cfg)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var text bytes.Buffer
		d.Write(&text)
		return text.String()
	}
	if d1, d8 := renderDiff(1), renderDiff(8); d1 != d8 {
		t.Errorf("differential suite output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", d1, d8)
	}
}
