package experiment

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ShadowRow compares the sound slow-path configuration against stock TSan's
// memory-bounded shadow for one application.
type ShadowRow struct {
	App       *workload.Workload
	Sound     int         // races with exact FastTrack state
	Bounded   map[int]int // races with N shadow cells
	Recall    map[int]float64
	Evictions map[int]uint64
}

// Shadow is the §5 shadow-cell configuration experiment: the paper notes
// that stock TSan keeps N (default 4) shadow cells per 8 application bytes
// with random replacement, which "may affect soundness", and that it
// therefore configured TSan with enough cells to be sound. This experiment
// measures the soundness cost of the bounded configurations.
type Shadow struct {
	Ns   []int
	Rows []ShadowRow
}

// shadowStress builds the eviction-pressure pattern the paper's §5 caveat
// is about: a racy write whose shadow record must survive a flood of
// *ordered* reader traffic on the same granule before the racing write
// arrives. With bounded cells the record is randomly evicted and the race
// pair is lost; the sound configuration keeps it. The pattern is the
// app-level analogue of detect's TestShadowEvictionUnsoundness.
func shadowStress() *workload.Workload {
	return &workload.Workload{
		Name:      "shadowstress",
		SlowScale: 1,
		Paper:     workload.Paper{TSanRaces: 8, TxRaceRaces: 8, TSanOverhead: 1, TxRaceOverhead: 1, Recall: 1},
		Build: func(threads, scale int) *workload.Built {
			b := workload.NewB()
			sem := b.Sync()
			races := make([]workload.RacyVar, 8)
			var writer, racer []sim.Instr
			for i := range races {
				races[i] = b.NewRacyVar()
				writer = append(writer, races[i].WriteA())
			}
			// Publish to the reader flood (they synchronize with the
			// writer, so their reads are ordered — pure eviction traffic).
			// One static read site per variable keeps the ground-truth
			// race set small and interpretable.
			readSite := make([]sim.SiteID, len(races))
			for i := range readSite {
				readSite[i] = b.Site()
			}
			readers := make([][]sim.Instr, 5)
			for r := range readers {
				writer = append(writer, &sim.Signal{C: sem})
				var body []sim.Instr
				body = append(body, &sim.Wait{C: sem})
				for rep := 0; rep < 3; rep++ {
					for i := range races {
						body = append(body, workload.ReadAt(sim.Fixed(races[i].Addr), readSite[i]))
					}
				}
				readers[r] = body
			}
			// The racing writer never synchronizes; it arrives last.
			racer = append(racer, workload.Work(20_000))
			racer = append(racer, &sim.Syscall{Name: "cut", Cycles: 30})
			for i := range races {
				racer = append(racer, races[i].WriteB())
			}
			workers := append([][]sim.Instr{writer}, readers...)
			workers = append(workers, racer)
			return &workload.Built{
				Prog:  &sim.Program{Name: "shadowstress", Workers: workers},
				Races: races,
			}
		},
	}
}

// boundedResult is what a bounded-shadow job returns.
type boundedResult struct {
	races     int
	recall    float64
	evictions uint64
}

// boundedJob runs the workload under TSan with an N-cell bounded shadow and
// scores it against the sound ground truth.
func boundedJob(p *runner.Plan, w *workload.Workload, cfg Config, n int, full *TSanRun) *runner.Handle {
	return p.Add(runner.Job{Workload: w.Name, Runtime: fmt.Sprintf("tsan-bounded(N=%d)", n), Seed: cfg.Seed, Observe: true,
		Do: func(j *runner.Job) (any, error) {
			c := cfg
			c.Obs = j.Obs
			built := w.Build(c.Threads, c.Scale)
			rt := core.NewTSanBounded(n, int64(c.Seed)+int64(n))
			rt.SlowScale = w.SlowScale
			if _, err := sim.NewEngine(c.engineConfig(w, c.Seed)).Run(
				instrument.ForTSan(built.Prog), rt); err != nil {
				return nil, fmt.Errorf("%s bounded(N=%d): %w", w.Name, n, err)
			}
			return &boundedResult{
				races:     rt.Detector().RaceCount(),
				recall:    stats.Recall(rt.Detector().RaceKeys(), full.Races),
				evictions: rt.Detector().Evictions,
			}, nil
		},
	})
}

// RunShadow executes the comparison over the race-bearing applications plus
// the eviction-pressure stress program, in two plan phases: the sound TSan
// ground truth for every application first, then the bounded configurations
// for those with races.
func RunShadow(cfg Config, apps []*workload.Workload) (*Shadow, error) {
	cfg = cfg.withDefaults()
	if apps == nil {
		apps = workload.All()
	}
	apps = append(apps[:len(apps):len(apps)], shadowStress())
	sh := &Shadow{Ns: []int{1, 2, 4}}

	truth := cfg.newPlan()
	fulls := make([]*runner.Handle, len(apps))
	for i, w := range apps {
		fulls[i] = tsanJob(truth, w, cfg, 0, cfg.Seed)
	}
	if err := truth.Run(); err != nil {
		return nil, err
	}

	type cell struct {
		app     *workload.Workload
		full    *TSanRun
		bounded map[int]*runner.Handle
	}
	sweep := cfg.newPlan()
	var cells []cell
	for i, w := range apps {
		full := tsanOf(fulls[i])
		if len(full.Races) == 0 {
			continue
		}
		c := cell{app: w, full: full, bounded: map[int]*runner.Handle{}}
		for _, n := range sh.Ns {
			c.bounded[n] = boundedJob(sweep, w, cfg, n, full)
		}
		cells = append(cells, c)
	}
	if err := sweep.Run(); err != nil {
		return nil, err
	}

	for _, c := range cells {
		row := ShadowRow{App: c.app, Sound: len(c.full.Races),
			Bounded: map[int]int{}, Recall: map[int]float64{}, Evictions: map[int]uint64{}}
		for _, n := range sh.Ns {
			b := c.bounded[n].Value().(*boundedResult)
			row.Bounded[n] = b.races
			row.Recall[n] = b.recall
			row.Evictions[n] = b.evictions
		}
		sh.Rows = append(sh.Rows, row)
	}
	return sh, nil
}

// Write renders the shadow-cell comparison.
func (sh *Shadow) Write(w io.Writer) {
	report.Section(w, "Shadow-cell configuration (§5): sound slow path vs bounded TSan shadow")
	tb := &report.Table{Header: []string{
		"application", "sound races",
		"N=1 races", "N=1 recall", "N=2 races", "N=2 recall", "N=4 races", "N=4 recall",
	}}
	for _, r := range sh.Rows {
		tb.Add(r.App.Name, r.Sound,
			r.Bounded[1], r.Recall[1], r.Bounded[2], r.Recall[2], r.Bounded[4], r.Recall[4])
	}
	tb.Write(w)
}
