package experiment

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/workload"
)

func pairKeys(rvs []workload.RacyVar) []detect.PairKey {
	out := make([]detect.PairKey, 0, len(rvs))
	for _, r := range rvs {
		a, b := r.Key()
		out = append(out, detect.PairKey{A: a, B: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func corpusApps(t *testing.T) []*workload.Workload {
	t.Helper()
	var apps []*workload.Workload
	for _, name := range workload.GoNames() {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		apps = append(apps, w)
	}
	if len(apps) < 10 {
		t.Fatalf("corpus has %d workloads, want >= 10", len(apps))
	}
	return apps
}

// TestGoCorpusTxRace is the end-to-end acceptance check for the Go frontend:
// the two-phase detector over each compiled snippet reports exactly the
// pinned non-deferred ground truth — every real race that overlaps inside
// transactions is caught, every race-free twin (including the false-sharing
// ones) comes back clean, and the deferred capture race stays TSan-only.
func TestGoCorpusTxRace(t *testing.T) {
	cfg := Config{Trials: 1, LoopCut: core.ProfCut}
	for _, w := range corpusApps(t) {
		t.Run(w.Name, func(t *testing.T) {
			built := w.Build(0, 0)
			tx, err := RunTxRace(w, cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := pairKeys(built.Races)
			if !reflect.DeepEqual(tx.Races, want) && !(len(tx.Races) == 0 && len(want) == 0) {
				t.Fatalf("TxRace races = %v, pinned %v (deferred: %v)", tx.Races, want, pairKeys(built.Deferred))
			}
			ts, err := RunTSan(w, cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			all := built.AllRaceKeys()
			if !reflect.DeepEqual(ts.Races, all) && !(len(ts.Races) == 0 && len(all) == 0) {
				t.Fatalf("TSan races = %v, pinned %v", ts.Races, all)
			}
		})
	}
}

// TestGoCorpusDriversDeterministic pins the acceptance requirement that the
// corpus behaves like any other workload under the experiment drivers:
// Table 1 and the precision comparison run over it, and the results are
// identical at any parallelism.
func TestGoCorpusDriversDeterministic(t *testing.T) {
	apps := corpusApps(t)
	base := Config{Trials: 1, LoopCut: core.ProfCut}

	cfg1, cfg8 := base, base
	cfg1.Jobs, cfg8.Jobs = 1, 8
	t1, err := RunTable1(cfg1, apps)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := RunTable1(cfg8, apps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1, t8) {
		t.Fatal("Table 1 over the Go corpus differs between -jobs 1 and -jobs 8")
	}
	for _, row := range t1.Rows {
		built := row.App.Build(0, 0)
		if row.TSanRaces != len(built.AllRaceKeys()) {
			t.Errorf("%s: Table 1 TSan races = %d, pinned %d", row.App.Name, row.TSanRaces, len(built.AllRaceKeys()))
		}
		if row.TxRaceRaces != len(built.Races) {
			t.Errorf("%s: Table 1 TxRace races = %d, pinned non-deferred %d", row.App.Name, row.TxRaceRaces, len(built.Races))
		}
	}

	p1, err := RunPrecision(cfg1, apps)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := RunPrecision(cfg8, apps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p8) {
		t.Fatal("precision comparison over the Go corpus differs between -jobs 1 and -jobs 8")
	}
	for _, row := range p1.Rows {
		built := row.App.Build(0, 0)
		if row.TrueRaces != len(built.AllRaceKeys()) {
			t.Errorf("%s: precision ground truth = %d, pinned %d", row.App.Name, row.TrueRaces, len(built.AllRaceKeys()))
		}
	}
}
