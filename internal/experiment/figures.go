package experiment

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/workload"
)

// Fig7Row is one application's overhead breakdown (Figure 7): the measured
// TxRace overhead decomposed into pure fast-path cost (xbegin/xend, TxFail
// reads, fast-path sync tracking, small-region hooks) and the slow-path
// episodes attributable to each abort cause.
type Fig7Row struct {
	App      *workload.Workload
	Overhead float64 // total TxRace overhead (x)
	// The components below sum to Overhead - 1 (the extra time over
	// baseline). Raw cycle attributions from the runtime are rescaled onto
	// the measured makespan difference, since per-thread cycle sums and the
	// parallel makespan are related but not identical.
	XbeginXend float64
	Conflict   float64
	Capacity   float64
	Unknown    float64
}

// Fig7 is the overhead-breakdown figure.
type Fig7 struct{ Rows []Fig7Row }

// RunFig7 reproduces Figure 7: per application, a {baseline, TxRace} job
// pair, reduced in plan order.
func RunFig7(cfg Config, apps []*workload.Workload) (*Fig7, error) {
	cfg = cfg.withDefaults()
	if apps == nil {
		apps = workload.All()
	}
	plan := cfg.newPlan()
	type pair struct{ base, tx *runner.Handle }
	hs := make([]pair, len(apps))
	for i, w := range apps {
		hs[i] = pair{
			base: baselineJob(plan, w, cfg, 0, cfg.Seed),
			tx:   txraceJob(plan, w, cfg, 0, cfg.Seed),
		}
	}
	if err := plan.Run(); err != nil {
		return nil, err
	}
	f := &Fig7{}
	for i, w := range apps {
		b, tx := baselineOf(hs[i].base), txraceOf(hs[i].tx)
		ovh := float64(tx.Makespan) / float64(b.Makespan)
		st := tx.Stats
		raw := []float64{
			float64(st.CyclesFastPath + st.CyclesSmall),
			float64(st.CyclesConflict),
			float64(st.CyclesCapacity),
			float64(st.CyclesUnknown),
		}
		sum := raw[0] + raw[1] + raw[2] + raw[3]
		extra := ovh - 1
		row := Fig7Row{App: w, Overhead: ovh}
		if sum > 0 && extra > 0 {
			row.XbeginXend = raw[0] / sum * extra
			row.Conflict = raw[1] / sum * extra
			row.Capacity = raw[2] / sum * extra
			row.Unknown = raw[3] / sum * extra
		}
		f.Rows = append(f.Rows, row)
	}
	return f, nil
}

// Write renders Figure 7 with the paper's stacked-column look: '.' is the
// baseline, '#' the pure fast-path cost, then c/C/u for the slow-path
// episodes of each abort cause. Bars are clipped at 12x as in the figure.
func (f *Fig7) Write(w io.Writer) {
	report.Section(w, "Figure 7: Breakdown of runtime overhead (baseline = 1.0)")
	tb := &report.Table{Header: []string{
		"application", "total", "baseline", "xbegin/xend", "conflict", "capacity", "unknown", "(.=base #=tx c=conflict C=capacity u=unknown)",
	}}
	const clip = 12.0
	for _, r := range f.Rows {
		tb.Add(r.App.Name, fmt.Sprintf("%.2fx", r.Overhead),
			1.0, r.XbeginXend, r.Conflict, r.Capacity, r.Unknown,
			report.StackedBar([]float64{1, r.XbeginXend, r.Conflict, r.Capacity, r.Unknown},
				".#cCu", clip, 48))
	}
	tb.Write(w)
}

// Fig8Row is one application's TxRace overhead at each worker-thread count,
// each normalized to the original execution at the same thread count.
type Fig8Row struct {
	App       *workload.Workload
	Overheads map[int]float64
	Unknowns  map[int]uint64
	Conflicts map[int]uint64
	Capacity  map[int]uint64
}

// Fig8 is the scalability figure.
type Fig8 struct {
	Threads []int
	Rows    []Fig8Row
}

// RunFig8 reproduces Figure 8: 2, 4, and 8 worker threads — one {baseline,
// TxRace} job pair per (application, thread count).
func RunFig8(cfg Config, apps []*workload.Workload) (*Fig8, error) {
	cfg = cfg.withDefaults()
	if apps == nil {
		apps = workload.All()
	}
	f := &Fig8{Threads: []int{2, 4, 8}}
	plan := cfg.newPlan()
	type pair struct{ base, tx *runner.Handle }
	hs := make([]map[int]pair, len(apps))
	for i, w := range apps {
		hs[i] = map[int]pair{}
		for _, n := range f.Threads {
			c := cfg
			c.Threads = n
			hs[i][n] = pair{
				base: baselineJob(plan, w, c, 0, c.Seed),
				tx:   txraceJob(plan, w, c, 0, c.Seed),
			}
		}
	}
	if err := plan.Run(); err != nil {
		return nil, err
	}
	for i, w := range apps {
		row := Fig8Row{App: w,
			Overheads: map[int]float64{},
			Unknowns:  map[int]uint64{},
			Conflicts: map[int]uint64{},
			Capacity:  map[int]uint64{},
		}
		for _, n := range f.Threads {
			b, tx := baselineOf(hs[i][n].base), txraceOf(hs[i][n].tx)
			row.Overheads[n] = float64(tx.Makespan) / float64(b.Makespan)
			row.Unknowns[n] = tx.Stats.UnknownAborts
			row.Conflicts[n] = tx.Stats.ConflictAborts
			row.Capacity[n] = tx.Stats.CapacityAborts
		}
		f.Rows = append(f.Rows, row)
	}
	return f, nil
}

// Write renders Figure 8.
func (f *Fig8) Write(w io.Writer) {
	report.Section(w, "Figure 8: Scalability of TxRace (overhead normalized per thread count)")
	tb := &report.Table{Header: []string{
		"application", "2 threads", "4 threads", "8 threads",
		"unknown@2", "unknown@4", "unknown@8",
	}}
	for _, r := range f.Rows {
		tb.Add(r.App.Name,
			fmt.Sprintf("%.2fx", r.Overheads[2]),
			fmt.Sprintf("%.2fx", r.Overheads[4]),
			fmt.Sprintf("%.2fx", r.Overheads[8]),
			r.Unknowns[2], r.Unknowns[4], r.Unknowns[8],
		)
	}
	tb.Write(w)
}

// Fig9Row compares the loop-cut schemes for one application.
type Fig9Row struct {
	App    *workload.Workload
	TSan   float64
	NoOpt  float64
	Dyn    float64
	Prof   float64
	CapNo  uint64 // capacity aborts under NoOpt
	CapDyn uint64
	CapPro uint64
}

// Fig9 is the loop-cut effectiveness figure.
type Fig9 struct{ Rows []Fig9Row }

// fig9Modes fixes the column order of the loop-cut sweep.
var fig9Modes = []core.CutMode{core.NoCut, core.DynCut, core.ProfCut}

// RunFig9 reproduces Figure 9: TSan vs TxRace-NoOpt vs TxRace-DynLoopcut vs
// TxRace-ProfLoopcut — per application, {baseline, TSan} plus one TxRace job
// per scheme.
func RunFig9(cfg Config, apps []*workload.Workload) (*Fig9, error) {
	cfg = cfg.withDefaults()
	if apps == nil {
		apps = workload.All()
	}
	plan := cfg.newPlan()
	type cell struct {
		base, tsan *runner.Handle
		tx         map[core.CutMode]*runner.Handle
	}
	hs := make([]cell, len(apps))
	for i, w := range apps {
		hs[i] = cell{
			base: baselineJob(plan, w, cfg, 0, cfg.Seed),
			tsan: tsanJob(plan, w, cfg, 0, cfg.Seed),
			tx:   map[core.CutMode]*runner.Handle{},
		}
		for _, mode := range fig9Modes {
			c := cfg
			c.LoopCut = mode
			hs[i].tx[mode] = txraceJob(plan, w, c, 0, c.Seed)
		}
	}
	if err := plan.Run(); err != nil {
		return nil, err
	}
	f := &Fig9{}
	for i, w := range apps {
		b, ts := baselineOf(hs[i].base), tsanOf(hs[i].tsan)
		row := Fig9Row{App: w, TSan: float64(ts.Makespan) / float64(b.Makespan)}
		for _, mode := range fig9Modes {
			tx := txraceOf(hs[i].tx[mode])
			ovh := float64(tx.Makespan) / float64(b.Makespan)
			switch mode {
			case core.NoCut:
				row.NoOpt, row.CapNo = ovh, tx.Stats.CapacityAborts
			case core.DynCut:
				row.Dyn, row.CapDyn = ovh, tx.Stats.CapacityAborts
			case core.ProfCut:
				row.Prof, row.CapPro = ovh, tx.Stats.CapacityAborts
			}
		}
		f.Rows = append(f.Rows, row)
	}
	return f, nil
}

// Write renders Figure 9.
func (f *Fig9) Write(w io.Writer) {
	report.Section(w, "Figure 9: Effectiveness of loop-cut optimization")
	tb := &report.Table{Header: []string{
		"application", "TSan", "NoOpt", "DynLoopcut", "ProfLoopcut",
		"capacity NoOpt", "capacity Dyn", "capacity Prof",
	}}
	for _, r := range f.Rows {
		tb.Add(r.App.Name,
			fmt.Sprintf("%.2fx", r.TSan), fmt.Sprintf("%.2fx", r.NoOpt),
			fmt.Sprintf("%.2fx", r.Dyn), fmt.Sprintf("%.2fx", r.Prof),
			r.CapNo, r.CapDyn, r.CapPro,
		)
	}
	tb.Write(w)
}
