package experiment

import (
	"fmt"
	"io"

	"repro/internal/detect"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig10 is the cumulative distinct-race experiment for vips (§8.3):
// overlap-based detection is scheduler-sensitive, so each run finds a
// different subset of the 112 races; the union converges to TSan's set.
type Fig10 struct {
	TSanRaces  int
	PerRun     []int // distinct races found in run i
	Cumulative []int // distinct races found in runs 0..i
}

// RunFig10 reproduces Figure 10: seven TxRace runs of vips under different
// seeds.
func RunFig10(cfg Config) (*Fig10, error) {
	cfg = cfg.withDefaults()
	w, err := workload.ByName("vips")
	if err != nil {
		return nil, err
	}
	ts, err := RunTSan(w, cfg, cfg.Seed)
	if err != nil {
		return nil, err
	}
	f := &Fig10{TSanRaces: len(ts.Races)}
	var union []detect.PairKey
	for run := 0; run < 7; run++ {
		tx, err := RunTxRace(w, cfg, cfg.Seed+uint64(run)*0x5151)
		if err != nil {
			return nil, err
		}
		f.PerRun = append(f.PerRun, len(tx.Races))
		union = stats.Union(union, tx.Races)
		f.Cumulative = append(f.Cumulative, len(union))
	}
	return f, nil
}

// Write renders Figure 10.
func (f *Fig10) Write(w io.Writer) {
	report.Section(w, "Figure 10: Distinct data races detected across runs (vips)")
	fmt.Fprintf(w, "TSan (ground truth): %d races\n\n", f.TSanRaces)
	tb := &report.Table{Header: []string{"iteration", "this run", "cumulative", ""}}
	for i := range f.PerRun {
		tb.Add(i+1, f.PerRun[i], f.Cumulative[i],
			report.Bar(float64(f.Cumulative[i]), float64(f.TSanRaces), 40))
	}
	tb.Write(w)
}

// Fig11Row is one application's cost-effectiveness comparison.
type Fig11Row struct {
	App        *workload.Workload
	Sampling10 float64
	Sampling50 float64
	Sampling   float64 // 100%
	TxRace     float64
}

// Fig11 compares TxRace with TSan+Sampling over the applications in which
// at least one race is detected (nine in the paper).
type Fig11 struct{ Rows []Fig11Row }

// RunFig11 reproduces Figure 11.
func RunFig11(cfg Config) (*Fig11, error) {
	cfg = cfg.withDefaults()
	f := &Fig11{}
	for _, w := range workload.All() {
		b, err := RunBaseline(w, cfg, cfg.Seed)
		if err != nil {
			return nil, err
		}
		full, err := RunTSan(w, cfg, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if len(full.Races) == 0 {
			continue // Fig. 11 covers only race-bearing applications
		}
		fullOvh := float64(full.Makespan) / float64(b.Makespan)
		ce := func(makespan int64, races []detect.PairKey) float64 {
			rec := stats.Recall(races, full.Races)
			norm := (float64(makespan) / float64(b.Makespan)) / fullOvh
			return stats.CostEffectiveness(rec, norm)
		}
		row := Fig11Row{App: w, Sampling: 1} // 100% sampling ≡ TSan ≡ 1... by definition
		for _, rate := range []float64{0.10, 0.50} {
			s, err := RunSampling(w, cfg, cfg.Seed, rate)
			if err != nil {
				return nil, err
			}
			v := ce(s.Makespan, s.Races)
			if rate == 0.10 {
				row.Sampling10 = v
			} else {
				row.Sampling50 = v
			}
		}
		tx, err := RunTxRace(w, cfg, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row.TxRace = ce(tx.Makespan, tx.Races)
		f.Rows = append(f.Rows, row)
	}
	return f, nil
}

// Write renders Figure 11.
func (f *Fig11) Write(w io.Writer) {
	report.Section(w, "Figure 11: Cost-effectiveness of TxRace vs TSan+Sampling")
	tb := &report.Table{Header: []string{
		"application", "sampling 10%", "sampling 50%", "sampling 100%", "TxRace",
	}}
	for _, r := range f.Rows {
		tb.Add(r.App.Name, r.Sampling10, r.Sampling50, r.Sampling, r.TxRace)
	}
	tb.Write(w)
}

// Fig1213 is the bodytrack sampling sweep: runtime overhead (Fig. 12) and
// recall (Fig. 13) as functions of the sampling rate, with TxRace's
// operating point marked.
type Fig1213 struct {
	Rates     []int // percent
	Overheads []float64
	Recalls   []float64

	TxRaceOverhead float64 // normalized to 100% sampling
	TxRaceRecall   float64
}

// RunFig1213 reproduces Figures 12 and 13 on bodytrack.
func RunFig1213(cfg Config) (*Fig1213, error) {
	cfg = cfg.withDefaults()
	w, err := workload.ByName("bodytrack")
	if err != nil {
		return nil, err
	}
	b, err := RunBaseline(w, cfg, cfg.Seed)
	if err != nil {
		return nil, err
	}
	full, err := RunTSan(w, cfg, cfg.Seed)
	if err != nil {
		return nil, err
	}
	fullOvh := float64(full.Makespan) / float64(b.Makespan)
	trials := cfg.Trials
	if trials < 5 {
		trials = 5 // sampling is stochastic; smooth the recall curve
	}
	f := &Fig1213{}
	for pct := 0; pct <= 100; pct += 10 {
		var makespan int64
		// Average overhead and recall over trials: sampling is stochastic.
		recSum := 0.0
		for trial := 0; trial < trials; trial++ {
			s, err := RunSampling(w, cfg, cfg.Seed+uint64(trial)*0x77, float64(pct)/100)
			if err != nil {
				return nil, err
			}
			makespan += s.Makespan
			recSum += stats.Recall(s.Races, full.Races)
		}
		makespan /= int64(trials)
		f.Rates = append(f.Rates, pct)
		f.Overheads = append(f.Overheads, (float64(makespan)/float64(b.Makespan))/fullOvh)
		f.Recalls = append(f.Recalls, recSum/float64(trials))
	}
	tx, err := RunTxRace(w, cfg, cfg.Seed)
	if err != nil {
		return nil, err
	}
	f.TxRaceOverhead = (float64(tx.Makespan) / float64(b.Makespan)) / fullOvh
	f.TxRaceRecall = stats.Recall(tx.Races, full.Races)
	return f, nil
}

// Write renders Figures 12 and 13.
func (f *Fig1213) Write(w io.Writer) {
	report.Section(w, "Figures 12-13: bodytrack under TSan+Sampling (normalized to 100% sampling)")
	tb := &report.Table{Header: []string{"sampling rate", "overhead (Fig.12)", "recall (Fig.13)"}}
	for i, pct := range f.Rates {
		tb.Add(fmt.Sprintf("%d%%", pct), f.Overheads[i], f.Recalls[i])
	}
	tb.Write(w)
	fmt.Fprintf(w, "\nTxRace operating point: overhead %.2f (paper 0.69), recall %.2f (paper 0.75)\n",
		f.TxRaceOverhead, f.TxRaceRecall)
}
