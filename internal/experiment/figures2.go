package experiment

import (
	"fmt"
	"io"
	"log"

	"repro/internal/detect"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig10 is the cumulative distinct-race experiment for vips (§8.3):
// overlap-based detection is scheduler-sensitive, so each run finds a
// different subset of the 112 races; the union converges to TSan's set.
type Fig10 struct {
	TSanRaces  int
	PerRun     []int // distinct races found in run i
	Cumulative []int // distinct races found in runs 0..i
}

// RunFig10 reproduces Figure 10: seven TxRace runs of vips under different
// seeds, plus the TSan ground truth — all eight jobs independent, reduced in
// run order.
func RunFig10(cfg Config) (*Fig10, error) {
	cfg = cfg.withDefaults()
	w, err := workload.ByName("vips")
	if err != nil {
		return nil, err
	}
	const runs = 7
	plan := cfg.newPlan()
	seeds := runner.Seeds(cfg.Seed)
	ts := tsanJob(plan, w, cfg, 0, cfg.Seed)
	txs := make([]*runner.Handle, runs)
	for run := 0; run < runs; run++ {
		txs[run] = txraceJob(plan, w, cfg, run, seeds.Trial(run))
	}
	if err := plan.Run(); err != nil {
		return nil, err
	}
	f := &Fig10{TSanRaces: len(tsanOf(ts).Races)}
	var union []detect.PairKey
	for run := 0; run < runs; run++ {
		tx := txraceOf(txs[run])
		f.PerRun = append(f.PerRun, len(tx.Races))
		union = stats.Union(union, tx.Races)
		f.Cumulative = append(f.Cumulative, len(union))
	}
	return f, nil
}

// Write renders Figure 10.
func (f *Fig10) Write(w io.Writer) {
	report.Section(w, "Figure 10: Distinct data races detected across runs (vips)")
	fmt.Fprintf(w, "TSan (ground truth): %d races\n\n", f.TSanRaces)
	tb := &report.Table{Header: []string{"iteration", "this run", "cumulative", ""}}
	for i := range f.PerRun {
		tb.Add(i+1, f.PerRun[i], f.Cumulative[i],
			report.Bar(float64(f.Cumulative[i]), float64(f.TSanRaces), 40))
	}
	tb.Write(w)
}

// Fig11Row is one application's cost-effectiveness comparison.
type Fig11Row struct {
	App        *workload.Workload
	Sampling10 float64
	Sampling50 float64
	Sampling   float64 // 100%
	TxRace     float64
}

// Fig11 compares TxRace with TSan+Sampling over the applications in which
// at least one race is detected (nine in the paper).
type Fig11 struct{ Rows []Fig11Row }

// RunFig11 reproduces Figure 11 in two plan phases: first {baseline, TSan}
// for every application (the ground truth decides which applications the
// figure covers), then {sampling 10%, sampling 50%, TxRace} for the
// race-bearing ones.
func RunFig11(cfg Config) (*Fig11, error) {
	cfg = cfg.withDefaults()
	apps := workload.All()

	truth := cfg.newPlan()
	type groundTruth struct{ base, tsan *runner.Handle }
	gt := make([]groundTruth, len(apps))
	for i, w := range apps {
		gt[i] = groundTruth{
			base: baselineJob(truth, w, cfg, 0, cfg.Seed),
			tsan: tsanJob(truth, w, cfg, 0, cfg.Seed),
		}
	}
	if err := truth.Run(); err != nil {
		return nil, err
	}

	type sweepCell struct {
		app           *workload.Workload
		base          *BaselineRun
		full          *TSanRun
		s10, s50, txr *runner.Handle
	}
	sweep := cfg.newPlan()
	var cells []sweepCell
	for i, w := range apps {
		full := tsanOf(gt[i].tsan)
		if len(full.Races) == 0 {
			continue // Fig. 11 covers only race-bearing applications
		}
		cells = append(cells, sweepCell{
			app:  w,
			base: baselineOf(gt[i].base),
			full: full,
			s10:  samplingJob(sweep, w, cfg, 0, cfg.Seed, 0.10),
			s50:  samplingJob(sweep, w, cfg, 0, cfg.Seed, 0.50),
			txr:  txraceJob(sweep, w, cfg, 0, cfg.Seed),
		})
	}
	if err := sweep.Run(); err != nil {
		return nil, err
	}

	f := &Fig11{}
	for _, cell := range cells {
		fullOvh := float64(cell.full.Makespan) / float64(cell.base.Makespan)
		ce := func(makespan int64, races []detect.PairKey) float64 {
			rec := stats.Recall(races, cell.full.Races)
			norm := (float64(makespan) / float64(cell.base.Makespan)) / fullOvh
			return stats.CostEffectiveness(rec, norm)
		}
		row := Fig11Row{App: cell.app, Sampling: 1} // 100% sampling ≡ TSan ≡ 1... by definition
		s10, s50, tx := tsanOf(cell.s10), tsanOf(cell.s50), txraceOf(cell.txr)
		row.Sampling10 = ce(s10.Makespan, s10.Races)
		row.Sampling50 = ce(s50.Makespan, s50.Races)
		row.TxRace = ce(tx.Makespan, tx.Races)
		f.Rows = append(f.Rows, row)
	}
	return f, nil
}

// Write renders Figure 11.
func (f *Fig11) Write(w io.Writer) {
	report.Section(w, "Figure 11: Cost-effectiveness of TxRace vs TSan+Sampling")
	tb := &report.Table{Header: []string{
		"application", "sampling 10%", "sampling 50%", "sampling 100%", "TxRace",
	}}
	for _, r := range f.Rows {
		tb.Add(r.App.Name, r.Sampling10, r.Sampling50, r.Sampling, r.TxRace)
	}
	tb.Write(w)
}

// Fig1213 is the bodytrack sampling sweep: runtime overhead (Fig. 12) and
// recall (Fig. 13) as functions of the sampling rate, with TxRace's
// operating point marked.
type Fig1213 struct {
	Rates     []int // percent
	Overheads []float64
	Recalls   []float64

	TxRaceOverhead float64 // normalized to 100% sampling
	TxRaceRecall   float64

	// Trials is the trial count actually used per sampling rate, and
	// TrialsRaised reports whether it was raised above cfg.Trials to the
	// floor of 5 (sampling is stochastic; fewer trials make the recall
	// curve too noisy to interpret). The raise is also logged at run time.
	Trials       int
	TrialsRaised bool
}

// fig1213TrialFloor is the minimum trials per sampling rate.
const fig1213TrialFloor = 5

// RunFig1213 reproduces Figures 12 and 13 on bodytrack: one plan holding the
// baseline, the full-TSan ground truth, trials × 11 sampling rates, and
// TxRace's operating point — every job independent.
func RunFig1213(cfg Config) (*Fig1213, error) {
	cfg = cfg.withDefaults()
	w, err := workload.ByName("bodytrack")
	if err != nil {
		return nil, err
	}
	trials := cfg.Trials
	raised := trials < fig1213TrialFloor
	if raised {
		trials = fig1213TrialFloor
		log.Printf("experiment: fig12/13 raising trials %d -> %d (sampling is stochastic; the recall curve needs averaging)", cfg.Trials, trials)
	}

	plan := cfg.newPlan()
	seeds := runner.Seeds(cfg.Seed)
	base := baselineJob(plan, w, cfg, 0, cfg.Seed)
	full := tsanJob(plan, w, cfg, 0, cfg.Seed)
	var rates []int
	samples := map[int][]*runner.Handle{} // percent -> per-trial handles
	for pct := 0; pct <= 100; pct += 10 {
		rates = append(rates, pct)
		for trial := 0; trial < trials; trial++ {
			samples[pct] = append(samples[pct],
				samplingJob(plan, w, cfg, trial, seeds.Trial(trial), float64(pct)/100))
		}
	}
	tx := txraceJob(plan, w, cfg, 0, cfg.Seed)
	if err := plan.Run(); err != nil {
		return nil, err
	}

	b, ft := baselineOf(base), tsanOf(full)
	fullOvh := float64(ft.Makespan) / float64(b.Makespan)
	f := &Fig1213{Trials: trials, TrialsRaised: raised}
	for _, pct := range rates {
		var makespan int64
		recSum := 0.0
		for _, h := range samples[pct] {
			s := tsanOf(h)
			makespan += s.Makespan
			recSum += stats.Recall(s.Races, ft.Races)
		}
		makespan /= int64(trials)
		f.Rates = append(f.Rates, pct)
		f.Overheads = append(f.Overheads, (float64(makespan)/float64(b.Makespan))/fullOvh)
		f.Recalls = append(f.Recalls, recSum/float64(trials))
	}
	txr := txraceOf(tx)
	f.TxRaceOverhead = (float64(txr.Makespan) / float64(b.Makespan)) / fullOvh
	f.TxRaceRecall = stats.Recall(txr.Races, ft.Races)
	return f, nil
}

// Write renders Figures 12 and 13.
func (f *Fig1213) Write(w io.Writer) {
	report.Section(w, "Figures 12-13: bodytrack under TSan+Sampling (normalized to 100% sampling)")
	tb := &report.Table{Header: []string{"sampling rate", "overhead (Fig.12)", "recall (Fig.13)"}}
	for i, pct := range f.Rates {
		tb.Add(fmt.Sprintf("%d%%", pct), f.Overheads[i], f.Recalls[i])
	}
	tb.Write(w)
	if f.TrialsRaised {
		fmt.Fprintf(w, "\n(averaged over %d trials per rate; raised from the requested trial count to smooth the stochastic recall curve)\n", f.Trials)
	}
	fmt.Fprintf(w, "\nTxRace operating point: overhead %.2f (paper 0.69), recall %.2f (paper 0.75)\n",
		f.TxRaceOverhead, f.TxRaceRecall)
}
