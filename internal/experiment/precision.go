package experiment

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/instrument"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// PrecisionRow compares detector families on one application: the
// happens-before ground truth (TSan), the Eraser-style lockset detector's
// violations, and how many of those violations are real.
type PrecisionRow struct {
	App *workload.Workload

	TrueRaces     int // happens-before (ground truth)
	Violations    int // lockset reports
	TruePositives int // violations that are real races
	FalseAlarms   int // violations with no happens-before race behind them

	LocksetOverhead float64
	TSanOverhead    float64
}

// Precision is the detector-precision experiment: the quantitative version
// of the paper's §9 argument for building the slow path on happens-before
// (FastTrack/TSan) rather than on lock-discipline inference (Eraser) —
// lockset detectors flag fork/join, condition-variable, and barrier
// synchronization as violations.
type Precision struct{ Rows []PrecisionRow }

// locksetRun holds one Eraser-style execution.
type locksetRun struct {
	makespan   int64
	violations []detect.Race
	count      int
}

// locksetJob runs the workload under the Eraser lockset detector.
func locksetJob(p *runner.Plan, w *workload.Workload, cfg Config, seed uint64) *runner.Handle {
	return p.Add(runner.Job{Workload: w.Name, Runtime: "lockset", Seed: seed, Observe: true,
		Do: func(j *runner.Job) (any, error) {
			c := cfg
			c.Obs = j.Obs
			built := w.Build(c.Threads, c.Scale)
			ls := core.NewLockset()
			ls.SlowScale = w.SlowScale
			res, err := sim.NewEngine(c.engineConfig(w, j.Seed)).Run(instrument.ForTSan(built.Prog), ls)
			if err != nil {
				return nil, fmt.Errorf("%s lockset: %w", w.Name, err)
			}
			return &locksetRun{
				makespan:   res.Makespan,
				violations: ls.Detector().Violations(),
				count:      ls.Detector().ViolationCount(),
			}, nil
		},
	})
}

// RunPrecision executes the comparison over the given applications (all by
// default): per application, {baseline, TSan, lockset} jobs.
func RunPrecision(cfg Config, apps []*workload.Workload) (*Precision, error) {
	cfg = cfg.withDefaults()
	if apps == nil {
		apps = workload.All()
	}
	plan := cfg.newPlan()
	type cell struct{ base, tsan, ls *runner.Handle }
	hs := make([]cell, len(apps))
	for i, w := range apps {
		hs[i] = cell{
			base: baselineJob(plan, w, cfg, 0, cfg.Seed),
			tsan: tsanJob(plan, w, cfg, 0, cfg.Seed),
			ls:   locksetJob(plan, w, cfg, cfg.Seed),
		}
	}
	if err := plan.Run(); err != nil {
		return nil, err
	}
	p := &Precision{}
	for i, w := range apps {
		base, ts := baselineOf(hs[i].base), tsanOf(hs[i].tsan)
		ls := hs[i].ls.Value().(*locksetRun)
		row := PrecisionRow{
			App:             w,
			TrueRaces:       len(ts.Races),
			Violations:      ls.count,
			LocksetOverhead: float64(ls.makespan) / float64(base.Makespan),
			TSanOverhead:    float64(ts.Makespan) / float64(base.Makespan),
		}
		// A violation is a true positive when its static pair is a real
		// race; everything else is a lock-discipline false alarm.
		var keys []detect.PairKey
		for _, v := range ls.violations {
			keys = append(keys, v.Key())
		}
		row.TruePositives = stats.Intersect(keys, ts.Races)
		row.FalseAlarms = row.Violations - row.TruePositives
		p.Rows = append(p.Rows, row)
	}
	return p, nil
}

// Write renders the precision comparison.
func (p *Precision) Write(w io.Writer) {
	report.Section(w, "Detector precision: lockset (Eraser) vs happens-before (TSan)")
	tb := &report.Table{Header: []string{
		"application", "true races", "lockset reports", "true positives", "false alarms",
		"lockset ovh", "TSan ovh",
	}}
	for _, r := range p.Rows {
		tb.Add(r.App.Name, r.TrueRaces, r.Violations, r.TruePositives, r.FalseAlarms,
			fmt.Sprintf("%.2fx", r.LocksetOverhead), fmt.Sprintf("%.2fx", r.TSanOverhead))
	}
	tb.Write(w)
}
