package experiment

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ChaosRow is one (application, fault intensity) point of the chaos sweep.
type ChaosRow struct {
	App       *workload.Workload
	Intensity float64
	Overhead  float64 // makespan vs the uninstrumented baseline
	Races     int
	Recall    float64 // vs the fault-free reference run (same governor config)
	Sound     bool    // race set identical to the reference's
	Injected  uint64  // faults injected, all kinds
	Forced    uint64  // regions the governor forced onto the slow path
	Trips     uint64  // per-thread governor degradations
	Global    uint64  // run-wide degradation windows
}

// Chaos is the fault-injection sweep: every application runs once fault-free
// (the reference, intensity 0) and once per intensity under a scaled
// fault.StandardPlan, all with the same governor configuration — so
// injection is the only variable and the reference's race set is the
// soundness yardstick at every intensity.
type Chaos struct {
	Intensities []float64
	Rows        []ChaosRow
}

// ChaosIntensities is the default sweep.
var ChaosIntensities = []float64{0.25, 0.5, 1}

// ChaosGovernor is the governor configuration the chaos suite runs under,
// on the reference and the faulted runs alike: a short (8-region) abort
// window so sustained fault storms trip it within a small workload, plus
// one governor-budgeted retry of unknown aborts.
func ChaosGovernor() core.GovernorConfig {
	return core.GovernorConfig{Enabled: true, Window: 8, UnknownRetryBudget: 1}
}

// ChaosSuite is the differential suite: purpose-built workloads whose race
// sets are schedule-robust, so set equality against the fault-free reference
// is a sound acceptance bar at every intensity. The evaluation applications
// are deliberately NOT in it — TxRace's detection on them is
// schedule-dependent (Fig 10 is about exactly this), so perturbing the
// schedule with faults legitimately changes which races a single run
// observes; bodytrack and facesim additionally carry deferred
// (init-then-publish) races that a governor-forced slow region catches
// where the fast path cannot, growing the set under degradation. Run those
// through the sweep explicitly with -app for the informative
// recall-vs-intensity curve; the suite here is the soundness proof.
//
// The suite workloads make every race pair detectable with certainty under
// any schedule: each pair's two sites are hammered tens of times from two
// never-synchronizing threads, and FastTrack's shadow state persists, so
// any interleaving records both sides and reports the pair. Faults can only
// reshuffle which path (HTM or slow) observes each repetition.
func ChaosSuite() []*workload.Workload {
	return []*workload.Workload{chaosHammer(), chaosReaders()}
}

// chaosHammer: write-write races only. Two unsynchronized threads each run
// 30×scale iterations writing the same six racy variables; a syscall per
// iteration cuts the loop into one transactional region per iteration (six
// static accesses — above the K=5 small threshold) and gives the
// SyscallCluster fault kind something to cluster on. Remaining threads are
// race-free ballast: lock-ordered writes to a shared counter plus churn
// over private lines for capacity pressure.
func chaosHammer() *workload.Workload {
	return &workload.Workload{
		Name:      "chaoshammer",
		SlowScale: 1,
		Paper:     workload.Paper{TSanRaces: 6, TxRaceRaces: 6, TSanOverhead: 1, TxRaceOverhead: 1, Recall: 1},
		Build: func(threads, scale int) *workload.Built {
			b := workload.NewB()
			races := make([]workload.RacyVar, 6)
			for i := range races {
				races[i] = b.NewRacyVar()
			}
			// The two hammers carry different compute costs and staggered
			// starts: identical periods would keep them in lockstep phases
			// (regions never overlapping in simulated time) and no
			// conflict — or race — would ever materialize.
			hammer := func(stagger, work int64, access func(workload.RacyVar) *sim.MemAccess) []sim.Instr {
				var body []sim.Instr
				body = append(body, workload.Work(work))
				for _, rv := range races {
					body = append(body, access(rv), workload.Work(work/8))
				}
				body = append(body, &sim.Syscall{Name: "tick", Cycles: 25})
				return []sim.Instr{workload.Work(stagger), b.LoopN(30*scale, body...)}
			}
			workers := [][]sim.Instr{
				hammer(0, 40, workload.RacyVar.WriteA),
				hammer(17, 57, workload.RacyVar.WriteB),
			}
			for len(workers) < threads {
				workers = append(workers, chaosBallast(b, scale))
			}
			return &workload.Built{
				Prog:  &sim.Program{Name: "chaoshammer", Workers: workers},
				Races: races,
			}
		},
	}
}

// chaosReaders: write-read races. The writer hammers four racy variables;
// two reader threads hammer the same variables' read sites, never
// synchronizing with the writer. Reader regions carry extra local traffic
// so they clear the small-region threshold and present a bigger HTM
// footprint (capacity-burst fodder).
func chaosReaders() *workload.Workload {
	return &workload.Workload{
		Name:      "chaosreaders",
		SlowScale: 1,
		Paper:     workload.Paper{TSanRaces: 4, TxRaceRaces: 4, TSanOverhead: 1, TxRaceOverhead: 1, Recall: 1},
		Build: func(threads, scale int) *workload.Built {
			b := workload.NewB()
			races := make([]workload.RacyVar, 4)
			for i := range races {
				races[i] = b.NewRacyVar()
			}
			var wbody []sim.Instr
			wbody = append(wbody, workload.Work(50))
			for _, rv := range races {
				wbody = append(wbody, rv.WriteA(), workload.Work(7))
			}
			wbody = append(wbody, &sim.Syscall{Name: "flush", Cycles: 25})
			writer := []sim.Instr{b.LoopN(30*scale, wbody...)}

			// Each reader gets private scratch (shared scratch would be a
			// race of its own) and a distinct period so neither locksteps
			// with the writer.
			reader := func(stagger, work int64) []sim.Instr {
				scratch := b.AllocLines(4)
				var body []sim.Instr
				body = append(body, workload.Work(work))
				for _, rv := range races {
					body = append(body, rv.ReadB(), workload.Work(work/8))
				}
				body = append(body, b.Churn(scratch, 4, 5, true))
				body = append(body, &sim.Syscall{Name: "poll", Cycles: 25})
				return []sim.Instr{workload.Work(stagger), b.LoopN(30*scale, body...)}
			}
			workers := [][]sim.Instr{writer, reader(13, 35), reader(29, 61)}
			for len(workers) < threads {
				workers = append(workers, chaosBallast(b, scale))
			}
			return &workload.Built{
				Prog:  &sim.Program{Name: "chaosreaders", Workers: workers},
				Races: races,
			}
		},
	}
}

// chaosBallast is a race-free worker: lock-ordered shared-counter updates
// interleaved with churn over a private region. It adds scheduling noise,
// sync-object traffic, and HTM capacity pressure without contributing any
// race pair, so the ground-truth set stays exactly the RacyVars'.
func chaosBallast(b *workload.B, scale int) []sim.Instr {
	mu := b.Sync()
	ctr := b.AllocLines(1)
	private := b.AllocLines(6)
	return []sim.Instr{b.LoopN(10*scale,
		&sim.Lock{M: mu},
		b.Write(sim.Fixed(ctr)),
		&sim.Unlock{M: mu},
		b.Churn(private, 6, 8, true),
	)}
}

// chaosPlanJob runs one (app, fault plan) point under the chaos governor.
// An empty plan compiles to no injector at all — the reference run.
func chaosPlanJob(p *runner.Plan, w *workload.Workload, cfg Config, label string, mk func(seed uint64) fault.Plan) *runner.Handle {
	return p.Add(runner.Job{Workload: w.Name, Runtime: "txrace-chaos(" + label + ")",
		Seed: cfg.Seed, Observe: true,
		Do: func(j *runner.Job) (any, error) {
			c := cfg
			c.Obs = j.Obs
			return RunTxRaceFault(w, c, j.Seed, mk(j.Seed), ChaosGovernor())
		},
	})
}

// chaosJob runs one (app, intensity) point of the sweep.
func chaosJob(p *runner.Plan, w *workload.Workload, cfg Config, intensity float64) *runner.Handle {
	return chaosPlanJob(p, w, cfg, fmt.Sprintf("%g", intensity), func(seed uint64) fault.Plan {
		return fault.StandardPlan(seed, intensity)
	})
}

// sameRaceSet compares two RaceKeys results (both sorted).
func sameRaceSet(a, b []detect.PairKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunChaos executes the chaos sweep over apps (nil means ChaosSuite) at the
// given intensities (nil means ChaosIntensities, always with the reference
// point 0 prepended).
func RunChaos(cfg Config, apps []*workload.Workload, intensities []float64) (*Chaos, error) {
	cfg = cfg.withDefaults()
	if apps == nil {
		apps = ChaosSuite()
	}
	if intensities == nil {
		intensities = ChaosIntensities
	}
	points := append([]float64{0}, intensities...)
	ch := &Chaos{Intensities: points}

	plan := cfg.newPlan()
	type cell struct {
		app  *workload.Workload
		base *runner.Handle
		runs []*runner.Handle
	}
	cells := make([]cell, len(apps))
	for i, w := range apps {
		cells[i] = cell{app: w, base: baselineJob(plan, w, cfg, 0, cfg.Seed)}
		for _, in := range points {
			cells[i].runs = append(cells[i].runs, chaosJob(plan, w, cfg, in))
		}
	}
	if err := plan.Run(); err != nil {
		return nil, err
	}

	for _, c := range cells {
		base := baselineOf(c.base)
		ref := txraceOf(c.runs[0])
		for k, in := range points {
			r := txraceOf(c.runs[k])
			ch.Rows = append(ch.Rows, ChaosRow{
				App:       c.app,
				Intensity: in,
				Overhead:  float64(r.Makespan) / float64(base.Makespan),
				Races:     len(r.Races),
				Recall:    stats.Recall(r.Races, ref.Races),
				Sound:     sameRaceSet(r.Races, ref.Races),
				Injected:  r.Fault.Total(),
				Forced:    r.Stats.ForcedSlow,
				Trips:     r.Stats.GovernorTrips,
				Global:    r.Stats.GovernorGlobal,
			})
		}
	}
	return ch, nil
}

// Write renders the sweep as recall-vs-intensity per application.
func (ch *Chaos) Write(w io.Writer) {
	report.Section(w, "Chaos sweep: detection recall and overhead under injected HTM faults")
	tb := &report.Table{Header: []string{
		"application", "intensity", "overhead", "races", "recall", "sound",
		"injected", "forced slow", "trips", "global",
	}}
	for _, r := range ch.Rows {
		tb.Add(r.App.Name, r.Intensity, r.Overhead, r.Races, r.Recall, r.Sound,
			r.Injected, r.Forced, r.Trips, r.Global)
	}
	tb.Write(w)
}

// ChaosPlan is one named fault plan of the differential suite.
type ChaosPlan struct {
	Name string
	Make func(seed uint64) fault.Plan
}

// ChaosPlans are the differential suite's fault plans. Beyond two points of
// the standard sweep, the suite carries targeted plans built to force the
// governor's hand: retry storms longer than the retry budget (every storm
// is a guaranteed fallback), commit-time aborts (wasted full regions), and
// unknown-abort bursts that outlast the governor's one budgeted retry.
func ChaosPlans() []ChaosPlan {
	return []ChaosPlan{
		{"standard-0.5", func(seed uint64) fault.Plan { return fault.StandardPlan(seed, 0.5) }},
		{"standard-1", func(seed uint64) fault.Plan { return fault.StandardPlan(seed, 1) }},
		{"retry-storm", func(seed uint64) fault.Plan {
			return fault.Plan{Seed: seed + 1, Rules: []fault.Rule{
				{Kind: fault.RetryStorm, Prob: 0.05, Burst: 6},
				{Kind: fault.CommitAbort, Prob: 0.25},
			}}
		}},
		{"unknown-burst", func(seed uint64) fault.Plan {
			return fault.Plan{Seed: seed + 2, Rules: []fault.Rule{
				{Kind: fault.Unknown, Prob: 0.04, Burst: 3},
				{Kind: fault.SyscallCluster, Prob: 0.5},
			}}
		}},
	}
}

// ChaosDiffRow is one (application, fault plan) differential: the faulted
// run against the same application's fault-free reference.
type ChaosDiffRow struct {
	App      *workload.Workload
	Plan     string
	RefRaces int
	Races    int
	Sound    bool   // race set identical to the reference's
	Truth    bool   // reference's race set equals the built-in ground truth
	Injected uint64
	Forced   uint64 // regions the governor forced onto the slow path
	Trips    uint64
}

// ChaosDiff is the differential suite's result: soundness must hold on
// every row while Forced > 0 proves degradation actually engaged.
type ChaosDiff struct {
	Rows []ChaosDiffRow
}

// Sound reports whether every row kept the reference race set.
func (d *ChaosDiff) Sound() bool {
	for _, r := range d.Rows {
		if !r.Sound {
			return false
		}
	}
	return true
}

// RunChaosDiff executes the differential suite: every ChaosSuite workload
// under every ChaosPlans plan, each compared against that workload's
// fault-free run under the identical governor configuration.
func RunChaosDiff(cfg Config) (*ChaosDiff, error) {
	cfg = cfg.withDefaults()
	apps := ChaosSuite()
	plans := ChaosPlans()

	plan := cfg.newPlan()
	type cell struct {
		app  *workload.Workload
		ref  *runner.Handle
		runs []*runner.Handle
	}
	cells := make([]cell, len(apps))
	for i, w := range apps {
		cells[i] = cell{app: w, ref: chaosPlanJob(plan, w, cfg, "ref", func(uint64) fault.Plan { return fault.Plan{} })}
		for _, cp := range plans {
			cells[i].runs = append(cells[i].runs, chaosPlanJob(plan, w, cfg, cp.Name, cp.Make))
		}
	}
	if err := plan.Run(); err != nil {
		return nil, err
	}

	d := &ChaosDiff{}
	for _, c := range cells {
		ref := txraceOf(c.ref)
		truth := sameRaceSet(ref.Races, c.app.Build(cfg.Threads, cfg.Scale).AllRaceKeys())
		for k, cp := range plans {
			r := txraceOf(c.runs[k])
			d.Rows = append(d.Rows, ChaosDiffRow{
				App:      c.app,
				Plan:     cp.Name,
				RefRaces: len(ref.Races),
				Races:    len(r.Races),
				Sound:    sameRaceSet(r.Races, ref.Races),
				Truth:    truth,
				Injected: r.Fault.Total(),
				Forced:   r.Stats.ForcedSlow,
				Trips:    r.Stats.GovernorTrips,
			})
		}
	}
	return d, nil
}

// Write renders the differential suite.
func (d *ChaosDiff) Write(w io.Writer) {
	report.Section(w, "Chaos differential suite: race-set equality under injected faults")
	tb := &report.Table{Header: []string{
		"application", "plan", "ref races", "races", "sound", "truth",
		"injected", "forced slow", "trips",
	}}
	for _, r := range d.Rows {
		tb.Add(r.App.Name, r.Plan, r.RefRaces, r.Races, r.Sound, r.Truth,
			r.Injected, r.Forced, r.Trips)
	}
	tb.Write(w)
}

// JSON returns the sweep as plain data.
func (ch *Chaos) JSON() any {
	type row struct {
		App       string  `json:"app"`
		Intensity float64 `json:"intensity"`
		Overhead  float64 `json:"overhead"`
		Races     int     `json:"races"`
		Recall    float64 `json:"recall"`
		Sound     bool    `json:"sound"`
		Injected  uint64  `json:"injected"`
		Forced    uint64  `json:"forced_slow"`
		Trips     uint64  `json:"governor_trips"`
		Global    uint64  `json:"governor_global"`
	}
	var rows []row
	for _, r := range ch.Rows {
		rows = append(rows, row{r.App.Name, r.Intensity, r.Overhead, r.Races,
			r.Recall, r.Sound, r.Injected, r.Forced, r.Trips, r.Global})
	}
	return struct {
		Intensities []float64 `json:"intensities"`
		Rows        []row     `json:"rows"`
	}{ch.Intensities, rows}
}
