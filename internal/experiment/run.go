// Package experiment drives the paper's evaluation (§8): one driver per
// table and figure. Each driver builds a declarative internal/runner Plan of
// independent (workload, runtime, seed) jobs, executes it on a bounded
// worker pool (Config.Jobs, default GOMAXPROCS), and reduces the results in
// plan order — so output is byte-identical at any worker count while the
// wall clock scales with the hardware. Shared prerequisites (baseline runs,
// ProfCut profiles) are memoized in a Cache instead of recomputed per
// trial or figure. cmd/txbench regenerates any artifact by id;
// bench_test.go exposes the same drivers as testing.B benchmarks.
package experiment

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/htm"
	"repro/internal/instrument"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config fixes one experimental setup.
type Config struct {
	Threads int
	Scale   int
	Seed    uint64
	// LoopCut selects TxRace's capacity-abort scheme; Table 1 uses the
	// paper's best configuration, ProfLoopcut.
	LoopCut core.CutMode
	// Trials averages measurements over this many seeds (paper: 5). Trial
	// seeds are drawn from runner.Seeds(Seed): trial 0 is Seed itself.
	Trials int
	// ProfileSkew models the profile-transfer error of ProfLoopcut: the
	// profiling run uses a representative input, not the measured one, so
	// transferred thresholds overshoot by this factor and the runtime's
	// threshold adaptation (§4.3) has to walk them back down. 0 means the
	// default of 1.05; 1.0 disables the skew.
	ProfileSkew float64
	// Backend selects the HTM conflict backend the TxRace runs use: "" or
	// "dir" is the line-ownership directory (the default machine,
	// bit-identical to a zero htm.Config), "tag" the HMTRace-style owner
	// tags, "bounded" the FORTH-style entry-capped sets. "refscan" runs the
	// directory backend's reference resolver — accepted here for the
	// package's differential suites, but not a CLI-valid name. The ProfCut
	// profiling pass uses the same backend as the measured run (its
	// capacity-abort pattern feeds the thresholds), so profile memoization
	// is keyed by backend too. Baselines never touch the HTM.
	Backend string
	// RefDense runs the detectors on the retained dense clock path
	// (detect.Config.RefDense) instead of the default sparse/delta
	// representation. Results are identical either way — the threads
	// scaling driver and the differential suites run both and assert it.
	RefDense bool
	// Jobs bounds the worker pool the drivers execute their job plans on;
	// 0 means GOMAXPROCS. Results are independent of the value — plans
	// merge results and metrics in plan order.
	Jobs int
	// Cache memoizes baseline runs and ProfCut profiles across jobs. Nil
	// gets a private cache per driver call; share one Cache across calls
	// (as cmd/txbench does) to also dedup across experiment ids.
	Cache *Cache
	// Obs, when non-nil, is attached to the measured runs: the engine emits
	// scheduler events, and the TxRace runtime (plus its HTM) emits the full
	// transaction lifecycle. Under a parallel plan each measured job runs
	// with a private fork whose metrics merge back in plan order (traces are
	// metrics-only there; see obs.Observer.Fork). Baseline runs stay
	// unobserved so metrics describe the detector under measurement only.
	Obs *obs.Observer
}

// DefaultConfig mirrors §8.1: four worker threads, five trials.
func DefaultConfig() Config {
	return Config{Threads: 4, Scale: 1, Seed: 1, LoopCut: core.ProfCut, Trials: 1}
}

// DefaultProfileSkew is the ProfileSkew a zero Config gets.
const DefaultProfileSkew = 1.05

func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Trials == 0 {
		c.Trials = 1
	}
	if c.ProfileSkew == 0 {
		c.ProfileSkew = DefaultProfileSkew
	}
	if c.Cache == nil {
		c.Cache = NewCache()
	}
	return c
}

// htmConfig translates Config.Backend into the htm.Config the runtime
// options carry. "" and "dir" return the zero config — core substitutes
// htm.DefaultConfig(), exactly the pre-seam behavior — so default-backend
// runs stay bit-identical to configs that predate backend selection.
func (c Config) htmConfig() htm.Config {
	var hc htm.Config
	switch c.Backend {
	case "", "dir":
	case "refscan":
		hc.RefScan = true
	default:
		hc.Backend = c.Backend
	}
	return hc
}

// detectConfig translates Config.RefDense into the detector clock
// configuration the runtimes carry.
func (c Config) detectConfig() detect.Config {
	return detect.Config{RefDense: c.RefDense}
}

// backendKey is the memo-key component for Config.Backend: the default
// spellings collapse to "" so "" and "dir" share cache entries.
func (c Config) backendKey() string {
	if c.Backend == "dir" {
		return ""
	}
	return c.Backend
}

func (c Config) engineConfig(w *workload.Workload, seed uint64) sim.Config {
	ec := sim.DefaultConfig()
	ec.Seed = seed
	if w.InterruptEvery != 0 {
		ec.InterruptEvery = w.InterruptEvery
	}
	ec.MaxSteps = 1 << 32
	ec.Obs = c.Obs
	return ec
}

// BaselineRun holds one uninstrumented execution. Baseline runs are memoized
// per (workload, threads, scale, seed) and may be shared between jobs:
// treat the struct as read-only.
type BaselineRun struct {
	Makespan int64
	Result   *sim.Result
}

// TSanRun holds one full-detection execution.
type TSanRun struct {
	Makespan int64
	Races    []detect.PairKey
	Checks   uint64
	// Clock carries the detector's clock-representation counters
	// (all zero on the RefDense path).
	Clock clock.Stats
}

// TxRaceRun holds one two-phase execution.
type TxRaceRun struct {
	Makespan int64
	Races    []detect.PairKey
	Stats    core.Stats
	// Fault counts the injected faults by kind (zero without a fault plan).
	Fault fault.Stats
}

// RunBaseline executes the original program. The run is memoized in
// cfg.Cache: the baseline is a deterministic, unobserved function of
// (workload, threads, scale, seed), so every trial and figure that
// normalizes against it shares one execution.
func RunBaseline(w *workload.Workload, cfg Config, seed uint64) (*BaselineRun, error) {
	cfg = cfg.withDefaults()
	cfg.Obs = nil // the baseline is the measuring stick, not the measured system
	v, err := cfg.Cache.do(memoKey{"baseline", w.Name, cfg.Threads, cfg.Scale, seed, ""}, func() (any, error) {
		built := w.Build(cfg.Threads, cfg.Scale)
		res, err := sim.NewEngine(cfg.engineConfig(w, seed)).Run(built.Prog, &core.Baseline{})
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", w.Name, err)
		}
		return &BaselineRun{Makespan: res.Makespan, Result: res}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*BaselineRun), nil
}

// RunTSan executes under full happens-before detection.
func RunTSan(w *workload.Workload, cfg Config, seed uint64) (*TSanRun, error) {
	cfg = cfg.withDefaults()
	built := w.Build(cfg.Threads, cfg.Scale)
	rt := core.NewTSanWith(cfg.detectConfig())
	rt.SlowScale = w.SlowScale
	res, err := sim.NewEngine(cfg.engineConfig(w, seed)).Run(instrument.ForTSan(built.Prog), rt)
	if err != nil {
		return nil, fmt.Errorf("%s tsan: %w", w.Name, err)
	}
	return &TSanRun{
		Makespan: res.Makespan,
		Races:    rt.Detector().RaceKeys(),
		Checks:   rt.Detector().Checks,
		Clock:    rt.Detector().ClockStats(),
	}, nil
}

// RunTxRace executes under the two-phase runtime. For ProfCut it first runs
// the paper's profiling pass to collect loop-cut thresholds; the raw profile
// is memoized in cfg.Cache (it is deterministic and unobserved) and the skew
// is applied to a fresh copy per run, so the runtime's in-place threshold
// adaptation never leaks between jobs.
func RunTxRace(w *workload.Workload, cfg Config, seed uint64) (*TxRaceRun, error) {
	return RunTxRaceFault(w, cfg, seed, fault.Plan{}, core.GovernorConfig{})
}

// RunTxRaceFault is RunTxRace with a fault plan attached and the fallback
// governor configured. An empty plan compiles to no injector at all, and a
// zero GovernorConfig leaves the governor off, so
// RunTxRaceFault(w, cfg, seed, fault.Plan{}, core.GovernorConfig{}) is
// RunTxRace exactly; the chaos sweep's fault-free reference point instead
// keeps the governor configured so injection is the only difference.
func RunTxRaceFault(w *workload.Workload, cfg Config, seed uint64, plan fault.Plan, gov core.GovernorConfig) (*TxRaceRun, error) {
	cfg = cfg.withDefaults()
	built := w.Build(cfg.Threads, cfg.Scale)
	opts := core.Options{LoopCut: cfg.LoopCut, SlowScale: w.SlowScale, Obs: cfg.Obs,
		Fault: fault.NewIfAny(plan), Governor: gov, HTM: cfg.htmConfig(),
		Detect: cfg.detectConfig()}
	if cfg.LoopCut == core.ProfCut {
		// Profile with a different seed: representative input, not the
		// measured run. The profiling pass is unobserved so metrics and
		// traces describe the measured execution only.
		profSeed := seed ^ 0x9a0f
		pcfg := cfg
		pcfg.Obs = nil
		v, err := cfg.Cache.do(memoKey{"profile", w.Name, cfg.Threads, cfg.Scale, profSeed, cfg.backendKey()}, func() (any, error) {
			prof, err := instrument.Profile(built.Prog, pcfg.engineConfig(w, profSeed), core.Options{SlowScale: w.SlowScale, HTM: cfg.htmConfig()})
			if err != nil {
				return nil, fmt.Errorf("%s profile: %w", w.Name, err)
			}
			return prof, nil
		})
		if err != nil {
			return nil, err
		}
		raw := v.(core.LoopThresholds)
		prof := make(core.LoopThresholds, len(raw))
		for id, th := range raw {
			prof[id] = int(float64(th)*cfg.ProfileSkew) + 1
		}
		opts.Thresholds = prof
	}
	rt := core.NewTxRace(opts)
	ip := instrument.ForTxRace(built.Prog, instrument.DefaultOptions())
	res, err := sim.NewEngine(cfg.engineConfig(w, seed)).Run(ip, rt)
	if err != nil {
		return nil, fmt.Errorf("%s txrace: %w", w.Name, err)
	}
	return &TxRaceRun{
		Makespan: res.Makespan,
		Races:    rt.Detector().RaceKeys(),
		Stats:    rt.Stats(),
		Fault:    rt.FaultStats(),
	}, nil
}

// RunSampling executes under TSan with per-access sampling.
func RunSampling(w *workload.Workload, cfg Config, seed uint64, rate float64) (*TSanRun, error) {
	cfg = cfg.withDefaults()
	built := w.Build(cfg.Threads, cfg.Scale)
	rt := core.NewSamplingWith(rate, int64(seed)+7, cfg.detectConfig())
	rt.SlowScale = w.SlowScale
	res, err := sim.NewEngine(cfg.engineConfig(w, seed)).Run(instrument.ForTSan(built.Prog), rt)
	if err != nil {
		return nil, fmt.Errorf("%s sampling(%.0f%%): %w", w.Name, rate*100, err)
	}
	return &TSanRun{
		Makespan: res.Makespan,
		Races:    rt.Detector().RaceKeys(),
		Checks:   rt.Detector().Checks,
		Clock:    rt.Detector().ClockStats(),
	}, nil
}
