package experiment

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// Write adapts WriteThreads to the single-writer shape the determinism test
// uses.
func (t *Threads) Write(w io.Writer) { t.WriteThreads(w) }

// TestThreadsScalingCurve runs the curve at the small end and checks the
// behavioural invariants the BENCH file records: ground truth is found at
// every count, the sparse run matches the dense reference exactly, and past
// the collapse activation threshold the collapse rounds actually happen.
func TestThreadsScalingCurve(t *testing.T) {
	th, err := RunThreads(testCfg(), []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(th.Rows))
	}
	for _, r := range th.Rows {
		if r.Races != 2 {
			t.Errorf("threads=%d: %d races, want the 2 injected", r.Threads, r.Races)
		}
		if r.Checks == 0 {
			t.Errorf("threads=%d: zero checks", r.Threads)
		}
		if r.Overhead < 1 {
			t.Errorf("threads=%d: overhead %.2f, want >= 1", r.Threads, r.Overhead)
		}
		if !r.DenseMatch {
			t.Errorf("threads=%d: sparse run diverged from the dense reference", r.Threads)
		}
		// At 16 threads the whole run fits under one collapse period; from 64
		// up the rounds must actually fire.
		if r.Threads >= 64 && r.Clock.Collapses == 0 {
			t.Errorf("threads=%d: no collapse rounds recorded", r.Threads)
		}
	}
}

// TestRefDenseEquivalence is the representation-independence contract:
// RefDense only changes the clock representation, so every driver renders
// byte-identical text and JSON either way.
func TestRefDenseEquivalence(t *testing.T) {
	small := apps(t, "swaptions", "bodytrack")
	one := apps(t, "swaptions")
	type result interface {
		Write(io.Writer)
		JSON() any
	}
	experiments := []struct {
		id  string
		run func(cfg Config) (result, error)
	}{
		{"table1", func(cfg Config) (result, error) { return RunTable1(cfg, small) }},
		{"fig7", func(cfg Config) (result, error) { return RunFig7(cfg, one) }},
		{"fig8", func(cfg Config) (result, error) { return RunFig8(cfg, one) }},
		{"fig11", func(cfg Config) (result, error) { return RunFig11(cfg) }},
		{"precision", func(cfg Config) (result, error) { return RunPrecision(cfg, one) }},
		{"shadow", func(cfg Config) (result, error) { return RunShadow(cfg, one) }},
	}
	for _, e := range experiments {
		e := e
		t.Run(e.id, func(t *testing.T) {
			t.Parallel()
			render := func(refDense bool) (string, string) {
				cfg := testCfg()
				cfg.RefDense = refDense
				r, err := e.run(cfg)
				if err != nil {
					t.Fatalf("refDense=%v: %v", refDense, err)
				}
				var text bytes.Buffer
				r.Write(&text)
				js, err := json.Marshal(r.JSON())
				if err != nil {
					t.Fatalf("refDense=%v: %v", refDense, err)
				}
				return text.String(), string(js)
			}
			sText, sJSON := render(false)
			dText, dJSON := render(true)
			if sText != dText {
				t.Errorf("text output differs between sparse and RefDense:\n--- sparse ---\n%s\n--- dense ---\n%s", sText, dText)
			}
			if sJSON != dJSON {
				t.Errorf("JSON output differs between sparse and RefDense:\n%s\n%s", sJSON, dJSON)
			}
		})
	}
}
