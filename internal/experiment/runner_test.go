package experiment

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// TestParallelDeterminism is the contract behind the -jobs flag: every
// experiment id produces byte-identical text and JSON output whether its
// plan runs on one worker or eight. Comparison is over rendered output, not
// reflect.DeepEqual, because result structs embed *workload.Workload whose
// Build func fields never compare equal.
func TestParallelDeterminism(t *testing.T) {
	small := apps(t, "swaptions", "bodytrack")
	one := apps(t, "swaptions")
	type result interface {
		Write(io.Writer)
		JSON() any
	}
	experiments := []struct {
		id  string
		run func(cfg Config) (result, error)
	}{
		{"table1", func(cfg Config) (result, error) {
			cfg.Trials = 2 // exercise the multi-trial seed stream
			return RunTable1(cfg, small)
		}},
		{"fig7", func(cfg Config) (result, error) { return RunFig7(cfg, small) }},
		{"fig8", func(cfg Config) (result, error) { return RunFig8(cfg, one) }},
		{"fig9", func(cfg Config) (result, error) { return RunFig9(cfg, one) }},
		{"fig10", func(cfg Config) (result, error) { return RunFig10(cfg) }},
		{"fig11", func(cfg Config) (result, error) { return RunFig11(cfg) }},
		{"fig1213", func(cfg Config) (result, error) { return RunFig1213(cfg) }},
		{"precision", func(cfg Config) (result, error) { return RunPrecision(cfg, small) }},
		{"shadow", func(cfg Config) (result, error) { return RunShadow(cfg, small) }},
		{"detectability", func(cfg Config) (result, error) { return RunDetectability(cfg, small, 3) }},
		{"threads", func(cfg Config) (result, error) { return RunThreads(cfg, []int{16, 64}) }},
	}
	for _, e := range experiments {
		e := e
		t.Run(e.id, func(t *testing.T) {
			t.Parallel()
			render := func(jobs int) (string, string) {
				cfg := testCfg()
				cfg.Jobs = jobs
				r, err := e.run(cfg)
				if err != nil {
					t.Fatalf("jobs=%d: %v", jobs, err)
				}
				var text bytes.Buffer
				r.Write(&text)
				js, err := json.Marshal(r.JSON())
				if err != nil {
					t.Fatalf("jobs=%d: %v", jobs, err)
				}
				return text.String(), string(js)
			}
			text1, json1 := render(1)
			text8, json8 := render(8)
			if text1 != text8 {
				t.Errorf("text output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", text1, text8)
			}
			if json1 != json8 {
				t.Errorf("JSON output differs between -jobs 1 and -jobs 8:\n%s\n%s", json1, json8)
			}
		})
	}
}

// table1Result adapts Table1's two writers to the single-writer shape the
// determinism test uses; WriteTable2 is covered by comparing JSON (one
// struct feeds both tables).
func (t *Table1) Write(w io.Writer) {
	t.WriteTable1(w)
	t.WriteTable2(w)
}

// TestProfileSkewDefault pins the documented default: a zero ProfileSkew
// means profiled thresholds are relaxed by 5% (the comment on Config and
// this constant must agree).
func TestProfileSkewDefault(t *testing.T) {
	if DefaultProfileSkew != 1.05 {
		t.Fatalf("DefaultProfileSkew = %v, want 1.05", DefaultProfileSkew)
	}
	cfg := Config{}
	if got := cfg.withDefaults().ProfileSkew; got != DefaultProfileSkew {
		t.Fatalf("withDefaults ProfileSkew = %v, want %v", got, DefaultProfileSkew)
	}
	cfg.ProfileSkew = 1.25
	if got := cfg.withDefaults().ProfileSkew; got != 1.25 {
		t.Fatalf("withDefaults clobbered explicit ProfileSkew: %v", got)
	}
}

// TestFig1213TrialsMetadata: the silent raise of the trial count is now
// surfaced — metadata reports the floor, and an explicit count at or above
// the floor is honoured unraised.
func TestFig1213TrialsMetadata(t *testing.T) {
	cfg := testCfg() // Trials = 1, below the floor
	f, err := RunFig1213(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !f.TrialsRaised || f.Trials != fig1213TrialFloor {
		t.Fatalf("Trials=%d TrialsRaised=%v, want raised to %d", f.Trials, f.TrialsRaised, fig1213TrialFloor)
	}
	var buf bytes.Buffer
	f.Write(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("raised from the requested trial count")) {
		t.Error("raised trial count not mentioned in text output")
	}

	cfg.Trials = fig1213TrialFloor
	f, err = RunFig1213(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.TrialsRaised || f.Trials != fig1213TrialFloor {
		t.Fatalf("Trials=%d TrialsRaised=%v, want unraised %d", f.Trials, f.TrialsRaised, fig1213TrialFloor)
	}
}

// TestCacheMemoizesPrerequisites: within one Config, repeated baseline and
// ProfCut-profile prerequisites collapse to one entry per (kind, workload,
// threads, scale, seed).
func TestCacheMemoizesPrerequisites(t *testing.T) {
	w := apps(t, "swaptions")[0]
	cfg := testCfg()
	cfg.Cache = NewCache()
	cfg = cfg.withDefaults()

	b1, err := RunBaseline(w, cfg, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := RunBaseline(w, cfg, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Error("baseline not memoized: two calls returned distinct runs")
	}
	if cfg.Cache.Len() != 1 {
		t.Errorf("cache has %d entries after two identical baselines, want 1", cfg.Cache.Len())
	}

	b3, err := RunBaseline(w, cfg, cfg.Seed+1)
	if err != nil {
		t.Fatal(err)
	}
	if b3 == b1 {
		t.Error("different seed hit the same cache entry")
	}
	if cfg.Cache.Len() != 2 {
		t.Errorf("cache has %d entries across two seeds, want 2", cfg.Cache.Len())
	}
}
