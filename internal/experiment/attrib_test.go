package experiment

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// ledgeredCfg returns a test config with a fresh parent observer and
// attribution ledger attached, so every observed run in the driver's plan
// passes the engine's end-of-run conservation check (ledger total == thread
// clock, per thread — a violation fails the run, and so the driver).
func ledgeredCfg(jobs int) (Config, *obs.Ledger) {
	cfg := testCfg()
	cfg.Jobs = jobs
	led := obs.NewLedger()
	cfg.Obs = obs.New(nil, obs.NewMetrics())
	cfg.Obs.AttachLedger(led)
	return cfg, led
}

// TestLedgerInvariantAcrossDrivers runs every experiment driver with an
// attribution ledger attached at Jobs=1 and Jobs=8. Two properties are
// pinned: (1) each observed run inside each driver satisfies exact cycle
// conservation, enforced by the engine whenever a ledger is attached — any
// leak turns into a driver error; (2) the merged parent ledger is identical
// at any job count, because plans fork and merge observers in plan order.
func TestLedgerInvariantAcrossDrivers(t *testing.T) {
	small := apps(t, "blackscholes", "streamcluster")
	drivers := []struct {
		name string
		run  func(cfg Config) error
	}{
		{"table1", func(cfg Config) error { _, err := RunTable1(cfg, small); return err }},
		{"fig7", func(cfg Config) error { _, err := RunFig7(cfg, small); return err }},
		{"fig8", func(cfg Config) error { _, err := RunFig8(cfg, small[:1]); return err }},
		{"fig9", func(cfg Config) error { _, err := RunFig9(cfg, small); return err }},
		{"fig10", func(cfg Config) error { _, err := RunFig10(cfg); return err }},
		{"fig11", func(cfg Config) error { _, err := RunFig11(cfg); return err }},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			var snaps []obs.LedgerSnapshot
			for _, jobs := range []int{1, 8} {
				cfg, led := ledgeredCfg(jobs)
				if err := d.run(cfg); err != nil {
					t.Fatalf("jobs=%d: %v", jobs, err)
				}
				snaps = append(snaps, led.Snapshot())
			}
			if snaps[0].Total.Total == 0 {
				t.Fatalf("%s attributed no cycles", d.name)
			}
			if !reflect.DeepEqual(snaps[0], snaps[1]) {
				t.Fatalf("merged ledger differs between jobs=1 and jobs=8:\n%+v\nvs\n%+v",
					snaps[0].Total, snaps[1].Total)
			}
		})
	}
}

// TestRunAttribDeterminism: the attribution experiment itself is
// job-count-invariant and its JSON rows carry the full ledger.
func TestRunAttribDeterminism(t *testing.T) {
	names := []string{"swaptions", "streamcluster"}
	run := func(jobs int) *Attrib {
		cfg := testCfg()
		cfg.Jobs = jobs
		a, err := RunAttrib(cfg, apps(t, names...))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1, a8 := run(1), run(8)
	if !reflect.DeepEqual(a1.Rows, a8.Rows) {
		t.Fatal("RunAttrib rows differ between jobs=1 and jobs=8")
	}
	for i, row := range a1.Rows {
		if row.App.Name != names[i] {
			t.Fatalf("row %d app = %q, want %q", i, row.App.Name, names[i])
		}
		if row.Makespan <= 0 || row.Attrib.Total.Total <= 0 {
			t.Fatalf("%s: empty attribution row", row.App.Name)
		}
	}

	var sb strings.Builder
	a1.Write(&sb)
	out := sb.String()
	for _, want := range []string{"application", "fast%", "slow%", "swaptions", "streamcluster"} {
		if !strings.Contains(out, want) {
			t.Fatalf("attrib rendering missing %q:\n%s", want, out)
		}
	}
}

// TestRunAttribDefaultsToAllApps guards the nil-apps convenience path.
func TestRunAttribDefaultsToAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every workload")
	}
	cfg := testCfg()
	a, err := RunAttrib(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(workload.All()) {
		t.Fatalf("rows = %d, want one per workload (%d)", len(a.Rows), len(workload.All()))
	}
}
