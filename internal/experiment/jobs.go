package experiment

import (
	"repro/internal/runner"
	"repro/internal/workload"
)

// Job adapters: each turns one Run* call into a declarative runner.Job so
// drivers read as "build the plan, run it, reduce it". Measured runs
// (tsan/txrace/sampling) observe through a per-job fork of the plan's parent
// observer; baseline runs stay unobserved by policy (see RunBaseline).

// newPlan returns the worker-pool plan a driver executes its jobs on.
func (c Config) newPlan() *runner.Plan {
	return runner.NewPlan(c.Jobs, c.Obs)
}

func baselineJob(p *runner.Plan, w *workload.Workload, cfg Config, trial int, seed uint64) *runner.Handle {
	return p.Add(runner.Job{Workload: w.Name, Runtime: "baseline", Trial: trial, Seed: seed,
		Do: func(j *runner.Job) (any, error) { return RunBaseline(w, cfg, j.Seed) },
	})
}

func tsanJob(p *runner.Plan, w *workload.Workload, cfg Config, trial int, seed uint64) *runner.Handle {
	return p.Add(runner.Job{Workload: w.Name, Runtime: "tsan", Trial: trial, Seed: seed, Observe: true,
		Do: func(j *runner.Job) (any, error) {
			c := cfg
			c.Obs = j.Obs
			return RunTSan(w, c, j.Seed)
		},
	})
}

func txraceJob(p *runner.Plan, w *workload.Workload, cfg Config, trial int, seed uint64) *runner.Handle {
	return p.Add(runner.Job{Workload: w.Name, Runtime: "txrace", Trial: trial, Seed: seed, Observe: true,
		Do: func(j *runner.Job) (any, error) {
			c := cfg
			c.Obs = j.Obs
			return RunTxRace(w, c, j.Seed)
		},
	})
}

func samplingJob(p *runner.Plan, w *workload.Workload, cfg Config, trial int, seed uint64, rate float64) *runner.Handle {
	return p.Add(runner.Job{Workload: w.Name, Runtime: "sampling", Trial: trial, Seed: seed, Observe: true,
		Do: func(j *runner.Job) (any, error) {
			c := cfg
			c.Obs = j.Obs
			return RunSampling(w, c, j.Seed, rate)
		},
	})
}

// Typed result accessors, nil-safe only after a successful Plan.Run.

func baselineOf(h *runner.Handle) *BaselineRun { return h.Value().(*BaselineRun) }
func tsanOf(h *runner.Handle) *TSanRun         { return h.Value().(*TSanRun) }
func txraceOf(h *runner.Handle) *TxRaceRun     { return h.Value().(*TxRaceRun) }
