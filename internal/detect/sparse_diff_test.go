package detect

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/memmodel"
	"repro/internal/prng"
	"repro/internal/shadow"
)

// TestSparseMatchesRefDense256Threads drives the default sparse/delta
// detector and the retained dense reference (Config.RefDense) through the
// same randomized 256-thread trace with realistic idle-thread skew — most
// ops come from a small live subset, a long idle tail only occasionally
// syncs — and requires identical races, checks, shadow-word state and
// per-thread clock values. An aggressive CollapseEvery forces many
// epoch-collapse rounds through the middle of the trace.
func TestSparseMatchesRefDense256Threads(t *testing.T) {
	const threads = 256
	const live = 12
	syncIDs := []SyncID{1, 2, 3, 4, SyncID(5) | 1<<30, SyncID(6) | 1<<31}
	for seed := uint64(1); seed <= 4; seed++ {
		rng := prng.New(seed * 0xfeed)
		cur := NewWith(Config{CollapseEvery: 16})
		ref := NewWith(Config{RefDense: true})
		for tid := clock.TID(1); tid < threads; tid++ {
			cur.Fork(0, tid)
			ref.Fork(0, tid)
		}
		var addrs []memmodel.Addr
		for i := 0; i < 24; i++ {
			addrs = append(addrs, memmodel.Addr(0x9000+uint64(i)*memmodel.WordSize))
		}
		pick := func() clock.TID {
			if rng.Bool(0.9) {
				return clock.TID(rng.Intn(live))
			}
			return clock.TID(rng.Intn(threads))
		}
		for op := 0; op < 8000; op++ {
			tid := pick()
			switch rng.Intn(10) {
			case 0:
				s := syncIDs[rng.Intn(int64(len(syncIDs)))]
				cur.Acquire(tid, s)
				ref.Acquire(tid, s)
			case 1:
				s := syncIDs[rng.Intn(int64(len(syncIDs)))]
				cur.Release(tid, s)
				ref.Release(tid, s)
			case 2:
				// Simulated barrier arrival+departure across a random cohort:
				// the full-barrier pattern that densifies clocks.
				s := syncIDs[rng.Intn(int64(len(syncIDs)))]
				n := 4 + rng.Intn(12)
				for i := int64(0); i < n; i++ {
					bt := clock.TID(rng.Intn(threads))
					cur.Release(bt, s)
					ref.Release(bt, s)
				}
				for i := int64(0); i < n; i++ {
					bt := clock.TID(rng.Intn(threads))
					cur.Acquire(bt, s)
					ref.Acquire(bt, s)
				}
			default:
				a := addrs[rng.Intn(int64(len(addrs)))]
				site := shadow.SiteID(1 + rng.Intn(64))
				if rng.Bool(0.3) {
					cur.Write(tid, a, site)
					ref.Write(tid, a, site)
				} else {
					cur.Read(tid, a, site)
					ref.Read(tid, a, site)
				}
			}
		}
		if cur.ClockStats().Collapses == 0 {
			t.Fatalf("seed %d: trace never collapsed; test is vacuous", seed)
		}
		if cur.Checks != ref.Checks {
			t.Fatalf("seed %d: checks %d vs %d", seed, cur.Checks, ref.Checks)
		}
		ck, rk := cur.RaceKeys(), ref.RaceKeys()
		if len(ck) != len(rk) {
			t.Fatalf("seed %d: %d races vs dense reference %d", seed, len(ck), len(rk))
		}
		for i := range ck {
			if ck[i] != rk[i] {
				t.Fatalf("seed %d: race %d differs: %v vs %v", seed, i, ck[i], rk[i])
			}
		}
		// First-detection order must match too: the drivers render races in
		// that order, and byte-identical output depends on it.
		cr, rr := cur.Races(), ref.Races()
		for i := range cr {
			if cr[i] != rr[i] {
				t.Fatalf("seed %d: race order %d differs: %v vs %v", seed, i, cr[i], rr[i])
			}
		}
		for tid := clock.TID(0); tid < threads; tid++ {
			cv, rv := cur.ThreadVC(tid), ref.ThreadVC(tid)
			for x := clock.TID(0); x < threads; x++ {
				if cv.Get(x) != rv.Get(x) {
					t.Fatalf("seed %d: thread %d clock differs at %d: %d vs %d",
						seed, tid, x, cv.Get(x), rv.Get(x))
				}
			}
		}
		for _, a := range addrs {
			cw, rw := cur.mem.Peek(a), ref.mem.Peek(a)
			if (cw == nil) != (rw == nil) {
				t.Fatalf("seed %d: Peek presence mismatch at %#x", seed, uint64(a))
			}
			if cw == nil {
				continue
			}
			if cw.W != rw.W || cw.R != rw.R || cw.WSite != rw.WSite || cw.ReadShared() != rw.ReadShared() {
				t.Fatalf("seed %d: word state mismatch at %#x", seed, uint64(a))
			}
			if cw.ReadShared() {
				for tid := clock.TID(0); tid < threads; tid++ {
					if cw.RVC.Get(tid) != rw.RVC.Get(tid) || cw.RSiteOf(tid) != rw.RSiteOf(tid) {
						t.Fatalf("seed %d: read vector mismatch at %#x tid %d", seed, uint64(a), tid)
					}
				}
			}
		}
	}
}

// TestJoinAllChildrenMatchesSequential pins the batched join-all against
// per-child Join on both representations.
func TestJoinAllChildrenMatchesSequential(t *testing.T) {
	for _, cfg := range []Config{{}, {RefDense: true}} {
		const threads = 64
		batch := NewWith(cfg)
		seq := NewWith(cfg)
		var children []clock.TID
		for tid := clock.TID(1); tid < threads; tid++ {
			batch.Fork(0, tid)
			seq.Fork(0, tid)
			children = append(children, tid)
		}
		for _, c := range children {
			batch.Release(c, SyncID(uint32(c)%5+1))
			seq.Release(c, SyncID(uint32(c)%5+1))
		}
		batch.JoinAllChildren(0, children)
		for _, c := range children {
			seq.Join(0, c)
		}
		for tid := clock.TID(0); tid < threads; tid++ {
			bv, sv := batch.ThreadVC(tid), seq.ThreadVC(tid)
			for x := clock.TID(0); x < threads; x++ {
				if bv.Get(x) != sv.Get(x) {
					t.Fatalf("cfg %+v: thread %d differs at %d: %d vs %d",
						cfg, tid, x, bv.Get(x), sv.Get(x))
				}
			}
		}
	}
}

// TestVCDetectorSparseMatchesRefDense runs the Djit⁺ detector both ways
// over a randomized trace: per-variable sparse clocks must not change
// detection or report order.
func TestVCDetectorSparseMatchesRefDense(t *testing.T) {
	const threads = 96
	for seed := uint64(1); seed <= 4; seed++ {
		rng := prng.New(seed * 0xd11e)
		cur, ref := NewVCWith(Config{}), NewVCWith(Config{RefDense: true})
		for tid := clock.TID(1); tid < threads; tid++ {
			cur.Fork(0, tid)
			ref.Fork(0, tid)
		}
		var addrs []memmodel.Addr
		for i := 0; i < 16; i++ {
			addrs = append(addrs, memmodel.Addr(0x7000+uint64(i)*memmodel.WordSize))
		}
		for op := 0; op < 4000; op++ {
			tid := clock.TID(rng.Intn(threads))
			switch rng.Intn(8) {
			case 0:
				s := SyncID(1 + rng.Intn(4))
				cur.Acquire(tid, s)
				ref.Acquire(tid, s)
			case 1:
				s := SyncID(1 + rng.Intn(4))
				cur.Release(tid, s)
				ref.Release(tid, s)
			default:
				a := addrs[rng.Intn(int64(len(addrs)))]
				site := shadow.SiteID(1 + rng.Intn(32))
				w := rng.Bool(0.4)
				cur.Access(tid, a, w, site)
				ref.Access(tid, a, w, site)
			}
		}
		ck, rk := cur.RaceKeys(), ref.RaceKeys()
		if len(ck) != len(rk) {
			t.Fatalf("seed %d: %d races vs %d", seed, len(ck), len(rk))
		}
		for i := range ck {
			if ck[i] != rk[i] {
				t.Fatalf("seed %d: race %d differs", seed, i)
			}
		}
	}
}
