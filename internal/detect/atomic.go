package detect

import (
	"repro/internal/clock"
	"repro/internal/memmodel"
	"repro/internal/shadow"
)

// atomicSyncBit namespaces the per-location synchronization clocks that
// atomic operations use, keeping them apart from program sync objects and
// the rwlock reader clocks.
const atomicSyncBit SyncID = 1 << 30

// atomicSyncID maps an atomic location to its synchronization clock.
// Locations are word-granular, folded into the id space; a fold collision
// between two atomic locations only adds (true-but-unneeded) ordering
// between atomics, never hides a race between plain accesses.
func atomicSyncID(a memmodel.Addr) SyncID {
	g := memmodel.WordOf(a)
	return atomicSyncBit | (SyncID(g) & (atomicSyncBit - 1))
}

// AtomicOp applies C++11 atomic RMW semantics to the detector: the operation
// acquires and releases the location's synchronization clock (ordering with
// every other atomic on it) and leaves a shadow write so *plain* accesses
// unordered with it are still reported as races — the mixed atomic/plain
// access rule.
func AtomicOp(d *Detector, tid clock.TID, addr memmodel.Addr, site shadow.SiteID) {
	s := atomicSyncID(addr)
	d.Acquire(tid, s)
	d.Write(tid, addr, site)
	d.Release(tid, s)
}
