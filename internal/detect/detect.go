// Package detect implements the slow-path software race detector: a
// FastTrack-style happens-before algorithm over shadow memory, equivalent in
// role to the Google ThreadSanitizer instance TxRace invokes on demand (§5).
//
// The detector is complete (reports only true happens-before races of the
// monitored trace) and — when every access is fed to it — sound for that
// trace. TxRace's unsoundness comes from feeding it only the re-executed
// regions, never from the algorithm itself.
package detect

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/memmodel"
	"repro/internal/shadow"
)

// SyncID identifies a synchronization object (mutex, condvar, barrier).
type SyncID uint32

// Race is one detected happens-before violation. Prev is the access already
// recorded in shadow memory, Cur the access that completed the race.
type Race struct {
	Addr      memmodel.Addr
	PrevSite  shadow.SiteID
	CurSite   shadow.SiteID
	PrevWrite bool
	CurWrite  bool
	PrevTID   clock.TID
	CurTID    clock.TID
}

// Key returns the normalized static instruction pair identifying the race.
// The paper counts "static instances" (§8.3): a racy pair of source
// locations, regardless of how many dynamic occurrences it has.
func (r Race) Key() PairKey {
	a, b := r.PrevSite, r.CurSite
	if a > b {
		a, b = b, a
	}
	return PairKey{A: a, B: b}
}

func (r Race) String() string {
	return fmt.Sprintf("race @%#x: site %d (tid %d, write=%v) vs site %d (tid %d, write=%v)",
		uint64(r.Addr), r.PrevSite, r.PrevTID, r.PrevWrite, r.CurSite, r.CurTID, r.CurWrite)
}

// PairKey is a normalized static race identity.
type PairKey struct{ A, B shadow.SiteID }

// Config selects the detector's vector-clock representation (DESIGN.md §11).
// The zero value is the production configuration: sparse/delta clocks with
// periodic epoch-collapsing.
type Config struct {
	// RefDense forces the retained dense representation everywhere: thread
	// clocks, sync tables, read vectors, vcVars. It is the reference path
	// for differential tests, exactly like the RefScan/RefWalk precedents.
	RefDense bool
	// CollapseEvery is the number of release operations between
	// epoch-collapse rounds. 0 means DefaultCollapseEvery; negative
	// disables collapsing (sparse clocks then never change base).
	CollapseEvery int
}

// DefaultCollapseEvery is the release cadence of epoch-collapse rounds.
const DefaultCollapseEvery = 256

// collapseMinThreads gates collapsing: below this thread count the dense
// representation is already near-optimal and a shared base buys nothing.
const collapseMinThreads = 16

// Detector holds the full happens-before state: one vector clock per thread,
// one per sync object, and FastTrack shadow words.
type Detector struct {
	threads []*clock.VC
	syncs   vcTable
	mem     *shadow.Memory
	races   map[PairKey]Race
	order   []PairKey // insertion order for deterministic reporting
	onRace  func(Race)

	cfg           Config
	stats         *clock.Stats // shared by every clock this detector creates
	base          *clock.Base  // current epoch-collapse base (nil before first round)
	collapseEvery int
	sinceCollapse int
	collapseBuf   []*clock.VC

	// Checks counts memory accesses actually analyzed; the cost model uses
	// it and the sampling comparison reports it.
	Checks uint64
}

// New returns an empty detector in the default sparse-clock configuration.
func New() *Detector { return NewWith(Config{}) }

// NewWith returns an empty detector with the given clock configuration.
func NewWith(cfg Config) *Detector {
	d := &Detector{
		mem:   shadow.NewMemory(),
		races: make(map[PairKey]Race),
		cfg:   cfg,
		stats: new(clock.Stats),
	}
	d.collapseEvery = cfg.CollapseEvery
	if d.collapseEvery == 0 {
		d.collapseEvery = DefaultCollapseEvery
	}
	if !cfg.RefDense {
		d.syncs.mk = d.newClock
		d.mem.UseSparseClocks(d.stats)
	}
	return d
}

// newClock builds a thread/sync/read-vector clock in the configured
// representation.
func (d *Detector) newClock() *clock.VC {
	if d.cfg.RefDense {
		return clock.New(0)
	}
	return clock.NewSparse(d.stats)
}

// ClockStats returns the sparse-representation transition counters; the
// runtimes fold them into observability at Finish.
func (d *Detector) ClockStats() clock.Stats { return *d.stats }

// OnRace registers a callback invoked once per distinct static race.
func (d *Detector) OnRace(f func(Race)) { d.onRace = f }

// growThreads extends a thread-clock slice to hold tid in one allocation.
func growThreads(threads []*clock.VC, tid clock.TID) []*clock.VC {
	nt := make([]*clock.VC, int(tid)+1)
	copy(nt, threads)
	return nt
}

func (d *Detector) thread(tid clock.TID) *clock.VC {
	if int(tid) >= len(d.threads) {
		d.threads = growThreads(d.threads, tid)
	}
	if d.threads[tid] == nil {
		var v *clock.VC
		if d.cfg.RefDense {
			v = clock.New(int(tid) + 1)
		} else {
			v = clock.NewSparse(d.stats)
		}
		v.Tick(tid) // a thread's own component starts at 1
		d.threads[tid] = v
	}
	return d.threads[tid]
}

func (d *Detector) sync(s SyncID) *clock.VC { return d.syncs.get(s) }

// ShadowStats exposes the shadow memory's allocation counters; the runtimes
// fold them into the observability metrics at the end of a run.
func (d *Detector) ShadowStats() shadow.MemStats { return d.mem.Stats() }

// ThreadVC exposes tid's current clock (read-only use expected). The TxRace
// runtime consults it when attributing fast/slow overlap.
func (d *Detector) ThreadVC(tid clock.TID) *clock.VC { return d.thread(tid) }

// Fork records that parent spawned child: the child inherits everything the
// parent has seen so far.
func (d *Detector) Fork(parent, child clock.TID) {
	p, c := d.thread(parent), d.thread(child)
	c.Join(p)
	c.Tick(child)
	p.Tick(parent)
}

// Join records that parent observed child's termination.
func (d *Detector) Join(parent, child clock.TID) {
	p, c := d.thread(parent), d.thread(child)
	p.Join(c)
	c.Tick(child)
}

// JoinAllChildren records parent observing the termination of every child in
// one batched operation: with sparse clocks the N-way merge is a single
// tournament over the sorted entry lists (clock.JoinAll) instead of N
// sequential O(T) joins. Semantically identical to calling Join per child.
func (d *Detector) JoinAllChildren(parent clock.TID, children []clock.TID) {
	p := d.thread(parent)
	d.collapseBuf = d.collapseBuf[:0]
	for _, c := range children {
		d.collapseBuf = append(d.collapseBuf, d.thread(c))
	}
	clock.JoinAll(p, d.collapseBuf)
	for _, c := range children {
		d.thread(c).Tick(c)
	}
}

// Acquire records tid synchronizing-with prior releases of s (lock acquire,
// condition wait return, barrier departure).
func (d *Detector) Acquire(tid clock.TID, s SyncID) {
	d.thread(tid).Join(d.sync(s))
}

// Release records tid publishing its history through s (lock release,
// signal, barrier arrival). The sync clock joins rather than assigns so the
// same primitive serves mutexes, semaphore-style condvars, and barriers
// without manufacturing false happens-before edges.
func (d *Detector) Release(tid clock.TID, s SyncID) {
	t := d.thread(tid)
	d.sync(s).Join(t)
	t.Tick(tid)
	d.maybeCollapse()
}

func (d *Detector) maybeCollapse() {
	if d.cfg.RefDense || d.collapseEvery < 0 {
		return
	}
	d.sinceCollapse++
	if d.sinceCollapse < d.collapseEvery || len(d.threads) < collapseMinThreads {
		return
	}
	d.sinceCollapse = 0
	d.Collapse()
}

// Collapse runs one epoch-collapse round: a new shared base is computed at
// the pointwise minimum of all thread clocks (clock.NextBase) and the thread
// clocks are re-expressed against it, so each ends up carrying entries only
// for components where it is ahead of the floor — idle threads' slots are
// reclaimed and Len() tracks live threads again. Sync clocks are never
// eagerly rebased; they adopt newer bases lazily when next joined. Runs
// automatically every CollapseEvery releases; exported for benchmarks.
func (d *Detector) Collapse() {
	if d.cfg.RefDense {
		return
	}
	d.collapseBuf = d.collapseBuf[:0]
	for _, v := range d.threads {
		if v != nil {
			d.collapseBuf = append(d.collapseBuf, v)
		}
	}
	if len(d.collapseBuf) == 0 {
		return
	}
	nb := clock.NextBase(d.base, d.collapseBuf)
	for _, v := range d.collapseBuf {
		v.Rebase(nb)
	}
	d.base = nb
	d.stats.Collapses++
}

func (d *Detector) report(r Race) {
	k := r.Key()
	if _, dup := d.races[k]; dup {
		return
	}
	d.races[k] = r
	d.order = append(d.order, k)
	if d.onRace != nil {
		d.onRace(r)
	}
}

// Read analyzes a read of addr by tid at static site, following FastTrack's
// adaptive read representation.
func (d *Detector) Read(tid clock.TID, addr memmodel.Addr, site shadow.SiteID) {
	d.Checks++
	c := d.thread(tid)
	w := d.mem.Word(addr)
	e := c.Epoch(tid)

	if w.ReadShared() {
		if w.RVC.Get(tid) == e.Time() {
			return // same-epoch read
		}
	} else if w.R == e {
		return
	}

	if !c.LeqEpoch(w.W) {
		d.report(Race{Addr: addr, PrevSite: w.WSite, CurSite: site,
			PrevWrite: true, CurWrite: false, PrevTID: w.W.TID(), CurTID: tid})
	}

	if w.ReadShared() {
		w.RecordSharedRead(tid, e.Time(), site)
		return
	}
	if w.R == clock.NoEpoch || c.LeqEpoch(w.R) {
		w.R, w.RSite = e, site // exclusive: new read supersedes ordered old one
		return
	}
	// Two concurrent readers: inflate to vector mode (pooled).
	d.mem.Inflate(w, len(d.threads))
	w.RecordSharedRead(tid, e.Time(), site)
}

// Write analyzes a write of addr by tid at static site.
func (d *Detector) Write(tid clock.TID, addr memmodel.Addr, site shadow.SiteID) {
	d.Checks++
	c := d.thread(tid)
	w := d.mem.Word(addr)
	e := c.Epoch(tid)

	if w.W == e {
		w.WSite = site
		return // same-epoch write
	}
	if !c.LeqEpoch(w.W) {
		d.report(Race{Addr: addr, PrevSite: w.WSite, CurSite: site,
			PrevWrite: true, CurWrite: true, PrevTID: w.W.TID(), CurTID: tid})
	}
	if w.ReadShared() {
		// ForEach visits nonzero components in ascending tid order — the
		// same components, in the same order, as the dense index loop it
		// replaced, so race reports are representation-independent.
		w.RVC.ForEach(func(t clock.TID, rt clock.Time) {
			if rt > c.Get(t) {
				d.report(Race{Addr: addr, PrevSite: w.RSiteOf(t), CurSite: site,
					PrevWrite: false, CurWrite: true, PrevTID: t, CurTID: tid})
			}
		})
	} else if w.R != clock.NoEpoch && !c.LeqEpoch(w.R) {
		d.report(Race{Addr: addr, PrevSite: w.RSite, CurSite: site,
			PrevWrite: false, CurWrite: true, PrevTID: w.R.TID(), CurTID: tid})
	}
	// FastTrack write-clears-reads: any later access ordered after this
	// write is ordered after all reads it superseded; any unordered later
	// access will race with this write instead. The released read vector
	// goes back to the memory's pool.
	w.W, w.WSite = e, site
	d.mem.ClearReads(w)
}

// Access dispatches to Read or Write.
func (d *Detector) Access(tid clock.TID, addr memmodel.Addr, isWrite bool, site shadow.SiteID) {
	if isWrite {
		d.Write(tid, addr, site)
	} else {
		d.Read(tid, addr, site)
	}
}

// RaceCount returns the number of distinct static races found.
func (d *Detector) RaceCount() int { return len(d.races) }

// Races returns the distinct races in first-detection order.
func (d *Detector) Races() []Race {
	out := make([]Race, 0, len(d.order))
	for _, k := range d.order {
		out = append(out, d.races[k])
	}
	return out
}

// RaceKeys returns the normalized static pairs, sorted, for set comparisons
// between detector runs (recall computation in Table 2 / Fig. 10).
func (d *Detector) RaceKeys() []PairKey {
	out := make([]PairKey, 0, len(d.races))
	for k := range d.races {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
