package detect

import (
	"repro/internal/clock"
	"repro/internal/memmodel"
	"repro/internal/shadow"
	"repro/internal/sim"
)

// LocksetDetector implements Eraser's lockset algorithm (Savage et al.,
// SOSP '97) — the lock-discipline baseline the paper's related-work section
// contrasts happens-before detection against (§9): it infers races from
// violations of a consistent-locking discipline rather than from event
// ordering.
//
// Because it knows nothing about fork/join, signal/wait, or barriers, it is
// sound for lock-based programs but *incomplete*: condition-variable and
// fork/join synchronization produce false positives that the
// happens-before detectors in this package do not. TestLocksetFalsePositive*
// demonstrate exactly those, which is the reason TxRace builds on a
// vector-clock slow path instead.
type LocksetDetector struct {
	// Thread ids are small and dense, so the per-thread held-lock sets are
	// slices indexed by TID (grown on demand).
	heldWrite []map[SyncID]struct{} // mutexes + write holds
	heldRead  []map[SyncID]struct{} // + read holds

	vars   shadow.PageTable[locksetVar]
	viol   map[PairKey]Race
	order  []PairKey
	Checks uint64
}

type varState uint8

const (
	lsVirgin varState = iota
	lsExclusive
	lsShared
	lsSharedModified
)

type locksetVar struct {
	state    varState
	owner    clock.TID
	cand     map[SyncID]struct{} // C(v): candidate lockset
	lastSite shadow.SiteID
	lastTID  clock.TID
	lastWr   bool
	reported bool
}

// NewLockset returns an empty lockset detector.
func NewLockset() *LocksetDetector {
	return &LocksetDetector{
		viol: make(map[PairKey]Race),
	}
}

func (d *LocksetDetector) set(write bool, tid clock.TID) map[SyncID]struct{} {
	m := &d.heldRead
	if write {
		m = &d.heldWrite
	}
	if int(tid) >= len(*m) {
		nm := make([]map[SyncID]struct{}, int(tid)+1)
		copy(nm, *m)
		*m = nm
	}
	s := (*m)[tid]
	if s == nil {
		s = make(map[SyncID]struct{})
		(*m)[tid] = s
	}
	return s
}

// Acquire records a lock acquisition of the given kind. Semaphore and
// barrier events are deliberately ignored — Eraser's blind spot.
func (d *LocksetDetector) Acquire(tid clock.TID, s SyncID, kind sim.SyncKind) {
	switch kind {
	case sim.SyncMutex, sim.SyncWrite:
		d.set(true, tid)[s] = struct{}{}
		d.set(false, tid)[s] = struct{}{}
	case sim.SyncRead:
		d.set(false, tid)[s] = struct{}{}
	}
}

// Release records a lock release.
func (d *LocksetDetector) Release(tid clock.TID, s SyncID, kind sim.SyncKind) {
	switch kind {
	case sim.SyncMutex, sim.SyncWrite:
		delete(d.set(true, tid), s)
		delete(d.set(false, tid), s)
	case sim.SyncRead:
		delete(d.set(false, tid), s)
	}
}

func intersect(c map[SyncID]struct{}, held map[SyncID]struct{}) {
	for l := range c {
		if _, ok := held[l]; !ok {
			delete(c, l)
		}
	}
}

func copySet(src map[SyncID]struct{}) map[SyncID]struct{} {
	out := make(map[SyncID]struct{}, len(src))
	for k := range src {
		out[k] = struct{}{}
	}
	return out
}

// Access runs Eraser's state machine for one access.
func (d *LocksetDetector) Access(tid clock.TID, addr memmodel.Addr, isWrite bool, site shadow.SiteID) {
	d.Checks++
	// The zero locksetVar is exactly the Virgin state, so first touch of a
	// paged slot needs no initialization.
	v := d.vars.Get(memmodel.WordOf(addr))
	held := d.set(isWrite, tid)

	switch v.state {
	case lsVirgin:
		v.state = lsExclusive
		v.owner = tid
	case lsExclusive:
		if tid == v.owner {
			break
		}
		v.cand = copySet(held)
		if isWrite || v.lastWr {
			v.state = lsSharedModified
		} else {
			v.state = lsShared
		}
		d.check(v, addr, tid, isWrite, site)
	case lsShared:
		intersect(v.cand, held)
		if isWrite {
			v.state = lsSharedModified
			d.check(v, addr, tid, isWrite, site)
		}
	case lsSharedModified:
		intersect(v.cand, held)
		d.check(v, addr, tid, isWrite, site)
	}
	v.lastSite, v.lastTID, v.lastWr = site, tid, isWrite
}

func (d *LocksetDetector) check(v *locksetVar, addr memmodel.Addr, tid clock.TID, isWrite bool, site shadow.SiteID) {
	if v.state != lsSharedModified || len(v.cand) != 0 || v.reported {
		return
	}
	v.reported = true
	r := Race{Addr: addr, PrevSite: v.lastSite, CurSite: site,
		PrevWrite: v.lastWr, CurWrite: isWrite, PrevTID: v.lastTID, CurTID: tid}
	k := r.Key()
	if _, dup := d.viol[k]; dup {
		return
	}
	d.viol[k] = r
	d.order = append(d.order, k)
}

// ViolationCount returns the number of distinct lock-discipline violations.
func (d *LocksetDetector) ViolationCount() int { return len(d.viol) }

// Violations returns the violations in first-detection order.
func (d *LocksetDetector) Violations() []Race {
	out := make([]Race, 0, len(d.order))
	for _, k := range d.order {
		out = append(out, d.viol[k])
	}
	return out
}
