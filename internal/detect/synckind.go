package detect

import (
	"repro/internal/clock"
	"repro/internal/sim"
)

// rwReaderBit namespaces the auxiliary clock a reader-writer lock needs: the
// detector keeps one vector clock for the write side of rwlock s (the plain
// SyncID) and one for the read side (SyncID with this bit set).
const rwReaderBit SyncID = 1 << 31

// AcquireKind applies the happens-before semantics of a synchronization
// acquire according to its kind:
//
//   - mutex / semaphore / barrier: join the object's clock;
//   - rwlock read hold: join only the writer-side clock (readers are ordered
//     after previous writers but not after each other);
//   - rwlock write hold: join both sides (a writer is ordered after all
//     previous writers and readers).
func AcquireKind(d *Detector, tid clock.TID, s SyncID, kind sim.SyncKind) {
	switch kind {
	case sim.SyncRead:
		d.Acquire(tid, s)
	case sim.SyncWrite:
		d.Acquire(tid, s)
		d.Acquire(tid, s|rwReaderBit)
	default:
		d.Acquire(tid, s)
	}
}

// ReleaseKind applies the release-side semantics (see AcquireKind):
// read-unlocks publish into the reader-side clock only; write-unlocks into
// the writer-side clock.
func ReleaseKind(d *Detector, tid clock.TID, s SyncID, kind sim.SyncKind) {
	switch kind {
	case sim.SyncRead:
		d.Release(tid, s|rwReaderBit)
	case sim.SyncWrite:
		d.Release(tid, s)
	default:
		d.Release(tid, s)
	}
}
