package detect

import "repro/internal/clock"

// Program synchronization objects carry small dense SyncIDs (the workload
// builder hands them out sequentially from 1), so the common lookup on every
// acquire/release is an array index. Two derived namespaces are sparse by
// construction — rwlock reader-side clocks (rwReaderBit, 1<<31) and atomic
// per-location clocks (atomicSyncBit, 1<<30) — and fall back to a map.
const denseSyncLimit = 1 << 16

// vcTable maps SyncIDs to their vector clocks: a direct-indexed slice for
// dense ids, a map for the namespaced remainder. The zero value is empty
// and builds dense clocks; a detector running sparse clocks installs its
// constructor via mk.
type vcTable struct {
	dense  []*clock.VC
	sparse map[SyncID]*clock.VC
	mk     func() *clock.VC // clock constructor (nil = dense clock.New(0))
}

func (t *vcTable) newClock() *clock.VC {
	if t.mk != nil {
		return t.mk()
	}
	return clock.New(0)
}

// get returns the clock for s, creating an empty one on first use.
func (t *vcTable) get(s SyncID) *clock.VC {
	if s < denseSyncLimit {
		if int(s) >= len(t.dense) {
			nd := make([]*clock.VC, int(s)+1)
			copy(nd, t.dense)
			t.dense = nd
		}
		v := t.dense[s]
		if v == nil {
			v = t.newClock()
			t.dense[s] = v
		}
		return v
	}
	if t.sparse == nil {
		t.sparse = make(map[SyncID]*clock.VC)
	}
	v := t.sparse[s]
	if v == nil {
		v = t.newClock()
		t.sparse[s] = v
	}
	return v
}
