package detect

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/memmodel"
	"repro/internal/shadow"
	"repro/internal/sim"
)

func clockTID(v int32) clock.TID         { return clock.TID(v) }
func memAddr(v int32) memmodel.Addr      { return memmodel.Addr(v) }
func shadowSiteU(v uint32) shadow.SiteID { return shadow.SiteID(v) }

// Reader-writer lock happens-before semantics (AcquireKind/ReleaseKind):
// writers order with everyone; readers order with writers but not with each
// other.

func TestRWLockWriterOrdersReader(t *testing.T) {
	d := New()
	s := SyncID(4)
	AcquireKind(d, 0, s, sim.SyncWrite)
	d.Write(0, x, 10)
	ReleaseKind(d, 0, s, sim.SyncWrite)
	AcquireKind(d, 1, s, sim.SyncRead)
	d.Read(1, x, 20)
	ReleaseKind(d, 1, s, sim.SyncRead)
	if d.RaceCount() != 0 {
		t.Fatalf("write-lock → read-lock not ordered: %v", d.Races())
	}
}

func TestRWLockReaderOrdersWriter(t *testing.T) {
	d := New()
	s := SyncID(4)
	AcquireKind(d, 0, s, sim.SyncRead)
	d.Read(0, x, 10)
	ReleaseKind(d, 0, s, sim.SyncRead)
	AcquireKind(d, 1, s, sim.SyncWrite)
	d.Write(1, x, 20)
	ReleaseKind(d, 1, s, sim.SyncWrite)
	if d.RaceCount() != 0 {
		t.Fatalf("read-lock → write-lock not ordered: %v", d.Races())
	}
}

func TestRWLockReadersNotMutuallyOrdered(t *testing.T) {
	// Two read holds do not synchronize with each other: a write performed
	// under a read hold races with another reader's access. (This is the
	// classic misuse rwlock HB must not paper over.)
	d := New()
	s := SyncID(4)
	AcquireKind(d, 0, s, sim.SyncRead)
	d.Write(0, x, 10) // write under a read hold: bug in the "program"
	ReleaseKind(d, 0, s, sim.SyncRead)
	AcquireKind(d, 1, s, sim.SyncRead)
	d.Read(1, x, 20)
	ReleaseKind(d, 1, s, sim.SyncRead)
	if d.RaceCount() != 1 {
		t.Fatalf("reader-reader falsely ordered: races = %d", d.RaceCount())
	}
}

func TestRWLockWriterSeesAllPriorReaders(t *testing.T) {
	d := New()
	s := SyncID(4)
	for tid := int32(0); tid < 3; tid++ {
		AcquireKind(d, clockTID(tid), s, sim.SyncRead)
		d.Write(clockTID(tid), x+8*memAddr(tid), shadowSite(clockTID(tid))+50)
		ReleaseKind(d, clockTID(tid), s, sim.SyncRead)
	}
	AcquireKind(d, 3, s, sim.SyncWrite)
	for tid := int32(0); tid < 3; tid++ {
		d.Write(3, x+8*memAddr(tid), 90)
	}
	if d.RaceCount() != 0 {
		t.Fatalf("writer not ordered after all readers: %v", d.Races())
	}
}

func TestMutexKindBehavesAsBefore(t *testing.T) {
	d := New()
	s := SyncID(9)
	AcquireKind(d, 0, s, sim.SyncMutex)
	d.Write(0, x, 10)
	ReleaseKind(d, 0, s, sim.SyncMutex)
	AcquireKind(d, 1, s, sim.SyncMutex)
	d.Write(1, x, 20)
	ReleaseKind(d, 1, s, sim.SyncMutex)
	if d.RaceCount() != 0 {
		t.Fatal("mutex kind lost ordering")
	}
}
