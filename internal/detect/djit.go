package detect

import (
	"sort"

	"repro/internal/clock"
	"repro/internal/memmodel"
	"repro/internal/shadow"
)

// VCDetector is a Djit⁺-style happens-before detector (Pozniansky &
// Schuster's MultiRace lineage, [58] in the paper): it keeps a full vector
// clock per variable for reads and writes instead of FastTrack's adaptive
// epochs. Detection power is identical to Detector — both implement exact
// happens-before — but every access pays O(threads) vector work where
// FastTrack usually pays O(1). BenchmarkDetectorAlgorithms quantifies the
// gap, which is the optimization FastTrack (and hence TSan, and hence this
// reproduction's slow path) is built on.
type VCDetector struct {
	threads []*clock.VC
	syncs   vcTable
	vars    shadow.PageTable[vcVar]
	races   map[PairKey]Race
	order   []PairKey

	cfg   Config
	stats *clock.Stats

	Checks uint64
}

type vcVar struct {
	w      *clock.VC
	r      *clock.VC
	wSites []shadow.SiteID // per-thread last write site
	rSites []shadow.SiteID
}

// NewVC returns an empty Djit⁺-style detector in the default sparse-clock
// configuration. Per-variable clocks are where sparsity pays most here: a
// variable touched by a handful of threads carries a handful of entries
// however many threads the program has.
func NewVC() *VCDetector { return NewVCWith(Config{}) }

// NewVCWith returns an empty Djit⁺-style detector with the given clock
// configuration.
func NewVCWith(cfg Config) *VCDetector {
	d := &VCDetector{
		races: make(map[PairKey]Race),
		cfg:   cfg,
		stats: new(clock.Stats),
	}
	if !cfg.RefDense {
		d.syncs.mk = d.newClock
	}
	return d
}

func (d *VCDetector) newClock() *clock.VC {
	if d.cfg.RefDense {
		return clock.New(0)
	}
	return clock.NewSparse(d.stats)
}

// ClockStats returns the sparse-representation transition counters.
func (d *VCDetector) ClockStats() clock.Stats { return *d.stats }

func (d *VCDetector) thread(tid clock.TID) *clock.VC {
	if int(tid) >= len(d.threads) {
		d.threads = growThreads(d.threads, tid)
	}
	if d.threads[tid] == nil {
		var v *clock.VC
		if d.cfg.RefDense {
			v = clock.New(int(tid) + 1)
		} else {
			v = clock.NewSparse(d.stats)
		}
		v.Tick(tid)
		d.threads[tid] = v
	}
	return d.threads[tid]
}

func (d *VCDetector) sync(s SyncID) *clock.VC { return d.syncs.get(s) }

// Fork, Join, Acquire, Release mirror Detector's happens-before transfer.
func (d *VCDetector) Fork(parent, child clock.TID) {
	p, c := d.thread(parent), d.thread(child)
	c.Join(p)
	c.Tick(child)
	p.Tick(parent)
}

// Join records child's termination.
func (d *VCDetector) Join(parent, child clock.TID) {
	d.thread(parent).Join(d.thread(child))
	d.thread(child).Tick(child)
}

// Acquire joins the sync object's clock into the thread.
func (d *VCDetector) Acquire(tid clock.TID, s SyncID) { d.thread(tid).Join(d.sync(s)) }

// Release publishes the thread's clock through the sync object.
func (d *VCDetector) Release(tid clock.TID, s SyncID) {
	t := d.thread(tid)
	d.sync(s).Join(t)
	t.Tick(tid)
}

func (d *VCDetector) varOf(a memmodel.Addr) *vcVar {
	v := d.vars.Get(memmodel.WordOf(a))
	if v.w == nil {
		v.w, v.r = d.newClock(), d.newClock()
	}
	return v
}

func setSite(sites *[]shadow.SiteID, tid clock.TID, site shadow.SiteID) {
	if int(tid) >= len(*sites) {
		ns := make([]shadow.SiteID, int(tid)+1)
		copy(ns, *sites)
		*sites = ns
	}
	(*sites)[tid] = site
}

func siteOf(sites []shadow.SiteID, tid clock.TID) shadow.SiteID {
	if int(tid) >= len(sites) {
		return 0
	}
	return sites[tid]
}

func (d *VCDetector) report(r Race) {
	k := r.Key()
	if _, dup := d.races[k]; dup {
		return
	}
	d.races[k] = r
	d.order = append(d.order, k)
}

// scan reports every component of prev that is not covered by cur —
// Djit⁺'s per-access vector comparison. ForEach visits only live
// components in ascending tid order, so a sparse per-variable clock costs
// O(touching threads) rather than O(all threads), and reports stay in the
// dense loop's order.
func (d *VCDetector) scan(prev *clock.VC, sites []shadow.SiteID, prevWrite bool,
	cur *clock.VC, tid clock.TID, isWrite bool, addr memmodel.Addr, site shadow.SiteID) {
	prev.ForEach(func(t clock.TID, pt clock.Time) {
		if t == tid {
			return
		}
		if pt > cur.Get(t) {
			d.report(Race{Addr: addr, PrevSite: siteOf(sites, t), CurSite: site,
				PrevWrite: prevWrite, CurWrite: isWrite, PrevTID: t, CurTID: tid})
		}
	})
}

// Read analyzes a read.
func (d *VCDetector) Read(tid clock.TID, addr memmodel.Addr, site shadow.SiteID) {
	d.Checks++
	c := d.thread(tid)
	v := d.varOf(addr)
	d.scan(v.w, v.wSites, true, c, tid, false, addr, site)
	v.r.Set(tid, c.Get(tid))
	setSite(&v.rSites, tid, site)
}

// Write analyzes a write.
func (d *VCDetector) Write(tid clock.TID, addr memmodel.Addr, site shadow.SiteID) {
	d.Checks++
	c := d.thread(tid)
	v := d.varOf(addr)
	d.scan(v.w, v.wSites, true, c, tid, true, addr, site)
	d.scan(v.r, v.rSites, false, c, tid, true, addr, site)
	v.w.Set(tid, c.Get(tid))
	setSite(&v.wSites, tid, site)
}

// Access dispatches to Read or Write.
func (d *VCDetector) Access(tid clock.TID, addr memmodel.Addr, isWrite bool, site shadow.SiteID) {
	if isWrite {
		d.Write(tid, addr, site)
	} else {
		d.Read(tid, addr, site)
	}
}

// RaceCount returns the number of distinct static races.
func (d *VCDetector) RaceCount() int { return len(d.races) }

// RaceKeys returns the sorted normalized race pairs.
func (d *VCDetector) RaceKeys() []PairKey {
	out := make([]PairKey, 0, len(d.races))
	for k := range d.races {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
