package detect

import "testing"

func TestAtomicsOrderWithEachOther(t *testing.T) {
	d := New()
	AtomicOp(d, 0, x, 10)
	AtomicOp(d, 1, x, 20)
	AtomicOp(d, 2, x, 30)
	if d.RaceCount() != 0 {
		t.Fatalf("atomic RMWs reported racy: %v", d.Races())
	}
}

func TestPlainAccessRacesWithAtomic(t *testing.T) {
	d := New()
	AtomicOp(d, 0, x, 10)
	d.Write(1, x, 20) // plain write, unordered with the atomic
	if d.RaceCount() != 1 {
		t.Fatalf("mixed atomic/plain access not flagged: %d", d.RaceCount())
	}
}

func TestAtomicPublishOrdersDependentPlainAccess(t *testing.T) {
	// The message-passing idiom: plain write, atomic store-release of a
	// flag, atomic load-acquire, plain read.
	d := New()
	d.Write(0, y, 10)     // payload
	AtomicOp(d, 0, x, 11) // release the flag
	AtomicOp(d, 1, x, 20) // acquire the flag
	d.Read(1, y, 21)      // consume the payload: ordered
	if d.RaceCount() != 0 {
		t.Fatalf("atomic publication did not order the payload: %v", d.Races())
	}
}

func TestAtomicsOnDifferentLocationsDoNotOrder(t *testing.T) {
	d := New()
	d.Write(0, y, 10)
	AtomicOp(d, 0, x, 11)
	AtomicOp(d, 1, x+1024, 20) // a different atomic location
	d.Write(1, y, 21)
	if d.RaceCount() != 1 {
		t.Fatalf("unrelated atomics must not create ordering: %d races", d.RaceCount())
	}
}
