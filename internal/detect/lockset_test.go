package detect

import (
	"testing"

	"repro/internal/sim"
)

func TestLocksetCatchesUnlockedSharing(t *testing.T) {
	d := NewLockset()
	d.Access(0, x, true, 10)
	d.Access(1, x, true, 20)
	if d.ViolationCount() != 1 {
		t.Fatalf("violations = %d, want 1", d.ViolationCount())
	}
	v := d.Violations()[0]
	if v.Key() != (PairKey{10, 20}) {
		t.Fatalf("violation pair %+v", v)
	}
}

func TestLocksetConsistentDisciplineClean(t *testing.T) {
	d := NewLockset()
	mu := SyncID(1)
	for tid := int32(0); tid < 3; tid++ {
		d.Acquire(clockTID(tid), mu, sim.SyncMutex)
		d.Access(clockTID(tid), x, true, 10+shadowSite(clockTID(tid)))
		d.Release(clockTID(tid), mu, sim.SyncMutex)
	}
	if d.ViolationCount() != 0 {
		t.Fatalf("consistent locking flagged: %v", d.Violations())
	}
}

func TestLocksetCandidateIntersection(t *testing.T) {
	// Thread 0 protects x with {A,B}; thread 1 with {B}; thread 2 with {A}:
	// the candidate set empties at thread 2 → violation.
	d := NewLockset()
	a, b := SyncID(1), SyncID(2)
	d.Acquire(0, a, sim.SyncMutex)
	d.Acquire(0, b, sim.SyncMutex)
	d.Access(0, x, true, 10)
	d.Release(0, a, sim.SyncMutex)
	d.Release(0, b, sim.SyncMutex)

	d.Acquire(1, b, sim.SyncMutex)
	d.Access(1, x, true, 20)
	d.Release(1, b, sim.SyncMutex)
	if d.ViolationCount() != 0 {
		t.Fatalf("C(v)={B} still non-empty, but flagged: %v", d.Violations())
	}

	d.Acquire(2, a, sim.SyncMutex)
	d.Access(2, x, true, 30)
	d.Release(2, a, sim.SyncMutex)
	if d.ViolationCount() != 1 {
		t.Fatalf("emptied candidate set not flagged: %d", d.ViolationCount())
	}
}

func TestLocksetExclusivePhaseSilent(t *testing.T) {
	// Single-thread use, even unlocked, is never flagged (virgin/exclusive).
	d := NewLockset()
	for i := 0; i < 10; i++ {
		d.Access(0, x, true, 10)
	}
	if d.ViolationCount() != 0 {
		t.Fatal("exclusive accesses flagged")
	}
}

func TestLocksetReadSharingWithoutWritesSilent(t *testing.T) {
	d := NewLockset()
	d.Access(0, x, false, 10)
	d.Access(1, x, false, 20)
	d.Access(2, x, false, 30)
	if d.ViolationCount() != 0 {
		t.Fatal("read-only sharing flagged")
	}
}

// TestLocksetFalsePositiveOnSignalWait is the classic Eraser failure the
// paper's §9 discussion alludes to: producer/consumer ordering through a
// condition variable is real synchronization, but carries no locks — the
// lockset detector flags it, the happens-before detector does not.
func TestLocksetFalsePositiveOnSignalWait(t *testing.T) {
	ls := NewLockset()
	ls.Access(0, x, true, 10)
	// signal → wait happens here; Eraser cannot see it.
	ls.Access(1, x, true, 20)
	if ls.ViolationCount() != 1 {
		t.Fatalf("expected the false positive, got %d", ls.ViolationCount())
	}

	hb := New()
	hb.Write(0, x, 10)
	hb.Release(0, SyncID(3))
	hb.Acquire(1, SyncID(3))
	hb.Write(1, x, 20)
	if hb.RaceCount() != 0 {
		t.Fatal("happens-before detector must accept signal/wait ordering")
	}
}

func TestLocksetRWLockDiscipline(t *testing.T) {
	// Readers holding the rwlock in read mode + writer in write mode is a
	// consistent discipline.
	d := NewLockset()
	l := SyncID(7)
	d.Acquire(0, l, sim.SyncWrite)
	d.Access(0, x, true, 10)
	d.Release(0, l, sim.SyncWrite)
	d.Acquire(1, l, sim.SyncRead)
	d.Access(1, x, false, 20)
	d.Release(1, l, sim.SyncRead)
	if d.ViolationCount() != 0 {
		t.Fatalf("rwlock discipline flagged: %v", d.Violations())
	}
	// ...but writing under only a read hold is a violation when another
	// thread writes too.
	d.Acquire(2, l, sim.SyncRead)
	d.Access(2, x, true, 30)
	d.Release(2, l, sim.SyncRead)
	if d.ViolationCount() != 1 {
		t.Fatalf("write under read hold not flagged: %d", d.ViolationCount())
	}
}

func TestLocksetChecksCounter(t *testing.T) {
	d := NewLockset()
	d.Access(0, x, true, 1)
	d.Access(0, y, false, 2)
	if d.Checks != 2 {
		t.Fatalf("checks = %d", d.Checks)
	}
}
