package detect

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/memmodel"
	"repro/internal/prng"
	"repro/internal/shadow"
)

// refDetector is the pre-refactor FastTrack detector: hash-map shadow memory
// (shadow.MapMemory), map-keyed sync clocks, allocation on every inflation.
// It exists only as the behavioural reference for TestDetectorMatchesReference
// — the paged, pooled Detector must report identical races and identical
// shadow state for any event sequence.
type refDetector struct {
	threads []*clock.VC
	syncs   map[SyncID]*clock.VC
	mem     *shadow.MapMemory
	races   map[PairKey]struct{}
}

func newRefDetector() *refDetector {
	return &refDetector{
		syncs: make(map[SyncID]*clock.VC),
		mem:   shadow.NewMapMemory(),
		races: make(map[PairKey]struct{}),
	}
}

func (d *refDetector) thread(tid clock.TID) *clock.VC {
	for int(tid) >= len(d.threads) {
		d.threads = append(d.threads, nil)
	}
	if d.threads[tid] == nil {
		v := clock.New(int(tid) + 1)
		v.Tick(tid)
		d.threads[tid] = v
	}
	return d.threads[tid]
}

func (d *refDetector) sync(s SyncID) *clock.VC {
	v := d.syncs[s]
	if v == nil {
		v = clock.New(0)
		d.syncs[s] = v
	}
	return v
}

func (d *refDetector) fork(p, c clock.TID) {
	pv, cv := d.thread(p), d.thread(c)
	cv.Join(pv)
	cv.Tick(c)
	pv.Tick(p)
}

func (d *refDetector) acquire(tid clock.TID, s SyncID) { d.thread(tid).Join(d.sync(s)) }

func (d *refDetector) release(tid clock.TID, s SyncID) {
	t := d.thread(tid)
	d.sync(s).Join(t)
	t.Tick(tid)
}

func (d *refDetector) report(r Race) { d.races[r.Key()] = struct{}{} }

func (d *refDetector) read(tid clock.TID, addr memmodel.Addr, site shadow.SiteID) {
	c := d.thread(tid)
	w := d.mem.Word(addr)
	e := c.Epoch(tid)
	if w.ReadShared() {
		if w.RVC.Get(tid) == e.Time() {
			return
		}
	} else if w.R == e {
		return
	}
	if !c.LeqEpoch(w.W) {
		d.report(Race{Addr: addr, PrevSite: w.WSite, CurSite: site,
			PrevWrite: true, CurWrite: false, PrevTID: w.W.TID(), CurTID: tid})
	}
	if w.ReadShared() {
		w.RecordSharedRead(tid, e.Time(), site)
		return
	}
	if w.R == clock.NoEpoch || c.LeqEpoch(w.R) {
		w.R, w.RSite = e, site
		return
	}
	d.mem.Inflate(w, len(d.threads))
	w.RecordSharedRead(tid, e.Time(), site)
}

func (d *refDetector) write(tid clock.TID, addr memmodel.Addr, site shadow.SiteID) {
	c := d.thread(tid)
	w := d.mem.Word(addr)
	e := c.Epoch(tid)
	if w.W == e {
		w.WSite = site
		return
	}
	if !c.LeqEpoch(w.W) {
		d.report(Race{Addr: addr, PrevSite: w.WSite, CurSite: site,
			PrevWrite: true, CurWrite: true, PrevTID: w.W.TID(), CurTID: tid})
	}
	if w.ReadShared() {
		for t := clock.TID(0); int(t) < w.RVC.Len(); t++ {
			rt := w.RVC.Get(t)
			if rt > 0 && rt > c.Get(t) {
				d.report(Race{Addr: addr, PrevSite: w.RSiteOf(t), CurSite: site,
					PrevWrite: false, CurWrite: true, PrevTID: t, CurTID: tid})
			}
		}
	} else if w.R != clock.NoEpoch && !c.LeqEpoch(w.R) {
		d.report(Race{Addr: addr, PrevSite: w.RSite, CurSite: site,
			PrevWrite: false, CurWrite: true, PrevTID: w.R.TID(), CurTID: tid})
	}
	w.W, w.WSite = e, site
	d.mem.ClearReads(w)
}

// TestDetectorMatchesReference drives the paged, pooled Detector and the
// map-backed reference through identical randomized traces (accesses, locks,
// and a sparse sync id exercising the table's map fallback) and requires
// identical race sets and identical shadow state, including under -race.
func TestDetectorMatchesReference(t *testing.T) {
	const threads = 4
	syncIDs := []SyncID{1, 2, 3, SyncID(1) | 1<<30, SyncID(2) | 1<<31}
	for seed := uint64(1); seed <= 8; seed++ {
		rng := prng.New(seed * 0xbeef)
		cur, ref := New(), newRefDetector()
		for tid := clock.TID(1); tid < threads; tid++ {
			cur.Fork(0, tid)
			ref.fork(0, tid)
		}
		var addrs []memmodel.Addr
		for i := 0; i < 20; i++ {
			addrs = append(addrs, memmodel.Addr(0x4000+uint64(i)*memmodel.WordSize))
		}
		for op := 0; op < 5000; op++ {
			tid := clock.TID(rng.Intn(threads))
			switch rng.Intn(8) {
			case 0:
				s := syncIDs[rng.Intn(int64(len(syncIDs)))]
				cur.Acquire(tid, s)
				ref.acquire(tid, s)
			case 1:
				s := syncIDs[rng.Intn(int64(len(syncIDs)))]
				cur.Release(tid, s)
				ref.release(tid, s)
			default:
				a := addrs[rng.Intn(int64(len(addrs)))]
				site := shadow.SiteID(1 + rng.Intn(64))
				if rng.Bool(0.3) {
					cur.Write(tid, a, site)
					ref.write(tid, a, site)
				} else {
					cur.Read(tid, a, site)
					ref.read(tid, a, site)
				}
			}
		}
		keys := cur.RaceKeys()
		if len(keys) != len(ref.races) {
			t.Fatalf("seed %d: %d races vs reference %d", seed, len(keys), len(ref.races))
		}
		for _, k := range keys {
			if _, ok := ref.races[k]; !ok {
				t.Fatalf("seed %d: race %v not in reference", seed, k)
			}
		}
		if cur.mem.Len() != ref.mem.Len() {
			t.Fatalf("seed %d: shadow Len %d vs reference %d", seed, cur.mem.Len(), ref.mem.Len())
		}
		for _, a := range addrs {
			cw, rw := cur.mem.Peek(a), ref.mem.Peek(a)
			if (cw == nil) != (rw == nil) {
				t.Fatalf("seed %d: Peek presence mismatch at %#x", seed, uint64(a))
			}
			if cw == nil {
				continue
			}
			if cw.W != rw.W || cw.R != rw.R || cw.WSite != rw.WSite || cw.ReadShared() != rw.ReadShared() {
				t.Fatalf("seed %d: word state mismatch at %#x: %+v vs %+v", seed, uint64(a), cw, rw)
			}
			if cw.ReadShared() {
				for tid := clock.TID(0); tid < threads; tid++ {
					if cw.RVC.Get(tid) != rw.RVC.Get(tid) || cw.RSiteOf(tid) != rw.RSiteOf(tid) {
						t.Fatalf("seed %d: read vector mismatch at %#x tid %d", seed, uint64(a), tid)
					}
				}
			}
		}
	}
}

// TestCellDetectorMatchesUnpagedStore checks the bounded detector end to end:
// a CellDetector and a by-hand replica over MapCellStore (same seed) must
// agree on every race for identical traces.
func TestCellDetectorMatchesUnpagedStore(t *testing.T) {
	const threads = 4
	for seed := uint64(1); seed <= 4; seed++ {
		rng := prng.New(seed * 0x5eed)
		cur := NewCellDetector(4, int64(seed))
		hb := New()
		store := shadow.NewMapCellStore(4, int64(seed))
		refRaces := map[PairKey]struct{}{}
		for tid := clock.TID(1); tid < threads; tid++ {
			cur.Fork(0, tid)
			hb.Fork(0, tid)
		}
		var addrs []memmodel.Addr
		for i := 0; i < 12; i++ {
			addrs = append(addrs, memmodel.Addr(0x8000+uint64(i)*memmodel.WordSize))
		}
		for op := 0; op < 4000; op++ {
			tid := clock.TID(rng.Intn(threads))
			switch rng.Intn(8) {
			case 0:
				s := SyncID(1 + rng.Intn(3))
				cur.Acquire(tid, s)
				hb.Acquire(tid, s)
			case 1:
				s := SyncID(1 + rng.Intn(3))
				cur.Release(tid, s)
				hb.Release(tid, s)
			default:
				a := addrs[rng.Intn(int64(len(addrs)))]
				site := shadow.SiteID(1 + rng.Intn(64))
				isWrite := rng.Bool(0.4)
				cur.Access(tid, a, isWrite, site)
				// Reference: same cell-check logic over the map store.
				c := hb.thread(tid)
				for _, cell := range store.Cells(a) {
					if cell.E.TID() == tid || (!cell.Write && !isWrite) {
						continue
					}
					if !c.LeqEpoch(cell.E) {
						r := Race{Addr: a, PrevSite: cell.Site, CurSite: site,
							PrevWrite: cell.Write, CurWrite: isWrite, PrevTID: cell.E.TID(), CurTID: tid}
						refRaces[r.Key()] = struct{}{}
					}
				}
				store.Add(a, shadow.Cell{E: c.Epoch(tid), Site: site, Write: isWrite})
			}
		}
		keys := cur.RaceKeys()
		if len(keys) != len(refRaces) {
			t.Fatalf("seed %d: %d races vs reference %d", seed, len(keys), len(refRaces))
		}
		for _, k := range keys {
			if _, ok := refRaces[k]; !ok {
				t.Fatalf("seed %d: race %v not in reference", seed, k)
			}
		}
	}
}
