package detect

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/memmodel"
	"repro/internal/shadow"
)

const (
	x  = memmodel.Addr(0x1000)
	y  = memmodel.Addr(0x2000)
	mu = SyncID(1)
)

func TestWriteWriteRace(t *testing.T) {
	d := New()
	d.Write(0, x, 10)
	d.Write(1, x, 20)
	if d.RaceCount() != 1 {
		t.Fatalf("races = %d, want 1", d.RaceCount())
	}
	r := d.Races()[0]
	if !r.PrevWrite || !r.CurWrite || r.Key() != (PairKey{10, 20}) {
		t.Fatalf("bad race %+v", r)
	}
}

func TestWriteReadRace(t *testing.T) {
	d := New()
	d.Write(0, x, 10)
	d.Read(1, x, 20)
	if d.RaceCount() != 1 {
		t.Fatalf("races = %d, want 1", d.RaceCount())
	}
	r := d.Races()[0]
	if !r.PrevWrite || r.CurWrite {
		t.Fatalf("want write→read race, got %+v", r)
	}
}

func TestReadWriteRace(t *testing.T) {
	d := New()
	d.Read(0, x, 10)
	d.Write(1, x, 20)
	if d.RaceCount() != 1 {
		t.Fatalf("races = %d, want 1", d.RaceCount())
	}
}

func TestReadReadNoRace(t *testing.T) {
	d := New()
	d.Read(0, x, 10)
	d.Read(1, x, 20)
	d.Read(2, x, 30)
	if d.RaceCount() != 0 {
		t.Fatalf("read-read reported as race: %v", d.Races())
	}
}

func TestLockOrderingSuppressesRace(t *testing.T) {
	d := New()
	d.Acquire(0, mu)
	d.Write(0, x, 10)
	d.Release(0, mu)
	d.Acquire(1, mu)
	d.Write(1, x, 20)
	d.Release(1, mu)
	if d.RaceCount() != 0 {
		t.Fatalf("lock-ordered writes reported racy: %v", d.Races())
	}
}

func TestUnrelatedLockDoesNotOrder(t *testing.T) {
	d := New()
	other := SyncID(9)
	d.Acquire(0, mu)
	d.Write(0, x, 10)
	d.Release(0, mu)
	d.Acquire(1, other)
	d.Write(1, x, 20)
	d.Release(1, other)
	if d.RaceCount() != 1 {
		t.Fatalf("different locks must not order accesses: %d", d.RaceCount())
	}
}

func TestForkOrders(t *testing.T) {
	d := New()
	d.Write(0, x, 10)
	d.Fork(0, 1)
	d.Write(1, x, 20)
	if d.RaceCount() != 0 {
		t.Fatal("fork edge ignored")
	}
}

func TestJoinOrders(t *testing.T) {
	d := New()
	d.Fork(0, 1)
	d.Write(1, x, 20)
	d.Join(0, 1)
	d.Write(0, x, 10)
	if d.RaceCount() != 0 {
		t.Fatal("join edge ignored")
	}
}

func TestSignalWaitOrders(t *testing.T) {
	// Semaphore-style: Release on signal, Acquire on wait.
	d := New()
	sem := SyncID(3)
	d.Write(0, x, 10)
	d.Release(0, sem)
	d.Acquire(1, sem)
	d.Write(1, x, 20)
	if d.RaceCount() != 0 {
		t.Fatal("signal→wait edge ignored")
	}
}

func TestReadSharedThenWriteReportsAll(t *testing.T) {
	d := New()
	d.Read(0, x, 10)
	d.Read(1, x, 11)
	d.Read(2, x, 12)
	d.Write(3, x, 20)
	// Three read-write races, one per concurrent reader.
	if d.RaceCount() != 3 {
		t.Fatalf("races = %d, want 3 (%v)", d.RaceCount(), d.Races())
	}
}

func TestWriteClearsReadsSoundly(t *testing.T) {
	// r1 by T0; w2 by T1 unordered with r1 (race reported); then w3 by T2
	// ordered after w2 races with w2, not with the cleared r1.
	d := New()
	s := SyncID(5)
	d.Read(0, x, 10)
	d.Write(1, x, 20) // race {10,20}
	d.Release(1, s)
	d.Acquire(2, s)
	d.Write(2, x, 30) // ordered after w2: no new race
	if d.RaceCount() != 1 {
		t.Fatalf("races = %d, want 1 (%v)", d.RaceCount(), d.Races())
	}
}

func TestSameEpochAccessesCheap(t *testing.T) {
	d := New()
	for i := 0; i < 10; i++ {
		d.Write(0, x, 10)
		d.Read(0, x, 11)
	}
	if d.RaceCount() != 0 {
		t.Fatal("single-thread accesses racy?")
	}
}

func TestDistinctStaticPairsCounted(t *testing.T) {
	d := New()
	d.Write(0, x, 10)
	d.Write(1, x, 20) // pair {10,20}
	d.Write(0, y, 30)
	d.Write(1, y, 40) // pair {30,40}
	if d.RaceCount() != 2 {
		t.Fatalf("races = %d, want 2", d.RaceCount())
	}
}

func TestDynamicDuplicatesDeduped(t *testing.T) {
	d := New()
	for i := 0; i < 5; i++ {
		d.Write(0, x, 10)
		d.Write(1, x, 20)
	}
	if d.RaceCount() != 1 {
		t.Fatalf("races = %d, want 1 (static dedup)", d.RaceCount())
	}
}

func TestOnRaceCallback(t *testing.T) {
	d := New()
	var got []Race
	d.OnRace(func(r Race) { got = append(got, r) })
	d.Write(0, x, 10)
	d.Write(1, x, 20)
	d.Write(0, x, 10)
	d.Write(1, x, 20)
	if len(got) != 1 {
		t.Fatalf("callback fired %d times, want 1", len(got))
	}
}

func TestRaceKeysSorted(t *testing.T) {
	d := New()
	d.Write(0, y, 30)
	d.Write(1, y, 40)
	d.Write(0, x, 20)
	d.Write(1, x, 10)
	keys := d.RaceKeys()
	if len(keys) != 2 || keys[0] != (PairKey{10, 20}) || keys[1] != (PairKey{30, 40}) {
		t.Fatalf("keys = %v", keys)
	}
}

func TestDifferentWordsNoRace(t *testing.T) {
	// Two words on the same cache line: a race detector at word
	// granularity must NOT report them — this is exactly the false-sharing
	// filtering the slow path provides (§3).
	d := New()
	d.Write(0, x, 10)
	d.Write(1, x+8, 20)
	if d.RaceCount() != 0 {
		t.Fatalf("false sharing reported as race: %v", d.Races())
	}
}

func TestBarrierMeshOrders(t *testing.T) {
	d := New()
	bar := SyncID(7)
	// Phase 1: everyone writes their token then arrives.
	d.Write(0, x, 10)
	for tid := clock.TID(0); tid < 3; tid++ {
		d.Release(tid, bar)
	}
	for tid := clock.TID(0); tid < 3; tid++ {
		d.Acquire(tid, bar)
	}
	// Phase 2: a different thread writes x — ordered by the barrier.
	d.Write(2, x, 20)
	if d.RaceCount() != 0 {
		t.Fatalf("barrier-ordered accesses racy: %v", d.Races())
	}
}

func TestSamplerAtFullRateEqualsDetector(t *testing.T) {
	s := NewSampler(1.0, 1)
	s.Access(0, x, true, 10)
	s.Access(1, x, true, 20)
	if s.D.RaceCount() != 1 {
		t.Fatal("full-rate sampler must behave like the detector")
	}
	if s.Skipped != 0 || s.Sampled != 2 {
		t.Fatalf("sampled=%d skipped=%d", s.Sampled, s.Skipped)
	}
}

func TestSamplerAtZeroRateSeesNothing(t *testing.T) {
	s := NewSampler(0, 1)
	for i := 0; i < 100; i++ {
		s.Access(0, x, true, 10)
		s.Access(1, x, true, 20)
	}
	if s.D.RaceCount() != 0 || s.Sampled != 0 {
		t.Fatal("zero-rate sampler analyzed accesses")
	}
}

func TestSamplerTracksSyncAtAnyRate(t *testing.T) {
	// Even at 0% access sampling, sync edges must be tracked so that any
	// sampled accesses later are correctly ordered.
	s := NewSampler(1.0, 1)
	s2 := NewSampler(0.0, 1)
	_ = s2
	s.Acquire(0, mu)
	s.Access(0, x, true, 10)
	s.Release(0, mu)
	s.Acquire(1, mu)
	s.Access(1, x, true, 20)
	if s.D.RaceCount() != 0 {
		t.Fatal("sampler lost sync edges")
	}
}

func TestSamplerBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate > 1 must panic")
		}
	}()
	NewSampler(1.5, 1)
}

func TestCellDetectorFindsRace(t *testing.T) {
	d := NewCellDetector(4, 1)
	d.Access(0, x, true, 10)
	d.Access(1, x, true, 20)
	if d.RaceCount() != 1 {
		t.Fatalf("races = %d, want 1", d.RaceCount())
	}
	if len(d.RaceKeys()) != 1 || len(d.Races()) != 1 {
		t.Fatal("accessors inconsistent")
	}
}

func TestCellDetectorRespectsHappensBefore(t *testing.T) {
	d := NewCellDetector(4, 1)
	d.Access(0, x, true, 10)
	d.Release(0, mu)
	d.Acquire(1, mu)
	d.Access(1, x, true, 20)
	if d.RaceCount() != 0 {
		t.Fatal("ordered accesses reported racy")
	}
	d.Fork(0, 2)
	d.Join(0, 2)
}

// TestShadowEvictionUnsoundness demonstrates why the paper configured TSan
// with enough shadow cells (§5): with bounded cells and many interleaved
// threads, the record of the racy write can be evicted before the racing
// access arrives, hiding the race. The full FastTrack detector keeps it.
func TestShadowEvictionUnsoundness(t *testing.T) {
	target := PairKey{10, 20}
	missed := false
	for seed := int64(0); seed < 20 && !missed; seed++ {
		d := NewCellDetector(2, seed) // tiny shadow: 2 cells per word
		d.Access(0, x, true, 10)      // the racy write
		// Flood the granule with ordered accesses from other threads.
		for tid := clock.TID(1); tid <= 6; tid++ {
			d.hb.Fork(0, tid) // ordered after the write: no races with it
			d.Access(tid, x, false, 100+shadowSite(tid))
		}
		d.Access(7, x, true, 20) // concurrent with the write of site 10
		found := false
		for _, k := range d.RaceKeys() {
			if k == target {
				found = true
			}
		}
		if !found {
			missed = true
		}
	}
	if !missed {
		t.Fatal("bounded shadow never missed the race; eviction model broken?")
	}

	// The unbounded detector must always find it under the same pattern.
	full := New()
	full.Write(0, x, 10)
	for tid := clock.TID(1); tid <= 6; tid++ {
		full.Fork(0, tid)
		full.Read(tid, x, 100)
	}
	full.Write(7, x, 20)
	if full.RaceCount() == 0 {
		t.Fatal("full detector missed a real race")
	}
}

func shadowSite(tid clock.TID) shadow.SiteID { return shadow.SiteID(tid) }

func TestChecksCounter(t *testing.T) {
	d := New()
	d.Write(0, x, 1)
	d.Read(0, x, 2)
	d.Access(0, y, true, 3)
	if d.Checks != 3 {
		t.Fatalf("Checks = %d, want 3", d.Checks)
	}
}

func TestRaceStringRendering(t *testing.T) {
	r := Race{Addr: x, PrevSite: 1, CurSite: 2, PrevWrite: true, CurTID: 3}
	if r.String() == "" {
		t.Fatal("empty race string")
	}
}
