package detect

import (
	"testing"

	"repro/internal/memmodel"
)

// BenchmarkFastTrackSameEpochRead is FastTrack's common case: the O(1)
// same-epoch check that makes it faster than Djit⁺.
func BenchmarkFastTrackSameEpochRead(b *testing.B) {
	d := New()
	d.Write(0, x, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read(0, x, 2)
	}
}

func BenchmarkFastTrackCrossThreadOrdered(b *testing.B) {
	d := New()
	for i := 0; i < b.N; i++ {
		tid := int32(i & 3)
		d.Acquire(clockTID(tid), 1)
		d.Write(clockTID(tid), x, 1)
		d.Release(clockTID(tid), 1)
	}
}

func BenchmarkDjitWrite(b *testing.B) {
	d := NewVC()
	for t := int32(0); t < 8; t++ {
		d.Acquire(clockTID(t), 1)
		d.Write(clockTID(t), x, 1)
		d.Release(clockTID(t), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tid := int32(i & 7)
		d.Acquire(clockTID(tid), 1)
		d.Write(clockTID(tid), x, 1)
		d.Release(clockTID(tid), 1)
	}
}

func BenchmarkLocksetAccess(b *testing.B) {
	d := NewLockset()
	d.Acquire(0, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(0, memmodel.Addr(uint64(i%64)*8), true, 1)
	}
}
