package detect

import (
	"repro/internal/clock"
	"repro/internal/memmodel"
	"repro/internal/shadow"
)

// CellDetector is the bounded-shadow variant: instead of exact FastTrack
// word state it keeps the last N access records per granule with random
// replacement, exactly stock TSan's memory-bounding scheme (§5). It shares
// the happens-before machinery of Detector but can miss races once cells are
// evicted. TestShadowEvictionUnsoundness demonstrates the difference, which
// is why the paper configured TSan with "enough shadow cells to be sound".
type CellDetector struct {
	hb    *Detector
	store *shadow.CellStore

	Evictions uint64
}

// NewCellDetector returns a bounded detector with n cells per granule.
func NewCellDetector(n int, seed int64) *CellDetector {
	return &CellDetector{hb: New(), store: shadow.NewCellStore(n, seed)}
}

// Fork, Join, Acquire and Release forward to the happens-before core.
func (d *CellDetector) Fork(p, c clock.TID)             { d.hb.Fork(p, c) }
func (d *CellDetector) Join(p, c clock.TID)             { d.hb.Join(p, c) }
func (d *CellDetector) Acquire(tid clock.TID, o SyncID) { d.hb.Acquire(tid, o) }
func (d *CellDetector) Release(tid clock.TID, o SyncID) { d.hb.Release(tid, o) }

// Access checks the new access against every surviving cell, then records it
// (possibly evicting a random cell).
func (d *CellDetector) Access(tid clock.TID, addr memmodel.Addr, isWrite bool, site shadow.SiteID) {
	d.hb.Checks++
	c := d.hb.thread(tid)
	for _, cell := range d.store.Cells(addr) {
		if cell.E.TID() == tid {
			continue
		}
		if !cell.Write && !isWrite {
			continue
		}
		if !c.LeqEpoch(cell.E) {
			d.hb.report(Race{Addr: addr, PrevSite: cell.Site, CurSite: site,
				PrevWrite: cell.Write, CurWrite: isWrite, PrevTID: cell.E.TID(), CurTID: tid})
		}
	}
	if d.store.Add(addr, shadow.Cell{E: c.Epoch(tid), Site: site, Write: isWrite}) {
		d.Evictions++
	}
}

// RaceCount returns the number of distinct static races found.
func (d *CellDetector) RaceCount() int { return d.hb.RaceCount() }

// Races returns the distinct races in first-detection order.
func (d *CellDetector) Races() []Race { return d.hb.Races() }

// RaceKeys returns the sorted normalized race pairs.
func (d *CellDetector) RaceKeys() []PairKey { return d.hb.RaceKeys() }

// ShadowStats exposes the happens-before core's shadow allocation counters.
func (d *CellDetector) ShadowStats() shadow.MemStats { return d.hb.mem.Stats() }

// CellStats exposes the bounded store's page-allocation counter.
func (d *CellDetector) CellStats() shadow.CellStats { return d.store.Stats() }
