package detect

import (
	"testing"
)

func TestVCDetectorBasicRaces(t *testing.T) {
	d := NewVC()
	d.Write(0, x, 10)
	d.Write(1, x, 20)
	if d.RaceCount() != 1 || d.RaceKeys()[0] != (PairKey{10, 20}) {
		t.Fatalf("races = %v", d.RaceKeys())
	}

	d = NewVC()
	d.Write(0, x, 10)
	d.Read(1, x, 20)
	if d.RaceCount() != 1 {
		t.Fatal("write-read race missed")
	}

	d = NewVC()
	d.Read(0, x, 10)
	d.Read(1, x, 20)
	if d.RaceCount() != 0 {
		t.Fatal("read-read flagged")
	}
}

func TestVCDetectorRespectsSync(t *testing.T) {
	d := NewVC()
	d.Acquire(0, 1)
	d.Write(0, x, 10)
	d.Release(0, 1)
	d.Acquire(1, 1)
	d.Write(1, x, 20)
	d.Release(1, 1)
	if d.RaceCount() != 0 {
		t.Fatal("ordered writes flagged")
	}

	d = NewVC()
	d.Write(0, x, 10)
	d.Fork(0, 1)
	d.Write(1, x, 20)
	d.Join(0, 1)
	d.Write(0, x, 30)
	if d.RaceCount() != 0 {
		t.Fatal("fork/join ordering lost")
	}
}

func TestVCDetectorMultipleConcurrentReaders(t *testing.T) {
	d := NewVC()
	d.Read(0, x, 10)
	d.Read(1, x, 11)
	d.Read(2, x, 12)
	d.Write(3, x, 20)
	if d.RaceCount() != 3 {
		t.Fatalf("races = %d, want 3", d.RaceCount())
	}
}

// TestVCDetectorAgreesWithFastTrack: on straightforward racy-pair patterns
// (the only ones the workloads inject) the Djit⁺-style detector and
// FastTrack must report identical race sets. (They are NOT identical in
// general: after the first race on a variable FastTrack's write-clears-reads
// optimization intentionally stops tracking older reads, so chained
// scenarios can differ — both still flag the racy variable.)
func TestVCDetectorAgreesWithFastTrack(t *testing.T) {
	type op struct {
		tid   int32
		write bool
		addr  int64
		site  uint32
		// sync != 0: release (write) or acquire (!write) instead of access
		sync uint32
	}
	scenarios := [][]op{
		{{tid: 0, write: true, addr: 0, site: 1}, {tid: 1, write: true, addr: 0, site: 2}},
		{{tid: 0, write: true, addr: 0, site: 1}, {tid: 1, write: false, addr: 0, site: 2},
			{tid: 2, write: true, addr: 64, site: 3}, {tid: 1, write: true, addr: 64, site: 4}},
		{{tid: 0, write: true, addr: 0, site: 1}, {tid: 0, write: false, sync: 9},
			{tid: 1, write: true, sync: 9}, {tid: 1, write: true, addr: 0, site: 2}},
	}
	for i, sc := range scenarios {
		ft, vc := New(), NewVC()
		for _, o := range sc {
			if o.sync != 0 {
				if o.write {
					ft.Acquire(clockTID(o.tid), SyncID(o.sync))
					vc.Acquire(clockTID(o.tid), SyncID(o.sync))
				} else {
					ft.Release(clockTID(o.tid), SyncID(o.sync))
					vc.Release(clockTID(o.tid), SyncID(o.sync))
				}
				continue
			}
			ft.Access(clockTID(o.tid), memAddr(int32(o.addr)), o.write, shadowSiteU(o.site))
			vc.Access(clockTID(o.tid), memAddr(int32(o.addr)), o.write, shadowSiteU(o.site))
		}
		a, b := ft.RaceKeys(), vc.RaceKeys()
		if len(a) != len(b) {
			t.Fatalf("scenario %d: fasttrack %v vs djit %v", i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("scenario %d: fasttrack %v vs djit %v", i, a, b)
			}
		}
	}
}

func TestVCDetectorChecksCount(t *testing.T) {
	d := NewVC()
	d.Write(0, x, 1)
	d.Read(0, x, 2)
	if d.Checks != 2 {
		t.Fatalf("checks = %d", d.Checks)
	}
}
