package detect_test

import (
	"fmt"

	"repro/internal/detect"
)

// The canonical unlock-free sharing bug: two threads store to the same word
// with no synchronization between them.
func ExampleDetector() {
	d := detect.New()
	d.Write(0, 0x1000, 101) // thread 0, static site 101
	d.Write(1, 0x1000, 202) // thread 1, static site 202 — racy
	for _, r := range d.Races() {
		fmt.Println(r)
	}
	// Output:
	// race @0x1000: site 101 (tid 0, write=true) vs site 202 (tid 1, write=true)
}

// Lock ordering suppresses the report: the release/acquire pair carries the
// happens-before edge.
func ExampleDetector_lockOrdering() {
	d := detect.New()
	const mu = detect.SyncID(1)
	d.Acquire(0, mu)
	d.Write(0, 0x1000, 101)
	d.Release(0, mu)
	d.Acquire(1, mu)
	d.Write(1, 0x1000, 202)
	d.Release(1, mu)
	fmt.Println("races:", d.RaceCount())
	// Output:
	// races: 0
}

// The Eraser-style lockset detector flags lock-discipline violations — and
// famously also flags correct signal/wait handoffs, which is why TxRace's
// slow path is happens-before-based.
func ExampleLocksetDetector() {
	d := detect.NewLockset()
	d.Access(0, 0x2000, true, 11)
	// A condition-variable handoff orders the accesses in reality, but the
	// lockset algorithm cannot see it:
	d.Access(1, 0x2000, true, 22)
	fmt.Println("violations:", d.ViolationCount())
	// Output:
	// violations: 1
}
