package detect

import (
	"math/rand"

	"repro/internal/clock"
	"repro/internal/memmodel"
	"repro/internal/shadow"
)

// Sampler wraps a Detector and analyzes each memory access only with
// probability Rate, in the style of LiteRace/Pacer. Synchronization events
// are always tracked (dropping them would corrupt the happens-before
// relation rather than merely lose coverage). This is the "TSan+Sampling"
// baseline of Figures 11–13.
type Sampler struct {
	D    *Detector
	Rate float64
	rng  *rand.Rand

	Sampled uint64
	Skipped uint64
}

// NewSampler returns a sampler at the given rate in [0,1].
func NewSampler(rate float64, seed int64) *Sampler {
	return NewSamplerWith(rate, seed, Config{})
}

// NewSamplerWith is NewSampler over a specific clock configuration.
func NewSamplerWith(rate float64, seed int64, cfg Config) *Sampler {
	if rate < 0 || rate > 1 {
		panic("detect: sampling rate out of [0,1]")
	}
	return &Sampler{D: NewWith(cfg), Rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Access analyzes the access with probability Rate and reports whether it
// was analyzed. A skipped access leaves no shadow state, so both halves of a
// race must be sampled for the race to be found — the source of the recall
// loss the paper plots in Figure 13.
func (s *Sampler) Access(tid clock.TID, addr memmodel.Addr, isWrite bool, site shadow.SiteID) bool {
	if s.Rate < 1 && s.rng.Float64() >= s.Rate {
		s.Skipped++
		return false
	}
	s.Sampled++
	s.D.Access(tid, addr, isWrite, site)
	return true
}

// Fork, Join, Acquire and Release forward to the underlying detector.
func (s *Sampler) Fork(p, c clock.TID)             { s.D.Fork(p, c) }
func (s *Sampler) Join(p, c clock.TID)             { s.D.Join(p, c) }
func (s *Sampler) Acquire(tid clock.TID, o SyncID) { s.D.Acquire(tid, o) }
func (s *Sampler) Release(tid clock.TID, o SyncID) { s.D.Release(tid, o) }
