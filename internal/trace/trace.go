// Package trace records a program's detector-relevant events — hooked
// memory accesses, synchronization, thread lifetime — into a compact,
// serializable trace that can be analyzed offline by any detector.
//
// Offline analysis is the other major overhead-reduction strategy the
// paper's related work surveys (§9: Lee et al.'s offline symbolic analysis,
// Wester et al.'s parallelized detection): instead of paying detection cost
// inline, record cheaply now and analyze later, or analyze the same
// execution under several detectors without re-running it. cmd/txtrace
// exposes the workflow.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/clock"
	"repro/internal/detect"
	"repro/internal/memmodel"
	"repro/internal/shadow"
	"repro/internal/sim"
)

// Kind tags one trace event.
type Kind uint8

// Event kinds.
const (
	KAccess Kind = iota
	KAcquire
	KRelease
	KFork
	KJoin
)

// Event is one recorded runtime event. For KAccess, Addr/Write/Site are
// meaningful; for KAcquire/KRelease, Sync and SyncKind; for KFork/KJoin,
// Other is the child thread.
type Event struct {
	Kind     Kind
	TID      int32
	Write    bool
	SyncKind sim.SyncKind
	Site     shadow.SiteID
	Sync     detect.SyncID
	Addr     memmodel.Addr
	Other    int32
}

// Trace is a recorded execution.
type Trace struct {
	Name   string
	Events []Event
}

// Recorder is a sim.Runtime that appends every detector-relevant event to a
// Trace. Run it over an instrument.ForTSan build so accesses carry hooks.
type Recorder struct {
	sim.NopRuntime
	T *Trace
}

// NewRecorder returns a recorder with an empty trace.
func NewRecorder(name string) *Recorder { return &Recorder{T: &Trace{Name: name}} }

// Access implements sim.Runtime.
func (r *Recorder) Access(t *sim.Thread, m *sim.MemAccess, addr memmodel.Addr) {
	if !m.Hooked {
		return
	}
	r.T.Events = append(r.T.Events, Event{
		Kind: KAccess, TID: int32(t.ID), Write: m.Write, Site: m.Site, Addr: addr,
	})
}

// SyncAcquire implements sim.Runtime.
func (r *Recorder) SyncAcquire(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	r.T.Events = append(r.T.Events, Event{
		Kind: KAcquire, TID: int32(t.ID), Sync: detect.SyncID(s), SyncKind: kind,
	})
}

// SyncRelease implements sim.Runtime.
func (r *Recorder) SyncRelease(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	r.T.Events = append(r.T.Events, Event{
		Kind: KRelease, TID: int32(t.ID), Sync: detect.SyncID(s), SyncKind: kind,
	})
}

// Fork implements sim.Runtime.
func (r *Recorder) Fork(p, c *sim.Thread) {
	r.T.Events = append(r.T.Events, Event{Kind: KFork, TID: int32(p.ID), Other: int32(c.ID)})
}

// Joined implements sim.Runtime.
func (r *Recorder) Joined(p, c *sim.Thread) {
	r.T.Events = append(r.T.Events, Event{Kind: KJoin, TID: int32(p.ID), Other: int32(c.ID)})
}

// Replay feeds the trace to a happens-before detector and returns it.
func Replay(t *Trace) *detect.Detector {
	d := detect.New()
	for _, e := range t.Events {
		switch e.Kind {
		case KAccess:
			d.Access(clock.TID(e.TID), e.Addr, e.Write, e.Site)
		case KAcquire:
			detect.AcquireKind(d, clock.TID(e.TID), e.Sync, e.SyncKind)
		case KRelease:
			detect.ReleaseKind(d, clock.TID(e.TID), e.Sync, e.SyncKind)
		case KFork:
			d.Fork(clock.TID(e.TID), clock.TID(e.Other))
		case KJoin:
			d.Join(clock.TID(e.TID), clock.TID(e.Other))
		}
	}
	return d
}

// ReplayVC feeds the trace to the Djit⁺-style full-vector-clock detector,
// for algorithm comparisons against FastTrack (BenchmarkDetectorAlgorithms).
func ReplayVC(t *Trace) *detect.VCDetector {
	d := detect.NewVC()
	for _, e := range t.Events {
		switch e.Kind {
		case KAccess:
			d.Access(clock.TID(e.TID), e.Addr, e.Write, e.Site)
		case KAcquire:
			d.Acquire(clock.TID(e.TID), e.Sync)
			if e.SyncKind == sim.SyncWrite {
				d.Acquire(clock.TID(e.TID), e.Sync|1<<31)
			}
		case KRelease:
			switch e.SyncKind {
			case sim.SyncRead:
				d.Release(clock.TID(e.TID), e.Sync|1<<31)
			default:
				d.Release(clock.TID(e.TID), e.Sync)
			}
		case KFork:
			d.Fork(clock.TID(e.TID), clock.TID(e.Other))
		case KJoin:
			d.Join(clock.TID(e.TID), clock.TID(e.Other))
		}
	}
	return d
}

// ReplayLockset feeds the trace to an Eraser-style lockset detector.
func ReplayLockset(t *Trace) *detect.LocksetDetector {
	d := detect.NewLockset()
	for _, e := range t.Events {
		switch e.Kind {
		case KAccess:
			d.Access(clock.TID(e.TID), e.Addr, e.Write, e.Site)
		case KAcquire:
			d.Acquire(clock.TID(e.TID), e.Sync, e.SyncKind)
		case KRelease:
			d.Release(clock.TID(e.TID), e.Sync, e.SyncKind)
		}
	}
	return d
}

// Serialization: a small little-endian binary format.
//
//	magic "TXTR" | version u16 | name len u16 | name | event count u64
//	then per event: kind u8 | flags u8 | synckind u8 | pad u8 |
//	                tid i32 | other i32 | site u32 | sync u32 | addr u64
const (
	magic      = "TXTR"
	version    = 1
	recordSize = 1 + 1 + 1 + 1 + 4 + 4 + 4 + 4 + 8
)

// WriteTo serializes the trace.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	put := func(b []byte) error {
		m, err := bw.Write(b)
		n += int64(m)
		return err
	}
	if err := put([]byte(magic)); err != nil {
		return n, err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], version)
	binary.LittleEndian.PutUint16(hdr[2:], uint16(len(t.Name)))
	if err := put(hdr[:]); err != nil {
		return n, err
	}
	if err := put([]byte(t.Name)); err != nil {
		return n, err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(t.Events)))
	if err := put(cnt[:]); err != nil {
		return n, err
	}
	var rec [recordSize]byte
	for _, e := range t.Events {
		rec[0] = byte(e.Kind)
		rec[1] = 0
		if e.Write {
			rec[1] = 1
		}
		rec[2] = byte(e.SyncKind)
		rec[3] = 0
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.TID))
		binary.LittleEndian.PutUint32(rec[8:], uint32(e.Other))
		binary.LittleEndian.PutUint32(rec[12:], uint32(e.Site))
		binary.LittleEndian.PutUint32(rec[16:], uint32(e.Sync))
		binary.LittleEndian.PutUint64(rec[20:], uint64(e.Addr))
		if err := put(rec[:]); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a trace written by WriteTo.
func ReadFrom(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(head[0:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	nameLen := binary.LittleEndian.Uint16(head[2:])
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	const maxEvents = 1 << 30
	if n > maxEvents {
		return nil, fmt.Errorf("trace: implausible event count %d", n)
	}
	// Never trust the count for allocation: a truncated or hostile header
	// must not pre-reserve gigabytes. Grow as records actually arrive.
	prealloc := n
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	t := &Trace{Name: string(name), Events: make([]Event, 0, prealloc)}
	var rec [recordSize]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
		t.Events = append(t.Events, Event{
			Kind:     Kind(rec[0]),
			Write:    rec[1] == 1,
			SyncKind: sim.SyncKind(rec[2]),
			TID:      int32(binary.LittleEndian.Uint32(rec[4:])),
			Other:    int32(binary.LittleEndian.Uint32(rec[8:])),
			Site:     shadow.SiteID(binary.LittleEndian.Uint32(rec[12:])),
			Sync:     detect.SyncID(binary.LittleEndian.Uint32(rec[16:])),
			Addr:     memmodel.Addr(binary.LittleEndian.Uint64(rec[20:])),
		})
	}
	return t, nil
}
