// Package trace records a program's detector-relevant events — hooked
// memory accesses, synchronization, thread lifetime — into a compact,
// serializable trace that can be analyzed offline by any detector.
//
// Offline analysis is the other major overhead-reduction strategy the
// paper's related work surveys (§9: Lee et al.'s offline symbolic analysis,
// Wester et al.'s parallelized detection): instead of paying detection cost
// inline, record cheaply now and analyze later, or analyze the same
// execution under several detectors without re-running it. cmd/txtrace
// exposes the workflow offline; cmd/txserved streams the same wire format
// into a long-lived sharded detection service.
package trace

import (
	"repro/internal/clock"
	"repro/internal/detect"
	"repro/internal/memmodel"
	"repro/internal/shadow"
	"repro/internal/sim"
)

// Kind tags one trace event.
type Kind uint8

// Event kinds.
const (
	KAccess Kind = iota
	KAcquire
	KRelease
	KFork
	KJoin
	kindCount // number of valid kinds; decoders reject anything >= this
)

// Event is one recorded runtime event. For KAccess, Addr/Write/Site are
// meaningful; for KAcquire/KRelease, Sync and SyncKind; for KFork/KJoin,
// Other is the child thread.
type Event struct {
	Kind     Kind
	TID      int32
	Write    bool
	SyncKind sim.SyncKind
	Site     shadow.SiteID
	Sync     detect.SyncID
	Addr     memmodel.Addr
	Other    int32
}

// Event storage is chunked: long recordings append into fixed-size chunks
// instead of one ever-doubling slice, so a multi-million-event recording
// never re-copies (and never briefly doubles) hundreds of megabytes of
// already-recorded events. TestAppendAllocationBounded pins the per-event
// allocation cost.
const (
	chunkShift = 14 // 16384 events (~512 KiB) per chunk
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
)

// Trace is a recorded execution.
type Trace struct {
	Name   string
	chunks [][]Event
}

// FromEvents builds a trace from a literal event list (test helper shape).
func FromEvents(name string, evs ...Event) *Trace {
	t := &Trace{Name: name}
	for _, e := range evs {
		t.Append(e)
	}
	return t
}

// Append adds one event at the end of the trace.
func (t *Trace) Append(e Event) {
	n := len(t.chunks)
	if n == 0 || len(t.chunks[n-1]) == chunkSize {
		t.chunks = append(t.chunks, make([]Event, 0, chunkSize))
		n++
	}
	t.chunks[n-1] = append(t.chunks[n-1], e)
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	n := len(t.chunks)
	if n == 0 {
		return 0
	}
	return (n-1)*chunkSize + len(t.chunks[n-1])
}

// At returns event i (0 <= i < Len).
func (t *Trace) At(i int) Event { return t.chunks[i>>chunkShift][i&chunkMask] }

// ForEach visits every event in recording order.
func (t *Trace) ForEach(f func(Event)) {
	for _, c := range t.chunks {
		for i := range c {
			f(c[i])
		}
	}
}

// Recorder is a sim.Runtime that appends every detector-relevant event to a
// Trace. Run it over an instrument.ForTSan build so accesses carry hooks.
type Recorder struct {
	sim.NopRuntime
	T *Trace
}

// NewRecorder returns a recorder with an empty trace.
func NewRecorder(name string) *Recorder { return &Recorder{T: &Trace{Name: name}} }

// Access implements sim.Runtime.
func (r *Recorder) Access(t *sim.Thread, m *sim.MemAccess, addr memmodel.Addr) {
	if !m.Hooked {
		return
	}
	r.T.Append(Event{
		Kind: KAccess, TID: int32(t.ID), Write: m.Write, Site: m.Site, Addr: addr,
	})
}

// SyncAcquire implements sim.Runtime.
func (r *Recorder) SyncAcquire(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	r.T.Append(Event{
		Kind: KAcquire, TID: int32(t.ID), Sync: detect.SyncID(s), SyncKind: kind,
	})
}

// SyncRelease implements sim.Runtime.
func (r *Recorder) SyncRelease(t *sim.Thread, s sim.SyncID, kind sim.SyncKind) {
	r.T.Append(Event{
		Kind: KRelease, TID: int32(t.ID), Sync: detect.SyncID(s), SyncKind: kind,
	})
}

// Fork implements sim.Runtime.
func (r *Recorder) Fork(p, c *sim.Thread) {
	r.T.Append(Event{Kind: KFork, TID: int32(p.ID), Other: int32(c.ID)})
}

// Joined implements sim.Runtime.
func (r *Recorder) Joined(p, c *sim.Thread) {
	r.T.Append(Event{Kind: KJoin, TID: int32(p.ID), Other: int32(c.ID)})
}

// Replay feeds the trace to a happens-before detector and returns it.
func Replay(t *Trace) *detect.Detector {
	d := detect.New()
	t.ForEach(func(e Event) {
		switch e.Kind {
		case KAccess:
			d.Access(clock.TID(e.TID), e.Addr, e.Write, e.Site)
		case KAcquire:
			detect.AcquireKind(d, clock.TID(e.TID), e.Sync, e.SyncKind)
		case KRelease:
			detect.ReleaseKind(d, clock.TID(e.TID), e.Sync, e.SyncKind)
		case KFork:
			d.Fork(clock.TID(e.TID), clock.TID(e.Other))
		case KJoin:
			d.Join(clock.TID(e.TID), clock.TID(e.Other))
		}
	})
	return d
}

// ReplayVC feeds the trace to the Djit⁺-style full-vector-clock detector,
// for algorithm comparisons against FastTrack (BenchmarkDetectorAlgorithms).
func ReplayVC(t *Trace) *detect.VCDetector {
	d := detect.NewVC()
	t.ForEach(func(e Event) {
		switch e.Kind {
		case KAccess:
			d.Access(clock.TID(e.TID), e.Addr, e.Write, e.Site)
		case KAcquire:
			d.Acquire(clock.TID(e.TID), e.Sync)
			if e.SyncKind == sim.SyncWrite {
				d.Acquire(clock.TID(e.TID), e.Sync|1<<31)
			}
		case KRelease:
			switch e.SyncKind {
			case sim.SyncRead:
				d.Release(clock.TID(e.TID), e.Sync|1<<31)
			default:
				d.Release(clock.TID(e.TID), e.Sync)
			}
		case KFork:
			d.Fork(clock.TID(e.TID), clock.TID(e.Other))
		case KJoin:
			d.Join(clock.TID(e.TID), clock.TID(e.Other))
		}
	})
	return d
}

// ReplayLockset feeds the trace to an Eraser-style lockset detector.
func ReplayLockset(t *Trace) *detect.LocksetDetector {
	d := detect.NewLockset()
	t.ForEach(func(e Event) {
		switch e.Kind {
		case KAccess:
			d.Access(clock.TID(e.TID), e.Addr, e.Write, e.Site)
		case KAcquire:
			d.Acquire(clock.TID(e.TID), e.Sync, e.SyncKind)
		case KRelease:
			d.Release(clock.TID(e.TID), e.Sync, e.SyncKind)
		}
	})
	return d
}
