package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/detect"
	"repro/internal/memmodel"
	"repro/internal/shadow"
	"repro/internal/sim"
)

// Serialization. Two wire versions share the header:
//
//	magic "TXTR" | version u16 | name len u16 | name | event count u64
//
// Version 1 follows with fixed 28-byte little-endian records:
//
//	kind u8 | flags u8 | synckind u8 | pad u8 |
//	tid i32 | other i32 | site u32 | sync u32 | addr u64
//
// Version 2 is varint + per-thread delta coded. Each event is:
//
//	b0: kind (3 bits) | write (bit 3) | synckind (3 bits, from bit 4)
//	uvarint tid
//	then by kind:
//	  KAccess:          zigzag(addr - lastAddr[tid]), zigzag(site - lastSite[tid])
//	  KAcquire/KRelease: uvarint sync
//	  KFork/KJoin:       uvarint other
//
// The per-thread deltas exploit the recorder's locality: a thread's next
// access is usually a short stride from its previous one and repeats the
// same few static sites, so most access events fit in 3–5 bytes against
// v1's 28. The v1 reader is kept; ReadFrom and NewStreamReader dispatch on
// the header's version field. WriteTo emits v2; WriteToV1 keeps the fixed
// format for tooling that wants it.
const (
	magic        = "TXTR"
	version1     = 1
	version2     = 2
	recordSizeV1 = 1 + 1 + 1 + 1 + 4 + 4 + 4 + 4 + 8

	// maxEvents bounds what a header may claim, so corrupt counts fail
	// fast instead of looping for 2^64 records.
	maxEvents = 1 << 30
	// maxTID bounds thread ids the v2 decoder accepts: the per-thread
	// delta state is indexed by tid, and a hostile varint must not make
	// the decoder allocate gigabytes of it.
	maxTID = 1 << 22
)

// WriteTo serializes the trace in the current wire version (v2).
func (t *Trace) WriteTo(w io.Writer) (int64, error) { return t.writeVersion(w, version2) }

// WriteToV1 serializes the trace in the fixed-record v1 format.
func (t *Trace) WriteToV1(w io.Writer) (int64, error) { return t.writeVersion(w, version1) }

func (t *Trace) writeVersion(w io.Writer, v int) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if err := t.writeHeader(cw, v); err != nil {
		return cw.n, err
	}
	var err error
	switch v {
	case version1:
		err = t.writeEventsV1(cw)
	case version2:
		err = t.writeEventsV2(cw)
	default:
		err = fmt.Errorf("trace: unknown writer version %d", v)
	}
	if err != nil {
		return cw.n, err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(b []byte) (int, error) {
	m, err := cw.w.Write(b)
	cw.n += int64(m)
	return m, err
}

func (t *Trace) writeHeader(w io.Writer, v int) error {
	if _, err := w.Write([]byte(magic)); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(v))
	binary.LittleEndian.PutUint16(hdr[2:], uint16(len(t.Name)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte(t.Name)); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(t.Len()))
	_, err := w.Write(cnt[:])
	return err
}

func (t *Trace) writeEventsV1(w io.Writer) error {
	var rec [recordSizeV1]byte
	var werr error
	t.ForEach(func(e Event) {
		if werr != nil {
			return
		}
		rec[0] = byte(e.Kind)
		rec[1] = 0
		if e.Write {
			rec[1] = 1
		}
		rec[2] = byte(e.SyncKind)
		rec[3] = 0
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.TID))
		binary.LittleEndian.PutUint32(rec[8:], uint32(e.Other))
		binary.LittleEndian.PutUint32(rec[12:], uint32(e.Site))
		binary.LittleEndian.PutUint32(rec[16:], uint32(e.Sync))
		binary.LittleEndian.PutUint64(rec[20:], uint64(e.Addr))
		_, werr = w.Write(rec[:])
	})
	return werr
}

// deltaState is the per-thread prediction context both v2 coder sides keep
// in lockstep: the thread's previous access address and site.
type deltaState struct {
	lastAddr []uint64
	lastSite []uint32
}

func (ds *deltaState) at(tid int32) (addr *uint64, site *uint32) {
	if int(tid) >= len(ds.lastAddr) {
		na := make([]uint64, int(tid)+1)
		copy(na, ds.lastAddr)
		ds.lastAddr = na
		ns := make([]uint32, int(tid)+1)
		copy(ns, ds.lastSite)
		ds.lastSite = ns
	}
	return &ds.lastAddr[tid], &ds.lastSite[tid]
}

func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func (t *Trace) writeEventsV2(w io.Writer) error {
	var ds deltaState
	var buf [3 * binary.MaxVarintLen64]byte
	var werr error
	t.ForEach(func(e Event) {
		if werr != nil {
			return
		}
		if e.TID < 0 || e.TID > maxTID {
			werr = fmt.Errorf("trace: tid %d out of v2 range", e.TID)
			return
		}
		if e.SyncKind > 7 {
			werr = fmt.Errorf("trace: sync kind %d out of v2 range", e.SyncKind)
			return
		}
		b0 := byte(e.Kind) & 7
		if e.Write {
			b0 |= 1 << 3
		}
		b0 |= (byte(e.SyncKind) & 7) << 4
		buf[0] = b0
		n := 1
		n += binary.PutUvarint(buf[n:], uint64(e.TID))
		switch e.Kind {
		case KAccess:
			la, ls := ds.at(e.TID)
			n += binary.PutUvarint(buf[n:], zigzag(int64(uint64(e.Addr))-int64(*la)))
			n += binary.PutUvarint(buf[n:], zigzag(int64(uint32(e.Site))-int64(*ls)))
			*la, *ls = uint64(e.Addr), uint32(e.Site)
		case KAcquire, KRelease:
			n += binary.PutUvarint(buf[n:], uint64(e.Sync))
		case KFork, KJoin:
			if e.Other < 0 {
				werr = fmt.Errorf("trace: negative thread id %d in fork/join", e.Other)
				return
			}
			n += binary.PutUvarint(buf[n:], uint64(e.Other))
		default:
			werr = fmt.Errorf("trace: unknown event kind %d", e.Kind)
			return
		}
		_, werr = w.Write(buf[:n])
	})
	return werr
}

// countingReader counts bytes drained from the underlying source so the
// stream reader can name the byte offset of a decode failure.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	m, err := cr.r.Read(p)
	cr.n += int64(m)
	return m, err
}

// StreamReader decodes a serialized trace event by event — the server's
// ingestion path, which must not buffer a whole multi-gigabyte trace to
// start detecting. It reads the header eagerly (so Name and Version are
// available immediately) and then yields events until the declared count is
// exhausted.
type StreamReader struct {
	cr        *countingReader
	br        *bufio.Reader
	name      string
	version   int
	total     uint64
	remaining uint64
	ds        deltaState
}

// NewStreamReader reads the trace header from r and returns a reader
// positioned at the first event. Both wire versions are accepted.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	offset := func() int64 { return cr.n - int64(br.Buffered()) }
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic at offset %d: %w", offset(), err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header at offset %d: %w", offset(), err)
	}
	v := int(binary.LittleEndian.Uint16(head[0:]))
	if v != version1 && v != version2 {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	nameLen := binary.LittleEndian.Uint16(head[2:])
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: wire v%d: reading name at offset %d: %w", v, offset(), err)
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: wire v%d: reading count at offset %d: %w", v, offset(), err)
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	if n > maxEvents {
		return nil, fmt.Errorf("trace: wire v%d: implausible event count %d", v, n)
	}
	return &StreamReader{cr: cr, br: br, name: string(name), version: v, total: n, remaining: n}, nil
}

// Name returns the recorded trace's name.
func (sr *StreamReader) Name() string { return sr.name }

// Version returns the wire version being decoded (1 or 2).
func (sr *StreamReader) Version() int { return sr.version }

// Total returns the event count the header declared.
func (sr *StreamReader) Total() uint64 { return sr.total }

// Offset returns the byte offset of the next undecoded byte — on a decode
// error, where in the stream the malformation sits.
func (sr *StreamReader) Offset() int64 { return sr.cr.n - int64(sr.br.Buffered()) }

// Next returns the next event, or io.EOF once the declared count has been
// delivered. Any other error means a malformed or truncated stream; the
// error names the wire version and the byte offset of the failure.
func (sr *StreamReader) Next() (Event, error) {
	if sr.remaining == 0 {
		return Event{}, io.EOF
	}
	start := sr.Offset()
	var e Event
	var err error
	if sr.version == version1 {
		e, err = sr.nextV1()
	} else {
		e, err = sr.nextV2()
	}
	if err != nil {
		return Event{}, fmt.Errorf("trace: wire v%d: event %d at offset %d: %w",
			sr.version, sr.total-sr.remaining, start, err)
	}
	sr.remaining--
	return e, nil
}

func (sr *StreamReader) nextV1() (Event, error) {
	var rec [recordSizeV1]byte
	if _, err := io.ReadFull(sr.br, rec[:]); err != nil {
		return Event{}, fmt.Errorf("truncated record: %w", noEOF(err))
	}
	if Kind(rec[0]) >= kindCount {
		return Event{}, fmt.Errorf("invalid event kind %d", rec[0])
	}
	if rec[1] > 1 {
		return Event{}, fmt.Errorf("invalid write flag %d", rec[1])
	}
	if rec[2] > 7 {
		return Event{}, fmt.Errorf("invalid sync kind %d", rec[2])
	}
	return Event{
		Kind:     Kind(rec[0]),
		Write:    rec[1] == 1,
		SyncKind: sim.SyncKind(rec[2]),
		TID:      int32(binary.LittleEndian.Uint32(rec[4:])),
		Other:    int32(binary.LittleEndian.Uint32(rec[8:])),
		Site:     shadow.SiteID(binary.LittleEndian.Uint32(rec[12:])),
		Sync:     detect.SyncID(binary.LittleEndian.Uint32(rec[16:])),
		Addr:     memmodel.Addr(binary.LittleEndian.Uint64(rec[20:])),
	}, nil
}

func (sr *StreamReader) nextV2() (Event, error) {
	b0, err := sr.br.ReadByte()
	if err != nil {
		return Event{}, fmt.Errorf("truncated record: %w", noEOF(err))
	}
	kind := Kind(b0 & 7)
	if kind >= kindCount {
		return Event{}, fmt.Errorf("invalid event kind %d", kind)
	}
	e := Event{
		Kind:     kind,
		Write:    b0&(1<<3) != 0,
		SyncKind: sim.SyncKind(b0 >> 4),
	}
	tid, err := sr.uvarint()
	if err != nil {
		return Event{}, err
	}
	if tid > maxTID {
		return Event{}, fmt.Errorf("implausible tid %d", tid)
	}
	e.TID = int32(tid)
	switch kind {
	case KAccess:
		da, err := sr.uvarint()
		if err != nil {
			return Event{}, err
		}
		dsite, err := sr.uvarint()
		if err != nil {
			return Event{}, err
		}
		la, ls := sr.ds.at(e.TID)
		*la = uint64(int64(*la) + unzigzag(da))
		*ls = uint32(int64(*ls) + unzigzag(dsite))
		e.Addr = memmodel.Addr(*la)
		e.Site = shadow.SiteID(*ls)
	case KAcquire, KRelease:
		s, err := sr.uvarint()
		if err != nil {
			return Event{}, err
		}
		e.Sync = detect.SyncID(s)
	case KFork, KJoin:
		o, err := sr.uvarint()
		if err != nil {
			return Event{}, err
		}
		if o > maxTID {
			return Event{}, fmt.Errorf("implausible thread id %d", o)
		}
		e.Other = int32(o)
	}
	return e, nil
}

func (sr *StreamReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return 0, fmt.Errorf("truncated varint: %w", noEOF(err))
	}
	return v, nil
}

// noEOF converts a bare io.EOF inside a record into ErrUnexpectedEOF: the
// header promised more events, so running dry mid-stream is truncation, not
// a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadFrom deserializes a trace written by WriteTo or WriteToV1.
func ReadFrom(r io.Reader) (*Trace, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: sr.Name()}
	for {
		e, err := sr.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			// Next already names the wire version, event index, and offset.
			return nil, err
		}
		t.Append(e)
	}
}
