package trace

import (
	"bytes"
	"testing"

	"repro/internal/detect"
	"repro/internal/memmodel"
	"repro/internal/shadow"
	"repro/internal/sim"
)

// fuzzSeedTrace is a small genuine trace exercising every event kind and
// both delta-coded fields.
func fuzzSeedTrace() *Trace {
	return FromEvents("seed",
		Event{Kind: KFork, TID: 0, Other: 1},
		Event{Kind: KAccess, TID: 1, Write: true, Site: 7, Addr: 0x40},
		Event{Kind: KAccess, TID: 1, Site: 7, Addr: 0x48},
		Event{Kind: KAcquire, TID: 2, Sync: 9},
		Event{Kind: KRelease, TID: 2, Sync: 9},
		Event{Kind: KJoin, TID: 0, Other: 1},
	)
}

// normalizeV2 clears the fields the v2 wire format does not carry for a
// kind (the flags byte always carries Kind/Write/SyncKind; the payload
// varints are kind-specific), so round-trip comparisons test exactly what
// the format promises to preserve.
func normalizeV2(e Event) Event {
	switch e.Kind {
	case KAccess:
		e.Sync, e.Other = 0, 0
	case KAcquire, KRelease:
		e.Addr, e.Site, e.Other = 0, 0, 0
	case KFork, KJoin:
		e.Addr, e.Site, e.Sync = 0, 0, 0
	}
	return e
}

// FuzzReadFrom hardens the trace deserializer against corrupt and
// adversarial inputs across both wire versions: it must never panic, and on
// inputs it accepts, a re-serialization round trip (in either version) must
// preserve the decoded events.
func FuzzReadFrom(f *testing.F) {
	// Seed with genuine traces in both wire versions and a few mutations.
	tr := fuzzSeedTrace()
	var v1, v2 bytes.Buffer
	tr.WriteToV1(&v1)
	tr.WriteTo(&v2)
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add([]byte("TXTR"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// Truncation seeds: both versions cut mid-record, plus headers cut
	// mid-name and mid-count. All must be rejected, never short-read.
	f.Add(v1.Bytes()[:v1.Len()-13])
	f.Add(v2.Bytes()[:v2.Len()-2])
	f.Add(v1.Bytes()[:6])                  // header cut before name length is honored
	f.Add(v2.Bytes()[:8+len(tr.Name)-2])   // cut mid-name
	f.Add(v1.Bytes()[:8+len(tr.Name)+3])   // cut mid-count
	f.Add(v2.Bytes()[:8+len(tr.Name)+8+1]) // exactly one payload byte

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		// v1 re-encode is lossless for anything v1 decoded.
		var out bytes.Buffer
		if _, err := got.WriteToV1(&out); err != nil {
			t.Fatalf("accepted trace failed to re-serialize as v1: %v", err)
		}
		again, err := ReadFrom(&out)
		if err != nil {
			t.Fatalf("v1 round trip of accepted trace rejected: %v", err)
		}
		if again.Len() != got.Len() {
			t.Fatalf("v1 round trip changed event count: %d vs %d", again.Len(), got.Len())
		}
		for i := 0; i < got.Len(); i++ {
			if got.At(i) != again.At(i) {
				t.Fatalf("v1 round trip changed event %d: %+v vs %+v", i, got.At(i), again.At(i))
			}
		}
		// v2 re-encode may refuse out-of-range tids or unknown kinds a v1
		// input carried; when it accepts, the round trip must preserve the
		// fields v2 carries.
		out.Reset()
		if _, err := got.WriteTo(&out); err != nil {
			return
		}
		again, err = ReadFrom(&out)
		if err != nil {
			t.Fatalf("v2 round trip of accepted trace rejected: %v", err)
		}
		if again.Len() != got.Len() {
			t.Fatalf("v2 round trip changed event count: %d vs %d", again.Len(), got.Len())
		}
		for i := 0; i < got.Len(); i++ {
			if want := normalizeV2(got.At(i)); again.At(i) != want {
				t.Fatalf("v2 round trip changed event %d: %+v vs %+v", i, again.At(i), want)
			}
		}
	})
}

// FuzzWireV2Events drives the v2 delta coder with event sequences derived
// from fuzz input: every writable trace must round-trip bit-for-bit through
// encode/decode, including pathological address jumps (delta wraparound)
// and interleaved threads.
func FuzzWireV2Events(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255})
	f.Add(bytes.Repeat([]byte{0xa5, 3, 0}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := &Trace{Name: "fuzz"}
		// Stretch the fuzz bytes into a deterministic event sequence: 5
		// bytes per event, fields spread over interesting ranges.
		for i := 0; i+5 <= len(data); i += 5 {
			tr.Append(Event{
				Kind:     Kind(data[i] % byte(kindCount)),
				TID:      int32(data[i+1] % 16),
				Write:    data[i+2]&1 == 1,
				SyncKind: sim.SyncKind(data[i+2] >> 1 & 7),
				Site:     shadow.SiteID(uint32(data[i+3]) << (data[i+4] % 24)),
				Sync:     detect.SyncID(uint32(data[i+3])),
				Addr:     memmodel.Addr(uint64(data[i+4]) << (data[i+3] % 56)),
				Other:    int32(data[i+4] % 16),
			})
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("encode of in-range events failed: %v", err)
		}
		back, err := ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("event count changed: %d vs %d", back.Len(), tr.Len())
		}
		for i := 0; i < tr.Len(); i++ {
			if want := normalizeV2(tr.At(i)); back.At(i) != want {
				t.Fatalf("event %d changed: %+v vs %+v", i, back.At(i), want)
			}
		}
	})
}
