package trace

import (
	"bytes"
	"testing"
)

// FuzzReadFrom hardens the trace deserializer against corrupt and
// adversarial inputs: it must never panic, and on inputs it accepts, a
// re-serialization round trip must be stable.
func FuzzReadFrom(f *testing.F) {
	// Seed with a genuine trace and a few mutations.
	tr := &Trace{Name: "seed", Events: []Event{
		{Kind: KAccess, TID: 1, Write: true, Site: 7, Addr: 0x40},
		{Kind: KAcquire, TID: 2, Sync: 9},
		{Kind: KFork, TID: 0, Other: 1},
	}}
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("TXTR"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted trace failed to re-serialize: %v", err)
		}
		again, err := ReadFrom(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace rejected: %v", err)
		}
		if len(again.Events) != len(got.Events) {
			t.Fatalf("round trip changed event count: %d vs %d",
				len(again.Events), len(got.Events))
		}
	})
}
