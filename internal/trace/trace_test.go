package trace

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
	"unsafe"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/memmodel"
	"repro/internal/sim"
	"repro/internal/workload"
)

func record(t *testing.T, name string, seed uint64) *Trace {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	built := w.Build(4, 1)
	rec := NewRecorder(name)
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	if w.InterruptEvery != 0 {
		cfg.InterruptEvery = w.InterruptEvery
	}
	if _, err := sim.NewEngine(cfg).Run(instrument.ForTSan(built.Prog), rec); err != nil {
		t.Fatal(err)
	}
	return rec.T
}

// TestReplayMatchesOnline: replaying a recorded trace through the
// happens-before detector must find exactly what the online TSan runtime
// found on the same seed.
func TestReplayMatchesOnline(t *testing.T) {
	for _, name := range []string{"raytrace", "streamcluster", "freqmine"} {
		tr := record(t, name, 7)

		w, _ := workload.ByName(name)
		built := w.Build(4, 1)
		rt := core.NewTSan()
		cfg := sim.DefaultConfig()
		cfg.Seed = 7
		if w.InterruptEvery != 0 {
			cfg.InterruptEvery = w.InterruptEvery
		}
		if _, err := sim.NewEngine(cfg).Run(instrument.ForTSan(built.Prog), rt); err != nil {
			t.Fatal(err)
		}

		offline := Replay(tr)
		got, want := offline.RaceKeys(), rt.Detector().RaceKeys()
		if len(got) != len(want) {
			t.Fatalf("%s: offline %d races, online %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: race %d mismatch: %v vs %v", name, i, got[i], want[i])
			}
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := record(t, "raytrace", 3)
	writers := map[string]func(*Trace, *bytes.Buffer) (int64, error){
		"v1": func(tr *Trace, buf *bytes.Buffer) (int64, error) { return tr.WriteToV1(buf) },
		"v2": func(tr *Trace, buf *bytes.Buffer) (int64, error) { return tr.WriteTo(buf) },
	}
	for name, write := range writers {
		var buf bytes.Buffer
		n, err := write(tr, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("%s: WriteTo reported %d bytes, wrote %d", name, n, buf.Len())
		}
		back, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Name != tr.Name || back.Len() != tr.Len() {
			t.Fatalf("%s: round trip lost shape: %q/%d vs %q/%d",
				name, back.Name, back.Len(), tr.Name, tr.Len())
		}
		for i := 0; i < tr.Len(); i++ {
			if back.At(i) != tr.At(i) {
				t.Fatalf("%s: event %d differs: %+v vs %+v", name, i, back.At(i), tr.At(i))
			}
		}
	}
}

// TestWireV2Compression pins the point of the varint/delta format: on a real
// recorded workload trace it must be markedly smaller than the 28-byte
// fixed records of v1.
func TestWireV2Compression(t *testing.T) {
	tr := record(t, "raytrace", 3)
	var v1, v2 bytes.Buffer
	if _, err := tr.WriteToV1(&v1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Len()*2 >= v1.Len() {
		t.Fatalf("v2 encoding %d bytes, not even 2x smaller than v1's %d (%d events)",
			v2.Len(), v1.Len(), tr.Len())
	}
}

// TestStreamReaderIncremental: the server-side decoder must deliver events
// one by one with the header available up front, for both wire versions.
func TestStreamReaderIncremental(t *testing.T) {
	tr := FromEvents("s",
		Event{Kind: KFork, TID: 0, Other: 1},
		Event{Kind: KAccess, TID: 1, Write: true, Site: 3, Addr: 0x100},
		Event{Kind: KAccess, TID: 1, Site: 4, Addr: 0x108},
		Event{Kind: KRelease, TID: 1, Sync: 5},
	)
	for name, write := range map[string]func(*bytes.Buffer){
		"v1": func(b *bytes.Buffer) { tr.WriteToV1(b) },
		"v2": func(b *bytes.Buffer) { tr.WriteTo(b) },
	} {
		var buf bytes.Buffer
		write(&buf)
		sr, err := NewStreamReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if sr.Name() != "s" || sr.Total() != 4 {
			t.Fatalf("%s: header %q/%d", name, sr.Name(), sr.Total())
		}
		for i := 0; i < tr.Len(); i++ {
			e, err := sr.Next()
			if err != nil {
				t.Fatalf("%s: event %d: %v", name, i, err)
			}
			if e != tr.At(i) {
				t.Fatalf("%s: event %d: %+v vs %+v", name, i, e, tr.At(i))
			}
		}
		if _, err := sr.Next(); err != io.EOF {
			t.Fatalf("%s: want io.EOF after last event, got %v", name, err)
		}
	}
}

// TestAppendAllocationBounded pins the chunked-storage fix: appending n
// events must cost about n*sizeof(Event) bytes in about n/chunkSize chunk
// allocations — not the ~2x byte churn of an ever-doubling slice re-copying
// the whole recording as it grows.
func TestAppendAllocationBounded(t *testing.T) {
	const n = 4*chunkSize + 100
	evSize := float64(unsafe.Sizeof(Event{}))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	tr := &Trace{Name: "alloc"}
	for i := 0; i < n; i++ {
		tr.Append(Event{Kind: KAccess, TID: int32(i & 3), Addr: memmodel.Addr(i * 8)})
	}
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(tr)
	bytesPerEvent := float64(after.TotalAlloc-before.TotalAlloc) / n
	if bytesPerEvent > evSize*1.3 {
		t.Fatalf("append allocated %.1f bytes/event, want <= %.1f (copy churn is back)",
			bytesPerEvent, evSize*1.3)
	}
	allocs := after.Mallocs - before.Mallocs
	if allocs > n/chunkSize+8 {
		t.Fatalf("append performed %d allocations for %d events, want ~%d chunks",
			allocs, n, n/chunkSize+1)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
}

func TestReplayAfterRoundTripFindsSameRaces(t *testing.T) {
	tr := record(t, "x264", 5)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := Replay(tr).RaceKeys(), Replay(back).RaceKeys()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("replay divergence after serialization: %d vs %d", len(a), len(b))
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated: valid header claiming more events than present.
	tr := FromEvents("t", Event{Kind: KAccess, TID: 1})
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	cut := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadFrom(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

// TestTruncatedStreamNamesOffsetAndVersion pins the hardening contract:
// truncated or corrupt streams fail with one structured error that names the
// wire version and the byte offset of the failure, truncation surfaces as
// io.ErrUnexpectedEOF (never a silent short read), and invalid v1 record
// bytes are rejected rather than smuggled into the event stream.
func TestTruncatedStreamNamesOffsetAndVersion(t *testing.T) {
	tr := FromEvents("np",
		Event{Kind: KFork, TID: 0, Other: 1},
		Event{Kind: KAccess, TID: 1, Write: true, Site: 3, Addr: 0x100},
	)
	var v1, v2 bytes.Buffer
	if _, err := tr.WriteToV1(&v1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	headerLen := 4 + 4 + len(tr.Name) + 8

	// corruptV1 returns the v1 bytes with record 0's byte at off replaced.
	corruptV1 := func(off int, b byte) []byte {
		raw := append([]byte(nil), v1.Bytes()...)
		raw[headerLen+off] = b
		return raw
	}

	cases := []struct {
		name      string
		data      []byte
		want      []string // substrings the one-line error must carry
		truncated bool     // must unwrap to io.ErrUnexpectedEOF
	}{
		{"empty", nil, []string{"trace: reading magic at offset 0"}, false},
		{"garbage-magic", []byte("not a trace at all"), []string{"trace: bad magic"}, false},
		// The offset reported is the truncation point — where the stream
		// actually ran dry — not the start of the field being read.
		{"cut-mid-header", v1.Bytes()[:6], []string{"reading header at offset 6"}, false},
		{"cut-mid-name", v2.Bytes()[:9], []string{"wire v2", "reading name at offset 9"}, false},
		{"cut-mid-count", v1.Bytes()[:headerLen-3], []string{"wire v1", "reading count at offset"}, false},
		{"v1-cut-mid-record", v1.Bytes()[:headerLen+recordSizeV1+5],
			[]string{"wire v1", "event 1 at offset", "truncated record"}, true},
		{"v1-missing-last-record", v1.Bytes()[:headerLen+recordSizeV1],
			[]string{"wire v1", "event 1 at offset"}, true},
		{"v2-cut-mid-record", v2.Bytes()[:v2.Len()-2],
			[]string{"wire v2", "event 1 at offset"}, true},
		{"v2-payload-empty", v2.Bytes()[:headerLen],
			[]string{"wire v2", "event 0 at offset", "truncated record"}, true},
		{"v1-invalid-kind", corruptV1(0, 250), []string{"wire v1", "invalid event kind 250"}, false},
		{"v1-invalid-write-flag", corruptV1(1, 7), []string{"wire v1", "invalid write flag 7"}, false},
		{"v1-invalid-sync-kind", corruptV1(2, 99), []string{"wire v1", "invalid sync kind 99"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrom(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("malformed stream accepted")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q lacks %q", err, want)
				}
			}
			if tc.truncated && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("truncation error %q does not unwrap to io.ErrUnexpectedEOF", err)
			}
			if strings.ContainsRune(err.Error(), '\n') {
				t.Fatalf("error is not one line: %q", err)
			}
		})
	}

	// Offset() tracks the decode frontier precisely: header end, then one
	// fixed-size record per Next.
	sr, err := NewStreamReader(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := sr.Offset(); got != int64(headerLen) {
		t.Fatalf("Offset after header = %d, want %d", got, headerLen)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if got := sr.Offset(); got != int64(headerLen+recordSizeV1) {
		t.Fatalf("Offset after one event = %d, want %d", got, headerLen+recordSizeV1)
	}
}

func TestReplayLocksetSeesViolations(t *testing.T) {
	tr := record(t, "freqmine", 2)
	ls := ReplayLockset(tr)
	if ls.ViolationCount() == 0 {
		t.Fatal("freqmine's init-then-share idiom must trip the lockset detector")
	}
	if Replay(tr).RaceCount() != 0 {
		t.Fatal("freqmine has no real races")
	}
}

func TestRecorderSkipsUnhookedAccesses(t *testing.T) {
	rec := NewRecorder("raw")
	p := &sim.Program{Workers: [][]sim.Instr{
		{&sim.MemAccess{Addr: sim.Fixed(64), Site: 1}}, // no hook
		{&sim.Compute{Cycles: 5}},
	}}
	cfg := sim.DefaultConfig()
	if _, err := sim.NewEngine(cfg).Run(p, rec); err != nil {
		t.Fatal(err)
	}
	rec.T.ForEach(func(e Event) {
		if e.Kind == KAccess {
			t.Fatal("unhooked access recorded")
		}
	})
}

// TestReplayVCAgreesWithFastTrack: on the workloads' single-pair race
// patterns, the Djit⁺-style detector and FastTrack report identical sets
// when replaying the same trace.
func TestReplayVCAgreesWithFastTrack(t *testing.T) {
	for _, name := range []string{"raytrace", "x264", "streamcluster"} {
		tr := record(t, name, 11)
		ft := Replay(tr).RaceKeys()
		vc := ReplayVC(tr).RaceKeys()
		if len(ft) != len(vc) {
			t.Fatalf("%s: fasttrack %d vs djit %d races", name, len(ft), len(vc))
		}
		for i := range ft {
			if ft[i] != vc[i] {
				t.Fatalf("%s: race %d: %v vs %v", name, i, ft[i], vc[i])
			}
		}
	}
}

// TestFastTrackDoesFewerVectorWork is the qualitative FastTrack claim: on
// the same trace both detectors perform one check per access, but the
// Djit⁺ detector's checks are O(threads) scans. We can at least assert the
// check counts agree (the cost difference shows up in
// BenchmarkDetectorAlgorithms).
func TestDetectorsCheckSameAccessCount(t *testing.T) {
	tr := record(t, "facesim", 4)
	ft := Replay(tr)
	vc := ReplayVC(tr)
	if ft.Checks != vc.Checks || ft.Checks == 0 {
		t.Fatalf("check counts differ: %d vs %d", ft.Checks, vc.Checks)
	}
}
