package trace

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/sim"
	"repro/internal/workload"
)

func record(t *testing.T, name string, seed uint64) *Trace {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	built := w.Build(4, 1)
	rec := NewRecorder(name)
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	if w.InterruptEvery != 0 {
		cfg.InterruptEvery = w.InterruptEvery
	}
	if _, err := sim.NewEngine(cfg).Run(instrument.ForTSan(built.Prog), rec); err != nil {
		t.Fatal(err)
	}
	return rec.T
}

// TestReplayMatchesOnline: replaying a recorded trace through the
// happens-before detector must find exactly what the online TSan runtime
// found on the same seed.
func TestReplayMatchesOnline(t *testing.T) {
	for _, name := range []string{"raytrace", "streamcluster", "freqmine"} {
		tr := record(t, name, 7)

		w, _ := workload.ByName(name)
		built := w.Build(4, 1)
		rt := core.NewTSan()
		cfg := sim.DefaultConfig()
		cfg.Seed = 7
		if w.InterruptEvery != 0 {
			cfg.InterruptEvery = w.InterruptEvery
		}
		if _, err := sim.NewEngine(cfg).Run(instrument.ForTSan(built.Prog), rt); err != nil {
			t.Fatal(err)
		}

		offline := Replay(tr)
		got, want := offline.RaceKeys(), rt.Detector().RaceKeys()
		if len(got) != len(want) {
			t.Fatalf("%s: offline %d races, online %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: race %d mismatch: %v vs %v", name, i, got[i], want[i])
			}
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := record(t, "raytrace", 3)
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip lost shape: %q/%d vs %q/%d",
			back.Name, len(back.Events), tr.Name, len(tr.Events))
	}
	for i := range tr.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, back.Events[i], tr.Events[i])
		}
	}
}

func TestReplayAfterRoundTripFindsSameRaces(t *testing.T) {
	tr := record(t, "x264", 5)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := Replay(tr).RaceKeys(), Replay(back).RaceKeys()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("replay divergence after serialization: %d vs %d", len(a), len(b))
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated: valid header claiming more events than present.
	tr := &Trace{Name: "t", Events: []Event{{Kind: KAccess, TID: 1}}}
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	cut := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadFrom(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestReplayLocksetSeesViolations(t *testing.T) {
	tr := record(t, "freqmine", 2)
	ls := ReplayLockset(tr)
	if ls.ViolationCount() == 0 {
		t.Fatal("freqmine's init-then-share idiom must trip the lockset detector")
	}
	if Replay(tr).RaceCount() != 0 {
		t.Fatal("freqmine has no real races")
	}
}

func TestRecorderSkipsUnhookedAccesses(t *testing.T) {
	rec := NewRecorder("raw")
	p := &sim.Program{Workers: [][]sim.Instr{
		{&sim.MemAccess{Addr: sim.Fixed(64), Site: 1}}, // no hook
		{&sim.Compute{Cycles: 5}},
	}}
	cfg := sim.DefaultConfig()
	if _, err := sim.NewEngine(cfg).Run(p, rec); err != nil {
		t.Fatal(err)
	}
	for _, e := range rec.T.Events {
		if e.Kind == KAccess {
			t.Fatal("unhooked access recorded")
		}
	}
}

// TestReplayVCAgreesWithFastTrack: on the workloads' single-pair race
// patterns, the Djit⁺-style detector and FastTrack report identical sets
// when replaying the same trace.
func TestReplayVCAgreesWithFastTrack(t *testing.T) {
	for _, name := range []string{"raytrace", "x264", "streamcluster"} {
		tr := record(t, name, 11)
		ft := Replay(tr).RaceKeys()
		vc := ReplayVC(tr).RaceKeys()
		if len(ft) != len(vc) {
			t.Fatalf("%s: fasttrack %d vs djit %d races", name, len(ft), len(vc))
		}
		for i := range ft {
			if ft[i] != vc[i] {
				t.Fatalf("%s: race %d: %v vs %v", name, i, ft[i], vc[i])
			}
		}
	}
}

// TestFastTrackDoesFewerVectorWork is the qualitative FastTrack claim: on
// the same trace both detectors perform one check per access, but the
// Djit⁺ detector's checks are O(threads) scans. We can at least assert the
// check counts agree (the cost difference shows up in
// BenchmarkDetectorAlgorithms).
func TestDetectorsCheckSameAccessCount(t *testing.T) {
	tr := record(t, "facesim", 4)
	ft := Replay(tr)
	vc := ReplayVC(tr)
	if ft.Checks != vc.Checks || ft.Checks == 0 {
		t.Fatalf("check counts differ: %d vs %d", ft.Checks, vc.Checks)
	}
}
