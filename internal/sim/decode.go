package sim

import (
	"fmt"

	"repro/internal/memmodel"
)

// The engine compiles each thread body once into a decoded instruction
// stream: a flat []dinstr with an opcode per instruction, the operands the
// interpreter needs pulled out of the IR nodes, synchronization objects
// pre-resolved to direct pointers (no per-step table lookup), and loop bodies
// decoded recursively so a loop push is a slice reference. exec then
// dispatches through a fixed opcode jump table — no interface type switch,
// no per-step allocation. The tree-walk interpreter over the raw IR is kept
// behind Config.RefWalk as the reference semantics; the package's
// differential tests pin the two to identical results.
type opcode uint8

const (
	opAccess opcode = iota
	opAtomic
	opCompute
	opDelay
	opLoop
	opLock
	opUnlock
	opRLock
	opRUnlock
	opWLock
	opWUnlock
	opSignal
	opWait
	opCondWait
	opCondSignal
	opCondBroadcast
	opBarrier
	opSyscall
	opTxBegin
	opTxEnd
	opLoopCheck
	opSpawnAll
	opJoinAll
	opCount
)

// dinstr is one decoded instruction. Exactly the fields its opcode needs are
// populated; the rest stay zero. ref keeps the original IR node because the
// Runtime hook interface (Access, Atomic, SyscallEvent, the Tx/LoopCheck
// marks) is defined over IR pointers and must not change.
type dinstr struct {
	op     opcode
	write  bool   // opAccess
	hooked bool   // opAccess
	n      int32  // opBarrier width, opLoop trip count
	cycles int64  // opCompute, opDelay max, opSyscall (SyscallMin pre-applied)
	id     SyncID // sync-object id for hook events
	id2    SyncID // opCondWait: the paired mutex id (id is the condition)

	addr AddrExpr // opAccess, opAtomic

	// Pre-resolved synchronization state. Resolving at decode time also
	// interns the objects, so the hot path never grows a table.
	mu *mutex   // opLock, opUnlock, opCondWait (paired mutex)
	rw *rwlock  // opRLock, opRUnlock, opWLock, opWUnlock
	sm *sem     // opSignal, opWait
	cv *cond    // opCondWait, opCondSignal, opCondBroadcast
	br *barrier // opBarrier

	loop *Loop    // opLoop: the IR node (frame bookkeeping, LoopIter)
	code []dinstr // opLoop: decoded body
	ref  Instr    // original instruction, handed to Runtime hooks
}

// decodeKey identifies a thread body by its backing storage: two []Instr
// with the same first-element address and length are the same slice, so
// workers sharing one body (the common workload shape) decode once.
type decodeKey struct {
	first *Instr
	n     int
}

func (e *Engine) decodeBody(body []Instr) []dinstr {
	if len(body) == 0 {
		return nil
	}
	k := decodeKey{first: &body[0], n: len(body)}
	if d, ok := e.decodedBodies[k]; ok {
		return d
	}
	d := e.decode(body)
	if e.decodedBodies == nil {
		e.decodedBodies = make(map[decodeKey][]dinstr)
	}
	e.decodedBodies[k] = d
	return d
}

func (e *Engine) decode(body []Instr) []dinstr {
	out := make([]dinstr, len(body))
	for i, in := range body {
		d := &out[i]
		d.ref = in
		switch in := in.(type) {
		case *MemAccess:
			d.op = opAccess
			d.write, d.hooked, d.addr = in.Write, in.Hooked, in.Addr
		case *AtomicRMW:
			d.op = opAtomic
			d.addr = in.Addr
		case *Compute:
			d.op = opCompute
			d.cycles = in.Cycles
		case *Delay:
			d.op = opDelay
			d.cycles = in.Max
		case *Loop:
			d.op = opLoop
			d.loop = in
			d.n = int32(in.Count)
			d.code = e.decode(in.Body)
		case *Lock:
			d.op, d.id, d.mu = opLock, in.M, e.mutexOf(in.M)
		case *Unlock:
			d.op, d.id, d.mu = opUnlock, in.M, e.mutexOf(in.M)
		case *RLock:
			d.op, d.id, d.rw = opRLock, in.M, e.rwlockOf(in.M)
		case *RUnlock:
			d.op, d.id, d.rw = opRUnlock, in.M, e.rwlockOf(in.M)
		case *WLock:
			d.op, d.id, d.rw = opWLock, in.M, e.rwlockOf(in.M)
		case *WUnlock:
			d.op, d.id, d.rw = opWUnlock, in.M, e.rwlockOf(in.M)
		case *Signal:
			d.op, d.id, d.sm = opSignal, in.C, e.semOf(in.C)
		case *Wait:
			d.op, d.id, d.sm = opWait, in.C, e.semOf(in.C)
		case *CondWait:
			d.op, d.id, d.id2 = opCondWait, in.C, in.M
			d.cv, d.mu = e.condOf(in.C), e.mutexOf(in.M)
		case *CondSignal:
			d.op, d.id, d.cv = opCondSignal, in.C, e.condOf(in.C)
		case *CondBroadcast:
			d.op, d.id, d.cv = opCondBroadcast, in.C, e.condOf(in.C)
		case *Barrier:
			d.op, d.id, d.br = opBarrier, in.B, e.barrierOf(in.B)
			d.n = int32(in.N)
		case *Syscall:
			d.op = opSyscall
			d.cycles = in.Cycles
			if d.cycles < e.cfg.Cost.SyscallMin {
				d.cycles = e.cfg.Cost.SyscallMin
			}
		case *TxBegin:
			d.op = opTxBegin
		case *TxEnd:
			d.op = opTxEnd
		case *LoopCheck:
			d.op = opLoopCheck
		case *spawnAll:
			d.op = opSpawnAll
		case *joinAll:
			d.op = opJoinAll
		default:
			panic(fmt.Sprintf("sim: cannot decode instruction %T", in))
		}
		e.decodedInstrs++
	}
	return out
}

// execDecoded is the opcode jump table: a dense switch over op that the
// compiler lowers to an indexed jump, so dispatch is one bounds-checked
// branch instead of the reference interpreter's interface type switch.
// Case bodies mirror exec (engine.go) exactly; the differential tests in
// decode_test.go compare the two step for step.
func (e *Engine) execDecoded(t *Thread, d *dinstr) bool {
	switch d.op {
	case opAccess:
		return execAccess(e, t, d)
	case opAtomic:
		return execAtomic(e, t, d)
	case opCompute:
		return execCompute(e, t, d)
	case opDelay:
		return execDelay(e, t, d)
	case opLoop:
		return execLoop(e, t, d)
	case opLock:
		return execLock(e, t, d)
	case opUnlock:
		return execUnlock(e, t, d)
	case opRLock:
		return execRLock(e, t, d)
	case opRUnlock:
		return execRUnlock(e, t, d)
	case opWLock:
		return execWLock(e, t, d)
	case opWUnlock:
		return execWUnlock(e, t, d)
	case opSignal:
		return execSignal(e, t, d)
	case opWait:
		return execWait(e, t, d)
	case opCondWait:
		return execCondWait(e, t, d)
	case opCondSignal:
		return execCondSignal(e, t, d)
	case opCondBroadcast:
		return execCondBroadcast(e, t, d)
	case opBarrier:
		return execBarrier(e, t, d)
	case opSyscall:
		return execSyscall(e, t, d)
	case opTxBegin:
		return execTxBegin(e, t, d)
	case opTxEnd:
		return execTxEnd(e, t, d)
	case opLoopCheck:
		return execLoopCheck(e, t, d)
	case opSpawnAll:
		return e.execSpawnAll(t)
	default: // opJoinAll
		return e.execJoinAll(t)
	}
}

func execAccess(e *Engine, t *Thread, d *dinstr) bool {
	// Address modes are decoded into the opcode's operands; the common fixed
	// mode skips Eval's mode switch entirely.
	var addr memmodel.Addr
	switch d.addr.Mode {
	case AddrFixed:
		addr = d.addr.Base
	case AddrRandom:
		if d.addr.Range == 0 {
			e.programError(t, "access", 0, "random address with zero range")
		}
		addr = d.addr.Base + memmodel.Addr(t.RNG.Uint64n(d.addr.Range)*memmodel.WordSize)
	default:
		addr = t.Eval(d.addr)
	}
	e.charge(t, e.cfg.Cost.Access)
	e.res.Accesses++
	if d.hooked {
		e.res.HookedAccesses++
	}
	e.rt.Access(t, d.ref.(*MemAccess), addr)
	return true
}

func execAtomic(e *Engine, t *Thread, d *dinstr) bool {
	if d.addr.Mode == AddrRandom && d.addr.Range == 0 {
		e.programError(t, "atomic", 0, "random address with zero range")
	}
	addr := t.Eval(d.addr)
	e.charge(t, e.cfg.Cost.LockOp/2+1)
	e.res.Accesses++
	e.res.SyncOps++
	e.rt.Atomic(t, d.ref.(*AtomicRMW), addr)
	return true
}

func execCompute(e *Engine, t *Thread, d *dinstr) bool {
	e.charge(t, d.cycles)
	return true
}

func execDelay(e *Engine, t *Thread, d *dinstr) bool {
	if d.cycles > 0 {
		e.charge(t, int64(t.RNG.Uint64n(uint64(d.cycles))))
	}
	return true
}

func execLoop(e *Engine, t *Thread, d *dinstr) bool {
	if d.n <= 0 {
		return true
	}
	t.frames = append(t.frames, frame{code: d.code, loop: d.loop})
	return true
}

func execLock(e *Engine, t *Thread, d *dinstr) bool {
	m := d.mu
	if m.owner == nil {
		m.owner = t
		e.charge(t, e.cfg.Cost.LockOp)
		e.res.SyncOps++
		e.rt.SyncAcquire(t, d.id, SyncMutex)
		return true
	}
	m.waiters = append(m.waiters, t)
	t.state = stateBlocked
	return false
}

func execUnlock(e *Engine, t *Thread, d *dinstr) bool {
	m := d.mu
	if m.owner != t {
		e.programError(t, "unlock", d.id, "unlocks a mutex it does not own")
	}
	m.owner = nil
	e.charge(t, e.cfg.Cost.LockOp)
	e.res.SyncOps++
	e.rt.SyncRelease(t, d.id, SyncMutex)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		e.wake(w, t.Clock)
	}
	return true
}

func execRLock(e *Engine, t *Thread, d *dinstr) bool {
	l := d.rw
	if l.writer == nil {
		l.readers++
		e.charge(t, e.cfg.Cost.LockOp)
		e.res.SyncOps++
		e.rt.SyncAcquire(t, d.id, SyncRead)
		return true
	}
	l.waiters = append(l.waiters, t)
	t.state = stateBlocked
	return false
}

func execRUnlock(e *Engine, t *Thread, d *dinstr) bool {
	l := d.rw
	if l.readers <= 0 {
		e.programError(t, "read-unlock", d.id, "read-unlocks an rwlock it does not hold")
	}
	l.readers--
	e.charge(t, e.cfg.Cost.LockOp)
	e.res.SyncOps++
	e.rt.SyncRelease(t, d.id, SyncRead)
	e.wakeRWWaiters(l, t)
	return true
}

func execWLock(e *Engine, t *Thread, d *dinstr) bool {
	l := d.rw
	if l.writer == nil && l.readers == 0 {
		l.writer = t
		e.charge(t, e.cfg.Cost.LockOp)
		e.res.SyncOps++
		e.rt.SyncAcquire(t, d.id, SyncWrite)
		return true
	}
	l.waiters = append(l.waiters, t)
	t.state = stateBlocked
	return false
}

func execWUnlock(e *Engine, t *Thread, d *dinstr) bool {
	l := d.rw
	if l.writer != t {
		e.programError(t, "write-unlock", d.id, "write-unlocks an rwlock it does not own")
	}
	l.writer = nil
	e.charge(t, e.cfg.Cost.LockOp)
	e.res.SyncOps++
	e.rt.SyncRelease(t, d.id, SyncWrite)
	e.wakeRWWaiters(l, t)
	return true
}

func execSignal(e *Engine, t *Thread, d *dinstr) bool {
	s := d.sm
	s.count++
	e.charge(t, e.cfg.Cost.SignalOp)
	e.res.SyncOps++
	e.rt.SyncRelease(t, d.id, SyncSem)
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		e.wake(w, t.Clock)
	}
	return true
}

func execWait(e *Engine, t *Thread, d *dinstr) bool {
	s := d.sm
	if s.count > 0 {
		s.count--
		e.charge(t, e.cfg.Cost.WaitOp)
		e.res.SyncOps++
		e.rt.SyncAcquire(t, d.id, SyncSem)
		return true
	}
	s.waiters = append(s.waiters, t)
	t.state = stateBlocked
	return false
}

func execCondWait(e *Engine, t *Thread, d *dinstr) bool {
	cv, m := d.cv, d.mu
	if !t.condWaiting {
		if m.owner != t {
			e.programError(t, "cond-wait", d.id2, "cond-waits without holding the mutex")
		}
		t.condWaiting = true
		m.owner = nil
		e.charge(t, e.cfg.Cost.WaitOp)
		e.res.SyncOps++
		e.rt.SyncRelease(t, d.id2, SyncMutex)
		if len(m.waiters) > 0 {
			w := m.waiters[0]
			m.waiters = m.waiters[1:]
			e.wake(w, t.Clock)
		}
		cv.waiters = append(cv.waiters, t)
		t.state = stateBlocked
		return false
	}
	if m.owner == nil {
		m.owner = t
		t.condWaiting = false
		e.charge(t, e.cfg.Cost.LockOp)
		e.res.SyncOps++
		e.rt.SyncAcquire(t, d.id, SyncSem)
		e.rt.SyncAcquire(t, d.id2, SyncMutex)
		return true
	}
	m.waiters = append(m.waiters, t)
	t.state = stateBlocked
	return false
}

func execCondSignal(e *Engine, t *Thread, d *dinstr) bool {
	cv := d.cv
	e.charge(t, e.cfg.Cost.SignalOp)
	e.res.SyncOps++
	e.rt.SyncRelease(t, d.id, SyncSem)
	if len(cv.waiters) > 0 {
		w := cv.waiters[0]
		cv.waiters = cv.waiters[1:]
		e.wake(w, t.Clock)
	}
	return true
}

func execCondBroadcast(e *Engine, t *Thread, d *dinstr) bool {
	cv := d.cv
	e.charge(t, e.cfg.Cost.SignalOp)
	e.res.SyncOps++
	e.rt.SyncRelease(t, d.id, SyncSem)
	for _, w := range cv.waiters {
		e.wake(w, t.Clock)
	}
	cv.waiters = nil
	return true
}

func execBarrier(e *Engine, t *Thread, d *dinstr) bool {
	if d.n <= 0 {
		e.programError(t, "barrier", d.id, fmt.Sprintf("has non-positive width %d", d.n))
	}
	b := d.br
	if !t.barrierArrived {
		t.barrierArrived = true
		e.charge(t, e.cfg.Cost.BarrierOp)
		e.res.SyncOps++
		e.rt.SyncRelease(t, d.id, SyncBarrier)
		b.arrived = append(b.arrived, t)
		if len(b.arrived) < int(d.n) {
			t.state = stateBlocked
			return false
		}
		maxClock := int64(0)
		for _, w := range b.arrived {
			if w.Clock > maxClock {
				maxClock = w.Clock
			}
		}
		for _, w := range b.arrived {
			if w != t {
				e.wake(w, maxClock)
			}
		}
		b.arrived = b.arrived[:0]
	}
	t.barrierArrived = false
	e.res.SyncOps++
	e.rt.SyncAcquire(t, d.id, SyncBarrier)
	return true
}

func execSyscall(e *Engine, t *Thread, d *dinstr) bool {
	e.charge(t, d.cycles) // SyscallMin already applied at decode
	e.res.Syscalls++
	e.rt.SyscallEvent(t, d.ref.(*Syscall))
	return true
}

func execTxBegin(e *Engine, t *Thread, d *dinstr) bool {
	e.rt.TxBeginMark(t, d.ref.(*TxBegin))
	return true
}

func execTxEnd(e *Engine, t *Thread, d *dinstr) bool {
	e.rt.TxEndMark(t, d.ref.(*TxEnd))
	return true
}

func execLoopCheck(e *Engine, t *Thread, d *dinstr) bool {
	e.rt.LoopCheckMark(t, d.ref.(*LoopCheck))
	return true
}

