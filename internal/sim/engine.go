package sim

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/memmodel"
	"repro/internal/obs"
)

// Runtime receives execution events from the engine. Implementations in
// internal/core provide the baseline (no-op), TSan-equivalent, sampling, and
// TxRace behaviours. Hooks may charge extra cycles via Engine.Charge and may
// rewind the executing thread via Engine.Restore (only from PreStep or one
// of the Tx/LoopCheck marks).
type Runtime interface {
	// Init is called once before execution with the engine handle.
	Init(e *Engine)
	// ThreadStart fires when a thread begins executing; ThreadExit when its
	// body completes.
	ThreadStart(t *Thread)
	ThreadExit(t *Thread)
	// Fork and Joined carry thread-lifetime happens-before edges.
	Fork(parent, child *Thread)
	Joined(parent, child *Thread)
	// PreStep fires before each instruction; it is the abort-delivery point
	// (a transaction doomed by a remote access discovers it here).
	PreStep(t *Thread)
	// Access fires for every executed memory access, hooked or not.
	Access(t *Thread, m *MemAccess, addr memmodel.Addr)
	// Atomic fires for every atomic read-modify-write.
	Atomic(t *Thread, m *AtomicRMW, addr memmodel.Addr)
	// SyncAcquire fires when a lock acquire, wait, or barrier departure
	// completes; SyncRelease at unlock, signal, or barrier arrival. The
	// kind distinguishes mutexes, rwlock read/write holds, semaphores, and
	// barriers for detectors that need lock identity or reader/writer
	// asymmetry.
	SyncAcquire(t *Thread, s SyncID, kind SyncKind)
	SyncRelease(t *Thread, s SyncID, kind SyncKind)
	// SyscallEvent fires when a system call executes.
	SyscallEvent(t *Thread, sc *Syscall)
	// TxBeginMark, TxEndMark and LoopCheckMark fire at instrumented marks.
	TxBeginMark(t *Thread, m *TxBegin)
	TxEndMark(t *Thread, m *TxEnd)
	LoopCheckMark(t *Thread, m *LoopCheck)
	// Interrupt fires when a timer interrupt / context switch hits t.
	Interrupt(t *Thread)
	// Finish is called once after the program terminates.
	Finish(e *Engine)
}

// NopRuntime implements Runtime with no-ops; concrete runtimes embed it.
type NopRuntime struct{}

func (NopRuntime) Init(*Engine)                              {}
func (NopRuntime) ThreadStart(*Thread)                       {}
func (NopRuntime) ThreadExit(*Thread)                        {}
func (NopRuntime) Fork(*Thread, *Thread)                     {}
func (NopRuntime) Joined(*Thread, *Thread)                   {}
func (NopRuntime) PreStep(*Thread)                           {}
func (NopRuntime) Access(*Thread, *MemAccess, memmodel.Addr) {}
func (NopRuntime) Atomic(*Thread, *AtomicRMW, memmodel.Addr) {}
func (NopRuntime) SyncAcquire(*Thread, SyncID, SyncKind)     {}
func (NopRuntime) SyncRelease(*Thread, SyncID, SyncKind)     {}
func (NopRuntime) SyscallEvent(*Thread, *Syscall)            {}
func (NopRuntime) TxBeginMark(*Thread, *TxBegin)             {}
func (NopRuntime) TxEndMark(*Thread, *TxEnd)                 {}
func (NopRuntime) LoopCheckMark(*Thread, *LoopCheck)         {}
func (NopRuntime) Interrupt(*Thread)                         {}
func (NopRuntime) Finish(*Engine)                            {}

type threadState uint8

const (
	stateNew threadState = iota
	stateRunnable
	stateBlocked
	stateDone
)

// frame is one entry of a thread's control stack. Exactly one of code (the
// decoded instruction stream, the default) or body (raw IR, Config.RefWalk)
// is populated; pc indexes into whichever is live, so Checkpoint/Restore
// are mode-agnostic.
type frame struct {
	code []dinstr
	body []Instr
	pc   int
	loop *Loop
	iter int
}

// Thread is one simulated thread. Clock is its virtual time in cycles; the
// engine always advances the runnable thread with the smallest clock, so
// cross-thread event order is global-virtual-time order and "two
// transactions overlap" has its natural meaning.
type Thread struct {
	ID    int
	Clock int64
	RNG   PRNG

	// Phase is the attribution phase Charge bills cycles to when a ledger is
	// attached (Config.Obs with a Ledger). Runtimes move it at mode
	// transitions (fast-path entry, slow-path fallback, governor forcing);
	// it idles at PhaseApp. With no ledger it is dead state.
	Phase obs.Phase

	// RT is scratch space owned by the active Runtime.
	RT any

	state          threadState
	frames         []frame
	restored       bool // set by Restore; suppresses the pc advance this step
	barrierArrived bool
	condWaiting    bool // inside CondWait: released the mutex, must reacquire
	nextInterrupt  int64
	eng            *Engine
	isWorker       bool
	led            *obs.ThreadLedger // nil unless attribution is on
}

// LoopIter returns the induction variable of the enclosing loop at the given
// depth (0 = innermost). It returns 0 when no such loop exists.
func (t *Thread) LoopIter(depth int) int {
	seen := 0
	for i := len(t.frames) - 1; i >= 0; i-- {
		if t.frames[i].loop != nil {
			if seen == depth {
				return t.frames[i].iter
			}
			seen++
		}
	}
	return 0
}

// Snapshot captures a thread's control state for transactional rollback.
type Snapshot struct {
	frames []frame
	rng    PRNG
	valid  bool
}

// Valid reports whether the snapshot holds captured state.
func (s Snapshot) Valid() bool { return s.valid }

// Eval computes the effective address of expression a for thread t.
func (t *Thread) Eval(a AddrExpr) memmodel.Addr {
	switch a.Mode {
	case AddrFixed:
		return a.Base
	case AddrLoop:
		w := uint64(t.LoopIter(a.Depth))*a.Stride + a.Off
		if a.Wrap != 0 {
			w %= a.Wrap
		}
		return a.Base + memmodel.Addr(w*memmodel.WordSize)
	case AddrRandom:
		return a.Base + memmodel.Addr(t.RNG.Uint64n(a.Range)*memmodel.WordSize)
	default:
		panic(fmt.Sprintf("sim: bad address mode %d", a.Mode))
	}
}

// Config fixes the simulated machine and scheduler.
type Config struct {
	Seed uint64
	// Cores is the physical core count (paper: 4); HWThreads the hardware
	// contexts with hyper-threading (paper: 8). Oversubscribing the
	// physical cores multiplies the interrupt/context-switch rate, which is
	// the paper's explanation for the 8-thread unknown-abort blow-up
	// (Fig. 8).
	Cores     int
	HWThreads int
	// InterruptEvery is the mean number of cycles between timer interrupts
	// delivered to a running thread; zero disables interrupts.
	InterruptEvery int64
	// SpawnJitter is the maximum random skew (cycles) added to a thread's
	// clock at spawn, perturbing overlap between runs.
	SpawnJitter int64
	// WakeJitter is the maximum random skew added when a blocked thread is
	// woken (scheduler dispatch variability).
	WakeJitter int64
	// MaxSteps guards against runaway programs; zero means no limit.
	MaxSteps uint64
	Cost     cost.Model
	// Obs, when non-nil, receives scheduler-level observability events
	// (thread start/exit, interrupt deliveries). The disabled path is one
	// nil-check per site.
	Obs *obs.Observer
	// RefWalk selects the reference interpreter: a tree walk over the raw IR
	// with an interface type switch per instruction. The default (false)
	// compiles each thread body once into a decoded instruction stream and
	// dispatches through an opcode jump table (see decode.go). The two are
	// observationally identical (pinned by the package's differential
	// tests); the walk is kept for those tests and for before/after
	// benchmarks.
	RefWalk bool
}

// DefaultConfig mirrors the paper's testbed.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Cores:          4,
		HWThreads:      8,
		InterruptEvery: 400_000,
		SpawnJitter:    2_000,
		WakeJitter:     100,
		Cost:           cost.Default(),
	}
}

// Result summarizes one execution.
type Result struct {
	// Makespan is the maximum final thread clock: the run's virtual wall
	// time. Overheads in the experiments are ratios of makespans.
	Makespan     int64
	ThreadClocks []int64
	TotalCycles  int64

	Instructions   uint64
	Accesses       uint64
	HookedAccesses uint64
	SyncOps        uint64
	Syscalls       uint64
	Interrupts     uint64
}

type mutex struct {
	owner   *Thread
	waiters []*Thread
}

type rwlock struct {
	readers int
	writer  *Thread
	waiters []*Thread // blocked RLock and WLock attempts, FIFO
}

type sem struct {
	count   int
	waiters []*Thread
}

type barrier struct {
	arrived []*Thread
}

type cond struct {
	waiters []*Thread // blocked in CondWait, before their wakeup
}

// Engine interprets a Program, delivering events to a Runtime.
type Engine struct {
	cfg     Config
	rt      Runtime
	prog    *Program
	threads []*Thread
	rng     PRNG

	mutexes  syncTable[mutex]
	rwlocks  syncTable[rwlock]
	sems     syncTable[sem]
	barriers syncTable[barrier]
	conds    syncTable[cond]

	obs *obs.Observer
	// led is the attribution ledger (nil when disabled). Every cycle added
	// to a thread clock is also charged here — Charge/ChargeAs bill the
	// thread's current phase, and the scheduler's own clock jumps (wake
	// latency, spawn skew, join catch-up) bill PhaseSched — so per-thread
	// ledger totals equal final thread clocks exactly; Run verifies.
	led *obs.Ledger

	// decoded selects the jump-table interpreter; decodedBodies memoizes
	// per-body compilation (workers usually share one body) and
	// decodedInstrs counts compiled instructions for the sim.decode.instrs
	// metric.
	decoded       bool
	decodedBodies map[decodeKey][]dinstr
	decodedInstrs uint64

	res         Result
	liveWorkers int
	steps       uint64
}

// NewEngine returns an engine for cfg.
func NewEngine(cfg Config) *Engine {
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.HWThreads < cfg.Cores {
		cfg.HWThreads = cfg.Cores
	}
	return &Engine{
		cfg:     cfg,
		obs:     cfg.Obs,
		led:     cfg.Obs.Ledger(),
		decoded: !cfg.RefWalk,
		rng:     NewPRNG(cfg.Seed ^ 0xda7a5eed),
	}
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Charge adds c cycles to t's clock; runtimes use it for hook costs. With a
// ledger attached, the cycles bill t's current attribution phase.
func (e *Engine) Charge(t *Thread, c int64) {
	t.Clock += c
	e.res.TotalCycles += c
	if t.led != nil {
		t.led.Add(t.Phase, c)
	}
}

// ChargeAs is Charge billing an explicit phase instead of t's current one —
// for costs whose attribution differs from the surrounding execution (an
// abort penalty delivered while the thread is nominally fast-path, a slow
// hook inside an otherwise uninstrumented stretch) without toggling t.Phase
// around every call.
func (e *Engine) ChargeAs(t *Thread, c int64, p obs.Phase) {
	t.Clock += c
	e.res.TotalCycles += c
	if t.led != nil {
		t.led.Add(p, c)
	}
}

// LiveWorkers returns the number of spawned, unfinished worker threads; the
// TxRace runtime's single-threaded-mode optimization consults it.
func (e *Engine) LiveWorkers() int { return e.liveWorkers }

// ThreadClock returns thread id's current virtual time, or 0 for an unknown
// id. Observability hooks use it to stamp events about threads other than
// the one executing (e.g. the loser of an HTM conflict).
func (e *Engine) ThreadClock(id int) int64 {
	if id < 0 || id >= len(e.threads) {
		return 0
	}
	return e.threads[id].Clock
}

// Checkpoint captures t's control state (frames and PRNG). The TxRace
// runtime takes one at each transaction begin so an abort can rewind the
// region for slow-path re-execution; the PRNG is included so the replay
// touches the same addresses.
func (e *Engine) Checkpoint(t *Thread) Snapshot {
	fr := make([]frame, len(t.frames))
	copy(fr, t.frames)
	return Snapshot{frames: fr, rng: t.RNG, valid: true}
}

// Restore rewinds t to a snapshot. The thread clock is deliberately NOT
// rewound: the cycles burned in the aborted attempt are real time, exactly
// like a hardware abort discarding work. Restoring mid-step suppresses the
// program-counter advance for the instruction being executed, so execution
// resumes exactly at the snapshot point.
func (e *Engine) Restore(t *Thread, s Snapshot) {
	if !s.valid {
		panic("sim: Restore with invalid snapshot")
	}
	t.frames = t.frames[:0]
	t.frames = append(t.frames, s.frames...)
	t.RNG = s.rng
	t.restored = true
}

// interruptScale models context-switch pressure: once runnable threads
// exceed the physical cores (hyper-threading territory), interrupt-driven
// transaction aborts multiply, per the paper's Fig. 8 analysis.
func (e *Engine) interruptScale() int64 {
	n := 0
	for _, t := range e.threads {
		if t.state == stateRunnable || t.state == stateBlocked {
			n++
		}
	}
	if n <= e.cfg.Cores {
		return 1
	}
	return 1 + 6*int64(n-e.cfg.Cores)/int64(e.cfg.Cores)
}

func (e *Engine) scheduleInterrupt(t *Thread) {
	if e.cfg.InterruptEvery <= 0 {
		t.nextInterrupt = 1<<63 - 1
		return
	}
	mean := e.cfg.InterruptEvery / e.interruptScale()
	if mean < 1 {
		mean = 1
	}
	// Uniform in [mean/2, 3*mean/2): cheap dispersion around the mean.
	t.nextInterrupt = t.Clock + mean/2 + int64(t.RNG.Uint64n(uint64(mean)))
}

func (e *Engine) newThread(id int, body []Instr, isWorker bool) *Thread {
	f := frame{}
	if e.decoded {
		f.code = e.decodeBody(body)
	} else {
		f.body = body
	}
	t := &Thread{
		ID:       id,
		RNG:      NewPRNG(e.cfg.Seed*0x9e37 + uint64(id)*0x85eb + 0x1234),
		state:    stateNew,
		frames:   []frame{f},
		eng:      e,
		isWorker: isWorker,
		led:      e.led.ThreadLedger(id),
	}
	return t
}

func (e *Engine) wake(t *Thread, at int64) {
	if t.state != stateBlocked {
		panic("sim: waking non-blocked thread")
	}
	before := t.Clock
	if at > t.Clock {
		t.Clock = at
	}
	t.Clock += e.cfg.Cost.WakeLatency
	if e.cfg.WakeJitter > 0 {
		t.Clock += int64(t.RNG.Uint64n(uint64(e.cfg.WakeJitter)))
	}
	if t.led != nil {
		t.led.Add(obs.PhaseSched, t.Clock-before)
	}
	t.state = stateRunnable
}

// Run executes prog under rt and returns the result. It returns an error on
// deadlock, when MaxSteps is exceeded, or — as a *ProgramError — when the
// program itself is malformed (unlock of an unowned mutex, read-unlock
// without a hold, ...).
func (e *Engine) Run(prog *Program, rt Runtime) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*ProgramError)
			if !ok {
				panic(r)
			}
			res, err = nil, pe
		}
	}()
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid program: %w", err)
	}
	e.prog = prog
	e.rt = rt

	// Intern the program's sync-id space up front: one scan, one allocation
	// per table, then every sync instruction is a direct array index.
	maxID := maxSyncID(prog)
	e.mutexes.presize(maxID)
	e.rwlocks.presize(maxID)
	e.sems.presize(maxID)
	e.barriers.presize(maxID)
	e.conds.presize(maxID)

	main := e.newThread(0, e.mainBody(prog), false)
	e.threads = []*Thread{main}
	for i, w := range prog.Workers {
		e.threads = append(e.threads, e.newThread(i+1, w, true))
	}

	rt.Init(e)
	main.state = stateRunnable
	e.scheduleInterrupt(main)
	if e.obs != nil {
		e.obs.ThreadStart(main.ID, main.Clock)
	}
	rt.ThreadStart(main)

	for {
		t := e.pick()
		if t == nil {
			if e.allDone() {
				break
			}
			return nil, e.deadlockError()
		}
		if e.cfg.MaxSteps > 0 && e.steps >= e.cfg.MaxSteps {
			return nil, fmt.Errorf("sim: exceeded MaxSteps=%d", e.cfg.MaxSteps)
		}
		e.steps++
		e.step(t)
	}

	for _, t := range e.threads {
		e.res.ThreadClocks = append(e.res.ThreadClocks, t.Clock)
		if t.Clock > e.res.Makespan {
			e.res.Makespan = t.Clock
		}
	}
	rt.Finish(e)
	if e.obs != nil {
		e.obs.SimDecodeStats(e.decodedInstrs)
	}
	// Conservation check: with attribution on, every thread's ledger must sum
	// to its virtual clock exactly — a mismatch means some charge bypassed
	// Charge/ChargeAs or a reattribution moved cycles it never had.
	if e.led != nil {
		for _, t := range e.threads {
			if t.led == nil {
				continue
			}
			if tot := t.led.Total(); tot != t.Clock {
				return nil, fmt.Errorf(
					"sim: attribution ledger leak on t%d: ledger total %d cycles, thread clock %d (delta %d)",
					t.ID, tot, t.Clock, t.Clock-tot)
			}
		}
	}
	out := e.res
	return &out, nil
}

// mainBody wraps Setup + spawn/join pseudo-ops + Teardown.
func (e *Engine) mainBody(p *Program) []Instr {
	body := make([]Instr, 0, len(p.Setup)+len(p.Teardown)+2)
	body = append(body, p.Setup...)
	body = append(body, &spawnAll{}, &joinAll{})
	body = append(body, p.Teardown...)
	return body
}

// spawnAll and joinAll are engine-internal pseudo-instructions.
type spawnAll struct{}
type joinAll struct{}

func (*spawnAll) isInstr() {}
func (*joinAll) isInstr()  {}

func (e *Engine) pick() *Thread {
	var best *Thread
	nbest := 0
	for _, t := range e.threads {
		if t.state != stateRunnable {
			continue
		}
		switch {
		case best == nil || t.Clock < best.Clock:
			best, nbest = t, 1
		case t.Clock == best.Clock:
			// Reservoir-sample among clock ties for seeded fairness.
			nbest++
			if e.rng.Uint64n(uint64(nbest)) == 0 {
				best = t
			}
		}
	}
	return best
}

func (e *Engine) allDone() bool {
	for _, t := range e.threads {
		if t.state != stateDone && t.state != stateNew {
			return false
		}
	}
	// Workers stuck in stateNew only matter if main never spawned them;
	// main being done implies they ran or were never reachable.
	return e.threads[0].state == stateDone
}

func (e *Engine) deadlockError() error {
	de := &DeadlockError{}
	for _, t := range e.threads {
		if t.state != stateBlocked {
			continue
		}
		pc := -1
		if len(t.frames) > 0 {
			pc = t.frames[len(t.frames)-1].pc
		}
		de.Blocked = append(de.Blocked, BlockedThread{Thread: t.ID, PC: pc})
	}
	return de
}

func (e *Engine) charge(t *Thread, c int64) { e.Charge(t, c) }

func (e *Engine) step(t *Thread) {
	// Deliver due timer interrupts first.
	for t.nextInterrupt <= t.Clock {
		e.res.Interrupts++
		e.charge(t, 80) // bare interrupt handling latency
		if e.obs != nil {
			e.obs.Interrupt(t.ID, t.Clock)
		}
		e.rt.Interrupt(t)
		e.scheduleInterrupt(t)
	}

	e.rt.PreStep(t)
	// A Restore during PreStep redirects the upcoming fetch and is fully
	// handled; only a Restore during exec (below) must suppress the pc
	// advance of the in-flight instruction.
	t.restored = false

	if len(t.frames) == 0 {
		e.exitThread(t)
		return
	}
	fi := len(t.frames) - 1
	flen := len(t.frames[fi].body)
	if e.decoded {
		flen = len(t.frames[fi].code)
	}
	if t.frames[fi].pc >= flen {
		f := &t.frames[fi]
		if f.loop != nil {
			f.iter++
			e.charge(t, e.cfg.Cost.LoopBranch)
			if f.iter < f.loop.Count {
				f.pc = 0
				return
			}
		}
		t.frames = t.frames[:fi]
		if len(t.frames) == 0 {
			e.exitThread(t)
		}
		return
	}

	var done bool
	if e.decoded {
		e.res.Instructions++
		done = e.execDecoded(t, &t.frames[fi].code[t.frames[fi].pc])
	} else {
		done = e.exec(t, t.frames[fi].body[t.frames[fi].pc])
	}
	// Advance the issuing frame's pc unless the thread blocked (retry the
	// instruction on wake) or a Restore rewrote the stack (resume at the
	// snapshot point). A Loop push grows the stack but leaves index fi — the
	// parent frame — valid.
	if done && !t.restored {
		t.frames[fi].pc++
	}
}

func (e *Engine) exitThread(t *Thread) {
	if t.state == stateDone {
		return
	}
	t.state = stateDone
	if e.obs != nil {
		e.obs.ThreadExit(t.ID, t.Clock)
	}
	e.rt.ThreadExit(t)
	if t.isWorker {
		e.liveWorkers--
		main := e.threads[0]
		if main.state == stateBlocked && e.allWorkersDone() {
			e.wake(main, t.Clock)
		}
	}
}

func (e *Engine) allWorkersDone() bool {
	for _, t := range e.threads {
		if t.isWorker && t.state != stateDone {
			return false
		}
	}
	return true
}

// exec runs one instruction; it returns true when the instruction completed
// (advance pc) and false when the thread blocked or the stack was rewritten.
func (e *Engine) exec(t *Thread, in Instr) bool {
	e.res.Instructions++
	c := e.cfg.Cost
	switch in := in.(type) {
	case *MemAccess:
		if in.Addr.Mode == AddrRandom && in.Addr.Range == 0 {
			e.programError(t, "access", 0, "random address with zero range")
		}
		addr := t.Eval(in.Addr)
		e.charge(t, c.Access)
		e.res.Accesses++
		if in.Hooked {
			e.res.HookedAccesses++
		}
		e.rt.Access(t, in, addr)
		return true

	case *AtomicRMW:
		if in.Addr.Mode == AddrRandom && in.Addr.Range == 0 {
			e.programError(t, "atomic", 0, "random address with zero range")
		}
		addr := t.Eval(in.Addr)
		e.charge(t, c.LockOp/2+1) // a locked RMW: pricier than a load, cheaper than a mutex
		e.res.Accesses++
		e.res.SyncOps++
		e.rt.Atomic(t, in, addr)
		return true

	case *Compute:
		e.charge(t, in.Cycles)
		return true

	case *Delay:
		if in.Max > 0 {
			e.charge(t, int64(t.RNG.Uint64n(uint64(in.Max))))
		}
		return true

	case *Loop:
		if in.Count <= 0 {
			return true
		}
		t.frames = append(t.frames, frame{body: in.Body, loop: in})
		return true

	case *Lock:
		m := e.mutexOf(in.M)
		if m.owner == nil {
			m.owner = t
			e.charge(t, c.LockOp)
			e.res.SyncOps++
			e.rt.SyncAcquire(t, in.M, SyncMutex)
			return true
		}
		m.waiters = append(m.waiters, t)
		t.state = stateBlocked
		return false

	case *Unlock:
		m := e.mutexOf(in.M)
		if m.owner != t {
			e.programError(t, "unlock", in.M, "unlocks a mutex it does not own")
		}
		m.owner = nil
		e.charge(t, c.LockOp)
		e.res.SyncOps++
		e.rt.SyncRelease(t, in.M, SyncMutex)
		if len(m.waiters) > 0 {
			w := m.waiters[0]
			m.waiters = m.waiters[1:]
			e.wake(w, t.Clock)
		}
		return true

	case *RLock:
		l := e.rwlockOf(in.M)
		if l.writer == nil {
			l.readers++
			e.charge(t, c.LockOp)
			e.res.SyncOps++
			e.rt.SyncAcquire(t, in.M, SyncRead)
			return true
		}
		l.waiters = append(l.waiters, t)
		t.state = stateBlocked
		return false

	case *RUnlock:
		l := e.rwlockOf(in.M)
		if l.readers <= 0 {
			e.programError(t, "read-unlock", in.M, "read-unlocks an rwlock it does not hold")
		}
		l.readers--
		e.charge(t, c.LockOp)
		e.res.SyncOps++
		e.rt.SyncRelease(t, in.M, SyncRead)
		e.wakeRWWaiters(l, t)
		return true

	case *WLock:
		l := e.rwlockOf(in.M)
		if l.writer == nil && l.readers == 0 {
			l.writer = t
			e.charge(t, c.LockOp)
			e.res.SyncOps++
			e.rt.SyncAcquire(t, in.M, SyncWrite)
			return true
		}
		l.waiters = append(l.waiters, t)
		t.state = stateBlocked
		return false

	case *WUnlock:
		l := e.rwlockOf(in.M)
		if l.writer != t {
			e.programError(t, "write-unlock", in.M, "write-unlocks an rwlock it does not own")
		}
		l.writer = nil
		e.charge(t, c.LockOp)
		e.res.SyncOps++
		e.rt.SyncRelease(t, in.M, SyncWrite)
		e.wakeRWWaiters(l, t)
		return true

	case *Signal:
		s := e.semOf(in.C)
		s.count++
		e.charge(t, c.SignalOp)
		e.res.SyncOps++
		e.rt.SyncRelease(t, in.C, SyncSem)
		if len(s.waiters) > 0 {
			w := s.waiters[0]
			s.waiters = s.waiters[1:]
			e.wake(w, t.Clock)
		}
		return true

	case *Wait:
		s := e.semOf(in.C)
		if s.count > 0 {
			s.count--
			e.charge(t, c.WaitOp)
			e.res.SyncOps++
			e.rt.SyncAcquire(t, in.C, SyncSem)
			return true
		}
		s.waiters = append(s.waiters, t)
		t.state = stateBlocked
		return false

	case *CondWait:
		cv := e.condOf(in.C)
		m := e.mutexOf(in.M)
		if !t.condWaiting {
			// First phase: release the mutex and park on the condition.
			if m.owner != t {
				e.programError(t, "cond-wait", in.M, "cond-waits without holding the mutex")
			}
			t.condWaiting = true
			m.owner = nil
			e.charge(t, c.WaitOp)
			e.res.SyncOps++
			e.rt.SyncRelease(t, in.M, SyncMutex)
			if len(m.waiters) > 0 {
				w := m.waiters[0]
				m.waiters = m.waiters[1:]
				e.wake(w, t.Clock)
			}
			cv.waiters = append(cv.waiters, t)
			t.state = stateBlocked
			return false
		}
		// Second phase (after the signal): reacquire the mutex.
		if m.owner == nil {
			m.owner = t
			t.condWaiting = false
			e.charge(t, c.LockOp)
			e.res.SyncOps++
			// The wait observes both the signaller (condition clock) and
			// the mutex history.
			e.rt.SyncAcquire(t, in.C, SyncSem)
			e.rt.SyncAcquire(t, in.M, SyncMutex)
			return true
		}
		m.waiters = append(m.waiters, t)
		t.state = stateBlocked
		return false

	case *CondSignal:
		cv := e.condOf(in.C)
		e.charge(t, c.SignalOp)
		e.res.SyncOps++
		e.rt.SyncRelease(t, in.C, SyncSem)
		if len(cv.waiters) > 0 {
			w := cv.waiters[0]
			cv.waiters = cv.waiters[1:]
			e.wake(w, t.Clock)
		}
		return true

	case *CondBroadcast:
		cv := e.condOf(in.C)
		e.charge(t, c.SignalOp)
		e.res.SyncOps++
		e.rt.SyncRelease(t, in.C, SyncSem)
		for _, w := range cv.waiters {
			e.wake(w, t.Clock)
		}
		cv.waiters = nil
		return true

	case *Barrier:
		if in.N <= 0 {
			e.programError(t, "barrier", in.B, fmt.Sprintf("has non-positive width %d", in.N))
		}
		b := e.barrierOf(in.B)
		if !t.barrierArrived {
			t.barrierArrived = true
			e.charge(t, c.BarrierOp)
			e.res.SyncOps++
			e.rt.SyncRelease(t, in.B, SyncBarrier)
			b.arrived = append(b.arrived, t)
			if len(b.arrived) < in.N {
				t.state = stateBlocked
				return false
			}
			// Last arriver releases everyone at the max arrival time.
			maxClock := int64(0)
			for _, w := range b.arrived {
				if w.Clock > maxClock {
					maxClock = w.Clock
				}
			}
			for _, w := range b.arrived {
				if w != t {
					e.wake(w, maxClock)
				}
			}
			b.arrived = b.arrived[:0]
			// Fall through to departure for self.
		}
		t.barrierArrived = false
		e.res.SyncOps++
		e.rt.SyncAcquire(t, in.B, SyncBarrier)
		return true

	case *Syscall:
		cy := in.Cycles
		if cy < c.SyscallMin {
			cy = c.SyscallMin
		}
		e.charge(t, cy)
		e.res.Syscalls++
		e.rt.SyscallEvent(t, in)
		return true

	case *TxBegin:
		e.rt.TxBeginMark(t, in)
		return true

	case *TxEnd:
		e.rt.TxEndMark(t, in)
		return true

	case *LoopCheck:
		e.rt.LoopCheckMark(t, in)
		return true

	case *spawnAll:
		return e.execSpawnAll(t)

	case *joinAll:
		return e.execJoinAll(t)

	default:
		panic(fmt.Sprintf("sim: unknown instruction %T", in))
	}
}

// execSpawnAll releases all workers from the clock main had when it reached
// the spawn point: thread creation overlaps with child startup, so main's
// per-create cost does not serialize the children.
func (e *Engine) execSpawnAll(t *Thread) bool {
	spawnClock := t.Clock
	for _, w := range e.threads[1:] {
		if w.state != stateNew {
			continue
		}
		w.state = stateRunnable
		w.Clock = spawnClock
		if e.cfg.SpawnJitter > 0 {
			w.Clock += int64(w.RNG.Uint64n(uint64(e.cfg.SpawnJitter)))
		}
		if w.led != nil {
			w.led.Add(obs.PhaseSched, w.Clock) // startup skew, from clock 0
		}
		e.liveWorkers++
		e.scheduleInterrupt(w)
		e.rt.Fork(t, w)
		if e.obs != nil {
			e.obs.ThreadStart(w.ID, w.Clock)
		}
		e.rt.ThreadStart(w)
		e.charge(t, 400) // pthread_create-ish cost
	}
	return true
}

// BatchJoiner is an optional Runtime extension: a runtime that can merge a
// join-all in one batched pass (e.g. a detector's tree-structured N-way
// vector-clock join) implements it to replace the N sequential Joined
// callbacks. The virtual-time accounting is unaffected either way.
type BatchJoiner interface {
	JoinedAll(parent *Thread, children []*Thread)
}

func (e *Engine) execJoinAll(t *Thread) bool {
	if !e.allWorkersDone() {
		t.state = stateBlocked
		return false
	}
	// Clock catch-up and per-child charges first, in the same order as the
	// historical interleaved loop (Joined never touches clocks, so splitting
	// the runtime callbacks out changes no virtual-time arithmetic).
	for _, w := range e.threads[1:] {
		if w.Clock > t.Clock {
			if t.led != nil {
				t.led.Add(obs.PhaseSched, w.Clock-t.Clock) // blocked in join
			}
			t.Clock = w.Clock
		}
		e.charge(t, 200)
	}
	if bj, ok := e.rt.(BatchJoiner); ok {
		bj.JoinedAll(t, e.threads[1:])
		return true
	}
	for _, w := range e.threads[1:] {
		e.rt.Joined(t, w)
	}
	return true
}

// wakeRWWaiters wakes all blocked rwlock attempts; they re-execute their
// lock instruction and re-sort themselves (waking readers together lets
// concurrent readers proceed as a batch).
func (e *Engine) wakeRWWaiters(l *rwlock, at *Thread) {
	ws := l.waiters
	l.waiters = nil
	for _, w := range ws {
		e.wake(w, at.Clock)
	}
}

func (e *Engine) mutexOf(id SyncID) *mutex     { return e.mutexes.get(id) }
func (e *Engine) condOf(id SyncID) *cond       { return e.conds.get(id) }
func (e *Engine) rwlockOf(id SyncID) *rwlock   { return e.rwlocks.get(id) }
func (e *Engine) semOf(id SyncID) *sem         { return e.sems.get(id) }
func (e *Engine) barrierOf(id SyncID) *barrier { return e.barriers.get(id) }
