package sim

import (
	"testing"

	"repro/internal/memmodel"
)

func quiet() Config {
	cfg := DefaultConfig()
	cfg.InterruptEvery = 0
	cfg.SpawnJitter = 0
	cfg.WakeJitter = 0
	cfg.MaxSteps = 1 << 22
	return cfg
}

// recorder collects runtime events for assertions.
type recorder struct {
	NopRuntime
	accesses  []memmodel.Addr
	writes    []bool
	acquires  []SyncID
	releases  []SyncID
	syscalls  []string
	starts    int
	exits     int
	forks     int
	joins     int
	txBegins  int
	txEnds    int
	loopMarks []LoopID
}

func (r *recorder) ThreadStart(*Thread)                         { r.starts++ }
func (r *recorder) ThreadExit(*Thread)                          { r.exits++ }
func (r *recorder) Fork(_, _ *Thread)                           { r.forks++ }
func (r *recorder) Joined(_, _ *Thread)                         { r.joins++ }
func (r *recorder) SyncAcquire(_ *Thread, s SyncID, _ SyncKind) { r.acquires = append(r.acquires, s) }
func (r *recorder) SyncRelease(_ *Thread, s SyncID, _ SyncKind) { r.releases = append(r.releases, s) }
func (r *recorder) TxBeginMark(*Thread, *TxBegin)               { r.txBegins++ }
func (r *recorder) TxEndMark(*Thread, *TxEnd)                   { r.txEnds++ }
func (r *recorder) SyscallEvent(_ *Thread, sc *Syscall) {
	r.syscalls = append(r.syscalls, sc.Name)
}
func (r *recorder) LoopCheckMark(_ *Thread, lc *LoopCheck) {
	r.loopMarks = append(r.loopMarks, lc.ID)
}
func (r *recorder) Access(_ *Thread, m *MemAccess, a memmodel.Addr) {
	r.accesses = append(r.accesses, a)
	r.writes = append(r.writes, m.Write)
}

func run(t *testing.T, p *Program, rt Runtime, cfg Config) *Result {
	t.Helper()
	res, err := NewEngine(cfg).Run(p, rt)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestLoopExecutesExactCount(t *testing.T) {
	rec := &recorder{}
	p := &Program{Workers: [][]Instr{{
		&Loop{ID: 1, Count: 7, Body: []Instr{
			&MemAccess{Write: true, Addr: Fixed(64), Site: 1},
		}},
	}}}
	run(t, p, rec, quiet())
	if len(rec.accesses) != 7 {
		t.Fatalf("loop body executed %d times, want 7", len(rec.accesses))
	}
}

func TestNestedLoops(t *testing.T) {
	rec := &recorder{}
	p := &Program{Workers: [][]Instr{{
		&Loop{ID: 1, Count: 3, Body: []Instr{
			&Loop{ID: 2, Count: 4, Body: []Instr{
				&MemAccess{Addr: Fixed(64), Site: 1},
			}},
			&MemAccess{Write: true, Addr: Fixed(128), Site: 2},
		}},
	}}}
	run(t, p, rec, quiet())
	if len(rec.accesses) != 3*4+3 {
		t.Fatalf("accesses = %d, want 15", len(rec.accesses))
	}
}

func TestZeroCountLoopSkipped(t *testing.T) {
	rec := &recorder{}
	p := &Program{Workers: [][]Instr{{
		&Loop{ID: 1, Count: 0, Body: []Instr{&MemAccess{Addr: Fixed(64), Site: 1}}},
		&MemAccess{Write: true, Addr: Fixed(128), Site: 2},
	}}}
	run(t, p, rec, quiet())
	if len(rec.accesses) != 1 || rec.accesses[0] != 128 {
		t.Fatalf("zero-count loop executed: %v", rec.accesses)
	}
}

func TestIndexedAddressing(t *testing.T) {
	rec := &recorder{}
	p := &Program{Workers: [][]Instr{{
		&Loop{ID: 1, Count: 4, Body: []Instr{
			&MemAccess{Addr: Indexed(0, 2), Site: 1}, // base 0, stride 2 words
		}},
	}}}
	run(t, p, rec, quiet())
	want := []memmodel.Addr{0, 16, 32, 48}
	for i, a := range rec.accesses {
		if a != want[i] {
			t.Fatalf("iteration %d address %d, want %d", i, a, want[i])
		}
	}
}

func TestIndexedWrapAndDepth(t *testing.T) {
	rec := &recorder{}
	inner := &Loop{ID: 2, Count: 2, Body: []Instr{
		// Depth 1 = the outer loop's induction variable.
		&MemAccess{Addr: AddrExpr{Base: 0, Mode: AddrLoop, Stride: 1, Depth: 1, Wrap: 3}, Site: 1},
	}}
	p := &Program{Workers: [][]Instr{{
		&Loop{ID: 1, Count: 4, Body: []Instr{inner}},
	}}}
	run(t, p, rec, quiet())
	// Outer iterations 0..3 wrap at 3 → words 0,1,2,0; two accesses each.
	want := []memmodel.Addr{0, 0, 8, 8, 16, 16, 0, 0}
	if len(rec.accesses) != len(want) {
		t.Fatalf("accesses = %d, want %d", len(rec.accesses), len(want))
	}
	for i, a := range rec.accesses {
		if a != want[i] {
			t.Fatalf("access %d = %d, want %d", i, a, want[i])
		}
	}
}

func TestRandomAddressingStaysInRange(t *testing.T) {
	rec := &recorder{}
	p := &Program{Workers: [][]Instr{{
		&Loop{ID: 1, Count: 100, Body: []Instr{
			&MemAccess{Addr: Random(1024, 16), Site: 1},
		}},
	}}}
	run(t, p, rec, quiet())
	for _, a := range rec.accesses {
		if a < 1024 || a >= 1024+16*8 {
			t.Fatalf("random address %d out of range", a)
		}
	}
}

func TestMutexMutualExclusionAndHB(t *testing.T) {
	rec := &recorder{}
	body := []Instr{
		&Lock{M: 1},
		&Compute{Cycles: 10},
		&Unlock{M: 1},
	}
	p := &Program{Workers: [][]Instr{body, body, body}}
	run(t, p, rec, quiet())
	if len(rec.acquires) != 3 || len(rec.releases) != 3 {
		t.Fatalf("acquires=%d releases=%d, want 3 each", len(rec.acquires), len(rec.releases))
	}
}

func TestUnlockingUnownedMutexIsProgramError(t *testing.T) {
	p := &Program{Workers: [][]Instr{{&Unlock{M: 1}}}}
	_, err := NewEngine(quiet()).Run(p, &NopRuntime{})
	wantProgramError(t, err, "unlock", 1)
}

func TestSemaphoreCountingSemantics(t *testing.T) {
	// Producer posts 3 times; consumer waits 3 times. Must terminate.
	p := &Program{Workers: [][]Instr{
		{&Signal{C: 1}, &Signal{C: 1}, &Signal{C: 1}},
		{&Wait{C: 1}, &Wait{C: 1}, &Wait{C: 1}},
	}}
	res := run(t, p, &NopRuntime{}, quiet())
	if res.SyncOps != 6 {
		t.Fatalf("sync ops = %d, want 6", res.SyncOps)
	}
}

func TestWaitBlocksUntilSignal(t *testing.T) {
	// The consumer's post-wait compute must be clocked after the
	// producer's long compute + signal.
	rec := &recorder{}
	p := &Program{Workers: [][]Instr{
		{&Compute{Cycles: 10_000}, &Signal{C: 1}},
		{&Wait{C: 1}, &Compute{Cycles: 1}},
	}}
	res := run(t, p, rec, quiet())
	if res.ThreadClocks[2] < 10_000 {
		t.Fatalf("consumer finished at %d, before producer's signal", res.ThreadClocks[2])
	}
}

func TestDeadlockDetected(t *testing.T) {
	p := &Program{Workers: [][]Instr{
		{&Wait{C: 1}}, // no one ever signals
	}}
	if _, err := NewEngine(quiet()).Run(p, &NopRuntime{}); err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	// Fast thread must wait for the slow one; after the barrier, clocks are
	// within wake latency of each other.
	p := &Program{Workers: [][]Instr{
		{&Compute{Cycles: 10}, &Barrier{B: 1, N: 2}, &Compute{Cycles: 1}},
		{&Compute{Cycles: 5_000}, &Barrier{B: 1, N: 2}, &Compute{Cycles: 1}},
	}}
	res := run(t, p, &NopRuntime{}, quiet())
	if res.ThreadClocks[1] < 5_000 {
		t.Fatalf("fast thread left the barrier early: %d", res.ThreadClocks[1])
	}
}

func TestBarrierReusableAcrossPhases(t *testing.T) {
	body := []Instr{&Loop{ID: 1, Count: 5, Body: []Instr{
		&Compute{Cycles: 3},
		&Barrier{B: 1, N: 3},
	}}}
	p := &Program{Workers: [][]Instr{body, body, body}}
	res := run(t, p, &NopRuntime{}, quiet())
	// 5 phases × 3 threads × (arrival + departure).
	if res.SyncOps != 30 {
		t.Fatalf("sync ops = %d, want 30", res.SyncOps)
	}
}

func TestSetupRunsBeforeWorkersAndTeardownAfter(t *testing.T) {
	rec := &recorder{}
	p := &Program{
		Setup:    []Instr{&MemAccess{Addr: Fixed(8), Site: 1}},
		Workers:  [][]Instr{{&MemAccess{Addr: Fixed(16), Site: 2}}},
		Teardown: []Instr{&MemAccess{Addr: Fixed(24), Site: 3}},
	}
	run(t, p, rec, quiet())
	if len(rec.accesses) != 3 ||
		rec.accesses[0] != 8 || rec.accesses[1] != 16 || rec.accesses[2] != 24 {
		t.Fatalf("phase order wrong: %v", rec.accesses)
	}
	if rec.forks != 1 || rec.joins != 1 || rec.starts != 2 || rec.exits != 2 {
		t.Fatalf("lifecycle events: forks=%d joins=%d starts=%d exits=%d",
			rec.forks, rec.joins, rec.starts, rec.exits)
	}
}

func TestJoinPropagatesWorkerClock(t *testing.T) {
	p := &Program{
		Workers:  [][]Instr{{&Compute{Cycles: 50_000}}},
		Teardown: []Instr{&Compute{Cycles: 1}},
	}
	res := run(t, p, &NopRuntime{}, quiet())
	if res.ThreadClocks[0] < 50_000 {
		t.Fatalf("main clock %d did not absorb worker's 50000", res.ThreadClocks[0])
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	build := func() *Program {
		return &Program{Workers: [][]Instr{
			{&Loop{ID: 1, Count: 50, Body: []Instr{
				&MemAccess{Write: true, Addr: Random(0, 64), Site: 1},
				&Delay{Max: 20},
			}}},
			{&Loop{ID: 2, Count: 50, Body: []Instr{
				&MemAccess{Addr: Random(4096, 64), Site: 2},
				&Compute{Cycles: 3},
			}}},
		}}
	}
	cfg := quiet()
	cfg.SpawnJitter = 100
	cfg.Seed = 42
	r1, r2 := &recorder{}, &recorder{}
	a := run(t, build(), r1, cfg)
	b := run(t, build(), r2, cfg)
	if a.Makespan != b.Makespan || a.Instructions != b.Instructions {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d",
			a.Makespan, a.Instructions, b.Makespan, b.Instructions)
	}
	for i := range r1.accesses {
		if r1.accesses[i] != r2.accesses[i] {
			t.Fatalf("access stream diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	build := func() *Program {
		return &Program{Workers: [][]Instr{
			{&Delay{Max: 1000}, &Compute{Cycles: 5}},
			{&Delay{Max: 1000}, &Compute{Cycles: 5}},
		}}
	}
	cfg1, cfg2 := quiet(), quiet()
	cfg1.Seed, cfg2.Seed = 1, 2
	a := run(t, build(), &NopRuntime{}, cfg1)
	b := run(t, build(), &NopRuntime{}, cfg2)
	if a.Makespan == b.Makespan {
		t.Skip("seeds happened to coincide; acceptable but unlikely")
	}
}

// replayRT checkpoints at TxBegin and restores once at TxEnd, recording the
// access streams of both attempts.
type replayRT struct {
	NopRuntime
	eng      *Engine
	snap     Snapshot
	restored bool
	first    []memmodel.Addr
	second   []memmodel.Addr
}

func (w *replayRT) Init(e *Engine) { w.eng = e }
func (w *replayRT) TxBeginMark(t *Thread, m *TxBegin) {
	if !w.restored {
		w.snap = w.eng.Checkpoint(t)
	}
}
func (w *replayRT) Access(t *Thread, m *MemAccess, a memmodel.Addr) {
	if w.restored {
		w.second = append(w.second, a)
	} else {
		w.first = append(w.first, a)
	}
}
func (w *replayRT) TxEndMark(t *Thread, m *TxEnd) {
	if !w.restored {
		w.restored = true
		w.eng.Restore(t, w.snap)
	}
}

func TestCheckpointRestoreReplaysSameAddresses(t *testing.T) {
	rt := &replayRT{}
	p := &Program{Workers: [][]Instr{{
		&TxBegin{},
		&Loop{ID: 1, Count: 10, Body: []Instr{
			&MemAccess{Write: true, Addr: Random(0, 1024), Site: 1},
		}},
		&TxEnd{},
	}}}
	if _, err := NewEngine(quiet()).Run(p, rt); err != nil {
		t.Fatal(err)
	}
	if len(rt.first) != 10 || len(rt.second) != 10 {
		t.Fatalf("attempts: %d and %d accesses, want 10 each", len(rt.first), len(rt.second))
	}
	for i := range rt.first {
		if rt.first[i] != rt.second[i] {
			t.Fatalf("replay diverged at access %d: %d vs %d", i, rt.first[i], rt.second[i])
		}
	}
}

func TestMaxStepsGuards(t *testing.T) {
	cfg := quiet()
	cfg.MaxSteps = 100
	p := &Program{Workers: [][]Instr{{
		&Loop{ID: 1, Count: 1 << 20, Body: []Instr{&Compute{Cycles: 1}}},
	}}}
	if _, err := NewEngine(cfg).Run(p, &NopRuntime{}); err == nil {
		t.Fatal("MaxSteps exceeded without error")
	}
}

func TestInterruptsDelivered(t *testing.T) {
	cfg := quiet()
	cfg.InterruptEvery = 1000
	p := &Program{Workers: [][]Instr{{&Compute{Cycles: 100_000}}, {&Loop{ID: 1, Count: 1000, Body: []Instr{&Compute{Cycles: 100}}}}}}
	res := run(t, p, &NopRuntime{}, cfg)
	if res.Interrupts == 0 {
		t.Fatal("no interrupts delivered")
	}
}

func TestInterruptScaleRisesWithOversubscription(t *testing.T) {
	cfg := quiet()
	cfg.Cores = 2
	cfg.InterruptEvery = 2000
	mk := func(n int) *Program {
		ws := make([][]Instr, n)
		for i := range ws {
			ws[i] = []Instr{&Loop{ID: LoopID(i + 1), Count: 200, Body: []Instr{&Compute{Cycles: 50}}}}
		}
		return &Program{Workers: ws}
	}
	small := run(t, mk(2), &NopRuntime{}, cfg)
	big := run(t, mk(6), &NopRuntime{}, cfg)
	perThreadSmall := float64(small.Interrupts) / 2
	perThreadBig := float64(big.Interrupts) / 6
	if perThreadBig <= perThreadSmall {
		t.Fatalf("oversubscription did not raise interrupt rate: %.1f vs %.1f",
			perThreadBig, perThreadSmall)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	bad := []*Program{
		{Workers: [][]Instr{{&Loop{ID: 1, Count: -1}}}},
		{Workers: [][]Instr{{&Compute{Cycles: -5}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("program %d validated", i)
		}
	}
	l := &Loop{ID: 1, Count: 2}
	l.Body = []Instr{l} // self-nested loop id
	if err := (&Program{Workers: [][]Instr{{l}}}).Validate(); err == nil {
		t.Error("self-nested loop validated")
	}
}

func TestCountAccesses(t *testing.T) {
	body := []Instr{
		&MemAccess{Addr: Fixed(0), Site: 1},
		&Loop{ID: 1, Count: 5, Body: []Instr{
			&MemAccess{Addr: Fixed(8), Site: 2},
			&MemAccess{Addr: Fixed(16), Site: 3},
		}},
	}
	if got := CountAccesses(body); got != 11 {
		t.Fatalf("CountAccesses = %d, want 11", got)
	}
}

func TestForEachInstrVisitsNested(t *testing.T) {
	body := []Instr{
		&Loop{ID: 1, Count: 2, Body: []Instr{
			&Compute{Cycles: 1},
			&Loop{ID: 2, Count: 2, Body: []Instr{&Compute{Cycles: 1}}},
		}},
	}
	n := 0
	ForEachInstr(body, func(Instr) { n++ })
	if n != 4 {
		t.Fatalf("visited %d instrs, want 4", n)
	}
}

func TestDelayChargesBoundedCycles(t *testing.T) {
	p := &Program{Workers: [][]Instr{{&Delay{Max: 100}}}}
	res := run(t, p, &NopRuntime{}, quiet())
	// Makespan = spawn-point + delay + exit costs; the delay is < 100.
	if res.Makespan > 2_000 {
		t.Fatalf("delay charged too much: %d", res.Makespan)
	}
}

func TestHiddenSyscallStillExecutes(t *testing.T) {
	rec := &recorder{}
	p := &Program{Workers: [][]Instr{{
		&Syscall{Name: "open", Cycles: 100},
		&Syscall{Name: "libhidden", Cycles: 50, Hidden: true},
	}}}
	res := run(t, p, rec, quiet())
	if len(rec.syscalls) != 2 || res.Syscalls != 2 {
		t.Fatalf("syscalls = %v", rec.syscalls)
	}
}

func TestThreadLocalPRNGIndependence(t *testing.T) {
	// Two workers drawing random addresses must not share a stream.
	rec := &recorder{}
	body := func() []Instr {
		return []Instr{&Loop{ID: 1, Count: 20, Body: []Instr{
			&MemAccess{Addr: Random(0, 1<<20), Site: 1},
		}}}
	}
	p := &Program{Workers: [][]Instr{body(), body()}}
	run(t, p, rec, quiet())
	same := 0
	for i := 0; i < 20; i++ {
		if rec.accesses[i] == rec.accesses[20+i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("worker PRNG streams look shared: %d identical draws", same)
	}
}
