package sim

import "testing"

// BenchmarkEngineThroughput measures raw interpreter speed (instructions
// per second) on a compute/access mix with no runtime hooks.
func BenchmarkEngineThroughput(b *testing.B) {
	body := []Instr{&Loop{ID: 1, Count: 1000, Body: []Instr{
		&MemAccess{Write: true, Addr: Indexed(0, 1), Site: 1},
		&MemAccess{Addr: Random(1<<20, 4096), Site: 2},
		&Compute{Cycles: 3},
	}}}
	p := &Program{Workers: [][]Instr{body, body, body, body}}
	cfg := quiet()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := NewEngine(cfg).Run(p, &NopRuntime{})
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Instructions
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

func BenchmarkCheckpointRestore(b *testing.B) {
	rt := &checkpointBench{}
	p := &Program{Workers: [][]Instr{{
		&TxBegin{},
		&Loop{ID: 1, Count: 5, Body: []Instr{
			&Loop{ID: 2, Count: 5, Body: []Instr{&Compute{Cycles: 1}}},
		}},
		&TxEnd{},
	}}}
	cfg := quiet()
	eng := NewEngine(cfg)
	if _, err := eng.Run(p, rt); err != nil {
		b.Fatal(err)
	}
	t := rt.t
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := eng.Checkpoint(t)
		eng.Restore(t, s)
	}
}

type checkpointBench struct {
	NopRuntime
	t *Thread
}

func (c *checkpointBench) TxBeginMark(t *Thread, _ *TxBegin) { c.t = t }
