package sim

// PRNG is a small copyable pseudo-random generator (splitmix64). Each thread
// owns one so that (a) runs are fully deterministic for a given seed and
// (b) the TxRace runtime can snapshot it at transaction begin: re-executing
// an aborted region on the slow path then replays the exact same addresses,
// which is what lets the software detector re-observe the conflicting
// accesses the HTM flagged.
type PRNG struct {
	state uint64
}

// NewPRNG returns a generator seeded with s.
func NewPRNG(s uint64) PRNG { return PRNG{state: s} }

// Next returns the next 64 random bits.
func (p *PRNG) Next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (p *PRNG) Intn(n int64) int64 {
	if n <= 0 {
		panic("sim: Intn requires positive bound")
	}
	return int64(p.Next() % uint64(n))
}

// Uint64n returns a value in [0, n). n must be positive.
func (p *PRNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n requires positive bound")
	}
	return p.Next() % n
}

// Float64 returns a value in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Next()>>11) / (1 << 53)
}

// Bool returns true with probability prob.
func (p *PRNG) Bool(prob float64) bool { return p.Float64() < prob }
