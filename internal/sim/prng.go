package sim

import "repro/internal/prng"

// PRNG is the simulator's per-thread pseudo-random generator: an alias of the
// repository-wide splitmix64 source (internal/prng). Each thread owns one so
// that (a) runs are fully deterministic for a given seed and (b) the TxRace
// runtime can snapshot it at transaction begin: re-executing an aborted
// region on the slow path then replays the exact same addresses, which is
// what lets the software detector re-observe the conflicting accesses the
// HTM flagged.
type PRNG = prng.PRNG

// NewPRNG returns a generator seeded with s.
func NewPRNG(s uint64) PRNG { return prng.New(s) }
