package sim

import (
	"testing"
	"testing/quick"
)

func TestPRNGDeterministic(t *testing.T) {
	a, b := NewPRNG(7), NewPRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPRNGCopyable(t *testing.T) {
	a := NewPRNG(9)
	a.Next()
	saved := a // value copy = snapshot
	x := a.Next()
	y := saved.Next()
	if x != y {
		t.Fatal("copied PRNG did not replay")
	}
}

func TestPRNGRanges(t *testing.T) {
	p := NewPRNG(3)
	for i := 0; i < 1000; i++ {
		if v := p.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := p.Uint64n(9); v >= 9 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
		if f := p.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestPRNGBoolProbability(t *testing.T) {
	p := NewPRNG(5)
	hits := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if p.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) frequency = %.3f", frac)
	}
}

func TestPRNGBadBoundsPanic(t *testing.T) {
	p := NewPRNG(1)
	for _, f := range []func(){
		func() { p.Intn(0) },
		func() { p.Intn(-3) },
		func() { p.Uint64n(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad bound did not panic")
				}
			}()
			f()
		}()
	}
}

// Different seeds produce different streams (overwhelmingly).
func TestPRNGSeedSensitivity(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		a, b := NewPRNG(s1), NewPRNG(s2)
		same := 0
		for i := 0; i < 8; i++ {
			if a.Next() == b.Next() {
				same++
			}
		}
		return same < 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Crude uniformity: byte buckets of Uint64n(256) stay within 3x of uniform.
func TestPRNGRoughUniformity(t *testing.T) {
	p := NewPRNG(11)
	var buckets [16]int
	const n = 16_000
	for i := 0; i < n; i++ {
		buckets[p.Uint64n(16)]++
	}
	for i, c := range buckets {
		if c < n/16/2 || c > n/16*2 {
			t.Fatalf("bucket %d count %d far from uniform %d", i, c, n/16)
		}
	}
}
