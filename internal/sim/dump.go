package sim

import (
	"fmt"
	"io"
	"strings"
)

// Dump pretty-prints a program's IR, one instruction per line with nesting,
// in a stable textual form — the reproduction's analogue of dumping LLVM IR
// after the instrumentation pass. Golden tests and cmd/txrace -dump use it.
func Dump(w io.Writer, p *Program) {
	fmt.Fprintf(w, "program %q (%d workers)\n", p.Name, len(p.Workers))
	if len(p.Setup) > 0 {
		fmt.Fprintln(w, "setup:")
		dumpBody(w, p.Setup, 1)
	}
	for i, wk := range p.Workers {
		fmt.Fprintf(w, "worker %d:\n", i)
		dumpBody(w, wk, 1)
	}
	if len(p.Teardown) > 0 {
		fmt.Fprintln(w, "teardown:")
		dumpBody(w, p.Teardown, 1)
	}
}

func dumpBody(w io.Writer, body []Instr, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, in := range body {
		switch in := in.(type) {
		case *Loop:
			fmt.Fprintf(w, "%sloop #%d x%d {\n", ind, in.ID, in.Count)
			dumpBody(w, in.Body, depth+1)
			fmt.Fprintf(w, "%s}\n", ind)
		default:
			fmt.Fprintf(w, "%s%s\n", ind, InstrString(in))
		}
	}
}

// InstrString renders one (non-loop) instruction.
func InstrString(in Instr) string {
	switch in := in.(type) {
	case *MemAccess:
		op := "load"
		if in.Write {
			op = "store"
		}
		attrs := ""
		if in.Local {
			attrs += " local"
		}
		if in.Hooked {
			attrs += " hooked"
		}
		return fmt.Sprintf("%-6s %s @site %d%s", op, addrString(in.Addr), in.Site, attrs)
	case *AtomicRMW:
		return fmt.Sprintf("atomic %s @site %d", addrString(in.Addr), in.Site)
	case *Compute:
		return fmt.Sprintf("compute %d", in.Cycles)
	case *Delay:
		return fmt.Sprintf("delay ≤%d", in.Max)
	case *Lock:
		return fmt.Sprintf("lock m%d", in.M)
	case *Unlock:
		return fmt.Sprintf("unlock m%d", in.M)
	case *RLock:
		return fmt.Sprintf("rlock m%d", in.M)
	case *RUnlock:
		return fmt.Sprintf("runlock m%d", in.M)
	case *WLock:
		return fmt.Sprintf("wlock m%d", in.M)
	case *WUnlock:
		return fmt.Sprintf("wunlock m%d", in.M)
	case *Signal:
		return fmt.Sprintf("signal c%d", in.C)
	case *Wait:
		return fmt.Sprintf("wait c%d", in.C)
	case *CondWait:
		return fmt.Sprintf("condwait c%d m%d", in.C, in.M)
	case *CondSignal:
		return fmt.Sprintf("condsignal c%d", in.C)
	case *CondBroadcast:
		return fmt.Sprintf("condbroadcast c%d", in.C)
	case *Barrier:
		return fmt.Sprintf("barrier b%d n%d", in.B, in.N)
	case *Syscall:
		h := ""
		if in.Hidden {
			h = " hidden"
		}
		return fmt.Sprintf("syscall %q %d%s", in.Name, in.Cycles, h)
	case *TxBegin:
		small := ""
		if in.Small {
			small = " small"
		}
		return fmt.Sprintf("xbegin (%d accesses%s)", in.StaticAccesses, small)
	case *TxEnd:
		return "xend"
	case *LoopCheck:
		return fmt.Sprintf("loopcheck #%d", in.ID)
	case *Loop:
		return fmt.Sprintf("loop #%d x%d", in.ID, in.Count)
	default:
		return fmt.Sprintf("%T", in)
	}
}

func addrString(a AddrExpr) string {
	switch a.Mode {
	case AddrFixed:
		return fmt.Sprintf("[%#x]", uint64(a.Base))
	case AddrLoop:
		s := fmt.Sprintf("[%#x + i@%d*%d + %d]", uint64(a.Base), a.Depth, a.Stride, a.Off)
		if a.Wrap != 0 {
			s += fmt.Sprintf(" %% %d", a.Wrap)
		}
		return s
	case AddrRandom:
		return fmt.Sprintf("[%#x + rand(%d)]", uint64(a.Base), a.Range)
	default:
		return "[?]"
	}
}
