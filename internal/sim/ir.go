// Package sim provides the multithreaded-program substrate the TxRace
// reproduction runs on: a small structured IR (loads, stores, compute,
// locks, condition signalling, barriers, system calls, counted loops) and a
// deterministic discrete-event interpreter with per-thread virtual clocks.
//
// The IR plays the role of LLVM IR in the paper's toolchain: the
// instrument package rewrites it (inserting transaction boundaries and
// loop-cut checks) exactly where the paper's compiler pass would, and the
// engine delivers runtime events to a pluggable Runtime — the baseline,
// TSan-equivalent, sampling, and TxRace runtimes in internal/core.
package sim

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/shadow"
)

// SiteID identifies a static instruction; re-exported from shadow so
// workloads only import sim.
type SiteID = shadow.SiteID

// SyncID names a synchronization object. Objects are typed by use: the same
// id must be used consistently as a mutex, rwlock, semaphore, or barrier.
type SyncID uint32

// SyncKind tells runtime hooks what flavour of synchronization an acquire or
// release event came from; detectors that care about lock identity (the
// Eraser-style lockset detector) or reader/writer asymmetry need it, while
// happens-before detectors may ignore it.
type SyncKind uint8

// Synchronization flavours delivered with SyncAcquire/SyncRelease events.
const (
	SyncMutex SyncKind = iota
	SyncRead           // rwlock held shared
	SyncWrite          // rwlock held exclusive
	SyncSem            // semaphore post/pend (condvar signalling)
	SyncBarrier
)

// LoopID names a static loop for the loop-cut optimization (§4.3).
type LoopID uint32

// Instr is one IR instruction. The concrete types below form the closed set
// the engine interprets.
type Instr interface{ isInstr() }

// AddrMode selects how a MemAccess computes its effective address.
type AddrMode uint8

const (
	// AddrFixed always accesses Base.
	AddrFixed AddrMode = iota
	// AddrLoop accesses Base + ((iter*Stride + Off) mod Wrap) words, where
	// iter is the induction variable of the enclosing loop at Depth
	// (0 = innermost). Wrap of zero means no wrapping.
	AddrLoop
	// AddrRandom accesses Base + r words, r uniform in [0, Range), drawn
	// from the executing thread's PRNG.
	AddrRandom
)

// AddrExpr computes an effective address at execution time.
type AddrExpr struct {
	Base   memmodel.Addr
	Mode   AddrMode
	Stride uint64 // words per iteration (AddrLoop)
	Off    uint64 // word offset (AddrLoop)
	Wrap   uint64 // modulo in words (AddrLoop); 0 = none
	Depth  int    // enclosing-loop depth (AddrLoop)
	Range  uint64 // extent in words (AddrRandom)
}

// Fixed returns an expression that always addresses a.
func Fixed(a memmodel.Addr) AddrExpr { return AddrExpr{Base: a, Mode: AddrFixed} }

// Indexed returns an expression addressing base + iter*stride words.
func Indexed(base memmodel.Addr, strideWords uint64) AddrExpr {
	return AddrExpr{Base: base, Mode: AddrLoop, Stride: strideWords}
}

// Random returns an expression addressing a uniform word in
// [base, base+rangeWords words).
func Random(base memmodel.Addr, rangeWords uint64) AddrExpr {
	return AddrExpr{Base: base, Mode: AddrRandom, Range: rangeWords}
}

// MemAccess is a load or store of one word.
type MemAccess struct {
	Write bool
	Addr  AddrExpr
	Site  SiteID
	// Local marks accesses the static analysis proves race-free
	// (thread-local data). The instrumenter strips hooks from them — the
	// optimization TxRace borrows from TSan (§4.3, second optimization) —
	// and the resulting accesses are invisible to both fast and slow paths.
	Local bool
	// Hooked is set by the instrumenter on accesses that carry a detector
	// hook. Uninstrumented programs have it false everywhere, which is how
	// the baseline run stays hook-free.
	Hooked bool
}

// Compute models n cycles of private computation.
type Compute struct{ Cycles int64 }

// Delay models input- and scheduling-dependent computation: it charges a
// uniform random number of cycles in [0, Max), drawn from the executing
// thread's PRNG. Workloads use it to make the *time* at which later
// instructions run vary between seeds, which is what makes overlap-based
// detection scheduler-sensitive (the paper's vips analysis, §8.3/Fig. 10).
type Delay struct{ Max int64 }

// Lock acquires mutex M; Unlock releases it.
type Lock struct{ M SyncID }

// Unlock releases mutex M.
type Unlock struct{ M SyncID }

// RLock acquires rwlock M for shared reading; RUnlock releases it. Multiple
// readers may hold the lock together; WLock (write mode) excludes everyone.
type RLock struct{ M SyncID }

// RUnlock releases a shared hold on rwlock M.
type RUnlock struct{ M SyncID }

// WLock acquires rwlock M exclusively; WUnlock releases it.
type WLock struct{ M SyncID }

// WUnlock releases an exclusive hold on rwlock M.
type WUnlock struct{ M SyncID }

// AtomicRMW is an atomic read-modify-write (fetch-add, CAS, exchange) on a
// word: a C++11-style synchronization operation. It orders with every other
// atomic on the same location and is never itself racy, but a *plain* access
// unordered with it still races (the C++ model's mixed-access rule).
type AtomicRMW struct {
	Addr AddrExpr
	Site SiteID
}

// Signal posts semaphore C once (lightweight condition signalling is
// modelled with semaphore semantics so generated programs cannot lose
// wakeups; CondWait/CondSignal provide real mutex-paired condition
// variables).
type Signal struct{ C SyncID }

// CondWait atomically releases mutex M, blocks on condition C, and
// reacquires M before continuing — POSIX pthread_cond_wait semantics. The
// caller must hold M. As with POSIX, a wait only returns after a
// CondSignal/CondBroadcast that arrives while it is blocked (no buffering);
// programs must encode their predicate loops accordingly.
type CondWait struct {
	C SyncID
	M SyncID
}

// CondSignal wakes one waiter blocked on C (none → no-op, as POSIX).
type CondSignal struct{ C SyncID }

// CondBroadcast wakes every waiter blocked on C.
type CondBroadcast struct{ C SyncID }

// Wait pends on semaphore C, blocking until a post is available.
type Wait struct{ C SyncID }

// Barrier blocks until N threads have arrived at barrier B.
type Barrier struct {
	B SyncID
	N int
}

// Syscall models a system call of the given cost. Hidden system calls are
// ones the instrumenter does not know about (the paper's "misprofiling" of
// third-party libraries, §7): no transaction cut is inserted around them, so
// on the fast path they abort the enclosing transaction with an unknown
// status.
type Syscall struct {
	Name   string
	Cycles int64
	Hidden bool
}

// Loop executes Body Count times. The induction variable is exposed to
// AddrLoop expressions and, after instrumentation, to LoopCheck.
type Loop struct {
	ID    LoopID
	Count int
	Body  []Instr
}

// TxBegin and TxEnd are inserted by the instrumenter at synchronization-free
// region boundaries (§4.1). Small marks regions whose static memory-access
// count is below the K threshold; the runtime routes them straight to the
// slow path (§4.3, third optimization).
type TxBegin struct {
	Small bool
	// StaticAccesses is the instrumenter's static memory-op count for the
	// region, kept for diagnostics.
	StaticAccesses int
}

// TxEnd closes the current transactional region.
type TxEnd struct{}

// LoopCheck is inserted by the instrumenter at the end of a cut-candidate
// loop body. The runtime uses it both as its stand-in for the Last Branch
// Record (attributing capacity aborts to a loop) and as the place where the
// loop-cut optimization splits a transaction (§4.3).
type LoopCheck struct{ ID LoopID }

func (*MemAccess) isInstr()     {}
func (*Compute) isInstr()       {}
func (*Delay) isInstr()         {}
func (*Lock) isInstr()          {}
func (*Unlock) isInstr()        {}
func (*RLock) isInstr()         {}
func (*RUnlock) isInstr()       {}
func (*WLock) isInstr()         {}
func (*WUnlock) isInstr()       {}
func (*AtomicRMW) isInstr()     {}
func (*Signal) isInstr()        {}
func (*CondWait) isInstr()      {}
func (*CondSignal) isInstr()    {}
func (*CondBroadcast) isInstr() {}
func (*Wait) isInstr()          {}
func (*Barrier) isInstr()       {}
func (*Syscall) isInstr()       {}
func (*Loop) isInstr()          {}
func (*TxBegin) isInstr()       {}
func (*TxEnd) isInstr()         {}
func (*LoopCheck) isInstr()     {}

// Program is a complete multithreaded program: a single-threaded Setup on
// the main thread, Workers spawned together afterwards, and a
// single-threaded Teardown after all workers are joined. Fork and join
// events carry the usual happens-before edges.
type Program struct {
	Name     string
	Setup    []Instr
	Workers  [][]Instr
	Teardown []Instr
}

// Threads returns the total thread count including main.
func (p *Program) Threads() int { return len(p.Workers) + 1 }

// Validate performs structural checks: loop counts non-negative, no nested
// identical loop ids on one path. Conditions that need execution context to
// report well (non-positive barrier widths, zero-range random addresses,
// unlocks without the hold) are left to the interpreters, which surface them
// as *ProgramError with the offending thread, pc, and object.
func (p *Program) Validate() error {
	check := func(body []Instr, where string) error {
		var walk func([]Instr, []LoopID) error
		walk = func(b []Instr, stack []LoopID) error {
			for _, in := range b {
				switch in := in.(type) {
				case *Loop:
					if in.Count < 0 {
						return fmt.Errorf("%s: loop %d has negative count %d", where, in.ID, in.Count)
					}
					for _, id := range stack {
						if id == in.ID {
							return fmt.Errorf("%s: loop id %d nested inside itself", where, in.ID)
						}
					}
					if err := walk(in.Body, append(stack, in.ID)); err != nil {
						return err
					}
				case *Compute:
					if in.Cycles < 0 {
						return fmt.Errorf("%s: negative compute", where)
					}
				}
			}
			return nil
		}
		return walk(body, nil)
	}
	if err := check(p.Setup, "setup"); err != nil {
		return err
	}
	for i, w := range p.Workers {
		if err := check(w, fmt.Sprintf("worker %d", i)); err != nil {
			return err
		}
	}
	return check(p.Teardown, "teardown")
}

// CountAccesses returns the static number of memory-access instructions in
// body, with loop bodies multiplied by their trip counts. The instrumenter
// uses it for the K-threshold region classification.
func CountAccesses(body []Instr) int {
	n := 0
	for _, in := range body {
		switch in := in.(type) {
		case *MemAccess:
			n++
		case *Loop:
			n += CountAccesses(in.Body) * in.Count
		}
	}
	return n
}

// ForEachInstr visits every instruction in body depth-first.
func ForEachInstr(body []Instr, f func(Instr)) {
	for _, in := range body {
		f(in)
		if l, ok := in.(*Loop); ok {
			ForEachInstr(l.Body, f)
		}
	}
}
