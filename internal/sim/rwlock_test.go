package sim

import "testing"

func TestRWLockReadersShareWritersExclude(t *testing.T) {
	// Two readers hold the lock across long computes; total runtime must
	// reflect concurrency (readers overlap), while the writer serializes.
	readers := func() []Instr {
		return []Instr{
			&RLock{M: 1},
			&Compute{Cycles: 10_000},
			&RUnlock{M: 1},
		}
	}
	p := &Program{Workers: [][]Instr{readers(), readers()}}
	res := run(t, p, &NopRuntime{}, quiet())
	if res.Makespan > 15_000 {
		t.Fatalf("readers serialized: makespan %d", res.Makespan)
	}

	writerBody := []Instr{
		&WLock{M: 1},
		&Compute{Cycles: 10_000},
		&WUnlock{M: 1},
	}
	p = &Program{Workers: [][]Instr{writerBody, writerBody}}
	res = run(t, p, &NopRuntime{}, quiet())
	if res.Makespan < 20_000 {
		t.Fatalf("writers overlapped: makespan %d", res.Makespan)
	}
}

func TestRWLockWriterExcludesReaders(t *testing.T) {
	// The writer grabs the lock first (the reader starts with a delay);
	// the reader's post-lock compute must start after the writer's hold.
	p := &Program{Workers: [][]Instr{
		{&WLock{M: 1}, &Compute{Cycles: 8_000}, &WUnlock{M: 1}},
		{&Compute{Cycles: 100}, &RLock{M: 1}, &Compute{Cycles: 10}, &RUnlock{M: 1}},
	}}
	res := run(t, p, &NopRuntime{}, quiet())
	if res.ThreadClocks[2] < 8_000 {
		t.Fatalf("reader entered during write hold: finished at %d", res.ThreadClocks[2])
	}
}

func TestRWLockKindsDelivered(t *testing.T) {
	kinds := map[SyncKind]int{}
	rec := &kindRecorder{kinds: kinds}
	p := &Program{Workers: [][]Instr{{
		&RLock{M: 1}, &RUnlock{M: 1},
		&WLock{M: 1}, &WUnlock{M: 1},
		&Lock{M: 2}, &Unlock{M: 2},
		&Signal{C: 3}, &Wait{C: 3},
	}, {&Compute{Cycles: 1}}}}
	run(t, p, rec, quiet())
	if kinds[SyncRead] != 2 || kinds[SyncWrite] != 2 || kinds[SyncMutex] != 2 || kinds[SyncSem] != 2 {
		t.Fatalf("kinds = %v", kinds)
	}
}

type kindRecorder struct {
	NopRuntime
	kinds map[SyncKind]int
}

func (r *kindRecorder) SyncAcquire(_ *Thread, _ SyncID, k SyncKind) { r.kinds[k]++ }
func (r *kindRecorder) SyncRelease(_ *Thread, _ SyncID, k SyncKind) { r.kinds[k]++ }

func TestRUnlockWithoutHoldIsProgramError(t *testing.T) {
	p := &Program{Workers: [][]Instr{{&RUnlock{M: 1}}}}
	_, err := NewEngine(quiet()).Run(p, &NopRuntime{})
	wantProgramError(t, err, "read-unlock", 1)
}

func TestWUnlockWithoutHoldIsProgramError(t *testing.T) {
	p := &Program{Workers: [][]Instr{{&WUnlock{M: 1}}}}
	_, err := NewEngine(quiet()).Run(p, &NopRuntime{})
	wantProgramError(t, err, "write-unlock", 1)
}

func TestRWLockManyPhases(t *testing.T) {
	// Mixed readers and writers across many iterations must terminate and
	// keep the hold counts balanced.
	reader := []Instr{&Loop{ID: 1, Count: 20, Body: []Instr{
		&RLock{M: 1}, &Compute{Cycles: 5}, &RUnlock{M: 1}, &Compute{Cycles: 3},
	}}}
	writer := []Instr{&Loop{ID: 2, Count: 20, Body: []Instr{
		&WLock{M: 1}, &Compute{Cycles: 5}, &WUnlock{M: 1}, &Compute{Cycles: 3},
	}}}
	p := &Program{Workers: [][]Instr{reader, reader, writer}}
	res := run(t, p, &NopRuntime{}, quiet())
	if res.SyncOps != 120 {
		t.Fatalf("sync ops = %d, want 120", res.SyncOps)
	}
}
