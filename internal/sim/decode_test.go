package sim

import (
	"fmt"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/prng"
)

// The decoded-stream interpreter (the default) must be observationally
// identical to the reference tree walk (Config.RefWalk): same Runtime event
// sequence with the same thread clocks, same Result, same Checkpoint/Restore
// behaviour. These tests run randomized programs through both interpreters
// and compare complete traces.

// diffRT records every runtime event as a formatted line including the
// executing thread's virtual clock, so any divergence in ordering, operands,
// or cycle charging shows up as a trace mismatch. When restore is set it
// checkpoints each thread at its first TxBegin and rewinds once at the
// following TxEnd, exercising Restore against decoded frames.
type diffRT struct {
	NopRuntime
	eng     *Engine
	log     []string
	restore bool
	snaps   map[int]Snapshot
	rewound map[int]bool
}

func (r *diffRT) add(format string, args ...any) {
	r.log = append(r.log, fmt.Sprintf(format, args...))
}

func (r *diffRT) Init(e *Engine) {
	r.eng = e
	r.snaps = map[int]Snapshot{}
	r.rewound = map[int]bool{}
}
func (r *diffRT) ThreadStart(t *Thread) { r.add("start t%d c%d", t.ID, t.Clock) }
func (r *diffRT) ThreadExit(t *Thread)  { r.add("exit t%d c%d", t.ID, t.Clock) }
func (r *diffRT) Fork(p, c *Thread)     { r.add("fork t%d->t%d c%d", p.ID, c.ID, c.Clock) }
func (r *diffRT) Joined(p, c *Thread)   { r.add("join t%d<-t%d c%d", p.ID, c.ID, p.Clock) }
func (r *diffRT) Interrupt(t *Thread)   { r.add("intr t%d c%d", t.ID, t.Clock) }
func (r *diffRT) Access(t *Thread, m *MemAccess, a memmodel.Addr) {
	r.add("acc t%d c%d a%#x w%v h%v s%d", t.ID, t.Clock, uint64(a), m.Write, m.Hooked, m.Site)
}
func (r *diffRT) Atomic(t *Thread, m *AtomicRMW, a memmodel.Addr) {
	r.add("rmw t%d c%d a%#x s%d", t.ID, t.Clock, uint64(a), m.Site)
}
func (r *diffRT) SyncAcquire(t *Thread, s SyncID, k SyncKind) {
	r.add("acq t%d c%d s%d k%d", t.ID, t.Clock, s, k)
}
func (r *diffRT) SyncRelease(t *Thread, s SyncID, k SyncKind) {
	r.add("rel t%d c%d s%d k%d", t.ID, t.Clock, s, k)
}
func (r *diffRT) SyscallEvent(t *Thread, sc *Syscall) {
	r.add("sys t%d c%d %s hid%v", t.ID, t.Clock, sc.Name, sc.Hidden)
}
func (r *diffRT) LoopCheckMark(t *Thread, lc *LoopCheck) {
	r.add("lchk t%d c%d l%d i%d", t.ID, t.Clock, lc.ID, t.LoopIter(0))
}
func (r *diffRT) TxBeginMark(t *Thread, m *TxBegin) {
	r.add("txb t%d c%d small%v", t.ID, t.Clock, m.Small)
	if r.restore {
		if _, ok := r.snaps[t.ID]; !ok {
			r.snaps[t.ID] = r.eng.Checkpoint(t)
		}
	}
}
func (r *diffRT) TxEndMark(t *Thread, m *TxEnd) {
	r.add("txe t%d c%d", t.ID, t.Clock)
	if r.restore && !r.rewound[t.ID] {
		if s, ok := r.snaps[t.ID]; ok {
			r.rewound[t.ID] = true
			r.eng.Restore(t, s)
		}
	}
}

// progGen builds random but deadlock-free programs: mutex and rwlock holds
// are balanced straight-line sections, every worker shares one body (so
// barrier arrival counts always match), and semaphores/condvars are covered
// by the fixed-shape test below instead.
type progGen struct {
	rng      prng.PRNG
	nextLoop LoopID
	nextSite SiteID
}

func (g *progGen) addrExpr() AddrExpr {
	switch g.rng.Intn(3) {
	case 0:
		return Fixed(memmodel.Addr(0x1000 + g.rng.Uint64n(64)*8))
	case 1:
		a := Indexed(memmodel.Addr(0x8000), 1+g.rng.Uint64n(3))
		a.Off = g.rng.Uint64n(4)
		a.Wrap = 32
		a.Depth = int(g.rng.Intn(2))
		return a
	default:
		return Random(memmodel.Addr(0x20000), 1+g.rng.Uint64n(128))
	}
}

// straight emits 1..n non-blocking instructions (safe inside lock holds).
func (g *progGen) straight(n int) []Instr {
	out := []Instr{}
	for i := int64(0); i < 1+g.rng.Intn(int64(n)); i++ {
		g.nextSite++
		switch g.rng.Intn(7) {
		case 0, 1, 2:
			out = append(out, &MemAccess{
				Write:  g.rng.Bool(0.5),
				Addr:   g.addrExpr(),
				Site:   g.nextSite,
				Hooked: g.rng.Bool(0.5),
			})
		case 3:
			out = append(out, &Compute{Cycles: g.rng.Intn(40)})
		case 4:
			out = append(out, &Delay{Max: g.rng.Intn(25)})
		case 5:
			out = append(out, &AtomicRMW{Addr: g.addrExpr(), Site: g.nextSite})
		default:
			out = append(out, &Syscall{
				Name:   fmt.Sprintf("sc%d", g.nextSite),
				Cycles: g.rng.Intn(400),
				Hidden: g.rng.Bool(0.3),
			})
		}
	}
	return out
}

func (g *progGen) body(depth int) []Instr {
	var out []Instr
	for i := int64(0); i < 2+g.rng.Intn(5); i++ {
		switch g.rng.Intn(10) {
		case 0, 1, 2:
			out = append(out, g.straight(3)...)
		case 3, 4: // counted loop, possibly zero-trip, possibly nested
			if depth < 2 {
				g.nextLoop++
				id := g.nextLoop
				body := g.body(depth + 1)
				body = append(body, &LoopCheck{ID: id})
				out = append(out, &Loop{ID: id, Count: int(g.rng.Intn(4)), Body: body})
			}
		case 5, 6: // balanced mutex section
			m := SyncID(1 + g.rng.Intn(3))
			out = append(out, &Lock{M: m})
			out = append(out, g.straight(3)...)
			out = append(out, &Unlock{M: m})
		case 7: // balanced rwlock section
			m := SyncID(10 + g.rng.Intn(2))
			if g.rng.Bool(0.5) {
				out = append(out, &RLock{M: m})
				out = append(out, g.straight(2)...)
				out = append(out, &RUnlock{M: m})
			} else {
				out = append(out, &WLock{M: m})
				out = append(out, g.straight(2)...)
				out = append(out, &WUnlock{M: m})
			}
		case 8: // transactional region marks
			out = append(out, &TxBegin{Small: g.rng.Bool(0.3)})
			out = append(out, g.straight(3)...)
			out = append(out, &TxEnd{})
		default:
			out = append(out, g.straight(2)...)
		}
	}
	return out
}

func (g *progGen) program(nworkers int) *Program {
	shared := g.body(0)
	// A barrier all workers pass through, spliced mid-body.
	shared = append(shared, &Barrier{B: 40, N: nworkers})
	shared = append(shared, g.body(0)...)
	workers := make([][]Instr, nworkers)
	for i := range workers {
		workers[i] = shared // one body: decode must memoize, barrier counts match
	}
	return &Program{
		Name:     "diff",
		Setup:    g.straight(4),
		Workers:  workers,
		Teardown: g.straight(4),
	}
}

func runBoth(t *testing.T, p *Program, cfg Config, restore bool) {
	t.Helper()
	cfg.MaxSteps = 1 << 22
	refCfg := cfg
	refCfg.RefWalk = true
	dec, ref := &diffRT{restore: restore}, &diffRT{restore: restore}
	decRes, decErr := NewEngine(cfg).Run(p, dec)
	refRes, refErr := NewEngine(refCfg).Run(p, ref)
	if (decErr == nil) != (refErr == nil) {
		t.Fatalf("error mismatch: decoded=%v ref=%v", decErr, refErr)
	}
	for i := 0; i < len(dec.log) && i < len(ref.log); i++ {
		if dec.log[i] != ref.log[i] {
			t.Fatalf("trace diverges at event %d:\n  decoded: %s\n  ref:     %s", i, dec.log[i], ref.log[i])
		}
	}
	if len(dec.log) != len(ref.log) {
		t.Fatalf("trace length %d != %d", len(dec.log), len(ref.log))
	}
	if decErr != nil {
		return
	}
	if decRes.Makespan != refRes.Makespan || decRes.TotalCycles != refRes.TotalCycles ||
		decRes.Instructions != refRes.Instructions || decRes.Accesses != refRes.Accesses ||
		decRes.HookedAccesses != refRes.HookedAccesses || decRes.SyncOps != refRes.SyncOps ||
		decRes.Syscalls != refRes.Syscalls || decRes.Interrupts != refRes.Interrupts {
		t.Fatalf("Result mismatch:\n  decoded: %+v\n  ref:     %+v", decRes, refRes)
	}
	if len(decRes.ThreadClocks) != len(refRes.ThreadClocks) {
		t.Fatalf("ThreadClocks length %d != %d", len(decRes.ThreadClocks), len(refRes.ThreadClocks))
	}
	for i := range decRes.ThreadClocks {
		if decRes.ThreadClocks[i] != refRes.ThreadClocks[i] {
			t.Fatalf("ThreadClocks[%d] %d != %d", i, decRes.ThreadClocks[i], refRes.ThreadClocks[i])
		}
	}
}

func TestDecodedMatchesTreeWalk(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := &progGen{rng: prng.New(seed * 2654435761)}
		nworkers := 2 + int(g.rng.Intn(3))
		p := g.program(nworkers)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid program: %v", seed, err)
		}
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Cores = 2 // oversubscribed: exercises interrupt scaling
		cfg.InterruptEvery = 3_000
		cfg.SpawnJitter = 500
		cfg.WakeJitter = 50
		runBoth(t, p, cfg, false)
	}
}

func TestDecodedMatchesTreeWalkWithRestore(t *testing.T) {
	for seed := uint64(20); seed <= 24; seed++ {
		g := &progGen{rng: prng.New(seed)}
		p := g.program(3)
		cfg := quiet()
		cfg.Seed = seed
		runBoth(t, p, cfg, true)
	}
}

// TestDecodedMatchesTreeWalkBlocking covers the sync shapes the random
// generator avoids for deadlock-freedom: semaphore producer/consumer and a
// mutex-paired condition variable ping-pong, both under interrupts.
func TestDecodedMatchesTreeWalkBlocking(t *testing.T) {
	const sem, cv, mu SyncID = 50, 51, 52
	producer := []Instr{&Loop{ID: 1, Count: 6, Body: []Instr{
		&Compute{Cycles: 30},
		&Signal{C: sem},
	}}}
	consumer := []Instr{&Loop{ID: 2, Count: 6, Body: []Instr{
		&Wait{C: sem},
		&MemAccess{Write: true, Addr: Fixed(0x100), Site: 1},
	}}}
	waiter := []Instr{
		&Lock{M: mu},
		&CondWait{C: cv, M: mu},
		&MemAccess{Addr: Fixed(0x200), Site: 2},
		&Unlock{M: mu},
	}
	signaller := []Instr{
		&Compute{Cycles: 5_000}, // let the waiter park first
		&Lock{M: mu},
		&CondSignal{C: cv},
		&Unlock{M: mu},
		&CondBroadcast{C: cv}, // no waiters: must be a no-op in both modes
	}
	p := &Program{
		Name:    "blocking",
		Workers: [][]Instr{producer, consumer, waiter, signaller},
	}
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.InterruptEvery = 2_000
	runBoth(t, p, cfg, false)
}

// TestDecodeMemoizesSharedBodies pins that workers sharing one []Instr are
// compiled once: the decoded-instruction counter sees a single copy plus the
// main wrapper.
func TestDecodeMemoizesSharedBodies(t *testing.T) {
	body := []Instr{&Compute{Cycles: 1}, &MemAccess{Addr: Fixed(0x10), Site: 1}}
	p := &Program{Workers: [][]Instr{body, body, body, body}}
	e := NewEngine(quiet())
	if _, err := e.Run(p, &NopRuntime{}); err != nil {
		t.Fatal(err)
	}
	// Shared worker body (2) decoded once + main's spawn/join wrapper (2).
	if e.decodedInstrs != 4 {
		t.Fatalf("decodedInstrs = %d, want 4 (shared bodies must decode once)", e.decodedInstrs)
	}
}
