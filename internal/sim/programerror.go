package sim

import (
	"fmt"
	"strings"
)

// ProgramError reports a malformed IR program detected during execution:
// an unlock of an unowned mutex, a read- or write-unlock without the hold,
// a cond-wait without the protecting mutex. It carries enough context to
// pinpoint the offending instruction, and Engine.Run returns it as an
// ordinary error — identical in decoded and RefWalk modes — so a CLI can
// print one line and exit non-zero instead of crashing with a Go panic.
type ProgramError struct {
	// Thread is the executing thread's id.
	Thread int
	// PC is the program counter within the thread's innermost frame at the
	// offending instruction (-1 if the thread had no frame).
	PC int
	// Op names the offending operation ("unlock", "read-unlock", ...).
	Op string
	// Object is the sync object the operation named.
	Object SyncID
	// Detail is the one-line diagnostic.
	Detail string
}

func (e *ProgramError) Error() string {
	return fmt.Sprintf("sim: malformed program: t%d pc=%d %s(%d): %s",
		e.Thread, e.PC, e.Op, e.Object, e.Detail)
}

// BlockedThread identifies one thread stuck when the scheduler found no
// runnable thread: its id and the program counter of the blocking
// instruction in its innermost frame (-1 if the thread had no frame).
type BlockedThread struct {
	Thread int
	PC     int
}

// DeadlockError reports that every live thread is blocked — the runtime
// shape of an unmatched join or wait (a Wait or WaitGroup join whose signal
// can never arrive). Like ProgramError it is a structured, ordinary error:
// callers get the offending threads and pcs instead of a crash, and the
// rendering is identical in decoded and RefWalk modes.
type DeadlockError struct {
	Blocked []BlockedThread // in thread-id order
}

func (e *DeadlockError) Error() string {
	parts := make([]string, len(e.Blocked))
	for i, b := range e.Blocked {
		parts[i] = fmt.Sprintf("t%d@pc=%d", b.Thread, b.PC)
	}
	return fmt.Sprintf("sim: deadlock, blocked threads: [%s]", strings.Join(parts, " "))
}

// programError aborts execution with a ProgramError; Engine.Run recovers it
// and returns it as the run's error. Both interpreters call this with the
// same op/detail strings, so the surfaced error is mode-independent (the
// decoder maps instructions 1:1, keeping pc indexes aligned).
func (e *Engine) programError(t *Thread, op string, obj SyncID, detail string) {
	pc := -1
	if len(t.frames) > 0 {
		pc = t.frames[len(t.frames)-1].pc
	}
	panic(&ProgramError{Thread: t.ID, PC: pc, Op: op, Object: obj, Detail: detail})
}
