package sim

// The workload builder interns synchronization objects into small dense
// SyncIDs (handed out sequentially from 1), so the engine keeps its
// mutex/rwlock/semaphore/barrier/condvar state in direct-indexed slices: the
// lookup on every sync instruction is an array index instead of a map probe.
// IDs outside the dense range (hand-built programs are free to use any
// uint32) fall back to a lazily created map.
const denseSyncLimit = 1 << 16

// syncTable maps SyncIDs to sync-object state of type T. The zero value is an
// empty table.
type syncTable[T any] struct {
	dense  []*T
	sparse map[SyncID]*T
}

// get returns the state for id, allocating a zero value on first use.
func (st *syncTable[T]) get(id SyncID) *T {
	if id < denseSyncLimit {
		if int(id) >= len(st.dense) {
			nd := make([]*T, int(id)+1)
			copy(nd, st.dense)
			st.dense = nd
		}
		v := st.dense[id]
		if v == nil {
			v = new(T)
			st.dense[id] = v
		}
		return v
	}
	if st.sparse == nil {
		st.sparse = make(map[SyncID]*T)
	}
	v := st.sparse[id]
	if v == nil {
		v = new(T)
		st.sparse[id] = v
	}
	return v
}

// presize grows the dense index once so per-instruction lookups never resize.
func (st *syncTable[T]) presize(maxID SyncID) {
	if maxID >= denseSyncLimit {
		maxID = denseSyncLimit - 1
	}
	if int(maxID) >= len(st.dense) {
		nd := make([]*T, int(maxID)+1)
		copy(nd, st.dense)
		st.dense = nd
	}
}

// maxSyncID scans a program for the largest SyncID it references, so the
// engine can intern the whole id space into dense tables before execution.
func maxSyncID(p *Program) SyncID {
	var max SyncID
	note := func(id SyncID) {
		if id > max && id < denseSyncLimit {
			max = id
		}
	}
	var walk func(body []Instr)
	walk = func(body []Instr) {
		for _, in := range body {
			switch in := in.(type) {
			case *Lock:
				note(in.M)
			case *Unlock:
				note(in.M)
			case *RLock:
				note(in.M)
			case *RUnlock:
				note(in.M)
			case *WLock:
				note(in.M)
			case *WUnlock:
				note(in.M)
			case *Signal:
				note(in.C)
			case *Wait:
				note(in.C)
			case *CondWait:
				note(in.C)
				note(in.M)
			case *CondSignal:
				note(in.C)
			case *CondBroadcast:
				note(in.C)
			case *Barrier:
				note(in.B)
			case *Loop:
				walk(in.Body)
			}
		}
	}
	walk(p.Setup)
	for _, w := range p.Workers {
		walk(w)
	}
	walk(p.Teardown)
	return max
}
