package sim

import "testing"

func TestCondWaitSignalRoundTrip(t *testing.T) {
	// Consumer: lock; wait for the "ready" signal; unlock.
	// Producer: long work; lock; signal; unlock.
	consumer := []Instr{
		&Lock{M: 1},
		&CondWait{C: 2, M: 1},
		&Compute{Cycles: 5},
		&Unlock{M: 1},
	}
	producer := []Instr{
		&Compute{Cycles: 10_000},
		&Lock{M: 1},
		&CondSignal{C: 2},
		&Unlock{M: 1},
	}
	p := &Program{Workers: [][]Instr{consumer, producer}}
	res := run(t, p, &NopRuntime{}, quiet())
	if res.ThreadClocks[1] < 10_000 {
		t.Fatalf("consumer returned from wait at %d, before the signal", res.ThreadClocks[1])
	}
}

func TestCondWaitReleasesMutexWhileBlocked(t *testing.T) {
	// If CondWait did not release the mutex, the producer could never lock
	// it to signal and this program would deadlock.
	consumer := []Instr{
		&Lock{M: 1},
		&CondWait{C: 2, M: 1},
		&Unlock{M: 1},
	}
	producer := []Instr{
		&Compute{Cycles: 50},
		&Lock{M: 1},
		&CondSignal{C: 2},
		&Unlock{M: 1},
	}
	p := &Program{Workers: [][]Instr{consumer, producer}}
	run(t, p, &NopRuntime{}, quiet()) // terminating at all is the assertion
}

func TestCondBroadcastWakesAll(t *testing.T) {
	waiter := []Instr{
		&Lock{M: 1},
		&CondWait{C: 2, M: 1},
		&Unlock{M: 1},
	}
	caster := []Instr{
		&Compute{Cycles: 200},
		&Lock{M: 1},
		&CondBroadcast{C: 2},
		&Unlock{M: 1},
	}
	p := &Program{Workers: [][]Instr{waiter, waiter, waiter, caster}}
	run(t, p, &NopRuntime{}, quiet())
}

func TestCondSignalNoWaitersIsNoop(t *testing.T) {
	p := &Program{Workers: [][]Instr{
		{&CondSignal{C: 2}, &CondBroadcast{C: 2}, &Compute{Cycles: 1}},
	}}
	run(t, p, &NopRuntime{}, quiet())
}

func TestCondWaitWithoutMutexIsProgramError(t *testing.T) {
	p := &Program{Workers: [][]Instr{{&CondWait{C: 2, M: 1}}}}
	_, err := NewEngine(quiet()).Run(p, &NopRuntime{})
	wantProgramError(t, err, "cond-wait", 1)
}

func TestCondLostSignalDeadlocks(t *testing.T) {
	// The signal fires before the wait starts; POSIX condvars do not
	// buffer, so the waiter blocks forever → deadlock error.
	waiter := []Instr{
		&Compute{Cycles: 10_000},
		&Lock{M: 1},
		&CondWait{C: 2, M: 1},
		&Unlock{M: 1},
	}
	early := []Instr{
		&Lock{M: 1},
		&CondSignal{C: 2},
		&Unlock{M: 1},
	}
	p := &Program{Workers: [][]Instr{waiter, early}}
	if _, err := NewEngine(quiet()).Run(p, &NopRuntime{}); err == nil {
		t.Fatal("lost wakeup did not deadlock — condvar is buffering signals")
	}
}

func TestCondWaitHappensBefore(t *testing.T) {
	// The waiter must observe both the condition edge and the mutex edge.
	rec := &recorder{}
	consumer := []Instr{
		&Lock{M: 1},
		&CondWait{C: 2, M: 1},
		&Unlock{M: 1},
	}
	producer := []Instr{
		&Compute{Cycles: 100},
		&Lock{M: 1},
		&CondSignal{C: 2},
		&Unlock{M: 1},
	}
	p := &Program{Workers: [][]Instr{consumer, producer}}
	run(t, p, rec, quiet())
	// Acquire events: consumer Lock(M), wait's (C then M), producer Lock(M).
	sawCond := false
	for _, s := range rec.acquires {
		if s == 2 {
			sawCond = true
		}
	}
	if !sawCond {
		t.Fatalf("no condition acquire edge delivered: %v", rec.acquires)
	}
}
