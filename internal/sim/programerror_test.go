package sim

import (
	"errors"
	"strings"
	"testing"
)

// wantProgramError asserts err is a *ProgramError with the given op and
// offending thread.
func wantProgramError(t *testing.T, err error, op string, thread int) {
	t.Helper()
	var pe *ProgramError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ProgramError", err)
	}
	if pe.Op != op || pe.Thread != thread {
		t.Fatalf("ProgramError = %+v, want op %q on t%d", pe, op, thread)
	}
}

// TestProgramErrorIdenticalBothModes pins the satellite contract: a
// malformed program surfaces the same structured error — same op, thread,
// pc, object, and rendered message — from the decoded interpreter and the
// RefWalk reference interpreter.
func TestProgramErrorIdenticalBothModes(t *testing.T) {
	progs := map[string]*Program{
		"unlock-unowned":    {Workers: [][]Instr{{&Compute{Cycles: 5}, &Unlock{M: 7}}}},
		"runlock-no-hold":   {Workers: [][]Instr{{&Compute{Cycles: 5}, &RUnlock{M: 3}}}},
		"wunlock-no-hold":   {Workers: [][]Instr{{&Compute{Cycles: 5}, &WUnlock{M: 4}}}},
		"condwait-no-mutex": {Workers: [][]Instr{{&Compute{Cycles: 5}, &CondWait{C: 9, M: 2}}}},
		"barrier-zero-n":    {Workers: [][]Instr{{&Compute{Cycles: 5}, &Barrier{B: 6, N: 0}}}},
		"barrier-negative":  {Workers: [][]Instr{{&Compute{Cycles: 5}, &Barrier{B: 6, N: -3}}}},
		"random-zero-range": {Workers: [][]Instr{{&Compute{Cycles: 5}, &MemAccess{Addr: AddrExpr{Mode: AddrRandom}, Site: 1}}}},
		"atomic-zero-range": {Workers: [][]Instr{{&Compute{Cycles: 5}, &AtomicRMW{Addr: AddrExpr{Mode: AddrRandom}, Site: 1}}}},
	}
	for name, p := range progs {
		t.Run(name, func(t *testing.T) {
			cfg := quiet()
			_, errDec := NewEngine(cfg).Run(p, &NopRuntime{})
			cfg.RefWalk = true
			_, errRef := NewEngine(cfg).Run(p, &NopRuntime{})

			var dec, ref *ProgramError
			if !errors.As(errDec, &dec) {
				t.Fatalf("decoded: err = %v, want *ProgramError", errDec)
			}
			if !errors.As(errRef, &ref) {
				t.Fatalf("RefWalk: err = %v, want *ProgramError", errRef)
			}
			if *dec != *ref {
				t.Fatalf("modes disagree:\n  decoded %+v\n  refwalk %+v", dec, ref)
			}
			if dec.Error() != ref.Error() {
				t.Fatalf("messages disagree: %q vs %q", dec.Error(), ref.Error())
			}
			if !strings.Contains(dec.Error(), "malformed program") {
				t.Fatalf("message %q lacks the malformed-program marker", dec.Error())
			}
			if dec.PC != 1 {
				t.Fatalf("pc = %d, want 1 (second instruction)", dec.PC)
			}
		})
	}
}

// TestUnmatchedJoinIsStructuredDeadlock pins the runtime shape of a join of
// a thread that never signals back (the frontend's lowering of `<-done` and
// wg.Wait is a semaphore Wait): a structured DeadlockError naming every
// blocked thread and pc, identical in both interpreter modes — not a panic,
// not an opaque string.
func TestUnmatchedJoinIsStructuredDeadlock(t *testing.T) {
	p := &Program{Workers: [][]Instr{
		{&Compute{Cycles: 5}},
		{&Compute{Cycles: 5}, &Wait{C: 1}}, // no one ever signals
	}}
	cfg := quiet()
	_, errDec := NewEngine(cfg).Run(p, &NopRuntime{})
	cfg.RefWalk = true
	_, errRef := NewEngine(cfg).Run(p, &NopRuntime{})

	var dec, ref *DeadlockError
	if !errors.As(errDec, &dec) {
		t.Fatalf("decoded: err = %v, want *DeadlockError", errDec)
	}
	if !errors.As(errRef, &ref) {
		t.Fatalf("RefWalk: err = %v, want *DeadlockError", errRef)
	}
	// Main (t0) is blocked at its implicit join, the waiter (t2) at the Wait.
	want := []BlockedThread{{Thread: 0, PC: 1}, {Thread: 2, PC: 1}}
	if len(dec.Blocked) != 2 || dec.Blocked[0] != want[0] || dec.Blocked[1] != want[1] {
		t.Fatalf("blocked = %+v, want %+v", dec.Blocked, want)
	}
	if dec.Error() != ref.Error() {
		t.Fatalf("modes disagree: %q vs %q", dec.Error(), ref.Error())
	}
	if !strings.Contains(dec.Error(), "deadlock") {
		t.Fatalf("message %q lacks the deadlock marker", dec.Error())
	}
}

// TestProgramErrorFields spot-checks the carried context on one shape.
func TestProgramErrorFields(t *testing.T) {
	p := &Program{Workers: [][]Instr{
		{&Compute{Cycles: 1}},
		{&Unlock{M: 42}},
	}}
	_, err := NewEngine(quiet()).Run(p, &NopRuntime{})
	var pe *ProgramError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ProgramError", err)
	}
	if pe.Thread != 2 || pe.Object != 42 || pe.PC != 0 || pe.Op != "unlock" {
		t.Fatalf("ProgramError = %+v, want t2 pc=0 unlock(42)", pe)
	}
}
