package sim

import (
	"strings"
	"testing"
)

func TestDumpRendersAllInstructionKinds(t *testing.T) {
	p := &Program{
		Name:  "demo",
		Setup: []Instr{&Compute{Cycles: 5}},
		Workers: [][]Instr{{
			&TxBegin{Small: true, StaticAccesses: 2},
			&MemAccess{Write: true, Addr: Fixed(64), Site: 1, Hooked: true},
			&MemAccess{Addr: Indexed(128, 2), Site: 2, Local: true},
			&MemAccess{Addr: Random(256, 8), Site: 3},
			&AtomicRMW{Addr: Fixed(512), Site: 4},
			&TxEnd{},
			&Loop{ID: 7, Count: 3, Body: []Instr{
				&Delay{Max: 10},
				&LoopCheck{ID: 7},
			}},
			&Lock{M: 1}, &Unlock{M: 1},
			&RLock{M: 2}, &RUnlock{M: 2}, &WLock{M: 2}, &WUnlock{M: 2},
			&Signal{C: 3}, &Wait{C: 3},
			&CondWait{C: 4, M: 1}, &CondSignal{C: 4}, &CondBroadcast{C: 4},
			&Barrier{B: 5, N: 4},
			&Syscall{Name: "read", Cycles: 100},
			&Syscall{Name: "lib", Cycles: 10, Hidden: true},
		}},
		Teardown: []Instr{&Compute{Cycles: 1}},
	}
	var sb strings.Builder
	Dump(&sb, p)
	out := sb.String()
	for _, want := range []string{
		`program "demo"`, "setup:", "worker 0:", "teardown:",
		"xbegin (2 accesses small)", "xend",
		"store  [0x40] @site 1 hooked",
		"load", "local",
		"rand(8)",
		"atomic [0x200] @site 4",
		"loop #7 x3 {", "loopcheck #7", "delay ≤10",
		"lock m1", "unlock m1", "rlock m2", "wlock m2",
		"signal c3", "wait c3",
		"condwait c4 m1", "condsignal c4", "condbroadcast c4",
		"barrier b5 n4",
		`syscall "read" 100`, `syscall "lib" 10 hidden`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q\n%s", want, out)
		}
	}
}

func TestDumpStable(t *testing.T) {
	p := &Program{Name: "x", Workers: [][]Instr{{&Compute{Cycles: 1}}}}
	var a, b strings.Builder
	Dump(&a, p)
	Dump(&b, p)
	if a.String() != b.String() {
		t.Fatal("dump output unstable")
	}
}
