package memmodel

import (
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct {
		addr Addr
		line Line
	}{
		{0, 0}, {1, 0}, {63, 0}, {64, 1}, {65, 1}, {127, 1}, {128, 2},
		{1 << 20, 1 << 14},
	}
	for _, c := range cases {
		if got := LineOf(c.addr); got != c.line {
			t.Errorf("LineOf(%d) = %d, want %d", c.addr, got, c.line)
		}
	}
}

func TestLineBaseRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		l := LineOf(a)
		base := LineBase(l)
		return base <= a && a < base+LineSize && LineOf(base) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSameLine(t *testing.T) {
	if !SameLine(100, 101) {
		t.Error("adjacent bytes on one line must share it")
	}
	if SameLine(63, 64) {
		t.Error("addresses across a line boundary must differ")
	}
}

func TestWordOf(t *testing.T) {
	if WordOf(0) != 0 || WordOf(7) != 0 || WordOf(8) != 1 || WordOf(16) != 2 {
		t.Errorf("word granule math wrong: %d %d %d %d",
			WordOf(0), WordOf(7), WordOf(8), WordOf(16))
	}
}

func TestLinesSpanned(t *testing.T) {
	cases := []struct {
		addr Addr
		size uint64
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 64, 1}, {0, 65, 2},
		{63, 1, 1}, {63, 2, 2}, {60, 8, 2}, {64, 64, 1},
	}
	for _, c := range cases {
		if got := LinesSpanned(c.addr, c.size); got != c.want {
			t.Errorf("LinesSpanned(%d, %d) = %d, want %d", c.addr, c.size, got, c.want)
		}
	}
}

func TestAllocatorNonOverlapping(t *testing.T) {
	al := NewAllocator(1 << 20)
	var prevEnd Addr = 0
	for i := 0; i < 100; i++ {
		a := al.AllocWords(10)
		if a < prevEnd {
			t.Fatalf("allocation %d at %#x overlaps previous end %#x", i, a, prevEnd)
		}
		prevEnd = a + 10*WordSize
	}
}

func TestAllocatorAlignment(t *testing.T) {
	al := NewAllocator(1 << 20)
	al.Alloc(3, 1) // misalign the bump pointer
	a := al.AllocLine()
	if uint64(a)%LineSize != 0 {
		t.Fatalf("AllocLine returned unaligned %#x", a)
	}
	b := al.Alloc(16, 8)
	if uint64(b)%8 != 0 {
		t.Fatalf("Alloc align=8 returned %#x", b)
	}
}

func TestAllocatorLineIsolation(t *testing.T) {
	// Line-aligned word allocations must never false-share.
	al := NewAllocator(1 << 20)
	a := al.AllocWords(1)
	b := al.AllocWords(1)
	if SameLine(a, b) {
		t.Fatalf("AllocWords results %#x and %#x share a cache line", a, b)
	}
}

func TestAllocatorBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two alignment must panic")
		}
	}()
	NewAllocator(64).Alloc(8, 3)
}

func TestNewAllocatorZeroBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero base must panic")
		}
	}()
	NewAllocator(0)
}

func TestMark(t *testing.T) {
	al := NewAllocator(1024)
	al.Alloc(100, 1)
	if al.Mark() != 1124 {
		t.Fatalf("Mark = %d, want 1124", al.Mark())
	}
}
