// Package memmodel defines the simulated address space used throughout the
// TxRace reproduction: plain 64-bit byte addresses, 64-byte cache lines
// (matching the Intel Haswell line size the paper's conflict-granularity
// discussion depends on), and a bump allocator for carving the space into
// named regions (shared heap, per-thread stacks, detector-private data).
//
// Memory in the simulator carries no values: data races are a property of
// which addresses are touched and in what happens-before order, never of the
// bytes stored there, so the entire model reduces to address arithmetic.
package memmodel

import "fmt"

// Addr is a simulated byte address.
type Addr uint64

// Line identifies a 64-byte cache line: Addr >> LineShift.
type Line uint64

const (
	// LineSize is the conflict-detection granularity of the simulated HTM,
	// matching the 64-byte lines of the Haswell L1 described in §2.2.
	LineSize = 64
	// LineShift is log2(LineSize).
	LineShift = 6
	// WordSize is the granularity at which the slow-path detector tracks
	// accesses (8 application bytes per shadow granule, as in TSan).
	WordSize = 8
)

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// LineBase returns the first address of line l.
func LineBase(l Line) Addr { return Addr(l) << LineShift }

// WordOf returns the 8-byte-granule index containing a, the unit keyed by
// slow-path shadow memory.
func WordOf(a Addr) uint64 { return uint64(a) / WordSize }

// SameLine reports whether a and b fall on the same cache line. Two
// different words on the same line are exactly the false-sharing case that
// makes fast-path conflicts only *potential* races (§2.2 challenge 2).
func SameLine(a, b Addr) bool { return LineOf(a) == LineOf(b) }

// LinesSpanned returns how many cache lines the size-byte access at a touches.
func LinesSpanned(a Addr, size uint64) int {
	if size == 0 {
		return 0
	}
	first := LineOf(a)
	last := LineOf(a + Addr(size) - 1)
	return int(last-first) + 1
}

// Allocator hands out non-overlapping address ranges. The zero value is not
// usable; construct with NewAllocator so the zero address stays reserved
// (it doubles as "no address" in a few data structures).
type Allocator struct {
	next Addr
}

// NewAllocator returns an allocator whose first allocation begins at base.
// base must be non-zero.
func NewAllocator(base Addr) *Allocator {
	if base == 0 {
		panic("memmodel: allocator base must be non-zero")
	}
	return &Allocator{next: base}
}

// Alloc reserves size bytes aligned to align (which must be a power of two)
// and returns the first address.
func (al *Allocator) Alloc(size, align uint64) Addr {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("memmodel: alignment %d is not a power of two", align))
	}
	a := (uint64(al.next) + align - 1) &^ (align - 1)
	al.next = Addr(a + size)
	return Addr(a)
}

// AllocWords reserves n words (8 bytes each), line-aligned, so a fresh
// allocation never false-shares with a previous one unless the workload
// arranges it deliberately.
func (al *Allocator) AllocWords(n int) Addr {
	return al.Alloc(uint64(n)*WordSize, LineSize)
}

// AllocLine reserves one whole cache line and returns its base address.
// Workloads use it for variables that must not false-share.
func (al *Allocator) AllocLine() Addr { return al.Alloc(LineSize, LineSize) }

// Mark returns the high-water mark: the next address that would be handed out.
func (al *Allocator) Mark() Addr { return al.next }
