package obs_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestLedgerMoveConservation pins Move's zero-sum contract: reattributing
// cycles between phases never changes the thread total.
func TestLedgerMoveConservation(t *testing.T) {
	l := obs.NewLedger()
	l.Add(0, obs.PhaseFast, 1000)
	l.Add(0, obs.PhaseApp, 200)
	tl := l.ThreadLedger(0)
	before := tl.Total()
	l.Move(0, obs.PhaseFast, obs.PhaseAbort, 700)
	if got := tl.Total(); got != before {
		t.Fatalf("Move changed the total: %d -> %d", before, got)
	}
	s := l.Snapshot()
	if s.Threads[0].Phases["fast"] != 300 || s.Threads[0].Phases["abort"] != 700 {
		t.Fatalf("phases after Move = %v", s.Threads[0].Phases)
	}
}

// TestLedgerMerge checks that merging forks is additive per thread and per
// cause — the property internal/runner relies on for job-count invariance.
func TestLedgerMerge(t *testing.T) {
	a := obs.NewLedger()
	a.Add(0, obs.PhaseFast, 10)
	a.Add(2, obs.PhaseSlow, 20)
	a.Abort(0, obs.AbortConflict, 5)

	b := obs.NewLedger()
	b.Add(0, obs.PhaseFast, 1)
	b.Add(1, obs.PhaseApp, 7)
	b.Abort(0, obs.AbortConflict, 3)
	b.Abort(2, obs.AbortCapacity, 9)

	a.Merge(b)
	s := a.Snapshot()
	if len(s.Threads) != 3 {
		t.Fatalf("threads after merge = %d, want 3", len(s.Threads))
	}
	if s.Threads[0].Phases["fast"] != 11 {
		t.Fatalf("t0 fast = %d, want 11", s.Threads[0].Phases["fast"])
	}
	if s.Threads[1].Phases["app"] != 7 || s.Threads[2].Phases["slow"] != 20 {
		t.Fatalf("merged threads = %+v", s.Threads)
	}
	if s.Threads[0].AbortCounts["conflict"] != 2 || s.Threads[0].AbortCycles["conflict"] != 8 {
		t.Fatalf("t0 aborts = %v / %v", s.Threads[0].AbortCounts, s.Threads[0].AbortCycles)
	}
	if s.Threads[2].AbortCounts["capacity"] != 1 {
		t.Fatalf("t2 aborts = %v", s.Threads[2].AbortCounts)
	}
	if s.Total.Total != 38 {
		t.Fatalf("total = %d, want 38", s.Total.Total)
	}

	// Merging nil (and merging into nil) is a no-op, not a crash.
	a.Merge(nil)
	var nilLedger *obs.Ledger
	nilLedger.Merge(a)
	nilLedger.Add(0, obs.PhaseApp, 1)
	if nilLedger.ThreadLedger(0) != nil {
		t.Fatal("nil ledger handed out a thread ledger")
	}
}

// TestLedgerSnapshotConcurrent snapshots while a writer charges — the
// single-writer/atomic-reader contract the telemetry endpoint depends on.
// The interesting assertion is the -race detector's: no load in Snapshot may
// race a ledger write. (A snapshot may legitimately land between the two
// halves of a Move, so no cross-phase invariant is asserted here; the
// engine's end-of-run conservation check owns that.)
func TestLedgerSnapshotConcurrent(t *testing.T) {
	l := obs.NewLedger()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			l.Add(i%4, obs.PhaseFast, 10)
			l.Move(i%4, obs.PhaseFast, obs.PhaseAbort, 4)
		}
	}()
	for i := 0; i < 200; i++ {
		s := l.Snapshot()
		if s.Total.Total < 0 {
			t.Fatalf("negative snapshot total %d", s.Total.Total)
		}
	}
	close(done)
	wg.Wait()
}

// TestWriteAttrib smoke-tests the text rendering.
func TestWriteAttrib(t *testing.T) {
	l := obs.NewLedger()
	l.Add(0, obs.PhaseApp, 25)
	l.Add(0, obs.PhaseFast, 50)
	l.Add(0, obs.PhaseSched, 25)
	l.Abort(0, obs.AbortSyscall, 12)
	var buf bytes.Buffer
	obs.WriteAttrib(&buf, l.Snapshot())
	out := buf.String()
	for _, want := range []string{"t0", "total", "fast%", "50.0", "25.0", "syscall", "12"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteAttrib output missing %q:\n%s", want, out)
		}
	}
}

// TestPhaseAndCauseNames pins the String() labels the JSON schema exposes.
func TestPhaseAndCauseNames(t *testing.T) {
	wantPhases := []string{"app", "fast", "slow", "abort", "governor", "sample", "sched"}
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		if p.String() != wantPhases[p] {
			t.Fatalf("Phase(%d) = %q, want %q", p, p.String(), wantPhases[p])
		}
	}
	wantCauses := []string{"conflict", "capacity", "unknown", "syscall", "fault"}
	for c := obs.AbortCause(0); c < obs.NumAbortCauses; c++ {
		if c.String() != wantCauses[c] {
			t.Fatalf("AbortCause(%d) = %q, want %q", c, c.String(), wantCauses[c])
		}
	}
}
