package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/report"
)

// WriteTimeline renders the event stream as a human-readable per-thread
// timeline: one section per simulated thread, rows in cycle order — the
// text analogue of the Chrome trace for terminal-only debugging.
func WriteTimeline(w io.Writer, events []Event) {
	byTID := map[int32][]Event{}
	for _, ev := range events {
		byTID[ev.TID] = append(byTID[ev.TID], ev)
	}
	tids := make([]int32, 0, len(byTID))
	for tid := range byTID {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })

	for _, tid := range tids {
		report.Section(w, fmt.Sprintf("thread %d", tid))
		tb := &report.Table{Header: []string{"cycle", "event", "detail"}}
		for _, ev := range byTID[tid] {
			tb.Add(ev.Time, ev.Kind.String(), eventDetail(ev))
		}
		tb.Write(w)
	}
}

func eventDetail(ev Event) string {
	switch ev.Kind {
	case KindTxCommit:
		return fmt.Sprintf("length=%d cycles", ev.Arg)
	case KindTxAbort:
		return fmt.Sprintf("status=%s cause=%s wasted=%d", StatusString(ev.Status), ev.Cause, ev.Arg)
	case KindTxRetry:
		return fmt.Sprintf("attempt=%d", ev.Arg)
	case KindTxFailBegin:
		return fmt.Sprintf("generation=%d", ev.Arg)
	case KindTxFailEnd:
		return fmt.Sprintf("episode=%d cycles", ev.Arg)
	case KindSlowEnter:
		return "cause=" + ev.Cause
	case KindSlowExit:
		return fmt.Sprintf("cause=%s duration=%d", ev.Cause, ev.Arg)
	case KindLoopCut:
		return fmt.Sprintf("loop=%d threshold=%d", ev.Loop, ev.Arg)
	case KindHTMConflict:
		return fmt.Sprintf("line=%#x winner=t%d", ev.Line, ev.Arg)
	default:
		return ""
	}
}
