package obs

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/report"
)

// Phase classifies where a thread's cycles go, mirroring the paper's
// overhead-attribution figures: uninstrumented application work, fast-path
// HTM execution, slow-path software detection, abort handling (wasted
// attempts, penalties, retry backoff), governor-forced slow regions, the
// sampling baseline's gate, and scheduler time (blocked-wake jumps, spawn
// skew) that belongs to no detector at all.
type Phase uint8

const (
	// PhaseApp: uninstrumented application execution (single-threaded mode,
	// between regions, and every runtime's base instruction costs).
	PhaseApp Phase = iota
	// PhaseFast: inside a hardware transaction, plus the fast path's fixed
	// costs (xbegin/xend, TxFail reads, fast-path sync tracking).
	PhaseFast
	// PhaseSlow: executing under the software happens-before detector — a
	// slow-path re-execution, a small/nohw region, or a TSan run's hooks.
	PhaseSlow
	// PhaseAbort: abort handling — the discarded cycles of an aborted
	// attempt, the abort penalty, the TxFail write, and retry backoff.
	PhaseAbort
	// PhaseGovernor: regions the fallback governor forced onto the slow path.
	PhaseGovernor
	// PhaseSample: the sampling baseline's per-access gate for skipped
	// accesses.
	PhaseSample
	// PhaseSched: scheduler time — the clock jumps of blocked threads waking,
	// wake latency and jitter, spawn skew, and join catch-up. Charged by the
	// engine itself so ledger totals equal thread clocks exactly.
	PhaseSched

	// NumPhases bounds the per-thread phase array.
	NumPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseApp:
		return "app"
	case PhaseFast:
		return "fast"
	case PhaseSlow:
		return "slow"
	case PhaseAbort:
		return "abort"
	case PhaseGovernor:
		return "governor"
	case PhaseSample:
		return "sample"
	case PhaseSched:
		return "sched"
	default:
		return "?"
	}
}

// AbortCause classifies one delivered transaction abort for the attribution
// ledger, one step finer than the RTM status word: syscall-boundary aborts
// (a hidden syscall's privilege-level change) and fault-injected aborts are
// split out of the unknown bucket, mirroring the paper's Figure 6 abort
// distribution.
type AbortCause uint8

const (
	// AbortConflict: a data-conflict abort (genuine or TxFail-induced).
	AbortConflict AbortCause = iota
	// AbortCapacity: transactional footprint overflow.
	AbortCapacity
	// AbortUnknown: an unexplained abort (timer interrupt, retry exhaustion).
	AbortUnknown
	// AbortSyscall: an unknown-status abort attributable to a hidden syscall
	// inside the transaction (the runtime injected the interrupt itself).
	AbortSyscall
	// AbortFault: an abort fabricated by the fault-injection engine.
	AbortFault

	// NumAbortCauses bounds the per-thread abort-cause arrays.
	NumAbortCauses
)

func (c AbortCause) String() string {
	switch c {
	case AbortConflict:
		return "conflict"
	case AbortCapacity:
		return "capacity"
	case AbortUnknown:
		return "unknown"
	case AbortSyscall:
		return "syscall"
	case AbortFault:
		return "fault"
	default:
		return "?"
	}
}

// ThreadLedger is one thread's attribution state. Fields update with atomic
// adds so a live telemetry reader ( /attrib ) can snapshot mid-run without a
// data race; the simulator is the only writer, so no compare-and-swap is
// ever needed.
type ThreadLedger struct {
	phase       [NumPhases]atomic.Int64
	abortCycles [NumAbortCauses]atomic.Int64
	abortCount  [NumAbortCauses]atomic.Uint64
}

// Add charges c cycles to phase p.
func (t *ThreadLedger) Add(p Phase, c int64) { t.phase[p].Add(c) }

// Move reattributes c cycles from one phase to another — the total is
// unchanged, so conservation against the thread clock survives. The runtime
// uses it when an abort reveals that cycles charged live as fast-path work
// were in fact a discarded attempt.
func (t *ThreadLedger) Move(from, to Phase, c int64) {
	t.phase[from].Add(-c)
	t.phase[to].Add(c)
}

// Abort records one delivered abort of the given cause costing c cycles.
func (t *ThreadLedger) Abort(cause AbortCause, c int64) {
	t.abortCount[cause].Add(1)
	t.abortCycles[cause].Add(c)
}

// AddAbortCycles folds additional cycles (a slow-path re-execution) into an
// already-recorded abort's cause without counting a new abort.
func (t *ThreadLedger) AddAbortCycles(cause AbortCause, c int64) {
	t.abortCycles[cause].Add(c)
}

// Total returns the sum across phases — by construction, the thread's
// virtual clock (Engine.Run verifies the equality when a ledger is attached).
func (t *ThreadLedger) Total() int64 {
	var sum int64
	for i := range t.phase {
		sum += t.phase[i].Load()
	}
	return sum
}

// Ledger is the run-wide cycle-attribution store: one ThreadLedger per
// simulated thread, a per-abort-cause breakdown alongside the per-phase one.
// The simulator mutates it single-threaded through pointers handed out by
// ThreadLedger(); concurrent readers (the telemetry endpoint, a flight
// recorder dump) snapshot safely via atomic loads. A nil *Ledger is the
// disabled state: every method is a no-op.
type Ledger struct {
	mu      sync.Mutex
	threads atomic.Pointer[[]*ThreadLedger]
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	l := &Ledger{}
	empty := []*ThreadLedger{}
	l.threads.Store(&empty)
	return l
}

// ThreadLedger returns tid's ledger, growing the table as needed. The
// returned pointer is stable; hot paths cache it per thread.
func (l *Ledger) ThreadLedger(tid int) *ThreadLedger {
	if l == nil || tid < 0 {
		return nil
	}
	ts := *l.threads.Load()
	if tid < len(ts) {
		return ts[tid]
	}
	return l.grow(tid)
}

func (l *Ledger) grow(tid int) *ThreadLedger {
	l.mu.Lock()
	defer l.mu.Unlock()
	ts := *l.threads.Load()
	if tid < len(ts) {
		return ts[tid]
	}
	grown := make([]*ThreadLedger, tid+1)
	copy(grown, ts)
	for i := len(ts); i <= tid; i++ {
		grown[i] = &ThreadLedger{}
	}
	l.threads.Store(&grown)
	return grown[tid]
}

// Add charges c cycles on tid's ledger to phase p. Nil-safe.
func (l *Ledger) Add(tid int, p Phase, c int64) {
	if l == nil {
		return
	}
	l.ThreadLedger(tid).Add(p, c)
}

// Move reattributes c cycles between phases on tid's ledger. Nil-safe.
func (l *Ledger) Move(tid int, from, to Phase, c int64) {
	if l == nil {
		return
	}
	l.ThreadLedger(tid).Move(from, to, c)
}

// Abort records one delivered abort on tid's ledger. Nil-safe.
func (l *Ledger) Abort(tid int, cause AbortCause, c int64) {
	if l == nil {
		return
	}
	l.ThreadLedger(tid).Abort(cause, c)
}

// AddAbortCycles folds re-execution cycles into tid's cause bucket. Nil-safe.
func (l *Ledger) AddAbortCycles(tid int, cause AbortCause, c int64) {
	if l == nil {
		return
	}
	l.ThreadLedger(tid).AddAbortCycles(cause, c)
}

// Merge folds another ledger into this one thread-by-thread, the attribution
// analogue of Metrics.Merge: internal/runner joins per-job forks back in plan
// order, so merged totals are independent of job scheduling. Nil receivers
// and nil arguments are no-ops.
func (l *Ledger) Merge(o *Ledger) {
	if l == nil || o == nil {
		return
	}
	ts := *o.threads.Load()
	for tid, tl := range ts {
		dst := l.ThreadLedger(tid)
		for p := range tl.phase {
			if v := tl.phase[p].Load(); v != 0 {
				dst.phase[p].Add(v)
			}
		}
		for c := range tl.abortCycles {
			if v := tl.abortCycles[c].Load(); v != 0 {
				dst.abortCycles[c].Add(v)
			}
		}
		for c := range tl.abortCount {
			if v := tl.abortCount[c].Load(); v != 0 {
				dst.abortCount[c].Add(v)
			}
		}
	}
}

// ThreadAttrib is the exported attribution of one thread (or, with TID -1,
// the whole run). Map keys are phase / abort-cause names, so JSON output is
// deterministic (encoding/json sorts map keys) and self-describing.
type ThreadAttrib struct {
	TID         int               `json:"tid"`
	Total       int64             `json:"total_cycles"`
	Phases      map[string]int64  `json:"phases"`
	AbortCycles map[string]int64  `json:"abort_cycles,omitempty"`
	AbortCounts map[string]uint64 `json:"abort_counts,omitempty"`
}

// LedgerSnapshot is a consistent point-in-time export of a Ledger.
type LedgerSnapshot struct {
	Threads []ThreadAttrib `json:"threads"`
	Total   ThreadAttrib   `json:"total"`
}

func (t *ThreadLedger) attrib(tid int) ThreadAttrib {
	a := ThreadAttrib{TID: tid, Phases: make(map[string]int64, NumPhases)}
	for p := Phase(0); p < NumPhases; p++ {
		v := t.phase[p].Load()
		a.Phases[p.String()] = v
		a.Total += v
	}
	for c := AbortCause(0); c < NumAbortCauses; c++ {
		if n := t.abortCount[c].Load(); n != 0 {
			if a.AbortCounts == nil {
				a.AbortCounts = make(map[string]uint64)
				a.AbortCycles = make(map[string]int64)
			}
			a.AbortCounts[c.String()] = n
			a.AbortCycles[c.String()] = t.abortCycles[c].Load()
		}
	}
	return a
}

// Snapshot exports every thread's attribution plus the run-wide total.
// Nil-safe: a nil ledger snapshots as empty.
func (l *Ledger) Snapshot() LedgerSnapshot {
	s := LedgerSnapshot{Total: ThreadAttrib{TID: -1, Phases: make(map[string]int64, NumPhases)}}
	for p := Phase(0); p < NumPhases; p++ {
		s.Total.Phases[p.String()] = 0
	}
	if l == nil {
		return s
	}
	ts := *l.threads.Load()
	for tid, tl := range ts {
		a := tl.attrib(tid)
		s.Threads = append(s.Threads, a)
		s.Total.Total += a.Total
		for name, v := range a.Phases {
			s.Total.Phases[name] += v
		}
		for name, v := range a.AbortCycles {
			if s.Total.AbortCycles == nil {
				s.Total.AbortCycles = make(map[string]int64)
				s.Total.AbortCounts = make(map[string]uint64)
			}
			s.Total.AbortCycles[name] += v
		}
		for name, v := range a.AbortCounts {
			s.Total.AbortCounts[name] += v
		}
	}
	return s
}

// pct renders a share of a total as a fixed-precision percentage; zero
// totals render as 0.0 so empty ledgers stay printable.
func pct(part, total int64) string {
	if total == 0 {
		return report.FormatFixed(0, 1)
	}
	return report.FormatFixed(100*float64(part)/float64(total), 1)
}

// WriteAttrib renders a ledger snapshot as the two text tables the paper's
// Figures 6 and 9 correspond to: per-thread (and total) cycle shares by
// phase, then the abort-cause mix.
func WriteAttrib(w io.Writer, s LedgerSnapshot) {
	tb := &report.Table{Header: []string{"thread", "cycles",
		"app%", "fast%", "slow%", "abort%", "governor%", "sample%", "sched%"}}
	row := func(label string, a ThreadAttrib) {
		tb.Add(label, a.Total,
			pct(a.Phases[PhaseApp.String()], a.Total),
			pct(a.Phases[PhaseFast.String()], a.Total),
			pct(a.Phases[PhaseSlow.String()], a.Total),
			pct(a.Phases[PhaseAbort.String()], a.Total),
			pct(a.Phases[PhaseGovernor.String()], a.Total),
			pct(a.Phases[PhaseSample.String()], a.Total),
			pct(a.Phases[PhaseSched.String()], a.Total))
	}
	for _, a := range s.Threads {
		row("t"+strconv.Itoa(a.TID), a)
	}
	row("total", s.Total)
	tb.Write(w)

	var aborts uint64
	for _, n := range s.Total.AbortCounts {
		aborts += n
	}
	if aborts == 0 {
		return
	}
	ab := &report.Table{Header: []string{"abort cause", "count", "count%", "cycles"}}
	for c := AbortCause(0); c < NumAbortCauses; c++ {
		n := s.Total.AbortCounts[c.String()]
		if n == 0 {
			continue
		}
		ab.Add(c.String(), n, pct(int64(n), int64(aborts)), s.Total.AbortCycles[c.String()])
	}
	ab.Write(w)
}
