package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// promPrefix namespaces every exported metric, per Prometheus convention.
const promPrefix = "txrace_"

// SanitizeMetricName maps a registry name ("txn.abort.conflict") to a legal
// Prometheus metric name ("txrace_txn_abort_conflict"): dots and any other
// character outside [a-zA-Z0-9_:] become underscores, and the txrace_
// namespace prefix is prepended.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): one TYPE comment per family, counters
// and gauges as bare samples, histograms as cumulative le-labelled buckets
// plus _sum and _count. Families are emitted in sorted name order, so output
// for a given snapshot is byte-stable — the golden test pins the format.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := SanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := SanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", p, p, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writePromHistogram(w, SanitizeMetricName(name), s.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, p string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", p); err != nil {
		return err
	}
	// Registry buckets are sparse per-bucket counts in ascending le order;
	// Prometheus buckets are cumulative, always ending at +Inf. The top
	// registry bucket (le = MaxInt64, the open one) renders as +Inf itself.
	cum := uint64(0)
	top := false
	for _, b := range h.Buckets {
		cum += b.N
		le := fmt.Sprintf("%d", b.Le)
		if b.Le == math.MaxInt64 {
			le, top = "+Inf", true
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", p, le, cum); err != nil {
			return err
		}
	}
	if !top {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", p, h.Count); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", p, h.Sum, p, h.Count)
	return err
}

// Telemetry is the opt-in live observability endpoint: an HTTP handler (and,
// via Serve, a server) exposing the current run's metrics registry and
// attribution ledger.
//
//	/metrics   Prometheus text exposition of every instrument
//	/snapshot  the registry's JSON snapshot (consistent point-in-time read)
//	/attrib    the attribution ledger's JSON snapshot (404 if none attached)
//
// The target registry/ledger pair is swappable mid-flight (SetTarget), so a
// multi-experiment driver like txbench can point one server at whichever
// experiment is currently running. All reads go through Snapshot(), which
// takes the registry's fold lock — a scrape during a parallel plan sees each
// per-job fold entirely or not at all.
type Telemetry struct {
	mu  sync.Mutex
	m   *Metrics
	led *Ledger

	srv *http.Server
	ln  net.Listener
}

// NewTelemetry returns an unstarted telemetry endpoint reading from m and
// led (either may be nil). Use Handler for tests or embedding; Serve to
// listen.
func NewTelemetry(m *Metrics, led *Ledger) *Telemetry {
	return &Telemetry{m: m, led: led}
}

// SetTarget atomically repoints the endpoint at a new registry/ledger pair.
func (t *Telemetry) SetTarget(m *Metrics, led *Ledger) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m, t.led = m, led
}

func (t *Telemetry) target() (*Metrics, *Ledger) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m, t.led
}

// Handler returns the endpoint's HTTP handler (for httptest or mounting
// under a larger mux).
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.handleMetrics)
	mux.HandleFunc("/snapshot", t.handleSnapshot)
	mux.HandleFunc("/attrib", t.handleAttrib)
	return mux
}

func (t *Telemetry) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m, _ := t.target()
	var s Snapshot
	if m != nil {
		s = m.Snapshot()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePrometheus(w, s)
}

func (t *Telemetry) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	m, _ := t.target()
	var s Snapshot
	if m != nil {
		s = m.Snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.WriteJSON(w)
}

func (t *Telemetry) handleAttrib(w http.ResponseWriter, r *http.Request) {
	_, led := t.target()
	w.Header().Set("Content-Type", "application/json")
	if led == nil {
		w.WriteHeader(http.StatusNotFound)
		_, _ = io.WriteString(w, "{\"error\":\"no attribution ledger attached\"}\n")
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(led.Snapshot())
}

// Serve binds addr (host:port; :0 picks a free port) and serves the endpoint
// on a background goroutine until Close.
func (t *Telemetry) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	t.ln = ln
	t.srv = &http.Server{Handler: t.Handler()}
	go func() { _ = t.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address ("" before Serve).
func (t *Telemetry) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Close stops the server (no-op if Serve was never called).
func (t *Telemetry) Close() error {
	if t.srv == nil {
		return nil
	}
	return t.srv.Close()
}
