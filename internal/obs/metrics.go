package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. Updates are atomic adds so a
// concurrent reader (the live telemetry endpoint, a flight-recorder dump)
// can load a coherent value mid-run; the recording side is still a single
// simulator goroutine per registry, so there is never write contention.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed level (live threads, open transactions).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is one bucket per power of two: bucket 0 holds values <= 1,
// bucket i holds (2^(i-1), 2^i]. 64 buckets cover every positive int64.
const histBuckets = 64

// Histogram accumulates a distribution in log-2 buckets — the right shape
// for cycle counts, whose interesting structure spans orders of magnitude
// (a 100-cycle transaction and a 1M-cycle TxFail episode on one scale).
// Like Counter, fields are atomics for reader visibility only: each registry
// has a single writer, so min/max updates need no compare-and-swap, and a
// concurrent snapshot is coherent per field (count may trail sum by the one
// observation in flight, which a text exposition tolerates by design).
type Histogram struct {
	count    atomic.Uint64
	sum      atomic.Int64
	min, max atomic.Int64
	buckets  [histBuckets]atomic.Uint64
}

// Observe records one value. Non-positive values land in bucket 0.
func (h *Histogram) Observe(v int64) {
	if n := h.count.Load(); n == 0 {
		h.min.Store(v)
		h.max.Store(v)
	} else {
		if v < h.min.Load() {
			h.min.Store(v)
		}
		if v > h.max.Load() {
			h.max.Store(v)
		}
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	if v > 1 {
		i = bits.Len64(uint64(v - 1)) // ceil(log2(v)): v in (2^(i-1), 2^i]
	}
	h.buckets[i].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket is one non-empty histogram bucket: N observations with value <= Le
// (and greater than the previous bucket's Le).
type Bucket struct {
	Le int64  `json:"le"`
	N  uint64 `json:"n"`
}

// HistogramSnapshot is the exported form of a Histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Min: h.min.Load(), Max: h.max.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(1)
		switch {
		case i == histBuckets-1:
			le = math.MaxInt64 // 1<<63 would overflow; the top bucket is open
		case i > 0:
			le = int64(1) << i
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, N: n})
	}
	return s
}

// Metrics is a registry of named instruments. Instruments are get-or-create
// by name; holders cache the returned pointer and update it directly, so
// steady-state recording never touches the maps.
//
// The mutex is the fold lock: it serializes registration (the map writes),
// Merge (internal/runner folding per-job registries back into a parent), and
// Snapshot. A snapshot therefore never observes a half-applied fold — it
// runs either before or after each per-job merge, never between a job's
// counter and that same job's histogram. Instrument updates through cached
// pointers deliberately stay outside the lock: they are atomic, and the
// writer is the run the registry belongs to.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero if needed.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero if needed.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty if needed.
func (m *Metrics) Histogram(name string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hists[name]
	if h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// Merge folds another registry into this one: counters and gauges add,
// histograms combine bucket-wise. Instruments missing on either side are
// created or carried over at their face value. Merging is how per-job
// registries (internal/runner forks one observer per measured run) fold back
// into an experiment's parent registry; merging the same set of registries
// in the same order always yields the same result, so aggregate metrics are
// independent of how the jobs were scheduled. The whole fold runs under the
// parent's fold lock, so a concurrent Snapshot sees each fold entirely or
// not at all; o must be quiescent (its job has finished).
func (m *Metrics) Merge(o *Metrics) {
	if o == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, c := range o.counters {
		m.counterLocked(name).Add(c.Value())
	}
	for name, g := range o.gauges {
		m.gaugeLocked(name).Add(g.Value())
	}
	for name, h := range o.hists {
		m.histogramLocked(name).merge(h)
	}
}

// counterLocked, gaugeLocked and histogramLocked are the get-or-create
// lookups for callers already holding mu (Merge), where the public getters
// would self-deadlock.
func (m *Metrics) counterLocked(name string) *Counter {
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

func (m *Metrics) gaugeLocked(name string) *Gauge {
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

func (m *Metrics) histogramLocked(name string) *Histogram {
	h := m.hists[name]
	if h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// merge folds another (quiescent) histogram into h bucket-wise.
func (h *Histogram) merge(o *Histogram) {
	oc := o.count.Load()
	if oc == 0 {
		return
	}
	hc := h.count.Load()
	if om := o.min.Load(); hc == 0 || om < h.min.Load() {
		h.min.Store(om)
	}
	if om := o.max.Load(); hc == 0 || om > h.max.Load() {
		h.max.Store(om)
	}
	h.count.Add(oc)
	h.sum.Add(o.sum.Load())
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
}

// Snapshot is a point-in-time export of a registry. Marshalling it with
// encoding/json is deterministic (map keys serialize sorted), so snapshots
// of identical runs are byte-identical.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot exports every registered instrument. It takes the fold lock, so
// a snapshot raced against runner folds sees each per-job merge fully
// applied or not at all — never a torn counter/histogram pair.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(m.counters)),
		Gauges:     make(map[string]int64, len(m.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(m.hists)),
	}
	for name, c := range m.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range m.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
