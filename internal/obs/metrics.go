package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
)

// Counter is a monotonically increasing count.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous signed level (live threads, open transactions).
type Gauge struct{ v int64 }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v += d }

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) { g.v = v }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// histBuckets is one bucket per power of two: bucket 0 holds values <= 1,
// bucket i holds (2^(i-1), 2^i]. 64 buckets cover every positive int64.
const histBuckets = 64

// Histogram accumulates a distribution in log-2 buckets — the right shape
// for cycle counts, whose interesting structure spans orders of magnitude
// (a 100-cycle transaction and a 1M-cycle TxFail episode on one scale).
type Histogram struct {
	count    uint64
	sum      int64
	min, max int64
	buckets  [histBuckets]uint64
}

// Observe records one value. Non-positive values land in bucket 0.
func (h *Histogram) Observe(v int64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := 0
	if v > 1 {
		i = bits.Len64(uint64(v - 1)) // ceil(log2(v)): v in (2^(i-1), 2^i]
	}
	h.buckets[i]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Bucket is one non-empty histogram bucket: N observations with value <= Le
// (and greater than the previous bucket's Le).
type Bucket struct {
	Le int64  `json:"le"`
	N  uint64 `json:"n"`
}

// HistogramSnapshot is the exported form of a Histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		le := int64(1)
		switch {
		case i == histBuckets-1:
			le = math.MaxInt64 // 1<<63 would overflow; the top bucket is open
		case i > 0:
			le = int64(1) << i
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, N: n})
	}
	return s
}

// Metrics is a registry of named instruments. Instruments are get-or-create
// by name; holders cache the returned pointer and update it directly, so
// steady-state recording never touches the maps.
type Metrics struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero if needed.
func (m *Metrics) Counter(name string) *Counter {
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero if needed.
func (m *Metrics) Gauge(name string) *Gauge {
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty if needed.
func (m *Metrics) Histogram(name string) *Histogram {
	h := m.hists[name]
	if h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// Merge folds another registry into this one: counters and gauges add,
// histograms combine bucket-wise. Instruments missing on either side are
// created or carried over at their face value. Merging is how per-job
// registries (internal/runner forks one observer per measured run) fold back
// into an experiment's parent registry; merging the same set of registries
// in the same order always yields the same result, so aggregate metrics are
// independent of how the jobs were scheduled.
func (m *Metrics) Merge(o *Metrics) {
	if o == nil {
		return
	}
	for name, c := range o.counters {
		m.Counter(name).Add(c.v)
	}
	for name, g := range o.gauges {
		m.Gauge(name).Add(g.v)
	}
	for name, h := range o.hists {
		m.Histogram(name).merge(h)
	}
}

// merge folds another histogram into h bucket-wise.
func (h *Histogram) merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
}

// Snapshot is a point-in-time export of a registry. Marshalling it with
// encoding/json is deterministic (map keys serialize sorted), so snapshots
// of identical runs are byte-identical.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot exports every registered instrument.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64, len(m.counters)),
		Gauges:     make(map[string]int64, len(m.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(m.hists)),
	}
	for name, c := range m.counters {
		s.Counters[name] = c.v
	}
	for name, g := range m.gauges {
		s.Gauges[name] = g.v
	}
	for name, h := range m.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
