package obs_test

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestSnapshotConsistentUnderMerge is the fold-lock contract: Merge holds
// the registry lock for its whole fold, so a concurrent Snapshot sees each
// merge entirely or not at all. The source registry bumps two counters by
// the same amount, so every snapshot must report them equal. Run under
// -race; the equality assertion also catches half-applied merges.
func TestSnapshotConsistentUnderMerge(t *testing.T) {
	src := obs.NewMetrics()
	src.Counter("pair.a").Add(1)
	src.Counter("pair.b").Add(1)
	src.Histogram("pair.h").Observe(3)

	dst := obs.NewMetrics()
	// Pre-register so snapshots always carry the families.
	dst.Counter("pair.a")
	dst.Counter("pair.b")
	dst.Histogram("pair.h")

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			dst.Merge(src)
		}
	}()

	for i := 0; i < 500; i++ {
		s := dst.Snapshot()
		if a, b := s.Counters["pair.a"], s.Counters["pair.b"]; a != b {
			t.Fatalf("torn snapshot: pair.a=%d pair.b=%d", a, b)
		}
		h := s.Histograms["pair.h"]
		if h.Sum != int64(h.Count)*3 {
			t.Fatalf("torn histogram: count=%d sum=%d", h.Count, h.Sum)
		}
		if s.Counters["pair.a"] != h.Count {
			t.Fatalf("counter/histogram skew: %d merges vs %d observations",
				s.Counters["pair.a"], h.Count)
		}
	}
	close(done)
	wg.Wait()
}

// TestMetricsMergeDeterminism: merging the same forks in the same order
// gives identical snapshots — the plan-order merge property.
func TestMetricsMergeDeterminism(t *testing.T) {
	mk := func() *obs.Metrics {
		m := obs.NewMetrics()
		m.Counter("c").Add(2)
		m.Gauge("g").Add(-1)
		m.Histogram("h").Observe(17)
		return m
	}
	run := func() obs.Snapshot {
		dst := obs.NewMetrics()
		for i := 0; i < 3; i++ {
			dst.Merge(mk())
		}
		return dst.Snapshot()
	}
	a, b := run(), run()
	if a.Counters["c"] != b.Counters["c"] || a.Counters["c"] != 6 {
		t.Fatalf("counter merge nondeterministic: %v vs %v", a.Counters, b.Counters)
	}
	if a.Gauges["g"] != -3 {
		t.Fatalf("gauge merge = %d, want -3", a.Gauges["g"])
	}
	if a.Histograms["h"].Count != 3 || a.Histograms["h"].Sum != 51 {
		t.Fatalf("histogram merge = %+v", a.Histograms["h"])
	}
}
