package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeEvent is one entry of the Chrome trace_event format (the JSON that
// chrome://tracing and Perfetto load). One simulated cycle is exported as
// one microsecond of trace time, so a 1M-cycle run renders as a 1 s
// timeline.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace_event document. OtherData is the
// format's free-form header; the exporter uses it to make truncated traces
// self-describing (dropped/retained event counts when the tracer ring
// wrapped). It stays absent for complete traces, so their output is
// unchanged.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// The exporter's synthetic track layout: every simulated thread gets its own
// tid under pid 0, and TxFail global-abort episodes render on a dedicated
// machine track so their extent across threads is visible at a glance.
const (
	chromePid         = 0
	chromeTxFailTrack = 1 << 20
)

// BuildChromeTrace converts a captured event stream into trace_event form.
// Paired lifecycle events (tx begin/commit/abort/retry, slow enter/exit,
// TxFail begin/end) become complete ("X") spans; everything else becomes a
// thread-scoped instant ("i"). Output order is deterministic for a given
// event stream.
func BuildChromeTrace(events []Event) *ChromeTrace {
	tr := &ChromeTrace{TraceEvents: []ChromeEvent{}, DisplayTimeUnit: "ms"}
	seen := map[int32]bool{}
	openTx := map[int32]int64{}   // tid -> tx begin time
	openSlow := map[int32]Event{} // tid -> slow-enter event
	var episodeStart int64
	episodeTid, episodeOpen := int32(0), false

	add := func(ev ChromeEvent) { tr.TraceEvents = append(tr.TraceEvents, ev) }
	span := func(tid int32, name string, from, to int64, args map[string]any) {
		add(ChromeEvent{Name: name, Cat: "txrace", Ph: "X", Ts: from, Dur: to - from,
			Pid: chromePid, Tid: int64(tid), Args: args})
	}
	instant := func(tid int32, name string, ts int64, args map[string]any) {
		add(ChromeEvent{Name: name, Cat: "txrace", Ph: "i", Ts: ts, S: "t",
			Pid: chromePid, Tid: int64(tid), Args: args})
	}

	for _, ev := range events {
		if !seen[ev.TID] && ev.Kind != KindTxFailBegin && ev.Kind != KindTxFailEnd {
			seen[ev.TID] = true
		}
		switch ev.Kind {
		case KindTxBegin:
			openTx[ev.TID] = ev.Time
		case KindTxCommit:
			from, ok := openTx[ev.TID]
			if !ok {
				from = ev.Time - ev.Arg
			}
			delete(openTx, ev.TID)
			span(ev.TID, "txn", from, ev.Time, map[string]any{"outcome": "commit", "cycles": ev.Arg})
		case KindTxAbort:
			from, ok := openTx[ev.TID]
			if !ok {
				from = ev.Time - ev.Arg
			}
			delete(openTx, ev.TID)
			span(ev.TID, "txn", from, ev.Time, map[string]any{
				"outcome": "abort", "status": StatusString(ev.Status),
				"status_raw": ev.Status, "cause": ev.Cause, "wasted_cycles": ev.Arg,
			})
		case KindTxRetry:
			from, ok := openTx[ev.TID]
			if !ok {
				from = ev.Time
			}
			delete(openTx, ev.TID)
			span(ev.TID, "txn", from, ev.Time, map[string]any{"outcome": "retry", "attempt": ev.Arg})
		case KindSlowEnter:
			openSlow[ev.TID] = ev
		case KindSlowExit:
			enter, ok := openSlow[ev.TID]
			from := ev.Time - ev.Arg
			cause := ev.Cause
			if ok {
				from, cause = enter.Time, enter.Cause
			}
			delete(openSlow, ev.TID)
			span(ev.TID, "slow:"+cause, from, ev.Time, map[string]any{"cause": cause, "cycles": ev.Arg})
		case KindTxFailBegin:
			episodeStart, episodeTid, episodeOpen = ev.Time, ev.TID, true
			instant(ev.TID, "txfail-write", ev.Time, map[string]any{"generation": ev.Arg})
		case KindTxFailEnd:
			from := ev.Time - ev.Arg
			if episodeOpen && episodeTid == ev.TID {
				from = episodeStart
			}
			episodeOpen = false
			add(ChromeEvent{Name: "txfail-episode", Cat: "txrace", Ph: "X",
				Ts: from, Dur: ev.Time - from, Pid: chromePid, Tid: chromeTxFailTrack,
				Args: map[string]any{"initiator": ev.TID, "cycles": ev.Arg}})
		case KindLoopCut:
			instant(ev.TID, "loop-cut", ev.Time, map[string]any{"loop": ev.Loop, "threshold": ev.Arg})
		case KindInterrupt:
			instant(ev.TID, "interrupt", ev.Time, nil)
		case KindThreadStart:
			instant(ev.TID, "thread-start", ev.Time, nil)
		case KindThreadExit:
			instant(ev.TID, "thread-exit", ev.Time, nil)
		case KindHTMConflict:
			instant(ev.TID, "htm-conflict", ev.Time, map[string]any{"line": ev.Line, "winner": ev.Arg})
		default:
			instant(ev.TID, ev.Kind.String(), ev.Time, nil)
		}
	}

	// Metadata: name the process and every thread track. Appended last, in
	// ascending tid order, so output stays deterministic.
	meta := []ChromeEvent{{
		Name: "process_name", Ph: "M", Pid: chromePid,
		Args: map[string]any{"name": "txrace sim"},
	}}
	for tid := int32(0); int(tid) <= maxTID(seen); tid++ {
		if !seen[tid] {
			continue
		}
		name := fmt.Sprintf("thread %d", tid)
		if tid == 0 {
			name = "thread 0 (main)"
		}
		meta = append(meta, ChromeEvent{Name: "thread_name", Ph: "M",
			Pid: chromePid, Tid: int64(tid), Args: map[string]any{"name": name}})
	}
	meta = append(meta, ChromeEvent{Name: "thread_name", Ph: "M",
		Pid: chromePid, Tid: chromeTxFailTrack, Args: map[string]any{"name": "txfail episodes"}})
	tr.TraceEvents = append(tr.TraceEvents, meta...)
	return tr
}

func maxTID(seen map[int32]bool) int {
	max := -1
	for tid := range seen {
		if int(tid) > max {
			max = int(tid)
		}
	}
	return max
}

// WriteChromeTrace converts events and writes the trace_event JSON to w.
// The output is byte-stable for identical event streams (struct field order
// is fixed and map-valued args marshal with sorted keys).
func WriteChromeTrace(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(BuildChromeTrace(events))
}

// WriteChromeTraceFrom exports a tracer's retained events, stamping the
// otherData header with the drop count when the ring wrapped so a truncated
// trace announces itself instead of silently posing as the whole run.
func WriteChromeTraceFrom(w io.Writer, t *Tracer) error {
	tr := BuildChromeTrace(t.Events())
	if d := t.Dropped(); d > 0 {
		tr.OtherData = map[string]any{
			"dropped_events":  d,
			"retained_events": t.Len(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}
