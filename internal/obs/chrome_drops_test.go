package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// TestChromeTraceDropHeader: when the ring wrapped, the exporter records the
// loss in the trace's otherData header; when it didn't, output is
// byte-identical to the plain event-slice exporter (so the golden file is
// unaffected by the header's existence).
func TestChromeTraceDropHeader(t *testing.T) {
	full := obs.NewTracer(128)
	small := obs.NewTracer(4)
	for i := 0; i < 10; i++ {
		ev := obs.Event{Kind: obs.KindTxBegin, TID: 0, Time: int64(i)}
		full.Emit(ev)
		small.Emit(ev)
	}

	var plain, fromFull bytes.Buffer
	if err := obs.WriteChromeTrace(&plain, full.Events()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTraceFrom(&fromFull, full); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), fromFull.Bytes()) {
		t.Fatal("drop-free WriteChromeTraceFrom diverged from WriteChromeTrace")
	}

	var dropped bytes.Buffer
	if err := obs.WriteChromeTraceFrom(&dropped, small); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(dropped.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.OtherData["dropped_events"] != float64(6) {
		t.Fatalf("otherData.dropped_events = %v, want 6", doc.OtherData["dropped_events"])
	}
	if doc.OtherData["retained_events"] != float64(4) {
		t.Fatalf("otherData.retained_events = %v, want 4", doc.OtherData["retained_events"])
	}
}
