package obs_test

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestFlightRecorderRoundTrip dumps a bundle and parses it back: events,
// ring-drop accounting, metrics, ledger, and governor digest all survive.
func TestFlightRecorderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	m := obs.NewMetrics()
	m.Counter("core.governor.trips").Add(3)
	m.Gauge("core.governor.state").Add(2)
	led := obs.NewLedger()
	led.Add(1, obs.PhaseSlow, 42)

	fr := obs.NewFlightRecorder(path, 4, m, led)
	for i := 0; i < 10; i++ {
		fr.Emit(obs.Event{Kind: obs.KindTxBegin, TID: 1, Time: int64(i)})
	}
	if err := fr.Dump("test"); err != nil {
		t.Fatalf("dump: %v", err)
	}

	b, err := obs.ReadFlightBundle(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if b.Reason != "test" || b.Dump != 1 {
		t.Fatalf("reason/dump = %q/%d", b.Reason, b.Dump)
	}
	if len(b.Events) != 4 || b.Dropped != 6 {
		t.Fatalf("events/dropped = %d/%d, want 4/6", len(b.Events), b.Dropped)
	}
	if b.Events[0].Time != 6 {
		t.Fatalf("oldest surviving event at t=%d, want 6", b.Events[0].Time)
	}
	if b.Metrics.Counters["core.governor.trips"] != 3 {
		t.Fatalf("metrics in bundle = %v", b.Metrics.Counters)
	}
	if b.Governor.Trips != 3 || b.Governor.DegradedThreads != 2 {
		t.Fatalf("governor digest = %+v", b.Governor)
	}
	if b.Attrib == nil || b.Attrib.Total.Phases["slow"] != 42 {
		t.Fatalf("attrib in bundle = %+v", b.Attrib)
	}
}

// TestFlightRecorderGovernorTrip checks the automatic trigger: a governor
// "global" event in the stream dumps without any caller involvement.
func TestFlightRecorderGovernorTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	fr := obs.NewFlightRecorder(path, 0, nil, nil)
	fr.Emit(obs.Event{Kind: obs.KindGovernor, TID: 0, Cause: "degrade"})
	if fr.Dumps() != 0 {
		t.Fatal("degrade event must not dump")
	}
	fr.Emit(obs.Event{Kind: obs.KindGovernor, TID: 0, Cause: "global", Arg: 8})
	if fr.Dumps() != 1 {
		t.Fatalf("dumps after global trip = %d, want 1", fr.Dumps())
	}
	b, err := obs.ReadFlightBundle(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if b.Reason != "governor-global-trip" {
		t.Fatalf("reason = %q", b.Reason)
	}
	if b.Attrib != nil {
		t.Fatal("bundle without a ledger must omit attrib")
	}
}

// malformedProgram unlocks a mutex it never locked — the canonical
// sim.ProgramError.
func malformedProgram() *sim.Program {
	al := memmodel.NewAllocator(1 << 16)
	x := al.AllocLine()
	return &sim.Program{
		Name: "malformed",
		Workers: [][]sim.Instr{{
			&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: 1},
			&sim.Unlock{M: 1},
		}},
	}
}

// TestFlightRecorderProgramError is the end-to-end post-mortem path the cmds
// wire up: run a malformed program with the recorder teeing the event
// stream, get the *sim.ProgramError back, dump, parse, and find the thread's
// last events in the bundle.
func TestFlightRecorderProgramError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	m := obs.NewMetrics()
	led := obs.NewLedger()
	fr := obs.NewFlightRecorder(path, 0, m, led)

	o := obs.New(fr, m)
	o.AttachLedger(led)
	cfg := sim.DefaultConfig()
	cfg.Seed = 7
	cfg.Obs = o
	ip := instrument.ForTxRace(malformedProgram(), instrument.DefaultOptions())
	_, err := sim.NewEngine(cfg).Run(ip, core.NewTxRace(core.Options{Obs: o}))
	var pe *sim.ProgramError
	if !errors.As(err, &pe) {
		t.Fatalf("want *sim.ProgramError, got %v", err)
	}
	if err := fr.Dump("program-error"); err != nil {
		t.Fatalf("dump: %v", err)
	}

	b, rerr := obs.ReadFlightBundle(path)
	if rerr != nil {
		t.Fatalf("read: %v", rerr)
	}
	if b.Reason != "program-error" {
		t.Fatalf("reason = %q", b.Reason)
	}
	if len(b.Events) == 0 {
		t.Fatal("bundle carries no events")
	}
	var sawStart bool
	for _, ev := range b.Events {
		if ev.Kind == obs.KindThreadStart {
			sawStart = true
		}
	}
	if !sawStart {
		t.Fatalf("no thread-start among %d events", len(b.Events))
	}
	if b.Attrib == nil || b.Attrib.Total.Total == 0 {
		t.Fatalf("attrib in bundle = %+v (cycles ran before the error)", b.Attrib)
	}
}

// TestFlightRecorderConcurrentEmitDump hammers Emit and Dump from separate
// goroutines — the signal-handler race the recorder's mutex exists for.
// Run under -race.
func TestFlightRecorderConcurrentEmitDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	fr := obs.NewFlightRecorder(path, 64, obs.NewMetrics(), obs.NewLedger())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			fr.Emit(obs.Event{Kind: obs.KindTxBegin, Time: int64(i)})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := fr.Dump("race"); err != nil {
				t.Errorf("dump: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if _, err := obs.ReadFlightBundle(path); err != nil {
		t.Fatalf("final bundle unreadable: %v", err)
	}
}

// TestMultiSink pins the nil-collapsing contract cmds rely on.
func TestMultiSink(t *testing.T) {
	if obs.MultiSink() != nil || obs.MultiSink(nil, nil) != nil {
		t.Fatal("MultiSink of no live sinks must be nil")
	}
	tr := obs.NewTracer(8)
	if got := obs.MultiSink(nil, tr, nil); got != obs.Sink(tr) {
		t.Fatal("MultiSink of one live sink must be that sink")
	}
	tr2 := obs.NewTracer(8)
	tee := obs.MultiSink(tr, tr2)
	tee.Emit(obs.Event{Kind: obs.KindTxBegin})
	if tr.Len() != 1 || tr2.Len() != 1 {
		t.Fatalf("tee delivered %d/%d, want 1/1", tr.Len(), tr2.Len())
	}
}
