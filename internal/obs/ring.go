package obs

// Tracer is the default Sink: a fixed-capacity ring buffer of events. When
// the buffer fills, the oldest events are overwritten and counted as
// dropped — tracing never grows memory without bound, so it is safe to leave
// attached to arbitrarily long runs.
type Tracer struct {
	buf   []Event
	total uint64
}

// DefaultTracerCapacity holds every event of the test-scale workloads with
// room to spare; raise it (or shrink it) via NewTracer for other scales.
const DefaultTracerCapacity = 1 << 20

// NewTracer returns a ring tracer holding up to capacity events;
// non-positive capacities get DefaultTracerCapacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit implements Sink.
func (t *Tracer) Emit(ev Event) {
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.total%uint64(cap(t.buf))] = ev
	}
	t.total++
}

// Len returns the number of retained events.
func (t *Tracer) Len() int { return len(t.buf) }

// Dropped returns how many events were overwritten by newer ones.
func (t *Tracer) Dropped() uint64 {
	if n := uint64(cap(t.buf)); t.total > n {
		return t.total - n
	}
	return 0
}

// Events returns the retained events oldest-first. The returned slice is a
// copy; the tracer may keep recording.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, len(t.buf))
	if t.total > uint64(cap(t.buf)) {
		head := int(t.total % uint64(cap(t.buf)))
		out = append(out, t.buf[head:]...)
		out = append(out, t.buf[:head]...)
		return out
	}
	return append(out, t.buf...)
}

// Reset discards all retained events and the drop count.
func (t *Tracer) Reset() {
	t.buf = t.buf[:0]
	t.total = 0
}
