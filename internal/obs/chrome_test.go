package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// racyProgram is a tiny two-worker program with one unprotected shared store
// each (a write-write race) and enough private work that the transactions
// overlap — the smallest workload that exercises begin/commit/abort, the
// slow path and a TxFail episode.
func racyProgram() *sim.Program {
	al := memmodel.NewAllocator(1 << 20)
	x := al.AllocLine()
	counter := al.AllocLine()
	priv0 := al.AllocWords(64)
	priv1 := al.AllocWords(64)

	const mu sim.SyncID = 1

	worker := func(priv memmodel.Addr, site sim.SiteID) []sim.Instr {
		return []sim.Instr{
			&sim.Loop{ID: 1, Count: 20, Body: []sim.Instr{
				&sim.MemAccess{Write: true, Addr: sim.Indexed(priv, 1), Site: 1},
				&sim.Compute{Cycles: 5},
			}},
			&sim.MemAccess{Write: true, Addr: sim.Fixed(x), Site: site}, // racy
			&sim.Loop{ID: 2, Count: 20, Body: []sim.Instr{
				&sim.MemAccess{Write: false, Addr: sim.Indexed(priv, 1), Site: 2},
				&sim.Compute{Cycles: 5},
			}},
			// A properly locked section splits the worker into multiple
			// transactional regions, so the trace also shows commits.
			&sim.Lock{M: mu},
			&sim.MemAccess{Write: true, Addr: sim.Fixed(counter), Site: 200},
			&sim.MemAccess{Write: false, Addr: sim.Fixed(counter), Site: 201},
			&sim.MemAccess{Write: true, Addr: sim.Fixed(counter), Site: 202},
			&sim.MemAccess{Write: false, Addr: sim.Fixed(counter), Site: 203},
			&sim.MemAccess{Write: true, Addr: sim.Fixed(counter), Site: 204},
			&sim.Unlock{M: mu},
			&sim.Loop{ID: 3, Count: 20, Body: []sim.Instr{
				&sim.MemAccess{Write: true, Addr: sim.Indexed(priv, 1), Site: 3},
				&sim.Compute{Cycles: 5},
			}},
		}
	}

	return &sim.Program{
		Name:    "golden",
		Workers: [][]sim.Instr{worker(priv0, 100), worker(priv1, 101)},
	}
}

// runObserved executes the racy program under TxRace with a tracer and a
// metrics registry attached, on a fully deterministic engine configuration.
func runObserved(t *testing.T) (*obs.Tracer, *obs.Metrics, *core.TxRace) {
	t.Helper()
	tracer := obs.NewTracer(0)
	metrics := obs.NewMetrics()
	rt := core.NewTxRace(core.Options{Obs: obs.New(tracer, metrics)})

	cfg := sim.DefaultConfig()
	cfg.Seed = 42
	cfg.InterruptEvery = 0
	cfg.SpawnJitter = 0
	cfg.MaxSteps = 1 << 22
	ip := instrument.ForTxRace(racyProgram(), instrument.DefaultOptions())
	if _, err := sim.NewEngine(cfg).Run(ip, rt); err != nil {
		t.Fatalf("run: %v", err)
	}
	return tracer, metrics, rt
}

// TestChromeTraceGolden pins the exporter's output byte-for-byte for a fixed
// seed. Regenerate with: go test ./internal/obs -run Golden -update
func TestChromeTraceGolden(t *testing.T) {
	tracer, _, _ := runObserved(t)
	var got bytes.Buffer
	if err := obs.WriteChromeTrace(&got, tracer.Events()); err != nil {
		t.Fatalf("export: %v", err)
	}

	golden := filepath.Join("testdata", "golden_trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("trace diverged from golden file (len %d vs %d); rerun with -update if the change is intended",
			got.Len(), len(want))
	}
}

// TestChromeTraceRoundTrip re-parses the export through encoding/json and
// checks the trace_event contract: every event carries ph, ts, pid and tid,
// complete events carry non-negative durations, and instants carry a scope.
func TestChromeTraceRoundTrip(t *testing.T) {
	tracer, _, _ := runObserved(t)
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tracer.Events()); err != nil {
		t.Fatalf("export: %v", err)
	}

	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	sawSpan, sawInstant, sawMeta := false, false, false
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"ph", "ts", "pid", "tid", "name"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			sawSpan = true
			if dur, ok := ev["dur"].(float64); ok && dur < 0 {
				t.Fatalf("event %d has negative duration: %v", i, ev)
			}
		case "i":
			sawInstant = true
			if ev["s"] != "t" {
				t.Fatalf("instant %d missing thread scope: %v", i, ev)
			}
		case "M":
			sawMeta = true
		default:
			t.Fatalf("event %d has unexpected phase %v", i, ev["ph"])
		}
	}
	if !sawSpan || !sawInstant || !sawMeta {
		t.Fatalf("trace lacks a phase: span=%v instant=%v meta=%v", sawSpan, sawInstant, sawMeta)
	}
}

// TestMetricsMatchRuntimeStats is the acceptance check: for one seeded run,
// every abort counter in the metrics snapshot equals the runtime's own Stats
// and the machine's own htm.Stats exactly.
func TestMetricsMatchRuntimeStats(t *testing.T) {
	_, metrics, rt := runObserved(t)
	snap := metrics.Snapshot()
	st := rt.Stats()
	hw := rt.HWStats()

	counters := map[string]uint64{
		"txn.commit":           st.CommittedTxns,
		"txn.abort.conflict":   st.ConflictAborts,
		"txn.abort.artificial": st.ArtificialAborts,
		"txn.abort.capacity":   st.CapacityAborts,
		"txn.abort.unknown":    st.UnknownAborts,
		"txn.retry":            st.Retries,
		"txn.loopcut":          st.LoopCuts,
		"slow.region.conflict": st.SlowRegions[core.CauseConflict],
		"slow.region.capacity": st.SlowRegions[core.CauseCapacity],
		"slow.region.unknown":  st.SlowRegions[core.CauseUnknown],
		"slow.region.small":    st.SlowRegions[core.CauseSmall],
		"htm.begin":            hw.Begins,
		"htm.commit":           hw.Commits,
		"htm.abort.conflict":   hw.ConflictAborts,
		"htm.abort.capacity":   hw.CapacityAborts,
		"htm.abort.unknown":    hw.UnknownAborts,
		"htm.abort.explicit":   hw.ExplicitAborts,
	}
	for name, want := range counters {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d (runtime/machine stats)", name, got, want)
		}
	}
	// The run must have actually exercised the interesting paths, or the
	// equalities above are vacuous.
	if st.CommittedTxns == 0 || st.ConflictAborts == 0 {
		t.Fatalf("degenerate run: stats %+v", st)
	}
	if snap.Gauges["txn.active"] != 0 || snap.Gauges["threads.live"] != 0 {
		t.Fatalf("gauges not balanced at exit: %+v", snap.Gauges)
	}
}
