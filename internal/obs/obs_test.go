package obs

import (
	"bytes"
	"math"
	"testing"
)

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindTxBegin, Time: int64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d", len(evs))
	}
	// Oldest-first: the survivors are times 6..9.
	for i, ev := range evs {
		if ev.Time != int64(6+i) {
			t.Fatalf("Events[%d].Time = %d, want %d (oldest-first after wrap)", i, ev.Time, 6+i)
		}
	}
}

func TestTracerNoWrap(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 3; i++ {
		tr.Emit(Event{Time: int64(i)})
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d before the ring fills", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Time != 0 || evs[2].Time != 2 {
		t.Fatalf("Events = %v", evs)
	}
	// The returned slice is a copy: recording more must not change it.
	tr.Emit(Event{Time: 99})
	if evs[0].Time != 0 || len(evs) != 3 {
		t.Fatal("Events result aliased the live buffer")
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Time: int64(i)})
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after Reset: Len=%d Dropped=%d", tr.Len(), tr.Dropped())
	}
	tr.Emit(Event{Time: 7})
	if evs := tr.Events(); len(evs) != 1 || evs[0].Time != 7 {
		t.Fatalf("post-reset Events = %v", evs)
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	if got := cap(NewTracer(0).buf); got != DefaultTracerCapacity {
		t.Fatalf("cap = %d, want DefaultTracerCapacity", got)
	}
	if got := cap(NewTracer(-5).buf); got != DefaultTracerCapacity {
		t.Fatalf("negative capacity: cap = %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	// Bucket layout: bucket 0 holds v <= 1, bucket i holds (2^(i-1), 2^i].
	for _, v := range []int64{-3, 0, 1} {
		h.Observe(v)
	}
	h.Observe(2)    // bucket 1 upper edge
	h.Observe(3)    // bucket 2
	h.Observe(4)    // bucket 2 upper edge
	h.Observe(5)    // bucket 3
	h.Observe(1024) // bucket 10 upper edge
	h.Observe(1025) // bucket 11

	s := h.snapshot()
	if s.Count != 9 || s.Min != -3 || s.Max != 1025 {
		t.Fatalf("count/min/max = %d/%d/%d", s.Count, s.Min, s.Max)
	}
	want := map[int64]uint64{1: 3, 2: 1, 4: 2, 8: 1, 1024: 1, 2048: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.N {
			t.Fatalf("bucket le=%d n=%d, want n=%d", b.Le, b.N, want[b.Le])
		}
	}
}

func TestHistogramTopBucketOpen(t *testing.T) {
	h := &Histogram{}
	h.Observe(math.MaxInt64) // must not overflow the bucket edge computation
	s := h.snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].Le != math.MaxInt64 {
		t.Fatalf("top bucket = %+v", s.Buckets)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[uint32]string{
		0:                    "unknown",
		1 << 1:               "retry",
		1<<1 | 1<<2:          "retry|conflict",
		1 << 3:               "capacity",
		1<<0 | uint32(7)<<24: "explicit(7)",
		1 << 4:               "debug",
		1 << 5:               "nested",
	}
	for in, want := range cases {
		if got := StatusString(in); got != want {
			t.Errorf("StatusString(%#x) = %q, want %q", in, got, want)
		}
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		m := NewMetrics()
		o := New(nil, m)
		o.ThreadStart(0, 0)
		o.TxBegin(0, 10)
		o.TxAbort(0, 40, 1<<1|1<<2, "conflict", 30, false)
		o.SlowEnter(0, 40, "conflict")
		o.SlowExit(0, 140, "conflict", 100)
		o.TxBegin(0, 150)
		o.TxCommit(0, 200, 50)
		o.ThreadExit(0, 210)
		return m.Snapshot()
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshot JSON not byte-stable:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestObserverCounters(t *testing.T) {
	m := NewMetrics()
	o := New(nil, m)
	o.TxBegin(1, 0)
	o.TxAbort(1, 5, 0, "unknown", 5, true) // artificial: both counters move
	o.TxBegin(1, 10)
	o.TxCommit(1, 20, 10)
	o.TxBegin(1, 30)
	o.TxRetry(1, 35, 1)
	s := m.Snapshot()
	for name, want := range map[string]uint64{
		"txn.begin":            3,
		"txn.commit":           1,
		"txn.retry":            1,
		"txn.abort.unknown":    1,
		"txn.abort.artificial": 1,
		"txn.abort.conflict":   0,
	} {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := s.Gauges["txn.active"]; got != 0 {
		t.Errorf("txn.active = %d after all txns ended", got)
	}
}

func TestHTMAbortClassification(t *testing.T) {
	m := NewMetrics()
	o := New(nil, m)
	o.HTMAbort(1<<1 | 1<<2)          // retry|conflict -> conflict
	o.HTMAbort(1<<2 | 1<<3)          // conflict wins over capacity
	o.HTMAbort(1 << 3)               // capacity
	o.HTMAbort(1<<0 | uint32(3)<<24) // explicit
	o.HTMAbort(0)                    // unknown
	s := m.Snapshot()
	for name, want := range map[string]uint64{
		"htm.abort.conflict": 2,
		"htm.abort.capacity": 1,
		"htm.abort.explicit": 1,
		"htm.abort.unknown":  1,
	} {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// A nil Sink with a live Metrics registry must work (metrics-only mode), and
// New(nil, nil) must allocate a private registry rather than crash.
func TestObserverNilParts(t *testing.T) {
	o := New(nil, nil)
	o.TxBegin(0, 0)
	o.TxCommit(0, 1, 1)
	if got := o.Metrics().Snapshot().Counters["txn.begin"]; got != 1 {
		t.Fatalf("private registry txn.begin = %d", got)
	}
}
