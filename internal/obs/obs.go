// Package obs is the runtime's observability layer: a structured event
// tracer plus a metrics registry, designed to cost a single nil-check when
// disabled. The TxRace runtime (internal/core), the HTM model (internal/htm)
// and the scheduler (internal/sim) emit lifecycle events — transaction
// begin/commit/abort with the full RTM status word, TxFail global-abort
// episodes, slow-path region entry/exit with cause, loop-cut decisions,
// scheduler preemptions — stamped with simulated cycle time and thread id.
//
// An Observer fans each event out to an optional Sink (the ring-buffered
// Tracer by default) and to a Metrics registry of counters, gauges and
// log-scaled histograms. Exporters turn a captured event stream into Chrome
// trace_event JSON (chrome.go, loadable in chrome://tracing or Perfetto) or
// a human-readable per-thread timeline (timeline.go).
//
// The package deliberately depends on nothing above the standard library
// (and internal/report for text rendering), so every layer of the system can
// import it without cycles.
package obs

import "strconv"

// Kind classifies one traced event.
type Kind uint8

// Event kinds. Duration pairs (TxBegin/TxCommit-or-TxAbort, SlowEnter/
// SlowExit, TxFailBegin/TxFailEnd) become spans in the Chrome exporter;
// the rest render as instants.
const (
	KindNone Kind = iota
	// KindTxBegin: a hardware transaction opened on this thread.
	KindTxBegin
	// KindTxCommit: the open transaction committed; Arg is its length in
	// cycles.
	KindTxCommit
	// KindTxAbort: the open transaction aborted; Status is the raw RTM
	// status word, Cause the runtime's slow-path cause, Arg the wasted
	// cycles of the discarded attempt.
	KindTxAbort
	// KindTxRetry: a pure-retry abort re-ran on the fast path; Arg is the
	// attempt number.
	KindTxRetry
	// KindTxFailBegin: this thread wrote the TxFail flag, opening a
	// global-abort episode; Arg is the episode generation.
	KindTxFailBegin
	// KindTxFailEnd: the episode's initiating thread finished its slow-path
	// re-execution; Arg is the episode duration in cycles.
	KindTxFailEnd
	// KindSlowEnter: the thread entered a software-monitored slow region;
	// Cause says why (conflict, capacity, unknown, small, nohw).
	KindSlowEnter
	// KindSlowExit: the slow region ended; Arg is its duration in cycles.
	KindSlowExit
	// KindLoopCut: the loop-cut optimization split a transaction at loop
	// Loop; Arg is the threshold that triggered the cut.
	KindLoopCut
	// KindInterrupt: a timer interrupt / context switch hit the thread.
	KindInterrupt
	// KindThreadStart and KindThreadExit bracket a simulated thread's life.
	KindThreadStart
	KindThreadExit
	// KindHTMConflict: the machine doomed TID's transaction on a line
	// conflict; Line is the conflicting line and Arg the winning thread.
	KindHTMConflict
	// KindGovernor: the fallback governor changed state for TID; Cause is
	// the transition label ("degrade", "probe", "recover", "global",
	// "global-end") and Arg the probe interval where applicable.
	KindGovernor
)

func (k Kind) String() string {
	switch k {
	case KindTxBegin:
		return "tx-begin"
	case KindTxCommit:
		return "tx-commit"
	case KindTxAbort:
		return "tx-abort"
	case KindTxRetry:
		return "tx-retry"
	case KindTxFailBegin:
		return "txfail-begin"
	case KindTxFailEnd:
		return "txfail-end"
	case KindSlowEnter:
		return "slow-enter"
	case KindSlowExit:
		return "slow-exit"
	case KindLoopCut:
		return "loop-cut"
	case KindInterrupt:
		return "interrupt"
	case KindThreadStart:
		return "thread-start"
	case KindThreadExit:
		return "thread-exit"
	case KindHTMConflict:
		return "htm-conflict"
	case KindGovernor:
		return "governor"
	default:
		return "event"
	}
}

// Event is one structured trace record. Fields beyond Kind, TID and Time are
// kind-specific; unused ones are zero. Cause values are the runtime's cause
// labels ("conflict", "capacity", "unknown", "small", "nohw") — constant
// strings, so recording one allocates nothing.
type Event struct {
	Kind   Kind
	TID    int32
	Time   int64  // simulated cycle at which the event occurred
	Status uint32 // raw RTM status word (abort events)
	Loop   uint32 // loop id (loop-cut events)
	Line   uint64 // conflicting line (HTM conflict events)
	Cause  string // slow-path cause label
	Arg    int64  // kind-specific payload (durations, counts, winner tid)
}

// Sink consumes the event stream. Emit is called from simulator hot paths;
// implementations must not retain the Event beyond the call unless they copy
// it (the struct is plain data, so assignment copies).
type Sink interface {
	Emit(ev Event)
}

// StatusString renders a raw RTM status word the way internal/htm does: the
// set bits joined with "|", or "unknown" for the all-zero word Haswell
// reports on interrupts and other unexplained aborts.
func StatusString(s uint32) string {
	if s == 0 {
		return "unknown"
	}
	out := ""
	add := func(c string) {
		if out != "" {
			out += "|"
		}
		out += c
	}
	if s&(1<<0) != 0 {
		add("explicit(" + strconv.Itoa(int(s>>24)) + ")")
	}
	if s&(1<<1) != 0 {
		add("retry")
	}
	if s&(1<<2) != 0 {
		add("conflict")
	}
	if s&(1<<3) != 0 {
		add("capacity")
	}
	if s&(1<<4) != 0 {
		add("debug")
	}
	if s&(1<<5) != 0 {
		add("nested")
	}
	return out
}

// Observer is the handle the runtimes hold: typed emit helpers that feed
// both the trace sink and the metrics registry. A nil *Observer is the
// disabled state — instrumented code guards every call with one nil-check,
// so a run without observability pays a single predictable branch per hook.
type Observer struct {
	trace   Sink
	metrics *Metrics
	ledger  *Ledger

	// Pre-registered instruments so hot-path updates are pointer bumps,
	// never map lookups or string concatenation.
	cTxBegin, cTxCommit, cTxRetry, cLoopCut           *Counter
	cAbortConflict, cAbortCapacity, cAbortUnknown     *Counter
	cAbortArtificial                                  *Counter
	cSlowConflict, cSlowCapacity, cSlowUnknown        *Counter
	cSlowSmall, cSlowNoHW, cSlowGovernor              *Counter
	cTxFail, cInterrupts, cThreadStart, cThreadExit   *Counter
	cHTMBegin, cHTMCommit                             *Counter
	cHTMConflict, cHTMCapacity, cHTMUnknown, cHTMExpl *Counter
	cShadowPages, cShadowCellPages                    *Counter
	cVCPoolHit, cVCPoolMiss                           *Counter
	cClockPromote, cClockCollapse, cClockFallback     *Counter
	cDirLines, cDirChecks, cDirFastpath               *Counter
	cTagRecycled, cTagFalse, cBoundedOverflow         *Counter
	cDecodeInstrs                                     *Counter
	cGovForced, cGovTrips, cGovGlobal                 *Counter
	cFaultUnknown, cFaultRetry, cFaultCapacity        *Counter
	cFaultDoomed, cFaultCommit, cFaultSyscall         *Counter
	cTraceDropped                                     *Counter
	gThreadsLive, gTxActive, gGovState                *Gauge
	hTxnCycles, hAbortWasted, hSlowCycles, hEpisode   *Histogram
}

// New returns an Observer writing events to trace (may be nil: metrics only)
// and instrument updates to m (nil allocates a private registry, for callers
// that only want the event stream).
func New(trace Sink, m *Metrics) *Observer {
	if m == nil {
		m = NewMetrics()
	}
	return &Observer{
		trace:   trace,
		metrics: m,

		cTxBegin:         m.Counter("txn.begin"),
		cTxCommit:        m.Counter("txn.commit"),
		cTxRetry:         m.Counter("txn.retry"),
		cLoopCut:         m.Counter("txn.loopcut"),
		cAbortConflict:   m.Counter("txn.abort.conflict"),
		cAbortCapacity:   m.Counter("txn.abort.capacity"),
		cAbortUnknown:    m.Counter("txn.abort.unknown"),
		cAbortArtificial: m.Counter("txn.abort.artificial"),
		cSlowConflict:    m.Counter("slow.region.conflict"),
		cSlowCapacity:    m.Counter("slow.region.capacity"),
		cSlowUnknown:     m.Counter("slow.region.unknown"),
		cSlowSmall:       m.Counter("slow.region.small"),
		cSlowNoHW:        m.Counter("slow.region.nohw"),
		cSlowGovernor:    m.Counter("slow.region.governor"),
		cTxFail:          m.Counter("txfail.episodes"),
		cInterrupts:      m.Counter("sched.interrupts"),
		cThreadStart:     m.Counter("threads.started"),
		cThreadExit:      m.Counter("threads.exited"),
		cHTMBegin:        m.Counter("htm.begin"),
		cHTMCommit:       m.Counter("htm.commit"),
		cHTMConflict:     m.Counter("htm.abort.conflict"),
		cHTMCapacity:     m.Counter("htm.abort.capacity"),
		cHTMUnknown:      m.Counter("htm.abort.unknown"),
		cHTMExpl:         m.Counter("htm.abort.explicit"),
		cShadowPages:     m.Counter("shadow.pages"),
		cShadowCellPages: m.Counter("shadow.cellpages"),
		cVCPoolHit:       m.Counter("shadow.vcpool.hit"),
		cVCPoolMiss:      m.Counter("shadow.vcpool.miss"),
		cClockPromote:    m.Counter("clock.sparse.promotions"),
		cClockCollapse:   m.Counter("clock.sparse.collapses"),
		cClockFallback:   m.Counter("clock.sparse.fallbacks"),
		cDirLines:        m.Counter("htm.dir.lines"),
		cDirChecks:       m.Counter("htm.dir.checks"),
		cDirFastpath:     m.Counter("htm.dir.fastpath"),
		cTagRecycled:     m.Counter("htm.tag.recycled"),
		cTagFalse:        m.Counter("htm.tag.false"),
		cBoundedOverflow: m.Counter("htm.bounded.overflow"),
		cDecodeInstrs:    m.Counter("sim.decode.instrs"),
		cGovForced:       m.Counter("core.fallback.forced"),
		cGovTrips:        m.Counter("core.governor.trips"),
		cGovGlobal:       m.Counter("core.governor.global"),
		cFaultUnknown:    m.Counter("fault.injected.unknown"),
		cFaultRetry:      m.Counter("fault.injected.retry"),
		cFaultCapacity:   m.Counter("fault.injected.capacity"),
		cFaultDoomed:     m.Counter("fault.injected.doomed"),
		cFaultCommit:     m.Counter("fault.injected.commit"),
		cFaultSyscall:    m.Counter("fault.injected.syscall"),
		cTraceDropped:    m.Counter("obs.trace.dropped"),
		gThreadsLive:     m.Gauge("threads.live"),
		gTxActive:        m.Gauge("txn.active"),
		gGovState:        m.Gauge("core.governor.state"),
		hTxnCycles:       m.Histogram("txn.cycles"),
		hAbortWasted:     m.Histogram("txn.abort.wasted.cycles"),
		hSlowCycles:      m.Histogram("slow.region.cycles"),
		hEpisode:         m.Histogram("txfail.episode.cycles"),
	}
}

// Metrics returns the registry the observer updates.
func (o *Observer) Metrics() *Metrics { return o.metrics }

// AttachLedger enables cycle attribution: the simulator and runtimes will
// charge every virtual cycle to a per-thread phase ledger. Attach before the
// run starts; a nil receiver or nil ledger is a no-op.
func (o *Observer) AttachLedger(l *Ledger) {
	if o == nil {
		return
	}
	o.ledger = l
}

// Ledger returns the attached attribution ledger, or nil (the common case —
// attribution is opt-in). Nil-safe on the receiver, and the *Ledger nil case
// is itself a no-op for every ledger method, so callers can thread the
// result without guards.
func (o *Observer) Ledger() *Ledger {
	if o == nil {
		return nil
	}
	return o.ledger
}

// Fork returns a fresh Observer with a private registry, for one job of a
// parallel experiment plan. Forks deliberately carry no trace sink — a ring
// buffer interleaving events from concurrent independent runs would be
// nondeterministic and uninterpretable — so a fork records metrics only;
// Join folds them back into the parent. Fork of a nil Observer is nil, so
// unobserved plans cost nothing.
func (o *Observer) Fork() *Observer {
	if o == nil {
		return nil
	}
	child := New(nil, nil)
	if o.ledger != nil {
		child.ledger = NewLedger()
	}
	return child
}

// Join merges a fork's metrics into this observer's registry. Joining the
// same forks in the same order always produces the same totals (see
// Metrics.Merge). Nil receivers and nil children are no-ops.
func (o *Observer) Join(child *Observer) {
	if o == nil || child == nil {
		return
	}
	o.metrics.Merge(child.metrics)
	o.ledger.Merge(child.ledger)
}

func (o *Observer) emit(ev Event) {
	if o.trace != nil {
		o.trace.Emit(ev)
	}
}

// TxBegin records a hardware transaction opening on tid at cycle now.
func (o *Observer) TxBegin(tid int, now int64) {
	o.cTxBegin.Inc()
	o.gTxActive.Add(1)
	o.emit(Event{Kind: KindTxBegin, TID: int32(tid), Time: now})
}

// TxCommit records a successful commit; length is the transaction's cycles.
func (o *Observer) TxCommit(tid int, now, length int64) {
	o.cTxCommit.Inc()
	o.gTxActive.Add(-1)
	o.hTxnCycles.Observe(length)
	o.emit(Event{Kind: KindTxCommit, TID: int32(tid), Time: now, Arg: length})
}

// TxAbort records an abort that sends tid to the slow path. status is the
// raw RTM word, cause the runtime's attribution, wasted the discarded
// cycles, artificial whether the abort was TxFail-induced.
func (o *Observer) TxAbort(tid int, now int64, status uint32, cause string, wasted int64, artificial bool) {
	switch cause {
	case "conflict":
		o.cAbortConflict.Inc()
	case "capacity":
		o.cAbortCapacity.Inc()
	default:
		o.cAbortUnknown.Inc()
	}
	if artificial {
		o.cAbortArtificial.Inc()
	}
	o.gTxActive.Add(-1)
	o.hAbortWasted.Observe(wasted)
	o.emit(Event{Kind: KindTxAbort, TID: int32(tid), Time: now, Status: status, Cause: cause, Arg: wasted})
}

// TxRetry records a pure-retry abort re-running on the fast path.
func (o *Observer) TxRetry(tid int, now int64, attempt int) {
	o.cTxRetry.Inc()
	o.gTxActive.Add(-1)
	o.emit(Event{Kind: KindTxRetry, TID: int32(tid), Time: now, Arg: int64(attempt)})
}

// TxFailBegin records tid writing the TxFail flag, opening episode gen.
func (o *Observer) TxFailBegin(tid int, now int64, gen uint64) {
	o.cTxFail.Inc()
	o.emit(Event{Kind: KindTxFailBegin, TID: int32(tid), Time: now, Arg: int64(gen)})
}

// TxFailEnd records the end of the episode tid initiated, dur cycles long.
func (o *Observer) TxFailEnd(tid int, now, dur int64) {
	o.hEpisode.Observe(dur)
	o.emit(Event{Kind: KindTxFailEnd, TID: int32(tid), Time: now, Arg: dur})
}

// SlowEnter records tid entering a software-monitored region for cause.
func (o *Observer) SlowEnter(tid int, now int64, cause string) {
	switch cause {
	case "conflict":
		o.cSlowConflict.Inc()
	case "capacity":
		o.cSlowCapacity.Inc()
	case "small":
		o.cSlowSmall.Inc()
	case "nohw":
		o.cSlowNoHW.Inc()
	case "governor":
		o.cSlowGovernor.Inc()
	default:
		o.cSlowUnknown.Inc()
	}
	o.emit(Event{Kind: KindSlowEnter, TID: int32(tid), Time: now, Cause: cause})
}

// SlowExit records the end of tid's slow region, dur cycles after entry.
func (o *Observer) SlowExit(tid int, now int64, cause string, dur int64) {
	o.hSlowCycles.Observe(dur)
	o.emit(Event{Kind: KindSlowExit, TID: int32(tid), Time: now, Cause: cause, Arg: dur})
}

// LoopCut records a transaction split at loop with the given threshold.
func (o *Observer) LoopCut(tid int, now int64, loop uint32, threshold int) {
	o.cLoopCut.Inc()
	o.emit(Event{Kind: KindLoopCut, TID: int32(tid), Time: now, Loop: loop, Arg: int64(threshold)})
}

// Interrupt records a scheduler preemption delivered to tid.
func (o *Observer) Interrupt(tid int, now int64) {
	o.cInterrupts.Inc()
	o.emit(Event{Kind: KindInterrupt, TID: int32(tid), Time: now})
}

// ThreadStart records a simulated thread beginning execution.
func (o *Observer) ThreadStart(tid int, now int64) {
	o.cThreadStart.Inc()
	o.gThreadsLive.Add(1)
	o.emit(Event{Kind: KindThreadStart, TID: int32(tid), Time: now})
}

// ThreadExit records a simulated thread finishing.
func (o *Observer) ThreadExit(tid int, now int64) {
	o.cThreadExit.Inc()
	o.gThreadsLive.Add(-1)
	o.emit(Event{Kind: KindThreadExit, TID: int32(tid), Time: now})
}

// HTMBegin counts a machine-level transaction open.
func (o *Observer) HTMBegin() { o.cHTMBegin.Inc() }

// HTMCommit counts a machine-level commit.
func (o *Observer) HTMCommit() { o.cHTMCommit.Inc() }

// HTMAbort counts a machine-level doom, classified by the status word with
// the same precedence the machine's own counters use.
func (o *Observer) HTMAbort(status uint32) {
	switch {
	case status&(1<<2) != 0:
		o.cHTMConflict.Inc()
	case status&(1<<3) != 0:
		o.cHTMCapacity.Inc()
	case status&(1<<0) != 0:
		o.cHTMExpl.Inc()
	case status == 0:
		o.cHTMUnknown.Inc()
	}
}

// HTMConflict records the machine dooming loser's transaction on line; the
// requesting (winning) agent is winner. now may be 0 when no clock source
// was attached.
func (o *Observer) HTMConflict(loser int, now int64, line uint64, winner int) {
	o.emit(Event{Kind: KindHTMConflict, TID: int32(loser), Time: now, Line: line, Arg: int64(winner)})
}

// ShadowMemStats folds a detector's shadow-memory allocation counters into
// the registry. Runtimes call it once per run at Finish, so the detector hot
// path carries no observability cost; pool hit rate = hit / (hit + miss).
func (o *Observer) ShadowMemStats(pages, poolHits, poolMisses uint64) {
	if o == nil {
		return
	}
	o.cShadowPages.Add(pages)
	o.cVCPoolHit.Add(poolHits)
	o.cVCPoolMiss.Add(poolMisses)
}

// ClockSparseStats folds a detector's clock-representation counters into
// the registry, once per run at Finish: sparse clocks promoted to dense,
// epoch-collapse rounds run, and joins that fell off the sparse fast path.
func (o *Observer) ClockSparseStats(promotions, collapses, fallbacks uint64) {
	if o == nil {
		return
	}
	o.cClockPromote.Add(promotions)
	o.cClockCollapse.Add(collapses)
	o.cClockFallback.Add(fallbacks)
}

// ShadowCellStats folds a bounded cell store's page-allocation counter into
// the registry, once per run at Finish.
func (o *Observer) ShadowCellStats(pages uint64) {
	if o == nil {
		return
	}
	o.cShadowCellPages.Add(pages)
}

// HTMDirStats folds the HTM conflict directory's counters into the registry
// (lines that acquired a first ownership claim, conflict-mask lookups,
// empty-machine fast-path hits), once per run at Finish.
func (o *Observer) HTMDirStats(lines, checks, fastpath uint64) {
	if o == nil {
		return
	}
	o.cDirLines.Add(lines)
	o.cDirChecks.Add(checks)
	o.cDirFastpath.Add(fastpath)
}

// HTMBackendStats records which conflict backend the run used
// (htm.backend.<name>, one increment per run) and folds in the
// backend-specific counters: tag-epoch recycling and aliased false conflicts
// for the tag backend, hard set-cap overflows for the bounded backend. The
// overflow counter is deliberately distinct from fault.injected.capacity so
// injected capacity bursts and real cap overflows stay attributable.
func (o *Observer) HTMBackendStats(name string, tagRecycled, tagFalse, boundedOverflow uint64) {
	if o == nil {
		return
	}
	if name != "" {
		o.metrics.Counter("htm.backend." + name).Add(1)
	}
	o.cTagRecycled.Add(tagRecycled)
	o.cTagFalse.Add(tagFalse)
	o.cBoundedOverflow.Add(boundedOverflow)
}

// SimDecodeStats folds the engine's decoded-instruction count into the
// registry, once per run when execution finishes.
func (o *Observer) SimDecodeStats(instrs uint64) {
	if o == nil {
		return
	}
	o.cDecodeInstrs.Add(instrs)
}

// GovernorForced counts one region the fallback governor forced onto the
// software slow path (core.fallback.forced). The region itself is also
// traced by the usual SlowEnter/SlowExit pair with cause "governor".
func (o *Observer) GovernorForced(tid int, now int64) {
	o.cGovForced.Inc()
}

// GovernorDegrade records the abort-rate tripwire degrading tid to the slow
// path; core.governor.state gauges the number of degraded threads.
func (o *Observer) GovernorDegrade(tid int, now int64) {
	o.cGovTrips.Inc()
	o.gGovState.Add(1)
	o.emit(Event{Kind: KindGovernor, TID: int32(tid), Time: now, Cause: "degrade"})
}

// GovernorProbe records a degraded thread re-attempting the fast path;
// interval is the probe interval (in regions) that elapsed.
func (o *Observer) GovernorProbe(tid int, now int64, interval int) {
	o.emit(Event{Kind: KindGovernor, TID: int32(tid), Time: now, Cause: "probe", Arg: int64(interval)})
}

// GovernorRecover records a successful probe returning tid to HTM mode.
func (o *Observer) GovernorRecover(tid int, now int64) {
	o.gGovState.Add(-1)
	o.emit(Event{Kind: KindGovernor, TID: int32(tid), Time: now, Cause: "recover"})
}

// GovernorGlobal records the whole-run tripwire engaging (every live worker
// degraded): regions run the slow path run-wide for Arg regions.
func (o *Observer) GovernorGlobal(tid int, now int64, regions int) {
	o.cGovGlobal.Inc()
	o.emit(Event{Kind: KindGovernor, TID: int32(tid), Time: now, Cause: "global", Arg: int64(regions)})
}

// GovernorGlobalEnd records the whole-run degradation window expiring.
func (o *Observer) GovernorGlobalEnd(tid int, now int64) {
	o.emit(Event{Kind: KindGovernor, TID: int32(tid), Time: now, Cause: "global-end"})
}

// TraceStats folds a tracer ring's drop count into the registry
// (obs.trace.dropped), once per run after the event stream is final. A
// non-zero value means the ring wrapped and the exported trace is the tail,
// not the whole run.
func (o *Observer) TraceStats(dropped uint64) {
	if o == nil {
		return
	}
	o.cTraceDropped.Add(dropped)
}

// FaultStats folds an injector's per-kind injected-fault counters into the
// registry (fault.injected.*), once per run at Finish.
func (o *Observer) FaultStats(unknown, retry, capacity, doomed, commit, syscall uint64) {
	if o == nil {
		return
	}
	o.cFaultUnknown.Add(unknown)
	o.cFaultRetry.Add(retry)
	o.cFaultCapacity.Add(capacity)
	o.cFaultDoomed.Add(doomed)
	o.cFaultCommit.Add(commit)
	o.cFaultSyscall.Add(syscall)
}
