package obs_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"txn.begin":               "txrace_txn_begin",
		"txn.abort.wasted.cycles": "txrace_txn_abort_wasted_cycles",
		"already_fine":            "txrace_already_fine",
		"weird-chars here":        "txrace_weird_chars_here",
		"colons:ok":               "txrace_colons:ok",
	}
	for in, want := range cases {
		if got := obs.SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// expositionLine matches the two legal sample shapes the writer emits: a
// TYPE comment or a bare / le-labelled sample with an integer value.
var expositionLine = regexp.MustCompile(
	`^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="([0-9]+|\+Inf)"\})? -?[0-9]+)$`)

// TestPrometheusGolden pins the text exposition byte-for-byte for the fixed
// deterministic run. Regenerate with: go test ./internal/obs -run Golden -update
func TestPrometheusGolden(t *testing.T) {
	_, metrics, _ := runObserved(t)
	var got bytes.Buffer
	if err := obs.WritePrometheus(&got, metrics.Snapshot()); err != nil {
		t.Fatalf("write: %v", err)
	}

	golden := filepath.Join("testdata", "golden_metrics.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("exposition diverged from golden file (len %d vs %d); rerun with -update if the change is intended",
			got.Len(), len(want))
	}
}

// TestPrometheusFormat checks the format contract on a live snapshot: every
// line parses, histogram buckets are cumulative and end at +Inf with the
// total count, and every family has exactly one TYPE comment.
func TestPrometheusFormat(t *testing.T) {
	_, metrics, _ := runObserved(t)
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, metrics.Snapshot()); err != nil {
		t.Fatalf("write: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty exposition")
	}
	types := map[string]bool{}
	for _, line := range lines {
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			if types[name] {
				t.Fatalf("duplicate TYPE comment for %s", name)
			}
			types[name] = true
		}
	}

	s := metrics.Snapshot()
	for name, h := range s.Histograms {
		p := obs.SanitizeMetricName(name)
		var cum uint64
		last := uint64(0)
		sawInf := false
		for _, line := range lines {
			if !strings.HasPrefix(line, p+"_bucket{") {
				continue
			}
			fields := strings.Fields(line)
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			if v < last {
				t.Fatalf("%s buckets not cumulative: %q after %d", p, line, last)
			}
			last, cum = v, v
			if strings.Contains(line, `le="+Inf"`) {
				sawInf = true
			}
		}
		if !sawInf {
			t.Fatalf("%s: no +Inf bucket", p)
		}
		if cum != h.Count {
			t.Fatalf("%s: +Inf bucket %d != count %d", p, cum, h.Count)
		}
	}
}

// TestTelemetryHandlers drives the three endpoints through httptest against
// a live registry and ledger.
func TestTelemetryHandlers(t *testing.T) {
	_, metrics, _ := runObserved(t)
	led := obs.NewLedger()
	led.Add(0, obs.PhaseFast, 100)
	led.Add(0, obs.PhaseSlow, 50)
	led.Abort(0, obs.AbortConflict, 30)

	srv := httptest.NewServer(obs.NewTelemetry(metrics, led).Handler())
	defer srv.Close()

	body, ct := get(t, srv.URL+"/metrics", 200)
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, "# TYPE txrace_txn_begin counter") {
		t.Fatalf("/metrics missing txn.begin family:\n%s", body)
	}

	body, ct = get(t, srv.URL+"/snapshot", 200)
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/snapshot content-type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot is not a Snapshot: %v", err)
	}
	if want := metrics.Snapshot().Counters["txn.begin"]; snap.Counters["txn.begin"] != want {
		t.Fatalf("/snapshot txn.begin = %d, want %d", snap.Counters["txn.begin"], want)
	}

	body, _ = get(t, srv.URL+"/attrib", 200)
	var ls obs.LedgerSnapshot
	if err := json.Unmarshal([]byte(body), &ls); err != nil {
		t.Fatalf("/attrib is not a LedgerSnapshot: %v", err)
	}
	if ls.Total.Total != 150 || ls.Total.Phases["fast"] != 100 {
		t.Fatalf("/attrib total = %+v", ls.Total)
	}
	if ls.Total.AbortCounts["conflict"] != 1 {
		t.Fatalf("/attrib abort counts = %v", ls.Total.AbortCounts)
	}
}

// TestTelemetryAttribWithoutLedger pins the 404 contract of /attrib.
func TestTelemetryAttribWithoutLedger(t *testing.T) {
	srv := httptest.NewServer(obs.NewTelemetry(obs.NewMetrics(), nil).Handler())
	defer srv.Close()
	body, _ := get(t, srv.URL+"/attrib", 404)
	if !strings.Contains(body, "no attribution ledger") {
		t.Fatalf("/attrib 404 body = %q", body)
	}
}

// TestTelemetrySetTarget checks mid-flight retargeting: the endpoint serves
// whichever registry was set last.
func TestTelemetrySetTarget(t *testing.T) {
	m1 := obs.NewMetrics()
	m1.Counter("x").Add(1)
	m2 := obs.NewMetrics()
	m2.Counter("x").Add(2)

	tel := obs.NewTelemetry(m1, nil)
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	body, _ := get(t, srv.URL+"/metrics", 200)
	if !strings.Contains(body, "txrace_x 1") {
		t.Fatalf("before retarget: %q", body)
	}
	tel.SetTarget(m2, nil)
	body, _ = get(t, srv.URL+"/metrics", 200)
	if !strings.Contains(body, "txrace_x 2") {
		t.Fatalf("after retarget: %q", body)
	}
}

// TestTelemetryServe binds a real listener on a free port and scrapes it.
func TestTelemetryServe(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter("served").Add(7)
	tel := obs.NewTelemetry(m, nil)
	if err := tel.Serve("127.0.0.1:0"); err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer tel.Close()
	if tel.Addr() == "" {
		t.Fatal("no bound address")
	}
	body, _ := get(t, "http://"+tel.Addr()+"/metrics", 200)
	if !strings.Contains(body, "txrace_served 7") {
		t.Fatalf("scrape: %q", body)
	}
}

func get(t *testing.T, url string, wantStatus int) (body, contentType string) {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer r.Body.Close()
	if r.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, r.StatusCode, wantStatus)
	}
	b, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(b), r.Header.Get("Content-Type")
}
