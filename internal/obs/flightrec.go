package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// DefaultFlightCapacity bounds the always-on post-mortem ring. It is
// deliberately much smaller than DefaultTracerCapacity: the recorder keeps
// only the recent past, enough to reconstruct the moments before a failure.
const DefaultFlightCapacity = 1 << 14

// FlightBundle is the post-mortem artifact a FlightRecorder dumps: the tail
// of the event stream plus consistent snapshots of the metrics registry, the
// attribution ledger, and the fallback governor's aggregate state at dump
// time. It is plain JSON; ReadFlightBundle parses it back.
type FlightBundle struct {
	// Reason says what triggered the dump: "program-error",
	// "governor-global-trip", "sigquit", or a caller-supplied label.
	Reason string `json:"reason"`
	// Dump is the 1-based sequence number of this dump within the run (the
	// recorder overwrites its output file, so the highest number wins).
	Dump int `json:"dump"`
	// Dropped counts ring-evicted events: the bundle holds the last
	// len(Events) of Dropped+len(Events) total.
	Dropped uint64  `json:"dropped_events"`
	Events  []Event `json:"events"`
	// Metrics is the registry snapshot (zero-valued when no registry was
	// attached).
	Metrics Snapshot `json:"metrics"`
	// Attrib is the attribution ledger snapshot, if a ledger was attached.
	Attrib *LedgerSnapshot `json:"attrib,omitempty"`
	// Governor summarizes the fallback governor at dump time, extracted from
	// the registry so the bundle is self-contained.
	Governor GovernorState `json:"governor"`
}

// GovernorState is the flight bundle's digest of the fallback governor.
type GovernorState struct {
	// DegradedThreads is the core.governor.state gauge: threads currently
	// forced to the slow path by the abort-rate tripwire.
	DegradedThreads int64 `json:"degraded_threads"`
	// Trips counts per-thread degradations (core.governor.trips).
	Trips uint64 `json:"trips"`
	// GlobalWindows counts whole-run degradation windows
	// (core.governor.global).
	GlobalWindows uint64 `json:"global_windows"`
	// ForcedRegions counts regions the governor sent to the slow path
	// (core.fallback.forced).
	ForcedRegions uint64 `json:"forced_regions"`
}

// FlightRecorder is an always-on bounded Sink for post-mortem debugging: it
// tees the event stream into a small ring and, on a trigger, dumps a
// FlightBundle to a file. Triggers are (1) a governor global trip observed
// in the event stream (automatic), (2) a sim.ProgramError — the cmd calls
// Dump from its error path, since the recorder only sees events, not errors —
// and (3) SIGQUIT via ArmSignal, for runs wedged enough that the user
// reaches for kill -QUIT.
//
// Emit takes a mutex: unlike the run-private Tracer, a recorder's dump can
// race with the recording run (the signal goroutine fires whenever), and
// correctness here is worth a lock on a path that is already tracing.
type FlightRecorder struct {
	mu      sync.Mutex
	ring    *Tracer
	metrics *Metrics
	ledger  *Ledger
	path    string
	dumps   int
}

// NewFlightRecorder returns a recorder ringing the last `capacity` events
// (non-positive means DefaultFlightCapacity) and dumping to path. The
// metrics registry and ledger may be nil; their snapshots are then empty.
func NewFlightRecorder(path string, capacity int, m *Metrics, led *Ledger) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{ring: NewTracer(capacity), metrics: m, ledger: led, path: path}
}

// Emit implements Sink, and fires an automatic dump when the governor's
// whole-run tripwire engages — the event the runtime emits exactly when the
// machine has collectively given up on the fast path.
func (f *FlightRecorder) Emit(ev Event) {
	f.mu.Lock()
	f.ring.Emit(ev)
	f.mu.Unlock()
	if ev.Kind == KindGovernor && ev.Cause == "global" {
		_ = f.Dump("governor-global-trip")
	}
}

// SetTarget repoints the recorder's snapshot sources at a new registry and
// ledger — a multi-experiment driver keeps one armed recorder and swaps the
// pair per experiment. The event ring is not reset; it keeps the recent past
// across targets.
func (f *FlightRecorder) SetTarget(m *Metrics, led *Ledger) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.metrics, f.ledger = m, led
}

// Dump writes the bundle to the recorder's path, overwriting any previous
// dump (the latest state is the interesting one). Safe to call from any
// goroutine, including concurrently with Emit.
func (f *FlightRecorder) Dump(reason string) error {
	f.mu.Lock()
	f.dumps++
	b := FlightBundle{
		Reason:  reason,
		Dump:    f.dumps,
		Dropped: f.ring.Dropped(),
		Events:  f.ring.Events(),
	}
	m, led := f.metrics, f.ledger
	f.mu.Unlock()

	if m != nil {
		b.Metrics = m.Snapshot()
		b.Governor = GovernorState{
			DegradedThreads: b.Metrics.Gauges["core.governor.state"],
			Trips:           b.Metrics.Counters["core.governor.trips"],
			GlobalWindows:   b.Metrics.Counters["core.governor.global"],
			ForcedRegions:   b.Metrics.Counters["core.fallback.forced"],
		}
	}
	if led != nil {
		s := led.Snapshot()
		b.Attrib = &s
	}

	tmp := f.path + ".tmp"
	file, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	enc := json.NewEncoder(file)
	enc.SetIndent("", " ")
	if err := enc.Encode(b); err != nil {
		file.Close()
		os.Remove(tmp)
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	if err := file.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	if err := os.Rename(tmp, f.path); err != nil {
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	return nil
}

// Path returns the dump destination.
func (f *FlightRecorder) Path() string { return f.path }

// Dumps returns how many bundles have been written so far.
func (f *FlightRecorder) Dumps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// ArmSignal dumps a bundle (reason "sigquit") every time the process gets
// SIGQUIT, and returns a disarm function. The handler swallows the signal,
// trading Go's default goroutine dump for the flight bundle — that is the
// point: -flight-out turns kill -QUIT into "write me the post-mortem".
func (f *FlightRecorder) ArmSignal() (disarm func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				_ = f.Dump("sigquit")
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
}

// ReadFlightBundle parses a dumped bundle back.
func ReadFlightBundle(path string) (*FlightBundle, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return ParseFlightBundle(file)
}

// ParseFlightBundle decodes a bundle from r.
func ParseFlightBundle(r io.Reader) (*FlightBundle, error) {
	var b FlightBundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("obs: parse flight bundle: %w", err)
	}
	return &b, nil
}

// MultiSink fans an event stream out to every non-nil sink; it returns nil
// when no sinks remain, preserving the "nil sink = tracing disabled" fast
// path. Cmds use it to tee the user's tracer and the flight recorder.
func MultiSink(sinks ...Sink) Sink {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeSink(live)
}

type teeSink []Sink

func (t teeSink) Emit(ev Event) {
	for _, s := range t {
		s.Emit(ev)
	}
}
