package htm

import (
	"fmt"

	"repro/internal/memmodel"
)

// ConflictBackend is the conflict-detection half of the machine: footprint
// tracking plus the conflict test that decides which transactions an access
// dooms. The HTM shell owns everything else — transaction lifecycle (Begin/
// Commit/Resolve and the slot bitmasks), status words, stats, diagnostics,
// observability, and the fault Injector — so the governor, the attribution
// ledger, and the chaos engine work unchanged against every backend.
//
// The contract (DESIGN.md §10):
//
//   - begin(tid, slot) is called once per Begin, after the shell assigned
//     the slot; the backend resets tid's tracking state for a fresh
//     transaction.
//   - access(tid, addr, isWrite) performs the full conflict resolution for
//     one access: compute the conflicting live slots, hand the mask to
//     h.resolveConflicts (the shared doom decision — never doom conflict
//     victims directly, so doom order, diagnostics, stats, and trace events
//     stay identical across backends), then track the line, dooming the
//     requester itself with StatusCapacity via h.doom on overflow.
//   - release(tid, slot) withdraws tid's entire tracked footprint; the
//     shell calls it on doom and on commit while the transaction still
//     holds the slot.
//   - readSetSize/writeSetSize report the tracked footprint in lines (zero
//     when the backend tracks no sets).
//
// Backends are sealed inside the package: the shell hands them *HTM so they
// can reach liveMask, the per-thread transaction states, and the shared
// doom/resolve machinery.
type ConflictBackend interface {
	name() string
	begin(tid, slot int)
	access(tid int, addr memmodel.Addr, isWrite bool)
	release(tid, slot int)
	readSetSize(tid int) int
	writeSetSize(tid int) int
	stats() BackendStats
}

// BackendNames lists the valid Config.Backend values, in presentation
// order. "" selects the first (the directory).
func BackendNames() []string { return []string{"dir", "tag", "bounded"} }

// ValidBackend reports whether name selects a backend ("" counts: it is the
// default directory).
func ValidBackend(name string) bool {
	if name == "" {
		return true
	}
	for _, n := range BackendNames() {
		if n == name {
			return true
		}
	}
	return false
}

// Default knobs for the non-directory backends; see the Config fields.
const (
	defaultTagEpochBits    = 8
	defaultBoundedReadCap  = 16
	defaultBoundedWriteCap = 8
)

// newBackend builds the backend cfg.Backend names, panicking on a name New
// would have to guess at. Called from New after the shell validated the
// geometry.
func newBackend(h *HTM) ConflictBackend {
	cfg := &h.cfg
	switch cfg.Backend {
	case "", "dir":
		return newDirBackend(h, cfg.RefScan)
	case "tag":
		if cfg.RefScan {
			panic("htm: RefScan applies to the dir backend only")
		}
		if cfg.TagEpochBits == 0 {
			cfg.TagEpochBits = defaultTagEpochBits
		}
		if cfg.TagEpochBits < 1 || cfg.TagEpochBits > 32 {
			panic(fmt.Sprintf("htm: TagEpochBits %d out of range 1..32", cfg.TagEpochBits))
		}
		return newTagBackend(h)
	case "bounded":
		if cfg.RefScan {
			panic("htm: RefScan applies to the dir backend only")
		}
		if cfg.BoundedReadCap == 0 {
			cfg.BoundedReadCap = defaultBoundedReadCap
		}
		if cfg.BoundedWriteCap == 0 {
			cfg.BoundedWriteCap = defaultBoundedWriteCap
		}
		if cfg.BoundedReadCap < 1 || cfg.BoundedWriteCap < 1 {
			panic("htm: bounded backend caps must be positive")
		}
		return newBoundedBackend(h)
	default:
		panic(fmt.Sprintf("htm: unknown backend %q (valid: dir, tag, bounded)", cfg.Backend))
	}
}

// BackendStats counts backend activity, folded into the metrics registry at
// runtime Finish. Lines, Checks and Fastpath are populated by every backend
// (under dir semantics: distinct lines acquiring a first ownership claim,
// conflict-test lookups, and accesses answered by the empty-machine fast
// path); TagRecycled and TagFalse only by the tag backend; Overflows only by
// the bounded backend.
type BackendStats struct {
	Lines    uint64
	Checks   uint64
	Fastpath uint64

	// TagRecycled counts per-slot epoch wraps: once a slot's begin count
	// passes 2^TagEpochBits, stale tags from its dead transactions can
	// alias the live one.
	TagRecycled uint64
	// TagFalse counts conflicts blamed on an epoch-aliased stale tag — the
	// tag backend's false-conflict rate. The simulator can tell (it keeps
	// the unmasked epoch beside the tag, as real hardware could not); the
	// doomed transaction cannot, and is re-executed on the slow path like
	// any other conflict victim.
	TagFalse uint64
	// Overflows counts bounded-set cap overflows converted into
	// StatusCapacity dooms — the real capacity pressure, as opposed to the
	// injected bursts counted under fault.injected.capacity.
	Overflows uint64
}
