package htm

import (
	"repro/internal/memmodel"
	"repro/internal/shadow"
)

// The conflict directory is the machine's stand-in for the coherence
// directory real HTMs piggyback on: one word of ownership metadata per cache
// line, recording which hardware contexts hold the line transactionally and
// on which side (read or write set). Conflict resolution for an access is
// then two bitmask tests against that word — O(1) in the number of active
// transactions — instead of probing every context's set-associative tracking
// structures, the O(active-transactions) scan the reference resolver
// (accessRef) still performs.
//
// Bits index hardware-context *slots*, not thread ids: a slot is assigned at
// Begin and released when the transaction leaves the machine (Commit or
// Resolve), so at most MaxConcurrent (≤ 64) bits are ever live and a uint64
// pair covers every context. The directory is maintained incrementally:
//
//   - claim: an access that joins a transaction's read/write set sets the
//     slot's bit for the line;
//   - release: the tracking caches' eviction callback (cache.SetOnEvict)
//     clears the bit whenever a line leaves a set — LRU eviction in Touch or
//     the bulk Reset at begin/commit/abort. Reset therefore walks only the
//     transaction's own resident lines, never the directory.
//
// The invariant tying the two resolvers together: a (slot, line, side) bit
// is set exactly when the line is resident in that slot's side cache and the
// transaction is live (active and not doomed). Entries persist after their
// bits clear — a stale entry with both masks zero answers "no conflict" just
// as an absent one does.
type dirEntry struct {
	readers uint64 // slots holding the line in their read set
	writers uint64 // slots holding the line in their write set
}

// directory is the paged line → ownership-word table. It reuses the
// shadow.PageTable two-level layout (512-entry pages, first-touch
// allocation, far-map fallback beyond the flat directory bound), keyed by
// line index at the machine's conflict granularity.
type directory struct {
	pt shadow.PageTable[dirEntry]

	// lines counts empty→claimed transitions (a line acquiring its first
	// ownership bit); checks counts conflict-mask lookups. Both are folded
	// into the metrics registry at runtime Finish (htm.dir.*).
	lines  uint64
	checks uint64
}

// conflictors returns the slot mask holding a conflicting claim on line: a
// read conflicts with writers only, a write with writers and readers. The
// caller strips its own slot.
func (d *directory) conflictors(line memmodel.Line, isWrite bool) uint64 {
	d.checks++
	e := d.pt.Peek(uint64(line))
	if e == nil {
		return 0
	}
	m := e.writers
	if isWrite {
		m |= e.readers
	}
	return m
}

// releaseRead withdraws slot's read-set claim on line; releaseWrite the
// write-set claim. Called from the tracking caches' eviction callbacks.
func (d *directory) releaseRead(line memmodel.Line, slot int) {
	if e := d.pt.Peek(uint64(line)); e != nil {
		e.readers &^= 1 << uint(slot)
	}
}

func (d *directory) releaseWrite(line memmodel.Line, slot int) {
	if e := d.pt.Peek(uint64(line)); e != nil {
		e.writers &^= 1 << uint(slot)
	}
}
