package htm

import (
	"repro/internal/memmodel"
	"repro/internal/shadow"
)

// tagBackend is the HMTRace-style conflict backend: instead of per-context
// read/write sets, every line carries one owner tag — (slot, epoch, side) —
// written by the last transactional access. A conflict is a tag mismatch at
// access time: the line's tag names a different live transaction and either
// side is a write. The trade against the directory:
//
//   - No footprint tracking, so no capacity aborts ever (readSetSize and
//     writeSetSize answer zero) and commit/abort release is O(1) — stale
//     tags simply persist.
//   - One owner per line: there is no read sharing. A transactional
//     requester conflicts on ANY live-tag mismatch — the fault real tag
//     hardware raises — because proceeding would steal the tag and erase
//     the owner's conflict evidence (a read-read steal followed by a write
//     would race the first reader unseen). Concurrent read sharing, free
//     under the directory, here costs conflict aborts and slow-path falls;
//     the TxFail global-abort protocol turns each into re-execution under
//     the software detector, trading throughput for soundness.
//   - Tag reuse: tags carry only TagEpochBits of the owner's epoch, as real
//     memory-tagging hardware would. Once a slot's begin count wraps past
//     2^TagEpochBits, a stale tag from a long-dead transaction can alias
//     the slot's live one and fabricate a conflict. The simulator keeps the
//     unmasked epoch beside the tag (unavailable to the runtime, like
//     Diagnostics) purely to count these as TagFalse — the false-conflict
//     rate the precision suite measures.
type tagBackend struct {
	h *HTM

	pt   shadow.PageTable[tagEntry]
	mask uint64 // (1 << TagEpochBits) - 1

	// epochs counts Begins per slot (unmasked); a tag is live iff its
	// masked epoch equals the slot's current masked epoch and the slot is
	// in liveMask.
	epochs [64]uint64

	lines    uint64 // empty→tagged transitions
	checks   uint64 // conflict-test lookups
	fastpath uint64 // empty-machine early returns
	recycled uint64 // slot epoch wraps (aliasing became possible)
	falseC   uint64 // conflicts blamed on an epoch-aliased stale tag
}

// tagEntry is one line's owner tag. state distinguishes a never-tagged line
// (0) from read (1) and write (2) ownership. full is the simulator-only
// unmasked epoch used to classify aliased conflicts; the conflict decision
// itself uses only (slot, epoch, state), exactly what tag hardware stores.
type tagEntry struct {
	slot  uint8
	state uint8
	epoch uint32
	full  uint64
}

const (
	tagEmpty uint8 = iota
	tagRead
	tagWrite
)

func newTagBackend(h *HTM) *tagBackend {
	return &tagBackend{h: h, mask: (uint64(1) << h.cfg.TagEpochBits) - 1}
}

func (b *tagBackend) name() string { return "tag" }

func (b *tagBackend) begin(tid, slot int) {
	b.epochs[slot]++
	if b.epochs[slot]&b.mask == 0 {
		// The masked epoch wrapped to a value older transactions of this
		// slot have used: from here on their stale tags can alias.
		b.recycled++
	}
}

// release is a no-op: stale tags persist (the scheme's defining property).
// Liveness filtering — liveMask plus the epoch match — keeps them inert
// until the slot's epoch aliases.
func (b *tagBackend) release(tid, slot int) {}

func (b *tagBackend) readSetSize(tid int) int  { return 0 }
func (b *tagBackend) writeSetSize(tid int) int { return 0 }

func (b *tagBackend) stats() BackendStats {
	return BackendStats{
		Lines: b.lines, Checks: b.checks, Fastpath: b.fastpath,
		TagRecycled: b.recycled, TagFalse: b.falseC,
	}
}

// conflictMask decides whether e names a conflicting live transaction for a
// requester on selfSlot (-1 when not transactional): the tag's slot must be
// live, its masked epoch current, and it must not be the requester's own.
// A transactional requester then conflicts on ANY mismatch — like the tag
// fault real memory-tagging hardware raises — because proceeding would steal
// the tag and destroy the owner's conflict evidence; in particular a
// read-read steal must doom someone or a later writer races the first
// reader unseen. A non-transactional requester steals nothing, so it
// conflicts only under the usual R/W rule (at least one side writes).
// aliased reports that the match rode an epoch wrap — a false conflict by
// ground truth.
func (b *tagBackend) conflictMask(e *tagEntry, selfSlot int, isWrite bool) (mask uint64, aliased bool) {
	if e.state == tagEmpty {
		return 0, false
	}
	slot := int(e.slot)
	if slot == selfSlot {
		return 0, false
	}
	if b.h.liveMask&(1<<uint(slot)) == 0 {
		return 0, false
	}
	if uint64(e.epoch) != b.epochs[slot]&b.mask {
		return 0, false
	}
	if selfSlot < 0 && e.state != tagWrite && !isWrite {
		return 0, false
	}
	return 1 << uint(slot), e.full != b.epochs[slot]
}

func (b *tagBackend) access(tid int, addr memmodel.Addr, isWrite bool) {
	h := b.h
	if h.liveMask == 0 {
		b.fastpath++
		return
	}
	line := h.lineOf(addr)
	t := h.activeTxn(tid)
	b.checks++
	if t == nil {
		// Non-transactional requester: strong isolation dooms a live owner,
		// but the line is not re-tagged (only transactions own tags).
		if e := b.pt.Peek(uint64(line)); e != nil {
			if conf, aliased := b.conflictMask(e, -1, isWrite); conf != 0 {
				if aliased {
					b.falseC++
				}
				h.resolveConflicts(tid, line, conf, false)
			}
		}
		return
	}
	e := b.pt.Get(uint64(line))
	if conf, aliased := b.conflictMask(e, t.slot, isWrite); conf != 0 {
		if aliased {
			b.falseC++
		}
		if h.resolveConflicts(tid, line, conf, true) {
			// Responder wins: the requester was doomed and must not steal
			// the surviving owner's tag.
			return
		}
	}
	// Tag the line: last accessor owns it. An own write tag is never
	// downgraded by a later read of the same transaction.
	if e.state == tagEmpty {
		b.lines++
	}
	cur := b.epochs[t.slot]
	state := tagRead
	if isWrite ||
		(int(e.slot) == t.slot && e.state == tagWrite && uint64(e.epoch) == cur&b.mask) {
		state = tagWrite
	}
	e.slot = uint8(t.slot)
	e.state = state
	e.epoch = uint32(cur & b.mask)
	e.full = cur
}
