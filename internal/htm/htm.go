// Package htm simulates a best-effort hardware transactional memory modelled
// on Intel's Restricted Transactional Memory (TSX RTM) as characterized in
// §2 of the paper. The properties the TxRace design depends on are all
// reproduced:
//
//   - Conflict detection at 64-byte cache-line granularity, piggybacked on
//     coherence: two different words on one line conflict (false sharing).
//   - Requester-wins resolution: the thread issuing the conflicting access
//     proceeds; every transaction it conflicts with is aborted.
//   - Strong isolation: non-transactional accesses participate in conflict
//     detection, aborting transactions they collide with. (This is what the
//     TxFail global-abort protocol and fast/slow mixed detection build on.)
//   - Bounded capacity: transactional footprints are tracked in
//     set-associative structures; evicting a transactional line aborts the
//     transaction with a capacity status.
//   - Asynchronous aborts: a transaction doomed by a remote access discovers
//     the abort at its next instruction boundary, and interrupts/context
//     switches abort with an *unknown* status (no bits set), as on Haswell.
//   - An abort reports a status word only — never the faulting address or
//     instruction, which is the first challenge (§2.2) TxRace works around.
//
// The machine is split along a seam: the HTM shell here owns the transaction
// lifecycle (Begin/Commit/Resolve, hardware-context slots, status words,
// stats, diagnostics, observability, fault injection), while conflict
// detection and footprint tracking live behind the ConflictBackend interface
// (backend.go). Three backends ship: the line-ownership directory
// (dirbackend.go, the default, with its O(n) reference scan retained), an
// HMTRace-style per-line owner-tag scheme (tagbackend.go), and a FORTH-style
// bounded read/write-set machine (boundedbackend.go).
//
// The one deliberate departure from silicon: Diagnostics retains the last
// conflict's line and threads so tests can assert the machinery, but it is
// explicitly unavailable to the TxRace runtime, mirroring real hardware.
package htm

import (
	"fmt"
	"math/bits"

	"repro/internal/memmodel"
	"repro/internal/obs"
)

// Status is the RTM abort status word (the EAX layout of XBEGIN). A zero
// Status after an abort means the cause is unknown (§2.2 challenge 4).
type Status uint32

// Abort status bits, matching Intel's RTM encoding.
const (
	StatusExplicit Status = 1 << 0 // XABORT executed; code in bits 31:24
	StatusRetry    Status = 1 << 1 // the transaction may succeed on retry
	StatusConflict Status = 1 << 2 // memory conflict with another agent
	StatusCapacity Status = 1 << 3 // transactional footprint overflowed
	StatusDebug    Status = 1 << 4 // debug breakpoint hit
	StatusNested   Status = 1 << 5 // abort occurred in a nested transaction
)

// Is reports whether all bits in b are set.
func (s Status) Is(b Status) bool { return s&b == b }

// ExplicitCode extracts the XABORT immediate.
func (s Status) ExplicitCode() uint8 { return uint8(s >> 24) }

// WithCode attaches an XABORT immediate to an explicit status.
func (s Status) WithCode(code uint8) Status { return s | Status(uint32(code)<<24) }

func (s Status) String() string {
	if s == 0 {
		return "unknown"
	}
	out := ""
	add := func(c string) {
		if out != "" {
			out += "|"
		}
		out += c
	}
	if s.Is(StatusExplicit) {
		add(fmt.Sprintf("explicit(%d)", s.ExplicitCode()))
	}
	if s.Is(StatusRetry) {
		add("retry")
	}
	if s.Is(StatusConflict) {
		add("conflict")
	}
	if s.Is(StatusCapacity) {
		add("capacity")
	}
	if s.Is(StatusDebug) {
		add("debug")
	}
	if s.Is(StatusNested) {
		add("nested")
	}
	return out
}

// Config fixes the simulated machine's transactional resources.
type Config struct {
	// Write-set tracking: the L1 data cache. Haswell: 32 KiB, 8-way,
	// 64 sets — a transaction's store footprint must fit here.
	WriteSets, WriteWays int
	// Read-set tracking is larger on real TSX (L2-assisted); modelled as a
	// bigger set-associative structure.
	ReadSets, ReadWays int
	// MaxConcurrent caps simultaneously open transactions, the
	// hardware-thread limit of §6 (4 cores, 8 with hyper-threading).
	MaxConcurrent int
	// GranularityShift sets the conflict-detection granularity as a power
	// of two (log2 bytes). Zero means the cache-line default
	// (memmodel.LineShift = 6). Setting it to 3 (word granularity) models
	// the idealized HTM of the false-sharing ablation: conflicts only on
	// true word overlap, no false sharing.
	GranularityShift int
	// ResponderWins flips the conflict-resolution policy: instead of Intel
	// RTM's requester-wins (the paper's §2.1, after Bobba et al.'s
	// performance-pathologies taxonomy, their "eager/committed" designs),
	// the transaction that already holds the line survives and the
	// *requesting* transaction aborts. Non-transactional requesters cannot
	// be refused (strong isolation still dooms the holder). TxRace's TxFail
	// protocol was designed against requester-wins; the ablation shows what
	// changes under the other policy.
	ResponderWins bool
	// ExposeConflictAddress models the future hardware the paper's §9
	// closes on (after TxIntro): an HTM that reports the conflicting
	// address alongside the abort. Commodity RTM does not (§2.2 challenge
	// 1); with this enabled, ConflictLine returns the line that doomed a
	// conflict-aborted transaction, letting the runtime build a cheaper,
	// targeted slow path.
	ExposeConflictAddress bool
	// RefScan selects the dir backend's pre-directory reference resolver:
	// conflicts found by an O(active-transactions) scan probing every
	// context's set-associative read/write sets. The default (false)
	// resolves via the O(1) line-ownership directory. The two are
	// observationally identical (pinned by the package's differential
	// tests); the scan is kept for those tests and for before/after
	// benchmarks. Only meaningful with the dir backend.
	RefScan bool

	// Backend selects the conflict-detection backend: "dir" (the default,
	// also chosen by ""), "tag", or "bounded". See BackendNames.
	Backend string
	// TagEpochBits is the width of the per-slot epoch a line tag stores
	// (tag backend only). Real memory-tagging hardware has a handful of tag
	// bits; recycling a slot's epoch past 2^TagEpochBits makes stale tags
	// from long-dead transactions alias live ones — the backend's false
	// conflicts. Zero means the default of 8; valid range 1..32.
	TagEpochBits int
	// BoundedReadCap and BoundedWriteCap are the hard read/write-set entry
	// caps of the bounded backend: the FORTH-style deliberately small
	// tracking structures. Exceeding a cap dooms the transaction with
	// StatusCapacity. Zero means the defaults (16 read, 8 write).
	BoundedReadCap, BoundedWriteCap int
}

// DefaultConfig mirrors the paper's quad-core Haswell i7-4790.
func DefaultConfig() Config {
	return Config{
		WriteSets: 64, WriteWays: 8, // 512 lines = 32 KiB write set
		ReadSets: 512, ReadWays: 8, // 4096 lines = 256 KiB read set
		MaxConcurrent: 8,
	}
}

// ErrNoHardwareContext is returned by Begin when every hardware transaction
// slot is busy; the caller (TxRace) falls back to its slow path.
var ErrNoHardwareContext = fmt.Errorf("htm: no free hardware transaction context")

// Injector is the machine's fault-injection surface (internal/fault
// implements it). The machine consults it at exactly two opportunities, and
// only for a transaction that is active and not yet doomed:
//
//   - AtAccess: once per transactional access, before the access takes
//     effect. Returning ok dooms the transaction with the given status.
//   - AtCommit: when the transaction reaches its commit point. Returning ok
//     dooms it there, so Commit delivers the abort instead of committing.
//
// Because injection always targets an active, undoomed transaction, every
// injected fault leaves a pending abort behind — doom flips the transaction
// to (active, doomed), which is precisely the state Pending reports and
// Resolve requires. An injector therefore cannot trip the "Resolve without
// pending abort" invariant no matter where in the Begin..Commit window it
// fires; see TestInjectorPreservesResolveInvariant. The injector hooks live
// in the shell, above the backend seam, so injected behaviour is identical
// under every backend.
type Injector interface {
	AtAccess(tid int, now int64, line memmodel.Line, write bool) (Status, bool)
	AtCommit(tid int, now int64) (Status, bool)
}

type txn struct {
	active bool
	doomed bool
	// slot is the hardware-context index (0..MaxConcurrent-1) held while
	// the transaction occupies the machine: the bit position of its claims
	// in the backend's ownership structures. -1 when no context is held.
	slot   int
	status Status

	// conflictLine is the address unit that doomed this transaction, kept
	// only when Config.ExposeConflictAddress is set (future-HTM mode).
	conflictLine    memmodel.Line
	hasConflictLine bool
}

// HTM is the transactional machine shared by all simulated threads.
type HTM struct {
	cfg  Config
	txns []*txn

	// be is the conflict backend (footprint tracking + conflict tests);
	// dirbe is the same object when the default directory backend is
	// active, so the production hot path keeps a static call. slotTid maps
	// an occupied hardware-context slot back to its thread; freeSlots and
	// liveMask are slot bitmasks of, respectively, unoccupied contexts and
	// contexts running an undoomed transaction. liveMask == 0 is the
	// empty-machine fast path: no access can conflict and none is tracked.
	be         ConflictBackend
	dirbe      *dirBackend
	slotTid    [64]int
	freeSlots  uint64
	liveMask   uint64
	activeTxns int

	stats Stats
	diag  Diagnostics

	// obs mirrors the machine counters into a metrics registry and emits a
	// trace event per conflict doom; nil (the default) costs one branch per
	// site. now supplies a thread's simulated clock for event timestamps and
	// may be nil (events are then stamped 0).
	obs *obs.Observer
	now func(tid int) int64

	// inj is the optional fault injector; nil (the default) costs one
	// branch per access and per commit.
	inj Injector
}

// Stats counts machine-level transactional events.
type Stats struct {
	Begins         uint64
	Commits        uint64
	ConflictAborts uint64
	CapacityAborts uint64
	UnknownAborts  uint64
	ExplicitAborts uint64
}

// Diagnostics exposes the last conflict for tests and experiment plumbing.
// Real RTM provides none of this (§2.2 challenge 1); the TxRace runtime must
// never read it, and the runtime package does not.
type Diagnostics struct {
	LastConflictLine   memmodel.Line
	LastConflictWinner int
	LastConflictLoser  int
}

// New returns an HTM with the given configuration. It panics on a
// configuration no machine could have: a non-positive or >64 context count,
// an unknown Backend name, or RefScan combined with a non-directory backend.
func New(cfg Config) *HTM {
	if cfg.MaxConcurrent <= 0 {
		panic("htm: MaxConcurrent must be positive")
	}
	if cfg.MaxConcurrent > 64 {
		// The ownership structures index hardware contexts as bits of a
		// uint64; no real HTM comes close to 64 simultaneous contexts.
		panic("htm: MaxConcurrent exceeds 64 hardware contexts")
	}
	if cfg.GranularityShift == 0 {
		cfg.GranularityShift = memmodel.LineShift
	}
	h := &HTM{cfg: cfg, freeSlots: ^uint64(0)}
	h.be = newBackend(h)
	if d, ok := h.be.(*dirBackend); ok {
		h.dirbe = d
	}
	return h
}

// Backend returns the active conflict backend's name ("dir", "tag",
// "bounded") — runtime Finish labels the folded metrics with it.
func (h *HTM) Backend() string { return h.be.name() }

// SetObserver attaches an observability sink to the machine. clock supplies
// the simulated time of a thread for trace timestamps; it may be nil.
func (h *HTM) SetObserver(o *obs.Observer, clock func(tid int) int64) {
	h.obs, h.now = o, clock
}

// SetClock attaches just the thread-clock source, for callers that need
// timestamped fault windows without observability attached.
func (h *HTM) SetClock(clock func(tid int) int64) { h.now = clock }

// SetInjector attaches a fault injector to the machine; nil detaches.
func (h *HTM) SetInjector(inj Injector) { h.inj = inj }

func (h *HTM) clockOf(tid int) int64 {
	if h.now == nil {
		return 0
	}
	return h.now(tid)
}

// lineOf maps an address to a conflict-detection unit at the configured
// granularity.
func (h *HTM) lineOf(a memmodel.Addr) memmodel.Line {
	return memmodel.Line(a >> h.cfg.GranularityShift)
}

func (h *HTM) txnOf(tid int) *txn {
	for tid >= len(h.txns) {
		h.txns = append(h.txns, nil)
	}
	if h.txns[tid] == nil {
		h.txns[tid] = &txn{slot: -1}
	}
	return h.txns[tid]
}

// Begin opens a transaction for tid, occupying a hardware-context slot. A
// nested Begin aborts the transaction with the nested status (delivered
// immediately).
func (h *HTM) Begin(tid int) (Status, error) {
	t := h.txnOf(tid)
	if t.active {
		h.doom(tid, StatusNested)
		return h.Resolve(tid), nil
	}
	if h.activeTxns >= h.cfg.MaxConcurrent {
		return 0, ErrNoHardwareContext
	}
	s := bits.TrailingZeros64(h.freeSlots)
	h.freeSlots &^= 1 << uint(s)
	h.slotTid[s] = tid
	h.liveMask |= 1 << uint(s)
	h.activeTxns++
	t.slot = s
	t.active = true
	t.doomed = false
	t.status = 0
	t.hasConflictLine = false
	h.be.begin(tid, s)
	h.stats.Begins++
	if h.obs != nil {
		h.obs.HTMBegin()
	}
	return 0, nil
}

// InTxn reports whether tid has an open (possibly doomed) transaction.
func (h *HTM) InTxn(tid int) bool {
	if tid >= len(h.txns) || h.txns[tid] == nil {
		return false
	}
	return h.txns[tid].active
}

// doom marks tid's transaction aborted. Its tracked footprint is released at
// once (the hardware restores cache state immediately), so a doomed
// transaction no longer conflicts with anyone.
func (h *HTM) doom(tid int, s Status) {
	t := h.txnOf(tid)
	if !t.active || t.doomed {
		return
	}
	t.doomed = true
	t.status = s
	t.hasConflictLine = false
	// The context stops being live immediately: its ownership claims are
	// withdrawn by the backend release below, and its liveMask bit clears so
	// it neither conflicts nor reactivates the fast path check. The slot
	// itself stays occupied until the abort is delivered (Resolve).
	h.liveMask &^= 1 << uint(t.slot)
	h.be.release(tid, t.slot)
	switch {
	case s.Is(StatusConflict):
		h.stats.ConflictAborts++
	case s.Is(StatusCapacity):
		h.stats.CapacityAborts++
	case s.Is(StatusExplicit):
		h.stats.ExplicitAborts++
	case s == 0:
		h.stats.UnknownAborts++
	}
	if h.obs != nil {
		h.obs.HTMAbort(uint32(s))
	}
}

// Pending returns the abort status awaiting delivery to tid, plus whether
// one exists. The runtime polls at instruction boundaries, modelling the
// asynchronous abort of real hardware.
func (h *HTM) Pending(tid int) (Status, bool) {
	if tid >= len(h.txns) || h.txns[tid] == nil {
		return 0, false
	}
	t := h.txns[tid]
	if t.active && t.doomed {
		return t.status, true
	}
	return 0, false
}

// Resolve delivers a pending abort: the transaction rolls back and tid's
// context leaves transactional mode. It panics if nothing is pending —
// callers must check Pending first, or use TryResolve.
//
// Invariant (relied on by the fallback governor): every path that dooms a
// transaction — remote conflict, capacity overflow, InjectInterrupt/
// InjectAbort, and fault injection through the Injector hooks — only acts
// on an active, undoomed transaction and leaves it (active, doomed), i.e.
// with a pending abort. Doom on an inactive or already-doomed transaction
// is a no-op. So between Begin and the abort's delivery there is no
// machine state in which Pending reports an abort that Resolve would
// refuse, no matter what faults were injected in between.
func (h *HTM) Resolve(tid int) Status {
	st, ok := h.TryResolve(tid)
	if !ok {
		panic("htm: Resolve without pending abort")
	}
	return st
}

// TryResolve delivers a pending abort if one exists, reporting false (and
// changing nothing) otherwise. Defensive callers — the runtime's governor
// paths and thread-exit teardown — use it so an abort raced away by another
// delivery path cannot turn into a machine panic.
func (h *HTM) TryResolve(tid int) (Status, bool) {
	t := h.txnOf(tid)
	if !t.active || !t.doomed {
		return 0, false
	}
	t.active = false
	t.doomed = false
	h.freeSlots |= 1 << uint(t.slot)
	h.activeTxns--
	t.slot = -1
	return t.status, true
}

// Access performs a memory access by tid to the line containing addr.
// If tid is inside a transaction the access is transactional: the line joins
// its tracked footprint and — depending on the backend — an overflow dooms
// the transaction with a capacity status, reported back immediately. Whether
// transactional or not, conflicting transactions of *other* threads are
// doomed (requester wins + strong isolation). The requester itself never
// blocks or fails here.
func (h *HTM) Access(tid int, addr memmodel.Addr, isWrite bool) {
	if h.inj != nil {
		// Fault-injection opportunity: an undoomed transactional access may
		// be fabricated into an abort before it takes effect. The hook sits
		// above the backend seam so injected behaviour is identical under
		// every backend (and under the directory's reference scan).
		if t := h.activeTxn(tid); t != nil {
			if st, ok := h.inj.AtAccess(tid, h.clockOf(tid), h.lineOf(addr), isWrite); ok {
				h.doom(tid, st)
				return
			}
		}
	}
	if h.dirbe != nil {
		// The directory backend is the production default; keeping its
		// dispatch static means the seam costs one predictable branch on
		// the hot path instead of a dynamic call.
		h.dirbe.access(tid, addr, isWrite)
		return
	}
	h.be.access(tid, addr, isWrite)
}

// activeTxn returns tid's transaction when it is open and not yet doomed,
// else nil.
func (h *HTM) activeTxn(tid int) *txn {
	if tid >= len(h.txns) || h.txns[tid] == nil {
		return nil
	}
	t := h.txns[tid]
	if !t.active || t.doomed {
		return nil
	}
	return t
}

// resolveConflicts dooms the transactions named by the slot mask (requester
// wins + strong isolation), or — under responder-wins with a transactional
// requester — dooms the requester instead and reports true so the caller
// skips footprint tracking. Victims are visited in ascending thread id: the
// reference scan iterates contexts by thread, and doom order is observable
// (stats, diagnostics, trace events), so every backend must match. This is
// the doom-decision half every backend shares; backends only compute the
// conflictor mask.
func (h *HTM) resolveConflicts(tid int, line memmodel.Line, mask uint64, requesterTx bool) (selfDoomed bool) {
	var victims [64]int
	n := 0
	for m := mask; m != 0; m &= m - 1 {
		victims[n] = h.slotTid[bits.TrailingZeros64(m)]
		n++
	}
	sortSmall(victims[:n])
	if h.cfg.ResponderWins && requesterTx {
		// The lowest-tid holder is the winner the reference scan reports.
		winner := victims[0]
		h.diag = Diagnostics{LastConflictLine: line, LastConflictWinner: winner, LastConflictLoser: tid}
		h.doom(tid, StatusConflict|StatusRetry)
		if h.cfg.ExposeConflictAddress {
			t := h.txnOf(tid)
			t.conflictLine, t.hasConflictLine = line, true
		}
		if h.obs != nil {
			h.obs.HTMConflict(tid, h.clockOf(tid), uint64(line), winner)
		}
		return true
	}
	for _, other := range victims[:n] {
		h.diag = Diagnostics{LastConflictLine: line, LastConflictWinner: tid, LastConflictLoser: other}
		h.doom(other, StatusConflict|StatusRetry)
		if h.cfg.ExposeConflictAddress {
			t := h.txnOf(other)
			t.conflictLine, t.hasConflictLine = line, true
		}
		if h.obs != nil {
			h.obs.HTMConflict(other, h.clockOf(other), uint64(line), tid)
		}
	}
	return false
}

// sortSmall insertion-sorts a tiny slice in place. Conflictor sets are
// almost always one or two entries; this keeps package sort (and its
// allocations) off the hot path.
func sortSmall(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// InjectInterrupt models an OS interrupt/exception/context switch hitting
// tid: an open transaction aborts with a fully unspecified status (§2.2
// challenge 4 — no bits set, no explanation).
func (h *HTM) InjectInterrupt(tid int) { h.InjectAbort(tid, 0) }

// InjectAbort dooms tid's open transaction (if any) with an arbitrary
// status, modelling micro-architectural abort conditions beyond conflicts
// and capacity (e.g. the occasional retry-only abort).
func (h *HTM) InjectAbort(tid int, s Status) {
	if h.InTxn(tid) {
		h.doom(tid, s)
	}
}

// AbortExplicit executes XABORT with the given code.
func (h *HTM) AbortExplicit(tid int, code uint8) {
	if h.InTxn(tid) {
		h.doom(tid, (StatusExplicit | StatusRetry).WithCode(code))
	}
}

// Commit attempts to commit tid's transaction. It returns (0, true) on
// success; if the transaction was doomed in flight the pending status is
// delivered instead and Commit returns (status, false).
func (h *HTM) Commit(tid int) (Status, bool) {
	t := h.txnOf(tid)
	if !t.active {
		panic("htm: Commit outside transaction")
	}
	if !t.doomed && h.inj != nil {
		// Fault-injection opportunity: an abort delivered exactly at the
		// commit point, after all the transaction's work is done.
		if st, ok := h.inj.AtCommit(tid, h.clockOf(tid)); ok {
			h.doom(tid, st)
		}
	}
	if t.doomed {
		return h.Resolve(tid), false
	}
	t.active = false
	// Release before the slot is freed: the backend withdraws the ownership
	// claims under the slot the transaction still holds.
	h.be.release(tid, t.slot)
	h.liveMask &^= 1 << uint(t.slot)
	h.freeSlots |= 1 << uint(t.slot)
	h.activeTxns--
	t.slot = -1
	h.stats.Commits++
	if h.obs != nil {
		h.obs.HTMCommit()
	}
	return 0, true
}

// ConflictLine returns the address unit that doomed tid's last
// conflict-aborted transaction. It only ever reports when the machine was
// configured with ExposeConflictAddress (the future-HTM mode of §9);
// commodity RTM always answers false.
func (h *HTM) ConflictLine(tid int) (memmodel.Line, bool) {
	if !h.cfg.ExposeConflictAddress || tid >= len(h.txns) || h.txns[tid] == nil {
		return 0, false
	}
	t := h.txns[tid]
	return t.conflictLine, t.hasConflictLine
}

// ReadSetSize and WriteSetSize expose tid's currently tracked footprint in
// lines. The tag backend tracks no sets and always answers zero.
func (h *HTM) ReadSetSize(tid int) int  { return h.be.readSetSize(tid) }
func (h *HTM) WriteSetSize(tid int) int { return h.be.writeSetSize(tid) }

// Stats returns machine-level counters.
func (h *HTM) Stats() Stats { return h.stats }

// Diag returns test-only diagnostics; see the Diagnostics doc comment.
func (h *HTM) Diag() Diagnostics { return h.diag }

// BackendStats returns the active backend's activity counters; see the
// BackendStats type for which fields which backend populates. All zero under
// the dir backend's RefScan reference resolver.
func (h *HTM) BackendStats() BackendStats { return h.be.stats() }
