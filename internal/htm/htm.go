// Package htm simulates a best-effort hardware transactional memory modelled
// on Intel's Restricted Transactional Memory (TSX RTM) as characterized in
// §2 of the paper. The properties the TxRace design depends on are all
// reproduced:
//
//   - Conflict detection at 64-byte cache-line granularity, piggybacked on
//     coherence: two different words on one line conflict (false sharing).
//   - Requester-wins resolution: the thread issuing the conflicting access
//     proceeds; every transaction it conflicts with is aborted.
//   - Strong isolation: non-transactional accesses participate in conflict
//     detection, aborting transactions they collide with. (This is what the
//     TxFail global-abort protocol and fast/slow mixed detection build on.)
//   - Bounded capacity: transactional footprints are tracked in
//     set-associative structures; evicting a transactional line aborts the
//     transaction with a capacity status.
//   - Asynchronous aborts: a transaction doomed by a remote access discovers
//     the abort at its next instruction boundary, and interrupts/context
//     switches abort with an *unknown* status (no bits set), as on Haswell.
//   - An abort reports a status word only — never the faulting address or
//     instruction, which is the first challenge (§2.2) TxRace works around.
//
// The one deliberate departure from silicon: Diagnostics retains the last
// conflict's line and threads so tests can assert the machinery, but it is
// explicitly unavailable to the TxRace runtime, mirroring real hardware.
package htm

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/memmodel"
	"repro/internal/obs"
)

// Status is the RTM abort status word (the EAX layout of XBEGIN). A zero
// Status after an abort means the cause is unknown (§2.2 challenge 4).
type Status uint32

// Abort status bits, matching Intel's RTM encoding.
const (
	StatusExplicit Status = 1 << 0 // XABORT executed; code in bits 31:24
	StatusRetry    Status = 1 << 1 // the transaction may succeed on retry
	StatusConflict Status = 1 << 2 // memory conflict with another agent
	StatusCapacity Status = 1 << 3 // transactional footprint overflowed
	StatusDebug    Status = 1 << 4 // debug breakpoint hit
	StatusNested   Status = 1 << 5 // abort occurred in a nested transaction
)

// Is reports whether all bits in b are set.
func (s Status) Is(b Status) bool { return s&b == b }

// ExplicitCode extracts the XABORT immediate.
func (s Status) ExplicitCode() uint8 { return uint8(s >> 24) }

// WithCode attaches an XABORT immediate to an explicit status.
func (s Status) WithCode(code uint8) Status { return s | Status(uint32(code)<<24) }

func (s Status) String() string {
	if s == 0 {
		return "unknown"
	}
	out := ""
	add := func(c string) {
		if out != "" {
			out += "|"
		}
		out += c
	}
	if s.Is(StatusExplicit) {
		add(fmt.Sprintf("explicit(%d)", s.ExplicitCode()))
	}
	if s.Is(StatusRetry) {
		add("retry")
	}
	if s.Is(StatusConflict) {
		add("conflict")
	}
	if s.Is(StatusCapacity) {
		add("capacity")
	}
	if s.Is(StatusDebug) {
		add("debug")
	}
	if s.Is(StatusNested) {
		add("nested")
	}
	return out
}

// Config fixes the simulated machine's transactional resources.
type Config struct {
	// Write-set tracking: the L1 data cache. Haswell: 32 KiB, 8-way,
	// 64 sets — a transaction's store footprint must fit here.
	WriteSets, WriteWays int
	// Read-set tracking is larger on real TSX (L2-assisted); modelled as a
	// bigger set-associative structure.
	ReadSets, ReadWays int
	// MaxConcurrent caps simultaneously open transactions, the
	// hardware-thread limit of §6 (4 cores, 8 with hyper-threading).
	MaxConcurrent int
	// GranularityShift sets the conflict-detection granularity as a power
	// of two (log2 bytes). Zero means the cache-line default
	// (memmodel.LineShift = 6). Setting it to 3 (word granularity) models
	// the idealized HTM of the false-sharing ablation: conflicts only on
	// true word overlap, no false sharing.
	GranularityShift int
	// ResponderWins flips the conflict-resolution policy: instead of Intel
	// RTM's requester-wins (the paper's §2.1, after Bobba et al.'s
	// performance-pathologies taxonomy, their "eager/committed" designs),
	// the transaction that already holds the line survives and the
	// *requesting* transaction aborts. Non-transactional requesters cannot
	// be refused (strong isolation still dooms the holder). TxRace's TxFail
	// protocol was designed against requester-wins; the ablation shows what
	// changes under the other policy.
	ResponderWins bool
	// ExposeConflictAddress models the future hardware the paper's §9
	// closes on (after TxIntro): an HTM that reports the conflicting
	// address alongside the abort. Commodity RTM does not (§2.2 challenge
	// 1); with this enabled, ConflictLine returns the line that doomed a
	// conflict-aborted transaction, letting the runtime build a cheaper,
	// targeted slow path.
	ExposeConflictAddress bool
}

// DefaultConfig mirrors the paper's quad-core Haswell i7-4790.
func DefaultConfig() Config {
	return Config{
		WriteSets: 64, WriteWays: 8, // 512 lines = 32 KiB write set
		ReadSets: 512, ReadWays: 8, // 4096 lines = 256 KiB read set
		MaxConcurrent: 8,
	}
}

// ErrNoHardwareContext is returned by Begin when every hardware transaction
// slot is busy; the caller (TxRace) falls back to its slow path.
var ErrNoHardwareContext = fmt.Errorf("htm: no free hardware transaction context")

type txn struct {
	active bool
	doomed bool
	status Status
	reads  *cache.Cache
	writes *cache.Cache

	// conflictLine is the address unit that doomed this transaction, kept
	// only when Config.ExposeConflictAddress is set (future-HTM mode).
	conflictLine    memmodel.Line
	hasConflictLine bool
}

// HTM is the transactional machine shared by all simulated threads.
type HTM struct {
	cfg  Config
	txns []*txn

	stats Stats
	diag  Diagnostics

	// obs mirrors the machine counters into a metrics registry and emits a
	// trace event per conflict doom; nil (the default) costs one branch per
	// site. now supplies a thread's simulated clock for event timestamps and
	// may be nil (events are then stamped 0).
	obs *obs.Observer
	now func(tid int) int64
}

// Stats counts machine-level transactional events.
type Stats struct {
	Begins         uint64
	Commits        uint64
	ConflictAborts uint64
	CapacityAborts uint64
	UnknownAborts  uint64
	ExplicitAborts uint64
}

// Diagnostics exposes the last conflict for tests and experiment plumbing.
// Real RTM provides none of this (§2.2 challenge 1); the TxRace runtime must
// never read it, and the runtime package does not.
type Diagnostics struct {
	LastConflictLine   memmodel.Line
	LastConflictWinner int
	LastConflictLoser  int
}

// New returns an HTM with the given configuration.
func New(cfg Config) *HTM {
	if cfg.MaxConcurrent <= 0 {
		panic("htm: MaxConcurrent must be positive")
	}
	if cfg.GranularityShift == 0 {
		cfg.GranularityShift = memmodel.LineShift
	}
	return &HTM{cfg: cfg}
}

// SetObserver attaches an observability sink to the machine. clock supplies
// the simulated time of a thread for trace timestamps; it may be nil.
func (h *HTM) SetObserver(o *obs.Observer, clock func(tid int) int64) {
	h.obs, h.now = o, clock
}

func (h *HTM) clockOf(tid int) int64 {
	if h.now == nil {
		return 0
	}
	return h.now(tid)
}

// lineOf maps an address to a conflict-detection unit at the configured
// granularity.
func (h *HTM) lineOf(a memmodel.Addr) memmodel.Line {
	return memmodel.Line(a >> h.cfg.GranularityShift)
}

func (h *HTM) txnOf(tid int) *txn {
	for tid >= len(h.txns) {
		h.txns = append(h.txns, nil)
	}
	if h.txns[tid] == nil {
		h.txns[tid] = &txn{
			reads:  cache.New(h.cfg.ReadSets, h.cfg.ReadWays),
			writes: cache.New(h.cfg.WriteSets, h.cfg.WriteWays),
		}
	}
	return h.txns[tid]
}

func (h *HTM) activeCount() int {
	n := 0
	for _, t := range h.txns {
		if t != nil && t.active {
			n++
		}
	}
	return n
}

// Begin opens a transaction for tid. A nested Begin aborts the transaction
// with the nested status (delivered immediately).
func (h *HTM) Begin(tid int) (Status, error) {
	t := h.txnOf(tid)
	if t.active {
		h.doom(tid, StatusNested)
		return h.Resolve(tid), nil
	}
	if h.activeCount() >= h.cfg.MaxConcurrent {
		return 0, ErrNoHardwareContext
	}
	t.active = true
	t.doomed = false
	t.status = 0
	t.hasConflictLine = false
	t.reads.Reset()
	t.writes.Reset()
	h.stats.Begins++
	if h.obs != nil {
		h.obs.HTMBegin()
	}
	return 0, nil
}

// InTxn reports whether tid has an open (possibly doomed) transaction.
func (h *HTM) InTxn(tid int) bool {
	if tid >= len(h.txns) || h.txns[tid] == nil {
		return false
	}
	return h.txns[tid].active
}

// doom marks tid's transaction aborted. Its tracked lines are released at
// once (the hardware restores cache state immediately), so a doomed
// transaction no longer conflicts with anyone.
func (h *HTM) doom(tid int, s Status) {
	t := h.txnOf(tid)
	if !t.active || t.doomed {
		return
	}
	t.doomed = true
	t.status = s
	t.hasConflictLine = false
	t.reads.Reset()
	t.writes.Reset()
	switch {
	case s.Is(StatusConflict):
		h.stats.ConflictAborts++
	case s.Is(StatusCapacity):
		h.stats.CapacityAborts++
	case s.Is(StatusExplicit):
		h.stats.ExplicitAborts++
	case s == 0:
		h.stats.UnknownAborts++
	}
	if h.obs != nil {
		h.obs.HTMAbort(uint32(s))
	}
}

// Pending returns the abort status awaiting delivery to tid, plus whether
// one exists. The runtime polls at instruction boundaries, modelling the
// asynchronous abort of real hardware.
func (h *HTM) Pending(tid int) (Status, bool) {
	if tid >= len(h.txns) || h.txns[tid] == nil {
		return 0, false
	}
	t := h.txns[tid]
	if t.active && t.doomed {
		return t.status, true
	}
	return 0, false
}

// Resolve delivers a pending abort: the transaction rolls back and tid's
// context leaves transactional mode. It panics if nothing is pending —
// callers must check Pending first.
func (h *HTM) Resolve(tid int) Status {
	t := h.txnOf(tid)
	if !t.active || !t.doomed {
		panic("htm: Resolve without pending abort")
	}
	t.active = false
	t.doomed = false
	return t.status
}

// Access performs a memory access by tid to the line containing addr.
// If tid is inside a transaction the access is transactional: the line joins
// its read or write set and an overflow dooms the transaction with a
// capacity status, reported back immediately. Whether transactional or not,
// conflicting transactions of *other* threads are doomed (requester wins +
// strong isolation). The requester itself never blocks or fails here.
func (h *HTM) Access(tid int, addr memmodel.Addr, isWrite bool) {
	line := h.lineOf(addr)
	// Conflict resolution. Under requester-wins (Intel RTM), every other
	// active transaction holding a conflicting claim on the line aborts and
	// the requester proceeds. Under responder-wins, a *transactional*
	// requester colliding with a holder aborts itself instead; a
	// non-transactional requester cannot be refused, so strong isolation
	// still dooms the holder. A write conflicts with reads and writes; a
	// read conflicts with writes only.
	requesterTx := tid < len(h.txns) && h.txns[tid] != nil &&
		h.txns[tid].active && !h.txns[tid].doomed
	for other, t := range h.txns {
		if other == tid || t == nil || !t.active || t.doomed {
			continue
		}
		if t.writes.Contains(line) || (isWrite && t.reads.Contains(line)) {
			if h.cfg.ResponderWins && requesterTx {
				h.diag = Diagnostics{LastConflictLine: line, LastConflictWinner: other, LastConflictLoser: tid}
				h.doom(tid, StatusConflict|StatusRetry)
				if h.cfg.ExposeConflictAddress {
					t2 := h.txnOf(tid)
					t2.conflictLine, t2.hasConflictLine = line, true
				}
				if h.obs != nil {
					h.obs.HTMConflict(tid, h.clockOf(tid), uint64(line), other)
				}
				return
			}
			h.diag = Diagnostics{LastConflictLine: line, LastConflictWinner: tid, LastConflictLoser: other}
			h.doom(other, StatusConflict|StatusRetry)
			if h.cfg.ExposeConflictAddress {
				t2 := h.txnOf(other)
				t2.conflictLine, t2.hasConflictLine = line, true
			}
			if h.obs != nil {
				h.obs.HTMConflict(other, h.clockOf(other), uint64(line), tid)
			}
		}
	}
	// Track the requester's own footprint if transactional.
	if tid < len(h.txns) && h.txns[tid] != nil {
		t := h.txns[tid]
		if t.active && !t.doomed {
			var set *cache.Cache
			if isWrite {
				set = t.writes
			} else {
				set = t.reads
			}
			if _, evicted := set.Touch(line); evicted {
				h.doom(tid, StatusCapacity)
			}
		}
	}
}

// InjectInterrupt models an OS interrupt/exception/context switch hitting
// tid: an open transaction aborts with a fully unspecified status (§2.2
// challenge 4 — no bits set, no explanation).
func (h *HTM) InjectInterrupt(tid int) { h.InjectAbort(tid, 0) }

// InjectAbort dooms tid's open transaction (if any) with an arbitrary
// status, modelling micro-architectural abort conditions beyond conflicts
// and capacity (e.g. the occasional retry-only abort).
func (h *HTM) InjectAbort(tid int, s Status) {
	if h.InTxn(tid) {
		h.doom(tid, s)
	}
}

// AbortExplicit executes XABORT with the given code.
func (h *HTM) AbortExplicit(tid int, code uint8) {
	if h.InTxn(tid) {
		h.doom(tid, (StatusExplicit | StatusRetry).WithCode(code))
	}
}

// Commit attempts to commit tid's transaction. It returns (0, true) on
// success; if the transaction was doomed in flight the pending status is
// delivered instead and Commit returns (status, false).
func (h *HTM) Commit(tid int) (Status, bool) {
	t := h.txnOf(tid)
	if !t.active {
		panic("htm: Commit outside transaction")
	}
	if t.doomed {
		return h.Resolve(tid), false
	}
	t.active = false
	t.reads.Reset()
	t.writes.Reset()
	h.stats.Commits++
	if h.obs != nil {
		h.obs.HTMCommit()
	}
	return 0, true
}

// ConflictLine returns the address unit that doomed tid's last
// conflict-aborted transaction. It only ever reports when the machine was
// configured with ExposeConflictAddress (the future-HTM mode of §9);
// commodity RTM always answers false.
func (h *HTM) ConflictLine(tid int) (memmodel.Line, bool) {
	if !h.cfg.ExposeConflictAddress || tid >= len(h.txns) || h.txns[tid] == nil {
		return 0, false
	}
	t := h.txns[tid]
	return t.conflictLine, t.hasConflictLine
}

// ReadSetSize and WriteSetSize expose tid's current footprint in lines.
func (h *HTM) ReadSetSize(tid int) int  { return h.txnOf(tid).reads.Len() }
func (h *HTM) WriteSetSize(tid int) int { return h.txnOf(tid).writes.Len() }

// Stats returns machine-level counters.
func (h *HTM) Stats() Stats { return h.stats }

// Diag returns test-only diagnostics; see the Diagnostics doc comment.
func (h *HTM) Diag() Diagnostics { return h.diag }
