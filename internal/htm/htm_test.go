package htm

import (
	"testing"

	"repro/internal/memmodel"
)

func addrOfLine(l int) memmodel.Addr { return memmodel.Addr(l * memmodel.LineSize) }

func TestCommitEmptyTxn(t *testing.T) {
	h := New(DefaultConfig())
	if _, err := h.Begin(0); err != nil {
		t.Fatal(err)
	}
	if st, ok := h.Commit(0); !ok || st != 0 {
		t.Fatalf("commit = %v,%v", st, ok)
	}
	if s := h.Stats(); s.Commits != 1 || s.Begins != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestRequesterWinsWriteWrite(t *testing.T) {
	h := New(DefaultConfig())
	h.Begin(0)
	h.Begin(1)
	h.Access(0, addrOfLine(5), true)
	// Thread 1 writes the same line: thread 0's txn must be doomed.
	h.Access(1, addrOfLine(5)+8, true) // different word, same line
	if _, ok := h.Pending(1); ok {
		t.Fatal("requester must not be doomed")
	}
	st, ok := h.Pending(0)
	if !ok || !st.Is(StatusConflict) || !st.Is(StatusRetry) {
		t.Fatalf("victim pending = %v,%v", st, ok)
	}
	if st, ok := h.Commit(1); !ok || st != 0 {
		t.Fatalf("winner commit = %v,%v", st, ok)
	}
	if st, ok := h.Commit(0); ok || !st.Is(StatusConflict) {
		t.Fatalf("loser commit = %v,%v; want delivered conflict", st, ok)
	}
}

func TestReadReadNoConflict(t *testing.T) {
	h := New(DefaultConfig())
	h.Begin(0)
	h.Begin(1)
	h.Access(0, addrOfLine(3), false)
	h.Access(1, addrOfLine(3), false)
	if _, ok := h.Pending(0); ok {
		t.Fatal("read-read must not conflict")
	}
	if _, ok := h.Pending(1); ok {
		t.Fatal("read-read must not conflict")
	}
}

func TestWriteDoomsReader(t *testing.T) {
	h := New(DefaultConfig())
	h.Begin(0)
	h.Access(0, addrOfLine(3), false)
	h.Begin(1)
	h.Access(1, addrOfLine(3), true)
	if st, ok := h.Pending(0); !ok || !st.Is(StatusConflict) {
		t.Fatalf("reader must be doomed, got %v,%v", st, ok)
	}
}

func TestStrongIsolationNonTxWrite(t *testing.T) {
	h := New(DefaultConfig())
	h.Begin(0)
	h.Access(0, addrOfLine(9), false)
	// Thread 1 is NOT in a transaction; its write must doom thread 0.
	h.Access(1, addrOfLine(9), true)
	if st, ok := h.Pending(0); !ok || !st.Is(StatusConflict) {
		t.Fatalf("strong isolation violated: %v,%v", st, ok)
	}
}

func TestStrongIsolationNonTxReadOfWriteSet(t *testing.T) {
	h := New(DefaultConfig())
	h.Begin(0)
	h.Access(0, addrOfLine(9), true)
	h.Access(1, addrOfLine(9), false) // non-tx read of tx write set
	if st, ok := h.Pending(0); !ok || !st.Is(StatusConflict) {
		t.Fatalf("non-tx read of write set must conflict: %v,%v", st, ok)
	}
}

func TestNonTxReadOfReadSetNoConflict(t *testing.T) {
	h := New(DefaultConfig())
	h.Begin(0)
	h.Access(0, addrOfLine(9), false)
	h.Access(1, addrOfLine(9), false) // non-tx read of tx read set: fine
	if _, ok := h.Pending(0); ok {
		t.Fatal("read of read set must not conflict")
	}
}

func TestCapacityAbortOnWriteOverflow(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	h.Begin(0)
	capLines := cfg.WriteSets * cfg.WriteWays
	for l := 0; l <= capLines; l++ {
		h.Access(0, addrOfLine(l), true)
		if st, ok := h.Pending(0); ok {
			if !st.Is(StatusCapacity) {
				t.Fatalf("expected capacity, got %v", st)
			}
			if l < capLines {
				t.Fatalf("capacity abort too early at line %d of %d", l, capLines)
			}
			return
		}
	}
	t.Fatalf("no capacity abort after %d lines", capLines+1)
}

func TestCapacityAbortSetAssociative(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	h.Begin(0)
	// Hammer a single set: lines that all map to set 0.
	for i := 0; i <= cfg.WriteWays; i++ {
		h.Access(0, addrOfLine(i*cfg.WriteSets), true)
	}
	if st, ok := h.Pending(0); !ok || !st.Is(StatusCapacity) {
		t.Fatalf("conflict-miss overflow must abort: %v,%v", st, ok)
	}
}

func TestDoomReleasesLines(t *testing.T) {
	h := New(DefaultConfig())
	h.Begin(0)
	h.Access(0, addrOfLine(4), true)
	h.InjectInterrupt(0) // dooms; lines released
	h.Begin(1)
	h.Access(1, addrOfLine(4), true)
	if _, ok := h.Pending(1); ok {
		t.Fatal("doomed txn's lines must not conflict")
	}
	if st := h.Resolve(0); st != 0 {
		t.Fatalf("interrupt abort status = %v, want unknown", st)
	}
}

func TestExplicitAbortCode(t *testing.T) {
	h := New(DefaultConfig())
	h.Begin(0)
	h.AbortExplicit(0, 42)
	st, ok := h.Pending(0)
	if !ok || !st.Is(StatusExplicit) || st.ExplicitCode() != 42 {
		t.Fatalf("explicit abort = %v,%v", st, ok)
	}
}

func TestNestedBeginAborts(t *testing.T) {
	h := New(DefaultConfig())
	h.Begin(0)
	st, err := h.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Is(StatusNested) {
		t.Fatalf("nested begin = %v", st)
	}
	if h.InTxn(0) {
		t.Fatal("nested abort must close the transaction")
	}
}

func TestMaxConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 2
	h := New(cfg)
	if _, err := h.Begin(0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Begin(1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Begin(2); err != ErrNoHardwareContext {
		t.Fatalf("third begin err = %v", err)
	}
	h.Commit(0)
	if _, err := h.Begin(2); err != nil {
		t.Fatalf("after commit: %v", err)
	}
}

func TestAbortStatusString(t *testing.T) {
	if s := Status(0).String(); s != "unknown" {
		t.Fatalf("zero status = %q", s)
	}
	st := (StatusConflict | StatusRetry).String()
	if st != "retry|conflict" && st != "conflict|retry" {
		t.Fatalf("conflict status = %q", st)
	}
	if got := (StatusExplicit.WithCode(7)).ExplicitCode(); got != 7 {
		t.Fatalf("explicit code = %d", got)
	}
}

func TestDiagnosticsRecordConflict(t *testing.T) {
	h := New(DefaultConfig())
	h.Begin(0)
	h.Access(0, addrOfLine(11), true)
	h.Access(1, addrOfLine(11), true)
	d := h.Diag()
	if d.LastConflictLine != memmodel.LineOf(addrOfLine(11)) ||
		d.LastConflictWinner != 1 || d.LastConflictLoser != 0 {
		t.Fatalf("diag %+v", d)
	}
}

func TestResponderWinsPolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponderWins = true
	h := New(cfg)
	h.Begin(0)
	h.Access(0, addrOfLine(5), true)
	h.Begin(1)
	h.Access(1, addrOfLine(5), true)
	// Under responder-wins the holder (txn 0) survives; the requester
	// (txn 1) aborts.
	if _, ok := h.Pending(0); ok {
		t.Fatal("holder doomed under responder-wins")
	}
	if st, ok := h.Pending(1); !ok || !st.Is(StatusConflict) {
		t.Fatalf("requester must abort: %v,%v", st, ok)
	}
	if st, ok := h.Commit(0); !ok || st != 0 {
		t.Fatalf("holder commit = %v,%v", st, ok)
	}
}

func TestResponderWinsStrongIsolationUnchanged(t *testing.T) {
	// A non-transactional requester cannot be refused: the holder still
	// aborts, whatever the policy.
	cfg := DefaultConfig()
	cfg.ResponderWins = true
	h := New(cfg)
	h.Begin(0)
	h.Access(0, addrOfLine(5), false)
	h.Access(1, addrOfLine(5), true) // non-tx write
	if st, ok := h.Pending(0); !ok || !st.Is(StatusConflict) {
		t.Fatalf("strong isolation must doom the holder: %v,%v", st, ok)
	}
}
