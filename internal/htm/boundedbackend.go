package htm

import (
	"repro/internal/memmodel"
)

// boundedBackend is the FORTH-style conflict backend: directory semantics —
// the same line-ownership word and conflict test as dirBackend — but the
// per-transaction footprint is tracked in deliberately tiny fully-associative
// sets with hard entry caps (Config.BoundedReadCap/BoundedWriteCap). Where
// the real HTM's set-associative caches overflow only under conflict misses,
// here entry cap+1 is an immediate StatusCapacity doom, counted in
// BackendStats.Overflows — a machine whose capacity-abort pressure far
// exceeds commodity hardware, built to exercise the runtime's degradation
// machinery (loop cuts, governor fallback).
type boundedBackend struct {
	h *HTM

	dir       directory
	fastpath  uint64
	overflows uint64

	states []*boundedTxnState
}

// boundedTxnState is one thread's bounded tracking sets: line slices with
// their backing arrays capped at the configured entry counts. Membership is
// a linear scan — the caps are small by construction.
type boundedTxnState struct {
	reads  []memmodel.Line
	writes []memmodel.Line
}

func newBoundedBackend(h *HTM) *boundedBackend {
	return &boundedBackend{h: h}
}

func (b *boundedBackend) name() string { return "bounded" }

func (b *boundedBackend) stateOf(tid int) *boundedTxnState {
	for tid >= len(b.states) {
		b.states = append(b.states, nil)
	}
	if b.states[tid] == nil {
		b.states[tid] = &boundedTxnState{
			reads:  make([]memmodel.Line, 0, b.h.cfg.BoundedReadCap),
			writes: make([]memmodel.Line, 0, b.h.cfg.BoundedWriteCap),
		}
	}
	return b.states[tid]
}

func (b *boundedBackend) begin(tid, slot int) {
	st := b.stateOf(tid)
	st.reads = st.reads[:0]
	st.writes = st.writes[:0]
}

// release withdraws the footprint's directory claims; with at most
// readCap+writeCap entries the walk is O(caps), the backend's whole point.
func (b *boundedBackend) release(tid, slot int) {
	if tid >= len(b.states) || b.states[tid] == nil {
		return
	}
	st := b.states[tid]
	for _, l := range st.reads {
		b.dir.releaseRead(l, slot)
	}
	for _, l := range st.writes {
		b.dir.releaseWrite(l, slot)
	}
	st.reads = st.reads[:0]
	st.writes = st.writes[:0]
}

func (b *boundedBackend) readSetSize(tid int) int {
	if tid >= len(b.states) || b.states[tid] == nil {
		return 0
	}
	return len(b.states[tid].reads)
}

func (b *boundedBackend) writeSetSize(tid int) int {
	if tid >= len(b.states) || b.states[tid] == nil {
		return 0
	}
	return len(b.states[tid].writes)
}

func (b *boundedBackend) stats() BackendStats {
	return BackendStats{
		Lines: b.dir.lines, Checks: b.dir.checks, Fastpath: b.fastpath,
		Overflows: b.overflows,
	}
}

func lineIn(set []memmodel.Line, l memmodel.Line) bool {
	for _, x := range set {
		if x == l {
			return true
		}
	}
	return false
}

func (b *boundedBackend) access(tid int, addr memmodel.Addr, isWrite bool) {
	h := b.h
	if h.liveMask == 0 {
		b.fastpath++
		return
	}
	line := h.lineOf(addr)
	t := h.activeTxn(tid)
	if t == nil {
		if conf := b.dir.conflictors(line, isWrite); conf != 0 {
			h.resolveConflicts(tid, line, conf, false)
		}
		return
	}
	slotBit := uint64(1) << uint(t.slot)
	b.dir.checks++
	ent := b.dir.pt.Get(uint64(line))
	conf := ent.writers
	if isWrite {
		conf |= ent.readers
	}
	conf &^= slotBit
	if conf != 0 && h.resolveConflicts(tid, line, conf, true) {
		return
	}
	st := b.states[tid]
	set := &st.reads
	limit := h.cfg.BoundedReadCap
	if isWrite {
		set = &st.writes
		limit = h.cfg.BoundedWriteCap
	}
	if lineIn(*set, line) {
		return // already tracked and claimed
	}
	if len(*set) >= limit {
		// Hard overflow: the incoming line is never claimed; the capacity
		// doom's release withdraws the rest.
		b.overflows++
		h.doom(tid, StatusCapacity)
		return
	}
	*set = append(*set, line)
	if ent.readers|ent.writers == 0 {
		b.dir.lines++
	}
	if isWrite {
		ent.writers |= slotBit
	} else {
		ent.readers |= slotBit
	}
}
