package htm

import (
	"testing"

	"repro/internal/memmodel"
)

// hookInjector scripts the Injector surface: it fires the configured status
// at the Nth access opportunity and/or the Nth commit opportunity (1-based,
// 0 = never), and counts every consultation.
type hookInjector struct {
	fireAccessAt int
	accessStatus Status
	fireCommitAt int
	commitStatus Status

	accessCalls int
	commitCalls int
}

func (s *hookInjector) AtAccess(tid int, now int64, line memmodel.Line, write bool) (Status, bool) {
	s.accessCalls++
	if s.accessCalls == s.fireAccessAt {
		return s.accessStatus, true
	}
	return 0, false
}

func (s *hookInjector) AtCommit(tid int, now int64) (Status, bool) {
	s.commitCalls++
	if s.commitCalls == s.fireCommitAt {
		return s.commitStatus, true
	}
	return 0, false
}

// TestInjectorPreservesResolveInvariant is the audit the Injector doc
// comment points at: wherever in the Begin..Commit window a fault fires —
// first access, mid-transaction, or exactly at commit — the machine is left
// with exactly one pending abort, delivered exactly once; a second delivery
// attempt reports false through TryResolve instead of tripping the
// "Resolve without pending abort" panic.
func TestInjectorPreservesResolveInvariant(t *testing.T) {
	cases := []struct {
		name string
		inj  *hookInjector
		want Status
	}{
		{"first-access", &hookInjector{fireAccessAt: 1, accessStatus: StatusRetry}, StatusRetry},
		{"mid-transaction", &hookInjector{fireAccessAt: 3, accessStatus: StatusConflict | StatusRetry}, StatusConflict | StatusRetry},
		{"at-commit", &hookInjector{fireCommitAt: 1}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := New(DefaultConfig())
			h.SetInjector(tc.inj)
			if _, err := h.Begin(0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				h.Access(0, addrOfLine(i), true)
			}
			st, committed := h.Commit(0)
			if committed {
				t.Fatal("transaction committed through an injected fault")
			}
			if st != tc.want {
				t.Fatalf("delivered status %v, want %v", st, tc.want)
			}
			// The abort was just delivered: nothing may be pending, and a
			// second delivery must decline, not panic.
			if _, ok := h.Pending(0); ok {
				t.Fatal("abort still pending after delivery")
			}
			if _, ok := h.TryResolve(0); ok {
				t.Fatal("TryResolve delivered a second abort")
			}
		})
	}
}

// TestInjectorNotConsultedWhenDoomed: after the injected doom, the hook is
// out of the picture — further accesses of the doomed transaction (and the
// machine's other bookkeeping) never consult it again, and non-transactional
// accesses never consult it at all.
func TestInjectorNotConsultedWhenDoomed(t *testing.T) {
	inj := &hookInjector{fireAccessAt: 1, accessStatus: 0}
	h := New(DefaultConfig())
	h.SetInjector(inj)

	h.Access(0, addrOfLine(9), true) // non-transactional: no consultation
	if inj.accessCalls != 0 {
		t.Fatalf("non-transactional access consulted the injector %d times", inj.accessCalls)
	}

	h.Begin(0)
	for i := 0; i < 5; i++ {
		h.Access(0, addrOfLine(i), false)
	}
	if inj.accessCalls != 1 {
		t.Fatalf("injector consulted %d times, want 1 (doomed txns are not consulted)", inj.accessCalls)
	}
	if _, ok := h.TryResolve(0); !ok {
		t.Fatal("no pending abort after injected doom")
	}
	if inj.commitCalls != 0 {
		t.Fatalf("commit hook consulted %d times without reaching Commit", inj.commitCalls)
	}
}

// TestInjectorStatsByStatus: injected aborts land in the machine's abort
// counters according to their fabricated status word, exactly like organic
// aborts — the runtime cannot tell them apart.
func TestInjectorStatsByStatus(t *testing.T) {
	run := func(inj *hookInjector) Stats {
		h := New(DefaultConfig())
		h.SetInjector(inj)
		h.Begin(0)
		h.Access(0, addrOfLine(1), true)
		h.Commit(0)
		return h.Stats()
	}
	if s := run(&hookInjector{fireAccessAt: 1, accessStatus: StatusConflict | StatusRetry}); s.ConflictAborts != 1 {
		t.Errorf("conflict-status injection: %+v, want 1 conflict abort", s)
	}
	if s := run(&hookInjector{fireAccessAt: 1, accessStatus: StatusCapacity}); s.CapacityAborts != 1 {
		t.Errorf("capacity-status injection: %+v, want 1 capacity abort", s)
	}
	if s := run(&hookInjector{fireCommitAt: 1}); s.UnknownAborts != 1 {
		t.Errorf("zero-status commit injection: %+v, want 1 unknown abort", s)
	}
}

// TestInjectorIdenticalUnderBothResolvers: the injection hook sits above the
// RefScan/directory split, so an identical access script under an identical
// scripted injector yields identical statuses and machine counters under
// the reference scan and the conflict directory.
func TestInjectorIdenticalUnderBothResolvers(t *testing.T) {
	script := func(refScan bool) (Stats, []Status) {
		cfg := DefaultConfig()
		cfg.RefScan = refScan
		h := New(cfg)
		h.SetInjector(&hookInjector{fireAccessAt: 4, accessStatus: StatusRetry, fireCommitAt: 2})
		var delivered []Status
		for round := 0; round < 3; round++ {
			for tid := 0; tid < 2; tid++ {
				h.Begin(tid)
				h.Access(tid, addrOfLine(10+tid), true)
				h.Access(tid, addrOfLine(20+round), false)
				if st, ok := h.Commit(tid); !ok {
					delivered = append(delivered, st)
				}
			}
		}
		return h.Stats(), delivered
	}
	sRef, dRef := script(true)
	sDir, dDir := script(false)
	if sRef != sDir {
		t.Errorf("stats diverge: refscan %+v, directory %+v", sRef, sDir)
	}
	if len(dRef) != len(dDir) {
		t.Fatalf("abort counts diverge: %v vs %v", dRef, dDir)
	}
	for i := range dRef {
		if dRef[i] != dDir[i] {
			t.Errorf("abort %d status diverges: %v vs %v", i, dRef[i], dDir[i])
		}
	}
}
